// djvmworker is the worker half of the distributed experiment dispatcher:
// a process that accepts sealed experiments.Spec jobs over HTTP (see
// internal/dispatch), runs each one in-process, and serves the sealed
// outcome back to the coordinator. Point djvmbench/djvmrun -workers at a
// fleet of these.
//
// Usage:
//
//	djvmworker [-listen addr] [-quiet]
//
// The worker prints "djvmworker listening on <addr>" once the socket is
// bound (with -listen :0 the line carries the assigned port, which is how
// the chaos tests and local scripts discover it).
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"

	"jessica2/internal/dispatch"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:9377", "address to listen on (:0 picks a free port)")
	quiet := flag.Bool("quiet", false, "suppress per-job logging")
	flag.Parse()

	logf := log.New(os.Stderr, "djvmworker: ", log.LstdFlags).Printf
	if *quiet {
		logf = func(string, ...any) {}
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "djvmworker: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("djvmworker listening on %s\n", ln.Addr())

	w := dispatch.NewWorker(logf)
	if err := http.Serve(ln, w.Handler()); err != nil {
		fmt.Fprintf(os.Stderr, "djvmworker: %v\n", err)
		os.Exit(1)
	}
}
