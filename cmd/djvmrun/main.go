// Command djvmrun executes one benchmark on the simulated distributed JVM
// with chosen profiling settings and prints the run report, the thread
// correlation map, and (optionally) a balancer plan derived from it.
//
// Usage:
//
//	djvmrun -app sor -threads 8 -rate full
//	djvmrun -app bh -threads 16 -rate 4 -stack -footprint -plan
//	djvmrun -app water -adaptive
//	djvmrun -app kv -adaptive -scenario phased
//	djvmrun -app lu -scenario hetero,noisy,jitter -scenario-seed 7
//	djvmrun -app kv -scenario phased -policy rebalance -epochs 8
//	djvmrun -app kv -scenario crash -recover -policy rebalance
//	djvmrun -app serve -scenario diurnal -policy rebalance -epoch 125ms
//	djvmrun -app serve -scenario crash+burst -recover
//	djvmrun -app serve -scenario flaky,burst -protect shed
//	djvmrun -app kv -scenario phased -policy rebalance -profile-out kv.j2pf
//	djvmrun -app kv -scenario phased -policy warmstart -profile-in kv.j2pf
//	djvmrun -app sor -seeds 8 -workers host1:9377,host2:9377
//
// -workers dispatches the run (all -seeds replicas as one batch) to a
// fleet of djvmworker processes through the fault-tolerant experiment
// dispatcher and renders a compact report from each collected outcome.
// Only spec-expressible runs dispatch: plain profiling runs of the
// closed-loop apps (sor, bh, water, lu, kv) without -policy, -recover or
// profile I/O. Workers that are unreachable or die mid-batch cost wall
// clock, not results — stranded jobs rerun locally and the output is
// byte-identical to a local run.
//
// -profile-out saves the end-of-run profile (TCM, placement, hot-object
// homes, rate trace) to the named file; -profile-in reloads one, applying
// the stored placement before epoch 0 and seeding the TCM accumulator. A
// profile recorded under a different app, cluster shape, seed or scenario
// is rejected with a warning in the report and the run starts cold. The
// warmstart policy drives the sampling rate from the live-vs-stored
// divergence signal (floor rate while the run matches the profile, full
// rate plus rebalancing when it drifts).
//
// -app serve is the open-loop request-serving workload: requests arrive on
// a scenario-generated schedule (the poisson, diurnal and burst presets)
// instead of a closed iteration loop, and the report gains goodput and
// P50/P95/P99 latency on the simulated clock. Without an arrival preset a
// default Poisson stream is installed.
//
// -protect picks the serving-path protection level for open-loop apps:
// "off" is the classic static path, "shed" arms per-request deadlines and
// admission control only, "full" adds bounded retries, quantile-delayed
// hedging and per-node circuit breakers fed by the failure detector. The
// default "auto" resolves to full when -recover is set on an open-loop app
// (serving through failures wants the whole stack) and off otherwise, so
// plain runs stay byte-identical to builds without the robustness layer.
// A protected run's report gains a serving-robustness tail with the
// goodput-within-SLO headline and the shed/retry/hedge/reroute/breaker
// counters.
//
// The -scenario flag injects fault-injection perturbation schedules
// (comma-separated presets: hetero, ramp, jitter, noisy, phased, storm,
// crash, flaky, partition) composed by the scenario engine; runs stay
// deterministic per seed. The failure presets lose things — nodes, profile
// flushes, connectivity — and -recover arms the runtime's failure-tolerance
// layer (heartbeat/lease node-death detection with thread evacuation,
// reliable profile flushes, TCM decay) to survive them; the run report then
// includes the failure counters and final cluster health.
//
// The -policy flag turns the run into a closed-loop session: a pilot run
// measures the baseline execution time, the run is split into -epochs
// epochs (or stepped every -epoch if given), and the policy observes and
// acts at every epoch boundary. Both execution times are reported.
//
// -seeds N replicates the run over N consecutive seeds (seed, seed+1, ...)
// for quick variance checks; -parallel fans the replicas out over the
// experiment runner's worker pool (default GOMAXPROCS). Reports are
// buffered per seed and printed in seed order, so the output is
// byte-identical at any parallelism.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"jessica2"
	"jessica2/internal/dispatch"
	"jessica2/internal/experiments"
	"jessica2/internal/runner"
)

// runConfig is one fully parsed and validated invocation.
type runConfig struct {
	app       string
	nodes     int
	threads   int
	seed      uint64
	rate      jessica2.Rate
	adaptive  bool
	stackProf bool
	footprint bool
	showTCM   bool
	plan      bool
	scenSpec  string
	recover   bool
	protect   string // serving protection level: off | shed | full | auto
	policyTag string
	epochs    int
	epoch     jessica2.Time
	seeds     int
	parallel  int
	workers   string // comma-separated djvmworker fleet (dispatched mode)
	scenSeed  uint64 // 0 = follow the workload seed
	benchjson string // write a machine-readable run report to this file

	profileIn  string // load a stored profile (warm start)
	profileOut string // save the end-of-run profile
	// loaded is the decoded -profile-in artifact, read once in execute so
	// replicas share the immutable profile instead of re-reading the file.
	loaded *jessica2.StoredProfile
}

// newWorkload instantiates the named benchmark (fresh instance per call so
// pilot and policy runs never share workload state).
func newWorkload(app string) (jessica2.Workload, error) {
	switch strings.ToLower(app) {
	case "sor":
		return jessica2.NewSOR(), nil
	case "bh", "barnes-hut", "barneshut":
		return jessica2.NewBarnesHut(), nil
	case "water", "ws", "water-spatial":
		return jessica2.NewWaterSpatial(), nil
	case "synth", "synthetic":
		return jessica2.NewSynthetic(), nil
	case "lu":
		return jessica2.NewLU(), nil
	case "kv", "kvmix":
		return jessica2.NewKVMix(), nil
	case "serve", "servemix":
		// Open-loop: the arrival schedule is installed at session launch
		// from the scenario's Arrivals spec (see ensureArrivals).
		return jessica2.NewServeMix(), nil
	}
	return nil, fmt.Errorf("unknown app %q", app)
}

// newPolicy resolves a -policy name; prof is the -profile-in artifact the
// warmstart policy replays (nil degrades it to a rebalance proxy).
func newPolicy(name string, prof *jessica2.StoredProfile) (jessica2.Policy, error) {
	switch strings.ToLower(name) {
	case "", "none", "off":
		return nil, nil
	case "nop":
		return jessica2.NopPolicy{}, nil
	case "rebalance":
		return jessica2.NewRebalancePolicy(), nil
	case "warmstart":
		return jessica2.NewWarmStartPolicy(prof), nil
	}
	return nil, fmt.Errorf("unknown policy %q (have none, nop, rebalance, warmstart)", name)
}

// parseArgs parses and validates a full command line (excluding argv[0]).
func parseArgs(args []string, errOut io.Writer) (*runConfig, error) {
	fs := flag.NewFlagSet("djvmrun", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		app       = fs.String("app", "sor", "benchmark: sor | bh | water | synth | lu | kv | serve")
		nodes     = fs.Int("nodes", 8, "cluster nodes")
		threads   = fs.Int("threads", 8, "worker threads")
		seed      = fs.Uint64("seed", 42, "workload seed")
		rateStr   = fs.String("rate", "full", "sampling rate: off | full | <n> (nX)")
		adaptive  = fs.Bool("adaptive", false, "enable the adaptive rate controller")
		stackProf = fs.Bool("stack", false, "enable stack sampling (16ms, lazy)")
		footprint = fs.Bool("footprint", false, "enable sticky-set footprinting")
		showTCM   = fs.Bool("tcm", true, "print the thread correlation map")
		plan      = fs.Bool("plan", false, "print a correlation-driven placement plan")
		scenSpec  = fs.String("scenario", "none", "fault-injection scenario presets, '+' or comma-separated (crash+burst composes a failure schedule with burst arrivals): hetero | ramp | jitter | noisy | phased | storm | crash | flaky | partition | poisson | diurnal | burst")
		recov     = fs.Bool("recover", false, "arm the failure-tolerance layer (heartbeat/lease detection, thread evacuation, reliable profile flushes)")
		protect   = fs.String("protect", "auto", "serving protection level for open-loop apps: off | shed | full | auto (auto = full when -recover is set, off otherwise)")
		scenSeed  = fs.Uint64("scenario-seed", 0, "scenario seed (0 = workload seed)")
		policy    = fs.String("policy", "none", "closed-loop policy: none | nop | rebalance")
		epochs    = fs.Int("epochs", 8, "closed-loop epoch count (epoch length = baseline exec / epochs)")
		epoch     = fs.Duration("epoch", 0, "explicit closed-loop epoch length (overrides -epochs; skips the pilot run)")
		seeds     = fs.Int("seeds", 1, "replicate the run over N consecutive seeds")
		parallel  = fs.Int("parallel", 0, "worker pool for -seeds replicas (0 = GOMAXPROCS, 1 = sequential)")
		workers   = fs.String("workers", "", "comma-separated djvmworker addresses; runs are dispatched to the fleet and rendered from the collected outcomes (plain profiling runs only)")
		benchjson = fs.String("benchjson", "", "write a machine-readable run report (exec times, wall clock, TCM builder variant) to this file")
		profIn    = fs.String("profile-in", "", "load a stored profile for a warm start (placement applied before epoch 0, TCM seeded; mismatched fingerprints fall back to cold with a warning)")
		profOut   = fs.String("profile-out", "", "save the end-of-run profile to this file")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	rc := &runConfig{
		app: *app, nodes: *nodes, threads: *threads, seed: *seed,
		adaptive: *adaptive, stackProf: *stackProf, footprint: *footprint,
		showTCM: *showTCM, plan: *plan, scenSpec: *scenSpec, recover: *recov,
		protect:   strings.ToLower(*protect),
		policyTag: strings.ToLower(*policy),
		epochs:    *epochs, epoch: jessica2.Time(epoch.Nanoseconds()),
		seeds: *seeds, parallel: *parallel, workers: *workers, benchjson: *benchjson,
		profileIn: *profIn, profileOut: *profOut,
	}
	if _, err := newWorkload(rc.app); err != nil {
		return nil, err
	}
	if rc.nodes < 1 {
		return nil, fmt.Errorf("need at least one node, got %d", rc.nodes)
	}
	if rc.threads < 1 {
		return nil, fmt.Errorf("need at least one thread, got %d", rc.threads)
	}
	switch strings.ToLower(*rateStr) {
	case "off", "0":
		rc.rate = 0
	case "full":
		rc.rate = jessica2.FullRate
	default:
		n, err := strconv.Atoi(*rateStr)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad rate %q", *rateStr)
		}
		rc.rate = jessica2.Rate(n)
	}
	// Validate-only construction: runSeed rebuilds a fresh scenario and
	// policy per replica (seeded state must not be shared across concurrent
	// seed jobs), so the parsed instances are discarded here on purpose.
	rc.scenSeed = *scenSeed
	ss := rc.scenSeed
	if ss == 0 {
		ss = rc.seed
	}
	if _, err := jessica2.ParseScenario(rc.scenSpec, rc.nodes, ss); err != nil {
		return nil, err
	}
	switch rc.protect {
	case "off", "none", "shed", "full", "auto":
	default:
		return nil, fmt.Errorf("unknown -protect %q (have off, shed, full, auto)", *protect)
	}
	if (rc.protect == "shed" || rc.protect == "full") && !rc.openLoop() {
		return nil, fmt.Errorf("-protect %s needs an open-loop app (serve), got -app %s", rc.protect, rc.app)
	}
	pol, err := newPolicy(rc.policyTag, nil)
	if err != nil {
		return nil, err
	}
	if pol != nil && rc.epoch <= 0 && rc.epochs < 1 {
		return nil, fmt.Errorf("-policy %s needs -epochs >= 1 or an explicit -epoch", rc.policyTag)
	}
	if rc.epoch < 0 {
		return nil, fmt.Errorf("negative -epoch")
	}
	if rc.seeds < 1 {
		return nil, fmt.Errorf("-seeds must be at least 1, got %d", rc.seeds)
	}
	if rc.profileOut != "" && rc.seeds > 1 {
		return nil, fmt.Errorf("-profile-out captures one run's profile; incompatible with -seeds %d", rc.seeds)
	}
	if rc.parallel < 0 {
		return nil, fmt.Errorf("negative -parallel")
	}
	if rc.workers != "" {
		// Dispatched runs travel as experiments.Spec: only what the spec can
		// express is eligible. Closed-loop policies, the failure-tolerance
		// layer and profile I/O are session-side machinery that does not
		// serialize; the open-loop and synthetic apps have no spec mapping.
		if _, ok := specApp(rc.app); !ok {
			return nil, fmt.Errorf("-workers cannot dispatch -app %s (specs cover sor, bh, water, lu, kv)", rc.app)
		}
		if pol != nil {
			return nil, fmt.Errorf("-workers cannot dispatch a -policy run")
		}
		if rc.recover {
			return nil, fmt.Errorf("-workers cannot dispatch a -recover run")
		}
		if rc.profileIn != "" || rc.profileOut != "" {
			return nil, fmt.Errorf("-workers cannot dispatch profile I/O runs")
		}
	}
	return rc, nil
}

// specApp maps a -app name onto its experiments.Spec identity (the subset
// of apps the dispatcher can ship).
func specApp(app string) (experiments.App, bool) {
	switch strings.ToLower(app) {
	case "sor":
		return experiments.AppSOR, true
	case "bh", "barnes-hut", "barneshut":
		return experiments.AppBarnesHut, true
	case "water", "ws", "water-spatial":
		return experiments.AppWaterSpatial, true
	case "lu":
		return experiments.AppLU, true
	case "kv", "kvmix":
		return experiments.AppKVMix, true
	}
	return 0, false
}

// openLoop reports whether the configured app is schedule-driven.
func (rc *runConfig) openLoop() bool {
	w, err := newWorkload(rc.app)
	if err != nil {
		return false
	}
	_, ok := w.(jessica2.OpenLoop)
	return ok
}

// protection resolves the -protect level: auto becomes full when the
// failure-tolerance layer is armed on an open-loop app (serving through
// failures wants the whole stack) and off otherwise, so plain serve runs
// keep their classic byte-identical output.
func (rc *runConfig) protection() string {
	switch rc.protect {
	case "auto":
		if rc.recover && rc.openLoop() {
			return "full"
		}
		return "off"
	case "none":
		return "off"
	}
	return rc.protect
}

// robustFor maps a resolved protection level onto a ServeMix robustness
// config (nil = classic static path).
func robustFor(level string) *jessica2.RobustConfig {
	switch level {
	case "shed":
		// Deadline + admission control only: the tail is capped at the SLO
		// but nothing stranded on a dead node is rescued.
		full := jessica2.DefaultRobustConfig()
		return &jessica2.RobustConfig{Deadline: full.Deadline, Capacity: full.Capacity}
	case "full":
		return jessica2.DefaultRobustConfig()
	}
	return nil
}

// ensureArrivals gives an open-loop app a default arrival schedule when the
// chosen scenario does not carry one: a modest Poisson stream seeded like
// the scenario, so `-app serve` works without an explicit arrival preset.
// Closed-loop apps pass through untouched.
func (rc *runConfig) ensureArrivals(scen *jessica2.Scenario, seed uint64) *jessica2.Scenario {
	w, err := newWorkload(rc.app)
	if err != nil {
		return scen
	}
	if _, ok := w.(jessica2.OpenLoop); !ok {
		return scen
	}
	if scen != nil && scen.Arrivals != nil {
		return scen
	}
	if scen == nil {
		scen = &jessica2.Scenario{Name: "poisson-default", Seed: seed}
	}
	scen.Arrivals = &jessica2.Arrivals{
		Kind:    jessica2.ArrivePoisson,
		Rate:    1000,
		Horizon: jessica2.Second,
	}
	return scen
}

// buildSession assembles one session for the config; policy installs the
// closed-loop controller (nil = plain run) with the given epoch length.
// Scenario, policy and seed are per-run arguments because -seeds replicas
// run concurrently and must not share stateful instances.
func (rc *runConfig) buildSession(scen *jessica2.Scenario, policy jessica2.Policy, seed uint64, epoch jessica2.Time, pio jessica2.ProfileIO) (*jessica2.Session, *jessica2.Profiler, error) {
	cfg := jessica2.DefaultConfig()
	cfg.Nodes = rc.nodes
	cfg.Epoch = epoch
	if rc.rate == 0 {
		cfg.Tracking = jessica2.TrackingOff
	}
	cfg.Scenario = scen
	cfg.Profile = pio
	if rc.recover {
		cfg.Failure = jessica2.DefaultFailureConfig()
	}
	sess := jessica2.NewSession(cfg)
	w, err := newWorkload(rc.app)
	if err != nil {
		return nil, nil, err
	}
	if sm, ok := w.(*jessica2.ServeMix); ok {
		sm.Robust = robustFor(rc.protection())
	}
	if err := sess.Launch(w, jessica2.Params{Threads: rc.threads, Seed: seed}); err != nil {
		return nil, nil, err
	}
	pc := jessica2.ProfileConfig{Rate: rc.rate}
	if rc.adaptive {
		ac := jessica2.DefaultAdaptiveConfig()
		pc.Adaptive = &ac
		pc.Rate = 0
	}
	if rc.stackProf {
		sc := jessica2.DefaultStackConfig()
		pc.Stack = &sc
	}
	if rc.footprint {
		pc.Footprint = &jessica2.FootprintConfig{FootprinterConfig: jessica2.DefaultFootprinter()}
	}
	prof, err := sess.AttachProfiling(pc)
	if err != nil {
		return nil, nil, err
	}
	if policy != nil {
		if err := sess.SetPolicy(policy); err != nil {
			return nil, nil, err
		}
	}
	return sess, prof, nil
}

// runReport is the -benchjson document: one machine-readable record of the
// invocation, its per-seed simulated execution times and the host-side
// wall clock, tagged with the TCM builder variant the binary carries so
// before/after perf artifacts are self-describing.
type runReport struct {
	App        string    `json:"app"`
	Scenario   string    `json:"scenario"`
	Policy     string    `json:"policy"`
	Seeds      int       `json:"seeds"`
	Parallel   int       `json:"parallel"`
	GoVersion  string    `json:"go_version"`
	TCMBuilder string    `json:"tcm_builder"`
	ExecMs     []float64 `json:"exec_ms"`
	WallMs     float64   `json:"wall_clock_ms"`
}

// execute runs the parsed invocation, writing the report to out. With
// -seeds N > 1 the replicas fan out over the runner pool, each rendering
// into its own buffer; buffers are printed in seed order so the combined
// report is byte-identical at any parallelism. With -benchjson the
// per-seed execution times and wall clock are additionally written as a
// JSON report.
func (rc *runConfig) execute(out io.Writer) error {
	start := time.Now()
	if rc.workers != "" {
		return rc.executeDispatched(out, start)
	}
	if rc.profileIn != "" {
		prof, err := jessica2.LoadProfile(rc.profileIn)
		if err != nil {
			return fmt.Errorf("-profile-in %s: %w", rc.profileIn, err)
		}
		rc.loaded = prof
	}
	execs := make([]jessica2.Time, rc.seeds)
	if rc.seeds == 1 {
		var err error
		execs[0], err = rc.runSeed(rc.seed, out)
		if err != nil {
			return err
		}
		return rc.writeBenchJSON(execs, time.Since(start))
	}
	pool := runner.New(rc.parallel)
	type result struct {
		buf bytes.Buffer
		err error
	}
	results := make([]result, rc.seeds)
	runner.Go(pool, rc.seeds, func(i int) {
		execs[i], results[i].err = rc.runSeed(rc.seed+uint64(i), &results[i].buf)
	})
	for i := range results {
		fmt.Fprintf(out, "===== seed %d =====\n", rc.seed+uint64(i))
		if results[i].err != nil {
			return results[i].err
		}
		if _, err := io.Copy(out, &results[i].buf); err != nil {
			return err
		}
	}
	return rc.writeBenchJSON(execs, time.Since(start))
}

// buildSpec maps one replica of the invocation onto the wire-portable
// experiment spec the dispatcher ships.
func (rc *runConfig) buildSpec(seed uint64) (experiments.Spec, error) {
	app, ok := specApp(rc.app)
	if !ok {
		return experiments.Spec{}, fmt.Errorf("-app %s has no spec mapping", rc.app)
	}
	ss := rc.scenSeed
	if ss == 0 {
		ss = seed
	}
	scen, err := jessica2.ParseScenario(rc.scenSpec, rc.nodes, ss)
	if err != nil {
		return experiments.Spec{}, err
	}
	spec := experiments.Spec{
		App: app, Nodes: rc.nodes, Threads: rc.threads, Seed: seed,
		Rate: rc.rate, Tracking: jessica2.TrackingSampled, TransferOALs: true,
		Scenario: scen,
	}
	if rc.rate == 0 {
		spec.Tracking = jessica2.TrackingOff
	}
	if rc.adaptive {
		ac := jessica2.DefaultAdaptiveConfig()
		spec.Adaptive = &ac
		spec.Rate = 0
	}
	if rc.stackProf {
		sc := jessica2.DefaultStackConfig()
		spec.Stack = &sc
	}
	if rc.footprint {
		spec.Footprint = &jessica2.FootprintConfig{FootprinterConfig: jessica2.DefaultFootprinter()}
	}
	return spec, nil
}

// executeDispatched ships the invocation — all -seeds replicas as one
// batch — to the djvmworker fleet and renders each collected outcome in
// seed order. Unreachable or dying workers degrade to local execution
// inside the dispatcher, so the command succeeds (more slowly) even with
// the whole fleet down.
func (rc *runConfig) executeDispatched(out io.Writer, start time.Time) error {
	specs := make([]experiments.Spec, rc.seeds)
	for i := range specs {
		var err error
		if specs[i], err = rc.buildSpec(rc.seed + uint64(i)); err != nil {
			return err
		}
	}
	d := dispatch.New(dispatch.Config{
		Workers:  strings.Split(rc.workers, ","),
		Fallback: runner.New(rc.parallel),
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	outs, err := d.RunSpecs(specs)
	if err != nil {
		return err
	}
	execs := make([]jessica2.Time, len(outs))
	for i, o := range outs {
		if rc.seeds > 1 {
			fmt.Fprintf(out, "===== seed %d =====\n", rc.seed+uint64(i))
		}
		rc.renderOut(o, out)
		execs[i] = o.Exec
	}
	s := d.Stats()
	fmt.Fprintf(out, "dispatch: %d jobs (%d remote, %d local), %d leases granted, %d expired, %d reassigned, %d stale rejected, %d workers lost\n",
		s.Jobs, s.Remote, s.Local, s.LeasesGranted, s.LeasesExpired, s.Reassignments, s.StaleRejected, s.WorkersLost)
	return rc.writeBenchJSON(execs, time.Since(start))
}

// renderOut prints the dispatched-run report for one collected outcome: a
// compact version of runSeed's report covering everything a Spec-shaped
// run produces.
func (rc *runConfig) renderOut(o *experiments.Out, out io.Writer) {
	w, _ := newWorkload(rc.app)
	scenName := "none"
	if o.Spec.Scenario != nil {
		scenName = o.Spec.Scenario.String()
	}
	fmt.Fprintf(out, "%s on %d nodes, %d threads (scenario: %s, dispatched)\n\n",
		w.Name(), rc.nodes, rc.threads, scenName)
	fmt.Fprintf(out, "execution time:    %v\n", o.Exec)
	fmt.Fprintf(out, "profiling traffic: %.1f KB OAL, %.1f KB GOS\n", o.OALKB(), o.GOSKB())
	if o.TCMTime > 0 {
		fmt.Fprintf(out, "TCM analyzer CPU:  %v\n", o.TCMTime)
	}
	fmt.Fprintln(out)
	if rc.adaptive && o.Profiler != nil {
		fmt.Fprintln(out, "adaptive controller trace:")
		for _, rcg := range o.Profiler.RateTrace {
			fmt.Fprintf(out, "  t=%v  %v -> %v  distance=%.4f converged=%v (resampled %d)\n",
				rcg.At, rcg.From, rcg.To, rcg.Distance, rcg.Converged, rcg.Resampled)
		}
		fmt.Fprintln(out)
	}
	if rc.footprint && o.Footprints != nil {
		fmt.Fprintln(out, "sticky-set footprints (thread 0):")
		fp := o.Footprints[0]
		for _, c := range fp.Classes() {
			fmt.Fprintf(out, "  %-10s %8d bytes\n", c, fp[c])
		}
		fmt.Fprintln(out)
	}
	if rc.showTCM && o.TCM != nil {
		fmt.Fprintln(out, "thread correlation map:")
		fmt.Fprintln(out, o.TCM)
	}
	if rc.plan && o.TCM != nil {
		cur := jessica2.BlockedPlacement(rc.threads, rc.nodes)
		next, moves := jessica2.PlanPlacement(o.TCM, cur, rc.nodes)
		fmt.Fprintf(out, "placement plan: cross-volume %.0f -> %.0f bytes\n",
			jessica2.CrossVolume(o.TCM, cur), jessica2.CrossVolume(o.TCM, next))
		for _, mv := range moves {
			fmt.Fprintf(out, "  %s\n", mv)
		}
	}
}

// writeBenchJSON emits the -benchjson report (no-op when the flag is
// unset).
func (rc *runConfig) writeBenchJSON(execs []jessica2.Time, wall time.Duration) error {
	if rc.benchjson == "" {
		return nil
	}
	rep := runReport{
		App:        rc.app,
		Scenario:   rc.scenSpec,
		Policy:     rc.policyTag,
		Seeds:      rc.seeds,
		Parallel:   rc.parallel,
		GoVersion:  runtime.Version(),
		TCMBuilder: jessica2.TCMBuilderVariant(),
		WallMs:     float64(wall.Nanoseconds()) / 1e6,
	}
	for _, e := range execs {
		rep.ExecMs = append(rep.ExecMs, e.Milliseconds())
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(rc.benchjson, append(data, '\n'), 0o644)
}

// runSeed executes one replica of the invocation at the given seed,
// returning the workload execution time.
func (rc *runConfig) runSeed(seed uint64, out io.Writer) (jessica2.Time, error) {
	// Fresh per-replica instances: the scenario's jitter stream follows the
	// replica's seed (unless pinned by -scenario-seed), and policies may
	// carry state across epochs.
	ss := rc.scenSeed
	if ss == 0 {
		ss = seed
	}
	scen, err := jessica2.ParseScenario(rc.scenSpec, rc.nodes, ss)
	if err != nil {
		return 0, err
	}
	scen = rc.ensureArrivals(scen, ss)
	policy, err := newPolicy(rc.policyTag, rc.loaded)
	if err != nil {
		return 0, err
	}
	scenName := "none"
	if scen != nil {
		scenName = scen.String()
	}

	epoch := rc.epoch
	if policy != nil && epoch <= 0 {
		// Pilot run: measure the baseline to calibrate the epoch length.
		// The pilot never loads or saves a profile — the calibration must
		// reflect the plain cold baseline.
		pilot, _, err := rc.buildSession(scen, nil, seed, 0, jessica2.ProfileIO{})
		if err != nil {
			return 0, err
		}
		rep, err := pilot.Run()
		if err != nil {
			return 0, err
		}
		epoch = rep.ExecTime() / jessica2.Time(rc.epochs)
		if epoch <= 0 {
			epoch = jessica2.Millisecond
		}
		fmt.Fprintf(out, "pilot (no policy): exec %v -> epoch %v over %d epochs\n\n",
			rep.ExecTime(), epoch, rc.epochs)
	}

	sess, prof, err := rc.buildSession(scen, policy, seed, epoch,
		jessica2.ProfileIO{Load: rc.loaded, Save: rc.profileOut != ""})
	if err != nil {
		return 0, err
	}
	rep, err := sess.Run()
	if err != nil {
		return 0, err
	}
	w, err := newWorkload(rc.app)
	if err != nil {
		return 0, err
	}
	fmt.Fprintf(out, "%s on %d nodes, %d threads (scenario: %s)\n\n%s\n",
		w.Name(), rc.nodes, rc.threads, scenName, rep)

	if warn := sess.ProfileWarning(); warn != "" {
		fmt.Fprintf(out, "warning: %s\n\n", warn)
	} else if rc.loaded != nil {
		fmt.Fprintf(out, "warm start from %s: %d hot-object homes, %d stored decisions replayable (fingerprint %s)\n\n",
			rc.profileIn, len(rc.loaded.HotHomes), len(rc.loaded.Decisions), rc.loaded.Fingerprint)
	}
	if rc.profileOut != "" {
		stored, err := sess.CapturedProfile()
		if err != nil {
			return 0, fmt.Errorf("capturing profile: %w", err)
		}
		if err := jessica2.SaveProfile(rc.profileOut, stored); err != nil {
			return 0, err
		}
		fmt.Fprintf(out, "profile saved to %s: %d TCM threads, %d hot-object homes, %d decisions (fingerprint %s)\n\n",
			rc.profileOut, stored.TCMThreads, len(stored.HotHomes), len(stored.Decisions), stored.Fingerprint)
	}

	if snap := sess.Snapshot(); snap.Serve != nil {
		fmt.Fprintf(out, "open-loop serving: %s\n\n", snap.Serve)
		if sv := snap.Serve; sv.Robust {
			fmt.Fprintf(out, "serving robustness (%s): slo-goodput %.0f/s (%d in SLO), shed %d, expired %d, failed fast %d\n",
				rc.protection(), sv.SLOGoodputPerSec, sv.CompletedInSLO,
				sv.Shed, sv.DeadlineExceeded, sv.FailedFast)
			fmt.Fprintf(out, "  recovery work: %d retried, %d hedged (%d wins), %d rerouted, %d breaker opens, %d wasted attempts\n\n",
				sv.Retried, sv.Hedged, sv.HedgeWins, sv.Rerouted, sv.BreakerOpens, sv.Wasted)
		}
	}

	if rc.recover {
		fs := sess.Kernel().FailureStats()
		fmt.Fprintf(out, "failure layer: %d lease expiries, %d recoveries, %d evacuations\n",
			fs.LeaseExpiries, fs.NodeRecoveries, fs.Evacuations)
		fmt.Fprintf(out, "  flushes: %d sent, %d retried, %d acked, %d abandoned, %d duplicates dropped\n",
			fs.FlushesSent, fs.FlushRetries, fs.FlushesAcked, fs.FlushesAbandoned, fs.DuplicateFlushes)
		if h := sess.Kernel().HealthInto(nil); h != nil {
			fmt.Fprintf(out, "  final health: %d/%d nodes alive\n", h.LiveNodes, rc.nodes)
		}
		fmt.Fprintln(out)
	}
	if policy != nil {
		var applied []jessica2.AppliedAction
		for _, a := range sess.Actions() {
			if a.Note == "" {
				applied = append(applied, a)
			}
		}
		fmt.Fprintf(out, "closed-loop policy %q: %d epochs, %d actions applied\n",
			policy.Name(), sess.Epochs(), len(applied))
		const maxShown = 12
		for i, a := range applied {
			if i == maxShown {
				fmt.Fprintf(out, "  ... (%d more)\n", len(applied)-maxShown)
				break
			}
			fmt.Fprintf(out, "  epoch %2d t=%v  %v\n", a.Epoch, a.At, a.Action)
		}
		fmt.Fprintln(out)
	}
	if rc.adaptive {
		fmt.Fprintln(out, "adaptive controller trace:")
		for _, rcg := range prof.RateTrace() {
			fmt.Fprintf(out, "  t=%v  %v -> %v  distance=%.4f converged=%v (resampled %d)\n",
				rcg.At, rcg.From, rcg.To, rcg.Distance, rcg.Converged, rcg.Resampled)
		}
		fmt.Fprintln(out)
	}
	if rc.footprint {
		fmt.Fprintln(out, "sticky-set footprints (thread 0):")
		fp := prof.Footprint(0)
		for _, c := range fp.Classes() {
			fmt.Fprintf(out, "  %-10s %8d bytes\n", c, fp[c])
		}
		fmt.Fprintln(out)
	}
	if rc.showTCM && rc.rate != 0 {
		fmt.Fprintln(out, "thread correlation map:")
		fmt.Fprintln(out, rep.TCM())
	}
	if rc.plan && rc.rate != 0 {
		m := rep.TCM()
		cur := jessica2.BlockedPlacement(rc.threads, rc.nodes)
		next, moves := jessica2.PlanPlacement(m, cur, rc.nodes)
		fmt.Fprintf(out, "placement plan: cross-volume %.0f -> %.0f bytes\n",
			jessica2.CrossVolume(m, cur), jessica2.CrossVolume(m, next))
		for _, mv := range moves {
			fmt.Fprintf(out, "  %s\n", mv)
		}
	}
	return rep.ExecTime(), nil
}

func main() {
	rc, err := parseArgs(os.Args[1:], os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := rc.execute(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
