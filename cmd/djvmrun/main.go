// Command djvmrun executes one benchmark on the simulated distributed JVM
// with chosen profiling settings and prints the run report, the thread
// correlation map, and (optionally) a balancer plan derived from it.
//
// Usage:
//
//	djvmrun -app sor -threads 8 -rate full
//	djvmrun -app bh -threads 16 -rate 4 -stack -footprint -plan
//	djvmrun -app water -adaptive
//	djvmrun -app kv -adaptive -scenario phased
//	djvmrun -app lu -scenario hetero,noisy,jitter -scenario-seed 7
//
// The -scenario flag injects fault-injection perturbation schedules
// (comma-separated presets: hetero, ramp, jitter, noisy, phased, storm)
// composed by the scenario engine; runs stay deterministic per seed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"jessica2"
)

func main() {
	var (
		app       = flag.String("app", "sor", "benchmark: sor | bh | water | synth | lu | kv")
		nodes     = flag.Int("nodes", 8, "cluster nodes")
		threads   = flag.Int("threads", 8, "worker threads")
		seed      = flag.Uint64("seed", 42, "workload seed")
		rateStr   = flag.String("rate", "full", "sampling rate: off | full | <n> (nX)")
		adaptive  = flag.Bool("adaptive", false, "enable the adaptive rate controller")
		stackProf = flag.Bool("stack", false, "enable stack sampling (16ms, lazy)")
		footprint = flag.Bool("footprint", false, "enable sticky-set footprinting")
		showTCM   = flag.Bool("tcm", true, "print the thread correlation map")
		plan      = flag.Bool("plan", false, "print a correlation-driven placement plan")
		scenSpec  = flag.String("scenario", "none", "fault-injection scenario presets, comma-separated: hetero | ramp | jitter | noisy | phased | storm")
		scenSeed  = flag.Uint64("scenario-seed", 0, "scenario seed (0 = workload seed)")
	)
	flag.Parse()

	var w jessica2.Workload
	switch strings.ToLower(*app) {
	case "sor":
		w = jessica2.NewSOR()
	case "bh", "barnes-hut", "barneshut":
		w = jessica2.NewBarnesHut()
	case "water", "ws", "water-spatial":
		w = jessica2.NewWaterSpatial()
	case "synth", "synthetic":
		w = jessica2.NewSynthetic()
	case "lu":
		w = jessica2.NewLU()
	case "kv", "kvmix":
		w = jessica2.NewKVMix()
	default:
		fmt.Fprintf(os.Stderr, "unknown app %q\n", *app)
		os.Exit(2)
	}

	var rate jessica2.Rate
	switch strings.ToLower(*rateStr) {
	case "off", "0":
		rate = 0
	case "full":
		rate = jessica2.FullRate
	default:
		n, err := strconv.Atoi(*rateStr)
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "bad rate %q\n", *rateStr)
			os.Exit(2)
		}
		rate = jessica2.Rate(n)
	}

	cfg := jessica2.DefaultConfig()
	cfg.Nodes = *nodes
	if rate == 0 {
		cfg.Tracking = jessica2.TrackingOff
	}
	ss := *scenSeed
	if ss == 0 {
		ss = *seed
	}
	scen, err := jessica2.ParseScenario(*scenSpec, *nodes, ss)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg.Scenario = scen
	sys := jessica2.New(cfg)
	sys.Launch(w, jessica2.Params{Threads: *threads, Seed: *seed})

	pc := jessica2.ProfileConfig{Rate: rate}
	if *adaptive {
		ac := jessica2.DefaultAdaptiveConfig()
		pc.Adaptive = &ac
		pc.Rate = 0
	}
	if *stackProf {
		sc := jessica2.DefaultStackConfig()
		pc.Stack = &sc
	}
	if *footprint {
		pc.Footprint = &jessica2.FootprintConfig{FootprinterConfig: jessica2.DefaultFootprinter()}
	}
	prof := sys.AttachProfiling(pc)

	rep := sys.Run()
	fmt.Printf("%s on %d nodes, %d threads (scenario: %s)\n\n%s\n", w.Name(), *nodes, *threads, scen, rep)

	if *adaptive {
		fmt.Println("adaptive controller trace:")
		for _, rc := range prof.RateTrace() {
			fmt.Printf("  t=%v  %v -> %v  distance=%.4f converged=%v (resampled %d)\n",
				rc.At, rc.From, rc.To, rc.Distance, rc.Converged, rc.Resampled)
		}
		fmt.Println()
	}
	if *footprint {
		fmt.Println("sticky-set footprints (thread 0):")
		fp := prof.Footprint(0)
		for _, c := range fp.Classes() {
			fmt.Printf("  %-10s %8d bytes\n", c, fp[c])
		}
		fmt.Println()
	}
	if *showTCM && rate != 0 {
		fmt.Println("thread correlation map:")
		fmt.Println(rep.TCM())
	}
	if *plan && rate != 0 {
		m := rep.TCM()
		cur := jessica2.BlockedPlacement(*threads, *nodes)
		next, moves := jessica2.PlanPlacement(m, cur, *nodes)
		fmt.Printf("placement plan: cross-volume %.0f -> %.0f bytes\n",
			jessica2.CrossVolume(m, cur), jessica2.CrossVolume(m, next))
		for _, mv := range moves {
			fmt.Printf("  %s\n", mv)
		}
	}
}
