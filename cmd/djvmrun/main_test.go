package main

import (
	"io"
	"strings"
	"testing"

	"jessica2"
)

func parse(t *testing.T, args ...string) (*runConfig, error) {
	t.Helper()
	return parseArgs(args, io.Discard)
}

func TestParseDefaults(t *testing.T) {
	rc, err := parse(t)
	if err != nil {
		t.Fatal(err)
	}
	if rc.app != "sor" || rc.nodes != 8 || rc.threads != 8 || rc.seed != 42 {
		t.Fatalf("defaults: %+v", rc)
	}
	if rc.rate != jessica2.FullRate || rc.policy != nil || rc.scenario != nil {
		t.Fatalf("defaults: rate=%v policy=%v scenario=%v", rc.rate, rc.policy, rc.scenario)
	}
}

func TestParseAppScenarioPolicyEpochCombos(t *testing.T) {
	rc, err := parse(t, "-app", "kv", "-scenario", "phased", "-policy", "rebalance", "-epochs", "8")
	if err != nil {
		t.Fatal(err)
	}
	if rc.app != "kv" || rc.scenario == nil || rc.policy == nil || rc.epochs != 8 {
		t.Fatalf("combo: %+v", rc)
	}
	if rc.policy.Name() != "rebalance" {
		t.Fatalf("policy: %s", rc.policy.Name())
	}

	rc, err = parse(t, "-app", "lu", "-scenario", "hetero,noisy", "-policy", "nop", "-epoch", "5ms")
	if err != nil {
		t.Fatal(err)
	}
	if rc.policy.Name() != "nop" || rc.epoch != 5*jessica2.Millisecond {
		t.Fatalf("nop/epoch: policy=%v epoch=%v", rc.policy.Name(), rc.epoch)
	}

	// Policy "none" disables the closed loop regardless of epoch flags.
	rc, err = parse(t, "-policy", "none", "-epochs", "4")
	if err != nil || rc.policy != nil {
		t.Fatalf("none: policy=%v err=%v", rc.policy, err)
	}
}

func TestParseRejections(t *testing.T) {
	cases := map[string][]string{
		"unknown app":          {"-app", "nosuch"},
		"unknown policy":       {"-policy", "wat"},
		"unknown scenario":     {"-scenario", "meteor"},
		"bad rate":             {"-rate", "-3"},
		"zero nodes":           {"-nodes", "0"},
		"zero threads":         {"-threads", "0"},
		"policy without epoch": {"-policy", "rebalance", "-epochs", "0"},
		"unknown flag":         {"-frobnicate"},
	}
	for name, args := range cases {
		if _, err := parse(t, args...); err == nil {
			t.Errorf("%s (%v): accepted", name, args)
		}
	}
}

func TestExecuteClosedLoopSmoke(t *testing.T) {
	rc, err := parse(t,
		"-app", "kv", "-scenario", "phased", "-policy", "rebalance",
		"-epochs", "4", "-threads", "4", "-nodes", "2", "-tcm=false")
	if err != nil {
		t.Fatal(err)
	}
	// Shrink the run so the smoke test stays fast: an explicit epoch skips
	// the pilot.
	rc.epoch = 20 * jessica2.Millisecond
	var sb strings.Builder
	if err := rc.execute(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"closed-loop policy \"rebalance\"", "execution time:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
