package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"testing"

	"jessica2"
)

func parse(t *testing.T, args ...string) (*runConfig, error) {
	t.Helper()
	return parseArgs(args, io.Discard)
}

func TestParseDefaults(t *testing.T) {
	rc, err := parse(t)
	if err != nil {
		t.Fatal(err)
	}
	if rc.app != "sor" || rc.nodes != 8 || rc.threads != 8 || rc.seed != 42 {
		t.Fatalf("defaults: %+v", rc)
	}
	if rc.rate != jessica2.FullRate || rc.policyTag != "none" || rc.scenSpec != "none" {
		t.Fatalf("defaults: rate=%v policy=%v scenario=%v", rc.rate, rc.policyTag, rc.scenSpec)
	}
}

func TestParseAppScenarioPolicyEpochCombos(t *testing.T) {
	rc, err := parse(t, "-app", "kv", "-scenario", "phased", "-policy", "rebalance", "-epochs", "8")
	if err != nil {
		t.Fatal(err)
	}
	if rc.app != "kv" || rc.scenSpec != "phased" || rc.policyTag != "rebalance" || rc.epochs != 8 {
		t.Fatalf("combo: %+v", rc)
	}
	if p, err := newPolicy(rc.policyTag, nil); err != nil || p.Name() != "rebalance" {
		t.Fatalf("policy: %v err=%v", p, err)
	}

	rc, err = parse(t, "-app", "lu", "-scenario", "hetero,noisy", "-policy", "nop", "-epoch", "5ms")
	if err != nil {
		t.Fatal(err)
	}
	if rc.policyTag != "nop" || rc.epoch != 5*jessica2.Millisecond {
		t.Fatalf("nop/epoch: policy=%v epoch=%v", rc.policyTag, rc.epoch)
	}

	// Policy "none" disables the closed loop regardless of epoch flags.
	rc, err = parse(t, "-policy", "none", "-epochs", "4")
	if err != nil {
		t.Fatalf("none: err=%v", err)
	}
	if p, _ := newPolicy(rc.policyTag, nil); p != nil {
		t.Fatalf("none resolved to policy %v", p)
	}
}

func TestParseRejections(t *testing.T) {
	cases := map[string][]string{
		"unknown app":          {"-app", "nosuch"},
		"unknown policy":       {"-policy", "wat"},
		"unknown scenario":     {"-scenario", "meteor"},
		"bad rate":             {"-rate", "-3"},
		"zero nodes":           {"-nodes", "0"},
		"zero threads":         {"-threads", "0"},
		"policy without epoch": {"-policy", "rebalance", "-epochs", "0"},
		"unknown flag":         {"-frobnicate"},
		"zero seeds":           {"-seeds", "0"},
		"negative seeds":       {"-seeds", "-2"},
		"negative parallel":    {"-parallel", "-1"},
		"profile-out + seeds":  {"-profile-out", "x.j2pf", "-seeds", "2"},
		"unknown protect":      {"-protect", "bogus"},
		"protect closed-loop":  {"-app", "sor", "-protect", "full"},
		"shed closed-loop":     {"-app", "kv", "-protect", "shed"},
	}
	for name, args := range cases {
		if _, err := parse(t, args...); err == nil {
			t.Errorf("%s (%v): accepted", name, args)
		}
	}
}

// TestParseProtect pins the -protect grammar and the auto resolution: off
// unless -recover is armed on an open-loop app, where the full stack (and
// only then) is installed.
func TestParseProtect(t *testing.T) {
	rc, err := parse(t)
	if err != nil {
		t.Fatal(err)
	}
	if rc.protect != "auto" || rc.protection() != "off" || robustFor(rc.protection()) != nil {
		t.Fatalf("default: protect=%q resolves %q", rc.protect, rc.protection())
	}

	rc, err = parse(t, "-app", "serve")
	if err != nil {
		t.Fatal(err)
	}
	if rc.protection() != "off" {
		t.Fatalf("serve without -recover resolved to %q", rc.protection())
	}

	rc, err = parse(t, "-app", "serve", "-recover")
	if err != nil {
		t.Fatal(err)
	}
	if rc.protection() != "full" {
		t.Fatalf("serve with -recover resolved to %q, want full", rc.protection())
	}
	full := robustFor(rc.protection())
	if full == nil || full.MaxRetries == 0 || full.BreakerThreshold == 0 || full.HedgeQuantile == 0 {
		t.Fatalf("full level missing mechanisms: %+v", full)
	}

	// -recover on a closed-loop app must NOT arm serving protection.
	rc, err = parse(t, "-app", "kv", "-recover")
	if err != nil {
		t.Fatal(err)
	}
	if rc.protection() != "off" {
		t.Fatalf("closed-loop -recover resolved to %q", rc.protection())
	}

	rc, err = parse(t, "-app", "serve", "-protect", "shed", "-scenario", "crash+burst")
	if err != nil {
		t.Fatal(err)
	}
	shed := robustFor(rc.protection())
	if shed == nil || shed.Deadline <= 0 || shed.Capacity <= 0 {
		t.Fatalf("shed level = %+v", shed)
	}
	if shed.MaxRetries != 0 || shed.HedgeQuantile != 0 || shed.BreakerThreshold != 0 {
		t.Fatalf("shed level armed extra mechanisms: %+v", shed)
	}

	// An explicit level overrides auto's recover coupling.
	rc, err = parse(t, "-app", "serve", "-recover", "-protect", "off")
	if err != nil {
		t.Fatal(err)
	}
	if rc.protection() != "off" {
		t.Fatalf("explicit off resolved to %q", rc.protection())
	}
}

// TestParseScenarioPlusCombos: "+" and "," spell the same preset combo.
func TestParseScenarioPlusCombos(t *testing.T) {
	for _, spec := range []string{"crash+burst", "crash,burst", "flaky+burst"} {
		if _, err := parse(t, "-app", "serve", "-scenario", spec); err != nil {
			t.Errorf("-scenario %s rejected: %v", spec, err)
		}
	}
}

// TestExecuteRecoverServeSmoke is the end-to-end `-recover -app serve`
// path: crash+burst arrivals with the auto-armed full protection stack.
// The report must carry the serving line, the robustness tail, and the
// failure-layer tail, and the detector must actually have fired.
func TestExecuteRecoverServeSmoke(t *testing.T) {
	rc, err := parse(t,
		"-app", "serve", "-scenario", "crash+burst", "-recover",
		"-nodes", "4", "-threads", "8", "-rate", "off", "-tcm=false")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := rc.execute(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"open-loop serving:",
		"serving robustness (full):",
		"recovery work:",
		"failure layer:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "failure layer: 0 lease expiries") {
		t.Errorf("crash schedule never hit the detector:\n%s", out)
	}
}

func TestParseSeedsParallelDefaults(t *testing.T) {
	rc, err := parse(t)
	if err != nil {
		t.Fatal(err)
	}
	if rc.seeds != 1 || rc.parallel != 0 {
		t.Fatalf("defaults: seeds=%d parallel=%d", rc.seeds, rc.parallel)
	}
	rc, err = parse(t, "-seeds", "4", "-parallel", "2")
	if err != nil {
		t.Fatal(err)
	}
	if rc.seeds != 4 || rc.parallel != 2 {
		t.Fatalf("flags: seeds=%d parallel=%d", rc.seeds, rc.parallel)
	}
}

// TestExecuteSeedsParallelIdentity: the multi-seed replication must render
// byte-identical combined reports sequentially and fanned out, with one
// header per seed in ascending order.
func TestExecuteSeedsParallelIdentity(t *testing.T) {
	run := func(parallel int) string {
		rc, err := parse(t,
			"-app", "kv", "-threads", "4", "-nodes", "2", "-tcm=false",
			"-seeds", "3", "-parallel", fmt.Sprint(parallel))
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := rc.execute(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	seq, par := run(1), run(4)
	if seq != par {
		t.Fatalf("parallel seed replication diverged from sequential:\n--- seq\n%s\n--- par\n%s", seq, par)
	}
	for _, want := range []string{"===== seed 42 =====", "===== seed 43 =====", "===== seed 44 ====="} {
		if !strings.Contains(seq, want) {
			t.Errorf("combined report missing %q", want)
		}
	}
}

// TestExecuteBenchJSON: -benchjson writes a machine-readable run report
// with per-seed exec times and the TCM builder variant.
func TestExecuteBenchJSON(t *testing.T) {
	path := t.TempDir() + "/run.json"
	rc, err := parse(t,
		"-app", "kv", "-threads", "4", "-nodes", "2", "-tcm=false",
		"-seeds", "2", "-parallel", "1", "-benchjson", path)
	if err != nil {
		t.Fatal(err)
	}
	if rc.benchjson != path {
		t.Fatalf("benchjson flag not parsed: %+v", rc)
	}
	if err := rc.execute(io.Discard); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep runReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("invalid JSON report: %v\n%s", err, data)
	}
	if rep.App != "kv" || rep.Seeds != 2 || len(rep.ExecMs) != 2 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.TCMBuilder != jessica2.TCMBuilderVariant() {
		t.Fatalf("tcm_builder = %q, want %q", rep.TCMBuilder, jessica2.TCMBuilderVariant())
	}
	if rep.ExecMs[0] <= 0 || rep.WallMs <= 0 {
		t.Fatalf("non-positive timings: %+v", rep)
	}
}

func TestExecuteClosedLoopSmoke(t *testing.T) {
	rc, err := parse(t,
		"-app", "kv", "-scenario", "phased", "-policy", "rebalance",
		"-epochs", "4", "-threads", "4", "-nodes", "2", "-tcm=false")
	if err != nil {
		t.Fatal(err)
	}
	// Shrink the run so the smoke test stays fast: an explicit epoch skips
	// the pilot.
	rc.epoch = 20 * jessica2.Millisecond
	var sb strings.Builder
	if err := rc.execute(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"closed-loop policy \"rebalance\"", "execution time:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestExecuteProfileRoundTrip: -profile-out saves a loadable profile whose
// warm reload (-profile-in, warmstart policy) reports the warm-start line
// and spends fewer correlation logs than the capture run; loading it under
// a different seed degrades to a cold start with the mismatch warning and
// no error.
func TestExecuteProfileRoundTrip(t *testing.T) {
	path := t.TempDir() + "/kv.j2pf"
	base := []string{
		"-app", "kv", "-scenario", "phased", "-threads", "4", "-nodes", "2",
		"-epoch", "20ms", "-tcm=false",
	}
	run := func(extra ...string) string {
		rc, err := parse(t, append(append([]string(nil), base...), extra...)...)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := rc.execute(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	corrLogs := func(out string) int {
		for _, line := range strings.Split(out, "\n") {
			if rest, ok := strings.CutPrefix(line, "correlation logs:"); ok {
				n, err := strconv.Atoi(strings.TrimSpace(rest))
				if err != nil {
					t.Fatalf("bad correlation-logs line %q: %v", line, err)
				}
				return n
			}
		}
		t.Fatalf("no correlation-logs line in:\n%s", out)
		return 0
	}

	cold := run("-policy", "rebalance", "-profile-out", path)
	if !strings.Contains(cold, "profile saved to "+path) {
		t.Fatalf("capture run did not report the save:\n%s", cold)
	}
	prof, err := jessica2.LoadProfile(path)
	if err != nil {
		t.Fatalf("saved profile does not load: %v", err)
	}
	if prof.Fingerprint.Workload != "KVMix" || prof.Fingerprint.Seed != 42 {
		t.Fatalf("fingerprint = %+v", prof.Fingerprint)
	}

	warm := run("-policy", "warmstart", "-profile-in", path)
	if !strings.Contains(warm, "warm start from "+path) {
		t.Fatalf("warm run did not report the load:\n%s", warm)
	}
	if strings.Contains(warm, "warning:") {
		t.Fatalf("matching profile produced a warning:\n%s", warm)
	}
	if cl, wl := corrLogs(cold), corrLogs(warm); wl >= cl {
		t.Errorf("warm run logged %d correlations, capture run %d — the floor rate never engaged", wl, cl)
	}

	mismatch := run("-policy", "warmstart", "-profile-in", path, "-seed", "7")
	if !strings.Contains(mismatch, "warning: profile fingerprint mismatch") {
		t.Fatalf("mismatched profile produced no warning:\n%s", mismatch)
	}
}
