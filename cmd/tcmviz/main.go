// Command tcmviz renders thread correlation maps as ASCII heat maps — the
// Fig. 1 comparison of inherent (fine-grained) vs induced (page-based)
// sharing patterns, for any of the built-in workloads.
//
// Usage:
//
//	tcmviz -app bh -threads 32            # paper's Fig. 1 setting
//	tcmviz -app sor -threads 16 -scale 4  # quick look at SOR's band
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"jessica2/internal/experiments"
	"jessica2/internal/gos"
)

func main() {
	var (
		app     = flag.String("app", "bh", "benchmark: sor | bh | water")
		threads = flag.Int("threads", 32, "worker threads")
		nodes   = flag.Int("nodes", 8, "cluster nodes")
		scale   = flag.Int("scale", 1, "dataset divisor (1 = paper scale)")
		seed    = flag.Uint64("seed", 42, "workload seed")
	)
	flag.Parse()

	var a experiments.App
	switch strings.ToLower(*app) {
	case "sor":
		a = experiments.AppSOR
	case "bh", "barnes-hut":
		a = experiments.AppBarnesHut
	case "water", "ws":
		a = experiments.AppWaterSpatial
	default:
		fmt.Fprintf(os.Stderr, "unknown app %q\n", *app)
		os.Exit(2)
	}

	out := experiments.Run(experiments.Spec{
		App: a, Scale: experiments.Scale(*scale),
		Nodes: *nodes, Threads: *threads, Seed: *seed,
		Tracking: gos.TrackingExact, TransferOALs: true, PageTracker: true,
	})
	fmt.Printf("%s, %d threads on %d nodes (exact + page-based tracking)\n\n", a, *threads, *nodes)
	fmt.Printf("(a) inherent pattern — fine-grained tracking (galaxy contrast %.2fx)\n%s\n",
		experiments.GalaxyContrast(out.TCM), out.TCM)
	fmt.Printf("(b) induced pattern — page-based tracking (galaxy contrast %.2fx)\n%s",
		experiments.GalaxyContrast(out.PageTCM), out.PageTCM)
}
