// Command tcmviz renders thread correlation maps as ASCII heat maps — the
// Fig. 1 comparison of inherent (fine-grained) vs induced (page-based)
// sharing patterns, for any of the built-in workloads.
//
// Usage:
//
//	tcmviz -app bh -threads 32            # paper's Fig. 1 setting
//	tcmviz -app sor -threads 16 -scale 4  # quick look at SOR's band
//	tcmviz -profile kv.j2pf               # TCM stored by djvmrun -profile-out
//
// -profile renders the correlation map persisted in a profile-store file
// (djvmrun -profile-out) instead of running a workload: the stored
// fingerprint, the heat map, and the profile's placement inventory.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"jessica2/internal/experiments"
	"jessica2/internal/gos"
	"jessica2/internal/profile"
)

// vizConfig is one fully parsed and validated invocation.
type vizConfig struct {
	app     experiments.App
	threads int
	nodes   int
	scale   int
	seed    uint64
	// profilePath switches from running a workload to rendering the TCM
	// stored in a profile file.
	profilePath string
}

// parseArgs parses and validates a full command line (excluding argv[0]).
func parseArgs(args []string, errOut io.Writer) (*vizConfig, error) {
	fs := flag.NewFlagSet("tcmviz", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		app     = fs.String("app", "bh", "benchmark: sor | bh | water")
		threads = fs.Int("threads", 32, "worker threads")
		nodes   = fs.Int("nodes", 8, "cluster nodes")
		scale   = fs.Int("scale", 1, "dataset divisor (1 = paper scale)")
		seed    = fs.Uint64("seed", 42, "workload seed")
		prof    = fs.String("profile", "", "render the TCM stored in this profile file instead of running a workload")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	vc := &vizConfig{threads: *threads, nodes: *nodes, scale: *scale, seed: *seed, profilePath: *prof}
	switch strings.ToLower(*app) {
	case "sor":
		vc.app = experiments.AppSOR
	case "bh", "barnes-hut":
		vc.app = experiments.AppBarnesHut
	case "water", "ws":
		vc.app = experiments.AppWaterSpatial
	default:
		return nil, fmt.Errorf("unknown app %q", *app)
	}
	if vc.threads < 1 {
		return nil, fmt.Errorf("need at least one thread, got %d", vc.threads)
	}
	if vc.nodes < 1 {
		return nil, fmt.Errorf("need at least one node, got %d", vc.nodes)
	}
	if vc.scale < 1 {
		return nil, fmt.Errorf("-scale must be at least 1, got %d", vc.scale)
	}
	return vc, nil
}

// execute runs the configured workload under exact + page-based tracking
// and renders both heat maps to out; in -profile mode it instead renders
// the stored map and placement inventory of a profile-store file.
func (vc *vizConfig) execute(out io.Writer) error {
	if vc.profilePath != "" {
		p, err := profile.Load(vc.profilePath)
		if err != nil {
			return fmt.Errorf("loading %s: %w", vc.profilePath, err)
		}
		fmt.Fprintf(out, "%s: stored profile (format v%d)\n", vc.profilePath, profile.Version)
		fmt.Fprintf(out, "fingerprint: %s\n", p.Fingerprint)
		fmt.Fprintf(out, "placement: %d threads, %d hot-object homes, %d decisions, %d rate changes\n\n",
			p.TCMThreads, len(p.HotHomes), len(p.Decisions), len(p.RateTrace))
		fmt.Fprintf(out, "stored thread correlation map (%d threads)\n%s", p.TCMThreads, p.TCM())
		return nil
	}
	o := experiments.Run(experiments.Spec{
		App: vc.app, Scale: experiments.Scale(vc.scale),
		Nodes: vc.nodes, Threads: vc.threads, Seed: vc.seed,
		Tracking: gos.TrackingExact, TransferOALs: true, PageTracker: true,
	})
	fmt.Fprintf(out, "%s, %d threads on %d nodes (exact + page-based tracking)\n\n", vc.app, vc.threads, vc.nodes)
	fmt.Fprintf(out, "(a) inherent pattern — fine-grained tracking (galaxy contrast %.2fx)\n%s\n",
		experiments.GalaxyContrast(o.TCM), o.TCM)
	fmt.Fprintf(out, "(b) induced pattern — page-based tracking (galaxy contrast %.2fx)\n%s",
		experiments.GalaxyContrast(o.PageTCM), o.PageTCM)
	return nil
}

func main() {
	vc, err := parseArgs(os.Args[1:], os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := vc.execute(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
