package main

import (
	"errors"
	"io"
	"os"
	"strings"
	"testing"

	"jessica2/internal/experiments"
	"jessica2/internal/profile"
)

func parse(t *testing.T, args ...string) (*vizConfig, error) {
	t.Helper()
	return parseArgs(args, io.Discard)
}

func TestParseDefaults(t *testing.T) {
	vc, err := parse(t)
	if err != nil {
		t.Fatal(err)
	}
	if vc.app != experiments.AppBarnesHut || vc.threads != 32 || vc.nodes != 8 || vc.scale != 1 || vc.seed != 42 {
		t.Fatalf("defaults: %+v", vc)
	}
}

func TestParseAppAliases(t *testing.T) {
	for arg, want := range map[string]experiments.App{
		"sor":        experiments.AppSOR,
		"bh":         experiments.AppBarnesHut,
		"barnes-hut": experiments.AppBarnesHut,
		"water":      experiments.AppWaterSpatial,
		"ws":         experiments.AppWaterSpatial,
	} {
		vc, err := parse(t, "-app", arg)
		if err != nil {
			t.Fatalf("-app %s: %v", arg, err)
		}
		if vc.app != want {
			t.Fatalf("-app %s resolved to %v, want %v", arg, vc.app, want)
		}
	}
}

func TestParseRejections(t *testing.T) {
	cases := map[string][]string{
		"unknown app":     {"-app", "nosuch"},
		"zero threads":    {"-threads", "0"},
		"zero nodes":      {"-nodes", "0"},
		"zero scale":      {"-scale", "0"},
		"bad flag":        {"-frobnicate"},
		"non-numeric":     {"-threads", "many"},
		"negative thread": {"-threads", "-3"},
	}
	for name, args := range cases {
		if _, err := parse(t, args...); err == nil {
			t.Errorf("%s (%v): accepted", name, args)
		}
	}
}

// TestSmokeRendersBothMaps drives the command end to end on a small
// generated TCM: a shrunken SOR run must yield both heat maps with the
// correct dimensions and a non-empty inherent pattern.
func TestSmokeRendersBothMaps(t *testing.T) {
	vc, err := parse(t, "-app", "sor", "-threads", "6", "-nodes", "2", "-scale", "32", "-seed", "7")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := vc.execute(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"SOR, 6 threads on 2 nodes",
		"(a) inherent pattern",
		"(b) induced pattern",
		"galaxy contrast",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Each heat map renders one row of 6 shade characters per thread.
	rows := 0
	for _, line := range strings.Split(out, "\n") {
		if len(line) == 6 && strings.Trim(line, " .:-=+*#%@") == "" {
			rows++
		}
	}
	if rows != 2*6 {
		t.Errorf("expected 12 heat-map rows (two 6×6 maps), found %d:\n%s", rows, out)
	}
	// SOR's band pattern shares rows between neighbouring threads: the
	// inherent map must actually light up.
	if !strings.ContainsAny(out, ":-=+*#%@") {
		t.Error("inherent map rendered completely cold")
	}

	// Determinism: a second run renders byte-identical output.
	var sb2 strings.Builder
	if err := vc.execute(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != out {
		t.Error("same-seed reruns rendered different maps")
	}
}

// TestParseProfileFlag: -profile switches to stored-profile rendering and
// coexists with (ignored) workload flags.
func TestParseProfileFlag(t *testing.T) {
	vc, err := parse(t, "-profile", "some.j2pf")
	if err != nil {
		t.Fatal(err)
	}
	if vc.profilePath != "some.j2pf" {
		t.Fatalf("profilePath = %q", vc.profilePath)
	}
	if vc, err := parse(t); err != nil || vc.profilePath != "" {
		t.Fatalf("default profilePath = %q, err=%v", vc.profilePath, err)
	}
}

// TestSmokeRendersStoredProfile drives the -profile mode end to end on a
// synthetic saved profile: fingerprint, inventory and a heat-map row per
// stored thread.
func TestSmokeRendersStoredProfile(t *testing.T) {
	path := t.TempDir() + "/p.j2pf"
	stored := &profile.Profile{
		Fingerprint: profile.Fingerprint{Workload: "KVMix", Scenario: "phased", Nodes: 2, Threads: 4, Seed: 7},
		TCMThreads:  4,
		TCMCells: []int64{
			0, 4096, 0, 0,
			4096, 0, 0, 0,
			0, 0, 0, 8192,
			0, 0, 8192, 0,
		},
		HotHomes: []profile.HotHome{{Key: 3, Home: 1}, {Key: 9, Home: 0}},
	}
	if err := profile.Save(path, stored); err != nil {
		t.Fatal(err)
	}
	vc, err := parse(t, "-profile", path)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := vc.execute(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"stored profile (format v1)",
		"fingerprint: KVMix nodes=2 threads=4 seed=7 scenario=phased",
		"2 hot-object homes",
		"stored thread correlation map (4 threads)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	rows := 0
	for _, line := range strings.Split(out, "\n") {
		if len(line) == 4 && strings.Trim(line, " .:-=+*#%@") == "" {
			rows++
		}
	}
	if rows != 4 {
		t.Errorf("expected 4 heat-map rows, found %d:\n%s", rows, out)
	}

	// A corrupt file must surface the codec's typed error, not a panic.
	bad := t.TempDir() + "/bad.j2pf"
	if err := os.WriteFile(bad, []byte("not a profile"), 0o644); err != nil {
		t.Fatal(err)
	}
	vc, err = parse(t, "-profile", bad)
	if err != nil {
		t.Fatal(err)
	}
	if err := vc.execute(io.Discard); !errors.Is(err, profile.ErrBadMagic) {
		t.Fatalf("corrupt profile error = %v, want ErrBadMagic", err)
	}
}
