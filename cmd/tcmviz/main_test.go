package main

import (
	"io"
	"strings"
	"testing"

	"jessica2/internal/experiments"
)

func parse(t *testing.T, args ...string) (*vizConfig, error) {
	t.Helper()
	return parseArgs(args, io.Discard)
}

func TestParseDefaults(t *testing.T) {
	vc, err := parse(t)
	if err != nil {
		t.Fatal(err)
	}
	if vc.app != experiments.AppBarnesHut || vc.threads != 32 || vc.nodes != 8 || vc.scale != 1 || vc.seed != 42 {
		t.Fatalf("defaults: %+v", vc)
	}
}

func TestParseAppAliases(t *testing.T) {
	for arg, want := range map[string]experiments.App{
		"sor":        experiments.AppSOR,
		"bh":         experiments.AppBarnesHut,
		"barnes-hut": experiments.AppBarnesHut,
		"water":      experiments.AppWaterSpatial,
		"ws":         experiments.AppWaterSpatial,
	} {
		vc, err := parse(t, "-app", arg)
		if err != nil {
			t.Fatalf("-app %s: %v", arg, err)
		}
		if vc.app != want {
			t.Fatalf("-app %s resolved to %v, want %v", arg, vc.app, want)
		}
	}
}

func TestParseRejections(t *testing.T) {
	cases := map[string][]string{
		"unknown app":     {"-app", "nosuch"},
		"zero threads":    {"-threads", "0"},
		"zero nodes":      {"-nodes", "0"},
		"zero scale":      {"-scale", "0"},
		"bad flag":        {"-frobnicate"},
		"non-numeric":     {"-threads", "many"},
		"negative thread": {"-threads", "-3"},
	}
	for name, args := range cases {
		if _, err := parse(t, args...); err == nil {
			t.Errorf("%s (%v): accepted", name, args)
		}
	}
}

// TestSmokeRendersBothMaps drives the command end to end on a small
// generated TCM: a shrunken SOR run must yield both heat maps with the
// correct dimensions and a non-empty inherent pattern.
func TestSmokeRendersBothMaps(t *testing.T) {
	vc, err := parse(t, "-app", "sor", "-threads", "6", "-nodes", "2", "-scale", "32", "-seed", "7")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := vc.execute(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"SOR, 6 threads on 2 nodes",
		"(a) inherent pattern",
		"(b) induced pattern",
		"galaxy contrast",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Each heat map renders one row of 6 shade characters per thread.
	rows := 0
	for _, line := range strings.Split(out, "\n") {
		if len(line) == 6 && strings.Trim(line, " .:-=+*#%@") == "" {
			rows++
		}
	}
	if rows != 2*6 {
		t.Errorf("expected 12 heat-map rows (two 6×6 maps), found %d:\n%s", rows, out)
	}
	// SOR's band pattern shares rows between neighbouring threads: the
	// inherent map must actually light up.
	if !strings.ContainsAny(out, ":-=+*#%@") {
		t.Error("inherent map rendered completely cold")
	}

	// Determinism: a second run renders byte-identical output.
	var sb2 strings.Builder
	if err := vc.execute(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != out {
		t.Error("same-seed reruns rendered different maps")
	}
}
