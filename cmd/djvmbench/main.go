// Command djvmbench regenerates the paper's tables and figures on the
// simulated distributed JVM.
//
// Usage:
//
//	djvmbench -all                    # every table and figure, paper scale
//	djvmbench -table 2 -scale 4       # one table at 1/4 dataset scale
//	djvmbench -fig 9 -csv             # figure 9 as CSV series
//	djvmbench -all -parallel 4        # fan runs out over 4 workers
//	djvmbench -all -workers host1:9377,host2:9377 # fan out over a djvmworker fleet
//	djvmbench -benchjson BENCH_current.json # machine-readable perf report
//
// Paper scale (-scale 1) reproduces the exact datasets (SOR 2K×2K,
// Barnes-Hut 4K bodies, Water-Spatial 512 molecules); larger -scale values
// shrink datasets proportionally for quick runs.
//
// Every experiment is a set of independent seed-deterministic simulations;
// -parallel N fans them out over N workers (default GOMAXPROCS) through the
// parallel experiment runner and collects results in submission order, so
// the rendered tables and figures are byte-identical to -parallel 1 — only
// regeneration wall-clock changes.
//
// -benchjson measures every table/figure regeneration with the testing
// package's benchmark driver and writes ns/op, bytes/op and allocs/op per
// experiment — plus the total regeneration wall-clock and the parallelism
// it ran at — as a single-run JSON report. A PR claiming a perf delta
// combines two such runs under "baseline"/"optimized" keys in its committed
// BENCH_<pr>.json artifact (see EXPERIMENTS.md and BENCH_1.json).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"jessica2/internal/dispatch"
	"jessica2/internal/experiments"
	"jessica2/internal/runner"
	"jessica2/internal/tcm"
)

// benchResult is one experiment's measurement in the -benchjson report.
type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// benchReport is the top-level -benchjson document.
type benchReport struct {
	Scale     int    `json:"scale"`
	GoVersion string `json:"go_version"`
	// TCMBuilder names the correlation-daemon variant this binary was
	// built with ("incremental" by default, "full" under -tags tcmfull),
	// so before/after artifacts are self-describing.
	TCMBuilder string `json:"tcm_builder"`
	// Parallel is the runner pool width the experiments ran at; CPUs is the
	// host's GOMAXPROCS, for judging how much fan-out could actually bite.
	Parallel int `json:"parallel"`
	CPUs     int `json:"cpus"`
	// WallClockMs is the end-to-end wall-clock of regenerating everything
	// once, back to back — the number the parallel runner exists to shrink.
	WallClockMs float64       `json:"wall_clock_ms"`
	Benchmarks  []benchResult `json:"benchmarks"`
}

// benchCases lists every regeneration the report measures.
func benchCases(sc experiments.Scale, p *runner.Pool) []struct {
	name string
	fn   func()
} {
	return []struct {
		name string
		fn   func()
	}{
		{"Table1", func() { experiments.Table1(sc) }},
		{"Table2", func() { experiments.Table2(sc, p) }},
		{"Table3", func() { experiments.Table3(sc, p) }},
		{"Table4", func() { experiments.Table4(sc, p) }},
		{"Table5", func() { experiments.Table5(sc, p) }},
		{"Fig9", func() { experiments.Fig9(sc, p) }},
		{"Fig1", func() { experiments.Fig1(sc, p) }},
		{"FigS", func() { experiments.FigS(sc, p) }},
		{"FigCL", func() { experiments.FigCL(sc, p) }},
		{"FigR", func() { experiments.FigR(sc, p) }},
		{"FigT", func() { experiments.FigT(sc, p) }},
		{"FigG", func() { experiments.FigG(sc, p) }},
		{"FigW", func() { experiments.FigW(sc, p) }},
		// EpochSnapshot is the closed-loop epoch-rate probe: one KVMix/phased
		// run at fixed 2 ms epochs, every boundary paying the snapshot path
		// the incremental TCM maintenance feeds.
		{"EpochSnapshot", func() { experiments.ClosedLoopProbe(sc, "kv") }},
	}
}

// writeBenchJSON benchmarks every table and figure at the given scale and
// parallelism and writes the report to path.
func writeBenchJSON(path string, sc experiments.Scale, p *runner.Pool) error {
	cases := benchCases(sc, p)
	report := benchReport{
		Scale:      int(sc),
		GoVersion:  runtime.Version(),
		TCMBuilder: tcm.BuilderVariant(),
		Parallel:   p.Workers(),
		CPUs:       runtime.GOMAXPROCS(0),
	}
	// One timed end-to-end regeneration pass for the wall-clock headline.
	start := time.Now()
	for _, c := range cases {
		c.fn()
	}
	report.WallClockMs = float64(time.Since(start).Nanoseconds()) / 1e6
	fmt.Printf("full regeneration (scale 1/%d, parallel %d): %v\n",
		int(sc), p.Workers(), time.Since(start).Round(time.Millisecond))

	for _, c := range cases {
		fmt.Printf("benchmarking %s (scale 1/%d)...\n", c.name, int(sc))
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c.fn()
			}
		})
		report.Benchmarks = append(report.Benchmarks, benchResult{
			Name:        c.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func main() {
	var (
		table     = flag.Int("table", 0, "regenerate table N (1-5)")
		fig       = flag.Int("fig", 0, "regenerate figure N (1 or 9)")
		figS      = flag.Bool("figS", false, "regenerate Figure S (scenario sensitivity sweep)")
		figCL     = flag.Bool("figCL", false, "regenerate Figure CL (closed-loop adaptation sweep)")
		figR      = flag.Bool("figR", false, "regenerate Figure R (failure resilience sweep); exits non-zero if recovery does not win")
		figT      = flag.Bool("figT", false, "regenerate Figure T (open-loop tail-latency sweep); exits non-zero if closed-loop placement does not win on P99")
		figG      = flag.Bool("figG", false, "regenerate Figure G (serving-through-failures sweep); exits non-zero if the full protection stack does not win on SLO goodput and P99")
		figW      = flag.Bool("figW", false, "regenerate Figure W (profile-guided warm-start sweep); exits non-zero if warm start does not cut convergence epochs and profiling charge")
		all       = flag.Bool("all", false, "regenerate everything")
		scale     = flag.Int("scale", 1, "dataset divisor (1 = paper scale)")
		csv       = flag.Bool("csv", false, "emit CSV instead of aligned text")
		parallel  = flag.Int("parallel", 0, "experiment runner workers (0 = GOMAXPROCS, 1 = sequential)")
		workers   = flag.String("workers", "", "comma-separated djvmworker addresses; experiment batches are dispatched to the fleet (unreachable or dying workers degrade to the local pool)")
		benchjson = flag.String("benchjson", "", "benchmark every table/figure and write JSON perf report to this file")
	)
	flag.Parse()
	sc := experiments.Scale(*scale)
	if *parallel < 0 {
		fmt.Fprintf(os.Stderr, "djvmbench: negative -parallel %d\n", *parallel)
		os.Exit(2)
	}
	pool := runner.New(*parallel)
	var disp *dispatch.Dispatcher
	if *workers != "" {
		disp = dispatch.New(dispatch.Config{
			Workers:  strings.Split(*workers, ","),
			Fallback: pool,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, format+"\n", args...)
			},
		})
		experiments.SetDispatcher(disp)
		defer func() {
			s := disp.Stats()
			fmt.Fprintf(os.Stderr, "dispatch: %d jobs (%d remote, %d local), %d leases granted, %d expired, %d reassigned, %d stale rejected, %d workers lost\n",
				s.Jobs, s.Remote, s.Local, s.LeasesGranted, s.LeasesExpired, s.Reassignments, s.StaleRejected, s.WorkersLost)
		}()
	}
	if *benchjson != "" {
		if err := writeBenchJSON(*benchjson, sc, pool); err != nil {
			fmt.Fprintln(os.Stderr, "djvmbench:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *benchjson)
		return
	}
	if !*all && *table == 0 && *fig == 0 && !*figS && !*figCL && !*figR && !*figT && !*figG && !*figW {
		flag.Usage()
		os.Exit(2)
	}
	run := func(name string, f func()) {
		start := time.Now()
		fmt.Printf("== %s (scale 1/%d) ==\n", name, *scale)
		f()
		fmt.Printf("-- regenerated in %v --\n\n", time.Since(start).Round(time.Millisecond))
	}
	emit := func(t interface {
		String() string
	}) {
		type csver interface{ CSV() string }
		if *csv {
			if c, ok := t.(csver); ok {
				fmt.Println(c.CSV())
				return
			}
		}
		fmt.Println(t)
	}

	if *all || *table == 1 {
		run("Table I", func() { emit(experiments.Table1(sc)) })
	}
	if *all || *table == 2 {
		run("Table II", func() { emit(experiments.Table2(sc, pool).Table()) })
	}
	if *all || *table == 3 {
		run("Table III", func() { emit(experiments.Table3(sc, pool).Table()) })
	}
	if *all || *table == 4 {
		run("Table IV", func() { emit(experiments.Table4(sc, pool).Table()) })
	}
	if *all || *table == 5 {
		run("Table V", func() { emit(experiments.Table5(sc, pool).Table()) })
	}
	if *all || *fig == 9 {
		run("Figure 9", func() { emit(experiments.Fig9(sc, pool).Table()) })
	}
	if *all || *fig == 1 {
		run("Figure 1", func() { fmt.Println(experiments.Fig1(sc, pool)) })
	}
	if *all || *figS {
		run("Figure S", func() { emit(experiments.FigS(sc, pool).Table()) })
	}
	if *all || *figCL {
		run("Figure CL", func() { emit(experiments.FigCL(sc, pool).Table()) })
	}
	if *all || *figR {
		run("Figure R", func() {
			res := experiments.FigR(sc, pool)
			emit(res.Table())
			// Figure R doubles as an assertion: recovery must strictly beat
			// no-recovery and one-shot placement on every crash schedule.
			if vs := res.Violations(); len(vs) > 0 {
				for _, v := range vs {
					fmt.Fprintln(os.Stderr, "djvmbench: figR violation:", v)
				}
				os.Exit(1)
			}
		})
	}
	if *all || *figT {
		run("Figure T", func() {
			res := experiments.FigT(sc, pool)
			emit(res.Table())
			// Figure T doubles as an assertion: closed-loop placement must
			// strictly beat the nop baseline and the one-shot placement on
			// P99 latency on every arrival schedule.
			if vs := res.Violations(); len(vs) > 0 {
				for _, v := range vs {
					fmt.Fprintln(os.Stderr, "djvmbench: figT violation:", v)
				}
				os.Exit(1)
			}
		})
	}
	if *all || *figG {
		run("Figure G", func() {
			res := experiments.FigG(sc, pool)
			emit(res.Table())
			// Figure G doubles as an assertion: the full stack (deadlines,
			// shedding, retries, hedging, breakers) must strictly beat the
			// unprotected and shed-only levels on goodput-within-SLO and on
			// P99 on every failure schedule.
			if vs := res.Violations(); len(vs) > 0 {
				for _, v := range vs {
					fmt.Fprintln(os.Stderr, "djvmbench: figG violation:", v)
				}
				os.Exit(1)
			}
		})
	}
	if *all || *figW {
		run("Figure W", func() {
			res := experiments.FigW(sc, pool)
			emit(res.Table())
			// Figure W doubles as an assertion: the warm start must strictly
			// cut convergence epochs and profiling charge on the closed-loop
			// application and the charge on the open-loop one, with quality
			// inside the figure's epsilons.
			if vs := res.Violations(); len(vs) > 0 {
				for _, v := range vs {
					fmt.Fprintln(os.Stderr, "djvmbench: figW violation:", v)
				}
				os.Exit(1)
			}
		})
	}
}
