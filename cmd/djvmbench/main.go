// Command djvmbench regenerates the paper's tables and figures on the
// simulated distributed JVM.
//
// Usage:
//
//	djvmbench -all                 # every table and figure, paper scale
//	djvmbench -table 2 -scale 4    # one table at 1/4 dataset scale
//	djvmbench -fig 9 -csv          # figure 9 as CSV series
//
// Paper scale (-scale 1) reproduces the exact datasets (SOR 2K×2K,
// Barnes-Hut 4K bodies, Water-Spatial 512 molecules); larger -scale values
// shrink datasets proportionally for quick runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"jessica2/internal/experiments"
)

func main() {
	var (
		table = flag.Int("table", 0, "regenerate table N (1-5)")
		fig   = flag.Int("fig", 0, "regenerate figure N (1 or 9)")
		all   = flag.Bool("all", false, "regenerate everything")
		scale = flag.Int("scale", 1, "dataset divisor (1 = paper scale)")
		csv   = flag.Bool("csv", false, "emit CSV instead of aligned text")
	)
	flag.Parse()
	sc := experiments.Scale(*scale)
	if !*all && *table == 0 && *fig == 0 {
		flag.Usage()
		os.Exit(2)
	}
	run := func(name string, f func()) {
		start := time.Now()
		fmt.Printf("== %s (scale 1/%d) ==\n", name, *scale)
		f()
		fmt.Printf("-- regenerated in %v --\n\n", time.Since(start).Round(time.Millisecond))
	}
	emit := func(t interface {
		String() string
	}) {
		type csver interface{ CSV() string }
		if *csv {
			if c, ok := t.(csver); ok {
				fmt.Println(c.CSV())
				return
			}
		}
		fmt.Println(t)
	}

	if *all || *table == 1 {
		run("Table I", func() { emit(experiments.Table1(sc)) })
	}
	if *all || *table == 2 {
		run("Table II", func() { emit(experiments.Table2(sc).Table()) })
	}
	if *all || *table == 3 {
		run("Table III", func() { emit(experiments.Table3(sc).Table()) })
	}
	if *all || *table == 4 {
		run("Table IV", func() { emit(experiments.Table4(sc).Table()) })
	}
	if *all || *table == 5 {
		run("Table V", func() { emit(experiments.Table5(sc).Table()) })
	}
	if *all || *fig == 9 {
		run("Figure 9", func() { emit(experiments.Fig9(sc).Table()) })
	}
	if *all || *fig == 1 {
		run("Figure 1", func() { fmt.Println(experiments.Fig1(sc)) })
	}
}
