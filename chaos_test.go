package jessica2_test

import (
	"fmt"
	"strings"
	"testing"

	"jessica2"
)

// chaosWorkload is the chaos suite's medium KVMix: long enough (~seconds of
// virtual time) that every event of the crash (200/700/900 ms) and
// partition (300/1100 ms) presets lands inside the run.
func chaosWorkload() jessica2.Workload {
	k := jessica2.NewKVMix()
	k.Keys, k.Rounds, k.TxnsPerRound = 1024, 12, 24
	k.HotSpan = 128
	return k
}

// chaosTrace runs the chaos workload under the given scenario presets, with
// the failure-tolerance layer optionally armed, and renders every
// externally observable result — including the failure counters and final
// cluster health — into one string for byte comparison.
func chaosTrace(t *testing.T, presets string, recover bool, seed uint64) (string, jessica2.FailureStats) {
	t.Helper()
	cfg := jessica2.DefaultConfig()
	cfg.Nodes = 4
	// A low flush threshold forces dedicated CatOAL messages (lock-heavy
	// workloads otherwise piggyback their whole OAL on control traffic,
	// which failure injection never touches).
	cfg.OALFlushEntries = 8
	scen, err := jessica2.ParseScenario(presets, cfg.Nodes, seed)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Scenario = scen
	if recover {
		cfg.Failure = jessica2.DefaultFailureConfig()
	}
	sess := jessica2.NewSession(cfg)
	if err := sess.Launch(chaosWorkload(), jessica2.Params{Threads: 6, Seed: seed}); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.AttachProfiling(jessica2.ProfileConfig{Rate: 4}); err != nil {
		t.Fatal(err)
	}
	rep, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}

	fs := sess.Kernel().FailureStats()
	var sb strings.Builder
	sb.WriteString(rep.String())
	fmt.Fprintf(&sb, "kernel: %+v\n", rep.KernelStats())
	fmt.Fprintf(&sb, "net: %v", rep.NetworkStats())
	fmt.Fprintf(&sb, "oal=%d gos=%d\n", rep.OALBytes(), rep.GOSBytes())
	sb.WriteString(rep.TCM().String())
	fmt.Fprintf(&sb, "failure: %+v\n", fs)
	if h := sess.Kernel().HealthInto(nil); h != nil {
		fmt.Fprintf(&sb, "health: %d/%d alive\n", h.LiveNodes, cfg.Nodes)
	}
	return sb.String(), fs
}

// TestChaosDeterminism is the golden determinism suite under failure
// injection: each failure preset combination, with and without the
// recovery layer, must produce byte-identical traces across same-seed
// runs — crash schedules, lossy flushes, partitions, detection, retries
// and evacuation are all part of the deterministic simulation.
func TestChaosDeterminism(t *testing.T) {
	for _, presets := range []string{"crash", "flaky", "partition", "crash,flaky"} {
		presets := presets
		for _, recover := range []bool{false, true} {
			recover := recover
			name := presets
			if recover {
				name += "+recover"
			}
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				run1, _ := chaosTrace(t, presets, recover, 42)
				run2, _ := chaosTrace(t, presets, recover, 42)
				if run1 != run2 {
					t.Fatalf("same-seed chaos runs diverged:\n--- run 1\n%s\n--- run 2\n%s", run1, run2)
				}
			})
		}
	}
}

// TestChaosRecoveryLayerActs: under the crash preset the armed failure
// layer must actually detect, evacuate and recover — and change the trace
// relative to the fail-free runtime (the layer is not a no-op).
func TestChaosRecoveryLayerActs(t *testing.T) {
	bare, bareStats := chaosTrace(t, "crash", false, 42)
	rec, recStats := chaosTrace(t, "crash", true, 42)
	if bareStats != (jessica2.FailureStats{}) {
		t.Fatalf("failure counters moved without the layer armed: %+v", bareStats)
	}
	if recStats.LeaseExpiries == 0 {
		t.Error("crash preset never expired a lease")
	}
	if recStats.Evacuations == 0 {
		t.Error("crash preset never evacuated a thread")
	}
	if recStats.NodeRecoveries == 0 {
		t.Error("the preset's transient crash (node 1 restarts at 700ms) never revived")
	}
	if bare == rec {
		t.Error("armed failure layer left the crash trace unchanged")
	}
}

// TestChaosFlakyFlushesRecovered: under the flaky preset (15% flush loss,
// 10% duplication) the reliable-flush machinery must retry drops and
// discard duplicates.
func TestChaosFlakyFlushesRecovered(t *testing.T) {
	_, fs := chaosTrace(t, "flaky", true, 42)
	if fs.FlushesSent == 0 {
		t.Fatal("no dedicated flushes sent")
	}
	if fs.FlushRetries == 0 {
		t.Error("15% drop rate never triggered a retry")
	}
	if fs.DuplicateFlushes == 0 {
		t.Error("10% duplication rate never triggered the dedup")
	}
	if fs.FlushesAcked == 0 {
		t.Error("no flush was ever acknowledged")
	}
}

// healthWatcher is the test policy consuming the snapshot's Health view:
// it records node-death observations, heartbeat staleness and the failure
// counters as the closed loop sees them, epoch by epoch.
type healthWatcher struct {
	sawDead     bool
	sawStale    bool
	sawRevived  bool
	maxExpiries int64
	maxRetries  int64
}

func (w *healthWatcher) Name() string { return "health-watcher" }

// NeedsProfile triggers the per-boundary cluster-wide flush, so the lossy
// flush path is exercised mid-run, not just at finish.
func (w *healthWatcher) NeedsProfile() bool { return true }

func (w *healthWatcher) Observe(snap *jessica2.Snapshot) []jessica2.Action {
	h := snap.Health
	if h == nil {
		return nil
	}
	deadNow := false
	for _, nh := range h.Nodes {
		if !nh.Alive {
			w.sawDead = true
			deadNow = true
			if snap.Now-nh.LastBeat > 50*jessica2.Millisecond {
				w.sawStale = true
			}
		}
	}
	if w.sawDead && !deadNow {
		w.sawRevived = true
	}
	if h.Stats.LeaseExpiries > w.maxExpiries {
		w.maxExpiries = h.Stats.LeaseExpiries
	}
	if r := h.Stats.FlushRetries + h.Stats.FlushesAbandoned; r > w.maxRetries {
		w.maxRetries = r
	}
	return nil
}

// TestChaosHealthPolicy steps a crash+flaky session with the health
// watcher installed: the Snapshot must expose node liveness, heartbeat
// staleness and the retry counters to policies while the run is live.
func TestChaosHealthPolicy(t *testing.T) {
	cfg := jessica2.DefaultConfig()
	cfg.Nodes = 4
	scen, err := jessica2.ParseScenario("crash,flaky", cfg.Nodes, 42)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Scenario = scen
	cfg.Failure = jessica2.DefaultFailureConfig()
	sess := jessica2.NewSession(cfg)
	if err := sess.Launch(chaosWorkload(), jessica2.Params{Threads: 6, Seed: 42}); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.AttachProfiling(jessica2.ProfileConfig{Rate: 4}); err != nil {
		t.Fatal(err)
	}
	w := &healthWatcher{}
	if err := sess.SetPolicy(w); err != nil {
		t.Fatal(err)
	}
	for {
		done, err := sess.Step(50 * jessica2.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
	}
	if !w.sawDead {
		t.Error("policy never observed a dead node through Snapshot.Health")
	}
	if !w.sawStale {
		t.Error("policy never observed heartbeat staleness")
	}
	if !w.sawRevived {
		t.Error("policy never observed node 1's restart as a revival")
	}
	if w.maxExpiries == 0 {
		t.Error("lease-expiry counter never surfaced in snapshots")
	}
	if w.maxRetries == 0 {
		t.Error("flush retry/abandonment counters never surfaced in snapshots")
	}
}
