// Benchmarks regenerating the paper's tables and figures (one per table
// AND figure), plus ablations of the design choices called out in
// DESIGN.md. Each iteration executes the full experiment at 1/8 dataset
// scale so `go test -bench=.` completes quickly; run cmd/djvmbench with
// -scale 1 for paper-scale numbers (recorded in EXPERIMENTS.md).
package jessica2_test

import (
	"os"
	"strconv"
	"testing"

	"jessica2"
	"jessica2/internal/experiments"
	"jessica2/internal/gos"
	"jessica2/internal/heap"
	"jessica2/internal/runner"
	"jessica2/internal/sampling"
	"jessica2/internal/stack"
	"jessica2/internal/sticky"
	"jessica2/internal/tcm"
)

const benchScale = experiments.Scale(8)

// benchPool drives every table/figure regeneration below through the
// parallel experiment runner. JESSICA2_PARALLEL overrides the worker count
// (GOMAXPROCS by default); `make bench-seq` sets it to 1 so perf artifacts
// can still be captured on the classic single-threaded path. Results are
// byte-identical either way (asserted by TestParallelRegenerationIdentity);
// only wall-clock moves.
var benchPool = runner.New(envParallelism())

func envParallelism() int {
	n, err := strconv.Atoi(os.Getenv("JESSICA2_PARALLEL"))
	if err != nil {
		return 0 // runner default: GOMAXPROCS
	}
	return n
}

// BenchmarkTable1Characteristics regenerates Table I.
func BenchmarkTable1Characteristics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Table1(benchScale) == nil {
			b.Fatal("no table")
		}
	}
}

// BenchmarkTable2OALCollection regenerates Table II (collection CPU cost).
func BenchmarkTable2OALCollection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Table2(benchScale, benchPool)
		base := r.BaselineMs[experiments.AppBarnesHut]
		full := r.WithMs[experiments.AppBarnesHut][sampling.FullRate]
		b.ReportMetric((full-base)/base*100, "bh-full-overhead-%")
	}
}

// BenchmarkTable3CorrelationTracking regenerates Table III (exec time,
// message volumes, TCM computing time).
func BenchmarkTable3CorrelationTracking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Table3(benchScale, benchPool)
		cell := r.Cells[experiments.AppBarnesHut][sampling.FullRate]
		b.ReportMetric(cell.OALShare*100, "bh-oal-share-%")
		b.ReportMetric(cell.TCMTimeMs, "bh-tcm-ms")
	}
}

// BenchmarkTable4StickyAccuracy regenerates Table IV (footprint accuracy).
func BenchmarkTable4StickyAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Table4(benchScale, benchPool)
		var worst = 1.0
		for _, row := range r.Rows {
			if row.Accuracy < worst {
				worst = row.Accuracy
			}
		}
		b.ReportMetric(worst*100, "worst-class-accuracy-%")
	}
}

// BenchmarkTable5StickyOverhead regenerates Table V (stack sampling,
// footprinting and resolution overheads).
func BenchmarkTable5StickyOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Table5(benchScale, benchPool)
		base := r.BaselineMs[experiments.AppBarnesHut]
		lazy := r.StackMs[experiments.AppBarnesHut]["lazy16"]
		b.ReportMetric((lazy-base)/base*100, "bh-stack-lazy16-%")
	}
}

// BenchmarkFig9Accuracy regenerates Figure 9 (accuracy vs sampling rate).
func BenchmarkFig9Accuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig9(benchScale, benchPool)
		b.ReportMetric(r.MinAccuracyABS(experiments.AppBarnesHut)*100, "bh-min-accuracy-%")
	}
}

// BenchmarkFig1InherentVsInduced regenerates Figure 1 (false sharing).
func BenchmarkFig1InherentVsInduced(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig1(benchScale, benchPool)
		b.ReportMetric(experiments.GalaxyContrast(r.Inherent), "inherent-contrast")
		b.ReportMetric(experiments.GalaxyContrast(r.Induced), "induced-contrast")
	}
}

// --- ablations ---------------------------------------------------------------

// BenchmarkAblationPrimeGaps quantifies why real gaps are primes: with a
// cyclic allocation pattern of period 32, a gap of 32 aliases with the
// allocation cycle and samples a single phase class, while the prime 31
// spreads samples uniformly. The metric is the sampling bias of the "hot"
// object subset (|sampled-hot share − population-hot share|).
func BenchmarkAblationPrimeGaps(b *testing.B) {
	bias := func(gap int64) float64 {
		reg := heap.NewRegistry()
		c := reg.DefineClass("cyclic", 64, 0)
		c.SetGap(32, gap)
		const n = 32 * 200
		hot, sampledHot, sampled := 0, 0, 0
		for i := 0; i < n; i++ {
			o := reg.Alloc(c, 0)
			isHot := i%32 == 0 // one hot object per allocation cycle
			if isHot {
				hot++
			}
			if o.Sampled() {
				sampled++
				if isHot {
					sampledHot++
				}
			}
		}
		popShare := float64(hot) / float64(n)
		var smpShare float64
		if sampled > 0 {
			smpShare = float64(sampledHot) / float64(sampled)
		}
		d := smpShare - popShare
		if d < 0 {
			d = -d
		}
		return d
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(bias(32)*100, "pow2-gap-bias-%")
		b.ReportMetric(bias(31)*100, "prime-gap-bias-%")
	}
}

// BenchmarkAblationArrayBias quantifies the large-array bias the
// per-element amortization removes. A mixed population of small and large
// arrays is sampled at a coarse gap: large arrays are *always* selected
// (they contain a sampled element), so logging the whole array size
// overestimates the class's shared volume by roughly the gap factor, while
// the amortized sample size (sampledElems × elemSize × gap) stays within
// one element-stride of the truth.
func BenchmarkAblationArrayBias(b *testing.B) {
	run := func(amortized bool) (pctError float64) {
		reg := heap.NewRegistry()
		c := reg.DefineArrayClass("arr", 8)
		c.SetGap(64, 61)
		var truth, estimate float64
		for i := 0; i < 200; i++ {
			n := 16
			if i%10 == 0 {
				n = 2048 // a few 16 KB arrays among many 128 B ones
			}
			o := reg.AllocArray(c, n, 0)
			truth += float64(o.Bytes())
			if !o.Sampled() {
				continue
			}
			if amortized {
				estimate += float64(o.AmortizedBytes()) * float64(o.Class.Gap())
			} else {
				estimate += float64(o.Bytes())
			}
		}
		e := (estimate - truth) / truth * 100
		if e < 0 {
			e = -e
		}
		return e
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(run(false), "whole-array-error-%")
		b.ReportMetric(run(true), "amortized-error-%")
	}
}

// BenchmarkAblationMigration measures sticky-set prefetch: remote faults
// after a migration with and without the resolved sticky set.
func BenchmarkAblationMigration(b *testing.B) {
	run := func(prefetch bool) (faults int64) {
		cfg := jessica2.DefaultConfig()
		cfg.Nodes = 2
		sys := jessica2.New(cfg)
		eng := jessica2.NewMigrationEngine(sys)
		cls := sys.Kernel().Reg.DefineClass("Rec", 128, 1)
		cls.SetGap(1, 1)
		sys.Kernel().SpawnThread(0, "m", func(t *jessica2.Thread) {
			var objs []*jessica2.Object
			var prev *jessica2.Object
			for i := 0; i < 200; i++ {
				o := t.Alloc(cls)
				t.Write(o)
				if prev != nil {
					prev.Refs[0] = o
				}
				objs = append(objs, o)
				prev = o
			}
			var res *jessica2.Resolution
			if prefetch {
				res = sticky.Resolve(
					[]stack.InvariantRef{{Obj: objs[0]}},
					sticky.Footprint{"Rec": 200 * 128},
					sticky.DefaultResolverConfig())
			}
			eng.MigrateSelf(t, 1, res)
			before := t.Stats().Faults
			for _, o := range objs {
				t.Read(o)
			}
			faults = t.Stats().Faults - before
		})
		sys.Run()
		return faults
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(float64(run(false)), "cold-migration-faults")
		b.ReportMetric(float64(run(true)), "prefetch-migration-faults")
	}
}

// BenchmarkAblationLazyExtraction compares frame-content extraction work
// under lazy vs immediate sampling on a Barnes-Hut-like stack (stable
// bottom frames, churning recursion on top).
func BenchmarkAblationLazyExtraction(b *testing.B) {
	run := func(lazy bool) int {
		reg := heap.NewRegistry()
		c := reg.DefineClass("T", 16, 0)
		o := reg.Alloc(c, 0)
		st := stack.NewThreadStack()
		mStable := &stack.Method{Name: "forces"}
		mWalk := &stack.Method{Name: "walk"}
		st.Push(mStable, 3).SetRef(0, o)
		sp := stack.NewSampler(stack.Config{Lazy: lazy})
		for tick := 0; tick < 50; tick++ {
			// Fresh recursion frames between every sample.
			for d := 0; d < 10; d++ {
				st.Push(mWalk, 2)
			}
			sp.SampleStack(st)
			for d := 0; d < 10; d++ {
				st.Pop()
			}
		}
		return sp.Total.SlotsExtracted
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(float64(run(false)), "immediate-extracted-slots")
		b.ReportMetric(float64(run(true)), "lazy-extracted-slots")
	}
}

// BenchmarkAblationBalancer compares placements: spawn-order blocked vs
// correlation-driven, on the pipeline-style pattern.
func BenchmarkAblationBalancer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := tcm.NewMap(16)
		for p := 0; p+1 < 16; p += 2 {
			m.Set(p, p+1, 1000)
		}
		rr := jessica2.Assignment(make([]int, 16))
		for t := range rr {
			rr[t] = t % 4
		}
		planned, _ := jessica2.PlanPlacement(m, rr, 4)
		b.ReportMetric(jessica2.CrossVolume(m, rr), "roundrobin-cross-bytes")
		b.ReportMetric(jessica2.CrossVolume(m, planned), "planned-cross-bytes")
	}
}

// --- microbenchmarks of the hot paths ----------------------------------------

// BenchmarkAccessFastPath measures the inlined state-check path.
func BenchmarkAccessFastPath(b *testing.B) {
	cfg := gos.DefaultConfig()
	cfg.Nodes = 1
	k := gos.NewKernel(cfg)
	cls := k.Reg.DefineClass("X", 64, 0)
	k.SpawnThread(0, "t", func(t *gos.Thread) {
		o := t.Alloc(cls)
		t.Write(o)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t.Read(o)
		}
	})
	k.Run()
}

// BenchmarkTCMBuild measures the correlation daemon's accrual pass.
func BenchmarkTCMBuild(b *testing.B) {
	bl := tcm.NewBuilder(16)
	for o := int64(0); o < 5000; o++ {
		for th := 0; th < 16; th++ {
			if (o+int64(th))%5 == 0 {
				bl.AddAccess(th, o, 64)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bl.Build()
	}
}

// tcmPeeker is the builder surface the incremental-vs-legacy TCM
// microbenchmark drives; both variants are always compiled, so one binary
// measures the pair head to head.
type tcmPeeker interface {
	AddAccess(t int, key int64, bytes float64)
	PeekInto(dst *tcm.Map) *tcm.Map
}

// BenchmarkTCMIncremental measures the epoch-snapshot hot path — PeekInto
// at steady state — on realistic daemon populations: the per-object state a
// finished closed-loop KVMix / Synthetic-zipf probe ingested. Each
// iteration models one boundary: a repeat access (the overwhelmingly common
// per-epoch delta) followed by a reused-scratch peek. The legacy builder
// re-sorts all M objects and re-accrues every pair per peek; the
// incremental builder re-syncs only dirtied cells.
func BenchmarkTCMIncremental(b *testing.B) {
	for _, load := range []struct{ name, app string }{
		{"KVMix", "kv"},
		{"Synthetic-zipf", "zipf"},
	} {
		sess, _ := experiments.ClosedLoopProbe(benchScale, load.app)
		sum := sess.Kernel().Master().Summary()
		n := sess.Kernel().NumThreads()
		if sum.NumObjs() == 0 {
			b.Fatalf("%s probe ingested no objects", load.name)
		}
		variants := []struct {
			name string
			make func() tcmPeeker
		}{
			{"full", func() tcmPeeker {
				bl := tcm.NewFullBuilder(n)
				bl.IngestSummary(sum)
				return bl
			}},
			{"incremental", func() tcmPeeker {
				bl := tcm.NewIncBuilder(n)
				bl.IngestSummary(sum)
				return bl
			}},
		}
		for _, v := range variants {
			b.Run(load.name+"/"+v.name+"/peekinto", func(b *testing.B) {
				bl := v.make()
				scratch := bl.PeekInto(nil)
				b.ReportMetric(float64(sum.NumObjs()), "objects")
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					o := sum.Objs[i%len(sum.Objs)]
					bl.AddAccess(int(o.Threads[0]), o.Key, o.Bytes)
					scratch = bl.PeekInto(scratch)
				}
			})
		}
	}
}

// BenchmarkClosedLoopEpochRate measures the closed-loop session end to end
// at a fixed 2 ms epoch: one full KVMix/phased run with the rebalance
// policy per iteration, every boundary paying the flush + snapshot +
// observe pipeline the incremental TCM feeds.
func BenchmarkClosedLoopEpochRate(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sess, _ := experiments.ClosedLoopProbe(benchScale, "kv")
		b.ReportMetric(float64(sess.Epochs()), "epochs")
	}
}

// BenchmarkStackSample measures one sampler activation on a 12-deep stack.
func BenchmarkStackSample(b *testing.B) {
	reg := heap.NewRegistry()
	c := reg.DefineClass("T", 16, 0)
	o := reg.Alloc(c, 0)
	st := stack.NewThreadStack()
	m := &stack.Method{Name: "f"}
	for d := 0; d < 12; d++ {
		st.Push(m, 2).SetRef(0, o)
	}
	sp := stack.NewSampler(stack.DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.SampleStack(st)
	}
}

// BenchmarkDistanceABS measures the accuracy metric on a 32×32 map.
func BenchmarkDistanceABS(b *testing.B) {
	x, y := tcm.NewMap(32), tcm.NewMap(32)
	for i := 0; i < 32; i++ {
		for j := i + 1; j < 32; j++ {
			x.Set(i, j, float64(i*j))
			y.Set(i, j, float64(i*j+i))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tcm.DistanceABS(x, y)
	}
}

// BenchmarkAblationDistributedTCM compares the central correlation daemon
// against the §VI distributed reduction: master reorganization CPU and OAL
// wire volume for the same Water-Spatial run.
func BenchmarkAblationDistributedTCM(b *testing.B) {
	run := func(distributed bool) (masterMs, wireKB float64) {
		out := experiments.Run(experiments.Spec{
			App: experiments.AppWaterSpatial, Scale: benchScale,
			Nodes: 8, Threads: 8, Tracking: gos.TrackingSampled,
			Rate: sampling.FullRate, TransferOALs: true,
			DistributedTCM: distributed,
		})
		return out.TCMTime.Milliseconds(), out.OALKB()
	}
	for i := 0; i < b.N; i++ {
		cm, cw := run(false)
		dm, dw := run(true)
		b.ReportMetric(cm, "central-master-ms")
		b.ReportMetric(dm, "distributed-master-ms")
		b.ReportMetric(cw, "central-oal-KB")
		b.ReportMetric(dw, "distributed-oal-KB")
	}
}
