package jessica2_test

import (
	"bytes"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"jessica2"
)

// profileCaptureRun executes the closed-loop demo configuration (phased
// KVMix, 4 nodes, 8 threads) with profile capture armed and returns the
// captured artifact plus the session.
func profileCaptureRun(t *testing.T) (*jessica2.StoredProfile, *jessica2.Session) {
	t.Helper()
	cfg := profileRunConfig(t, 4)
	cfg.Profile = jessica2.ProfileIO{Save: true}
	sess := jessica2.NewSession(cfg)
	if err := sess.Launch(clKVMix(), jessica2.Params{Threads: 8, Seed: 42}); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.AttachProfiling(jessica2.ProfileConfig{Rate: jessica2.FullRate}); err != nil {
		t.Fatal(err)
	}
	if err := sess.SetPolicy(jessica2.NewRebalancePolicy()); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(); err != nil {
		t.Fatal(err)
	}
	prof, err := sess.CapturedProfile()
	if err != nil {
		t.Fatal(err)
	}
	return prof, sess
}

// profileRunConfig is the shared cluster shape for the profile tests.
func profileRunConfig(t *testing.T, nodes int) jessica2.Config {
	t.Helper()
	cfg := jessica2.DefaultConfig()
	cfg.Nodes = nodes
	cfg.Epoch = 100 * jessica2.Millisecond
	scen, err := jessica2.ScenarioPreset("phased", nodes, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Scenario = scen
	return cfg
}

// TestProfileCaptureContents: the captured artifact carries every section
// and the run's fingerprint.
func TestProfileCaptureContents(t *testing.T) {
	prof, sess := profileCaptureRun(t)
	want := jessica2.ProfileFingerprint{
		Workload: "KVMix", Scenario: "phased", Nodes: 4, Threads: 8, Seed: 42,
	}
	if prof.Fingerprint != want {
		t.Errorf("fingerprint = %+v, want %+v", prof.Fingerprint, want)
	}
	if sess.Fingerprint() != want {
		t.Errorf("Session.Fingerprint = %+v, want %+v", sess.Fingerprint(), want)
	}
	if prof.TCMThreads != 8 || len(prof.TCMCells) != 64 {
		t.Errorf("TCM %d threads / %d cells, want 8 / 64", prof.TCMThreads, len(prof.TCMCells))
	}
	if len(prof.Assignment) != 8 {
		t.Errorf("assignment has %d entries, want 8", len(prof.Assignment))
	}
	if len(prof.HotHomes) == 0 {
		t.Error("no hot-object homes captured")
	}
	if len(prof.Decisions) == 0 {
		t.Error("no applied decisions captured")
	}
	if prof.TCM().Total() == 0 {
		t.Error("captured TCM is empty")
	}
	// The byte encoding is deterministic and file round trips are exact.
	enc := jessica2.EncodeProfile(prof)
	if !bytes.Equal(enc, jessica2.EncodeProfile(prof)) {
		t.Error("EncodeProfile is not deterministic")
	}
	path := filepath.Join(t.TempDir(), "kvmix.j2pf")
	if err := jessica2.SaveProfile(path, prof); err != nil {
		t.Fatal(err)
	}
	back, err := jessica2.LoadProfile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(jessica2.EncodeProfile(back), enc) {
		t.Error("Save/Load round trip changed the encoding")
	}
}

// TestProfileCaptureLifecycle: capture requires an armed, finished session.
func TestProfileCaptureLifecycle(t *testing.T) {
	cfg := profileRunConfig(t, 4)
	sess := jessica2.NewSession(cfg) // Save not armed
	if err := sess.Launch(clKVMix(), jessica2.Params{Threads: 8, Seed: 42}); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.CapturedProfile(); err == nil {
		t.Fatal("CapturedProfile succeeded without Save armed")
	}
	cfg.Profile = jessica2.ProfileIO{Save: true}
	armed := jessica2.NewSession(cfg)
	if err := armed.Launch(clKVMix(), jessica2.Params{Threads: 8, Seed: 42}); err != nil {
		t.Fatal(err)
	}
	if _, err := armed.CapturedProfile(); err != jessica2.ErrNotFinished {
		t.Fatalf("CapturedProfile before completion: %v, want ErrNotFinished", err)
	}
}

// warmRun executes the demo configuration warm-started from prof under the
// profile-guided policy.
func warmRun(t *testing.T, prof *jessica2.StoredProfile) (*jessica2.Report, *jessica2.Session) {
	t.Helper()
	cfg := profileRunConfig(t, 4)
	cfg.Profile = jessica2.ProfileIO{Load: prof}
	sess := jessica2.NewSession(cfg)
	if err := sess.Launch(clKVMix(), jessica2.Params{Threads: 8, Seed: 42}); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.AttachProfiling(jessica2.ProfileConfig{Rate: jessica2.FullRate}); err != nil {
		t.Fatal(err)
	}
	if err := sess.SetPolicy(jessica2.NewWarmStartPolicy(prof)); err != nil {
		t.Fatal(err)
	}
	rep, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	return rep, sess
}

// TestWarmStartEndToEnd: a warm-started same-fingerprint run accepts the
// profile, replays its placement knowledge, and spends strictly less
// profiling budget than the cold run that recorded it.
func TestWarmStartEndToEnd(t *testing.T) {
	prof, coldSess := profileCaptureRun(t)
	coldRep, err := coldSess.Report()
	if err != nil {
		t.Fatal(err)
	}
	rep, sess := warmRun(t, prof)
	if w := sess.ProfileWarning(); w != "" {
		t.Fatalf("matching load produced a warning: %s", w)
	}
	// The warm policy must have dropped the rate to its floor (the
	// divergence gate closes on the seeded prior) and replayed homes.
	var floorSet, replayed bool
	for _, a := range sess.Actions() {
		switch act := a.Action.(type) {
		case jessica2.SetSamplingRate:
			if act.Rate == 1 {
				floorSet = true
			}
		case jessica2.RehomeObject:
			if a.Note == "" && a.Epoch == 1 {
				replayed = true
			}
		}
	}
	if !floorSet {
		t.Error("warm run never dropped to the floor sampling rate")
	}
	if !replayed {
		t.Error("warm run applied no stored home replays at epoch 1")
	}
	coldLogs := coldRep.KernelStats().CorrelationLogs
	warmLogs := rep.KernelStats().CorrelationLogs
	if warmLogs >= coldLogs {
		t.Errorf("warm run logged %d correlations, cold %d — no budget saved", warmLogs, coldLogs)
	}
	t.Logf("correlation logs: cold=%d warm=%d (%.1f%%), warm exec=%v cold exec=%v",
		coldLogs, warmLogs, 100*float64(warmLogs)/float64(coldLogs),
		rep.ExecTime(), coldRep.ExecTime())
}

// TestProfileFingerprintMismatch: loading a profile recorded under any
// different configuration degrades to a cold start — warning set, sticky
// Err NOT set, run byte-identical to one that never configured a load.
func TestProfileFingerprintMismatch(t *testing.T) {
	prof, _ := profileCaptureRun(t)

	type launch struct {
		workload jessica2.Workload
		threads  int
		seed     uint64
	}
	base := func() launch { return launch{clKVMix(), 8, 42} }
	cases := []struct {
		name string
		cfg  func(t *testing.T) jessica2.Config
		l    func() launch
	}{
		{"different seed", func(t *testing.T) jessica2.Config { return profileRunConfig(t, 4) },
			func() launch { l := base(); l.seed = 43; return l }},
		{"different threads", func(t *testing.T) jessica2.Config { return profileRunConfig(t, 4) },
			func() launch { l := base(); l.threads = 6; return l }},
		{"different nodes", func(t *testing.T) jessica2.Config { return profileRunConfig(t, 2) }, base},
		{"different scenario", func(t *testing.T) jessica2.Config {
			cfg := profileRunConfig(t, 4)
			cfg.Scenario = nil
			return cfg
		}, base},
		{"different workload", func(t *testing.T) jessica2.Config { return profileRunConfig(t, 4) },
			func() launch {
				s := jessica2.NewSynthetic()
				s.Intervals, s.AccessesPerInterval = 3, 256
				return launch{s, 8, 42}
			}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			run := func(load *jessica2.StoredProfile) (string, *jessica2.Session) {
				cfg := tc.cfg(t)
				cfg.Profile = jessica2.ProfileIO{Load: load}
				sess := jessica2.NewSession(cfg)
				l := tc.l()
				if err := sess.Launch(l.workload, jessica2.Params{Threads: l.threads, Seed: l.seed}); err != nil {
					t.Fatal(err)
				}
				if err := sess.SetPolicy(jessica2.NewWarmStartPolicy(load)); err != nil {
					t.Fatal(err)
				}
				rep, err := sess.Run()
				if err != nil {
					t.Fatal(err)
				}
				return rep.String(), sess
			}
			mismatched, sess := run(prof)
			if sess.Err() != nil {
				t.Fatalf("mismatch set the sticky session error: %v", sess.Err())
			}
			w := sess.ProfileWarning()
			if !strings.Contains(w, "mismatch") {
				t.Fatalf("ProfileWarning = %q, want a fingerprint-mismatch report", w)
			}
			cold, coldSess := run(nil)
			if coldSess.ProfileWarning() != "" {
				t.Fatalf("cold run reported a warning: %s", coldSess.ProfileWarning())
			}
			if mismatched != cold {
				t.Fatalf("rejected load was not a clean cold start:\n--- with rejected load\n%s\n--- cold\n%s", mismatched, cold)
			}
		})
	}
}

// TestProfileSaveGoldenIdentity: arming Config.Profile.Save (and capturing
// at the end) must leave every golden case byte-identical to an unarmed
// run — capture is pure observation, mirroring the injection-off identity
// gate.
func TestProfileSaveGoldenIdentity(t *testing.T) {
	for _, c := range goldenCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			plain := sessionTrace(t, c, nil, 42)
			armed := profileArmedTrace(t, c, 42)
			if plain != armed {
				t.Fatalf("Save-armed session diverged from plain run:\n--- armed\n%s\n--- plain\n%s", armed, plain)
			}
		})
	}
}

// profileArmedTrace is sessionTrace with profile capture armed and
// exercised: same stepping, same policy, plus CapturedProfile at the end.
func profileArmedTrace(t *testing.T, c goldenCase, seed uint64) string {
	t.Helper()
	cfg := jessica2.DefaultConfig()
	cfg.Nodes = 4
	cfg.Profile = jessica2.ProfileIO{Save: true}
	sess := jessica2.NewSession(cfg)
	if err := sess.Launch(c.make(), jessica2.Params{Threads: 6, Seed: seed}); err != nil {
		t.Fatal(err)
	}
	prof, err := sess.AttachProfiling(jessica2.ProfileConfig{Rate: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.SetPolicy(jessica2.NopPolicy{}); err != nil {
		t.Fatal(err)
	}
	for {
		done, err := sess.Step(10 * jessica2.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
	}
	captured, err := sess.CapturedProfile()
	if err != nil {
		t.Fatal(err)
	}
	if captured.TCMThreads != 6 {
		t.Fatalf("captured TCM dimension %d, want 6", captured.TCMThreads)
	}
	rep, err := sess.Report()
	if err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	sb.WriteString(rep.String())
	fmt.Fprintf(&sb, "kernel: %+v\n", rep.KernelStats())
	fmt.Fprintf(&sb, "net: %v", rep.NetworkStats())
	fmt.Fprintf(&sb, "oal=%d gos=%d\n", rep.OALBytes(), rep.GOSBytes())
	sb.WriteString(rep.TCM().String())
	fmt.Fprintf(&sb, "stackcpu=%v\n", prof.StackCPU())
	return sb.String()
}
