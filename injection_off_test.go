package jessica2_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// injectionOffGoldenPath is the checked-in artifact holding the rendered
// golden traces of every determinism case with failure injection disabled.
// The file was generated from the tree as it stood before the failure
// subsystem landed, so comparing against it proves the crash/partition/
// flush-loss machinery is byte-invisible when not configured — the CI
// chaos job's injection-off identity gate.
const injectionOffGoldenPath = "testdata/golden_injection_off.txt"

// injectionOffGolden renders every golden case, unperturbed and under the
// storm scenario, into one deterministic document.
func injectionOffGolden(t *testing.T) string {
	t.Helper()
	var sb strings.Builder
	for _, c := range goldenCases() {
		fmt.Fprintf(&sb, "===== %s =====\n", c.name)
		sb.WriteString(goldenTrace(c, nil, 42))
		fmt.Fprintf(&sb, "===== %s/storm =====\n", c.name)
		sb.WriteString(goldenTrace(c, stormScenario(t), 42))
	}
	return sb.String()
}

// TestInjectionDisabledGoldenIdentity compares the current traces against
// the pre-failure-subsystem artifact. Regenerate (only when an intentional
// report change lands) with:
//
//	JESSICA2_UPDATE_GOLDEN=1 go test -run TestInjectionDisabledGoldenIdentity .
func TestInjectionDisabledGoldenIdentity(t *testing.T) {
	got := injectionOffGolden(t)
	if os.Getenv("JESSICA2_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(injectionOffGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(injectionOffGoldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s (%d bytes)", injectionOffGoldenPath, len(got))
		return
	}
	want, err := os.ReadFile(injectionOffGoldenPath)
	if err != nil {
		t.Fatalf("missing golden artifact (run with JESSICA2_UPDATE_GOLDEN=1 to create): %v", err)
	}
	if got != string(want) {
		i := 0
		for i < len(got) && i < len(want) && got[i] == want[i] {
			i++
		}
		lo, hi := i-120, i+120
		if lo < 0 {
			lo = 0
		}
		clip := func(s string) string {
			if hi < len(s) {
				return s[lo:hi]
			}
			return s[lo:]
		}
		t.Fatalf("injection-disabled traces diverged from the pre-PR artifact at byte %d\n--- got\n%s\n--- want\n%s",
			i, clip(got), clip(string(want)))
	}
}
