package jessica2_test

import (
	"strings"
	"testing"

	"jessica2"
)

func quickSOR() *jessica2.SOR {
	s := jessica2.NewSOR()
	s.RowsN, s.Cols, s.Iters = 128, 128, 2
	return s
}

func TestSystemEndToEnd(t *testing.T) {
	sys := jessica2.New(jessica2.DefaultConfig())
	sys.Launch(quickSOR(), jessica2.Params{Threads: 8, Seed: 1})
	sys.AttachProfiling(jessica2.ProfileConfig{Rate: jessica2.FullRate})
	rep := sys.Run()
	if rep.ExecTime() <= 0 {
		t.Fatal("no execution time")
	}
	m := rep.TCM()
	if m.N() != 8 || m.Total() == 0 {
		t.Fatal("TCM missing or empty")
	}
	if rep.OALBytes() <= 0 || rep.GOSBytes() <= 0 {
		t.Fatal("traffic accounting missing")
	}
	if !strings.Contains(rep.String(), "execution time") {
		t.Fatal("report rendering broken")
	}
}

// TestConfigRejectsInvalidScenario: an invalid scenario spec handed to the
// public Config wiring surfaces as a sticky session error at construction,
// before anything runs.
func TestConfigRejectsInvalidScenario(t *testing.T) {
	bad := map[string]*jessica2.Scenario{
		"flush-loss-mass": {FlushLoss: &jessica2.ScenarioFlushLoss{DropProb: 0.8, DupProb: 0.8}},
		"restart-before-crash": {Crashes: []jessica2.ScenarioCrash{
			{Node: 1, At: 200 * jessica2.Millisecond, Restart: 100 * jessica2.Millisecond}}},
		"partition-empty-group": {Partitions: []jessica2.ScenarioPartition{
			{At: jessica2.Millisecond, Duration: jessica2.Millisecond}}},
		"arrivals-zero-rate": {Arrivals: &jessica2.Arrivals{Kind: jessica2.ArrivePoisson, Horizon: jessica2.Second}},
	}
	for name, sc := range bad {
		cfg := jessica2.DefaultConfig()
		cfg.Scenario = sc
		s := jessica2.NewSession(cfg)
		if s.Err() == nil {
			t.Errorf("%s: invalid scenario accepted by NewSession", name)
		}
	}
}

func TestSystemLifecyclePanics(t *testing.T) {
	sys := jessica2.New(jessica2.DefaultConfig())
	sys.Launch(quickSOR(), jessica2.Params{Threads: 4, Seed: 1})
	sys.Run()
	for name, f := range map[string]func(){
		"Launch":   func() { sys.Launch(quickSOR(), jessica2.Params{Threads: 2}) },
		"Attach":   func() { sys.AttachProfiling(jessica2.ProfileConfig{}) },
		"RunTwice": func() { sys.Run() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s after Run did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestPlacementPlanningAPI(t *testing.T) {
	cfg := jessica2.DefaultConfig()
	cfg.Nodes = 4
	sys := jessica2.New(cfg)
	syn := jessica2.NewSynthetic()
	syn.Intervals = 4
	sys.Launch(syn, jessica2.Params{Threads: 8, Seed: 2})
	sys.AttachProfiling(jessica2.ProfileConfig{Rate: jessica2.FullRate})
	rep := sys.Run()
	m := rep.TCM()
	cur := jessica2.BlockedPlacement(8, 4)
	next, _ := jessica2.PlanPlacement(m, cur, 4)
	if jessica2.CrossVolume(m, next) > jessica2.CrossVolume(m, cur) {
		t.Fatal("plan worsened placement")
	}
}

func TestDistanceHelpers(t *testing.T) {
	sys := jessica2.New(jessica2.DefaultConfig())
	sys.Launch(quickSOR(), jessica2.Params{Threads: 4, Seed: 3})
	sys.AttachProfiling(jessica2.ProfileConfig{Rate: jessica2.FullRate})
	m := sys.Run().TCM()
	if jessica2.DistanceABS(m, m) != 0 || jessica2.DistanceEUC(m, m) != 0 {
		t.Fatal("self distance nonzero")
	}
	if jessica2.Accuracy(0.03) != 0.97 {
		t.Fatal("accuracy helper wrong")
	}
}

func TestCustomWorkloadViaPublicAPI(t *testing.T) {
	sys := jessica2.New(jessica2.DefaultConfig())
	w := &chainWorkload{records: 64, rounds: 3}
	sys.Launch(w, jessica2.Params{Threads: 2, Seed: 4})
	sys.AttachProfiling(jessica2.ProfileConfig{Rate: jessica2.FullRate})
	rep := sys.Run()
	if rep.KernelStats().Intervals == 0 {
		t.Fatal("custom workload produced no intervals")
	}
}

// chainWorkload is a minimal user-defined workload exercising allocation,
// stack frames, locks and barriers through the public aliases.
type chainWorkload struct {
	records, rounds int
}

func (w *chainWorkload) Name() string { return "chain" }

func (w *chainWorkload) Characteristics() jessica2.Characteristics {
	return jessica2.Characteristics{Name: "chain", DataSet: "tiny", Rounds: w.rounds,
		Granularity: "Fine", ObjectSize: "64 bytes"}
}

func (w *chainWorkload) Launch(k *jessica2.Kernel, p jessica2.Params) {
	cls := k.Reg.DefineClass("Chain", 64, 1)
	m := &jessica2.Method{Name: "chain.run"}
	shared := make([]*jessica2.Object, 0, w.records)
	for tid := 0; tid < p.Threads; tid++ {
		tid := tid
		k.SpawnThread(tid%k.NumNodes(), "chain", func(t *jessica2.Thread) {
			f := t.Stack.Push(m, 1)
			if tid == 0 {
				for i := 0; i < w.records; i++ {
					o := t.Alloc(cls)
					t.Write(o)
					shared = append(shared, o)
				}
				f.SetRef(0, shared[0])
			}
			t.Barrier(0, p.Threads)
			for r := 0; r < w.rounds; r++ {
				t.Acquire(9)
				for _, o := range shared {
					t.Read(o)
				}
				t.Release(9)
				t.Barrier(0, p.Threads)
			}
			t.Stack.Pop()
		})
	}
}

func TestMigrationEngineAPI(t *testing.T) {
	sys := jessica2.New(jessica2.DefaultConfig())
	eng := jessica2.NewMigrationEngine(sys)
	cls := sys.Kernel().Reg.DefineClass("Obj", 64, 0)
	var out jessica2.MigrationOutcome
	sys.Kernel().SpawnThread(0, "m", func(t *jessica2.Thread) {
		o := t.Alloc(cls)
		t.Write(o)
		out = eng.MigrateSelf(t, 1, nil)
	})
	sys.Run()
	if out.From != 0 || out.To != 1 || out.ContextBytes <= 0 {
		t.Fatalf("outcome: %+v", out)
	}
}
