// Pipeline example: a lock-based producer/consumer workload written
// against the public API, showing how correlation tracking exposes the
// pipeline's stage structure and how the balancer collocates the pairs
// that share queues.
//
// Threads form producer→consumer pairs communicating through shared
// buffer objects guarded by distributed locks. The spawn-order placement
// splits pairs across nodes; the TCM makes the pairing obvious and the
// balancer plan reunites them.
package main

import (
	"fmt"

	"jessica2"
)

// pipelineWorkload wires p.Threads/2 producer-consumer pairs.
type pipelineWorkload struct {
	itemsPerRound int
	rounds        int
}

func (w *pipelineWorkload) Name() string { return "pipeline" }

func (w *pipelineWorkload) Characteristics() jessica2.Characteristics {
	return jessica2.Characteristics{
		Name: w.Name(), DataSet: fmt.Sprintf("%d items/round", w.itemsPerRound),
		Rounds: w.rounds, Granularity: "Fine", ObjectSize: "256 bytes",
	}
}

func (w *pipelineWorkload) Launch(k *jessica2.Kernel, p jessica2.Params) {
	bufC := k.Reg.DefineClass("Buffer", 256, 0)
	mRun := &jessica2.Method{Name: "pipeline.run"}

	pairs := p.Threads / 2
	// One shared buffer ring per pair, allocated by the producer.
	buffers := make([][]*jessica2.Object, pairs)

	for tid := 0; tid < p.Threads; tid++ {
		tid := tid
		pair := tid / 2
		producer := tid%2 == 0
		// Deliberately adversarial placement: producers on the first
		// nodes, consumers on the last — every pair is split.
		node := pair % k.NumNodes()
		if !producer {
			node = k.NumNodes() - 1 - pair%k.NumNodes()
		}
		k.SpawnThread(node, fmt.Sprintf("stage-%d", tid), func(t *jessica2.Thread) {
			f := t.Stack.Push(mRun, 1)
			if producer {
				ring := make([]*jessica2.Object, 8)
				for i := range ring {
					ring[i] = t.Alloc(bufC)
					t.Write(ring[i])
				}
				buffers[pair] = ring
				f.SetRef(0, ring[0])
			}
			t.Barrier(0, p.Threads)
			ring := buffers[pair]
			lock := 100 + pair

			for round := 0; round < w.rounds; round++ {
				for i := 0; i < w.itemsPerRound; i++ {
					slot := ring[i%len(ring)]
					t.Acquire(lock)
					if producer {
						t.Write(slot) // fill the item
					} else {
						t.Read(slot) // drain the item
					}
					t.Compute(20 * jessica2.Microsecond)
					t.Release(lock)
				}
				t.Barrier(0, p.Threads)
			}
			t.Stack.Pop()
		})
	}
}

func main() {
	const threads = 8
	cfg := jessica2.DefaultConfig()
	cfg.Nodes = 4
	sys := jessica2.New(cfg)
	w := &pipelineWorkload{itemsPerRound: 64, rounds: 6}
	sys.Launch(w, jessica2.Params{Threads: threads, Seed: 3})
	sys.AttachProfiling(jessica2.ProfileConfig{Rate: jessica2.FullRate})

	rep := sys.Run()
	fmt.Println(rep)

	m := rep.TCM()
	fmt.Println("correlation map (pair structure: threads 2k and 2k+1 share):")
	fmt.Println(m)

	// The workload placed each pair on different nodes; the balancer
	// should reunite them.
	cur := make(jessica2.Assignment, threads)
	for tid := range cur {
		pair := tid / 2
		if tid%2 == 0 {
			cur[tid] = pair % cfg.Nodes
		} else {
			cur[tid] = cfg.Nodes - 1 - pair%cfg.Nodes
		}
	}
	next, moves := jessica2.PlanPlacement(m, cur, cfg.Nodes)
	fmt.Printf("balancer: cross-node volume %.0f B -> %.0f B\n",
		jessica2.CrossVolume(m, cur), jessica2.CrossVolume(m, next))
	for _, mv := range moves {
		fmt.Printf("  %v\n", mv)
	}
}
