package main

import "testing"

// TestPipelineEndToEnd executes the example end-to-end: a custom workload
// written against the public API (locks, barriers, shadow stacks), full
// correlation tracking, and a balancer plan over the resulting TCM.
func TestPipelineEndToEnd(t *testing.T) {
	main()
}
