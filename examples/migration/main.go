// Migration example: the paper's motivating scenario for sticky-set
// profiling. A worker thread repeatedly traverses a linked record
// structure (its sticky set). Mid-run it migrates to another node — once
// cold (paying a remote object fault for every record it re-touches) and
// once with the resolved sticky set prefetched alongside the thread
// context, which hides those round-trips.
//
// The example builds a custom workload against the public API: it defines
// its own classes, allocates an object graph, maintains shadow stack
// frames (so the stack profiler can mine invariants), and triggers the
// migration from a safe point.
package main

import (
	"fmt"

	"jessica2"
)

// traversalWorkload is a user-defined workload: each thread owns a linked
// list of records and walks it every interval.
type traversalWorkload struct {
	records   int
	intervals int
	// migrateAt triggers thread 0's migration after this interval.
	migrateAt int
	// prefetch enables sticky-set resolution at migration time.
	prefetch bool

	sys  *jessica2.System
	prof *jessica2.Profiler

	// outcome of the migration, for reporting.
	outcome jessica2.MigrationOutcome
	// faults observed by thread 0 before/after migration.
	faultsBefore, faultsAfter int64
}

func (w *traversalWorkload) Name() string { return "record-traversal" }

func (w *traversalWorkload) Characteristics() jessica2.Characteristics {
	return jessica2.Characteristics{
		Name: w.Name(), DataSet: fmt.Sprintf("%d records", w.records),
		Rounds: w.intervals, Granularity: "Fine", ObjectSize: "128 bytes",
	}
}

func (w *traversalWorkload) Launch(k *jessica2.Kernel, p jessica2.Params) {
	recC := k.Reg.DefineClass("Record", 128, 1)
	mMain := &jessica2.Method{Name: "traversal.run"}
	mWalk := &jessica2.Method{Name: "traversal.walk"}
	eng := jessica2.NewMigrationEngine(w.sys)

	for tid := 0; tid < p.Threads; tid++ {
		tid := tid
		k.SpawnThread(tid%k.NumNodes(), fmt.Sprintf("walker-%d", tid), func(t *jessica2.Thread) {
			main := t.Stack.Push(mMain, 2)
			// Build the thread's private record chain (homed locally).
			var head, prev *jessica2.Object
			for i := 0; i < w.records; i++ {
				o := t.Alloc(recC)
				t.Write(o)
				if prev != nil {
					prev.Refs[0] = o
				} else {
					head = o
				}
				prev = o
			}
			main.SetRef(0, head) // the stack-invariant entry point
			t.Barrier(0, p.Threads)

			for round := 0; round < w.intervals; round++ {
				wf := t.Stack.Push(mWalk, 1)
				wf.SetRef(0, head)
				// Two passes per interval (read, then update): the records
				// are "constantly accessed throughout the whole interval",
				// which is what qualifies them for the sticky set.
				for pass := 0; pass < 2; pass++ {
					for o := head; o != nil; o = o.Refs[0] {
						t.Read(o)
						t.Compute(5 * jessica2.Microsecond)
					}
				}
				t.Barrier(0, p.Threads)
				t.Stack.Pop()

				if tid == 0 && round == w.migrateAt {
					w.faultsBefore = t.Stats().Faults
					target := (t.Node().ID() + 1) % k.NumNodes()
					var res *jessica2.Resolution
					if w.prefetch {
						res = w.prof.Resolve(0)
					}
					w.outcome = eng.MigrateSelf(t, target, res)
				}
			}
			if tid == 0 {
				w.faultsAfter = t.Stats().Faults
			}
			t.Stack.Pop()
		})
	}
}

func run(prefetch bool) {
	sys := jessica2.New(jessica2.DefaultConfig())
	w := &traversalWorkload{
		records: 400, intervals: 12, migrateAt: 5,
		prefetch: prefetch, sys: sys,
	}
	sys.Launch(w, jessica2.Params{Threads: 4, Seed: 11})

	stackCfg := jessica2.DefaultStackConfig()
	fp := jessica2.FootprintConfig{FootprinterConfig: jessica2.DefaultFootprinter()}
	w.prof = sys.AttachProfiling(jessica2.ProfileConfig{
		Rate: jessica2.FullRate, Stack: &stackCfg, Footprint: &fp,
	})
	rep := sys.Run()

	mode := "cold migration      "
	if prefetch {
		mode = "sticky-set prefetch "
	}
	post := w.faultsAfter - w.faultsBefore
	fmt.Printf("%s: context=%4dB prefetch=%6dB (%3d objs) transfer=%-10v post-migration faults=%d  total=%v\n",
		mode, w.outcome.ContextBytes, w.outcome.PrefetchBytes,
		w.outcome.PrefetchObjs, w.outcome.TransferTime, post, rep.ExecTime())
}

func main() {
	fmt.Println("thread migration with and without sticky-set prefetch")
	fmt.Println("(the prefetch rides the migration message; cold migration re-faults every record)")
	fmt.Println()
	run(false)
	run(true)
}
