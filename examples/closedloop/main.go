// Closedloop: the epoch-driven session API end to end. A phase-shifting
// key-value workload runs under the "phased" fault-injection scenario —
// its hot key window jumps every 120 ms — while the shipped rebalance
// policy watches the live profile at every epoch boundary and re-homes the
// newly hot objects (and migrates threads when the correlation map says
// so). The same configuration runs twice: passively (NopPolicy, identical
// to a plain run) and closed-loop, and the demo prints the per-epoch
// decisions plus the final head-to-head execution times.
package main

import (
	"fmt"

	"jessica2"
)

// run executes the demo configuration under one policy and returns the
// execution time.
func run(policy jessica2.Policy, verbose bool) jessica2.Time {
	const epoch = 50 * jessica2.Millisecond

	cfg := jessica2.DefaultConfig()
	cfg.Nodes = 4
	scen, err := jessica2.ScenarioPreset("phased", cfg.Nodes, 7)
	if err != nil {
		panic(err)
	}
	cfg.Scenario = scen

	// Phase-rich KVMix: 24 short rounds, so each 120 ms scenario phase
	// spans several rounds and the policy has time to react inside one.
	kv := jessica2.NewKVMix()
	kv.Keys, kv.Rounds, kv.TxnsPerRound = 2048, 24, 24
	kv.HotSpan = 256

	sess := jessica2.NewSession(cfg)
	if err := sess.Launch(kv, jessica2.Params{Threads: 8, Seed: 42}); err != nil {
		panic(err)
	}
	if _, err := sess.AttachProfiling(jessica2.ProfileConfig{Rate: jessica2.FullRate}); err != nil {
		panic(err)
	}
	if err := sess.SetPolicy(policy); err != nil {
		panic(err)
	}

	// Manual stepping: pause every epoch, peek at the live profile.
	for {
		done, err := sess.Step(epoch)
		if err != nil {
			panic(err)
		}
		if verbose {
			snap := sess.Snapshot()
			fmt.Printf("  t=%-10v epoch %d: %6d faults, %5d logs, %d actions so far\n",
				snap.Now, snap.Epoch, snap.Kernel.Faults,
				snap.Kernel.CorrelationLogs, len(sess.Actions()))
		}
		if done {
			break
		}
	}

	rep, err := sess.Report()
	if err != nil {
		panic(err)
	}
	if verbose {
		moved, rehomed := 0, 0
		for _, a := range sess.Actions() {
			if a.Note != "" {
				continue
			}
			switch a.Action.(type) {
			case jessica2.MigrateThread:
				moved++
			case jessica2.RehomeObject:
				rehomed++
			}
		}
		fmt.Printf("  -> %d thread migrations, %d object re-homings\n", moved, rehomed)
	}
	return rep.ExecTime()
}

func main() {
	fmt.Println("passive baseline (NopPolicy):")
	base := run(jessica2.NopPolicy{}, false)
	fmt.Printf("  exec %v\n\n", base)

	fmt.Println("closed-loop (RebalancePolicy, 50ms epochs):")
	loop := run(jessica2.NewRebalancePolicy(), true)
	fmt.Printf("  exec %v\n\n", loop)

	fmt.Printf("closed-loop speedup: %.2fx (%v saved)\n",
		float64(base)/float64(loop), base-loop)
}
