package main

import (
	"testing"

	"jessica2"
)

// TestClosedLoopEndToEnd executes the example exactly as a user would: the
// epoch-stepped session path (NewSession → Launch → AttachProfiling →
// SetPolicy → Step/Snapshot loop → Report) must complete without errors,
// and the closed-loop run must beat the passive baseline on the same seed.
func TestClosedLoopEndToEnd(t *testing.T) {
	base := run(jessica2.NopPolicy{}, false)
	loop := run(jessica2.NewRebalancePolicy(), false)
	if loop >= base {
		t.Fatalf("closed-loop %v did not beat baseline %v", loop, base)
	}
}
