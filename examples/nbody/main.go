// N-body example: run Barnes-Hut (two galaxies) under the adaptive
// sampling-rate controller and watch it walk the rate ladder until the
// correlation maps converge, then use the final map to plan a
// correlation-driven thread placement.
//
// This demonstrates the paper's central loop: sample cheaply, check
// relative accuracy between successive maps, raise the rate only while it
// still changes the picture, and hand the converged map to the balancer.
package main

import (
	"fmt"

	"jessica2"
)

func main() {
	const threads = 16

	cfg := jessica2.DefaultConfig()
	sys := jessica2.New(cfg)

	bh := jessica2.NewBarnesHut()
	bh.NBodies = 1024 // quarter scale for a quick run; 4096 = paper scale
	sys.Launch(bh, jessica2.Params{Threads: threads, Seed: 7})

	adaptive := jessica2.DefaultAdaptiveConfig()
	adaptive.Window = 200 * jessica2.Millisecond
	adaptive.Threshold = 0.05 // stop once successive maps agree within 5%
	prof := sys.AttachProfiling(jessica2.ProfileConfig{Adaptive: &adaptive})

	rep := sys.Run()
	fmt.Println(rep)

	fmt.Println("adaptive controller trace (rate ladder):")
	for _, rc := range prof.RateTrace() {
		fmt.Printf("  t=%-10v %5v -> %-5v relative-distance=%.4f converged=%v\n",
			rc.At, rc.From, rc.To, rc.Distance, rc.Converged)
	}
	fmt.Println()

	m := rep.TCM()
	fmt.Println("converged correlation map (two galaxy blocks expected):")
	fmt.Println(m)

	// Feed the map to the global load balancer: starting from the
	// spawn-order (blocked) placement, how much cross-node sharing can
	// migration remove?
	cur := jessica2.BlockedPlacement(threads, cfg.Nodes)
	next, moves := jessica2.PlanPlacement(m, cur, cfg.Nodes)
	fmt.Printf("balancer: cross-node volume %.0f B -> %.0f B with %d moves\n",
		jessica2.CrossVolume(m, cur), jessica2.CrossVolume(m, next), len(moves))
	for _, mv := range moves {
		fmt.Printf("  %v\n", mv)
	}
}
