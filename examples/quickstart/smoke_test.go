package main

import "testing"

// TestQuickstartEndToEnd executes the example exactly as a user would:
// the smallest public-API path (New → Launch → AttachProfiling → Run →
// Report/TCM) must complete without panicking. The example's dataset is
// already quarter scale, so this stays fast enough for go test ./... .
func TestQuickstartEndToEnd(t *testing.T) {
	main()
}
