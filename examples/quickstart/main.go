// Quickstart: run the SOR kernel on a simulated 8-node distributed JVM
// with full-sampling correlation tracking, then print the run report and
// the thread correlation map. This is the smallest end-to-end use of the
// public API.
package main

import (
	"fmt"

	"jessica2"
)

func main() {
	// An 8-node cluster mirroring the paper's testbed, with the paper's
	// sampled correlation tracking enabled.
	sys := jessica2.New(jessica2.DefaultConfig())

	// The red-black SOR kernel at a quarter of the paper's dataset so the
	// example finishes in a blink; drop these overrides for paper scale.
	sor := jessica2.NewSOR()
	sor.RowsN, sor.Cols, sor.Iters = 512, 512, 4

	sys.Launch(sor, jessica2.Params{Threads: 8, Seed: 1})
	sys.AttachProfiling(jessica2.ProfileConfig{Rate: jessica2.FullRate})

	rep := sys.Run()
	fmt.Println(rep)

	// The thread correlation map: SOR's near-neighbour sharing shows as a
	// band along the diagonal — thread i shares block-boundary rows with
	// threads i−1 and i+1 only.
	fmt.Println("thread correlation map (near-neighbour band expected):")
	fmt.Println(rep.TCM())

	// Accuracy of a coarser sampling rate against this full profile could
	// now be measured with jessica2.DistanceABS; see examples/nbody for
	// the adaptive controller doing that automatically.
}
