// Home-aware optimization example: the paper's §VI future-work items
// working together. A Water-Spatial run is profiled with the distributed
// TCM reduction (workers pre-reduce their OALs); the resulting correlation
// map, thread×home affinity matrix, and per-object summaries then drive
// three optimizations:
//
//  1. a home-aware placement plan (threads move toward the nodes homing
//     their data — including the "tricky case" where a thread pair shares
//     objects homed at neither of their nodes);
//  2. object home-migration advice (objects whose accessors all live on
//     one node get re-homed there);
//  3. a comparison of the planned placement's cross-node volume against
//     the spawn-order default.
package main

import (
	"fmt"

	"jessica2"
)

func main() {
	const threads, nodes = 8, 4

	cfg := jessica2.DefaultConfig()
	cfg.Nodes = nodes
	cfg.DistributedTCM = true // §VI: workers pre-reduce OALs
	sys := jessica2.New(cfg)

	ws := jessica2.NewWaterSpatial()
	ws.NMol, ws.Rounds = 256, 3
	ws.PairCost = 4 * jessica2.Microsecond
	sys.Launch(ws, jessica2.Params{Threads: threads, Seed: 9})
	sys.AttachProfiling(jessica2.ProfileConfig{Rate: jessica2.FullRate})

	rep := sys.Run()
	fmt.Println(rep)

	m := rep.TCM()
	aff := rep.HomeAffinity()
	fmt.Println("thread x home-node affinity (KB of accessed data homed per node):")
	for t, row := range aff {
		fmt.Printf("  T%d:", t)
		for _, v := range row {
			fmt.Printf(" %6.0f", v/1024)
		}
		fmt.Println()
	}
	fmt.Println()

	// homeLocal measures how much of each thread's accessed data is homed
	// on its own node under a placement — the quantity the home term
	// optimizes (cross-thread volume alone misses it).
	homeLocal := func(a jessica2.Assignment) (v float64) {
		for t, node := range a {
			v += aff[t][node]
		}
		return v
	}
	cur := jessica2.BlockedPlacement(threads, nodes)
	blind, _ := jessica2.PlanPlacement(m, cur, nodes)
	aware, moves := jessica2.PlanPlacementHomeAware(m, cur, nodes, aff, 0.5)
	fmt.Println("placement             cross-thread volume   home-local volume")
	for _, row := range []struct {
		name string
		a    jessica2.Assignment
	}{{"blocked (default)", cur}, {"pair-only plan", blind}, {"home-aware plan", aware}} {
		fmt.Printf("  %-20s %12.0f B %16.0f B\n", row.name,
			jessica2.CrossVolume(m, row.a), homeLocal(row.a))
	}
	for _, mv := range moves {
		fmt.Printf("  home-aware move: %v\n", mv)
	}
	fmt.Println()

	advice := rep.AdviseHomeMigrations(aware, 64)
	fmt.Printf("home-migration advice under the new placement: %d objects\n", len(advice))
	for i, mv := range advice {
		if i >= 6 {
			fmt.Printf("  ... and %d more\n", len(advice)-i)
			break
		}
		fmt.Printf("  obj %d: node%d -> node%d (%d B)\n", mv.Obj, mv.From, mv.To, mv.Bytes)
	}
	if len(advice) == 0 {
		fmt.Println("  (none: every molecule is read by threads on several nodes — the")
		fmt.Println("   advisor only re-homes objects with a unanimous accessor node)")
	}
}
