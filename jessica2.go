// Package jessica2 is a library-level reproduction of the profiling system
// from "Adaptive Sampling-Based Profiling Techniques for Optimizing the
// Distributed JVM Runtime" (Lam, Luo, Wang — IPDPS 2010), built on a
// deterministic discrete-event simulation of the JESSICA2 distributed JVM.
//
// The library provides:
//
//   - a simulated cluster running a home-based lazy release consistency
//     (HLRC) global object space with object faulting, diff propagation,
//     distributed locks and barriers;
//   - fine-grained active correlation tracking via adaptive object
//     sampling, producing thread correlation maps (TCMs);
//   - sticky-set profiling via adaptive stack sampling (stack-invariant
//     mining) plus footprinting and resolution, feeding a migration cost
//     model;
//   - a thread migration engine and a correlation-driven global load
//     balancer;
//   - the paper's three SPLASH-2 workload ports (SOR, Barnes-Hut,
//     Water-Spatial) and synthetic workloads;
//   - experiment harnesses regenerating every table and figure of the
//     paper's evaluation.
//
// # Quick start
//
// The primary entry point is the epoch-driven Session: launch a workload,
// optionally attach profiling and a closed-loop policy, then step or run.
// At every epoch boundary the session pauses the cluster at a safe point,
// snapshots the live profiling state (incremental TCM, per-thread
// footprints, rate trace, kernel/network counters) and lets the policy
// act — migrate threads (with sticky-set prefetch), re-home objects,
// retune the sampling rate — before the run resumes:
//
//	sess := jessica2.NewSession(jessica2.Config{Epoch: 50 * jessica2.Millisecond})
//	sess.Launch(jessica2.NewKVMix(), jessica2.Params{Threads: 8, Seed: 1})
//	sess.AttachProfiling(jessica2.ProfileConfig{Rate: jessica2.FullRate})
//	sess.SetPolicy(jessica2.NewRebalancePolicy())
//	rep, err := sess.Run()
//	if err != nil {
//		log.Fatal(err)
//	}
//	fmt.Println(rep)
//
// Manual stepping exposes the loop directly:
//
//	for {
//		done, err := sess.Step(50 * jessica2.Millisecond)
//		if err != nil || done {
//			break
//		}
//		snap := sess.Snapshot()
//		fmt.Println(snap.Now, snap.Kernel.Faults)
//	}
//
// The deprecated System facade (New/Launch/AttachProfiling/Run) remains as
// a thin compatibility wrapper over a single-epoch session; unlike Session,
// whose misuse returns errors, System keeps its historical panics.
package jessica2

import (
	"fmt"
	"strings"

	"jessica2/internal/balancer"
	"jessica2/internal/core"
	"jessica2/internal/gos"
	"jessica2/internal/heap"
	"jessica2/internal/migration"
	"jessica2/internal/network"
	"jessica2/internal/profile"
	"jessica2/internal/sampling"
	"jessica2/internal/scenario"
	"jessica2/internal/session"
	"jessica2/internal/sim"
	"jessica2/internal/stack"
	"jessica2/internal/sticky"
	"jessica2/internal/tcm"
	"jessica2/internal/workload"
)

// --- re-exported core vocabulary --------------------------------------------

// Time is virtual simulation time in nanoseconds.
type Time = sim.Time

// SchedConfig tunes the engine's calendar-scheduler geometry (see
// sim.Config).
type SchedConfig = sim.Config

// Common durations.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// TrackingMode selects how object accesses are logged for correlation.
type TrackingMode = gos.TrackingMode

// Tracking modes.
const (
	TrackingOff     = gos.TrackingOff
	TrackingSampled = gos.TrackingSampled
	TrackingExact   = gos.TrackingExact
)

// Rate is the paper's nX page-relative sampling-rate notation.
type Rate = sampling.Rate

// FullRate samples every object.
const FullRate = sampling.FullRate

// Thread is a distributed-JVM thread handle, passed to workload bodies.
type Thread = gos.Thread

// Kernel is the distributed JVM instance.
type Kernel = gos.Kernel

// Class is a registered shared-object class.
type Class = heap.Class

// Object is a shared object in the global object space.
type Object = heap.Object

// ObjectID is a shared object's dense identifier (used by re-home actions).
type ObjectID = heap.ObjectID

// Registry is the class/object registry of a kernel (Kernel.Reg).
type Registry = heap.Registry

// Method names a Java method for shadow stack frames.
type Method = stack.Method

// Characteristics describes a workload (Table I metadata).
type Characteristics = workload.Characteristics

// Workload is a benchmark runnable on the DJVM.
type Workload = workload.Workload

// Params configures a workload launch.
type Params = workload.Params

// TCM is the thread correlation map.
type TCM = tcm.Map

// Footprint is a per-class sticky-set byte composition.
type Footprint = sticky.Footprint

// InvariantRef is a mined stack-invariant reference.
type InvariantRef = stack.InvariantRef

// Resolution is a resolved sticky set ready to prefetch.
type Resolution = sticky.Resolution

// Assignment maps thread ids to node ids.
type Assignment = balancer.Assignment

// ProfileConfig selects profiling subsystems (see package core).
type ProfileConfig = core.Config

// StackConfig configures the stack profiler.
type StackConfig = core.StackConfig

// AdaptiveConfig configures the adaptive rate controller.
type AdaptiveConfig = core.AdaptiveConfig

// FootprintConfig configures sticky-set footprinting.
type FootprintConfig = core.FootprintConfig

// MigrationOutcome reports one thread migration.
type MigrationOutcome = migration.Outcome

// Failure-tolerance vocabulary (see gos/failure.go): FailureConfig arms and
// tunes the layer via Config.Failure; HealthSnapshot/NodeHealth surface the
// detector's cluster view in session snapshots; FailureStats counts its
// work (heartbeats, lease expiries, evacuations, flush retries).
type (
	FailureConfig  = gos.FailureConfig
	FailureStats   = gos.FailureStats
	HealthSnapshot = gos.HealthSnapshot
	NodeHealth     = gos.NodeHealth
)

// DefaultFailureConfig returns the calibrated failure-layer timings
// (20ms heartbeats, 60ms leases, 30ms flush timeout with capped backoff).
var DefaultFailureConfig = gos.DefaultFailureConfig

// Workload types (paper benchmarks and synthetics).
type (
	// SOR is the red-black successive over-relaxation kernel.
	SOR = workload.SOR
	// BarnesHut is the hierarchical N-body simulation.
	BarnesHut = workload.BarnesHut
	// WaterSpatial is the molecular dynamics application.
	WaterSpatial = workload.WaterSpatial
	// Synthetic is the configurable microbenchmark.
	Synthetic = workload.Synthetic
	// LU is the SPLASH-2 blocked dense LU factorization kernel.
	LU = workload.LU
	// KVMix is the phase-shifting key-value transaction mix.
	KVMix = workload.KVMix
	// ServeMix is the open-loop RPC request-serving workload: zipf-skewed
	// tenants, fan-out call graphs over shared session/cache objects, and
	// an injected arrival schedule (Scenario.Arrivals or SetSchedule).
	ServeMix = workload.ServeMix
	// ServeStats is the open-loop serving view (arrivals, goodput,
	// in-flight depth, latency percentiles, and — when the robustness
	// layer is on — shed/retry/hedge/breaker accounting plus
	// goodput-within-SLO) surfaced in Snapshot.Serve.
	ServeStats = workload.ServeStats
	// RobustConfig arms ServeMix's request-lifecycle robustness layer:
	// per-request deadlines, admission control (load shedding), bounded
	// retries with capped backoff, quantile-delayed hedging, and per-node
	// circuit breakers fed by the failure detector. Assign to
	// ServeMix.Robust before Launch; nil keeps the classic byte-identical
	// serving path.
	RobustConfig = workload.RobustConfig
	// OpenLoop is the interface schedule-driven workloads implement.
	OpenLoop = workload.OpenLoop
)

// Workload constructors (paper-scale defaults).
var (
	NewSOR          = workload.NewSOR
	NewSORSmall     = workload.NewSORSmall
	NewBarnesHut    = workload.NewBarnesHut
	NewWaterSpatial = workload.NewWaterSpatial
	NewSynthetic    = workload.NewSynthetic
	NewLU           = workload.NewLU
	NewLUSmall      = workload.NewLUSmall
	NewKVMix        = workload.NewKVMix
	NewServeMix     = workload.NewServeMix
	// DefaultRobustConfig is the full protection stack at serving-scale
	// defaults (20ms deadline, shedding, retries, P95 hedging, breakers).
	DefaultRobustConfig = workload.DefaultRobustConfig
)

// --- scenario engine ---------------------------------------------------------

// Scenario is a deterministic, seed-driven perturbation schedule (CPU
// heterogeneity, link ramps, jitter, transient slowdowns, phase shifts)
// composed with a base workload run; see package scenario.
type Scenario = scenario.Scenario

// ScenarioRamp, ScenarioJitter, ScenarioSlowdown and ScenarioPhaseShift are
// the perturbation vocabulary of a Scenario.
type (
	ScenarioRamp       = scenario.Ramp
	ScenarioJitter     = scenario.Jitter
	ScenarioSlowdown   = scenario.Slowdown
	ScenarioPhaseShift = scenario.PhaseShift
)

// Ramp parameters.
const (
	RampLatency   = scenario.RampLatency
	RampBandwidth = scenario.RampBandwidth
)

// ScenarioCrash, ScenarioPartition and ScenarioFlushLoss are the failure
// events of a Scenario: node crash/restart windows, transient network
// partitions, and probabilistic loss/duplication of dedicated profile
// flushes. All are seed-deterministic; see the scenario package and the
// "crash", "flaky" and "partition" presets.
type (
	ScenarioCrash     = scenario.Crash
	ScenarioPartition = scenario.Partition
	ScenarioFlushLoss = scenario.FlushLoss
)

// Arrivals is the open-loop traffic vocabulary of a Scenario: a
// seed-deterministic Poisson, diurnal or burst arrival schedule that the
// session materializes into request arrival times for open-loop workloads
// (ServeMix). Same seed ⇒ byte-identical schedule; see scenario/arrivals.go
// and the "poisson", "diurnal" and "burst" presets.
type (
	Arrivals    = scenario.Arrivals
	ArrivalKind = scenario.ArrivalKind
)

// Arrival kinds.
const (
	ArrivePoisson = scenario.ArrivePoisson
	ArriveDiurnal = scenario.ArriveDiurnal
	ArriveBurst   = scenario.ArriveBurst
)

// ScenarioPreset builds one of the named built-in scenarios; ParseScenario
// accepts comma-separated preset lists ("hetero,jitter"). See
// scenario.PresetNames for the vocabulary.
var (
	ScenarioPreset = scenario.Preset
	ParseScenario  = scenario.Parse
)

// Phase is the workload phase register the scenario engine drives.
type Phase = workload.Phase

// Profiling config helpers.
var (
	DefaultStackConfig    = core.DefaultStackConfig
	DefaultAdaptiveConfig = core.DefaultAdaptiveConfig
	DefaultResolverConfig = sticky.DefaultResolverConfig
	DefaultFootprinter    = sticky.DefaultFootprinterConfig
)

// TCMBuilderVariant names the correlation-daemon implementation this
// binary was built with: "incremental" (the default online builder) or
// "full" (the legacy rebuild selected by -tags tcmfull). CLI perf reports
// embed it so artifacts are self-describing.
var TCMBuilderVariant = tcm.BuilderVariant

// Distance metrics (paper equations 1 and 2) and accuracy.
var (
	DistanceEUC = tcm.DistanceEUC
	DistanceABS = tcm.DistanceABS
	Accuracy    = tcm.Accuracy
)

// --- session facade ----------------------------------------------------------

// Config assembles a DJVM instance.
type Config struct {
	// Nodes is the cluster size (node 0 is the master JVM).
	Nodes int
	// Tracking selects the correlation-tracking mode.
	Tracking TrackingMode
	// TransferOALs ships OALs to the master (disable to isolate
	// collection CPU cost as in Table II).
	TransferOALs bool
	// DistributedTCM enables the paper's §VI scalability extension:
	// workers pre-reduce their OALs into per-object summaries.
	DistributedTCM bool
	// OALFlushEntries overrides the buffered-entry threshold that triggers
	// a dedicated profile flush to the master (0 keeps the default). Lower
	// thresholds ship more, smaller, dedicated CatOAL messages — the
	// traffic class failure scenarios can drop or duplicate.
	OALFlushEntries int
	// Network overrides the interconnect model field by field: any zero
	// field keeps its default, so partial overrides (say, latency only)
	// compose with the Fast Ethernet baseline.
	Network network.Config
	// Costs overrides the CPU cost model field by field (zero fields keep
	// their calibrated defaults).
	Costs gos.CostModel
	// Sched tunes the simulation engine's calendar-scheduler geometry
	// (bucket width and ring size; the zero value keeps the defaults,
	// 4096 ns × 256 buckets). Geometry never changes results — only the
	// scheduler's host-side cost — which the sim package's pop-order
	// property tests guarantee.
	Sched SchedConfig
	// Scenario, when non-nil, perturbs the run with the fault-injection
	// scenario engine (heterogeneous CPUs, link ramps, jitter, transient
	// slowdowns, workload phase shifts, node crashes, partitions, lossy
	// profile flushes). Same-seed runs stay deterministic.
	Scenario *Scenario
	// Failure, when non-nil, arms the runtime's failure-tolerance layer:
	// heartbeat/lease node-death detection with safe-point thread
	// evacuation, reliable (timeout + backoff + dedup) profile flushes,
	// and graceful TCM degradation for dead nodes' stale summaries. Use
	// DefaultFailureConfig for calibrated timings; leave nil to keep the
	// classic fail-free protocol byte-identical.
	Failure *FailureConfig
	// Epoch is the closed-loop stepping period Session.Run and RunUntil
	// use when a policy is installed (Step takes an explicit period).
	Epoch Time
	// Profile configures profile-store persistence: Load warm-starts the
	// run from a stored profile (fingerprint-checked; a mismatch degrades
	// to a cold start with Session.ProfileWarning set, never a session
	// error), Save arms end-of-run capture via Session.CapturedProfile.
	Profile ProfileIO
}

// DefaultConfig mirrors the paper's 8-node Fast Ethernet testbed with
// sampled correlation tracking enabled.
func DefaultConfig() Config {
	return Config{
		Nodes:        8,
		Tracking:     TrackingSampled,
		TransferOALs: true,
	}
}

// kernelConfig resolves the config over defaults. Network and Costs merge
// field by field: a partially populated override adjusts only the fields it
// sets, zero fields keep their calibrated defaults.
func (cfg Config) kernelConfig() gos.Config {
	kcfg := gos.DefaultConfig()
	if cfg.Nodes > 0 {
		kcfg.Nodes = cfg.Nodes
	}
	kcfg.Tracking = cfg.Tracking
	kcfg.TransferOALs = cfg.TransferOALs
	kcfg.DistributedTCM = cfg.DistributedTCM
	if cfg.OALFlushEntries > 0 {
		kcfg.OALFlushEntries = cfg.OALFlushEntries
	}
	kcfg.Net = mergeNetwork(kcfg.Net, cfg.Network)
	kcfg.Costs = mergeCosts(kcfg.Costs, cfg.Costs)
	kcfg.Sched = cfg.Sched
	kcfg.Failure = cfg.Failure
	return kcfg
}

// mergeNetwork overlays non-zero override fields on the base model.
func mergeNetwork(base, over network.Config) network.Config {
	if over.Latency > 0 {
		base.Latency = over.Latency
	}
	if over.BandwidthBytesPerSec > 0 {
		base.BandwidthBytesPerSec = over.BandwidthBytesPerSec
	}
	if over.HeaderBytes > 0 {
		base.HeaderBytes = over.HeaderBytes
	}
	return base
}

// mergeCosts overlays non-zero override fields on the base cost model.
func mergeCosts(base, over gos.CostModel) gos.CostModel {
	if over.CheckCost > 0 {
		base.CheckCost = over.CheckCost
	}
	if over.LogCost > 0 {
		base.LogCost = over.LogCost
	}
	if over.ResetCost > 0 {
		base.ResetCost = over.ResetCost
	}
	if over.FaultCPUCost > 0 {
		base.FaultCPUCost = over.FaultCPUCost
	}
	if over.HomeServiceCost > 0 {
		base.HomeServiceCost = over.HomeServiceCost
	}
	if over.TwinCostPerByte > 0 {
		base.TwinCostPerByte = over.TwinCostPerByte
	}
	if over.DiffCostPerByte > 0 {
		base.DiffCostPerByte = over.DiffCostPerByte
	}
	if over.ResampleCostPerObject > 0 {
		base.ResampleCostPerObject = over.ResampleCostPerObject
	}
	if over.OALPackCostPerEntry > 0 {
		base.OALPackCostPerEntry = over.OALPackCostPerEntry
	}
	if over.TCMReorgCostPerEntry > 0 {
		base.TCMReorgCostPerEntry = over.TCMReorgCostPerEntry
	}
	if over.TCMPairCost > 0 {
		base.TCMPairCost = over.TCMPairCost
	}
	if over.LockServiceCost > 0 {
		base.LockServiceCost = over.LockServiceCost
	}
	if over.BarrierServiceCost > 0 {
		base.BarrierServiceCost = over.BarrierServiceCost
	}
	return base
}

// Closed-loop vocabulary: policies observe epoch snapshots and return
// actions the session applies mid-run (see package internal/session).
type (
	// Policy is the pluggable observe→decide→act controller.
	Policy = session.Policy
	// Snapshot is the live profiling state at an epoch boundary.
	Snapshot = session.Snapshot
	// HotObject is one newly shared object in a snapshot.
	HotObject = session.HotObject
	// Action is one closed-loop decision (sealed vocabulary below).
	Action = session.Action
	// MigrateThread moves a thread at its next safe point.
	MigrateThread = session.MigrateThread
	// RehomeObject migrates an object's home node.
	RehomeObject = session.RehomeObject
	// SetSamplingRate retunes the uniform sampling rate cluster-wide.
	SetSamplingRate = session.SetSamplingRate
	// AppliedAction is one logged executed decision.
	AppliedAction = session.AppliedAction
	// NopPolicy is the passive baseline policy.
	NopPolicy = session.NopPolicy
	// RebalancePolicy is the shipped TCM-driven placement + hot-object
	// home-rebalancing policy with sticky-set prefetch migration.
	RebalancePolicy = session.RebalancePolicy
)

// NewRebalancePolicy returns the shipped closed-loop optimizer with its
// default tuning.
var NewRebalancePolicy = session.NewRebalancePolicy

// --- profile store ----------------------------------------------------------

// Profile-store vocabulary (see package internal/profile): a StoredProfile
// is the end-of-run artifact — final TCM, thread placement, hot-object
// homes, sticky footprints, rate trace and decision log — serialized to a
// versioned, deterministic, self-describing binary format and used to
// warm-start later runs of the same workload.
type (
	// StoredProfile is the persisted end-of-run profiling artifact.
	// (ProfileConfig, above, configures the *live* profiling subsystems —
	// the two are unrelated despite the shared prefix.)
	StoredProfile = profile.Profile
	// ProfileFingerprint identifies the run a profile was captured from
	// (workload, scenario, nodes, threads, seed); loads are accepted only
	// on an exact match.
	ProfileFingerprint = profile.Fingerprint
	// ProfileIO wires a session to the profile store (Config.Profile).
	ProfileIO = session.ProfileIO
	// ProfileRateChange is one stored adaptive-controller decision.
	ProfileRateChange = profile.RateChange
	// ProfileDecision is one stored applied policy decision.
	ProfileDecision = profile.Decision
	// WarmStartPolicy is the profile-guided closed-loop controller: it
	// replays the stored hot-object homes early and drives the sampling
	// rate from the live-vs-stored TCM divergence signal, spending the
	// sampling budget only where the live run diverges.
	WarmStartPolicy = session.WarmStartPolicy
)

// ProfileVersion is the profile store's current format version; Decode
// rejects newer versions with ErrProfileVersion.
const ProfileVersion = profile.Version

// Profile store functions: binary codec, file round trip, and the
// divergence metric (total-variation distance of shape-normalized maps)
// behind Snapshot.Divergence.
var (
	EncodeProfile     = profile.Encode
	DecodeProfile     = profile.Decode
	SaveProfile       = profile.Save
	LoadProfile       = profile.Load
	ProfileDivergence = profile.Divergence
)

// Profile store errors (typed, matchable with errors.Is).
var (
	// ErrProfileBadMagic rejects data that is not a jessica2 profile.
	ErrProfileBadMagic = profile.ErrBadMagic
	// ErrProfileVersion rejects forward-incompatible format versions.
	ErrProfileVersion = profile.ErrVersion
	// ErrProfileCorrupt rejects truncated or bit-flipped payloads.
	ErrProfileCorrupt = profile.ErrCorrupt
)

// NewWarmStartPolicy returns the profile-guided policy with its default
// tuning (RebalancePolicy inner optimizer, 0.10/0.35 divergence
// hysteresis, 1X floor rate).
var NewWarmStartPolicy = session.NewWarmStartPolicy

// Session lifecycle errors.
var (
	// ErrStarted rejects configuration calls after stepping has begun.
	ErrStarted = session.ErrStarted
	// ErrFinished rejects Run on a completed session.
	ErrFinished = session.ErrFinished
	// ErrNoWorkload rejects stepping before any Launch.
	ErrNoWorkload = session.ErrNoWorkload
	// ErrNotFinished rejects Report before completion.
	ErrNotFinished = session.ErrNotFinished
)

// Session is an epoch-driven closed-loop run of the distributed JVM: the
// primary API. Construction is chainable; configuration errors surface on
// the first call that uses them.
type Session struct {
	s *session.Session
}

// NewSession builds a session from the config. An invalid configuration is
// recorded and returned by the first Launch/Step/Run call.
func NewSession(cfg Config) *Session {
	return &Session{s: session.New(session.Config{
		Kernel:   cfg.kernelConfig(),
		Scenario: cfg.Scenario,
		Epoch:    cfg.Epoch,
		Profile:  cfg.Profile,
	})}
}

// Err returns the sticky configuration error, if any — an invalid scenario
// spec surfaces here (and from the first Launch/Step/Run) rather than
// silently misbehaving mid-run.
func (s *Session) Err() error { return s.s.Err() }

// Kernel exposes the underlying DJVM (advanced use: allocation, custom
// threads, migration). Nil until construction succeeded.
func (s *Session) Kernel() *Kernel { return s.s.Kernel() }

// Phase exposes the workload phase register the scenario engine drives.
func (s *Session) Phase() *Phase { return s.s.Phase() }

// Launch registers a workload's classes and spawns its threads. When a
// scenario drives the session and the caller installed no phase register
// of its own, the session's register rides along so phase-aware workloads
// follow the scenario's phase shifts.
func (s *Session) Launch(w Workload, p Params) error { return s.s.Launch(w, p) }

// AttachProfiling wires the profiling subsystems. Call after Launch and
// before the first step.
func (s *Session) AttachProfiling(cfg ProfileConfig) (*Profiler, error) {
	p, err := s.s.AttachProfiling(cfg)
	if err != nil {
		return nil, err
	}
	return &Profiler{p: p}, nil
}

// SetPolicy installs the closed-loop policy consulted at every epoch
// boundary; nil clears it. Must precede the first step.
func (s *Session) SetPolicy(p Policy) error { return s.s.SetPolicy(p) }

// Step advances the run by one epoch and processes the boundary (snapshot,
// policy Observe, actions). It reports completion; stepping a finished
// session is a no-op returning true.
func (s *Session) Step(epoch Time) (bool, error) { return s.s.Step(epoch) }

// RunUntil advances the run to absolute virtual time t, processing epoch
// boundaries every Config.Epoch when a policy is installed.
func (s *Session) RunUntil(t Time) (bool, error) { return s.s.RunUntil(t) }

// Run executes the session to completion — stepping in Config.Epoch
// increments when a policy is installed — and returns the report.
func (s *Session) Run() (*Report, error) {
	if _, err := s.s.Run(); err != nil {
		return nil, err
	}
	return &Report{s: s.s}, nil
}

// Snapshot captures the live profiling state at the current pause point
// without charging simulated CPU: observing a paused run does not change it.
func (s *Session) Snapshot() *Snapshot { return s.s.Snapshot() }

// Done reports whether the run has completed.
func (s *Session) Done() bool { return s.s.Done() }

// Now returns the current virtual time.
func (s *Session) Now() Time { return s.s.Now() }

// Epochs reports how many epoch boundaries have been processed.
func (s *Session) Epochs() int { return s.s.Epochs() }

// Actions returns the log of executed policy decisions.
func (s *Session) Actions() []AppliedAction { return s.s.Actions() }

// MigrationHistory returns the completed thread migrations in order.
func (s *Session) MigrationHistory() []MigrationOutcome {
	return append([]MigrationOutcome(nil), s.s.MigrationEngine().History...)
}

// Fingerprint returns the run's profile fingerprint (valid after the first
// Launch); profiles captured from this run are stamped with it.
func (s *Session) Fingerprint() ProfileFingerprint { return s.s.Fingerprint() }

// ProfileWarning reports why a configured Config.Profile.Load was rejected
// ("" when none was configured, or when it was accepted). A rejected load
// degrades to a cold start; it is never the sticky session error.
func (s *Session) ProfileWarning() string { return s.s.ProfileWarning() }

// CapturedProfile assembles the end-of-run profile artifact. It requires a
// completed session with Config.Profile.Save armed; capture only reads
// state, so a Save-armed run is byte-identical to an unarmed one.
func (s *Session) CapturedProfile() (*StoredProfile, error) { return s.s.CapturedProfile() }

// Report returns the completed run's report, or ErrNotFinished while the
// run is still in progress.
func (s *Session) Report() (*Report, error) {
	if err := s.s.Finished(); err != nil {
		return nil, err
	}
	return &Report{s: s.s}, nil
}

// --- deprecated one-shot facade ---------------------------------------------

// System is the classic post-hoc facade: one Launch/AttachProfiling/Run
// cycle over a single-epoch session.
//
// Deprecated: use Session, whose misuse returns errors. System keeps its
// historical panics for compatibility.
type System struct {
	sess *Session
	ran  bool
}

// New builds a system from the config. It panics on an invalid scenario
// (Session records the error instead).
func New(cfg Config) *System {
	sess := NewSession(cfg)
	if err := sess.s.Err(); err != nil {
		panic(err)
	}
	return &System{sess: sess}
}

// Kernel exposes the underlying DJVM.
func (s *System) Kernel() *Kernel { return s.sess.Kernel() }

// Phase exposes the workload phase register the scenario engine drives.
func (s *System) Phase() *Phase { return s.sess.Phase() }

// Session exposes the underlying session (migration aid).
func (s *System) Session() *Session { return s.sess }

// Launch registers a workload's classes and spawns its threads. It panics
// after Run.
func (s *System) Launch(w Workload, p Params) *System {
	if s.ran {
		panic("jessica2: Launch after Run")
	}
	if err := s.sess.Launch(w, p); err != nil {
		panic(err)
	}
	return s
}

// AttachProfiling wires the profiling subsystems. Call after Launch; it
// panics after Run.
func (s *System) AttachProfiling(cfg ProfileConfig) *Profiler {
	if s.ran {
		panic("jessica2: AttachProfiling after Run")
	}
	p, err := s.sess.AttachProfiling(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// Run executes the simulation to completion and returns the report. It
// panics when called twice.
func (s *System) Run() *Report {
	if s.ran {
		panic("jessica2: Run called twice")
	}
	s.ran = true
	rep, err := s.sess.Run()
	if err != nil {
		panic(err)
	}
	return rep
}

// Report summarizes the run (live counters before Run completes).
func (s *System) Report() *Report {
	return &Report{s: s.sess.s}
}

// Profiler wraps the attached profiling subsystem.
type Profiler struct {
	p *core.Profiler
}

// Invariants returns the mined stack-invariant references for a thread.
func (p *Profiler) Invariants(tid int) []InvariantRef { return p.p.Invariants(tid) }

// Footprint returns a thread's sticky-set footprint estimate.
func (p *Profiler) Footprint(tid int) Footprint { return p.p.Footprint(tid) }

// Resolve computes a thread's sticky set for prefetching.
func (p *Profiler) Resolve(tid int) *Resolution { return p.p.Resolve(tid) }

// RateTrace returns the adaptive controller's decision log.
func (p *Profiler) RateTrace() []core.RateChange { return p.p.RateTrace }

// StackCPU returns total virtual CPU charged to stack sampling.
func (p *Profiler) StackCPU() Time { return p.p.StackCPU }

// Core exposes the underlying core profiler for advanced use.
func (p *Profiler) Core() *core.Profiler { return p.p }

// Report gives access to run results.
type Report struct {
	s *session.Session
}

// ExecTime is the workload execution time (paper tables' metric).
func (r *Report) ExecTime() Time { return r.s.ExecTime() }

// TCM builds the thread correlation map from all collected OALs.
func (r *Report) TCM() *TCM { return r.s.TCMNow() }

// KernelStats returns protocol/profiling counters.
func (r *Report) KernelStats() gos.KernelStats { return r.s.Kernel().Stats() }

// NetworkStats returns per-category traffic stats.
func (r *Report) NetworkStats() network.Stats { return r.s.Kernel().Net.Stats() }

// OALBytes is profiling traffic volume.
func (r *Report) OALBytes() int64 {
	st := r.s.Kernel().Net.Stats()
	return st.CatBytes(network.CatOAL)
}

// GOSBytes is protocol traffic volume (data + control + headers).
func (r *Report) GOSBytes() int64 {
	st := r.s.Kernel().Net.Stats()
	return st.CatBytes(network.CatGOSData) + st.CatBytes(network.CatControl) + st.HeaderBytesTotal
}

// TCMComputeTime is the master analyzer's CPU (dedicated machine).
func (r *Report) TCMComputeTime() Time { return r.s.Kernel().Master().ComputeTime() }

// HomeAffinity exports the thread×node shared-volume matrix (the "home
// effect" input for home-aware placement planning).
func (r *Report) HomeAffinity() [][]float64 {
	k := r.s.Kernel()
	return k.Master().HomeAffinity(k.NumThreads(), k.NumNodes())
}

// String renders a human-readable summary.
func (r *Report) String() string {
	var sb strings.Builder
	st := r.KernelStats()
	names := r.s.Workloads()
	fmt.Fprintf(&sb, "workloads:         %s\n", strings.Join(names, ", "))
	fmt.Fprintf(&sb, "execution time:    %v\n", r.ExecTime())
	fmt.Fprintf(&sb, "intervals:         %d\n", st.Intervals)
	fmt.Fprintf(&sb, "remote faults:     %d (%d KB)\n", st.Faults, st.FaultBytes/1024)
	fmt.Fprintf(&sb, "correlation logs:  %d\n", st.CorrelationLogs)
	fmt.Fprintf(&sb, "barriers/locks:    %d / %d\n", st.Barriers, st.LockAcquires)
	fmt.Fprintf(&sb, "OAL traffic:       %d KB\n", r.OALBytes()/1024)
	fmt.Fprintf(&sb, "GOS traffic:       %d KB\n", r.GOSBytes()/1024)
	fmt.Fprintf(&sb, "TCM compute time:  %v\n", r.TCMComputeTime())
	return sb.String()
}

// --- balancing & migration helpers ------------------------------------------

// PlanPlacement computes an improved thread placement from a TCM.
func PlanPlacement(m *TCM, current Assignment, nodes int) (Assignment, []balancer.Move) {
	return balancer.Plan(m, current, balancer.DefaultConfig(nodes))
}

// PlanPlacementHomeAware additionally weighs each thread's affinity to the
// nodes homing its data (the paper's §VI "home effect"); homeAffinity
// comes from Report.HomeAffinity.
func PlanPlacementHomeAware(m *TCM, current Assignment, nodes int, homeAffinity [][]float64, homeWeight float64) (Assignment, []balancer.Move) {
	cfg := balancer.DefaultConfig(nodes)
	cfg.HomeAffinity = homeAffinity
	cfg.HomeWeight = homeWeight
	return balancer.Plan(m, current, cfg)
}

// HomeMove is one executed or advised object home migration.
type HomeMove = gos.HomeMove

// AdviseHomeMigrations recommends object re-homings from the collected
// correlation state: objects whose accessors all run on one node, homed
// elsewhere, should move there.
func (r *Report) AdviseHomeMigrations(assignment Assignment, minBytes int) []HomeMove {
	k := r.s.Kernel()
	return k.AdviseHomes(k.Master().Summary(), assignment, minBytes)
}

// CrossVolume is the correlation volume split across nodes by a placement.
var CrossVolume = balancer.CrossVolume

// LocalVolume is the collocated correlation volume of a placement.
var LocalVolume = balancer.LocalVolume

// BlockedPlacement is the spawn-order default placement.
var BlockedPlacement = balancer.Blocked

// NewMigrationEngine builds a migration engine over a system's kernel.
// Session users get one implicitly via MigrateThread actions and
// MigrationHistory.
func NewMigrationEngine(s *System) *migration.Engine {
	return migration.NewEngine(s.Kernel(), migration.DefaultConfig())
}
