// Package jessica2 is a library-level reproduction of the profiling system
// from "Adaptive Sampling-Based Profiling Techniques for Optimizing the
// Distributed JVM Runtime" (Lam, Luo, Wang — IPDPS 2010), built on a
// deterministic discrete-event simulation of the JESSICA2 distributed JVM.
//
// The library provides:
//
//   - a simulated cluster running a home-based lazy release consistency
//     (HLRC) global object space with object faulting, diff propagation,
//     distributed locks and barriers;
//   - fine-grained active correlation tracking via adaptive object
//     sampling, producing thread correlation maps (TCMs);
//   - sticky-set profiling via adaptive stack sampling (stack-invariant
//     mining) plus footprinting and resolution, feeding a migration cost
//     model;
//   - a thread migration engine and a correlation-driven global load
//     balancer;
//   - the paper's three SPLASH-2 workload ports (SOR, Barnes-Hut,
//     Water-Spatial) and synthetic workloads;
//   - experiment harnesses regenerating every table and figure of the
//     paper's evaluation.
//
// # Quick start
//
//	sys := jessica2.New(jessica2.DefaultConfig())
//	sys.Launch(jessica2.NewSOR(), jessica2.Params{Threads: 8, Seed: 1})
//	sys.AttachProfiling(jessica2.ProfileConfig{Rate: jessica2.FullRate})
//	rep := sys.Run()
//	fmt.Println(rep)
package jessica2

import (
	"fmt"
	"strings"

	"jessica2/internal/balancer"
	"jessica2/internal/core"
	"jessica2/internal/gos"
	"jessica2/internal/heap"
	"jessica2/internal/migration"
	"jessica2/internal/network"
	"jessica2/internal/sampling"
	"jessica2/internal/scenario"
	"jessica2/internal/sim"
	"jessica2/internal/stack"
	"jessica2/internal/sticky"
	"jessica2/internal/tcm"
	"jessica2/internal/workload"
)

// --- re-exported core vocabulary --------------------------------------------

// Time is virtual simulation time in nanoseconds.
type Time = sim.Time

// Common durations.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// TrackingMode selects how object accesses are logged for correlation.
type TrackingMode = gos.TrackingMode

// Tracking modes.
const (
	TrackingOff     = gos.TrackingOff
	TrackingSampled = gos.TrackingSampled
	TrackingExact   = gos.TrackingExact
)

// Rate is the paper's nX page-relative sampling-rate notation.
type Rate = sampling.Rate

// FullRate samples every object.
const FullRate = sampling.FullRate

// Thread is a distributed-JVM thread handle, passed to workload bodies.
type Thread = gos.Thread

// Kernel is the distributed JVM instance.
type Kernel = gos.Kernel

// Class is a registered shared-object class.
type Class = heap.Class

// Object is a shared object in the global object space.
type Object = heap.Object

// Registry is the class/object registry of a kernel (Kernel.Reg).
type Registry = heap.Registry

// Method names a Java method for shadow stack frames.
type Method = stack.Method

// Characteristics describes a workload (Table I metadata).
type Characteristics = workload.Characteristics

// Workload is a benchmark runnable on the DJVM.
type Workload = workload.Workload

// Params configures a workload launch.
type Params = workload.Params

// TCM is the thread correlation map.
type TCM = tcm.Map

// Footprint is a per-class sticky-set byte composition.
type Footprint = sticky.Footprint

// InvariantRef is a mined stack-invariant reference.
type InvariantRef = stack.InvariantRef

// Resolution is a resolved sticky set ready to prefetch.
type Resolution = sticky.Resolution

// Assignment maps thread ids to node ids.
type Assignment = balancer.Assignment

// ProfileConfig selects profiling subsystems (see package core).
type ProfileConfig = core.Config

// StackConfig configures the stack profiler.
type StackConfig = core.StackConfig

// AdaptiveConfig configures the adaptive rate controller.
type AdaptiveConfig = core.AdaptiveConfig

// FootprintConfig configures sticky-set footprinting.
type FootprintConfig = core.FootprintConfig

// MigrationOutcome reports one thread migration.
type MigrationOutcome = migration.Outcome

// Workload types (paper benchmarks and synthetics).
type (
	// SOR is the red-black successive over-relaxation kernel.
	SOR = workload.SOR
	// BarnesHut is the hierarchical N-body simulation.
	BarnesHut = workload.BarnesHut
	// WaterSpatial is the molecular dynamics application.
	WaterSpatial = workload.WaterSpatial
	// Synthetic is the configurable microbenchmark.
	Synthetic = workload.Synthetic
	// LU is the SPLASH-2 blocked dense LU factorization kernel.
	LU = workload.LU
	// KVMix is the phase-shifting key-value transaction mix.
	KVMix = workload.KVMix
)

// Workload constructors (paper-scale defaults).
var (
	NewSOR          = workload.NewSOR
	NewSORSmall     = workload.NewSORSmall
	NewBarnesHut    = workload.NewBarnesHut
	NewWaterSpatial = workload.NewWaterSpatial
	NewSynthetic    = workload.NewSynthetic
	NewLU           = workload.NewLU
	NewLUSmall      = workload.NewLUSmall
	NewKVMix        = workload.NewKVMix
)

// --- scenario engine ---------------------------------------------------------

// Scenario is a deterministic, seed-driven perturbation schedule (CPU
// heterogeneity, link ramps, jitter, transient slowdowns, phase shifts)
// composed with a base workload run; see package scenario.
type Scenario = scenario.Scenario

// ScenarioRamp, ScenarioJitter, ScenarioSlowdown and ScenarioPhaseShift are
// the perturbation vocabulary of a Scenario.
type (
	ScenarioRamp       = scenario.Ramp
	ScenarioJitter     = scenario.Jitter
	ScenarioSlowdown   = scenario.Slowdown
	ScenarioPhaseShift = scenario.PhaseShift
)

// Ramp parameters.
const (
	RampLatency   = scenario.RampLatency
	RampBandwidth = scenario.RampBandwidth
)

// ScenarioPreset builds one of the named built-in scenarios; ParseScenario
// accepts comma-separated preset lists ("hetero,jitter"). See
// scenario.PresetNames for the vocabulary.
var (
	ScenarioPreset = scenario.Preset
	ParseScenario  = scenario.Parse
)

// Phase is the workload phase register the scenario engine drives.
type Phase = workload.Phase

// Profiling config helpers.
var (
	DefaultStackConfig    = core.DefaultStackConfig
	DefaultAdaptiveConfig = core.DefaultAdaptiveConfig
	DefaultResolverConfig = sticky.DefaultResolverConfig
	DefaultFootprinter    = sticky.DefaultFootprinterConfig
)

// Distance metrics (paper equations 1 and 2) and accuracy.
var (
	DistanceEUC = tcm.DistanceEUC
	DistanceABS = tcm.DistanceABS
	Accuracy    = tcm.Accuracy
)

// --- system facade -----------------------------------------------------------

// Config assembles a DJVM instance.
type Config struct {
	// Nodes is the cluster size (node 0 is the master JVM).
	Nodes int
	// Tracking selects the correlation-tracking mode.
	Tracking TrackingMode
	// TransferOALs ships OALs to the master (disable to isolate
	// collection CPU cost as in Table II).
	TransferOALs bool
	// DistributedTCM enables the paper's §VI scalability extension:
	// workers pre-reduce their OALs into per-object summaries.
	DistributedTCM bool
	// Network overrides the interconnect model (zero value = defaults).
	Network network.Config
	// Costs overrides the CPU cost model (zero value = defaults).
	Costs gos.CostModel
	// Scenario, when non-nil, perturbs the run with the fault-injection
	// scenario engine (heterogeneous CPUs, link ramps, jitter, transient
	// slowdowns, workload phase shifts). Same-seed runs stay deterministic.
	Scenario *Scenario
}

// DefaultConfig mirrors the paper's 8-node Fast Ethernet testbed with
// sampled correlation tracking enabled.
func DefaultConfig() Config {
	return Config{
		Nodes:        8,
		Tracking:     TrackingSampled,
		TransferOALs: true,
	}
}

// System is one simulated distributed JVM with optional profiling.
type System struct {
	k        *gos.Kernel
	profiler *core.Profiler
	phase    *workload.Phase
	scripted bool // a scenario drives the phase register
	loads    []Workload
	ran      bool
	execTime Time
}

// New builds a system from the config.
func New(cfg Config) *System {
	kcfg := gos.DefaultConfig()
	if cfg.Nodes > 0 {
		kcfg.Nodes = cfg.Nodes
	}
	kcfg.Tracking = cfg.Tracking
	kcfg.TransferOALs = cfg.TransferOALs
	kcfg.DistributedTCM = cfg.DistributedTCM
	if cfg.Network.BandwidthBytesPerSec > 0 {
		kcfg.Net = cfg.Network
	}
	if cfg.Costs.CheckCost > 0 {
		kcfg.Costs = cfg.Costs
	}
	s := &System{k: gos.NewKernel(kcfg), phase: new(workload.Phase)}
	if cfg.Scenario != nil {
		s.scripted = true
		cfg.Scenario.Apply(s.k, s.phase)
	}
	return s
}

// Kernel exposes the underlying DJVM (advanced use: allocation, custom
// threads, migration).
func (s *System) Kernel() *Kernel { return s.k }

// Phase exposes the workload phase register the scenario engine drives.
func (s *System) Phase() *Phase { return s.phase }

// Launch registers a workload's classes and spawns its threads. When a
// scenario drives the system and the caller installed no register of its
// own, the system's phase register rides along so phase-aware workloads
// follow the scenario's phase shifts (without a scenario, workloads keep
// their intrinsic phase schedules).
func (s *System) Launch(w Workload, p Params) *System {
	if s.ran {
		panic("jessica2: Launch after Run")
	}
	if p.Phase == nil && s.scripted {
		p.Phase = s.phase
	}
	w.Launch(s.k, p)
	s.loads = append(s.loads, w)
	return s
}

// AttachProfiling wires the profiling subsystems. Call after Launch.
func (s *System) AttachProfiling(cfg ProfileConfig) *Profiler {
	if s.ran {
		panic("jessica2: AttachProfiling after Run")
	}
	s.profiler = core.Attach(s.k, cfg)
	return &Profiler{p: s.profiler}
}

// Run executes the simulation to completion and returns the report.
func (s *System) Run() *Report {
	if s.ran {
		panic("jessica2: Run called twice")
	}
	s.ran = true
	s.execTime = s.k.Run()
	s.k.FlushAllOAL()
	return s.Report()
}

// Report summarizes the finished run.
func (s *System) Report() *Report {
	return &Report{sys: s}
}

// Profiler wraps the attached profiling subsystem.
type Profiler struct {
	p *core.Profiler
}

// Invariants returns the mined stack-invariant references for a thread.
func (p *Profiler) Invariants(tid int) []InvariantRef { return p.p.Invariants(tid) }

// Footprint returns a thread's sticky-set footprint estimate.
func (p *Profiler) Footprint(tid int) Footprint { return p.p.Footprint(tid) }

// Resolve computes a thread's sticky set for prefetching.
func (p *Profiler) Resolve(tid int) *Resolution { return p.p.Resolve(tid) }

// RateTrace returns the adaptive controller's decision log.
func (p *Profiler) RateTrace() []core.RateChange { return p.p.RateTrace }

// StackCPU returns total virtual CPU charged to stack sampling.
func (p *Profiler) StackCPU() Time { return p.p.StackCPU }

// Core exposes the underlying core profiler for advanced use.
func (p *Profiler) Core() *core.Profiler { return p.p }

// Report gives access to run results.
type Report struct {
	sys *System
}

// ExecTime is the workload execution time (paper tables' metric).
func (r *Report) ExecTime() Time { return r.sys.execTime }

// TCM builds the thread correlation map from all collected OALs.
func (r *Report) TCM() *TCM {
	m, _ := r.sys.k.TCM()
	return m
}

// KernelStats returns protocol/profiling counters.
func (r *Report) KernelStats() gos.KernelStats { return r.sys.k.Stats() }

// NetworkStats returns per-category traffic stats.
func (r *Report) NetworkStats() network.Stats { return r.sys.k.Net.Stats() }

// OALBytes is profiling traffic volume.
func (r *Report) OALBytes() int64 {
	st := r.sys.k.Net.Stats()
	return st.CatBytes(network.CatOAL)
}

// GOSBytes is protocol traffic volume (data + control + headers).
func (r *Report) GOSBytes() int64 {
	st := r.sys.k.Net.Stats()
	return st.CatBytes(network.CatGOSData) + st.CatBytes(network.CatControl) + st.HeaderBytesTotal
}

// TCMComputeTime is the master analyzer's CPU (dedicated machine).
func (r *Report) TCMComputeTime() Time { return r.sys.k.Master().ComputeTime() }

// HomeAffinity exports the thread×node shared-volume matrix (the "home
// effect" input for home-aware placement planning).
func (r *Report) HomeAffinity() [][]float64 {
	k := r.sys.k
	return k.Master().HomeAffinity(len(k.Threads()), k.NumNodes())
}

// String renders a human-readable summary.
func (r *Report) String() string {
	var sb strings.Builder
	st := r.KernelStats()
	names := make([]string, 0, len(r.sys.loads))
	for _, w := range r.sys.loads {
		names = append(names, w.Name())
	}
	fmt.Fprintf(&sb, "workloads:         %s\n", strings.Join(names, ", "))
	fmt.Fprintf(&sb, "execution time:    %v\n", r.ExecTime())
	fmt.Fprintf(&sb, "intervals:         %d\n", st.Intervals)
	fmt.Fprintf(&sb, "remote faults:     %d (%d KB)\n", st.Faults, st.FaultBytes/1024)
	fmt.Fprintf(&sb, "correlation logs:  %d\n", st.CorrelationLogs)
	fmt.Fprintf(&sb, "barriers/locks:    %d / %d\n", st.Barriers, st.LockAcquires)
	fmt.Fprintf(&sb, "OAL traffic:       %d KB\n", r.OALBytes()/1024)
	fmt.Fprintf(&sb, "GOS traffic:       %d KB\n", r.GOSBytes()/1024)
	fmt.Fprintf(&sb, "TCM compute time:  %v\n", r.TCMComputeTime())
	return sb.String()
}

// --- balancing & migration helpers ------------------------------------------

// PlanPlacement computes an improved thread placement from a TCM.
func PlanPlacement(m *TCM, current Assignment, nodes int) (Assignment, []balancer.Move) {
	return balancer.Plan(m, current, balancer.DefaultConfig(nodes))
}

// PlanPlacementHomeAware additionally weighs each thread's affinity to the
// nodes homing its data (the paper's §VI "home effect"); homeAffinity
// comes from Report.HomeAffinity.
func PlanPlacementHomeAware(m *TCM, current Assignment, nodes int, homeAffinity [][]float64, homeWeight float64) (Assignment, []balancer.Move) {
	cfg := balancer.DefaultConfig(nodes)
	cfg.HomeAffinity = homeAffinity
	cfg.HomeWeight = homeWeight
	return balancer.Plan(m, current, cfg)
}

// HomeMove is one executed or advised object home migration.
type HomeMove = gos.HomeMove

// AdviseHomeMigrations recommends object re-homings from the collected
// correlation state: objects whose accessors all run on one node, homed
// elsewhere, should move there.
func (r *Report) AdviseHomeMigrations(assignment Assignment, minBytes int) []HomeMove {
	k := r.sys.k
	return k.AdviseHomes(k.Master().Summary(), assignment, minBytes)
}

// CrossVolume is the correlation volume split across nodes by a placement.
var CrossVolume = balancer.CrossVolume

// LocalVolume is the collocated correlation volume of a placement.
var LocalVolume = balancer.LocalVolume

// BlockedPlacement is the spawn-order default placement.
var BlockedPlacement = balancer.Blocked

// NewMigrationEngine builds a migration engine over a system's kernel.
func NewMigrationEngine(s *System) *migration.Engine {
	return migration.NewEngine(s.k, migration.DefaultConfig())
}
