package jessica2_test

import (
	"testing"

	"jessica2"
)

// serveRun drives one open-loop ServeMix session under the diurnal arrival
// preset with the closed-loop rebalance policy and returns the final
// serving stats rendered to a string (the golden-determinism unit) plus the
// final snapshot.
func serveRun(t *testing.T, preset string, seed uint64) (string, *jessica2.Snapshot) {
	t.Helper()
	sc, err := jessica2.ScenarioPreset(preset, 4, seed)
	if err != nil {
		t.Fatal(err)
	}
	// Shrink the preset schedule so the test stays quick.
	sc.Arrivals.Rate /= 8
	sc.Arrivals.Horizon /= 4

	cfg := jessica2.DefaultConfig()
	cfg.Nodes = 4
	cfg.Scenario = sc
	cfg.Epoch = 25 * jessica2.Millisecond
	sess := jessica2.NewSession(cfg)
	if err := sess.Launch(jessica2.NewServeMix(), jessica2.Params{Threads: 8, Seed: seed}); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.AttachProfiling(jessica2.ProfileConfig{Rate: jessica2.FullRate}); err != nil {
		t.Fatal(err)
	}
	if err := sess.SetPolicy(jessica2.NewRebalancePolicy()); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(); err != nil {
		t.Fatal(err)
	}
	snap := sess.Snapshot()
	if snap.Serve == nil {
		t.Fatal("open-loop session snapshot has no Serve stats")
	}
	return snap.Serve.String(), snap
}

// TestServeMixGoldenDeterminism: an open-loop run is exactly as
// reproducible as a closed-loop one — same seed, byte-identical serving
// stats. Runs under -race in CI.
func TestServeMixGoldenDeterminism(t *testing.T) {
	a, snap := serveRun(t, "diurnal", 7)
	b, _ := serveRun(t, "diurnal", 7)
	if a != b {
		t.Fatalf("same seed diverged:\n  run1: %s\n  run2: %s", a, b)
	}
	if c, _ := serveRun(t, "diurnal", 8); c == a {
		t.Fatal("different seeds produced identical serving stats")
	}

	s := snap.Serve
	if s.Completed == 0 || s.Completed != s.Arrived {
		t.Fatalf("run finished with %d/%d requests served", s.Completed, s.Arrived)
	}
	if s.InFlight != 0 {
		t.Fatalf("run finished with %d in flight", s.InFlight)
	}
	if s.LatencyP50 <= 0 || s.LatencyP95 < s.LatencyP50 || s.LatencyP99 < s.LatencyP95 || s.LatencyMax < s.LatencyP99 {
		t.Fatalf("latency percentiles not monotone: %s", s)
	}
	if s.GoodputPerSec <= 0 {
		t.Fatalf("no goodput: %s", s)
	}
}

// TestServeMixNeedsSchedule: launching an open-loop workload without any
// arrival source is a configuration error, not a hang.
func TestServeMixNeedsSchedule(t *testing.T) {
	cfg := jessica2.DefaultConfig()
	cfg.Nodes = 4
	sess := jessica2.NewSession(cfg)
	if err := sess.Launch(jessica2.NewServeMix(), jessica2.Params{Threads: 4, Seed: 1}); err == nil {
		t.Fatal("Launch accepted an open-loop workload with no schedule")
	}
}

// TestServeMixClosedLoopSnapshotNil: closed-loop sessions never see the
// Serve field move (golden byte-identity depends on it).
func TestServeMixClosedLoopSnapshotNil(t *testing.T) {
	cfg := jessica2.DefaultConfig()
	cfg.Nodes = 4
	sess := jessica2.NewSession(cfg)
	syn := jessica2.NewSynthetic()
	if err := sess.Launch(syn, jessica2.Params{Threads: 4, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(); err != nil {
		t.Fatal(err)
	}
	if sess.Snapshot().Serve != nil {
		t.Fatal("closed-loop snapshot grew a Serve view")
	}
}
