package jessica2_test

import (
	"testing"

	"jessica2"
)

// clKVMix is the closed-loop demo workload: phase-rich KVMix sized so the
// phased scenario's 120 ms shifts land mid-run and each phase spans several
// rounds (giving an online policy time to react inside a phase).
func clKVMix() *jessica2.KVMix {
	k := jessica2.NewKVMix()
	k.Keys, k.ValueSize = 2048, 128
	k.Rounds, k.TxnsPerRound, k.OpsPerTxn = 24, 24, 4
	k.HotSpan = 256
	return k
}

// clRun executes the demo configuration under the given policy and epoch
// count and returns the exec time. Epoch length is calibrated from a fixed
// nominal duration so both runs step identically.
func clRun(t *testing.T, policy jessica2.Policy, epochs int) (jessica2.Time, *jessica2.Session) {
	t.Helper()
	const nominal = 800 * jessica2.Millisecond
	cfg := jessica2.DefaultConfig()
	cfg.Nodes = 4
	cfg.Epoch = nominal / jessica2.Time(epochs)
	scen, err := jessica2.ScenarioPreset("phased", cfg.Nodes, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Scenario = scen
	sess := jessica2.NewSession(cfg)
	if err := sess.Launch(clKVMix(), jessica2.Params{Threads: 8, Seed: 42}); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.AttachProfiling(jessica2.ProfileConfig{Rate: jessica2.FullRate}); err != nil {
		t.Fatal(err)
	}
	if err := sess.SetPolicy(policy); err != nil {
		t.Fatal(err)
	}
	rep, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	return rep.ExecTime(), sess
}

// TestClosedLoopBeatsNop is the closed-loop demo assertion: on KVMix under
// the phased scenario, the rebalance policy with multiple epochs must
// strictly beat the passive baseline on the same seed.
func TestClosedLoopBeatsNop(t *testing.T) {
	nop, _ := clRun(t, jessica2.NopPolicy{}, 8)
	reb, sess := clRun(t, jessica2.NewRebalancePolicy(), 8)
	t.Logf("nop=%v rebalance=%v (%.1f%%) actions=%d", nop, reb,
		100*float64(nop-reb)/float64(nop), len(sess.Actions()))
	if reb >= nop {
		t.Fatalf("closed-loop rebalance did not improve: nop=%v rebalance=%v", nop, reb)
	}
}
