// Package oal defines object access lists: the per-thread, per-interval
// records of shared-object accesses that the access profiler emits and the
// central correlation daemon consumes. Records carry the interval context
// (delimiting bytecode PCs in the paper; logical interval ids here) and one
// entry per distinct object accessed in the interval — the HLRC at-most-once
// property guarantees a single log per object per interval.
package oal

import "jessica2/internal/heap"

// Entry is one logged access: the object id and the logged sample size.
// Bytes is the scaled estimator of the object's communication weight:
// amortized sample size × sampling gap, so that sampled maps estimate the
// full-population correlation volume.
type Entry struct {
	Obj   heap.ObjectID
	Bytes int64
	// Write records whether the interval included a write to the object.
	Write bool
}

// Record is the jumbo-message payload for one closed interval of one thread.
type Record struct {
	Thread   int   // global thread id
	Node     int   // node the interval executed on
	Interval int64 // per-thread interval sequence number
	// StartPC/EndPC delimit the interval context (the paper packs the
	// start and end bytecode PCs; our simulated threads use logical
	// program counters).
	StartPC, EndPC int64
	Entries        []Entry
}

// Reset clears the record for reuse, retaining the Entries backing array so
// that pooled records stop reallocating entry buffers every interval.
func (r *Record) Reset() {
	entries := r.Entries[:0]
	*r = Record{Entries: entries}
}

// entryWireBytes is the encoded size of one entry: 4-byte object id
// + 4-byte size (matching the paper's "accessed object id and size").
const entryWireBytes = 8

// recordHeaderBytes covers thread id, node, interval number and the two PCs.
const recordHeaderBytes = 24

// WireBytes returns the encoded size of the record for network accounting.
func (r *Record) WireBytes() int {
	return recordHeaderBytes + entryWireBytes*len(r.Entries)
}

// Batch is a set of records travelling together (piggybacked on one
// synchronization message or flushed in one jumbo message).
type Batch struct {
	Records []*Record
}

// WireBytes sums the encoded sizes of all records.
func (b *Batch) WireBytes() int {
	n := 0
	for _, r := range b.Records {
		n += r.WireBytes()
	}
	return n
}

// NumEntries counts entries across all records.
func (b *Batch) NumEntries() int {
	n := 0
	for _, r := range b.Records {
		n += len(r.Entries)
	}
	return n
}
