package oal

import "testing"

func TestRecordWireBytes(t *testing.T) {
	r := &Record{Thread: 3, Node: 1, Interval: 7, StartPC: 100, EndPC: 240}
	if r.WireBytes() != 24 {
		t.Fatalf("empty record wire = %d, want header 24", r.WireBytes())
	}
	r.Entries = append(r.Entries, Entry{Obj: 5, Bytes: 64}, Entry{Obj: 9, Bytes: 128, Write: true})
	if r.WireBytes() != 24+16 {
		t.Fatalf("wire = %d, want 40", r.WireBytes())
	}
}

func TestBatchAccounting(t *testing.T) {
	a := &Record{Entries: make([]Entry, 3)}
	b := &Record{Entries: make([]Entry, 5)}
	batch := &Batch{Records: []*Record{a, b}}
	if batch.NumEntries() != 8 {
		t.Fatalf("entries = %d", batch.NumEntries())
	}
	if batch.WireBytes() != a.WireBytes()+b.WireBytes() {
		t.Fatal("batch wire bytes wrong")
	}
	empty := &Batch{}
	if empty.WireBytes() != 0 || empty.NumEntries() != 0 {
		t.Fatal("empty batch accounting wrong")
	}
}

func TestIntervalContextFields(t *testing.T) {
	// The record carries the interval context the paper packs with OALs:
	// start and end PCs delimiting the interval.
	r := &Record{StartPC: 10, EndPC: 50}
	if r.EndPC-r.StartPC != 40 {
		t.Fatal("context arithmetic broken")
	}
}
