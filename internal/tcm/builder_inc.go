package tcm

import (
	"math"
	"math/bits"
	"sort"

	"jessica2/internal/oal"
)

// IncBuilder is the online, differential correlation daemon: the default
// Builder of the package. Where the legacy FullBuilder re-sorts all M
// object keys and re-accrues every pairwise cell on every Build/Peek, the
// incremental builder maintains the N×N map continuously:
//
//   - each object's thread set is a dense []uint64 bitset (N is fixed at
//     construction), so the repeat-access hot path is one bit test and
//     membership iteration is word-wise, with the ids emerging already
//     sorted — no per-object sort, ever;
//   - when thread t first touches an object, the (t, existing) pair deltas
//     accrue immediately into a persistently-maintained N×N accumulator;
//   - when a re-log upgrades an object's weight (bytes > entry weight), the
//     difference re-accrues over the existing pair set;
//   - Build/Peek render the accumulator in O(N²) independent of M, and
//     PeekInto re-syncs a reused scratch map in O(dirty cells) — the epoch
//     snapshot path of closed-loop sessions;
//   - Reset clears the accumulator in one pass.
//
// Cells accumulate in scaled fixed-point int64 (fixedShift) and convert to
// float64 at read time, so the result is independent of accrual order —
// float addition is not associative, but integer addition is. For the
// integral byte weights the simulator logs (OAL entries carry int64 byte
// counts) the conversion is exact up to 2^(63-fixedShift) ≈ 2^51 bytes per
// add and 2^(53) scaled units ≈ 2^41 bytes ≈ 2 TB of correlated volume per
// thread pair, far beyond any simulated run — within that envelope the
// incremental maps are bit-identical to the legacy full rebuild (asserted
// by the property and fuzz equivalence tests, and by the byte-compared
// experiment renderings of the tcmfull CI gate). Fractional weights are
// quantized to 2^-fixedShift bytes; additions saturate at MaxInt64 instead
// of wrapping.
type IncBuilder struct {
	n     int
	words int // bitset words per object: ceil(n/64)
	objs  map[int64]*incEntry
	cost  BuildCost

	// acc is the persistently-maintained N×N accumulator (both symmetric
	// mirrors, scaled fixed-point). livePairs tracks Σ_objects C(k,2) so a
	// charged Build reports the same cumulative simulated O(M·N²) charge
	// the legacy accrual pass realizes, in O(1).
	acc       []int64
	livePairs int64

	// pending holds the keys whose thread set crossed two members since
	// the last consuming VisitNewlyShared — the O(new) feed behind the
	// session's hot-object epoch snapshots.
	pending []int64

	// Dirty-cell tracking for O(dirty) PeekInto: peekDst is the scratch
	// map currently mirroring acc except at the canonical (upper-triangle)
	// cell indexes listed in dirty. allDirty falls back to a full render
	// when the list outgrows its usefulness.
	peekDst   *Map
	dirty     []int
	dirtyMark []uint64
	allDirty  bool

	// free recycles entries (and their bitsets) across windows, capped by
	// freePoolCap at Reset; keys/ts are iteration scratch.
	free []*incEntry
	keys []int64
	ts   []int32
}

type incEntry struct {
	bytes float64
	fixed int64 // bytes in fixed point, the accrued pair weight
	count int   // popcount of bits
	bits  []uint64
}

const (
	// fixedShift scales the fixed-point cell units: 2^-12 bytes of
	// resolution, 2^51 bytes of exact per-add headroom.
	fixedShift = 12
	fixedOne   = 1 << fixedShift
)

// toFixed quantizes a weight to fixed point, saturating instead of
// overflowing (weights are non-negative: a fresh entry's weight is 0 and
// only larger weights replace it, so NaN and negatives never upgrade).
func toFixed(bytes float64) int64 {
	if bytes >= float64(math.MaxInt64)/fixedOne {
		return math.MaxInt64
	}
	return int64(bytes*fixedOne + 0.5)
}

// toFloat converts an accumulated cell back to float64 bytes.
func toFloat(v int64) float64 { return float64(v) / fixedOne }

// satAdd adds a non-negative delta with saturation at MaxInt64.
func satAdd(a, d int64) int64 {
	if a > math.MaxInt64-d {
		return math.MaxInt64
	}
	return a + d
}

// NewIncBuilder returns an incremental daemon for n threads.
func NewIncBuilder(n int) *IncBuilder {
	if n < 0 {
		panic("tcm: negative dimension")
	}
	return &IncBuilder{
		n:         n,
		words:     (n + 63) / 64,
		objs:      make(map[int64]*incEntry),
		acc:       make([]int64, n*n),
		dirtyMark: make([]uint64, (n*n+63)/64),
	}
}

// N returns the thread-count dimension.
func (b *IncBuilder) N() int { return b.n }

// Ingest reorganizes one batch of records into the per-object state.
func (b *IncBuilder) Ingest(batch *oal.Batch) {
	for _, r := range batch.Records {
		b.IngestRecord(r)
	}
}

// IngestRecord reorganizes one record.
func (b *IncBuilder) IngestRecord(r *oal.Record) {
	b.cost.Records++
	for _, e := range r.Entries {
		b.cost.Entries++
		b.AddAccess(r.Thread, int64(e.Obj), float64(e.Bytes))
	}
}

// AddAccess records that thread t accessed the keyed object with the given
// logged weight, maintaining the correlation map differentially: weight
// upgrades (bytes > entry weight, a re-log at a finer gap) re-accrue the
// difference over the object's existing pair set, and a first touch by t
// accrues the current weight over (t, existing). A repeat access at an
// unchanged weight — the overwhelmingly common case — is a single bit
// test. Malformed thread ids outside [0, n) are dropped (counted in
// DroppedEntries), exactly as in the legacy builder.
func (b *IncBuilder) AddAccess(t int, key int64, bytes float64) {
	if t < 0 || t >= b.n {
		b.cost.DroppedEntries++
		return
	}
	oe := b.objs[key]
	if oe == nil {
		oe = b.newEntry()
		b.objs[key] = oe
	}
	if bytes > oe.bytes {
		b.upgrade(oe, bytes)
	}
	b.addThread(oe, key, t)
}

// newEntry pops the recycle pool or allocates a zeroed entry.
func (b *IncBuilder) newEntry() *incEntry {
	if n := len(b.free); n > 0 {
		oe := b.free[n-1]
		b.free[n-1] = nil
		b.free = b.free[:n-1]
		return oe
	}
	return &incEntry{bits: make([]uint64, b.words)}
}

// upgrade raises the entry weight, re-accruing the fixed-point difference
// over the existing pair set.
func (b *IncBuilder) upgrade(oe *incEntry, bytes float64) {
	nf := toFixed(bytes)
	if d := nf - oe.fixed; d > 0 && oe.count >= 2 {
		ts := b.members(oe)
		for i := 0; i < len(ts); i++ {
			for j := i + 1; j < len(ts); j++ {
				b.accrue(int(ts[i]), int(ts[j]), d)
			}
		}
	}
	oe.bytes, oe.fixed = bytes, nf
}

// members renders the entry's bitset into the shared ts scratch, ascending
// (word-wise iteration; the ids emerge already sorted).
func (b *IncBuilder) members(oe *incEntry) []int32 {
	ts := b.ts[:0]
	for wi, w := range oe.bits {
		for w != 0 {
			ts = append(ts, int32(wi<<6+bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	b.ts = ts
	return ts
}

// addThread inserts t into the entry's bitset, accruing the current weight
// against every existing member and maintaining the pending and simulated
// pair-charge bookkeeping.
func (b *IncBuilder) addThread(oe *incEntry, key int64, t int) {
	w, bit := t>>6, uint64(1)<<uint(t&63)
	if oe.bits[w]&bit != 0 {
		return // repeat access: the hot path
	}
	if oe.count > 0 && oe.fixed > 0 {
		for wi, v := range oe.bits {
			for v != 0 {
				s := wi<<6 + bits.TrailingZeros64(v)
				v &= v - 1
				b.accrue(t, s, oe.fixed)
			}
		}
	}
	oe.bits[w] |= bit
	b.livePairs += int64(oe.count)
	oe.count++
	if oe.count == 2 {
		b.pending = append(b.pending, key)
	}
}

// accrue adds a fixed-point delta to the (i, j) cell pair and marks the
// canonical cell dirty for the next incremental PeekInto re-sync.
func (b *IncBuilder) accrue(i, j int, d int64) {
	if i == j {
		return
	}
	ii, jj := i*b.n+j, j*b.n+i
	b.acc[ii] = satAdd(b.acc[ii], d)
	b.acc[jj] = satAdd(b.acc[jj], d)
	if b.allDirty {
		return
	}
	c := ii
	if jj < ii {
		c = jj
	}
	w, bit := c>>6, uint64(1)<<uint(c&63)
	if b.dirtyMark[w]&bit != 0 {
		return
	}
	b.dirtyMark[w] |= bit
	b.dirty = append(b.dirty, c)
	if len(b.dirty)*4 > len(b.acc) {
		// Past a quarter of the matrix, a full render beats cell-by-cell
		// re-sync; stop growing the list.
		b.allDirty = true
	}
}

// Build renders the maintained TCM and charges the cost ledger with the
// paper's full accrual pass — Objects = M and PairAdds += Σ C(k,2), the
// identical cumulative simulated charge the legacy builder realizes — in
// O(N²) host work independent of M.
func (b *IncBuilder) Build() (*Map, BuildCost) {
	m := NewMap(b.n)
	b.render(m)
	b.cost.Objects = len(b.objs)
	b.cost.PairAdds += b.livePairs
	return m, b.cost
}

// Peek renders the same map Build would without touching the cost ledger:
// a live-snapshot read must leave the simulated analyzer's accounting
// exactly as a later charged Build would have found it.
func (b *IncBuilder) Peek() *Map {
	m := NewMap(b.n)
	b.render(m)
	return m
}

// PeekInto is Peek with caller-owned scratch. When dst is the same scratch
// the previous PeekInto returned, only the cells dirtied since then are
// re-converted — O(dirty), the closed-loop epoch steady state — otherwise
// the whole accumulator renders into dst (recycled via Reuse; nil
// allocates). The returned map aliases dst, is valid until the next
// PeekInto, and must not be written to by the caller (a foreign write would
// desynchronize the dirty-cell mirror).
func (b *IncBuilder) PeekInto(dst *Map) *Map {
	if dst != nil && dst == b.peekDst && dst.n == b.n && !b.allDirty {
		for _, ci := range b.dirty {
			i, j := ci/b.n, ci%b.n
			v := toFloat(b.acc[ci])
			dst.cells[ci] = v
			dst.cells[j*b.n+i] = v
		}
		b.resetDirty()
		return dst
	}
	dst = dst.Reuse(b.n)
	b.render(dst)
	b.resetDirty()
	b.peekDst = dst
	return dst
}

// render converts the whole accumulator into dst (dst dimensions must
// already match).
func (b *IncBuilder) render(dst *Map) {
	for i, v := range b.acc {
		dst.cells[i] = toFloat(v)
	}
}

// resetDirty clears the dirty-cell tracking after a re-sync.
func (b *IncBuilder) resetDirty() {
	clear(b.dirtyMark)
	b.dirty = b.dirty[:0]
	b.allDirty = false
}

// DecayThreads scales every accumulated correlation involving the given
// threads by factor (clamped into [0, 1]) — the graceful-degradation hook
// the master's failure detector pulls when a node is declared dead: instead
// of freezing stale correlations at full weight, the lost threads'
// evidence is discounted so live threads dominate the next placement
// decision. The decay is deterministic (`int64(float64(v)*factor + 0.5)`
// per cell, applied to both symmetric mirrors); a pair whose BOTH threads
// are in the set decays twice (factor²), the intended stronger quarantine
// of entirely-dead evidence. Per-object thread sets and weights are left
// intact — future re-logs accrue at full weight, so a recovered node's
// threads rebuild their correlations naturally. Out-of-range ids are
// ignored. The scratch mirror is invalidated, so the next PeekInto is a
// full O(N²) render.
func (b *IncBuilder) DecayThreads(threads []int, factor float64) {
	if factor < 0 || math.IsNaN(factor) {
		factor = 0
	}
	if factor >= 1 {
		return
	}
	decayed := false
	for _, t := range threads {
		if t < 0 || t >= b.n {
			continue
		}
		decayed = true
		for j := 0; j < b.n; j++ {
			ij, ji := t*b.n+j, j*b.n+t
			b.acc[ij] = int64(float64(b.acc[ij])*factor + 0.5)
			b.acc[ji] = int64(float64(b.acc[ji])*factor + 0.5)
		}
	}
	if decayed {
		b.allDirty = true
	}
}

// SeedMap pre-loads the accumulator with a prior run's correlation map —
// the profile-guided warm start: a policy planning against the seeded map
// sees the stored correlation structure from epoch 0 instead of relearning
// it. The map's cells quantize back into the fixed-point units they were
// accumulated in (exact for maps that originated from an accumulator), and
// accrue on top of whatever is already present. Seeding is prior knowledge,
// not measurement: livePairs and the cost ledger are untouched, so a later
// charged Build reports only the work the simulated analyzer really did.
// Per-object thread sets are untouched too — the seeded volume is
// pair-level evidence with no object identity, exactly like post-decay
// state. The scratch mirror is invalidated, so the next PeekInto is a full
// O(N²) render. Dimension mismatches are ignored (the session layer only
// seeds fingerprint-matched profiles).
func (b *IncBuilder) SeedMap(m *Map) {
	if m == nil || m.n != b.n {
		return
	}
	seeded := false
	for i, v := range m.cells {
		if v == 0 {
			continue
		}
		b.acc[i] = satAdd(b.acc[i], toFixed(v))
		seeded = true
	}
	if seeded {
		b.allDirty = true
	}
}

// VisitNewlyShared streams the objects whose thread set crossed two members
// since the last consuming call, in ascending key order: key, current
// weight, and the ascending accessor ids (the threads slice is iteration
// scratch, valid only during the callback). With consume set, entries whose
// visit returns true are retired from the pending list — O(new) work per
// epoch; entries declined with false stay pending for the next call.
// Without consume the list is left untouched (an ad-hoc snapshot peek).
func (b *IncBuilder) VisitNewlyShared(consume bool, visit func(key int64, bytes float64, threads []int32) bool) {
	if len(b.pending) == 0 {
		return
	}
	sort.Slice(b.pending, func(i, j int) bool { return b.pending[i] < b.pending[j] })
	if !consume {
		for _, k := range b.pending {
			visit(k, b.objs[k].bytes, b.members(b.objs[k]))
		}
		return
	}
	kept := b.pending[:0]
	for _, k := range b.pending {
		oe := b.objs[k]
		if !visit(k, oe.bytes, b.members(oe)) {
			kept = append(kept, k)
		}
	}
	b.pending = kept
}

// Summarize exports the builder's per-object state as a mergeable summary
// (sorted by key for determinism) — the worker-side half of the distributed
// reduction. The bitsets iterate in ascending id order, so no per-object
// sort is needed.
func (b *IncBuilder) Summarize() *Summary {
	s := &Summary{Objs: make([]ObjSummary, 0, len(b.objs))}
	keys := b.keys[:0]
	for k := range b.objs {
		keys = append(keys, k)
	}
	b.keys = keys
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		oe := b.objs[k]
		s.Objs = append(s.Objs, ObjSummary{
			Key:     k,
			Bytes:   oe.bytes,
			Threads: append([]int32(nil), b.members(oe)...),
		})
	}
	return s
}

// IngestSummary merges a worker summary into the builder (the master-side
// half): the larger byte estimate wins — its delta re-accrued over the
// existing pair set — and thread sets union with malformed out-of-range ids
// dropped, matching AddAccess and the legacy builder's accounting.
func (b *IncBuilder) IngestSummary(s *Summary) {
	for _, o := range s.Objs {
		oe := b.objs[o.Key]
		if oe == nil {
			oe = b.newEntry()
			b.objs[o.Key] = oe
		}
		if o.Bytes > oe.bytes {
			b.upgrade(oe, o.Bytes)
		}
		for _, t := range o.Threads {
			if t < 0 || int(t) >= b.n {
				b.cost.DroppedEntries++
				continue
			}
			b.addThread(oe, o.Key, int(t))
		}
		b.cost.Entries += len(o.Threads)
	}
}

// Merge unions another builder's state into b (in-process variant of the
// summary path, used by tests and by hierarchical reductions).
func (b *IncBuilder) Merge(other *IncBuilder) {
	b.IngestSummary(other.Summarize())
}

// Reset clears ingested state for the next profiling window in one pass:
// accumulator, pending list and simulated-charge counters zero, entries
// recycle into the capped pool.
func (b *IncBuilder) Reset() {
	recycled := len(b.objs)
	for _, oe := range b.objs {
		oe.bytes, oe.fixed, oe.count = 0, 0, 0
		clear(oe.bits)
		b.free = append(b.free, oe)
	}
	clear(b.objs)
	if max := freePoolCap(recycled); len(b.free) > max {
		tail := b.free[max:]
		for i := range tail {
			tail[i] = nil // release the dropped entries to the GC
		}
		b.free = b.free[:max]
	}
	clear(b.acc)
	b.livePairs = 0
	b.pending = b.pending[:0]
	b.cost = BuildCost{}
	b.peekDst = nil // scratch maps no longer mirror the accumulator
	clear(b.dirtyMark)
	b.dirty = b.dirty[:0]
	b.allDirty = false
}
