package tcm

// The paper's §VI names "distributed algorithms for deducing correlation
// maps in a more scalable way" as future work: the central daemon's
// O(M·N) OAL reorganization is a bottleneck for large M. This file
// defines that extension's wire format: each worker node reorganizes its
// *own* threads' OALs into per-object summaries locally, and the master
// merges summaries — which both parallelizes the reorganization and
// usually shrinks the wire volume (an object accessed in k intervals
// collapses into one summary entry). The Summarize/IngestSummary halves
// live with each builder implementation (builder_inc.go, builder_full.go).
//
// Correctness requires merging per-object *thread sets*, not built maps:
// if thread 0's access to an object is known only to node A and thread
// 1's only to node B, the pair's correlation appears only after the union.

// ObjSummary is one object's aggregated access record.
type ObjSummary struct {
	Key   int64
	Bytes float64
	// Threads holds the accessing thread ids, sorted ascending.
	Threads []int32
}

// Summary is a node's per-object reduction of its ingested OALs.
type Summary struct {
	Objs []ObjSummary
}

// objSummaryHeaderBytes: key (8) + bytes (4, quantized) + count (2).
const objSummaryHeaderBytes = 14

// threadIDWireBytes: 2 bytes per thread id.
const threadIDWireBytes = 2

// WireBytes is the encoded size for network accounting.
func (s *Summary) WireBytes() int {
	n := 8 // record count header
	for _, o := range s.Objs {
		n += objSummaryHeaderBytes + threadIDWireBytes*len(o.Threads)
	}
	return n
}

// NumObjs reports the number of summarized objects.
func (s *Summary) NumObjs() int { return len(s.Objs) }
