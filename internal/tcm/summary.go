package tcm

import "sort"

// The paper's §VI names "distributed algorithms for deducing correlation
// maps in a more scalable way" as future work: the central daemon's
// O(M·N) OAL reorganization is a bottleneck for large M. This file
// implements that extension: each worker node reorganizes its *own*
// threads' OALs into per-object summaries locally, and the master merges
// summaries — which both parallelizes the reorganization and usually
// shrinks the wire volume (an object accessed in k intervals collapses
// into one summary entry).
//
// Correctness requires merging per-object *thread sets*, not built maps:
// if thread 0's access to an object is known only to node A and thread
// 1's only to node B, the pair's correlation appears only after the union.

// ObjSummary is one object's aggregated access record.
type ObjSummary struct {
	Key   int64
	Bytes float64
	// Threads holds the accessing thread ids, sorted ascending.
	Threads []int32
}

// Summary is a node's per-object reduction of its ingested OALs.
type Summary struct {
	Objs []ObjSummary
}

// objSummaryHeaderBytes: key (8) + bytes (4, quantized) + count (2).
const objSummaryHeaderBytes = 14

// threadIDWireBytes: 2 bytes per thread id.
const threadIDWireBytes = 2

// WireBytes is the encoded size for network accounting.
func (s *Summary) WireBytes() int {
	n := 8 // record count header
	for _, o := range s.Objs {
		n += objSummaryHeaderBytes + threadIDWireBytes*len(o.Threads)
	}
	return n
}

// NumObjs reports the number of summarized objects.
func (s *Summary) NumObjs() int { return len(s.Objs) }

// Summarize exports the builder's per-object state as a mergeable summary
// (sorted by key for determinism) and is the worker-side half of the
// distributed reduction.
func (b *Builder) Summarize() *Summary {
	s := &Summary{Objs: make([]ObjSummary, 0, len(b.objs))}
	keys := make([]int64, 0, len(b.objs))
	for k := range b.objs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		oe := b.objs[k]
		ts := make([]int32, 0, len(oe.threads))
		for t := range oe.threads {
			ts = append(ts, int32(t))
		}
		sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
		s.Objs = append(s.Objs, ObjSummary{Key: k, Bytes: oe.bytes, Threads: ts})
	}
	return s
}

// IngestSummary merges a worker summary into the builder (the master-side
// half). Thread sets union; the larger byte estimate wins, matching
// AddAccess semantics — including its rejection of malformed out-of-range
// thread ids.
func (b *Builder) IngestSummary(s *Summary) {
	for _, o := range s.Objs {
		oe := b.objs[o.Key]
		if oe == nil {
			if n := len(b.free); n > 0 {
				oe = b.free[n-1]
				b.free = b.free[:n-1]
			} else {
				oe = &objEntry{threads: make(map[int]struct{}, len(o.Threads))}
			}
			b.objs[o.Key] = oe
		}
		if o.Bytes > oe.bytes {
			oe.bytes = o.Bytes
		}
		for _, t := range o.Threads {
			if t < 0 || int(t) >= b.n {
				b.cost.DroppedEntries++
				continue
			}
			oe.threads[int(t)] = struct{}{}
		}
		b.cost.Entries += len(o.Threads)
	}
}

// Merge unions another builder's state into b (in-process variant of the
// summary path, used by tests and by hierarchical reductions).
func (b *Builder) Merge(other *Builder) {
	b.IngestSummary(other.Summarize())
}
