//go:build !tcmfull

package tcm

// Builder selects the correlation-daemon implementation the rest of the
// system (gos.Master, worker summarizers, pagesim) instantiates. The
// default build maintains the TCM incrementally (IncBuilder); build with
// `-tags tcmfull` to fall back to the legacy full-rebuild daemon (the
// baseline for the TCM microbenchmarks and the oracle for bisecting
// regressions), mirroring the scheduler's `simheap` precedent.
type Builder = IncBuilder

// NewBuilder returns a daemon for n threads (the incremental builder in
// this build).
func NewBuilder(n int) *Builder { return NewIncBuilder(n) }

// BuilderVariant names the selected implementation for CLI perf reports.
func BuilderVariant() string { return "incremental" }
