package tcm

import (
	"fmt"
	"math"
	"testing"

	"jessica2/internal/heap"
	"jessica2/internal/oal"
)

// The incremental builder's contract is bit-equality with the legacy full
// rebuild on the simulator's weight domain (integral byte counts within the
// fixed-point envelope). These property tests drive both implementations
// through identical random streams of raw accesses, weight upgrades,
// malformed thread ids, record and summary ingestion, peeks, charged builds
// and window resets, and assert every observable — map cells, cost ledger,
// summaries — matches exactly. They compile under both build tags, so the
// CI `-tags tcmfull` job re-runs them with the alias flipped.

// equivRand is the same tiny deterministic generator the scheduler's
// property tests use.
type equivRand uint64

func (s *equivRand) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ z>>30) * 0xbf58476d1ce4e5b9
	z = (z ^ z>>27) * 0x94d049bb133111eb
	return z ^ z>>31
}

// assertMapsBitEqual compares two maps cell for cell with float64 ==.
func assertMapsBitEqual(t *testing.T, tag string, inc, full *Map) {
	t.Helper()
	if inc.N() != full.N() {
		t.Fatalf("%s: dimension %d vs %d", tag, inc.N(), full.N())
	}
	for i := 0; i < inc.N(); i++ {
		for j := 0; j < inc.N(); j++ {
			if a, b := inc.At(i, j), full.At(i, j); a != b {
				t.Fatalf("%s: cell [%d][%d] incremental %v (bits %x) vs full %v (bits %x)",
					tag, i, j, a, math.Float64bits(a), b, math.Float64bits(b))
			}
		}
	}
}

func assertCostsEqual(t *testing.T, tag string, inc, full BuildCost) {
	t.Helper()
	if inc != full {
		t.Fatalf("%s: cost incremental %+v vs full %+v", tag, inc, full)
	}
}

// TestIncrementalEquivalenceRandomStreams is the central property: on
// random op streams the incremental and legacy builders are observationally
// identical — bit-equal maps from Build/Peek/PeekInto (including reused
// scratch), equal simulated cost ledgers, and equal summaries.
func TestIncrementalEquivalenceRandomStreams(t *testing.T) {
	const n = 9 // odd, spans two bitset words at 64+ threads below
	for seed := uint64(1); seed <= 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := equivRand(seed * 0x1234567)
			inc := NewIncBuilder(n)
			full := NewFullBuilder(n)
			var incScratch, fullScratch *Map
			for op := 0; op < 4000; op++ {
				switch rng.next() % 100 {
				case 96: // charged build + full comparison
					mi, ci := inc.Build()
					mf, cf := full.Build()
					assertMapsBitEqual(t, "Build", mi, mf)
					assertCostsEqual(t, "Build", ci, cf)
				case 97: // peek into reused scratch (the epoch path)
					incScratch = inc.PeekInto(incScratch)
					fullScratch = full.PeekInto(fullScratch)
					assertMapsBitEqual(t, "PeekInto", incScratch, fullScratch)
				case 98: // summary export
					si, sf := inc.Summarize(), full.Summarize()
					if len(si.Objs) != len(sf.Objs) || si.WireBytes() != sf.WireBytes() {
						t.Fatalf("summaries differ: %d objs/%dB vs %d objs/%dB",
							len(si.Objs), si.WireBytes(), len(sf.Objs), sf.WireBytes())
					}
					for k := range si.Objs {
						a, b := si.Objs[k], sf.Objs[k]
						if a.Key != b.Key || a.Bytes != b.Bytes || len(a.Threads) != len(b.Threads) {
							t.Fatalf("summary obj %d differs: %+v vs %+v", k, a, b)
						}
						for x := range a.Threads {
							if a.Threads[x] != b.Threads[x] {
								t.Fatalf("summary obj %d threads differ", k)
							}
						}
					}
				case 99: // window reset
					inc.Reset()
					full.Reset()
				default:
					r := rng.next()
					// Thread id: mostly valid, sometimes hostile.
					th := int(r % n)
					if r%13 == 0 {
						th = int(int8(r >> 8)) // may be negative or >= n
					}
					key := int64(rng.next() % 48) // dense keyspace: collisions and upgrades
					w := float64(rng.next() % 65536)
					switch r % 7 {
					case 5: // OAL record ingestion
						rec := &oal.Record{Thread: th}
						for e := 0; e < int(rng.next()%4); e++ {
							rec.Entries = append(rec.Entries, oal.Entry{
								Obj:   heap.ObjectID(rng.next() % 48),
								Bytes: int64(rng.next() % 65536),
							})
						}
						inc.IngestRecord(rec)
						full.IngestRecord(rec)
					case 6: // summary merge, possibly with hostile ids
						s := &Summary{Objs: []ObjSummary{{
							Key:   key,
							Bytes: w,
							Threads: []int32{
								int32(rng.next() % n),
								int32(int8(rng.next())),
								int32(rng.next() % n),
							},
						}}}
						inc.IngestSummary(s)
						full.IngestSummary(s)
					default:
						inc.AddAccess(th, key, w)
						full.AddAccess(th, key, w)
					}
				}
			}
			mi, ci := inc.Build()
			mf, cf := full.Build()
			assertMapsBitEqual(t, "final", mi, mf)
			assertCostsEqual(t, "final", ci, cf)
		})
	}
}

// TestIncrementalEquivalenceWideDimension re-runs a short stream at a
// dimension spanning multiple bitset words (N = 130), exercising the
// word-wise membership iteration across word boundaries.
func TestIncrementalEquivalenceWideDimension(t *testing.T) {
	const n = 130
	rng := equivRand(0xfeedface)
	inc := NewIncBuilder(n)
	full := NewFullBuilder(n)
	for op := 0; op < 6000; op++ {
		th := int(rng.next() % n)
		key := int64(rng.next() % 16)
		w := float64(rng.next() % 4096)
		inc.AddAccess(th, key, w)
		full.AddAccess(th, key, w)
	}
	mi, ci := inc.Build()
	mf, cf := full.Build()
	assertMapsBitEqual(t, "wide", mi, mf)
	assertCostsEqual(t, "wide", ci, cf)
}

// TestIncrementalUpgradeDelta pins the differential weight-upgrade path:
// the upgrade's delta re-accrual over the existing pair set must equal the
// legacy builder's from-scratch rebuild with the final max weight.
func TestIncrementalUpgradeDelta(t *testing.T) {
	inc := NewIncBuilder(4)
	full := NewFullBuilder(4)
	for _, b := range []*struct {
		add func(t int, key int64, w float64)
	}{{inc.AddAccess}, {full.AddAccess}} {
		b.add(0, 1, 40)
		b.add(1, 1, 40)  // pair forms at weight 40
		b.add(2, 1, 90)  // third member joins AND upgrades to 90
		b.add(0, 1, 70)  // stale smaller re-log: no effect
		b.add(3, 1, 90)  // fourth member at the current weight
		b.add(1, 1, 120) // upgrade over the full 4-thread pair set
	}
	mi, _ := inc.Build()
	mf, _ := full.Build()
	assertMapsBitEqual(t, "upgrade", mi, mf)
	if mi.At(0, 1) != 120 {
		t.Fatalf("TCM[0][1] = %v, want the final upgraded weight 120", mi.At(0, 1))
	}
}

// TestBuildCostCumulativeCharge: repeated charged Builds accumulate
// PairAdds (the paper's daemon re-runs the accrual pass each time), and the
// incremental builder must replicate that simulated charge exactly even
// though its host-side Build is O(1).
func TestBuildCostCumulativeCharge(t *testing.T) {
	inc := NewIncBuilder(3)
	full := NewFullBuilder(3)
	for _, add := range []func(int, int64, float64){inc.AddAccess, full.AddAccess} {
		add(0, 1, 100)
		add(1, 1, 100)
		add(0, 2, 50)
		add(1, 2, 50)
		add(2, 2, 50)
	}
	_, c1 := inc.Build()
	_, f1 := full.Build()
	assertCostsEqual(t, "first build", c1, f1)
	if c1.PairAdds != 4 || c1.Objects != 2 {
		t.Fatalf("first build cost = %+v", c1)
	}
	_, c2 := inc.Build()
	_, f2 := full.Build()
	assertCostsEqual(t, "second build", c2, f2)
	if c2.PairAdds != 8 {
		t.Fatalf("PairAdds must accumulate across charged builds: %+v", c2)
	}
	// Peeks never charge.
	inc.Peek()
	inc.PeekInto(nil)
	_, c3 := inc.Build()
	if c3.PairAdds != 12 {
		t.Fatalf("peeks perturbed the ledger: %+v", c3)
	}
}
