package tcm

import (
	"encoding/binary"
	"math"
	"testing"

	"jessica2/internal/heap"
	"jessica2/internal/oal"
)

// checkMapInvariants asserts the structural invariants of a built TCM:
// symmetric, zero diagonal, finite non-negative cells, and Total equal to
// the cell sum.
func checkMapInvariants(t *testing.T, m *Map) {
	t.Helper()
	n := m.N()
	var sum float64
	for i := 0; i < n; i++ {
		if m.At(i, i) != 0 {
			t.Fatalf("diagonal [%d][%d] = %g, want 0", i, i, m.At(i, i))
		}
		for j := 0; j < n; j++ {
			v := m.At(i, j)
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				t.Fatalf("cell [%d][%d] = %g", i, j, v)
			}
			if v != m.At(j, i) {
				t.Fatalf("asymmetric: [%d][%d]=%g [%d][%d]=%g", i, j, v, j, i, m.At(j, i))
			}
			sum += v
		}
	}
	if total := m.Total(); math.Abs(total-sum) > 1e-6*(1+math.Abs(sum)) {
		t.Fatalf("Total() = %g, cell sum = %g", total, sum)
	}
}

// FuzzBuilder feeds the correlation daemon adversarial op streams — raw
// accesses with arbitrary (possibly out-of-range) thread ids, malformed
// OAL records, summary merges, builds and window resets — and asserts it
// never panics and every built map satisfies the TCM invariants.
func FuzzBuilder(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("0123456789abcdef0123456789abcdef"))
	// An access, a build, a hostile thread id, a reset, another build.
	f.Add([]byte{
		0, 2, 0, 0, 0, 9, 0, 50,
		3, 0, 0, 0, 0, 0, 0, 0,
		0, 255, 255, 0, 0, 9, 0, 50,
		4, 0, 0, 0, 0, 0, 0, 0,
		3, 0, 0, 0, 0, 0, 0, 0,
	})
	// Record and summary ingestion ops.
	f.Add([]byte{
		1, 3, 0, 7, 1, 1, 2, 3,
		2, 120, 0, 5, 0, 44, 1, 200,
		3, 9, 9, 9, 9, 9, 9, 9,
	})

	f.Fuzz(func(t *testing.T, data []byte) {
		const n = 8
		b := NewBuilder(n)
		for len(data) >= 8 {
			op, rest := data[0], data[1:8]
			data = data[8:]
			switch op % 5 {
			case 0: // raw access, thread id deliberately unclamped
				thread := int(int8(rest[0]))
				key := int64(binary.LittleEndian.Uint16(rest[1:3]))
				bytes := float64(binary.LittleEndian.Uint32(rest[3:7]))
				b.AddAccess(thread, key, bytes)
			case 1: // a malformed OAL record: arbitrary thread/node/interval
				rec := &oal.Record{
					Thread:   int(int8(rest[0])),
					Node:     int(int8(rest[1])),
					Interval: int64(rest[2]),
				}
				for i := 3; i+1 < len(rest); i += 2 {
					rec.Entries = append(rec.Entries, oal.Entry{
						Obj:   heap.ObjectID(rest[i]),
						Bytes: int64(rest[i+1]),
					})
				}
				b.IngestRecord(rec)
			case 2: // a summary with arbitrary thread ids
				s := &Summary{Objs: []ObjSummary{{
					Key:     int64(rest[0]),
					Bytes:   float64(binary.LittleEndian.Uint16(rest[1:3])),
					Threads: []int32{int32(int8(rest[3])), int32(rest[4]), int32(int8(rest[5]))},
				}}}
				b.IngestSummary(s)
			case 3:
				m, cost := b.Build()
				if m.N() != n {
					t.Fatalf("built map dimension %d, want %d", m.N(), n)
				}
				checkMapInvariants(t, m)
				if cost.PairAdds < 0 || cost.DroppedEntries < 0 {
					t.Fatalf("negative cost counters: %+v", cost)
				}
			case 4:
				b.Reset()
			}
		}
		m, _ := b.Build()
		checkMapInvariants(t, m)
		// A rebuilt map from unchanged state must be identical.
		m2, _ := b.Build()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if m.At(i, j) != m2.At(i, j) {
					t.Fatalf("rebuild diverged at [%d][%d]", i, j)
				}
			}
		}
	})
}

// FuzzBuilderEquivalence drives the incremental and legacy builders through
// one adversarial op stream — raw accesses with hostile thread ids, weight
// upgrades, record and summary ingestion, charged builds, scratch peeks and
// window resets — and asserts the two stay observationally identical:
// bit-equal maps and equal cost ledgers at every build point. Weights are
// bounded to uint16 so both variants operate in the regime where integer
// and float accumulation are exact (the documented fixed-point envelope);
// within it, equivalence must be exact, not approximate.
func FuzzBuilderEquivalence(f *testing.F) {
	f.Add([]byte{})
	// Pair formation, an upgrade, a build, a hostile id, a reset, a build.
	f.Add([]byte{
		0, 0, 1, 0, 100, 0, 0, 0,
		0, 1, 1, 0, 100, 0, 0, 0,
		0, 2, 1, 0, 200, 0, 0, 0,
		3, 0, 0, 0, 0, 0, 0, 0,
		0, 250, 1, 0, 50, 0, 0, 0,
		4, 0, 0, 0, 0, 0, 0, 0,
		3, 0, 0, 0, 0, 0, 0, 0,
	})
	// Record + summary ingestion and a scratch peek.
	f.Add([]byte{
		1, 3, 0, 7, 1, 1, 2, 3,
		2, 120, 0, 5, 0, 44, 1, 200,
		5, 0, 0, 0, 0, 0, 0, 0,
		3, 9, 9, 9, 9, 9, 9, 9,
	})

	f.Fuzz(func(t *testing.T, data []byte) {
		const n = 8
		inc := NewIncBuilder(n)
		full := NewFullBuilder(n)
		var incScratch, fullScratch *Map
		compare := func(tag string, mi, mf *Map) {
			t.Helper()
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if mi.At(i, j) != mf.At(i, j) {
						t.Fatalf("%s: [%d][%d] incremental %v vs full %v",
							tag, i, j, mi.At(i, j), mf.At(i, j))
					}
				}
			}
		}
		for len(data) >= 8 {
			op, rest := data[0], data[1:8]
			data = data[8:]
			switch op % 6 {
			case 0: // raw access, thread id deliberately unclamped
				thread := int(int8(rest[0]))
				key := int64(rest[1])
				bytes := float64(binary.LittleEndian.Uint16(rest[3:5]))
				inc.AddAccess(thread, key, bytes)
				full.AddAccess(thread, key, bytes)
			case 1: // a malformed OAL record
				rec := &oal.Record{
					Thread:   int(int8(rest[0])),
					Node:     int(int8(rest[1])),
					Interval: int64(rest[2]),
				}
				for i := 3; i+1 < len(rest); i += 2 {
					rec.Entries = append(rec.Entries, oal.Entry{
						Obj:   heap.ObjectID(rest[i]),
						Bytes: int64(rest[i+1]),
					})
				}
				inc.IngestRecord(rec)
				full.IngestRecord(rec)
			case 2: // a summary with arbitrary thread ids
				s := &Summary{Objs: []ObjSummary{{
					Key:     int64(rest[0]),
					Bytes:   float64(binary.LittleEndian.Uint16(rest[1:3])),
					Threads: []int32{int32(int8(rest[3])), int32(rest[4]), int32(int8(rest[5]))},
				}}}
				inc.IngestSummary(s)
				full.IngestSummary(s)
			case 3:
				mi, ci := inc.Build()
				mf, cf := full.Build()
				compare("Build", mi, mf)
				checkMapInvariants(t, mi)
				if ci != cf {
					t.Fatalf("cost incremental %+v vs full %+v", ci, cf)
				}
			case 4:
				inc.Reset()
				full.Reset()
			case 5: // reused-scratch peek: the epoch snapshot path
				incScratch = inc.PeekInto(incScratch)
				fullScratch = full.PeekInto(fullScratch)
				compare("PeekInto", incScratch, fullScratch)
			}
		}
		mi, _ := inc.Build()
		mf, _ := full.Build()
		compare("final", mi, mf)
	})
}

// FuzzDistances feeds arbitrary map pairs to the distance metrics and
// asserts they are finite-or-inf, non-negative, and zero on identical maps.
func FuzzDistances(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		const n = 4
		a, b := NewMap(n), NewMap(n)
		for i := 0; i+2 < len(data); i += 3 {
			ti, tj := int(data[i])%n, int(data[i+1])%n
			v := float64(data[i+2])
			if i%2 == 0 {
				a.Add(ti, tj, v)
			} else {
				b.Add(ti, tj, v)
			}
		}
		for _, d := range []float64{DistanceABS(a, b), DistanceEUC(a, b)} {
			if math.IsNaN(d) || d < 0 {
				t.Fatalf("distance = %g", d)
			}
		}
		if d := DistanceABS(a, a.Clone()); d != 0 {
			t.Fatalf("DistanceABS(a, a) = %g", d)
		}
		if d := DistanceEUC(b.Clone(), b); d != 0 {
			t.Fatalf("DistanceEUC(b, b) = %g", d)
		}
	})
}
