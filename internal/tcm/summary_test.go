package tcm

import (
	"testing"
	"testing/quick"
)

func TestSummarizeRoundTrip(t *testing.T) {
	b := NewBuilder(4)
	b.AddAccess(0, 10, 100)
	b.AddAccess(1, 10, 100)
	b.AddAccess(2, 20, 50)
	b.AddAccess(3, 20, 50)
	b.AddAccess(0, 20, 50)
	s := b.Summarize()
	if s.NumObjs() != 2 {
		t.Fatalf("objs = %d", s.NumObjs())
	}
	// Keys sorted.
	if s.Objs[0].Key != 10 || s.Objs[1].Key != 20 {
		t.Fatalf("keys = %v, %v", s.Objs[0].Key, s.Objs[1].Key)
	}
	// Thread lists sorted.
	if len(s.Objs[1].Threads) != 3 || s.Objs[1].Threads[0] != 0 || s.Objs[1].Threads[2] != 3 {
		t.Fatalf("threads = %v", s.Objs[1].Threads)
	}
	// Ingesting into a fresh builder reproduces the map.
	b2 := NewBuilder(4)
	b2.IngestSummary(s)
	m1, _ := b.Build()
	m2, _ := b2.Build()
	if DistanceABS(m1, m2) != 0 {
		t.Fatal("summary round-trip changed the map")
	}
}

func TestSummaryMergeUnionsThreads(t *testing.T) {
	// Thread 0's access known to builder A, thread 1's to builder B: the
	// pair appears only after merging.
	a := NewBuilder(2)
	a.AddAccess(0, 7, 64)
	b := NewBuilder(2)
	b.AddAccess(1, 7, 64)
	ma, _ := a.Build()
	if ma.Total() != 0 {
		t.Fatal("partial builder should see no pairs")
	}
	master := NewBuilder(2)
	master.Merge(a)
	master.Merge(b)
	m, _ := master.Build()
	if m.At(0, 1) != 64 {
		t.Fatalf("merged pair volume = %v, want 64", m.At(0, 1))
	}
}

func TestSummaryLargerBytesWin(t *testing.T) {
	a := NewBuilder(2)
	a.AddAccess(0, 7, 40)
	s := a.Summarize()
	b := NewBuilder(2)
	b.AddAccess(1, 7, 90)
	b.IngestSummary(s)
	m, _ := b.Build()
	if m.At(0, 1) != 90 {
		t.Fatalf("merged weight = %v, want 90", m.At(0, 1))
	}
}

func TestSummaryWireBytes(t *testing.T) {
	s := &Summary{Objs: []ObjSummary{
		{Key: 1, Bytes: 10, Threads: []int32{0, 1}},
		{Key: 2, Bytes: 20, Threads: []int32{2}},
	}}
	want := 8 + (14 + 2*2) + (14 + 2*1)
	if s.WireBytes() != want {
		t.Fatalf("wire = %d, want %d", s.WireBytes(), want)
	}
	empty := &Summary{}
	if empty.WireBytes() != 8 {
		t.Fatal("empty summary wire size wrong")
	}
}

// Property: for any access pattern, splitting records across k partial
// builders and merging equals central ingestion.
func TestQuickDistributedEquivalence(t *testing.T) {
	f := func(accesses []uint16) bool {
		const threads = 4
		central := NewBuilder(threads)
		parts := []*Builder{NewBuilder(threads), NewBuilder(threads), NewBuilder(threads)}
		for i, a := range accesses {
			th := int(a) % threads
			obj := int64(a>>2) % 17
			bytes := float64(a%5)*10 + 10
			central.AddAccess(th, obj, bytes)
			parts[i%3].AddAccess(th, obj, bytes)
		}
		master := NewBuilder(threads)
		for _, p := range parts {
			master.IngestSummary(p.Summarize())
		}
		mc, _ := central.Build()
		md, _ := master.Build()
		return DistanceABS(mc, md) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
