package tcm

import (
	"math"
	"testing"
	"testing/quick"

	"jessica2/internal/oal"
)

func TestMapSymmetry(t *testing.T) {
	m := NewMap(4)
	m.Add(1, 2, 100)
	if m.At(1, 2) != 100 || m.At(2, 1) != 100 {
		t.Fatal("Add not symmetric")
	}
	m.Set(0, 3, 7)
	if m.At(3, 0) != 7 {
		t.Fatal("Set not symmetric")
	}
}

func TestMapDiagonalIgnored(t *testing.T) {
	m := NewMap(3)
	m.Add(1, 1, 50)
	m.Set(2, 2, 50)
	if m.Total() != 0 {
		t.Fatal("diagonal writes must be ignored")
	}
}

func TestMapTotalAndMax(t *testing.T) {
	m := NewMap(3)
	m.Add(0, 1, 10)
	m.Add(1, 2, 30)
	if m.Total() != 80 { // symmetric double count
		t.Fatalf("total = %v", m.Total())
	}
	if m.MaxCell() != 30 {
		t.Fatalf("max = %v", m.MaxCell())
	}
}

func TestCloneAndScale(t *testing.T) {
	m := NewMap(2)
	m.Add(0, 1, 5)
	c := m.Clone().Scale(3)
	if c.At(0, 1) != 15 || m.At(0, 1) != 5 {
		t.Fatal("clone/scale broken")
	}
}

func TestDistanceIdentity(t *testing.T) {
	m := NewMap(4)
	m.Add(0, 1, 10)
	m.Add(2, 3, 20)
	if DistanceEUC(m, m) != 0 || DistanceABS(m, m) != 0 {
		t.Fatal("distance to self must be 0")
	}
}

func TestDistanceKnownValues(t *testing.T) {
	a := NewMap(2)
	b := NewMap(2)
	a.Set(0, 1, 8)
	b.Set(0, 1, 10)
	// ABS: |8-10|*2 / (10*2) = 0.2
	if d := DistanceABS(a, b); math.Abs(d-0.2) > 1e-12 {
		t.Fatalf("ABS = %v, want 0.2", d)
	}
	// EUC: sqrt(2*4)/sqrt(2*100) = 2/10 = 0.2
	if d := DistanceEUC(a, b); math.Abs(d-0.2) > 1e-12 {
		t.Fatalf("EUC = %v, want 0.2", d)
	}
}

func TestDistanceEmptyReference(t *testing.T) {
	a := NewMap(2)
	b := NewMap(2)
	if DistanceABS(a, b) != 0 {
		t.Fatal("two empty maps must be distance 0")
	}
	a.Set(0, 1, 5)
	if !math.IsInf(DistanceABS(a, b), 1) {
		t.Fatal("non-empty vs empty reference must be +Inf")
	}
}

func TestDistanceDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("dimension mismatch did not panic")
		}
	}()
	DistanceABS(NewMap(2), NewMap(3))
}

func TestAccuracyClamp(t *testing.T) {
	if Accuracy(0.05) != 0.95 {
		t.Fatal("accuracy math wrong")
	}
	if Accuracy(1.7) != 0 {
		t.Fatal("accuracy must clamp at 0")
	}
}

// Property: ABS distance is scale-invariant: D(cA, cB) = D(A, B).
func TestQuickDistanceScaleInvariance(t *testing.T) {
	f := func(vals [6]uint8, c uint8) bool {
		scale := float64(c%9) + 1
		a, b := NewMap(3), NewMap(3)
		a.Set(0, 1, float64(vals[0]))
		a.Set(0, 2, float64(vals[1]))
		a.Set(1, 2, float64(vals[2]))
		b.Set(0, 1, float64(vals[3])+1)
		b.Set(0, 2, float64(vals[4])+1)
		b.Set(1, 2, float64(vals[5])+1)
		d1 := DistanceABS(a, b)
		d2 := DistanceABS(a.Clone().Scale(scale), b.Clone().Scale(scale))
		return math.Abs(d1-d2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: identical maps have accuracy 1 under both metrics; the
// triangle-ish bound D(a,b) >= 0 always holds.
func TestQuickDistanceNonNegative(t *testing.T) {
	f := func(vals [3]uint8, ref [3]uint8) bool {
		a, b := NewMap(3), NewMap(3)
		a.Set(0, 1, float64(vals[0]))
		a.Set(0, 2, float64(vals[1]))
		a.Set(1, 2, float64(vals[2]))
		b.Set(0, 1, float64(ref[0])+1)
		b.Set(0, 2, float64(ref[1])+1)
		b.Set(1, 2, float64(ref[2])+1)
		return DistanceABS(a, b) >= 0 && DistanceEUC(a, b) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderPairAccrual(t *testing.T) {
	b := NewBuilder(3)
	// Object 1 (100 bytes) touched by threads 0 and 1.
	// Object 2 (50 bytes) touched by all three.
	b.AddAccess(0, 1, 100)
	b.AddAccess(1, 1, 100)
	b.AddAccess(0, 2, 50)
	b.AddAccess(1, 2, 50)
	b.AddAccess(2, 2, 50)
	m, cost := b.Build()
	if m.At(0, 1) != 150 {
		t.Fatalf("TCM[0][1] = %v, want 150", m.At(0, 1))
	}
	if m.At(0, 2) != 50 || m.At(1, 2) != 50 {
		t.Fatal("three-way object must accrue to all pairs")
	}
	if cost.Objects != 2 {
		t.Fatalf("M = %d, want 2", cost.Objects)
	}
	if cost.PairAdds != 1+3 {
		t.Fatalf("pair adds = %d, want 4", cost.PairAdds)
	}
}

func TestBuilderSingleThreadObjectsIgnored(t *testing.T) {
	b := NewBuilder(2)
	b.AddAccess(0, 1, 100)
	m, _ := b.Build()
	if m.Total() != 0 {
		t.Fatal("objects accessed by one thread must not correlate")
	}
}

func TestBuilderLargerWeightWins(t *testing.T) {
	b := NewBuilder(2)
	b.AddAccess(0, 1, 40)
	b.AddAccess(1, 1, 90) // re-logged at a finer gap: bigger estimate
	m, _ := b.Build()
	if m.At(0, 1) != 90 {
		t.Fatalf("weight = %v, want 90 (upgrade)", m.At(0, 1))
	}
}

func TestBuilderIngestRecord(t *testing.T) {
	b := NewBuilder(2)
	rec := &oal.Record{Thread: 0, Entries: []oal.Entry{{Obj: 7, Bytes: 64}}}
	rec2 := &oal.Record{Thread: 1, Entries: []oal.Entry{{Obj: 7, Bytes: 64}}}
	b.Ingest(&oal.Batch{Records: []*oal.Record{rec, rec2}})
	m, cost := b.Build()
	if m.At(0, 1) != 64 {
		t.Fatalf("TCM[0][1] = %v", m.At(0, 1))
	}
	if cost.Records != 2 || cost.Entries != 2 {
		t.Fatalf("cost = %+v", cost)
	}
}

func TestBuilderReset(t *testing.T) {
	b := NewBuilder(2)
	b.AddAccess(0, 1, 10)
	b.AddAccess(1, 1, 10)
	b.Reset()
	m, cost := b.Build()
	if m.Total() != 0 || cost.Objects != 0 {
		t.Fatal("reset did not clear state")
	}
}

func TestBuilderDeterminism(t *testing.T) {
	build := func() *Map {
		b := NewBuilder(8)
		for o := int64(0); o < 100; o++ {
			for th := 0; th < 8; th++ {
				if (o+int64(th))%3 == 0 {
					b.AddAccess(th, o, float64(10+o))
				}
			}
		}
		m, _ := b.Build()
		return m
	}
	a, b := build(), build()
	if DistanceABS(a, b) != 0 {
		t.Fatal("builder not deterministic")
	}
}

func TestStringHeatmap(t *testing.T) {
	m := NewMap(2)
	m.Set(0, 1, 100)
	s := m.String()
	if len(s) == 0 {
		t.Fatal("empty rendering")
	}
	// 2x2 grid + newlines.
	if len(s) != 2*3 {
		t.Fatalf("rendering size %d", len(s))
	}
}

func TestOALWireBytes(t *testing.T) {
	r := &oal.Record{Thread: 1, Entries: make([]oal.Entry, 10)}
	if r.WireBytes() != 24+80 {
		t.Fatalf("wire bytes = %d", r.WireBytes())
	}
	b := &oal.Batch{Records: []*oal.Record{r, r}}
	if b.WireBytes() != 2*r.WireBytes() || b.NumEntries() != 20 {
		t.Fatal("batch accounting wrong")
	}
}

func TestPeekIntoReusesScratchAndMatchesPeek(t *testing.T) {
	b := NewBuilder(4)
	b.AddAccess(0, 10, 100)
	b.AddAccess(1, 10, 100)
	b.AddAccess(2, 20, 50)
	b.AddAccess(3, 20, 50)

	fresh := b.Peek()
	dst := b.PeekInto(nil)
	if DistanceABS(fresh, dst) != 0 {
		t.Fatal("PeekInto(nil) differs from Peek")
	}
	// More state arrives; the same scratch must be rebuilt in place.
	b.AddAccess(0, 20, 50)
	again := b.PeekInto(dst)
	if again != dst {
		t.Fatalf("PeekInto reallocated: %p -> %p", dst, again)
	}
	if DistanceABS(again, b.Peek()) != 0 {
		t.Fatal("reused scratch differs from a fresh Peek")
	}
	// Peeks never perturb the charged ledger.
	_, cost := b.Build()
	if cost.Objects != 2 || cost.PairAdds != 4 {
		t.Fatalf("cost after peeks: %+v", cost)
	}
}

func TestMapReuse(t *testing.T) {
	m := NewMap(3)
	m.Set(0, 2, 9)
	if r := m.Reuse(3); r != m || r.At(0, 2) != 0 {
		t.Fatal("Reuse(3) must zero in place")
	}
	if r := m.Reuse(2); r != m || r.N() != 2 {
		t.Fatal("shrinking Reuse must recycle the backing array")
	}
	if r := m.Reuse(8); r != m || r.N() != 8 || r.At(7, 0) != 0 {
		t.Fatal("growing Reuse must resize to a zero map")
	}
	if r := (*Map)(nil).Reuse(2); r == nil || r.N() != 2 {
		t.Fatal("nil Reuse must allocate")
	}
}
