package tcm

import (
	"sort"

	"jessica2/internal/oal"
)

// FullBuilder is the legacy correlation-computing daemon: it ingests OAL
// batches into per-object thread-set maps and rebuilds the whole N×N map
// from scratch on every Build/Peek — the literal O(M·N²) pass of the paper.
// It is kept as the reference implementation behind the `tcmfull` build tag
// (select `-tags tcmfull` to make it the package's Builder, mirroring the
// scheduler's `simheap` fallback) and as the oracle the incremental
// builder's property and fuzz tests compare against.
type FullBuilder struct {
	n    int
	objs map[int64]*objEntry
	cost BuildCost

	// free recycles objEntry structs (and their thread-set maps) across
	// profiling windows; keys and ts are iteration scratch reused across
	// Build calls. Together they make the per-window daemon work
	// allocation-free at steady state. Reset caps the pool (freePoolCap)
	// so a storm window cannot permanently pin its peak entry population.
	free []*objEntry
	keys []int64
	ts   []int
}

type objEntry struct {
	bytes   float64
	threads map[int]struct{}
}

// NewFullBuilder returns a legacy full-rebuild daemon for n threads.
func NewFullBuilder(n int) *FullBuilder {
	return &FullBuilder{n: n, objs: make(map[int64]*objEntry)}
}

// N returns the thread-count dimension.
func (b *FullBuilder) N() int { return b.n }

// Ingest reorganizes one batch of records into the per-object lists.
func (b *FullBuilder) Ingest(batch *oal.Batch) {
	for _, r := range batch.Records {
		b.IngestRecord(r)
	}
}

// IngestRecord reorganizes one record.
func (b *FullBuilder) IngestRecord(r *oal.Record) {
	b.cost.Records++
	for _, e := range r.Entries {
		b.cost.Entries++
		b.AddAccess(r.Thread, int64(e.Obj), float64(e.Bytes))
	}
}

// AddAccess records that thread t accessed the keyed object with the given
// logged weight. The weight of the first log wins (all threads log the same
// amortized size for the same object at the same gap); larger weights
// replace smaller ones so that re-logging at a finer gap upgrades the entry.
// Records arrive over the network, so a malformed thread id outside [0, n)
// must not crash the daemon: such entries are dropped (counted in
// DroppedEntries).
func (b *FullBuilder) AddAccess(t int, key int64, bytes float64) {
	if t < 0 || t >= b.n {
		b.cost.DroppedEntries++
		return
	}
	oe := b.objs[key]
	if oe == nil {
		if n := len(b.free); n > 0 {
			oe = b.free[n-1]
			b.free = b.free[:n-1]
		} else {
			oe = &objEntry{threads: make(map[int]struct{}, 2)}
		}
		b.objs[key] = oe
	}
	if bytes > oe.bytes {
		oe.bytes = bytes
	}
	oe.threads[t] = struct{}{}
}

// Build constructs the TCM by accruing, for every object, its weight into
// every pair of threads that accessed it in common, charging the cost
// ledger for the accrual pass.
func (b *FullBuilder) Build() (*Map, BuildCost) {
	m := b.buildMap(nil, true)
	return m, b.cost
}

// Peek constructs the same map Build would, but leaves the cost ledger
// untouched: no Objects/PairAdds accrual, so a charged Build that follows
// observes exactly the state it would have without the peek. Live snapshots
// use it to expose the incremental TCM without perturbing the simulated
// analyzer's CPU accounting.
func (b *FullBuilder) Peek() *Map { return b.buildMap(nil, false) }

// PeekInto is Peek with caller-owned scratch: the accrual writes into dst
// (recycled via Reuse; nil allocates). Closed-loop sessions peek at every
// epoch boundary, and rebuilding the N×N map each epoch was the allocation
// hot spot of closed-loop runs — reusing one per-session map removes it.
// The returned map aliases dst and is valid until the next PeekInto.
func (b *FullBuilder) PeekInto(dst *Map) *Map { return b.buildMap(dst, false) }

// buildMap is the shared accrual pass behind Build and Peek.
func (b *FullBuilder) buildMap(dst *Map, charge bool) *Map {
	m := dst.Reuse(b.n)
	if charge {
		b.cost.Objects = len(b.objs)
	}
	// Deterministic iteration: sort object keys.
	keys := b.keys[:0]
	for k := range b.objs {
		keys = append(keys, k)
	}
	b.keys = keys
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		oe := b.objs[k]
		if len(oe.threads) < 2 {
			continue
		}
		ts := b.ts[:0]
		for t := range oe.threads {
			ts = append(ts, t)
		}
		b.ts = ts
		sort.Ints(ts)
		for i := 0; i < len(ts); i++ {
			for j := i + 1; j < len(ts); j++ {
				m.Add(ts[i], ts[j], oe.bytes)
			}
		}
		if charge {
			b.cost.PairAdds += int64(len(ts)) * int64(len(ts)-1) / 2
		}
	}
	return m
}

// Reset clears ingested state for the next profiling window, retaining the
// entry structs and thread-set maps for reuse — up to freePoolCap of this
// window's population, so the pool tracks the current working set instead
// of the all-time peak.
func (b *FullBuilder) Reset() {
	recycled := len(b.objs)
	for _, oe := range b.objs {
		oe.bytes = 0
		clear(oe.threads)
		b.free = append(b.free, oe)
	}
	clear(b.objs)
	if max := freePoolCap(recycled); len(b.free) > max {
		tail := b.free[max:]
		for i := range tail {
			tail[i] = nil // release the dropped entries to the GC
		}
		b.free = b.free[:max]
	}
	b.cost = BuildCost{}
}

// VisitNewlyShared streams the objects currently shared by at least two
// threads, in ascending key order: key, current weight, and the ascending
// accessor thread ids (the threads slice is iteration scratch, valid only
// during the callback). The legacy builder keeps no incremental state, so
// every call scans all M objects and the visit callback's return value
// (and consume) are ignored — callers are expected to dedupe across calls
// themselves (the session's hotSeen set), which makes the scan equivalent
// to the incremental builder's O(new) pending list.
func (b *FullBuilder) VisitNewlyShared(consume bool, visit func(key int64, bytes float64, threads []int32) bool) {
	keys := b.keys[:0]
	for k := range b.objs {
		keys = append(keys, k)
	}
	b.keys = keys
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var ts []int32
	for _, k := range keys {
		oe := b.objs[k]
		if len(oe.threads) < 2 {
			continue
		}
		ts = ts[:0]
		for t := range oe.threads {
			ts = append(ts, int32(t))
		}
		sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
		visit(k, oe.bytes, ts)
	}
}

// Summarize exports the builder's per-object state as a mergeable summary
// (sorted by key for determinism) and is the worker-side half of the
// distributed reduction.
func (b *FullBuilder) Summarize() *Summary {
	s := &Summary{Objs: make([]ObjSummary, 0, len(b.objs))}
	keys := make([]int64, 0, len(b.objs))
	for k := range b.objs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		oe := b.objs[k]
		ts := make([]int32, 0, len(oe.threads))
		for t := range oe.threads {
			ts = append(ts, int32(t))
		}
		sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
		s.Objs = append(s.Objs, ObjSummary{Key: k, Bytes: oe.bytes, Threads: ts})
	}
	return s
}

// IngestSummary merges a worker summary into the builder (the master-side
// half). Thread sets union; the larger byte estimate wins, matching
// AddAccess semantics — including its rejection of malformed out-of-range
// thread ids.
func (b *FullBuilder) IngestSummary(s *Summary) {
	for _, o := range s.Objs {
		oe := b.objs[o.Key]
		if oe == nil {
			if n := len(b.free); n > 0 {
				oe = b.free[n-1]
				b.free = b.free[:n-1]
			} else {
				oe = &objEntry{threads: make(map[int]struct{}, len(o.Threads))}
			}
			b.objs[o.Key] = oe
		}
		if o.Bytes > oe.bytes {
			oe.bytes = o.Bytes
		}
		for _, t := range o.Threads {
			if t < 0 || int(t) >= b.n {
				b.cost.DroppedEntries++
				continue
			}
			oe.threads[int(t)] = struct{}{}
		}
		b.cost.Entries += len(o.Threads)
	}
}

// Merge unions another builder's state into b (in-process variant of the
// summary path, used by tests and by hierarchical reductions).
func (b *FullBuilder) Merge(other *FullBuilder) {
	b.IngestSummary(other.Summarize())
}

// DecayThreads is a documented no-op on the legacy builder: FullBuilder
// re-accrues the map from raw per-object state on every Build/Peek, so a
// retroactive discount of already-accrued cells has nothing to attach to
// (the evidence IS the per-object state, and rewriting logged history
// would break the builder's full-rebuild contract). Failure-degradation
// tests gate on BuilderVariant() == "incremental" for this reason; under
// `-tags tcmfull` the correlation map simply keeps lost nodes' evidence at
// full weight.
func (b *FullBuilder) DecayThreads(threads []int, factor float64) {}

// SeedMap is a documented no-op on the legacy builder, for the same reason
// DecayThreads is: FullBuilder re-accrues the map from raw per-object state
// on every Build/Peek, so seeded pair-level volume — prior evidence with no
// object identity — has nowhere to live (a synthetic object per cell would
// corrupt the Objects/PairAdds charge accounting). Under `-tags tcmfull` a
// warm-started session still applies the stored placement and still drives
// the divergence-gated rate controller (the live map simply starts empty,
// which the Divergence signal reads as "no evidence of divergence"); only
// the accumulator seeding is skipped. Warm-start seeding tests gate on
// BuilderVariant() == "incremental".
func (b *FullBuilder) SeedMap(m *Map) {}
