package tcm

import (
	"math"
	"reflect"
	"testing"
)

// TestSeedMap: a seeded empty builder peeks exactly the seed map.
func TestSeedMap(t *testing.T) {
	if BuilderVariant() != "incremental" {
		t.Skip("SeedMap is a documented no-op on the legacy full builder")
	}
	seed := NewMap(4)
	seed.Set(0, 1, 100)
	seed.Set(1, 2, 40)
	b := NewIncBuilder(4)
	b.SeedMap(seed)
	m := b.Peek()
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if got, want := m.At(i, j), seed.At(i, j); got != want {
				t.Errorf("At(%d,%d) = %g, want %g", i, j, got, want)
			}
		}
	}
}

// TestSeedMapThenAccrue: live evidence adds on top of the seed.
func TestSeedMapThenAccrue(t *testing.T) {
	if BuilderVariant() != "incremental" {
		t.Skip("SeedMap is a documented no-op on the legacy full builder")
	}
	seed := NewMap(4)
	seed.Set(0, 1, 100)
	b := NewIncBuilder(4)
	b.SeedMap(seed)
	b.AddAccess(0, 10, 28)
	b.AddAccess(1, 10, 28)
	if got := b.Peek().At(0, 1); got != 128 {
		t.Errorf("At(0,1) = %g after seed+accrual, want 128", got)
	}
}

// TestSeedMapChargesNothing: seeding is prior knowledge, not measurement —
// the cost ledger and live-pair statistics stay untouched.
func TestSeedMapChargesNothing(t *testing.T) {
	if BuilderVariant() != "incremental" {
		t.Skip("SeedMap is a documented no-op on the legacy full builder")
	}
	seed := NewMap(4)
	seed.Set(0, 1, 100)
	seed.Set(2, 3, 100)
	b := NewIncBuilder(4)
	b.SeedMap(seed)
	_, cost := b.Build()
	if cost.PairAdds != 0 || cost.Objects != 0 || cost.Entries != 0 {
		t.Errorf("seeding charged cost %+v, want zero ledger", cost)
	}
}

// TestSeedMapInvalidatesPeekScratch: a seed applied between two PeekInto
// calls on the same scratch must appear in the second peek.
func TestSeedMapInvalidatesPeekScratch(t *testing.T) {
	if BuilderVariant() != "incremental" {
		t.Skip("SeedMap is a documented no-op on the legacy full builder")
	}
	b := NewIncBuilder(4)
	scratch := b.PeekInto(nil)
	seed := NewMap(4)
	seed.Set(1, 3, 64)
	b.SeedMap(seed)
	scratch = b.PeekInto(scratch)
	if got := scratch.At(1, 3); got != 64 {
		t.Errorf("scratch At(1,3) = %g after seed, want 64", got)
	}
}

// TestSeedMapEdgeCases: nil maps and dimension mismatches are ignored
// (the session only seeds fingerprint-matched profiles; anything else is
// not evidence), and zero-only maps leave the builder truly empty.
func TestSeedMapEdgeCases(t *testing.T) {
	if BuilderVariant() != "incremental" {
		t.Skip("SeedMap is a documented no-op on the legacy full builder")
	}
	b := NewIncBuilder(4)
	b.SeedMap(nil)
	b.SeedMap(NewMap(3)) // wrong dimension
	b.SeedMap(NewMap(4)) // all-zero: nothing to seed
	if got := b.Peek().Total(); got != 0 {
		t.Errorf("Total = %g after no-op seeds, want 0", got)
	}
}

// TestFixedCellsRoundTrip: accumulator-rendered maps survive the profile
// store's fixed-point serialization bit-exactly (AppendFixedCells feeds
// NewMapFromFixed, which feeds SeedMap on warm start).
func TestFixedCellsRoundTrip(t *testing.T) {
	b := NewIncBuilder(3)
	b.AddAccess(0, 10, 100)
	b.AddAccess(1, 10, 100)
	b.AddAccess(1, 20, 3.1415926)
	b.AddAccess(2, 20, 3.1415926)
	m := b.Peek()
	cells := m.AppendFixedCells(nil)
	back := NewMapFromFixed(3, cells)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if got, want := back.At(i, j), m.At(i, j); got != want {
				t.Errorf("At(%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
	if again := back.AppendFixedCells(nil); !reflect.DeepEqual(again, cells) {
		t.Errorf("second serialization differs: %v vs %v", again, cells)
	}
}

func TestNewMapFromFixedPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMapFromFixed accepted a mis-sized cell slice")
		}
	}()
	NewMapFromFixed(2, []int64{1, 2, 3})
}

// TestCellBitsRoundTrip: the bit-pattern codec must be exact for maps the
// fixed-point form cannot carry — arbitrary float accruals (the page-based
// baseline) including values with no finite Q12 representation.
func TestCellBitsRoundTrip(t *testing.T) {
	m := NewMap(3)
	m.Add(0, 1, 0.1)                          // not representable in Q12
	m.Add(1, 2, 3.1415926)
	m.Add(0, 2, math.SmallestNonzeroFloat64)  // underflows fixed point
	bits := m.AppendCellBits(nil)
	back := NewMapFromBits(3, bits)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			g, w := back.At(i, j), m.At(i, j)
			if math.Float64bits(g) != math.Float64bits(w) {
				t.Errorf("At(%d,%d): bits %x, want %x", i, j, math.Float64bits(g), math.Float64bits(w))
			}
		}
	}
	if again := back.AppendCellBits(nil); !reflect.DeepEqual(again, bits) {
		t.Errorf("second serialization differs")
	}
}

func TestNewMapFromBitsPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMapFromBits accepted a mis-sized bits slice")
		}
	}()
	NewMapFromBits(2, []uint64{1, 2, 3})
}
