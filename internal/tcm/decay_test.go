package tcm

import (
	"math"
	"testing"
)

// decayFixture accrues a small known map: threads 0,1 share object 10
// (100 bytes), threads 1,2 share object 20 (40 bytes), threads 0,2 share
// object 30 (8 bytes).
func decayFixture() *IncBuilder {
	b := NewIncBuilder(4)
	b.AddAccess(0, 10, 100)
	b.AddAccess(1, 10, 100)
	b.AddAccess(1, 20, 40)
	b.AddAccess(2, 20, 40)
	b.AddAccess(0, 30, 8)
	b.AddAccess(2, 30, 8)
	return b
}

func TestDecayThreads(t *testing.T) {
	if BuilderVariant() != "incremental" {
		t.Skip("DecayThreads is a documented no-op on the legacy full builder")
	}
	b := decayFixture()
	b.DecayThreads([]int{2}, 0.5)
	m := b.Peek()
	cases := []struct {
		i, j int
		want float64
	}{
		{0, 1, 100}, // no dead thread involved: untouched
		{1, 2, 20},  // halved
		{0, 2, 4},   // halved
		{0, 3, 0},
	}
	for _, c := range cases {
		if got := m.At(c.i, c.j); got != c.want {
			t.Errorf("At(%d,%d) = %g, want %g", c.i, c.j, got, c.want)
		}
		if got := m.At(c.j, c.i); got != c.want {
			t.Errorf("At(%d,%d) = %g, want %g (symmetry)", c.j, c.i, got, c.want)
		}
	}
}

func TestDecayThreadsBothDeadDecaysTwice(t *testing.T) {
	if BuilderVariant() != "incremental" {
		t.Skip("DecayThreads is a documented no-op on the legacy full builder")
	}
	b := decayFixture()
	b.DecayThreads([]int{1, 2}, 0.5)
	if got := b.Peek().At(1, 2); got != 10 {
		t.Errorf("both-dead pair At(1,2) = %g, want 10 (factor applied twice)", got)
	}
	if got := b.Peek().At(0, 1); got != 50 {
		t.Errorf("half-dead pair At(0,1) = %g, want 50", got)
	}
}

func TestDecayThreadsEdgeCases(t *testing.T) {
	if BuilderVariant() != "incremental" {
		t.Skip("DecayThreads is a documented no-op on the legacy full builder")
	}
	b := decayFixture()
	before := b.Peek().At(0, 1)
	b.DecayThreads([]int{-1, 99}, 0.5) // out-of-range ids ignored
	b.DecayThreads([]int{0}, 1.5)      // factor >= 1: no-op
	if got := b.Peek().At(0, 1); got != before {
		t.Errorf("At(0,1) = %g after no-op decays, want %g", got, before)
	}
	b.DecayThreads([]int{0}, math.NaN()) // NaN clamps to 0: full quarantine
	if got := b.Peek().At(0, 1); got != 0 {
		t.Errorf("At(0,1) = %g after NaN-factor decay, want 0", got)
	}
	if got := b.Peek().At(1, 2); got != 40 {
		t.Errorf("At(1,2) = %g, untouched pair must survive", got)
	}
}

// TestDecayThreadsInvalidatesPeekScratch: a decay between two PeekInto
// calls on the same scratch must not leave stale cells behind.
func TestDecayThreadsInvalidatesPeekScratch(t *testing.T) {
	if BuilderVariant() != "incremental" {
		t.Skip("DecayThreads is a documented no-op on the legacy full builder")
	}
	b := decayFixture()
	scratch := b.PeekInto(nil)
	b.DecayThreads([]int{2}, 0.25)
	scratch = b.PeekInto(scratch)
	if got := scratch.At(1, 2); got != 10 {
		t.Errorf("scratch At(1,2) = %g after decay, want 10", got)
	}
}

// TestDecayThenAccrue: evidence logged after a decay accrues at full
// weight (decay discounts history, not the future).
func TestDecayThenAccrue(t *testing.T) {
	if BuilderVariant() != "incremental" {
		t.Skip("DecayThreads is a documented no-op on the legacy full builder")
	}
	b := decayFixture()
	b.DecayThreads([]int{2}, 0)
	if got := b.Peek().At(1, 2); got != 0 {
		t.Fatalf("At(1,2) = %g after full quarantine, want 0", got)
	}
	b.AddAccess(1, 40, 64)
	b.AddAccess(2, 40, 64)
	if got := b.Peek().At(1, 2); got != 64 {
		t.Errorf("At(1,2) = %g after post-decay accrual, want 64", got)
	}
}
