// Package tcm implements the thread correlation map (TCM): the N×N
// histogram of shared data volume between each pair of threads, the
// correlation-computing daemon that builds it from object access lists, and
// the Euclidean / absolute distance metrics (paper equations 1 and 2) used
// to quantify sampling accuracy.
package tcm

import (
	"fmt"
	"math"
	"strings"
)

// Map is a symmetric N×N matrix of shared bytes per thread pair. The
// diagonal is unused (self-sharing is not correlation).
type Map struct {
	n     int
	cells []float64
}

// NewMap returns an N×N zero map.
func NewMap(n int) *Map {
	if n < 0 {
		panic("tcm: negative dimension")
	}
	return &Map{n: n, cells: make([]float64, n*n)}
}

// N returns the dimension (thread count).
func (m *Map) N() int { return m.n }

// At returns the shared volume between threads i and j.
func (m *Map) At(i, j int) float64 { return m.cells[i*m.n+j] }

// Add accrues v bytes of shared volume symmetrically between i and j.
// Adding to the diagonal is ignored.
func (m *Map) Add(i, j int, v float64) {
	if i == j {
		return
	}
	m.cells[i*m.n+j] += v
	m.cells[j*m.n+i] += v
}

// Set assigns the cell symmetrically.
func (m *Map) Set(i, j int, v float64) {
	if i == j {
		return
	}
	m.cells[i*m.n+j] = v
	m.cells[j*m.n+i] = v
}

// Total returns the sum of all off-diagonal cells (each pair counted twice,
// consistently for both operands of a distance).
func (m *Map) Total() float64 {
	s := 0.0
	for _, v := range m.cells {
		s += v
	}
	return s
}

// Clone returns a deep copy.
func (m *Map) Clone() *Map {
	c := NewMap(m.n)
	copy(c.cells, m.cells)
	return c
}

// Reuse returns m resized to n×n with every cell zeroed, recycling the
// backing array when its capacity allows; a nil receiver allocates fresh.
// It is the scratch-reuse primitive behind PeekInto.
func (m *Map) Reuse(n int) *Map {
	if m == nil {
		return NewMap(n)
	}
	if n < 0 {
		panic("tcm: negative dimension")
	}
	need := n * n
	if cap(m.cells) < need {
		m.cells = make([]float64, need)
	} else {
		m.cells = m.cells[:need]
		clear(m.cells)
	}
	m.n = n
	return m
}

// AppendFixedCells appends every cell quantized to the builders' scaled
// fixed-point units (see builder_inc.go: 2^-12 bytes of resolution) to dst,
// row-major including both symmetric mirrors. It is the profile store's
// serialization form: for maps rendered from the incremental accumulator
// the quantization is exact, so AppendFixedCells∘NewMapFromFixed
// round-trips bit-identically.
func (m *Map) AppendFixedCells(dst []int64) []int64 {
	for _, v := range m.cells {
		dst = append(dst, toFixed(v))
	}
	return dst
}

// AppendCellBits appends every cell's IEEE-754 bit pattern to dst,
// row-major including both symmetric mirrors. Unlike AppendFixedCells this
// is exact for *any* map, not just ones accumulated in fixed point (the
// page-based baseline tracker builds float maps directly), which is why the
// experiment dispatcher's wire form uses it: AppendCellBits∘NewMapFromBits
// round-trips bit-identically for every map.
func (m *Map) AppendCellBits(dst []uint64) []uint64 {
	for _, v := range m.cells {
		dst = append(dst, math.Float64bits(v))
	}
	return dst
}

// NewMapFromBits reconstructs an n×n map from IEEE-754 cell bit patterns
// (len must be n×n, as produced by AppendCellBits).
func NewMapFromBits(n int, bits []uint64) *Map {
	if len(bits) != n*n {
		panic(fmt.Sprintf("tcm: %d cell bits for an %d×%d map", len(bits), n, n))
	}
	m := NewMap(n)
	for i, b := range bits {
		m.cells[i] = math.Float64frombits(b)
	}
	return m
}

// NewMapFromFixed reconstructs an n×n map from scaled fixed-point cells
// (len must be n×n, as produced by AppendFixedCells).
func NewMapFromFixed(n int, cells []int64) *Map {
	if len(cells) != n*n {
		panic(fmt.Sprintf("tcm: %d fixed cells for an %d×%d map", len(cells), n, n))
	}
	m := NewMap(n)
	for i, v := range cells {
		m.cells[i] = toFloat(v)
	}
	return m
}

// Scale multiplies every cell by f, in place, returning the map.
func (m *Map) Scale(f float64) *Map {
	for i := range m.cells {
		m.cells[i] *= f
	}
	return m
}

// MaxCell returns the largest cell value.
func (m *Map) MaxCell() float64 {
	mx := 0.0
	for _, v := range m.cells {
		if v > mx {
			mx = v
		}
	}
	return mx
}

// DistanceEUC is the paper's equation (1): the Euclidean norm of A−B
// normalized by the Euclidean norm of B.
func DistanceEUC(a, b *Map) float64 {
	checkDims(a, b)
	var num, den float64
	for i := range a.cells {
		d := a.cells[i] - b.cells[i]
		num += d * d
		den += b.cells[i] * b.cells[i]
	}
	if den == 0 {
		if num == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Sqrt(num) / math.Sqrt(den)
}

// DistanceABS is the paper's equation (2): the elementwise absolute
// difference normalized by the total volume of B.
func DistanceABS(a, b *Map) float64 {
	checkDims(a, b)
	var num, den float64
	for i := range a.cells {
		num += math.Abs(a.cells[i] - b.cells[i])
		den += b.cells[i]
	}
	if den == 0 {
		if num == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return num / den
}

// Accuracy converts a distance into the paper's accuracy percentage
// (1 − E, floored at zero).
func Accuracy(distance float64) float64 {
	a := 1 - distance
	if a < 0 {
		return 0
	}
	return a
}

func checkDims(a, b *Map) {
	if a.n != b.n {
		panic(fmt.Sprintf("tcm: dimension mismatch %d vs %d", a.n, b.n))
	}
}

// String renders a compact ASCII heat map (shades by relative magnitude),
// which is how cmd/tcmviz draws Fig. 1.
func (m *Map) String() string {
	shades := []byte(" .:-=+*#%@")
	mx := m.MaxCell()
	var sb strings.Builder
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			v := m.At(i, j)
			k := 0
			if mx > 0 {
				k = int(v / mx * float64(len(shades)-1))
			}
			sb.WriteByte(shades[k])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// BuildCost records the work the correlation daemon performed, used by the
// simulator to charge CPU time: reorganization is O(M·N̄) over M objects
// and TCM accrual is O(M·N²) worst case (PairAdds counts the realized
// pairwise additions).
//
// The ledger reports the paper's *simulated* charge: both builder variants
// (the incremental default and the `-tags tcmfull` legacy full rebuild)
// account a charged Build as the full O(M·N²) reorganize-and-accrue pass,
// even though the incremental builder's host-side work per Build is O(1).
// The simulated analyzer the tables charge is the paper's daemon, not our
// maintenance strategy.
type BuildCost struct {
	Records  int
	Entries  int
	Objects  int   // M: distinct objects seen
	PairAdds int64 // realized accrual operations
	// DroppedEntries counts malformed entries (thread id out of range)
	// rejected at ingestion.
	DroppedEntries int64
}

// freePoolCap bounds the builder entry pools retained across Reset: a storm
// window must not permanently pin its peak objEntry population. Keeping
// 2×(the window just recycled)+slack adapts the pool to the current working
// set within one window of a large→small transition.
func freePoolCap(recycled int) int { return 2*recycled + 64 }
