// Package tcm implements the thread correlation map (TCM): the N×N
// histogram of shared data volume between each pair of threads, the
// correlation-computing daemon that builds it from object access lists, and
// the Euclidean / absolute distance metrics (paper equations 1 and 2) used
// to quantify sampling accuracy.
package tcm

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"jessica2/internal/oal"
)

// Map is a symmetric N×N matrix of shared bytes per thread pair. The
// diagonal is unused (self-sharing is not correlation).
type Map struct {
	n     int
	cells []float64
}

// NewMap returns an N×N zero map.
func NewMap(n int) *Map {
	if n < 0 {
		panic("tcm: negative dimension")
	}
	return &Map{n: n, cells: make([]float64, n*n)}
}

// N returns the dimension (thread count).
func (m *Map) N() int { return m.n }

// At returns the shared volume between threads i and j.
func (m *Map) At(i, j int) float64 { return m.cells[i*m.n+j] }

// Add accrues v bytes of shared volume symmetrically between i and j.
// Adding to the diagonal is ignored.
func (m *Map) Add(i, j int, v float64) {
	if i == j {
		return
	}
	m.cells[i*m.n+j] += v
	m.cells[j*m.n+i] += v
}

// Set assigns the cell symmetrically.
func (m *Map) Set(i, j int, v float64) {
	if i == j {
		return
	}
	m.cells[i*m.n+j] = v
	m.cells[j*m.n+i] = v
}

// Total returns the sum of all off-diagonal cells (each pair counted twice,
// consistently for both operands of a distance).
func (m *Map) Total() float64 {
	s := 0.0
	for _, v := range m.cells {
		s += v
	}
	return s
}

// Clone returns a deep copy.
func (m *Map) Clone() *Map {
	c := NewMap(m.n)
	copy(c.cells, m.cells)
	return c
}

// Reuse returns m resized to n×n with every cell zeroed, recycling the
// backing array when its capacity allows; a nil receiver allocates fresh.
// It is the scratch-reuse primitive behind PeekInto.
func (m *Map) Reuse(n int) *Map {
	if m == nil {
		return NewMap(n)
	}
	if n < 0 {
		panic("tcm: negative dimension")
	}
	need := n * n
	if cap(m.cells) < need {
		m.cells = make([]float64, need)
	} else {
		m.cells = m.cells[:need]
		clear(m.cells)
	}
	m.n = n
	return m
}

// Scale multiplies every cell by f, in place, returning the map.
func (m *Map) Scale(f float64) *Map {
	for i := range m.cells {
		m.cells[i] *= f
	}
	return m
}

// MaxCell returns the largest cell value.
func (m *Map) MaxCell() float64 {
	mx := 0.0
	for _, v := range m.cells {
		if v > mx {
			mx = v
		}
	}
	return mx
}

// DistanceEUC is the paper's equation (1): the Euclidean norm of A−B
// normalized by the Euclidean norm of B.
func DistanceEUC(a, b *Map) float64 {
	checkDims(a, b)
	var num, den float64
	for i := range a.cells {
		d := a.cells[i] - b.cells[i]
		num += d * d
		den += b.cells[i] * b.cells[i]
	}
	if den == 0 {
		if num == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Sqrt(num) / math.Sqrt(den)
}

// DistanceABS is the paper's equation (2): the elementwise absolute
// difference normalized by the total volume of B.
func DistanceABS(a, b *Map) float64 {
	checkDims(a, b)
	var num, den float64
	for i := range a.cells {
		num += math.Abs(a.cells[i] - b.cells[i])
		den += b.cells[i]
	}
	if den == 0 {
		if num == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return num / den
}

// Accuracy converts a distance into the paper's accuracy percentage
// (1 − E, floored at zero).
func Accuracy(distance float64) float64 {
	a := 1 - distance
	if a < 0 {
		return 0
	}
	return a
}

func checkDims(a, b *Map) {
	if a.n != b.n {
		panic(fmt.Sprintf("tcm: dimension mismatch %d vs %d", a.n, b.n))
	}
}

// String renders a compact ASCII heat map (shades by relative magnitude),
// which is how cmd/tcmviz draws Fig. 1.
func (m *Map) String() string {
	shades := []byte(" .:-=+*#%@")
	mx := m.MaxCell()
	var sb strings.Builder
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			v := m.At(i, j)
			k := 0
			if mx > 0 {
				k = int(v / mx * float64(len(shades)-1))
			}
			sb.WriteByte(shades[k])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// BuildCost records the work the correlation daemon performed, used by the
// simulator to charge CPU time: reorganization is O(M·N̄) over M objects
// and TCM accrual is O(M·N²) worst case (PairAdds counts the realized
// pairwise additions).
type BuildCost struct {
	Records  int
	Entries  int
	Objects  int   // M: distinct objects seen
	PairAdds int64 // realized accrual operations
	// DroppedEntries counts malformed entries (thread id out of range)
	// rejected at ingestion.
	DroppedEntries int64
}

// Builder is the correlation-computing daemon state: it ingests OAL batches
// and reorganizes per-thread lists into per-object thread lists.
type Builder struct {
	n    int
	objs map[int64]*objEntry
	cost BuildCost

	// free recycles objEntry structs (and their thread-set maps) across
	// profiling windows; keys and ts are iteration scratch reused across
	// Build calls. Together they make the per-window daemon work
	// allocation-free at steady state.
	free []*objEntry
	keys []int64
	ts   []int
}

type objEntry struct {
	bytes   float64
	threads map[int]struct{}
}

// NewBuilder returns a daemon for n threads.
func NewBuilder(n int) *Builder {
	return &Builder{n: n, objs: make(map[int64]*objEntry)}
}

// N returns the thread-count dimension.
func (b *Builder) N() int { return b.n }

// Ingest reorganizes one batch of records into the per-object lists.
func (b *Builder) Ingest(batch *oal.Batch) {
	for _, r := range batch.Records {
		b.IngestRecord(r)
	}
}

// IngestRecord reorganizes one record.
func (b *Builder) IngestRecord(r *oal.Record) {
	b.cost.Records++
	for _, e := range r.Entries {
		b.cost.Entries++
		b.AddAccess(r.Thread, int64(e.Obj), float64(e.Bytes))
	}
}

// AddAccess records that thread t accessed the keyed object with the given
// logged weight. The weight of the first log wins (all threads log the same
// amortized size for the same object at the same gap); larger weights
// replace smaller ones so that re-logging at a finer gap upgrades the entry.
// Records arrive over the network, so a malformed thread id outside [0, n)
// must not crash the daemon: such entries are dropped (counted in
// DroppedEntries).
func (b *Builder) AddAccess(t int, key int64, bytes float64) {
	if t < 0 || t >= b.n {
		b.cost.DroppedEntries++
		return
	}
	oe := b.objs[key]
	if oe == nil {
		if n := len(b.free); n > 0 {
			oe = b.free[n-1]
			b.free = b.free[:n-1]
		} else {
			oe = &objEntry{threads: make(map[int]struct{}, 2)}
		}
		b.objs[key] = oe
	}
	if bytes > oe.bytes {
		oe.bytes = bytes
	}
	oe.threads[t] = struct{}{}
}

// Build constructs the TCM by accruing, for every object, its weight into
// every pair of threads that accessed it in common, charging the cost
// ledger for the accrual pass.
func (b *Builder) Build() (*Map, BuildCost) {
	m := b.buildMap(nil, true)
	return m, b.cost
}

// Peek constructs the same map Build would, but leaves the cost ledger
// untouched: no Objects/PairAdds accrual, so a charged Build that follows
// observes exactly the state it would have without the peek. Live snapshots
// use it to expose the incremental TCM without perturbing the simulated
// analyzer's CPU accounting.
func (b *Builder) Peek() *Map { return b.buildMap(nil, false) }

// PeekInto is Peek with caller-owned scratch: the accrual writes into dst
// (recycled via Reuse; nil allocates). Closed-loop sessions peek at every
// epoch boundary, and rebuilding the N×N map each epoch was the allocation
// hot spot of closed-loop runs — reusing one per-session map removes it.
// The returned map aliases dst and is valid until the next PeekInto.
func (b *Builder) PeekInto(dst *Map) *Map { return b.buildMap(dst, false) }

// buildMap is the shared accrual pass behind Build and Peek.
func (b *Builder) buildMap(dst *Map, charge bool) *Map {
	m := dst.Reuse(b.n)
	if charge {
		b.cost.Objects = len(b.objs)
	}
	// Deterministic iteration: sort object keys.
	keys := b.keys[:0]
	for k := range b.objs {
		keys = append(keys, k)
	}
	b.keys = keys
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		oe := b.objs[k]
		if len(oe.threads) < 2 {
			continue
		}
		ts := b.ts[:0]
		for t := range oe.threads {
			ts = append(ts, t)
		}
		b.ts = ts
		sort.Ints(ts)
		for i := 0; i < len(ts); i++ {
			for j := i + 1; j < len(ts); j++ {
				m.Add(ts[i], ts[j], oe.bytes)
			}
		}
		if charge {
			b.cost.PairAdds += int64(len(ts)) * int64(len(ts)-1) / 2
		}
	}
	return m
}

// Reset clears ingested state for the next profiling window, retaining the
// entry structs and thread-set maps for reuse.
func (b *Builder) Reset() {
	for _, oe := range b.objs {
		oe.bytes = 0
		clear(oe.threads)
		b.free = append(b.free, oe)
	}
	clear(b.objs)
	b.cost = BuildCost{}
}
