package tcm

import (
	"fmt"
	"testing"
)

// TestFreePoolCapAfterStormWindow is the pool-growth regression test: a
// storm window that ingests a huge object population must not permanently
// pin its peak entry memory — within one subsequent small window the
// recycle pool must shrink to the small window's working set. Both builder
// variants share the freePoolCap policy.
func TestFreePoolCapAfterStormWindow(t *testing.T) {
	const storm, small = 20000, 50
	t.Run("incremental", func(t *testing.T) {
		b := NewIncBuilder(4)
		for o := int64(0); o < storm; o++ {
			b.AddAccess(int(o)%4, o, 64)
		}
		b.Reset()
		if len(b.free) != storm {
			t.Fatalf("after storm reset: pool %d, want %d", len(b.free), storm)
		}
		for o := int64(0); o < small; o++ {
			b.AddAccess(int(o)%4, o, 64)
		}
		b.Reset()
		if max := freePoolCap(small); len(b.free) > max {
			t.Fatalf("after small-window reset: pool %d, want <= %d", len(b.free), max)
		}
		// The trimmed tail must not retain entry pointers.
		for i, e := range b.free[:cap(b.free)] {
			if i >= len(b.free) && e != nil {
				t.Fatalf("trimmed pool slot %d still pins an entry", i)
			}
		}
	})
	t.Run("full", func(t *testing.T) {
		b := NewFullBuilder(4)
		for o := int64(0); o < storm; o++ {
			b.AddAccess(int(o)%4, o, 64)
		}
		b.Reset()
		for o := int64(0); o < small; o++ {
			b.AddAccess(int(o)%4, o, 64)
		}
		b.Reset()
		if max := freePoolCap(small); len(b.free) > max {
			t.Fatalf("after small-window reset: pool %d, want <= %d", len(b.free), max)
		}
		for i, e := range b.free[:cap(b.free)] {
			if i >= len(b.free) && e != nil {
				t.Fatalf("trimmed pool slot %d still pins an entry", i)
			}
		}
	})
}

// TestPeekIntoDirtyPath pins the O(dirty) re-sync: successive PeekInto
// calls on the same scratch must take the incremental path (same pointer,
// no reallocation) and still be bit-identical to a fresh full render after
// every kind of mutation — new pairs, weight upgrades, member joins,
// resets and dirty-list overflow into the allDirty fallback.
func TestPeekIntoDirtyPath(t *testing.T) {
	const n = 8
	b := NewIncBuilder(n)
	rng := equivRand(0xd1e7)
	dst := b.PeekInto(nil)
	check := func(tag string) {
		t.Helper()
		got := b.PeekInto(dst)
		if got != dst {
			t.Fatalf("%s: PeekInto reallocated the scratch", tag)
		}
		assertMapsBitEqual(t, tag, got, b.Peek())
	}
	check("empty")
	b.AddAccess(0, 1, 100)
	b.AddAccess(1, 1, 100)
	check("first pair")
	check("no change")     // zero dirty cells: must still be correct
	b.AddAccess(2, 1, 250) // join + upgrade in one access
	check("join and upgrade")
	for op := 0; op < 3000; op++ {
		b.AddAccess(int(rng.next()%n), int64(rng.next()%64), float64(rng.next()%4096))
		if op%97 == 0 {
			check(fmt.Sprintf("random op %d", op))
		}
	}
	check("random stream")
	if b.allDirty {
		t.Log("allDirty fallback engaged during the stream (expected on dense mutation)")
	}
	b.Reset()
	check("after reset")
	b.AddAccess(3, 9, 640)
	b.AddAccess(5, 9, 640)
	check("fresh window")
}

// TestVisitNewlySharedPending pins the incremental pending-list semantics:
// objects surface once per sharing transition, consumed entries retire,
// declined entries stay pending, ad-hoc (non-consuming) visits do not
// retire anything, and Reset clears the list.
func TestVisitNewlySharedPending(t *testing.T) {
	b := NewIncBuilder(4)
	collect := func(consume bool, accept func(key int64) bool) []int64 {
		var keys []int64
		b.VisitNewlyShared(consume, func(key int64, bytes float64, threads []int32) bool {
			keys = append(keys, key)
			return accept(key)
		})
		return keys
	}
	all := func(int64) bool { return true }

	b.AddAccess(0, 10, 100) // single-thread object: never pending
	b.AddAccess(0, 20, 50)
	b.AddAccess(1, 20, 50) // becomes shared
	b.AddAccess(2, 5, 70)
	b.AddAccess(3, 5, 70) // becomes shared

	if got := collect(false, all); len(got) != 2 || got[0] != 5 || got[1] != 20 {
		t.Fatalf("ad-hoc visit = %v, want [5 20] (sorted, shared only)", got)
	}
	if got := collect(false, all); len(got) != 2 {
		t.Fatalf("ad-hoc visit must not consume; second visit = %v", got)
	}
	// Consume 20, decline 5: it must stay pending.
	collect(true, func(key int64) bool { return key == 20 })
	if got := collect(false, all); len(got) != 1 || got[0] != 5 {
		t.Fatalf("after partial consume = %v, want [5]", got)
	}
	// A third thread joining an already-shared object is not a new
	// sharing transition.
	b.AddAccess(2, 20, 50)
	if got := collect(true, all); len(got) != 1 || got[0] != 5 {
		t.Fatalf("member join re-pended: %v", got)
	}
	if got := collect(true, all); got != nil {
		t.Fatalf("pending list not drained: %v", got)
	}

	b.Reset()
	if got := collect(true, all); got != nil {
		t.Fatalf("pending survives Reset: %v", got)
	}
	// Re-sharing after a reset is a new transition.
	b.AddAccess(0, 20, 50)
	b.AddAccess(1, 20, 50)
	if got := collect(true, all); len(got) != 1 || got[0] != 20 {
		t.Fatalf("post-reset re-share = %v, want [20]", got)
	}
}

// TestVisitNewlySharedParityWithFull drives both builders through the
// session's consumption protocol (a hotSeen set dedupes across windows; the
// callback accepts everything the set has not seen) and asserts the
// surfaced key sequences are identical — the property the session's
// hot-object snapshots rely on to stay byte-identical across variants.
func TestVisitNewlySharedParityWithFull(t *testing.T) {
	const n = 6
	rng := equivRand(0x5eed)
	inc := NewIncBuilder(n)
	full := NewFullBuilder(n)
	incSeen := map[int64]bool{}
	fullSeen := map[int64]bool{}
	surface := func(v interface {
		VisitNewlyShared(bool, func(int64, float64, []int32) bool)
	}, seen map[int64]bool, consume bool) []int64 {
		var out []int64
		v.VisitNewlyShared(consume, func(key int64, bytes float64, threads []int32) bool {
			if seen[key] {
				return true
			}
			if consume {
				seen[key] = true
			}
			out = append(out, key)
			return consume
		})
		return out
	}
	for round := 0; round < 200; round++ {
		for i := 0; i < 20; i++ {
			th := int(rng.next() % n)
			key := int64(rng.next() % 30)
			w := float64(rng.next() % 1000)
			inc.AddAccess(th, key, w)
			full.AddAccess(th, key, w)
		}
		consume := round%3 != 2 // mix boundary and ad-hoc snapshots
		gi := surface(inc, incSeen, consume)
		gf := surface(full, fullSeen, consume)
		if len(gi) != len(gf) {
			t.Fatalf("round %d: surfaced %v vs %v", round, gi, gf)
		}
		for k := range gi {
			if gi[k] != gf[k] {
				t.Fatalf("round %d: surfaced %v vs %v", round, gi, gf)
			}
		}
		if round%17 == 16 {
			inc.Reset()
			full.Reset()
		}
	}
}
