//go:build tcmfull

package tcm

// Builder falls back to the legacy full-rebuild daemon under the `tcmfull`
// build tag (see builder_default.go for the incremental default).
type Builder = FullBuilder

// NewBuilder returns a daemon for n threads (the legacy full-rebuild
// builder in this build).
func NewBuilder(n int) *Builder { return NewFullBuilder(n) }

// BuilderVariant names the selected implementation for CLI perf reports.
func BuilderVariant() string { return "full" }
