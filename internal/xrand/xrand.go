// Package xrand provides a small deterministic pseudo-random stream
// (SplitMix64) used throughout the simulator. Every component that needs
// randomness derives its own stream from a seed, so runs are reproducible
// regardless of goroutine interleaving or map iteration order.
package xrand

import "math"

// Rand is a SplitMix64 generator. The zero value is a valid generator with
// seed 0; prefer New to mix the seed first.
type Rand struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *Rand {
	r := &Rand{state: seed}
	// Warm up so nearby seeds diverge immediately.
	r.Uint64()
	return r
}

// Derive returns a new independent generator labelled by id. Streams derived
// with distinct ids from the same parent are statistically independent.
func (r *Rand) Derive(id uint64) *Rand {
	return New(r.state ^ (id*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d))
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative int64.
func (r *Rand) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// NormFloat64 returns a standard normal variate (Box–Muller).
func (r *Rand) NormFloat64() float64 {
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		v := r.Float64()
		return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
	}
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes the first n elements using swap, Fisher–Yates style.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Zipf returns a Zipf(s, n)-distributed rank in [0, n) using rejection
// inversion. s must be > 1 for a proper distribution; values near 1 give
// heavy skew typical of hot-object access patterns.
type Zipf struct {
	r    *Rand
	n    int
	s    float64
	hx0  float64
	hxm  float64
	dist float64
}

// NewZipf builds a Zipf sampler over ranks [0, n).
func NewZipf(r *Rand, s float64, n int) *Zipf {
	z := &Zipf{r: r, n: n, s: s}
	z.hx0 = z.h(0.5)
	z.hxm = z.h(float64(n) + 0.5)
	z.dist = z.hx0 - z.hxm
	return z
}

func (z *Zipf) h(x float64) float64 {
	if z.s == 1 {
		return math.Log(x)
	}
	return math.Pow(x, 1-z.s) / (1 - z.s)
}

func (z *Zipf) hinv(x float64) float64 {
	if z.s == 1 {
		return math.Exp(x)
	}
	return math.Pow(x*(1-z.s), 1/(1-z.s))
}

// Rank draws one sample.
func (z *Zipf) Rank() int {
	for {
		u := z.hx0 - z.r.Float64()*z.dist
		x := z.hinv(u)
		k := int(x + 0.5)
		if k < 1 {
			k = 1
		}
		if k > z.n {
			k = z.n
		}
		// Accept with probability proportional to true mass; the simple
		// clamp above is adequate for workload generation purposes.
		if z.r.Float64() < math.Pow(float64(k), -z.s)/math.Pow(x, -z.s) {
			return k - 1
		}
	}
}
