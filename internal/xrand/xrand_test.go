package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between adjacent seeds", same)
	}
}

func TestDeriveIndependence(t *testing.T) {
	parent := New(7)
	a := parent.Derive(1)
	b := parent.Derive(2)
	if a.Uint64() == b.Uint64() {
		t.Fatal("derived streams collide immediately")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(9)
	for i := 0; i < 1000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestInt63NonNegative(t *testing.T) {
	r := New(11)
	for i := 0; i < 1000; i++ {
		if r.Int63() < 0 {
			t.Fatal("Int63 negative")
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(5)
	n := 20000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sum2 += v * v
	}
	mean := sum / float64(n)
	variance := sum2/float64(n) - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Fatalf("mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.1 {
		t.Fatalf("variance = %v", variance)
	}
}

// Property: Perm returns a valid permutation.
func TestQuickPermValid(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		size := int(n%50) + 1
		p := New(seed).Perm(size)
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(13)
	vals := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range vals {
		sum += v
	}
	r.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	got := 0
	for _, v := range vals {
		got += v
	}
	if got != sum {
		t.Fatal("shuffle lost elements")
	}
}

func TestZipfRanksInRange(t *testing.T) {
	r := New(17)
	z := NewZipf(r, 1.2, 100)
	counts := make([]int, 100)
	for i := 0; i < 10000; i++ {
		k := z.Rank()
		if k < 0 || k >= 100 {
			t.Fatalf("rank out of range: %d", k)
		}
		counts[k]++
	}
	// Head must be hotter than tail.
	head := counts[0] + counts[1] + counts[2]
	tail := counts[97] + counts[98] + counts[99]
	if head <= tail {
		t.Fatalf("zipf not skewed: head %d tail %d", head, tail)
	}
}
