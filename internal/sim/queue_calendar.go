//go:build !simheap

package sim

// engineQueue selects the scheduler implementation behind Engine. The
// default build uses the two-level bucketed calendar queue; build with
// `-tags simheap` to fall back to the plain 4-ary heap (the baseline for
// the scheduler microbenchmarks and for bisecting perf regressions).
type engineQueue = schedQueue
