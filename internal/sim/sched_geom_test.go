package sim

import (
	"fmt"
	"testing"
)

// schedGeometries spans the sweep: narrow/short, default, wide/long, and
// skewed rings (the ROADMAP's geometry-tuning item).
var schedGeometries = []struct {
	bits, buckets int
}{
	{10, 64},
	{12, 256}, // default
	{12, 1024},
	{14, 128},
	{16, 64},
}

// TestSchedGeometryPopOrderMatchesHeap extends the scheduler's central
// property to every configured geometry: bucket width and ring size may
// move events between the ring and the overflow heap, but the popped
// (at, seq) sequence must stay exactly the reference heap's. Geometry is a
// host-cost knob, never a results knob.
func TestSchedGeometryPopOrderMatchesHeap(t *testing.T) {
	for _, g := range schedGeometries {
		for _, dist := range schedDists {
			t.Run(fmt.Sprintf("b%d/r%d/%s", g.bits, g.buckets, dist), func(t *testing.T) {
				rng := splitmix64(0xbadcafe)
				ref := &eventPQ{}
				got := &schedQueue{}
				got.configure(Config{SchedBucketBits: g.bits, SchedRingBuckets: g.buckets})
				var now Time
				var seq uint64
				for op := 0; op < 8000; op++ {
					if ref.empty() || rng.next()%5 < 3 {
						seq++
						e := event{at: now + delta(&rng, dist), seq: seq}
						ref.push(e)
						got.push(e)
					} else {
						want, have := ref.pop(), got.pop()
						if want.at != have.at || want.seq != have.seq {
							t.Fatalf("pop mismatch: heap (at=%v seq=%d) vs bucketed (at=%v seq=%d)",
								want.at, want.seq, have.at, have.seq)
						}
						now = want.at
					}
					if !ref.empty() {
						if w, h := ref.nextAt(), got.nextAt(); w != h {
							t.Fatalf("nextAt mismatch: heap %v vs bucketed %v", w, h)
						}
					}
				}
				for !ref.empty() {
					want, have := ref.pop(), got.pop()
					if want.at != have.at || want.seq != have.seq {
						t.Fatalf("drain mismatch")
					}
				}
				if !got.empty() {
					t.Fatalf("bucketed queue still holds %d events", got.size())
				}
			})
		}
	}
}

// TestSchedConfigValidation: invalid geometries and post-use configuration
// must fail loudly, and the zero Config must be the default geometry.
func TestSchedConfigValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("non-power-of-two ring", func() {
		(&schedQueue{}).configure(Config{SchedRingBuckets: 100})
	})
	mustPanic("tiny ring", func() {
		(&schedQueue{}).configure(Config{SchedRingBuckets: 32})
	})
	mustPanic("bucket bits out of range", func() {
		(&schedQueue{}).configure(Config{SchedBucketBits: 48})
	})
	mustPanic("span overflow", func() {
		// Each bound is individually legal but the coverage span
		// buckets<<bits would wrap past Time's range.
		(&schedQueue{}).configure(Config{SchedBucketBits: 40, SchedRingBuckets: 1 << 24})
	})
	mustPanic("configure after use", func() {
		q := &schedQueue{}
		q.push(event{at: 1})
		q.configure(Config{SchedRingBuckets: 128})
	})

	def := &schedQueue{}
	def.configure(Config{}) // zero fields: defaults
	if def.span != ringSpan || def.bits != defaultBucketBits {
		t.Fatalf("zero Config geometry = %d-bit × %d, want defaults", def.bits, def.mask+1)
	}
	if got := DefaultConfig(); got.SchedBucketBits != defaultBucketBits || got.SchedRingBuckets != defaultRingBuckets {
		t.Fatalf("DefaultConfig = %+v", got)
	}
}

// TestEngineWithGeometryRuns: an engine on a non-default geometry schedules
// and fires events in the same order as a default one.
func TestEngineWithGeometryRuns(t *testing.T) {
	fire := func(e *Engine) []int {
		var order []int
		for i := 0; i < 64; i++ {
			i := i
			e.Schedule(Time(i%7)*bucketWidth*3, func() { order = append(order, i) })
		}
		e.Run()
		return order
	}
	a := fire(NewEngine())
	b := fire(NewEngineWith(Config{SchedBucketBits: 9, SchedRingBuckets: 64}))
	if len(a) != len(b) {
		t.Fatalf("fired %d vs %d events", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fire order diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// BenchmarkSchedGeometry is the ROADMAP-requested geometry sweep: steady
// state pop+push cycles across bucket-width × ring-size combinations under
// the dense (same-tick), uniform and far-timer distributions, at two queue
// populations. It quantifies how much horizon the overflow heap is worth
// and when wider buckets start smearing a busy instant.
func BenchmarkSchedGeometry(b *testing.B) {
	for _, g := range schedGeometries {
		for _, hold := range []int{64, 4096} {
			for _, dist := range []string{"same-tick", "uniform", "far"} {
				b.Run(fmt.Sprintf("b%d/r%d/hold=%d/%s", g.bits, g.buckets, hold, dist), func(b *testing.B) {
					rng := splitmix64(42)
					q := &schedQueue{}
					q.configure(Config{SchedBucketBits: g.bits, SchedRingBuckets: g.buckets})
					var now Time
					var seq uint64
					for i := 0; i < hold; i++ {
						seq++
						q.push(event{at: now + delta(&rng, dist), seq: seq})
					}
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						e := q.pop()
						now = e.at
						seq++
						q.push(event{at: now + delta(&rng, dist), seq: seq})
					}
				})
			}
		}
	}
}
