//go:build simheap

package sim

// engineQueue falls back to the plain 4-ary heap under the `simheap` build
// tag (see queue_calendar.go for the default).
type engineQueue = eventPQ
