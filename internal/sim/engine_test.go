package sim

import (
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	end := e.Run()
	if end != 30 {
		t.Fatalf("end time = %v, want 30", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.Schedule(5, func() {})
	})
	e.Run()
}

func TestAfterClampsNegative(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(10, func() {
		e.After(-5, func() { fired = true })
	})
	e.Run()
	if !fired {
		t.Fatal("After with negative delay never fired")
	}
}

func TestProcSleepAdvancesTime(t *testing.T) {
	e := NewEngine()
	var at Time
	e.Spawn("sleeper", func(p *Proc) {
		p.Sleep(100)
		p.Sleep(50)
		at = p.Now()
	})
	e.Run()
	if at != 150 {
		t.Fatalf("proc time = %v, want 150", at)
	}
}

func TestTwoProcsInterleave(t *testing.T) {
	e := NewEngine()
	var trace []string
	e.Spawn("a", func(p *Proc) {
		trace = append(trace, "a0")
		p.Sleep(10)
		trace = append(trace, "a10")
		p.Sleep(20)
		trace = append(trace, "a30")
	})
	e.Spawn("b", func(p *Proc) {
		trace = append(trace, "b0")
		p.Sleep(15)
		trace = append(trace, "b15")
	})
	e.Run()
	want := []string{"a0", "b0", "a10", "b15", "a30"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v", trace)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestBlockWake(t *testing.T) {
	e := NewEngine()
	var a *Proc
	woke := false
	pa := e.Spawn("blocked", func(p *Proc) {
		p.Block("test")
		woke = true
	})
	a = pa
	e.Spawn("waker", func(p *Proc) {
		p.Sleep(25)
		a.Wake()
	})
	end := e.Run()
	if !woke {
		t.Fatal("blocked proc never woke")
	}
	if end != 25 {
		t.Fatalf("end = %v, want 25", end)
	}
}

func TestResourceExclusiveFIFO(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "cpu")
	var done []string
	for _, name := range []string{"p0", "p1", "p2"} {
		name := name
		e.Spawn(name, func(p *Proc) {
			p.Use(r, 10)
			done = append(done, name)
		})
	}
	end := e.Run()
	// Serialized: total 30 time units, FIFO completion order.
	if end != 30 {
		t.Fatalf("end = %v, want 30 (serialized)", end)
	}
	for i, n := range []string{"p0", "p1", "p2"} {
		if done[i] != n {
			t.Fatalf("completion order %v not FIFO", done)
		}
	}
	if r.Busy != 30 {
		t.Fatalf("busy = %v, want 30", r.Busy)
	}
}

func TestResourceReleaseByNonHolderPanics(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "cpu")
	e.Spawn("bad", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("release by non-holder did not panic")
			}
		}()
		r.Release(p)
	})
	e.Run()
}

func TestProcCPUTimeAccounting(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "cpu")
	var got Time
	e.Spawn("worker", func(p *Proc) {
		p.Use(r, 40)
		p.Use(r, 2)
		got = p.CPUTime
	})
	e.Run()
	if got != 42 {
		t.Fatalf("CPUTime = %v, want 42", got)
	}
}

func TestWaitQueueWakeOneFIFO(t *testing.T) {
	e := NewEngine()
	q := NewWaitQueue("q")
	var woke []string
	for _, name := range []string{"w0", "w1"} {
		name := name
		e.Spawn(name, func(p *Proc) {
			q.Wait(p)
			woke = append(woke, name)
		})
	}
	e.Spawn("waker", func(p *Proc) {
		p.Sleep(5)
		if !q.WakeOne() {
			t.Error("WakeOne found no waiter")
		}
		p.Sleep(5)
		if n := q.WakeAll(); n != 1 {
			t.Errorf("WakeAll woke %d, want 1", n)
		}
	})
	e.Run()
	if len(woke) != 2 || woke[0] != "w0" || woke[1] != "w1" {
		t.Fatalf("wake order = %v", woke)
	}
}

func TestWakeOneEmpty(t *testing.T) {
	q := NewWaitQueue("q")
	if q.WakeOne() {
		t.Fatal("WakeOne on empty queue returned true")
	}
	if q.Len() != 0 {
		t.Fatal("empty queue has waiters")
	}
}

func TestDeadlockPanics(t *testing.T) {
	e := NewEngine()
	e.Spawn("stuck", func(p *Proc) {
		p.Block("forever")
	})
	defer func() {
		if recover() == nil {
			t.Error("deadlocked run did not panic")
		}
	}()
	e.Run()
}

func TestStopHaltsRun(t *testing.T) {
	e := NewEngine()
	count := 0
	e.Spawn("looper", func(p *Proc) {
		for {
			p.Sleep(10)
			count++
			if count == 3 {
				e.Stop()
				// The proc remains parked; Stop abandons it.
				p.Block("abandoned")
			}
		}
	})
	end := e.Run()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if end != 30 {
		t.Fatalf("end = %v, want 30", end)
	}
	if !e.Stopped() {
		t.Fatal("engine not stopped")
	}
}

func TestSpawnFromProc(t *testing.T) {
	e := NewEngine()
	var childRan bool
	e.Spawn("parent", func(p *Proc) {
		p.Sleep(10)
		e.Spawn("child", func(c *Proc) {
			c.Sleep(5)
			childRan = true
		})
		p.Sleep(10)
	})
	end := e.Run()
	if !childRan {
		t.Fatal("child never ran")
	}
	if end != 20 {
		t.Fatalf("end = %v, want 20", end)
	}
}

func TestNegativeSleepPanics(t *testing.T) {
	e := NewEngine()
	e.Spawn("bad", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("negative sleep did not panic")
			}
		}()
		p.Sleep(-1)
	})
	e.Run()
}

// TestDeterminism runs the same proc mix twice and checks identical traces.
func TestDeterminism(t *testing.T) {
	build := func() (traceOut *[]int) {
		var trace []int
		e := NewEngine()
		r := NewResource(e, "cpu")
		for i := 0; i < 5; i++ {
			i := i
			e.Spawn("p", func(p *Proc) {
				for j := 0; j < 3; j++ {
					p.Use(r, Time(7+i))
					trace = append(trace, i*10+j)
				}
			})
		}
		e.Run()
		return &trace
	}
	a, b := build(), build()
	if len(*a) != len(*b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(*a), len(*b))
	}
	for i := range *a {
		if (*a)[i] != (*b)[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, *a, *b)
		}
	}
}

// Property: for any batch of (delay, id) events scheduled up-front, the
// execution order is sorted by (delay, insertion order).
func TestQuickEventOrderProperty(t *testing.T) {
	f := func(delays []uint8) bool {
		if len(delays) == 0 {
			return true
		}
		e := NewEngine()
		type rec struct {
			at  Time
			seq int
		}
		var fired []rec
		for i, d := range delays {
			i, d := i, Time(d)
			e.Schedule(d, func() { fired = append(fired, rec{d, i}) })
		}
		e.Run()
		for i := 1; i < len(fired); i++ {
			prev, cur := fired[i-1], fired[i]
			if prev.at > cur.at {
				return false
			}
			if prev.at == cur.at && prev.seq > cur.seq {
				return false
			}
		}
		return len(fired) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{5, "5ns"},
		{2 * Microsecond, "2.000us"},
		{3 * Millisecond, "3.000ms"},
		{2 * Second, "2.000s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
	if (1500 * Millisecond).Seconds() != 1.5 {
		t.Error("Seconds conversion wrong")
	}
	if (1500 * Microsecond).Milliseconds() != 1.5 {
		t.Error("Milliseconds conversion wrong")
	}
}

// TestRunUntilPausesAtSafePoint: epoch-stepped execution must fire exactly
// the events due by each limit, leave the clock at the pause point, and
// produce the same trace as a straight Run.
func TestRunUntilPausesAtSafePoint(t *testing.T) {
	trace := func(step Time) ([]Time, Time) {
		e := NewEngine()
		var fired []Time
		e.Spawn("ticker", func(p *Proc) {
			for i := 0; i < 10; i++ {
				p.Sleep(30)
				fired = append(fired, p.Now())
			}
		})
		if step <= 0 {
			end := e.Run()
			return fired, end
		}
		var now Time
		for !e.RunUntil(now) {
			if e.Now() != now {
				t.Fatalf("paused clock at %v, want %v", e.Now(), now)
			}
			now += step
		}
		return fired, e.Now()
	}

	want, wantEnd := trace(0)
	for _, step := range []Time{7, 30, 45, 1000} {
		got, _ := trace(step)
		if len(got) != len(want) {
			t.Fatalf("step %v: fired %d events, want %d", step, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("step %v: event %d at %v, want %v", step, i, got[i], want[i])
			}
		}
	}
	if wantEnd != 300 {
		t.Fatalf("end time %v, want 300ns", wantEnd)
	}
}

// TestRunUntilAllowsMidRunScheduling: events scheduled while paused at the
// limit run when stepping resumes.
func TestRunUntilAllowsMidRunScheduling(t *testing.T) {
	e := NewEngine()
	e.Spawn("sleeper", func(p *Proc) { p.Sleep(100) })
	if e.RunUntil(50) {
		t.Fatal("completed before the sleeper woke")
	}
	var injected bool
	e.Schedule(e.Now(), func() { injected = true })
	if e.RunUntil(60) {
		t.Fatal("completed before the sleeper woke")
	}
	if !injected {
		t.Fatal("event scheduled at the pause point did not fire on resume")
	}
	if !e.RunUntil(100) || !e.Idle() {
		t.Fatal("run did not complete")
	}
}
