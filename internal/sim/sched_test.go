package sim

import (
	"fmt"
	"testing"
)

// evq is the scheduler contract shared by the 4-ary heap and the bucketed
// calendar queue; the property tests and benchmarks drive both through it.
type evq interface {
	push(event)
	pop() event
	size() int
	empty() bool
	nextAt() Time
}

var (
	_ evq = (*eventPQ)(nil)
	_ evq = (*schedQueue)(nil)
)

// splitmix64 is a tiny deterministic generator for the random streams (the
// test must not depend on other internal packages).
type splitmix64 uint64

func (s *splitmix64) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ z>>30) * 0xbf58476d1ce4e5b9
	z = (z ^ z>>27) * 0x94d049bb133111eb
	return z ^ z>>31
}

// delta draws one scheduling offset from the named distribution.
func delta(rng *splitmix64, dist string) Time {
	r := rng.next()
	switch dist {
	case "uniform": // spread across the ring's horizon
		return Time(r % uint64(ringSpan))
	case "same-tick": // dense bursts at the current instant
		if r%10 < 9 {
			return 0
		}
		return Time(r % uint64(ringSpan))
	case "bursty": // bursts on a few distinct near ticks
		return Time(r%8) * (ringSpan / 32)
	case "far": // long re-arm timers beyond coverage, plus near noise
		if r%4 == 0 {
			return Time(r % uint64(64*ringSpan))
		}
		return Time(r % uint64(bucketWidth))
	case "mixed":
		switch r % 3 {
		case 0:
			return 0
		case 1:
			return Time(r % uint64(ringSpan))
		default:
			return Time(r % uint64(16*ringSpan))
		}
	}
	panic("unknown distribution " + dist)
}

var schedDists = []string{"uniform", "same-tick", "bursty", "far", "mixed"}

// TestSchedPopOrderMatchesHeap is the scheduler's central property: on
// random event streams of every shape, the bucketed queue must pop the
// exact (at, seq) sequence the reference 4-ary heap pops — the ordering the
// golden traces depend on.
func TestSchedPopOrderMatchesHeap(t *testing.T) {
	for _, dist := range schedDists {
		t.Run(dist, func(t *testing.T) {
			rng := splitmix64(0xc0ffee)
			ref := &eventPQ{}
			got := &schedQueue{}
			var now Time
			var seq uint64
			push := func() {
				seq++
				e := event{at: now + delta(&rng, dist), seq: seq}
				ref.push(e)
				got.push(e)
			}
			pop := func() {
				want, have := ref.pop(), got.pop()
				if want.at != have.at || want.seq != have.seq {
					t.Fatalf("pop mismatch: heap (at=%v seq=%d) vs bucketed (at=%v seq=%d)",
						want.at, want.seq, have.at, have.seq)
				}
				if want.at < now {
					t.Fatalf("time went backwards: %v < %v", want.at, now)
				}
				now = want.at
			}
			for op := 0; op < 20000; op++ {
				if ref.empty() || rng.next()%5 < 3 {
					push()
				} else {
					pop()
				}
				if !ref.empty() {
					if w, h := ref.nextAt(), got.nextAt(); w != h {
						t.Fatalf("nextAt mismatch: heap %v vs bucketed %v", w, h)
					}
				}
				if ref.size() != got.size() {
					t.Fatalf("size mismatch: heap %d vs bucketed %d", ref.size(), got.size())
				}
			}
			for !ref.empty() {
				pop()
			}
			if !got.empty() {
				t.Fatalf("bucketed queue still holds %d events after drain", got.size())
			}
		})
	}
}

// TestSchedRunUntilPauseThenPush models the session API's pause points: the
// engine peeks (nextAt) while paused before the next event, then schedules
// new events earlier than it. Peeking must not slide the coverage window
// past the paused clock, or the new pushes would land on the wrong lap.
func TestSchedRunUntilPauseThenPush(t *testing.T) {
	q := &schedQueue{}
	seq := uint64(0)
	push := func(at Time) event {
		seq++
		e := event{at: at, seq: seq}
		q.push(e)
		return e
	}
	push(5 * ringSpan) // a far timer, the only queued work
	if got := q.nextAt(); got != 5*ringSpan {
		t.Fatalf("nextAt = %v", got)
	}
	// Paused at some limit before the timer; new work arrives well before
	// the peeked event (but after the pause limit, as the engine enforces).
	early := push(bucketWidth + 3)
	if got := q.nextAt(); got != early.at {
		t.Fatalf("nextAt after early push = %v, want %v", got, early.at)
	}
	if e := q.pop(); e.at != early.at || e.seq != early.seq {
		t.Fatalf("pop = (at=%v seq=%d), want the early event", e.at, e.seq)
	}
	if e := q.pop(); e.at != 5*ringSpan {
		t.Fatalf("pop = at=%v, want the far timer", e.at)
	}
}

// TestSchedReleasesClosures: both schedulers recycle slice capacity, so
// every vacated slot must drop its fn — a retained closure would pin the
// Proc (and transitively the whole simulated heap) it captured.
func TestSchedReleasesClosures(t *testing.T) {
	leaked := func(q []event) int {
		n := 0
		for _, e := range q[:cap(q)] {
			if e.fn != nil {
				n++
			}
		}
		return n
	}
	fill := func(q evq) {
		rng := splitmix64(7)
		var now Time
		for i := 0; i < 500; i++ {
			q.push(event{at: now + delta(&rng, "mixed"), seq: uint64(i), fn: func() {}})
			if i%3 == 0 {
				now = q.pop().at
			}
		}
		for !q.empty() {
			q.pop()
		}
	}

	h := &eventPQ{}
	fill(h)
	if n := leaked((*h)[:0]); n != 0 {
		t.Errorf("4-ary heap retained %d closures after drain", n)
	}

	s := &schedQueue{}
	fill(s)
	for i := range s.ring {
		if n := leaked(s.ring[i][:0]); n != 0 {
			t.Errorf("ring bucket %d retained %d closures after drain", i, n)
		}
	}
	if n := leaked(s.overflow[:0]); n != 0 {
		t.Errorf("overflow heap retained %d closures after drain", n)
	}
}

// TestWaitQueueReleasesProcRefs: the FIFO queues recycle their backing
// arrays, so waking must clear the stale *Proc slots.
func TestWaitQueueReleasesProcRefs(t *testing.T) {
	q := NewWaitQueue("x")
	e := NewEngine()
	for i := 0; i < 4; i++ {
		p := &Proc{eng: e, name: fmt.Sprint(i)}
		p.wakeFn = func() {}
		q.waiters = append(q.waiters, p)
	}
	q.WakeOne()
	q.WakeAll()
	for i, p := range q.waiters[:cap(q.waiters)] {
		if p != nil {
			t.Errorf("waiters slot %d still pins a proc", i)
		}
	}
}

// BenchmarkSchedPushPop measures steady-state pop+push cycles at two queue
// sizes, heap vs bucketed, across the event-shape distributions. The
// bucketed queue must be no slower than the heap on uniform loads and
// faster on dense near-horizon loads (where per-bucket heaps stay tiny
// while the global heap's depth grows with the whole population).
// BenchmarkSchedArrivalTimers models the open-loop serving pattern the
// ServeMix workload puts on the scheduler: a standing population of
// far-horizon arrival timers (workers sleeping until their next scheduled
// arrival, far beyond the ring's coverage window, so they live in the
// overflow heap) underneath a dense near-tick service churn. Each cycle
// pops the next event and re-arms — mostly near service events, one in
// sixteen a fresh far arrival timer — so the overflow heap stays populated
// while the ring does the hot work. The bucketed queue must keep its
// near-tick advantage even with the overflow heap loaded.
func BenchmarkSchedArrivalTimers(b *testing.B) {
	far := func(rng *splitmix64, now Time) Time {
		return now + ringSpan + Time(rng.next()%uint64(256*ringSpan))
	}
	near := func(rng *splitmix64, now Time) Time {
		return now + Time(rng.next()%uint64(bucketWidth))
	}
	for _, impl := range []struct {
		name string
		make func() evq
	}{
		{"heap", func() evq { return &eventPQ{} }},
		{"bucket", func() evq { return &schedQueue{} }},
	} {
		for _, timers := range []int{8, 256} {
			b.Run(fmt.Sprintf("%s/timers=%d", impl.name, timers), func(b *testing.B) {
				rng := splitmix64(7)
				q := impl.make()
				var now Time
				var seq uint64
				for i := 0; i < timers; i++ {
					seq++
					q.push(event{at: far(&rng, now), seq: seq})
				}
				for i := 0; i < 64; i++ {
					seq++
					q.push(event{at: near(&rng, now), seq: seq})
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					e := q.pop()
					now = e.at
					seq++
					if rng.next()%16 == 0 {
						q.push(event{at: far(&rng, now), seq: seq})
					} else {
						q.push(event{at: near(&rng, now), seq: seq})
					}
				}
			})
		}
	}
}

func BenchmarkSchedPushPop(b *testing.B) {
	for _, impl := range []struct {
		name string
		make func() evq
	}{
		{"heap", func() evq { return &eventPQ{} }},
		{"bucket", func() evq { return &schedQueue{} }},
	} {
		for _, hold := range []int{64, 4096} {
			for _, dist := range schedDists {
				b.Run(fmt.Sprintf("%s/hold=%d/%s", impl.name, hold, dist), func(b *testing.B) {
					rng := splitmix64(42)
					q := impl.make()
					var now Time
					var seq uint64
					for i := 0; i < hold; i++ {
						seq++
						q.push(event{at: now + delta(&rng, dist), seq: seq})
					}
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						e := q.pop()
						now = e.at
						seq++
						q.push(event{at: now + delta(&rng, dist), seq: seq})
					}
				})
			}
		}
	}
}
