// Package sim implements a deterministic, process-oriented discrete-event
// simulation engine. It is the substrate on which the distributed JVM
// (cluster nodes, network, threads) is modelled.
//
// The engine owns a virtual clock. Simulated activities are Procs: goroutines
// that run cooperatively, one at a time, under the control of the scheduler.
// A Proc advances the clock by sleeping or by using a Resource (e.g. a node
// CPU); it can block on a WaitQueue and be woken by another Proc or by an
// event closure. Events at the same virtual time fire in the order they were
// scheduled, so a run is a pure function of its inputs.
package sim

import (
	"fmt"
	"runtime"
	"sort"
	"sync/atomic"
)

// Time is virtual time in nanoseconds.
type Time int64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Milliseconds renders t as a float number of milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Seconds renders t as a float number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", t.Milliseconds())
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// event is a scheduled callback. Events run in the scheduler's context and
// must not block; they typically wake Procs or schedule further events.
type event struct {
	at  Time
	seq uint64 // tie-break: FIFO among events at the same time
	fn  func()
}

// eventPQ is a 4-ary min-heap of events ordered by (at, seq). Events are
// stored by value, so pushing and popping never heap-allocates (the boxed
// container/heap interface would allocate a *event per push and per pop).
// The 4-ary layout halves the tree depth versus a binary heap, trading a
// slightly wider child scan on sift-down for fewer cache-missing levels —
// the queue is the single hottest data structure in the simulator. It backs
// the bucketed scheduler (per-bucket heaps and the far-timer overflow in
// sched.go) and is the engine's whole queue under the `simheap` build tag.
type eventPQ []event

func (q *eventPQ) size() int    { return len(*q) }
func (q *eventPQ) empty() bool  { return len(*q) == 0 }
func (q *eventPQ) nextAt() Time { return (*q)[0].at }

func (q eventPQ) less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q *eventPQ) push(e event) {
	*q = append(*q, e)
	h := *q
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (q *eventPQ) pop() event {
	h := *q
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	// Zero the vacated slot: the slice keeps its capacity across reuse, so a
	// stale fn would pin its captured Proc (and everything the closure
	// reaches) until the slot is next overwritten.
	h[n] = event{}
	h = h[:n]
	*q = h
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if h.less(c, min) {
				min = c
			}
		}
		if !h.less(min, i) {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	return top
}

// Config tunes the engine. Today that is the bucketed scheduler's
// geometry; the zero value selects the defaults, so existing constructors
// are unchanged.
type Config struct {
	// SchedBucketBits is log2 of the calendar bucket width in nanoseconds
	// (0 = default 12, i.e. 4096 ns buckets).
	SchedBucketBits int
	// SchedRingBuckets is the calendar ring size: a power of two >= 64
	// (0 = default 256). Together with the width it sets the coverage
	// horizon beyond which timers wait in the overflow heap.
	SchedRingBuckets int
	// Under the `simheap` build tag the engine runs on the plain 4-ary
	// heap and the geometry is ignored.
}

// DefaultConfig returns the default engine configuration (the geometry the
// zero value also selects).
func DefaultConfig() Config {
	return Config{SchedBucketBits: defaultBucketBits, SchedRingBuckets: defaultRingBuckets}
}

// configure lets the heap fallback satisfy the engineQueue contract; the
// plain 4-ary heap has no geometry.
func (q *eventPQ) configure(Config) {}

// Engine is the simulation scheduler. It is not safe for concurrent use by
// multiple OS threads except through the Proc cooperation protocol.
type Engine struct {
	now     Time
	queue   engineQueue
	seq     uint64
	procs   []*Proc
	running int // procs started and not yet finished
	cur     *Proc
	stopped bool

	// sched <- struct{}{} hands control back to the scheduler loop.
	sched chan struct{}
}

// NewEngine returns an engine with the clock at zero and the default
// scheduler geometry.
func NewEngine() *Engine {
	return &Engine{sched: make(chan struct{})}
}

// NewEngineWith returns an engine with the clock at zero and the given
// configuration (zero fields fall back to the defaults, so the zero Config
// is equivalent to NewEngine).
func NewEngineWith(cfg Config) *Engine {
	e := NewEngine()
	e.queue.configure(cfg)
	return e
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Schedule registers fn to run at absolute virtual time at. Scheduling in the
// past (at < Now) is a programming error and panics.
func (e *Engine) Schedule(at Time, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule in the past: at=%v now=%v", at, e.now))
	}
	e.seq++
	e.queue.push(event{at: at, seq: e.seq, fn: fn})
}

// After registers fn to run d after the current time.
func (e *Engine) After(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	e.Schedule(e.now+d, fn)
}

// Spawn creates a Proc running body in a new goroutine. The Proc does not
// start executing until the scheduler reaches its start event. Spawn may be
// called before Run or from within a running Proc or event.
func (e *Engine) Spawn(name string, body func(*Proc)) *Proc {
	p := &Proc{
		eng:    e,
		name:   name,
		resume: make(chan struct{}),
	}
	p.wakeFn = func() { e.dispatch(p) }
	e.procs = append(e.procs, p)
	e.running++
	e.Schedule(e.now, func() {
		p.started = true
		go func() {
			<-p.resume // wait for first dispatch
			defer func() {
				p.done = true
				e.running--
				e.sched <- struct{}{}
			}()
			body(p)
		}()
		e.dispatch(p)
	})
	return p
}

// dispatch transfers control to p and waits until p yields back.
func (e *Engine) dispatch(p *Proc) {
	e.cur = p
	p.resume <- struct{}{}
	<-e.sched
	e.cur = nil
}

// Run executes events until the queue drains or Stop is called. It returns
// the final virtual time. If procs are still blocked when the queue drains,
// Run panics with a deadlock report (all runnable work is exhausted but the
// simulation has not terminated).
//
// The simulation is strictly sequential (one proc runs at a time), so Run
// pins GOMAXPROCS to 1 for its duration: scheduler↔proc channel handoffs
// become direct goroutine switches instead of cross-core futex wakeups,
// which is worth ~3× wall-clock on large runs. Inside an
// EnterParallel/LeaveParallel region the pin is skipped — it is a
// process-global knob, and concurrent engines each pinning it would both
// race and serialize the whole pool.
func (e *Engine) Run() Time {
	defer pinSerial()()
	for !e.queue.empty() && !e.stopped {
		ev := e.queue.pop()
		if ev.at < e.now {
			panic("sim: time went backwards")
		}
		e.now = ev.at
		ev.fn()
	}
	if !e.stopped && e.running > 0 {
		panic("sim: deadlock: " + e.blockedReport())
	}
	return e.now
}

// RunUntil executes events up to and including virtual time limit, then
// pauses with the clock advanced to limit. It returns true when the
// simulation has completed (the event queue drained), false when it paused
// at the limit with work still queued. Because the scheduler only ever
// transfers control between events, the pause point is a global safe point:
// no proc is mid-step, and the caller may inspect state, schedule new
// events at or after limit, and resume with another RunUntil or Run call.
// Like Run, it panics with a deadlock report if the queue drains while
// procs are still blocked.
func (e *Engine) RunUntil(limit Time) bool {
	defer pinSerial()()
	for !e.queue.empty() && !e.stopped {
		if e.queue.nextAt() > limit {
			if limit > e.now {
				e.now = limit
			}
			return false
		}
		ev := e.queue.pop()
		if ev.at < e.now {
			panic("sim: time went backwards")
		}
		e.now = ev.at
		ev.fn()
	}
	if !e.stopped && e.running > 0 {
		panic("sim: deadlock: " + e.blockedReport())
	}
	return true
}

// Idle reports whether the event queue has drained (no further work is
// scheduled). Together with a false RunUntil return it distinguishes
// "paused at the limit" from "finished before the limit".
func (e *Engine) Idle() bool { return e.queue.empty() }

// parallelRuns counts active EnterParallel regions process-wide.
var parallelRuns atomic.Int32

// EnterParallel marks the start of a region in which multiple engines run
// concurrently on separate goroutines (the experiment runner's worker
// pool). While any region is active, Run and RunUntil skip their
// GOMAXPROCS(1) pin: the pin is process-global, so concurrent engines
// toggling it would race with each other and force the whole pool onto one
// core. Each engine remains single-threaded internally, so runs stay
// deterministic either way. Pair every call with LeaveParallel.
func EnterParallel() { parallelRuns.Add(1) }

// LeaveParallel marks the end of an EnterParallel region.
func LeaveParallel() { parallelRuns.Add(-1) }

// pinSerial applies the sequential-mode GOMAXPROCS pin and returns the
// undo; inside a parallel region it is a no-op.
func pinSerial() func() {
	if parallelRuns.Load() > 0 {
		return func() {}
	}
	prev := runtime.GOMAXPROCS(1)
	return func() { runtime.GOMAXPROCS(prev) }
}

// Stop halts the scheduler after the current event completes. Blocked procs
// are abandoned (their goroutines stay parked; the process is expected to
// exit or the engine to be discarded).
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped }

func (e *Engine) blockedReport() string {
	var names []string
	for _, p := range e.procs {
		if p.started && !p.done {
			names = append(names, p.name+"@"+p.blockedAt)
		}
	}
	sort.Strings(names)
	if len(names) > 8 {
		names = append(names[:8], fmt.Sprintf("... (%d total)", len(names)))
	}
	return fmt.Sprint(names)
}

// Proc is a simulated process (a DJVM thread, a daemon, a protocol handler).
// All Proc methods must be called from the Proc's own goroutine.
type Proc struct {
	eng       *Engine
	name      string
	resume    chan struct{}
	started   bool
	done      bool
	blockedAt string

	// wakeFn is the proc's dispatch closure, built once at Spawn so that
	// Sleep and Wake — fired once per simulated event on the hot path —
	// enqueue it without allocating a fresh closure each time.
	wakeFn func()

	// CPUTime accumulates virtual time this proc spent holding a Resource
	// via Use; useful for per-thread CPU accounting.
	CPUTime Time
}

// Name returns the proc's diagnostic name.
func (p *Proc) Name() string { return p.name }

// Engine returns the owning engine.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// yield returns control to the scheduler and blocks until re-dispatched.
func (p *Proc) yield(why string) {
	p.blockedAt = why
	p.eng.sched <- struct{}{}
	<-p.resume
	p.blockedAt = ""
}

// Sleep advances the proc's local time by d without consuming any resource.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		panic("sim: negative sleep")
	}
	e := p.eng
	e.Schedule(e.now+d, p.wakeFn)
	p.yield("sleep")
}

// Block parks the proc until another party calls Wake.
func (p *Proc) Block(why string) {
	p.yield(why)
}

// Wake schedules p to resume at the current virtual time. It must be called
// from the scheduler context (an event closure) or from another running proc.
func (p *Proc) Wake() {
	p.eng.Schedule(p.eng.now, p.wakeFn)
}

// Use occupies r exclusively for a nominal duration d of work, queuing FIFO
// behind other users. It models non-preemptive execution on a serially
// shared resource such as a single-core CPU. The occupied virtual time is
// d scaled by the resource's current speed factor (slow nodes take longer
// to perform the same nominal work).
func (p *Proc) Use(r *Resource, d Time) {
	if d < 0 {
		panic("sim: negative use")
	}
	r.Acquire(p)
	// Scale after acquiring: work queued behind a busy resource runs at
	// the speed in effect when its slice actually starts, so a slowdown
	// episode beginning while the proc waited is charged correctly.
	d = r.scale(d)
	p.Sleep(d)
	r.Release(p)
	p.CPUTime += d
}

// Resource is a FIFO exclusive resource (e.g. one CPU core, a NIC).
type Resource struct {
	eng     *Engine
	name    string
	holder  *Proc
	waiters []*Proc
	// Busy accumulates total occupied virtual time.
	Busy        Time
	acquiredAt  Time
	utilization bool

	// speed is the resource's relative service rate: nominal work d
	// occupies d/speed of virtual time. 0 means the default 1.0. It is the
	// per-node clock-scaling hook the scenario engine uses to model
	// heterogeneous clusters and transient noisy-neighbor slowdowns.
	speed float64
}

// NewResource creates a named resource on e.
func NewResource(e *Engine, name string) *Resource {
	return &Resource{eng: e, name: name}
}

// SetSpeed installs a relative service rate: 1.0 is nominal, 0.5 makes the
// resource take twice the virtual time per unit of nominal work. Changing
// the speed affects subsequent Use calls only (a slice already in progress
// completes at the old rate). Non-positive factors panic.
func (r *Resource) SetSpeed(factor float64) {
	if factor <= 0 {
		panic("sim: non-positive resource speed")
	}
	r.speed = factor
}

// Speed reports the current speed factor (1.0 when never set).
func (r *Resource) Speed() float64 {
	if r.speed == 0 {
		return 1
	}
	return r.speed
}

// scale converts nominal work into occupied virtual time under the current
// speed factor, rounding to the nearest nanosecond.
func (r *Resource) scale(d Time) Time {
	if r.speed == 0 || r.speed == 1 {
		return d
	}
	return Time(float64(d)/r.speed + 0.5)
}

// Acquire takes exclusive ownership, blocking FIFO if held.
func (r *Resource) Acquire(p *Proc) {
	if r.holder == nil {
		r.holder = p
		r.acquiredAt = r.eng.now
		return
	}
	r.waiters = append(r.waiters, p)
	p.Block("acquire " + r.name)
	// On wake, ownership has been transferred to p by Release.
}

// Release relinquishes ownership and hands the resource to the first waiter.
func (r *Resource) Release(p *Proc) {
	if r.holder != p {
		panic("sim: release by non-holder of " + r.name)
	}
	r.Busy += r.eng.now - r.acquiredAt
	if len(r.waiters) == 0 {
		r.holder = nil
		return
	}
	next := r.waiters[0]
	copy(r.waiters, r.waiters[1:])
	r.waiters[len(r.waiters)-1] = nil // drop the stale Proc reference
	r.waiters = r.waiters[:len(r.waiters)-1]
	r.holder = next
	r.acquiredAt = r.eng.now
	next.Wake()
}

// Held reports whether the resource is currently owned.
func (r *Resource) Held() bool { return r.holder != nil }

// QueueLen reports the number of procs waiting for the resource.
func (r *Resource) QueueLen() int { return len(r.waiters) }

// WaitQueue is a FIFO condition queue: procs Wait, other parties WakeOne or
// WakeAll. It is the building block for locks, barriers and mailboxes.
type WaitQueue struct {
	name    string
	waiters []*Proc
}

// NewWaitQueue returns an empty queue with a diagnostic name.
func NewWaitQueue(name string) *WaitQueue { return &WaitQueue{name: name} }

// Wait parks the calling proc on the queue.
func (q *WaitQueue) Wait(p *Proc) {
	q.waiters = append(q.waiters, p)
	p.Block("wait " + q.name)
}

// WakeOne releases the oldest waiter; it reports whether one was woken.
func (q *WaitQueue) WakeOne() bool {
	if len(q.waiters) == 0 {
		return false
	}
	p := q.waiters[0]
	copy(q.waiters, q.waiters[1:])
	q.waiters[len(q.waiters)-1] = nil // drop the stale Proc reference
	q.waiters = q.waiters[:len(q.waiters)-1]
	p.Wake()
	return true
}

// WakeAll releases every waiter in FIFO order and returns how many woke.
func (q *WaitQueue) WakeAll() int {
	n := len(q.waiters)
	for i, p := range q.waiters {
		p.Wake()
		q.waiters[i] = nil // the retained backing array must not pin procs
	}
	q.waiters = q.waiters[:0]
	return n
}

// Len reports the number of parked procs.
func (q *WaitQueue) Len() int { return len(q.waiters) }
