package sim

import (
	"fmt"
	"math/bits"
)

// schedQueue is the engine's two-level bucketed event scheduler: a
// calendar-queue ring of small per-bucket heaps covering the near horizon,
// backed by a single 4-ary min-heap for far timers. The simulator's event
// population is sharply bimodal — dense bursts of wakes and short sleeps
// within microseconds of the clock, plus a thin tail of long re-arm timers —
// so the ring absorbs almost every push and pop at O(log bucket) cost on a
// handful of events, while the overflow heap only churns when a far timer
// is scheduled or migrates into coverage.
//
// Ordering is exactly the 4-ary heap's: (at, seq) with FIFO tie-break, so
// golden traces are byte-identical between the two implementations (the
// `simheap` build tag selects the plain heap as a fallback; the property
// tests in sched_test.go assert pop-order equivalence on random streams).
//
// The bucket geometry is configurable per engine (Config.SchedBucketBits /
// Config.SchedRingBuckets, defaults below): wider buckets smear a busy
// instant across fewer, deeper heaps; a longer ring trades occupancy-scan
// memory for fewer far-timer migrations. The geometry-sweep benchmark in
// sched_test.go measures the trade-off across dense/uniform/far loads.
//
// Invariants:
//   - every ring event e satisfies base <= e.at < horizon, where
//     horizon = base + span and base is the start of the cursor's bucket;
//   - every overflow event e satisfies e.at >= horizon;
//   - base never exceeds the engine clock: pop leaves base at the popped
//     event's bucket, peeking never mutates, and the engine never schedules
//     in the past — so a push always lands at or beyond base.
const (
	// defaultBucketBits sets the default bucket width: 1<<12 = 4096 ns
	// spans the engine's dense event cluster (per-access CPU charges and
	// protocol latencies are tens of ns to a few µs) without smearing one
	// busy instant across many buckets.
	defaultBucketBits = 12
	// defaultRingBuckets is the default ring size; with 4 µs buckets the
	// ring covers a ~1 ms horizon, beyond which timers wait in the
	// overflow heap.
	defaultRingBuckets = 256

	// bucketWidth and ringSpan describe the *default* geometry (kept as
	// constants for the scheduler tests' stream distributions).
	bucketWidth = Time(1) << defaultBucketBits
	ringSpan    = Time(defaultRingBuckets) << defaultBucketBits
)

type schedQueue struct {
	// Geometry, fixed at first use: bucket width 1<<bits ns, len(ring)
	// buckets (power of two, multiple of 64 so the occupancy bitmap is
	// whole words). A zero-value queue lazily adopts the defaults.
	bits uint
	mask int  // len(ring) - 1
	span Time // len(ring) << bits: ring coverage

	ring  []eventPQ
	occ   []uint64 // occupancy bitmap: bit i set iff ring[i] non-empty
	ringN int      // events currently in the ring
	n     int      // total events (ring + overflow)

	cursor  int  // bucket holding the earliest ring events
	base    Time // start time of the cursor bucket
	horizon Time // base + span: exclusive upper bound of ring coverage

	overflow eventPQ // far timers, at >= horizon
}

// configure installs a non-default geometry. It must run before any event
// is pushed (the engine calls it at construction); reconfiguring a live
// queue would remap every bucketed event.
func (q *schedQueue) configure(cfg Config) {
	if q.n != 0 || q.ring != nil {
		panic("sim: scheduler geometry configured after first use")
	}
	q.init(cfg.SchedBucketBits, cfg.SchedRingBuckets)
}

// init materializes the ring; zero arguments select the defaults.
func (q *schedQueue) init(bucketBits, buckets int) {
	if bucketBits == 0 {
		bucketBits = defaultBucketBits
	}
	if buckets == 0 {
		buckets = defaultRingBuckets
	}
	if bucketBits < 1 || bucketBits > 40 {
		panic(fmt.Sprintf("sim: bucket bits %d out of range [1, 40]", bucketBits))
	}
	if buckets < 64 || buckets&(buckets-1) != 0 {
		panic(fmt.Sprintf("sim: ring buckets %d must be a power of two >= 64", buckets))
	}
	// The coverage span buckets<<bits must fit in Time: an overflowed span
	// would pin the horizon at/below zero and route every event through
	// the overflow heap with no bucket ever draining it.
	if bucketBits+bits.Len(uint(buckets-1)) > 62 {
		panic(fmt.Sprintf("sim: geometry %d-bit buckets × %d ring overflows the coverage span", bucketBits, buckets))
	}
	q.bits = uint(bucketBits)
	q.mask = buckets - 1
	q.span = Time(buckets) << q.bits
	q.ring = make([]eventPQ, buckets)
	q.occ = make([]uint64, buckets/64)
	q.horizon = q.span // base starts at 0
}

func (q *schedQueue) size() int   { return q.n }
func (q *schedQueue) empty() bool { return q.n == 0 }

func (q *schedQueue) bucketIndex(at Time) int { return int(at>>q.bits) & q.mask }

func (q *schedQueue) push(e event) {
	if q.ring == nil {
		q.init(0, 0)
	}
	q.n++
	if e.at < q.horizon {
		q.pushRing(e)
		return
	}
	q.overflow.push(e)
}

func (q *schedQueue) pushRing(e event) {
	i := q.bucketIndex(e.at)
	q.ring[i].push(e)
	q.occ[i>>6] |= 1 << uint(i&63)
	q.ringN++
}

// nextOccupied returns the first non-empty bucket at or after `from` in ring
// order (wrapping), or -1 when the whole ring is empty.
func (q *schedQueue) nextOccupied(from int) int {
	occWords := len(q.occ)
	word, off := from>>6, uint(from&63)
	if b := q.occ[word] &^ (1<<off - 1); b != 0 {
		return word<<6 + bits.TrailingZeros64(b)
	}
	for i := 1; i < occWords; i++ {
		w := (word + i) & (occWords - 1)
		if b := q.occ[w]; b != 0 {
			return w<<6 + bits.TrailingZeros64(b)
		}
	}
	if b := q.occ[word] & (1<<off - 1); b != 0 {
		return word<<6 + bits.TrailingZeros64(b)
	}
	return -1
}

// nextAt reports the earliest event's time without mutating the queue (the
// engine peeks on every RunUntil step, possibly while paused — reshaping
// coverage here would let the coverage window slide past the paused clock
// and corrupt the mapping of later pushes). Callers check empty() first.
func (q *schedQueue) nextAt() Time {
	if q.ringN > 0 {
		// Ring events all precede the overflow (at < horizon <= overflow),
		// and ring order from the cursor is time order.
		return q.ring[q.nextOccupied(q.cursor)][0].at
	}
	return q.overflow[0].at
}

// drain migrates overflow timers that entered coverage into the ring.
func (q *schedQueue) drain() {
	for len(q.overflow) > 0 && q.overflow[0].at < q.horizon {
		q.pushRing(q.overflow.pop())
	}
}

// jump re-anchors an empty ring directly at the overflow's earliest timer,
// skipping the idle gap in O(1) instead of walking buckets.
func (q *schedQueue) jump() {
	at := q.overflow[0].at
	q.base = at &^ (Time(1)<<q.bits - 1)
	q.horizon = q.base + q.span
	q.cursor = q.bucketIndex(q.base)
	q.drain()
}

func (q *schedQueue) pop() event {
	if q.ringN == 0 {
		// Callers guarantee q.n > 0, so the overflow must hold the next
		// event; re-anchor coverage at it.
		q.jump()
	}
	for {
		if b := &q.ring[q.cursor]; len(*b) > 0 {
			e := b.pop()
			if len(*b) == 0 {
				q.occ[q.cursor>>6] &^= 1 << uint(q.cursor&63)
			}
			q.ringN--
			q.n--
			return e
		}
		// Advance coverage to the next occupied bucket — but never past the
		// point where the overflow's earliest timer would enter coverage,
		// or it would land in a bucket the cursor has already passed.
		var d int
		if idx := q.nextOccupied(q.cursor); idx >= 0 {
			d = (idx - q.cursor) & q.mask
		} else {
			q.jump()
			continue
		}
		if len(q.overflow) > 0 {
			if dOv := int((q.overflow[0].at-q.horizon)>>q.bits) + 1; dOv < d {
				d = dOv
			}
		}
		q.cursor = (q.cursor + d) & q.mask
		q.base += Time(d) << q.bits
		q.horizon += Time(d) << q.bits
		q.drain()
	}
}
