package sim

import "math/bits"

// schedQueue is the engine's two-level bucketed event scheduler: a
// calendar-queue ring of small per-bucket heaps covering the near horizon,
// backed by a single 4-ary min-heap for far timers. The simulator's event
// population is sharply bimodal — dense bursts of wakes and short sleeps
// within microseconds of the clock, plus a thin tail of long re-arm timers —
// so the ring absorbs almost every push and pop at O(log bucket) cost on a
// handful of events, while the overflow heap only churns when a far timer
// is scheduled or migrates into coverage.
//
// Ordering is exactly the 4-ary heap's: (at, seq) with FIFO tie-break, so
// golden traces are byte-identical between the two implementations (the
// `simheap` build tag selects the plain heap as a fallback; the property
// tests in sched_test.go assert pop-order equivalence on random streams).
//
// Invariants:
//   - every ring event e satisfies base <= e.at < horizon, where
//     horizon = base + span and base is the start of the cursor's bucket;
//   - every overflow event e satisfies e.at >= horizon;
//   - base never exceeds the engine clock: pop leaves base at the popped
//     event's bucket, peeking never mutates, and the engine never schedules
//     in the past — so a push always lands at or beyond base.
const (
	// bucketBits sets the bucket width: 1<<bucketBits ns per bucket. 4096 ns
	// spans the engine's dense event cluster (per-access CPU charges and
	// protocol latencies are tens of ns to a few µs) without smearing one
	// busy instant across many buckets.
	bucketBits = 12
	// ringBuckets is the ring size; with 4 µs buckets the ring covers a
	// ~1 ms horizon, beyond which timers wait in the overflow heap.
	ringBuckets = 256
	ringMask    = ringBuckets - 1
	bucketWidth = Time(1) << bucketBits
	ringSpan    = Time(ringBuckets) << bucketBits
	occWords    = ringBuckets / 64
)

type schedQueue struct {
	ring  [ringBuckets]eventPQ
	occ   [occWords]uint64 // occupancy bitmap: bit i set iff ring[i] non-empty
	ringN int              // events currently in the ring
	n     int              // total events (ring + overflow)

	cursor  int  // bucket holding the earliest ring events
	base    Time // start time of the cursor bucket
	horizon Time // base + ringSpan: exclusive upper bound of ring coverage

	overflow eventPQ // far timers, at >= horizon
}

func (q *schedQueue) size() int   { return q.n }
func (q *schedQueue) empty() bool { return q.n == 0 }

func bucketIndex(at Time) int { return int(at>>bucketBits) & ringMask }

func (q *schedQueue) push(e event) {
	q.n++
	if e.at < q.horizon {
		q.pushRing(e)
		return
	}
	q.overflow.push(e)
}

func (q *schedQueue) pushRing(e event) {
	i := bucketIndex(e.at)
	q.ring[i].push(e)
	q.occ[i>>6] |= 1 << uint(i&63)
	q.ringN++
}

// nextOccupied returns the first non-empty bucket at or after `from` in ring
// order (wrapping), or -1 when the whole ring is empty.
func (q *schedQueue) nextOccupied(from int) int {
	word, off := from>>6, uint(from&63)
	if b := q.occ[word] &^ (1<<off - 1); b != 0 {
		return word<<6 + bits.TrailingZeros64(b)
	}
	for i := 1; i < occWords; i++ {
		w := (word + i) & (occWords - 1)
		if b := q.occ[w]; b != 0 {
			return w<<6 + bits.TrailingZeros64(b)
		}
	}
	if b := q.occ[word] & (1<<off - 1); b != 0 {
		return word<<6 + bits.TrailingZeros64(b)
	}
	return -1
}

// nextAt reports the earliest event's time without mutating the queue (the
// engine peeks on every RunUntil step, possibly while paused — reshaping
// coverage here would let the coverage window slide past the paused clock
// and corrupt the mapping of later pushes). Callers check empty() first.
func (q *schedQueue) nextAt() Time {
	if q.ringN > 0 {
		// Ring events all precede the overflow (at < horizon <= overflow),
		// and ring order from the cursor is time order.
		return q.ring[q.nextOccupied(q.cursor)][0].at
	}
	return q.overflow[0].at
}

// drain migrates overflow timers that entered coverage into the ring.
func (q *schedQueue) drain() {
	for len(q.overflow) > 0 && q.overflow[0].at < q.horizon {
		q.pushRing(q.overflow.pop())
	}
}

// jump re-anchors an empty ring directly at the overflow's earliest timer,
// skipping the idle gap in O(1) instead of walking buckets.
func (q *schedQueue) jump() {
	at := q.overflow[0].at
	q.base = at &^ (bucketWidth - 1)
	q.horizon = q.base + ringSpan
	q.cursor = bucketIndex(q.base)
	q.drain()
}

func (q *schedQueue) pop() event {
	if q.ringN == 0 {
		// Callers guarantee q.n > 0, so the overflow must hold the next
		// event; re-anchor coverage at it.
		q.jump()
	}
	for {
		if b := &q.ring[q.cursor]; len(*b) > 0 {
			e := b.pop()
			if len(*b) == 0 {
				q.occ[q.cursor>>6] &^= 1 << uint(q.cursor&63)
			}
			q.ringN--
			q.n--
			return e
		}
		// Advance coverage to the next occupied bucket — but never past the
		// point where the overflow's earliest timer would enter coverage,
		// or it would land in a bucket the cursor has already passed.
		var d int
		if idx := q.nextOccupied(q.cursor); idx >= 0 {
			d = (idx - q.cursor) & ringMask
		} else {
			q.jump()
			continue
		}
		if len(q.overflow) > 0 {
			if dOv := int((q.overflow[0].at-q.horizon)>>bucketBits) + 1; dOv < d {
				d = dOv
			}
		}
		q.cursor = (q.cursor + d) & ringMask
		q.base += Time(d) << bucketBits
		q.horizon += Time(d) << bucketBits
		q.drain()
	}
}
