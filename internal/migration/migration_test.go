package migration

import (
	"testing"

	"jessica2/internal/gos"
	"jessica2/internal/heap"
	"jessica2/internal/stack"
	"jessica2/internal/sticky"
)

func kernel2() *gos.Kernel {
	cfg := gos.DefaultConfig()
	cfg.Nodes = 2
	return gos.NewKernel(cfg)
}

func TestContextBytesScalesWithStack(t *testing.T) {
	k := kernel2()
	e := NewEngine(k, DefaultConfig())
	var shallow, deep int
	k.SpawnThread(0, "t", func(th *gos.Thread) {
		m := &stack.Method{Name: "f"}
		th.Stack.Push(m, 2)
		shallow = e.ContextBytes(th)
		for i := 0; i < 10; i++ {
			th.Stack.Push(m, 4)
		}
		deep = e.ContextBytes(th)
	})
	k.Run()
	if deep <= shallow {
		t.Fatalf("deep context %d not bigger than shallow %d", deep, shallow)
	}
	want := shallow + 10*(DefaultConfig().BytesPerFrame+4*DefaultConfig().BytesPerSlot)
	if deep != want {
		t.Fatalf("deep = %d, want %d", deep, want)
	}
}

func TestMigrateColdPaysFaults(t *testing.T) {
	k := kernel2()
	e := NewEngine(k, DefaultConfig())
	cls := k.Reg.DefineClass("Rec", 128, 0)
	var post int64
	k.SpawnThread(0, "t", func(th *gos.Thread) {
		var objs []*heap.Object
		for i := 0; i < 20; i++ {
			o := th.Alloc(cls)
			th.Write(o)
			objs = append(objs, o)
		}
		out := e.MigrateSelf(th, 1, nil)
		if out.To != 1 || out.PrefetchObjs != 0 {
			t.Errorf("bad outcome: %+v", out)
		}
		before := th.Stats().Faults
		for _, o := range objs {
			th.Read(o)
		}
		post = th.Stats().Faults - before
	})
	k.Run()
	if post != 20 {
		t.Fatalf("post-migration faults = %d, want 20", post)
	}
	if len(e.History) != 1 {
		t.Fatal("history not recorded")
	}
}

func TestMigrateWithPrefetchAvoidsFaults(t *testing.T) {
	k := kernel2()
	e := NewEngine(k, DefaultConfig())
	cls := k.Reg.DefineClass("Rec", 128, 1)
	cls.SetGap(1, 1)
	var post int64
	var out Outcome
	k.SpawnThread(0, "t", func(th *gos.Thread) {
		var objs []*heap.Object
		var prev *heap.Object
		for i := 0; i < 20; i++ {
			o := th.Alloc(cls)
			th.Write(o)
			if prev != nil {
				prev.Refs[0] = o
			}
			objs = append(objs, o)
			prev = o
		}
		res := sticky.Resolve(
			[]stack.InvariantRef{{Obj: objs[0]}},
			sticky.Footprint{"Rec": 20 * 128},
			sticky.DefaultResolverConfig())
		out = e.MigrateSelf(th, 1, res)
		before := th.Stats().Faults
		for _, o := range objs {
			th.Read(o)
		}
		post = th.Stats().Faults - before
	})
	k.Run()
	if post != 0 {
		t.Fatalf("post-migration faults = %d with prefetch, want 0", post)
	}
	if out.PrefetchObjs != 20 || out.PrefetchBytes != 20*128 {
		t.Fatalf("prefetch accounting: %+v", out)
	}
	if out.TransferTime <= 0 {
		t.Fatal("no transfer time")
	}
}

func TestPrefetchTransferCostsMore(t *testing.T) {
	run := func(prefetch bool) Outcome {
		k := kernel2()
		e := NewEngine(k, DefaultConfig())
		cls := k.Reg.DefineClass("Rec", 4096, 1)
		cls.SetGap(1, 1)
		var out Outcome
		k.SpawnThread(0, "t", func(th *gos.Thread) {
			var objs []*heap.Object
			var prev *heap.Object
			for i := 0; i < 10; i++ {
				o := th.Alloc(cls)
				th.Write(o)
				if prev != nil {
					prev.Refs[0] = o
				}
				objs = append(objs, o)
				prev = o
			}
			var res *sticky.Resolution
			if prefetch {
				res = sticky.Resolve([]stack.InvariantRef{{Obj: objs[0]}},
					sticky.Footprint{"Rec": 10 * 4096}, sticky.DefaultResolverConfig())
			}
			out = e.MigrateSelf(th, 1, res)
		})
		k.Run()
		return out
	}
	cold := run(false)
	hot := run(true)
	if hot.TransferTime <= cold.TransferTime {
		t.Fatalf("prefetch transfer (%v) should exceed cold (%v)",
			hot.TransferTime, cold.TransferTime)
	}
}

func TestMigrationChargesResolutionCost(t *testing.T) {
	k := kernel2()
	e := NewEngine(k, DefaultConfig())
	cls := k.Reg.DefineClass("Rec", 64, 1)
	cls.SetGap(1, 1)
	k.SpawnThread(0, "t", func(th *gos.Thread) {
		o := th.Alloc(cls)
		th.Write(o)
		res := sticky.Resolve([]stack.InvariantRef{{Obj: o}},
			sticky.Footprint{"Rec": 64}, sticky.DefaultResolverConfig())
		if res.Cost <= 0 {
			t.Error("resolution cost missing")
		}
		out := e.MigrateSelf(th, 1, res)
		if out.ResolutionCost != res.Cost {
			t.Error("resolution cost not recorded in outcome")
		}
	})
	k.Run()
}
