// Package migration implements the thread migration engine: capturing a
// thread's context (portable Java frames), shipping it to a target node,
// optionally prefetching the resolved sticky set along with it, and
// accounting the direct cost (context + prefetch transfer) against the
// indirect cost the paper emphasizes — the remote object faults that follow
// a migration when the sticky set is left behind.
package migration

import (
	"jessica2/internal/gos"
	"jessica2/internal/heap"
	"jessica2/internal/sim"
	"jessica2/internal/sticky"
)

// Config sizes the migrated context.
type Config struct {
	// BaseContextBytes covers thread metadata (registers, monitor state).
	BaseContextBytes int
	// BytesPerFrame approximates one portable Java frame (slots + PCs).
	BytesPerFrame int
	// BytesPerSlot adds per-slot payload.
	BytesPerSlot int
}

// DefaultConfig returns frame sizes typical of the paper's Kaffe port.
func DefaultConfig() Config {
	return Config{BaseContextBytes: 256, BytesPerFrame: 96, BytesPerSlot: 8}
}

// Outcome reports one migration.
type Outcome struct {
	Thread        int
	From, To      int
	ContextBytes  int
	PrefetchBytes int64
	PrefetchObjs  int
	// TransferTime is the virtual time the thread was blocked migrating.
	TransferTime sim.Time
	// ResolutionCost is the CPU charged for sticky-set resolution.
	ResolutionCost sim.Time
}

// Engine performs migrations on a kernel.
type Engine struct {
	k   *gos.Kernel
	cfg Config

	// History records completed migrations in order.
	History []Outcome
}

// NewEngine returns a migration engine for k.
func NewEngine(k *gos.Kernel, cfg Config) *Engine {
	if cfg.BytesPerFrame <= 0 {
		cfg = DefaultConfig()
	}
	return &Engine{k: k, cfg: cfg}
}

// ContextBytes estimates the direct context size for t from its live shadow
// stack.
func (e *Engine) ContextBytes(t *gos.Thread) int {
	n := e.cfg.BaseContextBytes
	depth := t.Stack.Depth()
	n += depth * e.cfg.BytesPerFrame
	for i := 0; i < depth; i++ {
		n += t.Stack.FrameAt(i).NumSlots() * e.cfg.BytesPerSlot
	}
	return n
}

// MigrateSelf moves the calling thread to the target node. It must be
// invoked from the thread's own body at a safe point (interval boundary).
// If res is non-nil, the resolved sticky set is prefetched with the thread:
// its bytes ride in the migration message and its objects are installed
// valid in the target node's cache, eliminating the predictable remote
// faults. Returns the recorded outcome.
func (e *Engine) MigrateSelf(t *gos.Thread, target int, res *sticky.Resolution) Outcome {
	out := Outcome{
		Thread: t.ID(),
		From:   t.Node().ID(),
		To:     target,
	}
	out.ContextBytes = e.ContextBytes(t)
	payload := out.ContextBytes
	var objs []*heap.Object
	if res != nil {
		out.PrefetchBytes = res.Bytes
		out.PrefetchObjs = len(res.Objects)
		out.ResolutionCost = res.Cost
		t.Charge(res.Cost)
		payload += int(res.Bytes)
		objs = res.Objects
	}
	start := t.Kernel().Eng.Now()
	t.MoveTo(target, payload)
	if len(objs) > 0 {
		e.k.InstallPrefetched(target, objs)
	}
	out.TransferTime = t.Kernel().Eng.Now() - start
	e.History = append(e.History, out)
	return out
}
