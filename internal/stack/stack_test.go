package stack

import (
	"testing"

	"jessica2/internal/heap"
)

func testObjects(n int) []*heap.Object {
	reg := heap.NewRegistry()
	c := reg.DefineClass("T", 16, 0)
	out := make([]*heap.Object, n)
	for i := range out {
		out[i] = reg.Alloc(c, 0)
	}
	return out
}

func TestPushPopBasics(t *testing.T) {
	st := NewThreadStack()
	m := &Method{Name: "f"}
	f1 := st.Push(m, 2)
	if st.Depth() != 1 || st.Top() != f1 || f1.Depth() != 0 {
		t.Fatal("push bookkeeping wrong")
	}
	f2 := st.Push(m, 1)
	if st.Depth() != 2 || st.Top() != f2 || f2.Depth() != 1 {
		t.Fatal("second push wrong")
	}
	st.Pop()
	if st.Top() != f1 {
		t.Fatal("pop wrong")
	}
	st.Pop()
	if st.Depth() != 0 || st.Top() != nil {
		t.Fatal("empty stack wrong")
	}
}

func TestPopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("pop of empty stack did not panic")
		}
	}()
	NewThreadStack().Pop()
}

func TestPrologueClearsVisited(t *testing.T) {
	st := NewThreadStack()
	m := &Method{Name: "f"}
	f := st.Push(m, 1)
	f.visited = true
	st.Pop()
	// Reused frame from the pool must have a cleared visited flag (the
	// JIT clears it in every method prologue).
	g := st.Push(m, 1)
	if g.Visited() {
		t.Fatal("reused frame kept visited flag")
	}
}

func TestFramePoolClearsSlots(t *testing.T) {
	objs := testObjects(1)
	st := NewThreadStack()
	m := &Method{Name: "f"}
	f := st.Push(m, 3)
	f.SetRef(1, objs[0])
	st.Pop()
	g := st.Push(m, 3)
	for i := 0; i < 3; i++ {
		if g.Ref(i) != nil {
			t.Fatal("reused frame kept stale refs")
		}
	}
}

func TestIncarnationsUnique(t *testing.T) {
	st := NewThreadStack()
	m := &Method{Name: "f"}
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		f := st.Push(m, 0)
		if seen[f.Inc()] {
			t.Fatal("incarnation reused")
		}
		seen[f.Inc()] = true
		st.Pop()
	}
}

// TestInvariantMining: a ref that persists across samples becomes an
// invariant; a ref that changes is dropped.
func TestInvariantMining(t *testing.T) {
	objs := testObjects(3)
	st := NewThreadStack()
	m := &Method{Name: "run"}
	f := st.Push(m, 2)
	f.SetRef(0, objs[0]) // will stay
	f.SetRef(1, objs[1]) // will change

	sp := NewSampler(Config{Lazy: true, MinSurvived: 1})
	sp.SampleStack(st) // first visit: raw
	if len(sp.Invariants(st)) != 0 {
		t.Fatal("invariants before any comparison")
	}
	f.SetRef(1, objs[2]) // mutate slot 1
	sp.SampleStack(st)   // convert + compare
	inv := sp.Invariants(st)
	if len(inv) != 1 {
		t.Fatalf("invariants = %d, want 1", len(inv))
	}
	if inv[0].Obj != objs[0] || inv[0].Slot != 0 {
		t.Fatalf("wrong invariant: %+v", inv[0])
	}
	// Another unchanged round strengthens survival.
	sp.SampleStack(st)
	inv = sp.Invariants(st)
	if len(inv) != 1 || inv[0].Survived < 2 {
		t.Fatalf("survival not accumulating: %+v", inv)
	}
}

// TestLazyDiscardsTransientFrames: frames popped before a second visit are
// never extracted under lazy sampling (the optimization's whole point).
func TestLazyDiscardsTransientFrames(t *testing.T) {
	objs := testObjects(1)
	st := NewThreadStack()
	mStable := &Method{Name: "stable"}
	mTemp := &Method{Name: "temp"}
	st.Push(mStable, 1).SetRef(0, objs[0])

	sp := NewSampler(Config{Lazy: true})
	sp.SampleStack(st)

	var extracted int
	for i := 0; i < 5; i++ {
		tf := st.Push(mTemp, 4)
		tf.SetRef(2, objs[0])
		stats := sp.SampleStack(st)
		extracted += stats.SlotsExtracted
		st.Pop()
	}
	// The stable frame is extracted once (second visit); the temp frames
	// between samples are raw-captured but never extracted.
	if extracted > 1+4 {
		t.Fatalf("extracted %d slots; lazy mode should skip transient frames", extracted)
	}
	stats := sp.SampleStack(st)
	if stats.SamplesDropped == 0 {
		t.Fatal("no transient samples dropped")
	}
}

// TestImmediateExtractsEveryFirstVisit contrasts the immediate mode.
func TestImmediateExtractsEveryFirstVisit(t *testing.T) {
	st := NewThreadStack()
	m := &Method{Name: "f"}
	st.Push(m, 4)
	sp := NewSampler(Config{Lazy: false})
	stats := sp.SampleStack(st)
	if stats.SlotsExtracted != 4 {
		t.Fatalf("immediate extraction got %d slots, want 4", stats.SlotsExtracted)
	}
	if stats.RawCaptured != 0 {
		t.Fatal("immediate mode must not raw-capture")
	}
}

// TestLazyAndImmediateAgreeOnInvariants: the two modes differ in cost, not
// in the final invariant set.
func TestLazyAndImmediateAgreeOnInvariants(t *testing.T) {
	objs := testObjects(4)
	run := func(lazy bool) []*heap.Object {
		st := NewThreadStack()
		m := &Method{Name: "run"}
		f := st.Push(m, 3)
		f.SetRef(0, objs[0])
		f.SetRef(1, objs[1])
		f.SetRef(2, objs[2])
		sp := NewSampler(Config{Lazy: lazy})
		sp.SampleStack(st)
		f.SetRef(1, objs[3]) // slot 1 varies
		sp.SampleStack(st)
		sp.SampleStack(st)
		var out []*heap.Object
		for _, iv := range sp.Invariants(st) {
			out = append(out, iv.Obj)
		}
		return out
	}
	a, b := run(true), run(false)
	if len(a) != len(b) {
		t.Fatalf("lazy %d invariants vs immediate %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("modes disagree on invariants")
		}
	}
}

// TestTwoPhaseScanStopsAtVisited: frames below the first visited frame are
// not walked again ("we do not need to trace down further").
func TestTwoPhaseScanStopsAtVisited(t *testing.T) {
	st := NewThreadStack()
	m := &Method{Name: "f"}
	for i := 0; i < 5; i++ {
		st.Push(m, 1)
	}
	sp := NewSampler(Config{Lazy: true})
	s1 := sp.SampleStack(st) // all 5 frames walked
	if s1.FramesWalked != 5 {
		t.Fatalf("first sample walked %d frames", s1.FramesWalked)
	}
	st.Push(m, 1) // one new transient
	s2 := sp.SampleStack(st)
	// Walks the 1 new frame + the first visited frame; not the 4 below.
	if s2.FramesWalked > 2 {
		t.Fatalf("second sample walked %d frames, want <= 2", s2.FramesWalked)
	}
}

// TestFig7Scenario walks the paper's Fig. 7 lazy comparison sequence.
func TestFig7Scenario(t *testing.T) {
	objs := testObjects(4)
	st := NewThreadStack()
	mA := &Method{Name: "A"}
	mB := &Method{Name: "B"}
	mC := &Method{Name: "C"}
	sp := NewSampler(Config{Lazy: true})

	// State 1: frames A, B, C — all raw.
	fA := st.Push(mA, 2)
	fA.SetRef(0, objs[0])
	fA.SetRef(1, objs[1])
	fB := st.Push(mB, 1)
	fB.SetRef(0, objs[2])
	st.Push(mC, 1)
	s := sp.SampleStack(st)
	if s.RawCaptured != 4 || s.SlotsExtracted != 0 {
		t.Fatalf("state 1: raw=%d extracted=%d", s.RawCaptured, s.SlotsExtracted)
	}

	// State 2: C gone, D on top. B is compared; A untouched (raw).
	st.Pop() // C
	st.Push(&Method{Name: "D"}, 1)
	s = sp.SampleStack(st)
	if s.SlotsExtracted != 1 { // B's single slot converted
		t.Fatalf("state 2: extracted=%d, want 1 (frame B)", s.SlotsExtracted)
	}
	if s.SlotsCompared != 1 {
		t.Fatalf("state 2: compared=%d, want 1", s.SlotsCompared)
	}

	// State 3: B and D gone; E, F on top. A visited for the second time:
	// its raw sample is processed and compared.
	st.Pop() // D
	st.Pop() // B
	st.Push(&Method{Name: "E"}, 1)
	st.Push(&Method{Name: "F"}, 1)
	s = sp.SampleStack(st)
	if s.SlotsExtracted != 2 {
		t.Fatalf("state 3: extracted=%d, want 2 (frame A)", s.SlotsExtracted)
	}
	if s.SlotsCompared != 2 {
		t.Fatalf("state 3: compared=%d, want 2", s.SlotsCompared)
	}

	// A's refs are invariant now.
	st.Pop()
	st.Pop()
	inv := sp.Invariants(st)
	if len(inv) != 2 {
		t.Fatalf("invariants = %d, want 2 (frame A slots)", len(inv))
	}
}

// TestProbingShrinksOldSample: non-invariant slots are removed, so later
// comparisons are cheaper ("the old sample is usually much smaller").
func TestProbingShrinksOldSample(t *testing.T) {
	objs := testObjects(5)
	st := NewThreadStack()
	m := &Method{Name: "run"}
	f := st.Push(m, 4)
	for i := 0; i < 4; i++ {
		f.SetRef(i, objs[i])
	}
	sp := NewSampler(Config{Lazy: true})
	sp.SampleStack(st)
	// Change 3 of 4 slots.
	f.SetRef(0, objs[4])
	f.SetRef(1, nil)
	f.ClearSlot(2)
	s2 := sp.SampleStack(st) // extraction + compare 4
	if s2.SlotsCompared != 4 {
		t.Fatalf("compared %d, want 4", s2.SlotsCompared)
	}
	s3 := sp.SampleStack(st) // only the surviving slot probed
	if s3.SlotsCompared != 1 {
		t.Fatalf("compared %d after shrink, want 1", s3.SlotsCompared)
	}
}

func TestInvariantsTopmostFirstAndDeduped(t *testing.T) {
	objs := testObjects(2)
	st := NewThreadStack()
	mBot := &Method{Name: "bottom"}
	mTop := &Method{Name: "top"}
	b := st.Push(mBot, 1)
	b.SetRef(0, objs[0])
	tp := st.Push(mTop, 2)
	tp.SetRef(0, objs[1])
	tp.SetRef(1, objs[0]) // duplicate of the bottom frame's ref

	sp := NewSampler(Config{Lazy: false})
	sp.SampleStack(st)
	sp.SampleStack(st)
	// Force the bottom frame to be compared too: pop the top frame and
	// sample twice more.
	st.Pop()
	sp.SampleStack(st)
	st.Push(mTop, 2)
	inv := sp.Invariants(st)
	if len(inv) != 1 {
		t.Fatalf("invariants = %d, want 1 (bottom only; top re-pushed frame is fresh)", len(inv))
	}
	if inv[0].Obj != objs[0] {
		t.Fatal("wrong invariant")
	}
}

func TestMinSurvivedThreshold(t *testing.T) {
	objs := testObjects(1)
	st := NewThreadStack()
	f := st.Push(&Method{Name: "f"}, 1)
	f.SetRef(0, objs[0])
	sp := NewSampler(Config{Lazy: false, MinSurvived: 3})
	sp.SampleStack(st)
	sp.SampleStack(st) // survived 1
	sp.SampleStack(st) // survived 2
	if len(sp.Invariants(st)) != 0 {
		t.Fatal("invariant below threshold")
	}
	sp.SampleStack(st) // survived 3
	if len(sp.Invariants(st)) != 1 {
		t.Fatal("invariant at threshold missing")
	}
}

func TestEmptyStackSample(t *testing.T) {
	st := NewThreadStack()
	sp := NewSampler(DefaultConfig())
	s := sp.SampleStack(st)
	if s.FramesWalked != 0 || sp.NumSamples() != 0 {
		t.Fatal("empty stack sampling should be a no-op")
	}
}

func TestStatsAccumulate(t *testing.T) {
	st := NewThreadStack()
	st.Push(&Method{Name: "f"}, 2)
	sp := NewSampler(Config{Lazy: true})
	sp.SampleStack(st)
	sp.SampleStack(st)
	if sp.Total.RawCaptured != 2 || sp.Total.SlotsExtracted != 2 {
		t.Fatalf("total stats wrong: %+v", sp.Total)
	}
}
