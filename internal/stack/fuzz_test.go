package stack

import (
	"testing"

	"jessica2/internal/heap"
)

// FuzzSamplerMiner interprets the fuzz input as an op stream over a shadow
// stack and the adaptive sampler — pushes, pops, slot stores/clears and
// sampler activations in adversarial orders — and asserts the sampler and
// the invariant miner never panic and never report impossible invariants.
func FuzzSamplerMiner(f *testing.F) {
	f.Add([]byte{}, true)
	// push, setref, sample, sample (compare), mine.
	f.Add([]byte{0x03, 0x21, 0x40, 0x40}, true)
	// Deep push/pop churn with interleaved samples, immediate extraction.
	f.Add([]byte{0x02, 0x02, 0x40, 0x01, 0x40, 0x01, 0x02, 0x40, 0x21, 0x40}, false)
	// Slot clears between comparisons kill invariants.
	f.Add([]byte{0x03, 0x21, 0x40, 0x31, 0x40, 0x40}, true)

	f.Fuzz(func(t *testing.T, data []byte, lazy bool) {
		st := NewThreadStack()
		sp := NewSampler(Config{Lazy: lazy, MinSurvived: 1})

		// A small fixed object pool; slot refs index into it.
		objs := make([]*heap.Object, 8)
		cls := &heap.Class{Name: "Fuzz", Size: 8}
		for i := range objs {
			objs[i] = &heap.Object{ID: heap.ObjectID(i + 1), Class: cls}
		}
		methods := []*Method{{Name: "a"}, {Name: "b"}, {Name: "c"}}

		for _, b := range data {
			op, arg := b>>4, int(b&0x0f)
			switch op % 5 {
			case 0: // push a frame with arg%5 slots
				if st.Depth() < 64 {
					st.Push(methods[arg%len(methods)], arg%5)
				}
			case 1: // pop
				if st.Depth() > 0 {
					st.Pop()
				}
			case 2: // store a ref into a slot of the top frame
				if f := st.Top(); f != nil && f.NumSlots() > 0 {
					f.SetRef(arg%f.NumSlots(), objs[arg%len(objs)])
				}
			case 3: // clear a slot of the top frame
				if f := st.Top(); f != nil && f.NumSlots() > 0 {
					f.ClearSlot(arg % f.NumSlots())
				}
			case 4: // sampler activation + mine
				stats := sp.SampleStack(st)
				if stats.FramesWalked < 0 || stats.SlotsExtracted < 0 ||
					stats.SlotsCompared < 0 || stats.RawCaptured < 0 {
					t.Fatalf("negative sampler stats: %+v", stats)
				}
				// After an activation, retained samples never exceed the
				// live frame count (popped frames' samples are discarded).
				if sp.NumSamples() > st.Depth() {
					t.Fatalf("samples %d > live frames %d", sp.NumSamples(), st.Depth())
				}
				checkInvariants(t, sp, st, objs)
			}
		}
		checkInvariants(t, sp, st, objs)
	})
}

// checkInvariants asserts every mined invariant is possible: a non-nil
// pooled object, at a live depth, in a valid slot, with positive survival,
// and no object reported twice.
func checkInvariants(t *testing.T, sp *Sampler, st *ThreadStack, objs []*heap.Object) {
	t.Helper()
	seen := make(map[*heap.Object]bool)
	for _, ref := range sp.Invariants(st) {
		if ref.Obj == nil {
			t.Fatal("nil invariant object")
		}
		if seen[ref.Obj] {
			t.Fatalf("object %d reported twice", ref.Obj.ID)
		}
		seen[ref.Obj] = true
		if ref.Depth < 0 || ref.Depth >= st.Depth() {
			t.Fatalf("invariant at depth %d of a %d-deep stack", ref.Depth, st.Depth())
		}
		f := st.FrameAt(ref.Depth)
		if ref.Slot < 0 || ref.Slot >= f.NumSlots() {
			t.Fatalf("invariant slot %d of %d", ref.Slot, f.NumSlots())
		}
		if ref.Survived < 1 {
			t.Fatalf("invariant survived %d comparisons", ref.Survived)
		}
		// A slot that survived a comparison still holds the same ref
		// unless mutated after the last sample; it must at least be one
		// of the pool objects.
		found := false
		for _, o := range objs {
			if o == ref.Obj {
				found = true
			}
		}
		if !found {
			t.Fatalf("invariant references an unknown object %d", ref.Obj.ID)
		}
	}
}
