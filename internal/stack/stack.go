// Package stack models thread stacks of the distributed JVM and implements
// the paper's adaptive stack sampling algorithm (Fig. 8): timer-activated
// sampling with two-phase scanning (top-down to the first visited frame,
// bottom-up raw capture), lazy frame-content extraction, and sample
// comparison by probing. Its output is the set of stack-invariant object
// references — the entry points from which the sticky-set resolver
// prefetches.
//
// The JVM specification defines the stack machine only conceptually; Kaffe
// (the paper's base JVM) maps each Java frame slot to a unique native
// address, which is why frame extraction is possible at all. Our shadow
// stack plays that role: workloads push frames on method entry, store
// object references into slots, and pop on return, so the sampler sees the
// same structure a native stack walk would.
package stack

import (
	"sort"

	"jessica2/internal/heap"
)

// Method identifies a Java method for frame bookkeeping.
type Method struct {
	Name string
}

// Frame is one shadow Java frame. The visited flag mirrors the paper's
// JIT-maintained flag: it is cleared in every method prologue (i.e. when
// the frame is pushed) and set by the sampler.
type Frame struct {
	Method  *Method
	inc     uint64 // incarnation: unique per push, identifies frame instances
	depth   int
	visited bool
	slots   []*heap.Object // nil entries are non-reference or empty slots
}

// Inc returns the frame's incarnation id.
func (f *Frame) Inc() uint64 { return f.inc }

// Depth returns the frame's position from the stack bottom (0-based).
func (f *Frame) Depth() int { return f.depth }

// Visited reports the sampler's visited flag.
func (f *Frame) Visited() bool { return f.visited }

// NumSlots returns the frame's slot count.
func (f *Frame) NumSlots() int { return len(f.slots) }

// SetRef stores an object reference into slot i.
func (f *Frame) SetRef(i int, o *heap.Object) { f.slots[i] = o }

// ClearSlot empties slot i.
func (f *Frame) ClearSlot(i int) { f.slots[i] = nil }

// Ref returns the reference in slot i (nil for non-reference content).
func (f *Frame) Ref(i int) *heap.Object { return f.slots[i] }

// ThreadStack is one thread's shadow stack. Popped frames are pooled and
// reused by later pushes (workloads like Barnes-Hut push millions of
// transient recursion frames); incarnation ids keep reused frames distinct
// for the sampler.
type ThreadStack struct {
	frames  []*Frame
	nextInc uint64
	pool    []*Frame

	// Pushes counts total frame pushes (workload realism diagnostics).
	Pushes int64
}

// NewThreadStack returns an empty stack.
func NewThreadStack() *ThreadStack { return &ThreadStack{} }

// Push enters a method with nslots slots; the visited flag starts cleared,
// as the JIT-inserted prologue guarantees.
func (s *ThreadStack) Push(m *Method, nslots int) *Frame {
	s.nextInc++
	var f *Frame
	if n := len(s.pool); n > 0 {
		f = s.pool[n-1]
		s.pool = s.pool[:n-1]
		f.Method = m
		f.visited = false
		if cap(f.slots) >= nslots {
			f.slots = f.slots[:nslots]
			for i := range f.slots {
				f.slots[i] = nil
			}
		} else {
			f.slots = make([]*heap.Object, nslots)
		}
	} else {
		f = &Frame{slots: make([]*heap.Object, nslots)}
		f.Method = m
	}
	f.inc = s.nextInc
	f.depth = len(s.frames)
	s.frames = append(s.frames, f)
	s.Pushes++
	return f
}

// Pop leaves the current method; the frame returns to the pool.
func (s *ThreadStack) Pop() {
	if len(s.frames) == 0 {
		panic("stack: pop of empty stack")
	}
	f := s.frames[len(s.frames)-1]
	s.frames[len(s.frames)-1] = nil
	s.frames = s.frames[:len(s.frames)-1]
	if len(s.pool) < 256 {
		s.pool = append(s.pool, f)
	}
}

// Depth returns the current frame count.
func (s *ThreadStack) Depth() int { return len(s.frames) }

// Top returns the topmost frame, or nil.
func (s *ThreadStack) Top() *Frame {
	if len(s.frames) == 0 {
		return nil
	}
	return s.frames[len(s.frames)-1]
}

// FrameAt returns the frame at depth i (0 = bottom).
func (s *ThreadStack) FrameAt(i int) *Frame { return s.frames[i] }

// --- sampler ---------------------------------------------------------------

// slotEntry is one surviving slot of a processed sample.
type slotEntry struct {
	idx      int
	ref      *heap.Object
	survived int // comparisons this slot has survived
}

// frameSample is the stored sample for one frame incarnation. Raw samples
// hold an unprocessed snapshot (cheap memcpy); processed samples hold only
// the surviving reference slots ("non-reference and non-invariant slots
// have been discarded in previous samples").
type frameSample struct {
	raw      bool
	rawSlots []*heap.Object
	slots    []slotEntry
	compared int
}

// Config tunes the sampler.
type Config struct {
	// Lazy enables lazy extraction: first visits store a raw snapshot and
	// content extraction is deferred to the second visit. When false,
	// extraction is immediate (the paper's comparison baseline).
	Lazy bool
	// MinSurvived is how many comparisons a slot must survive to count as
	// invariant (the paper needs at least one).
	MinSurvived int
}

// DefaultConfig returns lazy extraction with single-survival invariants.
func DefaultConfig() Config { return Config{Lazy: true, MinSurvived: 1} }

// Stats quantifies one SampleStack call so the profiler can charge CPU:
// raw captures are cheap copies, extractions require the reflection /
// layout query (GET-METHOD-BY-PC), comparisons probe old slots into the
// new frame.
type Stats struct {
	FramesWalked   int
	RawCaptured    int // slots captured raw
	SlotsExtracted int // slots converted/extracted (expensive path)
	SlotsCompared  int // probing comparisons
	SamplesDropped int // discarded samples of popped frames
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.FramesWalked += other.FramesWalked
	s.RawCaptured += other.RawCaptured
	s.SlotsExtracted += other.SlotsExtracted
	s.SlotsCompared += other.SlotsCompared
	s.SamplesDropped += other.SamplesDropped
}

// Sampler holds per-thread sampling state across timer activations.
type Sampler struct {
	cfg     Config
	samples map[uint64]*frameSample
	// Total accumulates stats over the sampler's lifetime.
	Total Stats
}

// NewSampler returns a sampler with the given config.
func NewSampler(cfg Config) *Sampler {
	if cfg.MinSurvived <= 0 {
		cfg.MinSurvived = 1
	}
	return &Sampler{cfg: cfg, samples: make(map[uint64]*frameSample)}
}

// SampleStack runs one activation of SAMPLE-STACK (Fig. 8) over st.
func (sp *Sampler) SampleStack(st *ThreadStack) Stats {
	var stats Stats
	n := st.Depth()
	// Top-down phase: walk from the top until the first visited frame.
	i := n - 1
	for i >= 0 && !st.frames[i].visited {
		stats.FramesWalked++
		i--
	}
	if i >= 0 {
		f := st.frames[i]
		stats.FramesWalked++
		smp := sp.samples[f.inc]
		if smp == nil {
			// Defensive: a visited frame always has a sample in-protocol;
			// recover by treating it as a first visit.
			smp = sp.captureSample(f, &stats)
			sp.samples[f.inc] = smp
		} else {
			if smp.raw {
				sp.convertRaw(smp, &stats)
			}
			sp.compareByProbing(smp, f, &stats)
		}
	}
	// Bottom-up phase: first-visit every frame above i, capturing samples
	// and setting visited flags.
	for j := i + 1; j < n; j++ {
		f := st.frames[j]
		f.visited = true
		sp.samples[f.inc] = sp.captureSample(f, &stats)
	}
	// Discard samples of frames that were popped ("if it is not visited
	// for the second time, it will be discarded on the next sampling").
	if len(sp.samples) > n {
		live := make(map[uint64]struct{}, n)
		for _, f := range st.frames {
			live[f.inc] = struct{}{}
		}
		for inc := range sp.samples {
			if _, ok := live[inc]; !ok {
				delete(sp.samples, inc)
				stats.SamplesDropped++
			}
		}
	}
	sp.Total.Add(stats)
	return stats
}

// captureSample takes a first-visit sample: raw under lazy extraction,
// fully extracted otherwise.
func (sp *Sampler) captureSample(f *Frame, stats *Stats) *frameSample {
	if sp.cfg.Lazy {
		smp := &frameSample{raw: true, rawSlots: make([]*heap.Object, len(f.slots))}
		copy(smp.rawSlots, f.slots)
		stats.RawCaptured += len(f.slots)
		return smp
	}
	smp := &frameSample{}
	for idx, ref := range f.slots {
		stats.SlotsExtracted++
		if ref != nil {
			smp.slots = append(smp.slots, slotEntry{idx: idx, ref: ref})
		}
	}
	return smp
}

// convertRaw performs CONVERT-RAW-SAMPLE: extract frame content (find the
// method by PC, decode the slot layout, check each slot against the GC's
// valid-pointer test) from the stored raw snapshot.
func (sp *Sampler) convertRaw(smp *frameSample, stats *Stats) {
	for idx, ref := range smp.rawSlots {
		stats.SlotsExtracted++
		if ref != nil {
			smp.slots = append(smp.slots, slotEntry{idx: idx, ref: ref})
		}
	}
	smp.rawSlots = nil
	smp.raw = false
}

// compareByProbing implements COMPARE-BY-PROBING: probe each slot remaining
// in the old sample into the live frame; slots whose reference changed are
// removed, survivors accumulate invariance evidence.
func (sp *Sampler) compareByProbing(smp *frameSample, f *Frame, stats *Stats) {
	keep := smp.slots[:0]
	for _, e := range smp.slots {
		stats.SlotsCompared++
		var cur *heap.Object
		if e.idx < len(f.slots) {
			cur = f.slots[e.idx]
		}
		if cur != nil && cur == e.ref {
			e.survived++
			keep = append(keep, e)
		}
	}
	smp.slots = keep
	smp.compared++
}

// InvariantRef is one mined stack-invariant reference with its provenance.
type InvariantRef struct {
	Obj      *heap.Object
	Depth    int // frame depth (0 = bottom)
	Slot     int
	Survived int
}

// Invariants mines the current invariant set for st: references that
// survived at least MinSurvived comparisons, ordered topmost-frame first
// (the resolution heuristic "always start from topmost stack-invariants
// because they tend to be more recent"). Duplicated objects are reported
// once, at their topmost occurrence.
func (sp *Sampler) Invariants(st *ThreadStack) []InvariantRef {
	var out []InvariantRef
	seen := make(map[*heap.Object]struct{})
	for i := st.Depth() - 1; i >= 0; i-- {
		f := st.frames[i]
		smp := sp.samples[f.inc]
		if smp == nil || smp.raw || smp.compared == 0 {
			continue
		}
		// Slots in stored order; sort by slot index for determinism.
		entries := append([]slotEntry(nil), smp.slots...)
		sort.Slice(entries, func(a, b int) bool { return entries[a].idx < entries[b].idx })
		for _, e := range entries {
			if e.survived < sp.cfg.MinSurvived {
				continue
			}
			if _, dup := seen[e.ref]; dup {
				continue
			}
			seen[e.ref] = struct{}{}
			out = append(out, InvariantRef{Obj: e.ref, Depth: f.depth, Slot: e.idx, Survived: e.survived})
		}
	}
	return out
}

// NumSamples reports retained samples (live frames with stored samples).
func (sp *Sampler) NumSamples() int { return len(sp.samples) }
