package core

import (
	"testing"

	"jessica2/internal/gos"
	"jessica2/internal/heap"
	"jessica2/internal/sampling"
	"jessica2/internal/sim"
	"jessica2/internal/stack"
	"jessica2/internal/sticky"
	"jessica2/internal/workload"
)

func TestStackCostsCost(t *testing.T) {
	c := DefaultStackCosts()
	zero := c.Cost(stack.Stats{})
	if zero != c.Activation {
		t.Fatalf("empty sample cost = %v, want activation only", zero)
	}
	full := c.Cost(stack.Stats{FramesWalked: 3, RawCaptured: 4, SlotsExtracted: 5, SlotsCompared: 6})
	want := c.Activation + 3*c.WalkPerFrame + 4*c.RawPerSlot + 5*c.ExtractPerSlot + 6*c.ComparePerSlot
	if full != want {
		t.Fatalf("cost = %v, want %v", full, want)
	}
}

func TestStackProfilerChargesCPU(t *testing.T) {
	cfg := gos.DefaultConfig()
	cfg.Nodes = 2
	k := gos.NewKernel(cfg)
	s := workload.NewSynthetic()
	s.Intervals = 4
	s.AccessesPerInterval = 1024
	s.AccessCost = 2 * sim.Microsecond
	s.Launch(k, workload.Params{Threads: 2, Seed: 1})
	p := Attach(k, Config{Stack: &StackConfig{Gap: 1 * sim.Millisecond, Lazy: true, MinSurvived: 1, Costs: DefaultStackCosts()}})
	k.Run()
	if p.StackActivations == 0 {
		t.Fatal("stack profiler never activated")
	}
	if p.StackCPU <= 0 {
		t.Fatal("no CPU charged for stack sampling")
	}
}

func TestStackProfilerMinesInvariantsMidRun(t *testing.T) {
	cfg := gos.DefaultConfig()
	cfg.Nodes = 1
	k := gos.NewKernel(cfg)
	s := workload.NewSynthetic()
	s.Intervals = 6
	s.AccessesPerInterval = 2048
	s.AccessCost = 4 * sim.Microsecond
	s.Launch(k, workload.Params{Threads: 1, Seed: 2})
	p := Attach(k, Config{Stack: &StackConfig{Gap: 2 * sim.Millisecond, Lazy: true, MinSurvived: 1, Costs: DefaultStackCosts()}})

	// Check invariants from inside the run: hook interval closes.
	found := false
	k.AddObserver(invariantChecker{p: p, found: &found})
	k.Run()
	if !found {
		t.Fatal("no stack invariants mined during the run")
	}
}

type invariantChecker struct {
	p     *Profiler
	found *bool
}

func (ic invariantChecker) OnAccess(t *gos.Thread, o *heap.Object, w, f bool) {}

func (ic invariantChecker) OnIntervalClose(t *gos.Thread) {
	if len(ic.p.Invariants(t.ID())) > 0 {
		*ic.found = true
	}
}

func TestAdaptiveDaemonConvergesAndResamples(t *testing.T) {
	cfg := gos.DefaultConfig()
	cfg.Nodes = 4
	cfg.Tracking = gos.TrackingSampled
	k := gos.NewKernel(cfg)
	s := workload.NewSynthetic()
	s.Intervals = 24
	s.ObjectsPerThread = 512
	s.AccessesPerInterval = 4096
	s.AccessCost = 2 * sim.Microsecond
	s.Launch(k, workload.Params{Threads: 8, Seed: 3})
	ac := DefaultAdaptiveConfig()
	ac.Window = 10 * sim.Millisecond
	p := Attach(k, Config{Adaptive: &ac})
	k.Run()
	if len(p.RateTrace) == 0 {
		t.Fatal("controller made no decisions")
	}
	// Rates must be monotone non-decreasing.
	last := sampling.Rate(0)
	raised := false
	for _, rc := range p.RateTrace {
		if rc.To < rc.From {
			t.Fatalf("rate went down: %+v", rc)
		}
		if rc.To > rc.From {
			raised = true
			if rc.Resampled == 0 {
				t.Fatalf("rate change without resampling: %+v", rc)
			}
		}
		if rc.From < last {
			t.Fatal("trace out of order")
		}
		last = rc.From
	}
	if !raised {
		t.Fatal("controller never raised the rate from 1X")
	}
	if len(p.WindowMaps) == 0 {
		t.Fatal("no window maps collected")
	}
}

func TestAdaptiveConvergedStopsMoving(t *testing.T) {
	cfg := gos.DefaultConfig()
	cfg.Nodes = 2
	cfg.Tracking = gos.TrackingSampled
	k := gos.NewKernel(cfg)
	s := workload.NewSynthetic()
	s.Intervals = 30
	s.AccessesPerInterval = 1024
	s.AccessCost = 2 * sim.Microsecond
	s.Launch(k, workload.Params{Threads: 4, Seed: 4})
	ac := DefaultAdaptiveConfig()
	ac.Window = 8 * sim.Millisecond
	ac.Threshold = 0.5 // generous: converge quickly
	p := Attach(k, Config{Adaptive: &ac})
	k.Run()
	if p.Controller == nil || !p.Controller.Converged() {
		t.Fatal("controller did not converge")
	}
	// After convergence the rate is frozen.
	conv := false
	for _, rc := range p.RateTrace {
		if conv && rc.To != rc.From {
			t.Fatal("rate moved after convergence")
		}
		if rc.Converged {
			conv = true
		}
	}
}

func TestFootprintersAttachPerThread(t *testing.T) {
	cfg := gos.DefaultConfig()
	cfg.Nodes = 2
	k := gos.NewKernel(cfg)
	s := workload.NewSynthetic()
	s.Intervals = 3
	s.AccessesPerInterval = 512
	s.Launch(k, workload.Params{Threads: 4, Seed: 5})
	fpc := FootprintConfig{FootprinterConfig: sticky.DefaultFootprinterConfig()}
	fpc.Nonstop = true
	fpc.MinAccesses = 1
	p := Attach(k, Config{Rate: sampling.FullRate, Footprint: &fpc})
	k.Run()
	if len(p.Footprinters) != 4 {
		t.Fatalf("footprinters = %d, want 4", len(p.Footprinters))
	}
	nonEmpty := 0
	for tid := 0; tid < 4; tid++ {
		if p.Footprint(tid).Total() > 0 {
			nonEmpty++
		}
	}
	if nonEmpty == 0 {
		t.Fatal("all footprints empty")
	}
}

func TestEagerResolveCharges(t *testing.T) {
	cfg := gos.DefaultConfig()
	cfg.Nodes = 1
	k := gos.NewKernel(cfg)
	s := workload.NewSynthetic()
	s.Intervals = 6
	s.AccessesPerInterval = 2048
	s.AccessCost = 4 * sim.Microsecond
	s.Launch(k, workload.Params{Threads: 1, Seed: 6})
	fpc := FootprintConfig{FootprinterConfig: sticky.DefaultFootprinterConfig(), EagerResolve: true,
		Resolver: sticky.DefaultResolverConfig()}
	fpc.Nonstop = true
	fpc.MinAccesses = 1
	p := Attach(k, Config{
		Rate:      sampling.FullRate,
		Stack:     &StackConfig{Gap: 2 * sim.Millisecond, Lazy: true, MinSurvived: 1, Costs: DefaultStackCosts()},
		Footprint: &fpc,
	})
	k.Run()
	if p.Resolutions == 0 {
		t.Fatal("eager resolver never ran")
	}
	if p.ResolveCPU <= 0 {
		t.Fatal("resolution cost not charged")
	}
}

func TestClassRatesReporting(t *testing.T) {
	cfg := gos.DefaultConfig()
	cfg.Nodes = 1
	k := gos.NewKernel(cfg)
	s := workload.NewSynthetic()
	s.Intervals = 1
	s.AccessesPerInterval = 16
	s.Launch(k, workload.Params{Threads: 1, Seed: 7})
	p := Attach(k, Config{Rate: 4})
	rates := p.ClassRates()
	if len(rates) == 0 {
		t.Fatal("no class rates")
	}
	k.Run()
}

func TestProfilerNilSubsystems(t *testing.T) {
	cfg := gos.DefaultConfig()
	cfg.Nodes = 1
	k := gos.NewKernel(cfg)
	s := workload.NewSynthetic()
	s.Intervals = 1
	s.AccessesPerInterval = 16
	s.Launch(k, workload.Params{Threads: 1, Seed: 8})
	p := Attach(k, Config{})
	k.Run()
	if p.Invariants(0) != nil {
		t.Fatal("invariants without stack profiler should be nil")
	}
	if p.Footprint(0) != nil {
		t.Fatal("footprint without footprinter should be nil")
	}
	res := p.Resolve(0)
	if res == nil || len(res.Objects) != 0 {
		t.Fatal("resolve without profilers should be empty, not nil")
	}
}
