// Package core assembles the paper's contribution on top of the DJVM
// substrate: the access profiler (adaptive object sampling driving
// correlation tracking), the stack profiler (timer-based adaptive stack
// sampling per node), the sticky-set profiler (footprinting plus lazy
// resolution), and the adaptive rate controller daemon on the master JVM.
//
// A Profiler is attached to a kernel after the workload has been launched
// (classes registered, threads spawned) and before the simulation runs.
package core

import (
	"sort"

	"jessica2/internal/gos"
	"jessica2/internal/heap"
	"jessica2/internal/sampling"
	"jessica2/internal/sim"
	"jessica2/internal/stack"
	"jessica2/internal/sticky"
	"jessica2/internal/tcm"
)

// StackCosts charges the stack sampler's work to node CPUs.
type StackCosts struct {
	// Activation is the fixed cost of one sampler activation on a thread
	// (suspend, locate top frame).
	Activation sim.Time
	// WalkPerFrame is the per-frame cost of the top-down/bottom-up scan.
	WalkPerFrame sim.Time
	// RawPerSlot is the cheap raw snapshot copy (lazy mode first visits).
	RawPerSlot sim.Time
	// ExtractPerSlot is frame-content extraction: GET-METHOD-BY-PC,
	// layout decoding, GC pointer validation.
	ExtractPerSlot sim.Time
	// ComparePerSlot is one probing comparison.
	ComparePerSlot sim.Time
}

// DefaultStackCosts returns values calibrated against Table V's overheads.
func DefaultStackCosts() StackCosts {
	return StackCosts{
		Activation:     8 * sim.Microsecond,
		WalkPerFrame:   800 * sim.Nanosecond,
		RawPerSlot:     500 * sim.Nanosecond,
		ExtractPerSlot: 3 * sim.Microsecond,
		ComparePerSlot: 700 * sim.Nanosecond,
	}
}

// Cost converts sampler stats into charged CPU time.
func (c StackCosts) Cost(st stack.Stats) sim.Time {
	return c.Activation +
		sim.Time(st.FramesWalked)*c.WalkPerFrame +
		sim.Time(st.RawCaptured)*c.RawPerSlot +
		sim.Time(st.SlotsExtracted)*c.ExtractPerSlot +
		sim.Time(st.SlotsCompared)*c.ComparePerSlot
}

// StackConfig enables the stack profiler.
type StackConfig struct {
	// Gap is the sampling period (the paper evaluates 4 ms and 16 ms).
	Gap sim.Time
	// Lazy selects lazy extraction (vs immediate).
	Lazy bool
	// MinSurvived is the invariance threshold (see stack.Config).
	MinSurvived int
	// Costs is the CPU cost model.
	Costs StackCosts
}

// DefaultStackConfig is the paper's chosen operating point: 16 ms, lazy.
func DefaultStackConfig() StackConfig {
	return StackConfig{Gap: 16 * sim.Millisecond, Lazy: true, MinSurvived: 1, Costs: DefaultStackCosts()}
}

// AdaptiveConfig enables the master's adaptive rate controller.
type AdaptiveConfig struct {
	// Threshold is the relative-distance convergence bound.
	Threshold float64
	// Window is how often the controller compares successive maps.
	Window sim.Time
	// Start and Max bound the rate ladder.
	Start, Max sampling.Rate
	// UseEUC switches the distance metric to Euclidean (default ABS, the
	// paper's recommendation).
	UseEUC bool
}

// DefaultAdaptiveConfig starts coarse and converges at 95% relative
// accuracy.
func DefaultAdaptiveConfig() AdaptiveConfig {
	return AdaptiveConfig{Threshold: 0.05, Window: 500 * sim.Millisecond, Start: 1, Max: sampling.MaxRate}
}

// FootprintConfig enables sticky-set footprinting on every thread.
type FootprintConfig struct {
	sticky.FootprinterConfig
	// EagerResolve runs sticky-set resolution at the close of every
	// interval (the paper's ad-hoc methodology for measuring resolution
	// overhead); normally resolution is lazy, at migration time only.
	EagerResolve bool
	// Resolver tunes eager/lazy resolution.
	Resolver sticky.ResolverConfig
}

// Config assembles a profiling setup.
type Config struct {
	// Rate is the initial uniform object sampling rate; 0 leaves class
	// gaps untouched. Tracking mode itself is kernel config (gos.Config).
	Rate sampling.Rate
	// Adaptive, when non-nil, runs the rate controller daemon.
	Adaptive *AdaptiveConfig
	// Stack, when non-nil, runs the per-node stack profiler daemons.
	Stack *StackConfig
	// Footprint, when non-nil, attaches a sticky-set footprinter to
	// every thread.
	Footprint *FootprintConfig
}

// RateChange records one adaptive controller decision for reporting.
type RateChange struct {
	At        sim.Time
	From, To  sampling.Rate
	Distance  float64
	Converged bool
	Resampled int
}

// Profiler is the attached profiling subsystem.
type Profiler struct {
	K   *gos.Kernel
	Cfg Config

	Samplers     map[int]*stack.Sampler
	Footprinters map[int]*sticky.Footprinter
	Controller   *sampling.Controller

	// StackCPU is total virtual CPU charged for stack sampling.
	StackCPU sim.Time
	// StackActivations counts sampler activations.
	StackActivations int64
	// ResolveCPU is total virtual CPU charged for eager resolutions.
	ResolveCPU sim.Time
	// Resolutions counts eager resolutions performed.
	Resolutions int64
	// RateTrace logs adaptive controller decisions.
	RateTrace []RateChange
	// WindowMaps keeps the per-window TCMs the controller compared.
	WindowMaps []*tcm.Map
}

// Attach wires the configured profiling subsystems into k. Call after the
// workload Launch (classes registered, threads spawned), before k.Run().
func Attach(k *gos.Kernel, cfg Config) *Profiler {
	p := &Profiler{
		K:            k,
		Cfg:          cfg,
		Samplers:     make(map[int]*stack.Sampler),
		Footprinters: make(map[int]*sticky.Footprinter),
	}
	if cfg.Rate != 0 {
		sampling.Uniform(k.Reg, cfg.Rate).Apply(k.Reg)
	}
	if cfg.Stack != nil {
		p.startStackProfiler(*cfg.Stack)
	}
	if cfg.Footprint != nil {
		for _, t := range k.Threads() {
			fp := sticky.NewFootprinter(t, cfg.Footprint.FootprinterConfig)
			p.Footprinters[t.ID()] = fp
			k.AddObserver(fp)
		}
		if cfg.Footprint.EagerResolve {
			k.AddObserver(&eagerResolver{p: p})
		}
	}
	if cfg.Adaptive != nil {
		p.startAdaptiveDaemon(*cfg.Adaptive)
	}
	return p
}

// startStackProfiler spawns one daemon per node; each period it samples the
// stacks of the threads currently on its node and charges the node CPU.
func (p *Profiler) startStackProfiler(cfg StackConfig) {
	if cfg.Gap <= 0 {
		cfg.Gap = 16 * sim.Millisecond
	}
	k := p.K
	for n := 0; n < k.NumNodes(); n++ {
		n := n
		k.Eng.Spawn("stackprof", func(proc *sim.Proc) {
			for {
				if k.AllThreadsFinished() {
					return
				}
				proc.Sleep(cfg.Gap)
				var cost sim.Time
				for _, t := range k.Threads() {
					if t.Finished() || t.Node().ID() != n {
						continue
					}
					sp := p.samplerFor(t.ID(), cfg)
					st := sp.SampleStack(t.Stack)
					cost += cfg.Costs.Cost(st)
					p.StackActivations++
				}
				if cost > 0 {
					proc.Use(k.Node(n).CPU(), cost)
					p.StackCPU += cost
				}
			}
		})
	}
}

func (p *Profiler) samplerFor(tid int, cfg StackConfig) *stack.Sampler {
	sp := p.Samplers[tid]
	if sp == nil {
		sp = stack.NewSampler(stack.Config{Lazy: cfg.Lazy, MinSurvived: cfg.MinSurvived})
		p.Samplers[tid] = sp
	}
	return sp
}

// Invariants returns the current stack-invariant references of a thread
// (empty until the stack profiler has compared samples).
func (p *Profiler) Invariants(tid int) []stack.InvariantRef {
	sp := p.Samplers[tid]
	if sp == nil {
		return nil
	}
	for _, t := range p.K.Threads() {
		if t.ID() == tid {
			return sp.Invariants(t.Stack)
		}
	}
	return nil
}

// Footprint returns the sticky-set footprint estimate of a thread.
func (p *Profiler) Footprint(tid int) sticky.Footprint {
	fp := p.Footprinters[tid]
	if fp == nil {
		return nil
	}
	return fp.Footprint()
}

// Resolve runs sticky-set resolution for a thread using the profiler's
// current invariants and footprint.
func (p *Profiler) Resolve(tid int) *sticky.Resolution {
	rc := sticky.DefaultResolverConfig()
	if p.Cfg.Footprint != nil && p.Cfg.Footprint.Resolver.Tolerance != 0 {
		rc = p.Cfg.Footprint.Resolver
	}
	return sticky.Resolve(p.Invariants(tid), p.Footprint(tid), rc)
}

// eagerResolver measures resolution overhead by resolving at every
// interval close — the paper's ad-hoc Table V methodology ("eagerly
// carrying out this operation at the end of each HLRC interval").
type eagerResolver struct {
	p *Profiler
}

var _ gos.AccessObserver = (*eagerResolver)(nil)

// OnAccess is a no-op; eager resolution hooks interval closes only.
func (e *eagerResolver) OnAccess(t *gos.Thread, o *heap.Object, write, first bool) {}

// OnIntervalClose resolves the thread's sticky set and charges the cost.
func (e *eagerResolver) OnIntervalClose(t *gos.Thread) {
	res := e.p.Resolve(t.ID())
	if res == nil {
		return
	}
	t.Charge(res.Cost)
	e.p.ResolveCPU += res.Cost
	e.p.Resolutions++
}

// startAdaptiveDaemon spawns the controller on the master: every window it
// builds the TCM from the window's OALs, compares against the previous
// window's map at the previous rate, and steps the rate ladder.
func (p *Profiler) startAdaptiveDaemon(cfg AdaptiveConfig) {
	if cfg.Window <= 0 {
		cfg.Window = 500 * sim.Millisecond
	}
	if cfg.Threshold <= 0 {
		cfg.Threshold = 0.05
	}
	k := p.K
	p.Controller = sampling.NewController(cfg.Threshold, cfg.Start, cfg.Max)
	sampling.Uniform(k.Reg, p.Controller.Rate()).Apply(k.Reg)
	var prev *tcm.Map
	var lastEntries int64 = -1
	k.Eng.Spawn("adaptived", func(proc *sim.Proc) {
		for {
			if k.AllThreadsFinished() {
				return
			}
			proc.Sleep(cfg.Window)
			if ents := k.Master().IngestedEntries(); ents == lastEntries {
				continue // no new OALs since the last decision: wait
			} else {
				lastEntries = ents
			}
			// The daemon accumulates OALs ("if enough intervals are
			// gathered, the daemon will process the OALs"): successive
			// *cumulative* maps are compared, so the distance measures
			// how much the profile is still changing — from new data and
			// from the finer sampling rate together. Normalization keeps
			// the comparison about structure, not volume growth.
			cur, _ := k.Master().Build(len(k.Threads()))
			if cur.Total() == 0 {
				continue // no OALs yet: nothing to judge
			}
			p.WindowMaps = append(p.WindowMaps, cur)
			if p.Controller.Converged() {
				continue
			}
			curN := cur.Clone().Scale(1 / cur.Total())
			dist := 1.0
			if prev != nil {
				if cfg.UseEUC {
					dist = tcm.DistanceEUC(prev, curN)
				} else {
					dist = tcm.DistanceABS(prev, curN)
				}
			}
			from := p.Controller.Rate()
			next, converged := p.Controller.Observe(dist)
			change := RateChange{
				At: proc.Now(), From: from, To: next,
				Distance: dist, Converged: converged,
			}
			if next != from {
				plan := sampling.Uniform(k.Reg, next)
				change.Resampled = plan.Apply(k.Reg)
				k.ChargeResample(change.Resampled)
			}
			p.RateTrace = append(p.RateTrace, change)
			prev = curN
		}
	})
}

// LiveViews exports the profiler's incremental state for a mid-run
// snapshot: a copy of the adaptive controller's decision log so far and
// the current per-thread sticky-set footprint estimates. Reading the views
// charges no simulated CPU — observing a paused run must not change it.
func (p *Profiler) LiveViews() (trace []RateChange, footprints map[int]sticky.Footprint) {
	return p.LiveViewsInto(nil, nil)
}

// LiveViewsInto is LiveViews with caller-owned scratch: the trace is
// rebuilt in trace[:0] and the footprint maps (outer and per-thread) are
// cleared and refilled in place, so a session observing every epoch
// boundary allocates nothing at steady state. The returned views alias the
// scratch and are valid until the next call with the same buffers.
func (p *Profiler) LiveViewsInto(trace []RateChange, footprints map[int]sticky.Footprint) ([]RateChange, map[int]sticky.Footprint) {
	trace = append(trace[:0], p.RateTrace...)
	if len(p.Footprinters) == 0 {
		return trace, nil
	}
	if footprints == nil {
		footprints = make(map[int]sticky.Footprint, len(p.Footprinters))
	}
	// Drop entries for threads no longer profiled so reused scratch never
	// resurfaces a stale view (today Footprinters only grows, but the
	// contract must not depend on that).
	for tid := range footprints {
		if _, ok := p.Footprinters[tid]; !ok {
			delete(footprints, tid)
		}
	}
	for tid, fp := range p.Footprinters {
		footprints[tid] = fp.FootprintInto(footprints[tid])
	}
	return trace, footprints
}

// ClassRates reports the effective per-class rates currently installed,
// sorted by class name (diagnostics).
func (p *Profiler) ClassRates() map[string]sampling.Rate {
	out := make(map[string]sampling.Rate)
	names := p.K.Reg.ClassNames()
	sort.Strings(names)
	for _, n := range names {
		out[n] = sampling.EffectiveRate(p.K.Reg.Class(n))
	}
	return out
}
