package core

import (
	"testing"

	"jessica2/internal/gos"
	"jessica2/internal/sampling"
	"jessica2/internal/sim"
	"jessica2/internal/sticky"
	"jessica2/internal/workload"
)

// smokeKernel builds a small 4-node kernel with tracking enabled.
func smokeKernel(t *testing.T, mode gos.TrackingMode) *gos.Kernel {
	t.Helper()
	cfg := gos.DefaultConfig()
	cfg.Nodes = 4
	cfg.Tracking = mode
	return gos.NewKernel(cfg)
}

func TestSmokeSyntheticRuns(t *testing.T) {
	k := smokeKernel(t, gos.TrackingSampled)
	w := workload.NewSynthetic()
	w.Intervals = 4
	w.AccessesPerInterval = 512
	w.Launch(k, workload.Params{Threads: 4, Seed: 1})
	Attach(k, Config{Rate: sampling.FullRate})
	end := k.Run()
	if end <= 0 {
		t.Fatalf("no virtual time elapsed")
	}
	st := k.Stats()
	if st.Intervals == 0 || st.CorrelationLogs == 0 {
		t.Fatalf("expected intervals and logs, got %+v", st)
	}
	m, _ := k.TCM()
	if m.N() != 4 {
		t.Fatalf("TCM dim = %d", m.N())
	}
	if m.Total() == 0 {
		t.Fatalf("TCM is empty")
	}
}

func TestSmokeSORRuns(t *testing.T) {
	k := smokeKernel(t, gos.TrackingSampled)
	s := workload.NewSOR()
	s.RowsN, s.Cols, s.Iters = 128, 256, 2
	s.PointCost = 200 * sim.Nanosecond
	s.Launch(k, workload.Params{Threads: 4, Seed: 1})
	Attach(k, Config{Rate: sampling.FullRate, Stack: ptr(DefaultStackConfig())})
	end := k.Run()
	if end <= 0 {
		t.Fatal("no time elapsed")
	}
	if k.Stats().Barriers == 0 {
		t.Fatal("no barrier episodes")
	}
}

func TestSmokeBarnesHutRuns(t *testing.T) {
	k := smokeKernel(t, gos.TrackingSampled)
	b := workload.NewBarnesHut()
	b.NBodies, b.Rounds = 256, 2
	b.Launch(k, workload.Params{Threads: 4, Seed: 2})
	Attach(k, Config{Rate: 4, Stack: ptr(DefaultStackConfig()),
		Footprint: &FootprintConfig{FootprinterConfig: sticky.DefaultFootprinterConfig()}})
	end := k.Run()
	if end <= 0 {
		t.Fatal("no time elapsed")
	}
	if k.Stats().Faults == 0 {
		t.Fatal("expected remote object faults")
	}
}

func TestSmokeWaterRuns(t *testing.T) {
	k := smokeKernel(t, gos.TrackingSampled)
	w := workload.NewWaterSpatial()
	w.NMol, w.Rounds = 128, 2
	w.PairCost = 2 * sim.Microsecond
	w.Launch(k, workload.Params{Threads: 4, Seed: 3})
	Attach(k, Config{Rate: sampling.FullRate})
	if end := k.Run(); end <= 0 {
		t.Fatal("no time elapsed")
	}
	if k.Stats().LockAcquires == 0 {
		t.Fatal("expected lock activity from box moves")
	}
}

func ptr[T any](v T) *T { return &v }
