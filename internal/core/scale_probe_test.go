package core

import (
	"testing"

	"jessica2/internal/gos"
	"jessica2/internal/sampling"
	"jessica2/internal/workload"
)

// TestScaleProbe runs the paper-scale benchmarks once each and reports
// simulated execution times; it is skipped in -short mode.
func TestScaleProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale probe")
	}
	apps := []struct {
		name string
		w    workload.Workload
	}{
		{"SOR-2K", workload.NewSOR()},
		{"BH-4K", workload.NewBarnesHut()},
		{"WS-512", workload.NewWaterSpatial()},
	}
	for _, app := range apps {
		app := app
		t.Run(app.name, func(t *testing.T) {
			cfg := gos.DefaultConfig()
			cfg.Tracking = gos.TrackingSampled
			k := gos.NewKernel(cfg)
			app.w.Launch(k, workload.Params{Threads: 8, Seed: 7})
			Attach(k, Config{Rate: sampling.FullRate})
			end := k.Run()
			st := k.Stats()
			net := k.Net.Stats()
			t.Logf("%s: exec=%v faults=%d logs=%d intervals=%d oalKB=%d gosKB=%d",
				app.name, end, st.Faults, st.CorrelationLogs, st.Intervals,
				net.CatBytes(3-3+2)/1024, // CatOAL
				(net.CatBytes(1)+net.CatBytes(0)+net.HeaderBytesTotal)/1024)
		})
	}
}
