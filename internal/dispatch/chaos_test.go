package dispatch

import (
	"bufio"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"
)

// The chaos test needs real worker *processes* — SIGKILL must take the
// whole runtime down mid-job, which an httptest server cannot model. The
// test binary re-execs itself as a worker: TestMain diverts to
// workerProcMain when the marker variable is set.
const workerProcEnv = "JESSICA2_DISPATCH_WORKER_PROC"

func TestMain(m *testing.M) {
	if os.Getenv(workerProcEnv) == "1" {
		workerProcMain()
		return
	}
	os.Exit(m.Run())
}

// workerProcMain is cmd/djvmworker in miniature: bind a loopback port,
// announce it on stdout, serve jobs until killed.
func workerProcMain() {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("worker listening on %s\n", ln.Addr())
	if err := http.Serve(ln, NewWorker(nil).Handler()); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// startWorkerProc launches one worker process and returns it with its
// announced address.
func startWorkerProc(t *testing.T) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), workerProcEnv+"=1")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	line, err := bufio.NewReader(stdout).ReadString('\n')
	if err != nil {
		t.Fatalf("worker process never announced its address: %v", err)
	}
	addr := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(line), "worker listening on "))
	if addr == "" {
		t.Fatalf("malformed announcement %q", line)
	}
	return cmd, addr
}

// TestChaosWorkerSIGKILLMidBatch is the headline resilience gate: a
// two-process loopback fleet loses one worker to SIGKILL in the middle of
// a batch. The dead worker's lease must expire, its job must be
// reassigned, and the collected batch must stay byte-identical to the
// sequential baseline — the failure costs time, never results.
func TestChaosWorkerSIGKILLMidBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos: spawns worker processes")
	}
	victim, victimAddr := startWorkerProc(t)
	_, survivorAddr := startWorkerProc(t)

	specs := testSpecs(16)
	want := sequentialBaseline(specs)

	d := New(fastConfig(victimAddr, survivorAddr))

	// Kill the victim once the batch is demonstrably mid-flight (two
	// results already applied, most of the batch still out).
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		for d.Stats().Remote < 2 {
			time.Sleep(2 * time.Millisecond)
		}
		victim.Process.Kill() // SIGKILL: no goodbye, no flush
		victim.Wait()
	}()

	got, err := d.RunSpecs(specs)
	if err != nil {
		t.Fatalf("RunSpecs: %v", err)
	}
	<-killed
	requireIdentical(t, got, want)

	s := d.Stats()
	if s.WorkersLost != 1 {
		t.Fatalf("WorkersLost = %d, want exactly the SIGKILLed victim", s.WorkersLost)
	}
	if s.LeasesExpired == 0 {
		t.Fatalf("the dead worker's lease never expired: %+v", s)
	}
	if s.Reassignments == 0 && s.Local == 0 {
		t.Fatalf("no job was reassigned or drained after the kill: %+v", s)
	}
	if s.Remote+s.Local != int64(len(specs)) {
		t.Fatalf("completion ledger broken: %+v", s)
	}
	if s.StaleRejected > 0 {
		// A SIGKILLed worker cannot answer late; stale rejections here
		// would mean fencing fired on a healthy path.
		t.Fatalf("unexpected stale rejections: %+v", s)
	}
}

// TestChaosWorkerBinaryEndToEnd drives the shipped cmd/djvmworker binary
// (not the re-exec shim): build it, run two, dispatch a batch, compare
// bytes. This is the CI smoke for the actual artifact.
func TestChaosWorkerBinaryEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos: builds and spawns djvmworker")
	}
	bin := t.TempDir() + "/djvmworker"
	build := exec.Command("go", "build", "-o", bin, "jessica2/cmd/djvmworker")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building djvmworker: %v", err)
	}

	var addrs []string
	for i := 0; i < 2; i++ {
		cmd := exec.Command(bin, "-listen", "127.0.0.1:0", "-quiet")
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			cmd.Process.Kill()
			cmd.Wait()
		})
		line, err := bufio.NewReader(stdout).ReadString('\n')
		if err != nil {
			t.Fatalf("djvmworker never announced: %v", err)
		}
		addr := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(line), "djvmworker listening on "))
		addrs = append(addrs, addr)
	}

	specs := testSpecs(8)
	want := sequentialBaseline(specs)
	d := New(fastConfig(addrs...))
	got, err := d.RunSpecs(specs)
	if err != nil {
		t.Fatalf("RunSpecs: %v", err)
	}
	requireIdentical(t, got, want)
	if s := d.Stats(); s.Remote != int64(len(specs)) {
		t.Fatalf("Remote = %d, want %d: %+v", s.Remote, len(specs), s)
	}
}
