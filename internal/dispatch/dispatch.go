// Package dispatch is the multi-host experiment dispatcher: it fans
// independent, seed-deterministic experiments.Spec jobs out to djvmworker
// processes over plain HTTP/JSON and collects the outcomes back in
// submission order, exactly like internal/runner's in-process pool — only
// the hosts move. Because every job is a pure function of its spec, a
// distributed regeneration is byte-identical to a sequential one; the
// robustness machinery exists so that it stays byte-identical when workers
// die, hang, restart or answer late:
//
//   - every assignment is a lease (job index, fencing epoch, token); a
//     result is accepted only under the job's current token, so a stale
//     worker's late answer is rejected, never applied;
//   - leases expire — on heartbeat silence (dead worker), on transport
//     failure (unreachable worker), or on TTL (hung worker) — and the job
//     is reassigned under the next epoch;
//   - submits and result fetches retry a bounded number of times behind a
//     capped exponential backoff (runner.Backoff), so transient network
//     trouble costs latency, not results;
//   - a worker that restarts mid-batch answers 404 for leases it lost;
//     the coordinator resubmits under the same token (idempotent on the
//     worker side);
//   - when no worker is reachable — at batch start or after the whole
//     fleet dies mid-batch — the remaining jobs drain through the
//     in-process runner.Pool fallback, so installing a dispatcher can
//     never make a regeneration fail that would have succeeded locally.
package dispatch

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"jessica2/internal/experiments"
	"jessica2/internal/runner"
)

// Config tunes the coordinator. The zero value of every field has a
// usable default; only Workers is required for remote dispatch at all.
type Config struct {
	// Workers are the fleet addresses ("host:port" or "http://host:port").
	Workers []string

	// HeartbeatEvery is the liveness probe period (default 250ms).
	HeartbeatEvery time.Duration
	// HeartbeatTimeout is how long a worker may stay silent before it is
	// declared dead and its lease expired (default 2s).
	HeartbeatTimeout time.Duration
	// LeaseTTL bounds one assignment: a job not finished within it has its
	// lease expired and is reassigned, guarding against workers that are
	// alive but wedged (default 5m — generous next to any real spec).
	LeaseTTL time.Duration
	// PollEvery is the result polling period while a job runs (default 10ms).
	PollEvery time.Duration

	// Retry is the capped exponential backoff between transport retries
	// (default base 25ms, cap 500ms).
	Retry runner.Backoff
	// Retries bounds transport retries per submit and per result fetch
	// (default 4 additional attempts).
	Retries int
	// JobAttempts bounds lease grants per job; a job that burns them all
	// (every grant expired) is withheld from the fleet and runs on the
	// local fallback (default 3).
	JobAttempts int
	// RequestTimeout bounds each HTTP exchange (default 10s).
	RequestTimeout time.Duration

	// Fallback is the in-process pool that runs jobs when the fleet cannot
	// (nil = sequential inline).
	Fallback *runner.Pool
	// Logf receives dispatch events (nil discards them).
	Logf func(format string, args ...any)
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 250 * time.Millisecond
	}
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = 2 * time.Second
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 5 * time.Minute
	}
	if c.PollEvery <= 0 {
		c.PollEvery = 10 * time.Millisecond
	}
	if c.Retry == (runner.Backoff{}) {
		c.Retry = runner.Backoff{Base: 25 * time.Millisecond, Max: 500 * time.Millisecond}
	}
	if c.Retries <= 0 {
		c.Retries = 4
	}
	if c.JobAttempts <= 0 {
		c.JobAttempts = 3
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Stats counts what the robustness machinery actually did. All counters
// accumulate across batches; read a snapshot with Dispatcher.Stats.
type Stats struct {
	// Jobs counts specs submitted to RunSpecs; Remote and Local partition
	// the completions (Remote + Local == Jobs once a batch returns).
	Jobs, Remote, Local int64
	// LeasesGranted counts assignments; Reassignments counts grants beyond
	// a job's first (epoch > 1).
	LeasesGranted, Reassignments int64
	// LeasesExpired counts invalidated grants: heartbeat death, transport
	// failure, TTL expiry or a failed job.
	LeasesExpired int64
	// StaleRejected counts results refused by lease fencing — a superseded
	// token answering after its job moved on.
	StaleRejected int64
	// SubmitRetries and FetchRetries count transport-level retry attempts.
	SubmitRetries, FetchRetries int64
	// WorkersLost counts workers declared dead (once per batch each).
	WorkersLost int64
}

// Dispatcher coordinates a worker fleet. It is safe for sequential reuse
// across many batches (djvmbench regenerates every table through one); a
// worker dead in one batch is probed fresh by the next.
type Dispatcher struct {
	cfg    Config
	client *http.Client

	seq atomic.Int64 // lease token uniquifier

	mu    sync.Mutex
	stats Stats
}

// New builds a dispatcher over the configured fleet.
func New(cfg Config) *Dispatcher {
	return &Dispatcher{
		cfg:    cfg.withDefaults(),
		client: &http.Client{},
	}
}

// Stats returns a snapshot of the robustness counters.
func (d *Dispatcher) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

func (d *Dispatcher) bump(field *int64, by int64) {
	d.mu.Lock()
	*field += by
	d.mu.Unlock()
}

// Sentinel failures that leave the worker in rotation (everything else
// drops it for the rest of the batch).
var (
	errLeaseExpired = errors.New("dispatch: lease TTL expired")
	errJobFailed    = errors.New("dispatch: job failed on worker")
)

// RunSpecs executes every spec and returns the outcomes in submission
// order. It implements experiments.Dispatcher. The returned error is
// always nil today — unreachable fleets and dead workers degrade to the
// local fallback pool rather than failing the batch — but the signature
// keeps the contract honest for callers that must not block on local
// capacity.
func (d *Dispatcher) RunSpecs(specs []experiments.Spec) ([]*experiments.Out, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	d.bump(&d.stats.Jobs, int64(len(specs)))
	b := newBatch(d, specs)

	live := d.probeWorkers()
	if len(live) > 0 {
		var wg sync.WaitGroup
		workers := make([]*batchWorker, 0, len(live))
		for _, addr := range live {
			w := newBatchWorker(addr)
			workers = append(workers, w)
			// Wake any claim()-parked loop when this worker is declared
			// dead, so it can re-check its context and exit.
			context.AfterFunc(w.ctx, b.wake)
			wg.Add(1)
			go func() {
				defer wg.Done()
				d.workerLoop(b, w)
			}()
			go d.heartbeatLoop(b, w)
		}
		wg.Wait()
		for _, w := range workers {
			w.cancel() // release surviving heartbeat loops
		}
	} else if len(d.cfg.Workers) > 0 {
		d.cfg.Logf("dispatch: no worker reachable; running %d jobs on the local pool", len(specs))
	}

	// Drain everything the fleet did not finish — jobs that burned their
	// attempts, jobs stranded by a fleet-wide die-off, or the entire batch
	// when no worker was reachable — through the in-process pool.
	b.drainLocal()

	outs := make([]*experiments.Out, len(b.jobs))
	for i, j := range b.jobs {
		outs[i] = j.out
	}
	return outs, nil
}

// --- batch state -------------------------------------------------------------

// batchJob is one spec's lifecycle: pending -> leased (possibly several
// epochs) -> done, or pending -> localOnly -> done via the fallback pool.
type batchJob struct {
	idx  int
	spec experiments.Spec

	epoch    int
	attempts int
	token    string // current lease token ("" = not leased)

	done      bool
	localOnly bool
	out       *experiments.Out
}

// batch is the shared coordinator state of one RunSpecs call.
type batch struct {
	d    *Dispatcher
	mu   sync.Mutex
	cond *sync.Cond

	jobs    []*batchJob
	pending []int // claimable job indexes, FIFO
}

func newBatch(d *Dispatcher, specs []experiments.Spec) *batch {
	b := &batch{d: d, jobs: make([]*batchJob, len(specs)), pending: make([]int, len(specs))}
	b.cond = sync.NewCond(&b.mu)
	for i, spec := range specs {
		b.jobs[i] = &batchJob{idx: i, spec: spec}
		b.pending[i] = i
	}
	return b
}

func (b *batch) wake() {
	b.mu.Lock()
	b.cond.Broadcast()
	b.mu.Unlock()
}

// claim hands the caller the next claimable job under a fresh lease. It
// blocks while other workers hold leases that might yet be requeued, and
// returns ok == false once nothing remote remains (every job done or
// withheld for the local pool) or the worker's context dies.
func (b *batch) claim(ctx context.Context) (*batchJob, Lease, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		if ctx.Err() != nil {
			return nil, Lease{}, false
		}
		for len(b.pending) > 0 {
			idx := b.pending[0]
			b.pending = b.pending[1:]
			j := b.jobs[idx]
			if j.done || j.localOnly {
				continue
			}
			if j.attempts >= b.d.cfg.JobAttempts {
				// Every grant so far expired: stop feeding this job to the
				// fleet; the local drain picks it up.
				j.localOnly = true
				b.cond.Broadcast()
				continue
			}
			j.attempts++
			j.epoch++
			j.token = fmt.Sprintf("j%d.e%d.s%d", j.idx, j.epoch, b.d.seq.Add(1))
			b.d.bump(&b.d.stats.LeasesGranted, 1)
			if j.epoch > 1 {
				b.d.bump(&b.d.stats.Reassignments, 1)
			}
			return j, Lease{Job: j.idx, Epoch: j.epoch, Token: j.token}, true
		}
		if b.settledLocked() {
			return nil, Lease{}, false
		}
		b.cond.Wait()
	}
}

// settledLocked reports whether no job can ever become claimable again:
// every job is done or local-only. A job currently leased to another
// worker is neither (its lease may expire and requeue it), so claimers
// keep waiting while any lease is in flight.
func (b *batch) settledLocked() bool {
	for _, j := range b.jobs {
		if !j.done && !j.localOnly {
			return false
		}
	}
	return true
}

// complete applies a result under the given lease token. Fencing lives
// here: a token superseded by expiry/reassignment — or a duplicate of an
// already-applied result — is rejected and counted, so every job's
// outcome is applied exactly once no matter how late stale workers answer.
func (b *batch) complete(j *batchJob, token string, out *experiments.Out) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if j.done || j.token != token {
		b.d.bump(&b.d.stats.StaleRejected, 1)
		return false
	}
	j.done = true
	j.token = ""
	j.out = out
	b.d.bump(&b.d.stats.Remote, 1)
	b.cond.Broadcast()
	return true
}

// expire invalidates the given lease and requeues the job for another
// grant. Idempotent per token: once the token is superseded this is a
// no-op, so a worker-loop failure and a heartbeat death racing over the
// same lease cannot double-queue the job.
func (b *batch) expire(j *batchJob, token string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if j.done || j.token != token {
		return
	}
	j.token = ""
	b.pending = append(b.pending, j.idx)
	b.d.bump(&b.d.stats.LeasesExpired, 1)
	b.cond.Broadcast()
}

// drainLocal runs every unfinished job on the fallback pool. Results slot
// into the same positional collection, so a partially-distributed batch
// renders byte-identically to a fully-local one.
func (b *batch) drainLocal() {
	b.mu.Lock()
	var rest []*batchJob
	for _, j := range b.jobs {
		if !j.done {
			rest = append(rest, j)
		}
	}
	b.mu.Unlock()
	if len(rest) == 0 {
		return
	}
	jobs := make([]func() *experiments.Out, len(rest))
	for i := range rest {
		spec := rest[i].spec
		jobs[i] = func() *experiments.Out { return experiments.Run(spec) }
	}
	outs := runner.Collect(b.d.cfg.Fallback, jobs)
	b.mu.Lock()
	for i, j := range rest {
		j.done = true
		j.out = outs[i]
	}
	b.mu.Unlock()
	b.d.bump(&b.d.stats.Local, int64(len(rest)))
}

// --- per-worker machinery ----------------------------------------------------

// batchWorker is one fleet member's per-batch state.
type batchWorker struct {
	addr   string
	ctx    context.Context
	cancel context.CancelFunc
	lost   sync.Once
}

func newBatchWorker(addr string) *batchWorker {
	ctx, cancel := context.WithCancel(context.Background())
	return &batchWorker{addr: addr, ctx: ctx, cancel: cancel}
}

// declareLost drops the worker for the rest of the batch (once).
func (d *Dispatcher) declareLost(w *batchWorker, why string) {
	w.lost.Do(func() {
		d.bump(&d.stats.WorkersLost, 1)
		d.cfg.Logf("dispatch: worker %s lost: %s", w.addr, why)
		w.cancel()
	})
}

// workerLoop claims jobs for one worker until nothing remote remains or
// the worker dies.
func (d *Dispatcher) workerLoop(b *batch, w *batchWorker) {
	for {
		j, lease, ok := b.claim(w.ctx)
		if !ok {
			return
		}
		out, err := d.runJob(w.ctx, w.addr, lease, j.spec)
		if err != nil {
			b.expire(j, lease.Token)
			d.cfg.Logf("dispatch: worker %s: job %d epoch %d: %v (lease expired, job requeued)",
				w.addr, lease.Job, lease.Epoch, err)
			if errors.Is(err, errLeaseExpired) || errors.Is(err, errJobFailed) {
				continue // the worker itself is fine; keep it in rotation
			}
			d.declareLost(w, err.Error())
			return
		}
		if b.complete(j, lease.Token, out) {
			d.ack(w.addr, lease.Token)
		}
	}
}

// heartbeatLoop probes one worker's liveness until the batch releases it.
// Sustained silence past HeartbeatTimeout declares the worker dead, which
// cancels its context: the worker loop's in-flight HTTP call aborts, the
// lease expires, and the job requeues to the survivors.
func (d *Dispatcher) heartbeatLoop(b *batch, w *batchWorker) {
	t := time.NewTicker(d.cfg.HeartbeatEvery)
	defer t.Stop()
	lastOK := time.Now()
	for {
		select {
		case <-w.ctx.Done():
			return
		case <-t.C:
		}
		if err := d.ping(w.ctx, w.addr); err == nil {
			lastOK = time.Now()
			continue
		}
		if time.Since(lastOK) >= d.cfg.HeartbeatTimeout {
			d.declareLost(w, fmt.Sprintf("heartbeat silent for %v", time.Since(lastOK).Round(time.Millisecond)))
			return
		}
	}
}

// probeWorkers pings the configured fleet once and returns the reachable
// members (normalized to URLs).
func (d *Dispatcher) probeWorkers() []string {
	var live []string
	for _, raw := range d.cfg.Workers {
		addr := normalizeAddr(raw)
		if addr == "" {
			continue
		}
		if err := d.ping(context.Background(), addr); err != nil {
			d.cfg.Logf("dispatch: worker %s unreachable at batch start: %v", addr, err)
			continue
		}
		live = append(live, addr)
	}
	return live
}

func normalizeAddr(raw string) string {
	addr := strings.TrimSpace(raw)
	if addr == "" {
		return ""
	}
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return strings.TrimRight(addr, "/")
}

// --- protocol client ---------------------------------------------------------

// runJob drives one lease to a result: submit (bounded retries), then poll
// for the outcome until it arrives, the lease TTL runs out, or the worker
// stops answering.
func (d *Dispatcher) runJob(ctx context.Context, addr string, lease Lease, spec experiments.Spec) (*experiments.Out, error) {
	payload, err := EncodeJob(lease, spec)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errJobFailed, err)
	}
	deadline := time.Now().Add(d.cfg.LeaseTTL)
	if err := d.submit(ctx, addr, payload); err != nil {
		return nil, err
	}
	fetchFails, resubmits := 0, 0
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if time.Now().After(deadline) {
			return nil, errLeaseExpired
		}
		out, status, err := d.fetch(ctx, addr, lease.Token)
		switch {
		case err == nil && status == http.StatusOK:
			return out, nil
		case err == nil && status == http.StatusNoContent:
			// Still running: not a failure, polling is unbounded up to the
			// lease TTL (heartbeats separately cover a dead worker).
			sleepCtx(ctx, d.cfg.PollEvery)
		case err == nil && status == http.StatusNotFound:
			// The worker does not know the lease: it restarted and lost
			// its state. Resubmit under the same token (idempotent).
			resubmits++
			if resubmits > d.cfg.Retries {
				return nil, fmt.Errorf("worker keeps forgetting lease %s", lease.Token)
			}
			d.bump(&d.stats.SubmitRetries, 1)
			if err := d.submit(ctx, addr, payload); err != nil {
				return nil, err
			}
		case err == nil && status == http.StatusInternalServerError:
			return nil, errJobFailed
		default:
			// Transport failure or a corrupt/foreign payload: bounded
			// retries behind the backoff, then give up on this worker.
			if err == nil {
				err = fmt.Errorf("unexpected result status %d", status)
			}
			fetchFails++
			if fetchFails > d.cfg.Retries {
				return nil, err
			}
			d.bump(&d.stats.FetchRetries, 1)
			sleepCtx(ctx, d.cfg.Retry.Delay(fetchFails-1))
		}
	}
}

// submit posts a sealed job with bounded, backed-off retries. A 400 is
// terminal (the payload itself is rejected; retrying cannot help).
func (d *Dispatcher) submit(ctx context.Context, addr string, payload []byte) error {
	for attempt := 0; ; attempt++ {
		err := d.post(ctx, addr+"/submit", payload)
		if err == nil {
			return nil
		}
		var terminal *protocolError
		if errors.As(err, &terminal) || ctx.Err() != nil || attempt >= d.cfg.Retries {
			return err
		}
		d.bump(&d.stats.SubmitRetries, 1)
		sleepCtx(ctx, d.cfg.Retry.Delay(attempt))
	}
}

// protocolError marks a worker response that retrying cannot fix.
type protocolError struct{ msg string }

func (e *protocolError) Error() string { return e.msg }

func (d *Dispatcher) post(ctx context.Context, url string, payload []byte) error {
	rctx, cancel := context.WithTimeout(ctx, d.cfg.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, url, bytes.NewReader(payload))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := d.client.Do(req)
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
		return nil
	case resp.StatusCode == http.StatusBadRequest:
		return &protocolError{msg: fmt.Sprintf("worker rejected payload: %s", strings.TrimSpace(string(body)))}
	default:
		return fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
}

// fetch polls one lease's result. The (out, status, err) triple separates
// protocol states (204 running, 404 forgotten, 500 failed) from transport
// and decode failures (err != nil).
func (d *Dispatcher) fetch(ctx context.Context, addr, token string) (*experiments.Out, int, error) {
	rctx, cancel := context.WithTimeout(ctx, d.cfg.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, addr+"/result?token="+token, nil)
	if err != nil {
		return nil, 0, err
	}
	resp, err := d.client.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, 0, err
		}
		out, err := DecodeOut(data)
		if err != nil {
			// Corrupt result: typed decode error; treated as a transport
			// failure (retry, then reassign) — never applied.
			return nil, 0, err
		}
		return out, http.StatusOK, nil
	case http.StatusNoContent, http.StatusNotFound, http.StatusInternalServerError:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, resp.StatusCode, nil
	default:
		return nil, 0, fmt.Errorf("%s/result: status %d", addr, resp.StatusCode)
	}
}

// ping checks a worker's liveness.
func (d *Dispatcher) ping(ctx context.Context, addr string) error {
	rctx, cancel := context.WithTimeout(ctx, d.cfg.HeartbeatEvery+d.cfg.RequestTimeout/10)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, addr+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := d.client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz status %d", resp.StatusCode)
	}
	return nil
}

// ack releases a collected result's memory on the worker (best effort).
func (d *Dispatcher) ack(addr, token string) {
	ctx, cancel := context.WithTimeout(context.Background(), d.cfg.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, addr+"/ack?token="+token, nil)
	if err != nil {
		return
	}
	if resp, err := d.client.Do(req); err == nil {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
	}
}

// sleepCtx pauses for d or until ctx is cancelled, whichever comes first.
func sleepCtx(ctx context.Context, dur time.Duration) {
	if dur <= 0 {
		return
	}
	t := time.NewTimer(dur)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}
