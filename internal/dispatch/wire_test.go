package dispatch

import (
	"bytes"
	"encoding/json"
	"errors"
	"hash/crc32"
	"math"
	"testing"

	"jessica2/internal/core"
	"jessica2/internal/experiments"
	"jessica2/internal/gos"
	"jessica2/internal/sampling"
	"jessica2/internal/sim"
	"jessica2/internal/sticky"
	"jessica2/internal/tcm"
)

// richSpec exercises every wire-visible field: TCM tracking, the
// page-based baseline map (float cells that never saw the fixed-point
// accumulator), the stack sampler, footprinting, and the adaptive
// controller (which populates Profiler.RateTrace).
func richSpec() experiments.Spec {
	ad := core.DefaultAdaptiveConfig()
	st := core.DefaultStackConfig()
	return experiments.Spec{
		App: experiments.AppKVMix, Scale: 16, Nodes: 4, Threads: 4, Seed: 11,
		Tracking: gos.TrackingSampled, Rate: 4, TransferOALs: true,
		Stack:    &st,
		Adaptive: &ad,
		Footprint: &core.FootprintConfig{FootprinterConfig: sticky.FootprinterConfig{
			MinAccesses: 2, RearmPeriod: 1 * sim.Millisecond,
			OnPhase: 100 * sim.Millisecond, OffPhase: 100 * sim.Millisecond,
			MinGap: 1, ArmCost: 80 * sim.Nanosecond,
			TrapBase: 150 * sim.Nanosecond, TrapPerKB: 1536 * sim.Nanosecond,
			EWMA: 0.5,
		}},
		PageTracker: true,
	}
}

// TestOutRoundTripExact: decode∘encode is the identity on the wire form —
// the property the distributed identity gate rests on. Verified field by
// field against the original Out, then by re-encoding the decoded Out and
// comparing bytes.
func TestOutRoundTripExact(t *testing.T) {
	out := experiments.Run(richSpec())
	if out.TCM == nil || out.PageTCM == nil || out.Profiler == nil ||
		len(out.Profiler.RateTrace) == 0 || len(out.Footprints) == 0 {
		t.Fatal("rich spec did not populate every wire-visible field")
	}

	enc, err := EncodeOut(out)
	if err != nil {
		t.Fatalf("EncodeOut: %v", err)
	}
	dec, err := DecodeOut(enc)
	if err != nil {
		t.Fatalf("DecodeOut: %v", err)
	}

	if !specsEqual(t, dec.Spec, out.Spec) {
		t.Fatalf("Spec drifted:\n got %+v\nwant %+v", dec.Spec, out.Spec)
	}
	if dec.Exec != out.Exec || dec.TCMTime != out.TCMTime {
		t.Fatalf("times drifted: exec %v/%v tcmTime %v/%v", dec.Exec, out.Exec, dec.TCMTime, out.TCMTime)
	}
	if dec.Stats != out.Stats {
		t.Fatalf("kernel stats drifted")
	}
	if dec.Net != out.Net {
		t.Fatalf("network stats drifted")
	}
	if dec.TCMCost != out.TCMCost {
		t.Fatalf("TCM cost drifted")
	}
	for _, m := range []struct {
		name     string
		got, want *tcm.Map
	}{{"tcm", dec.TCM, out.TCM}, {"page tcm", dec.PageTCM, out.PageTCM}} {
		if m.got.N() != m.want.N() {
			t.Fatalf("%s dimension %d, want %d", m.name, m.got.N(), m.want.N())
		}
		gotBits, wantBits := m.got.AppendCellBits(nil), m.want.AppendCellBits(nil)
		for i := range wantBits {
			if gotBits[i] != wantBits[i] {
				t.Fatalf("%s cell %d: bits %x, want %x (float transport must be exact)",
					m.name, i, gotBits[i], wantBits[i])
			}
		}
	}
	gp, wp := dec.Profiler, out.Profiler
	if gp.StackCPU != wp.StackCPU || gp.StackActivations != wp.StackActivations ||
		gp.ResolveCPU != wp.ResolveCPU || gp.Resolutions != wp.Resolutions {
		t.Fatalf("profiler totals drifted: %+v vs %+v", gp, wp)
	}
	if len(gp.RateTrace) != len(wp.RateTrace) {
		t.Fatalf("rate trace length %d, want %d", len(gp.RateTrace), len(wp.RateTrace))
	}
	for i := range wp.RateTrace {
		g, w := gp.RateTrace[i], wp.RateTrace[i]
		if g != w || math.Float64bits(g.Distance) != math.Float64bits(w.Distance) {
			t.Fatalf("rate trace [%d]: %+v, want %+v", i, g, w)
		}
	}
	if len(dec.Footprints) != len(out.Footprints) {
		t.Fatalf("footprints: %d threads, want %d", len(dec.Footprints), len(out.Footprints))
	}
	for tid, want := range out.Footprints {
		got := dec.Footprints[tid]
		if len(got) != len(want) {
			t.Fatalf("footprint[%d] has %d classes, want %d", tid, len(got), len(want))
		}
		for class, bytes := range want {
			if got[class] != bytes {
				t.Fatalf("footprint[%d][%s] = %d, want %d", tid, class, got[class], bytes)
			}
		}
	}

	// The byte-level identity the dispatcher's gate compares.
	re, err := EncodeOut(dec)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(re, enc) {
		t.Fatalf("re-encoded bytes differ from the original encoding (%d vs %d bytes)", len(re), len(enc))
	}
}

// TestJobRoundTrip: lease and spec survive the job envelope.
func TestJobRoundTrip(t *testing.T) {
	lease := Lease{Job: 7, Epoch: 3, Token: "j7.e3.s42"}
	spec := richSpec()
	enc, err := EncodeJob(lease, spec)
	if err != nil {
		t.Fatalf("EncodeJob: %v", err)
	}
	gotLease, gotSpec, err := DecodeJob(enc)
	if err != nil {
		t.Fatalf("DecodeJob: %v", err)
	}
	if gotLease != lease {
		t.Fatalf("lease = %+v, want %+v", gotLease, lease)
	}
	if !specsEqual(t, gotSpec, spec) {
		t.Fatalf("spec drifted:\n got %+v\nwant %+v", gotSpec, spec)
	}
}

// specsEqual compares specs by their wire (JSON) form — the profiler
// configs hang off pointers, so == would compare addresses.
func specsEqual(t *testing.T, a, b experiments.Spec) bool {
	t.Helper()
	aj, err := json.Marshal(a)
	if err != nil {
		t.Fatalf("marshal spec: %v", err)
	}
	bj, err := json.Marshal(b)
	if err != nil {
		t.Fatalf("marshal spec: %v", err)
	}
	return bytes.Equal(aj, bj)
}

// mutateEnvelope decodes a sealed payload, applies f, and re-seals it
// without fixing the CRC — the raw-field tampering helper.
func mutateEnvelope(t *testing.T, data []byte, f func(*envelope)) []byte {
	t.Helper()
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatalf("unwrapping test envelope: %v", err)
	}
	f(&env)
	out, err := json.Marshal(env)
	if err != nil {
		t.Fatalf("re-wrapping test envelope: %v", err)
	}
	return out
}

// TestDecodeTypedErrors: every way a payload can be wrong maps to its
// typed error, and none of them panic.
func TestDecodeTypedErrors(t *testing.T) {
	good, err := EncodeJob(Lease{Job: 1, Epoch: 1, Token: "t"}, experiments.Spec{App: experiments.AppSOR})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"not json", []byte("profile-store bytes, not dispatch"), ErrCorrupt},
		{"truncated", good[:len(good)/2], ErrCorrupt},
		{"foreign schema", mutateEnvelope(t, good, func(e *envelope) { e.Schema = "jessica2/profile" }), ErrSchema},
		{"future version", mutateEnvelope(t, good, func(e *envelope) { e.Version = WireVersion + 1 }), ErrVersion},
		{"wrong kind", mutateEnvelope(t, good, func(e *envelope) { e.Kind = kindOut }), ErrCorrupt},
		{"tampered body", mutateEnvelope(t, good, func(e *envelope) {
			// Change one digit: still valid JSON, but the CRC no longer matches.
			e.Body = bytes.Replace(e.Body, []byte(`"job":1`), []byte(`"job":2`), 1)
		}), ErrCorrupt},
		{"crc mismatch", mutateEnvelope(t, good, func(e *envelope) { e.CRC ^= 1 }), ErrCorrupt},
	}
	for _, tc := range cases {
		if _, _, err := DecodeJob(tc.data); !errors.Is(err, tc.want) {
			t.Errorf("%s: DecodeJob error = %v, want %v", tc.name, err, tc.want)
		}
	}
	// The same envelope validation guards results.
	if _, err := DecodeOut(good); !errors.Is(err, ErrCorrupt) {
		t.Errorf("DecodeOut(job envelope) = %v, want %v (kind mismatch)", err, ErrCorrupt)
	}
}

// TestDecodeOutBoundsMapDims: hostile map dimensions are rejected with
// ErrCorrupt before any allocation, not trusted into NewMapFromBits.
func TestDecodeOutBoundsMapDims(t *testing.T) {
	out := &experiments.Out{Spec: experiments.Spec{App: experiments.AppSOR}, TCM: tcm.NewMap(2)}
	enc, err := EncodeOut(out)
	if err != nil {
		t.Fatal(err)
	}
	for _, tamper := range []struct {
		name string
		n    int
	}{
		{"negative dim", -1},
		{"oversized dim", maxMapDim + 1},
		{"cell count mismatch", 3},
	} {
		bad := mutateEnvelope(t, enc, func(e *envelope) {
			var w wireOut
			if err := json.Unmarshal(e.Body, &w); err != nil {
				t.Fatal(err)
			}
			w.TCM.N = tamper.n
			body, err := json.Marshal(w)
			if err != nil {
				t.Fatal(err)
			}
			e.Body = body
			e.CRC = crcOf(body)
		})
		if _, err := DecodeOut(bad); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: DecodeOut = %v, want %v", tamper.name, err, ErrCorrupt)
		}
	}
}

// TestFloatBitsExactForSpecials: the bit-pattern transport carries values
// plain JSON numbers cannot.
func TestFloatBitsExactForSpecials(t *testing.T) {
	for _, f := range []float64{0, math.Copysign(0, -1), math.Inf(1), math.Inf(-1),
		math.NaN(), math.SmallestNonzeroFloat64, math.MaxFloat64, 0.1, 1.0 / 3.0} {
		if got := floatFromBits(floatBits(f)); math.Float64bits(got) != math.Float64bits(f) {
			t.Errorf("round-trip of %v: bits %x -> %x", f, math.Float64bits(f), math.Float64bits(got))
		}
	}
}

// Compile-time check that the adaptive rate type still fits the wire's
// int64 transport (it is a defined integer type).
var _ = sampling.Rate(0)

func crcOf(b []byte) uint32 { return crc32.ChecksumIEEE(b) }
