// Wire format of the experiment dispatcher: versioned JSON envelopes that
// carry experiments.Spec jobs to workers and experiments.Out results back.
//
// Every payload travels inside an envelope naming the schema, the format
// version, the payload kind and a CRC32 fingerprint of the body, mirroring
// internal/profile's hardening: a worker or coordinator never trusts bytes
// off the network — foreign payloads (ErrSchema), newer revisions
// (ErrVersion) and truncated or bit-flipped bodies (ErrCorrupt) come back
// as typed errors, never panics, and a corrupt result is indistinguishable
// from a lost one (the coordinator retries or reassigns either way).
//
// Encoding is exact: a decoded Out re-encodes to the same bytes the worker
// produced. Correlation-map cells and adaptive-trace distances travel as
// IEEE-754 bit patterns (uint64), so float values — including ones that did
// not come from the fixed-point accumulator, like the page-based baseline's
// — round-trip bit-identically, which is what makes a distributed
// regeneration byte-identical to a sequential one.
package dispatch

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"jessica2/internal/core"
	"jessica2/internal/experiments"
	"jessica2/internal/gos"
	"jessica2/internal/network"
	"jessica2/internal/sampling"
	"jessica2/internal/sim"
	"jessica2/internal/sticky"
	"jessica2/internal/tcm"
)

// WireSchema identifies this module's dispatch protocol; anything else in
// an envelope's schema field is rejected with ErrSchema.
const WireSchema = "jessica2/dispatch"

// WireVersion is the current wire revision. Coordinator and workers must
// run the same revision: the fleet is one build fanned out, not a
// long-lived deployment, so the format is forward-incompatible by design.
const WireVersion = 1

// Typed decode errors; match with errors.Is.
var (
	// ErrSchema rejects envelopes that are not dispatch payloads at all.
	ErrSchema = errors.New("dispatch: wire schema mismatch")
	// ErrVersion rejects envelopes from a different wire revision.
	ErrVersion = errors.New("dispatch: unsupported wire version")
	// ErrCorrupt rejects malformed, truncated or bit-flipped payloads
	// (JSON syntax, CRC or structural check failure).
	ErrCorrupt = errors.New("dispatch: corrupt wire payload")
)

// Envelope kinds.
const (
	kindJob = "job"
	kindOut = "out"
)

// envelope is the versioned self-describing wrapper every payload rides in.
type envelope struct {
	Schema  string          `json:"schema"`
	Version int             `json:"version"`
	Kind    string          `json:"kind"`
	// CRC is the IEEE CRC32 of the raw Body bytes: a fingerprint that
	// catches truncation and corruption JSON syntax alone would miss.
	CRC  uint32          `json:"crc"`
	Body json.RawMessage `json:"body"`
}

// seal wraps body in an envelope of the given kind.
func seal(kind string, body any) ([]byte, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return nil, fmt.Errorf("dispatch: encoding %s body: %w", kind, err)
	}
	return json.Marshal(envelope{
		Schema:  WireSchema,
		Version: WireVersion,
		Kind:    kind,
		CRC:     crc32.ChecksumIEEE(raw),
		Body:    raw,
	})
}

// open validates an envelope of the expected kind and returns its body.
func open(data []byte, kind string) (json.RawMessage, error) {
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if env.Schema != WireSchema {
		return nil, fmt.Errorf("%w: schema %q", ErrSchema, env.Schema)
	}
	if env.Version != WireVersion {
		return nil, fmt.Errorf("%w: wire version %d, this build speaks %d",
			ErrVersion, env.Version, WireVersion)
	}
	if env.Kind != kind {
		return nil, fmt.Errorf("%w: payload kind %q, want %q", ErrCorrupt, env.Kind, kind)
	}
	if crc32.ChecksumIEEE(env.Body) != env.CRC {
		return nil, fmt.Errorf("%w: body CRC mismatch", ErrCorrupt)
	}
	return env.Body, nil
}

// Lease is one job assignment: which submission-index job, under which
// fencing epoch, and the token naming this particular grant. The epoch
// increments every time the job is (re)assigned, and the token embeds it,
// so a result fetched under a superseded grant — a slow worker finishing
// after its lease expired and the job was handed elsewhere — is rejected
// at the coordinator by token mismatch, never applied.
type Lease struct {
	Job   int    `json:"job"`
	Epoch int    `json:"epoch"`
	Token string `json:"token"`
}

// wireJob is a job envelope body.
type wireJob struct {
	Lease Lease            `json:"lease"`
	Spec  experiments.Spec `json:"spec"`
}

// EncodeJob serializes one job assignment. The Spec is carried as plain
// JSON: every field — scenario schedules included — is exported value data,
// and Go's float64 JSON encoding round-trips exactly.
func EncodeJob(l Lease, spec experiments.Spec) ([]byte, error) {
	return seal(kindJob, wireJob{Lease: l, Spec: spec})
}

// DecodeJob parses a job envelope.
func DecodeJob(data []byte) (Lease, experiments.Spec, error) {
	body, err := open(data, kindJob)
	if err != nil {
		return Lease{}, experiments.Spec{}, err
	}
	var j wireJob
	if err := json.Unmarshal(body, &j); err != nil {
		return Lease{}, experiments.Spec{}, fmt.Errorf("%w: job body: %v", ErrCorrupt, err)
	}
	return j.Lease, j.Spec, nil
}

// floatBits / floatFromBits move float64s over the wire as IEEE-754 bit
// patterns inside JSON uint64s: exact for every value (NaN and ±Inf
// included, which plain JSON numbers cannot carry at all).
func floatBits(f float64) uint64     { return math.Float64bits(f) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }

// maxMapDim bounds the correlation-map dimension a decoder will allocate
// for, so a corrupt or hostile length cannot trigger a huge allocation.
const maxMapDim = 1 << 14

// wireMap is a correlation map on the wire: dimension plus every cell's
// IEEE-754 bit pattern, row-major with both symmetric mirrors.
type wireMap struct {
	N        int      `json:"n"`
	CellBits []uint64 `json:"cell_bits"`
}

func mapToWire(m *tcm.Map) *wireMap {
	if m == nil {
		return nil
	}
	return &wireMap{N: m.N(), CellBits: m.AppendCellBits(nil)}
}

func mapFromWire(w *wireMap, what string) (*tcm.Map, error) {
	if w == nil {
		return nil, nil
	}
	if w.N < 0 || w.N > maxMapDim || len(w.CellBits) != w.N*w.N {
		return nil, fmt.Errorf("%w: %s: %d cells for an %d×%d map",
			ErrCorrupt, what, len(w.CellBits), w.N, w.N)
	}
	return tcm.NewMapFromBits(w.N, w.CellBits), nil
}

// wireRateChange mirrors core.RateChange with the distance as IEEE-754
// bits so the adaptive trace round-trips byte-exactly.
type wireRateChange struct {
	At           int64  `json:"at"`
	From         int64  `json:"from"`
	To           int64  `json:"to"`
	DistanceBits uint64 `json:"distance_bits"`
	Converged    bool   `json:"converged"`
	Resampled    int    `json:"resampled"`
}

// wireProfiler is the serializable slice of a core.Profiler: the charged
// totals and the adaptive decision log. The live half — kernel pointer,
// per-thread samplers and footprinters — is meaningless off-host; a
// decoded Out carries a detached Profiler holding exactly these fields,
// which is everything the table and figure folds consume.
type wireProfiler struct {
	StackCPU         int64            `json:"stack_cpu"`
	StackActivations int64            `json:"stack_activations"`
	ResolveCPU       int64            `json:"resolve_cpu"`
	Resolutions      int64            `json:"resolutions"`
	RateTrace        []wireRateChange `json:"rate_trace,omitempty"`
}

// wireOut is an out envelope body.
type wireOut struct {
	Spec       experiments.Spec            `json:"spec"`
	Exec       int64                       `json:"exec"`
	Stats      gos.KernelStats             `json:"stats"`
	Net        network.Stats               `json:"net"`
	TCM        *wireMap                    `json:"tcm,omitempty"`
	TCMCost    tcm.BuildCost               `json:"tcm_cost"`
	TCMTime    int64                       `json:"tcm_time"`
	PageTCM    *wireMap                    `json:"page_tcm,omitempty"`
	Profiler   *wireProfiler               `json:"profiler,omitempty"`
	Footprints map[int]sticky.Footprint    `json:"footprints,omitempty"`
}

// EncodeOut serializes one run outcome. The output is a pure function of
// the Out's wire-visible fields (JSON struct fields are ordered, map keys
// are sorted), so encoding the same deterministic run on any host yields
// the same bytes — the identity gates compare encodings directly.
func EncodeOut(o *experiments.Out) ([]byte, error) {
	w := wireOut{
		Spec:       o.Spec,
		Exec:       int64(o.Exec),
		Stats:      o.Stats,
		Net:        o.Net,
		TCM:        mapToWire(o.TCM),
		TCMCost:    o.TCMCost,
		TCMTime:    int64(o.TCMTime),
		PageTCM:    mapToWire(o.PageTCM),
		Footprints: o.Footprints,
	}
	if p := o.Profiler; p != nil {
		wp := &wireProfiler{
			StackCPU:         int64(p.StackCPU),
			StackActivations: p.StackActivations,
			ResolveCPU:       int64(p.ResolveCPU),
			Resolutions:      p.Resolutions,
		}
		for _, rc := range p.RateTrace {
			wp.RateTrace = append(wp.RateTrace, wireRateChange{
				At:           int64(rc.At),
				From:         int64(rc.From),
				To:           int64(rc.To),
				DistanceBits: floatBits(rc.Distance),
				Converged:    rc.Converged,
				Resampled:    rc.Resampled,
			})
		}
		w.Profiler = wp
	}
	return seal(kindOut, w)
}

// DecodeOut parses an out envelope back into an experiments.Out. The
// returned Out's Profiler, when present, is detached: charged totals and
// the rate trace are restored, the live kernel-side state (samplers,
// footprinters, kernel pointer) is not — exactly the wireProfiler
// contract. Hostile input returns a typed error; it never panics.
func DecodeOut(data []byte) (*experiments.Out, error) {
	body, err := open(data, kindOut)
	if err != nil {
		return nil, err
	}
	var w wireOut
	if err := json.Unmarshal(body, &w); err != nil {
		return nil, fmt.Errorf("%w: out body: %v", ErrCorrupt, err)
	}
	o := &experiments.Out{
		Spec:       w.Spec,
		Exec:       sim.Time(w.Exec),
		Stats:      w.Stats,
		Net:        w.Net,
		TCMCost:    w.TCMCost,
		TCMTime:    sim.Time(w.TCMTime),
		Footprints: w.Footprints,
	}
	if o.TCM, err = mapFromWire(w.TCM, "tcm"); err != nil {
		return nil, err
	}
	if o.PageTCM, err = mapFromWire(w.PageTCM, "page tcm"); err != nil {
		return nil, err
	}
	if wp := w.Profiler; wp != nil {
		p := &core.Profiler{
			StackCPU:         sim.Time(wp.StackCPU),
			StackActivations: wp.StackActivations,
			ResolveCPU:       sim.Time(wp.ResolveCPU),
			Resolutions:      wp.Resolutions,
		}
		for _, rc := range wp.RateTrace {
			p.RateTrace = append(p.RateTrace, core.RateChange{
				At:        sim.Time(rc.At),
				From:      sampling.Rate(rc.From),
				To:        sampling.Rate(rc.To),
				Distance:  floatFromBits(rc.DistanceBits),
				Converged: rc.Converged,
				Resampled: rc.Resampled,
			})
		}
		o.Profiler = p
	}
	return o, nil
}
