package dispatch

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"jessica2/internal/experiments"
	"jessica2/internal/gos"
	"jessica2/internal/runner"
)

// fastConfig returns timings tuned for loopback tests: failures are
// detected in tens of milliseconds instead of seconds.
func fastConfig(workers ...string) Config {
	return Config{
		Workers:          workers,
		HeartbeatEvery:   10 * time.Millisecond,
		HeartbeatTimeout: 80 * time.Millisecond,
		LeaseTTL:         10 * time.Second,
		PollEvery:        2 * time.Millisecond,
		Retry:            runner.Backoff{Base: time.Millisecond, Max: 5 * time.Millisecond},
		Retries:          3,
		RequestTimeout:   2 * time.Second,
	}
}

// testSpecs is a small mixed batch: every app, differing seeds, cheap
// CI-scale datasets.
func testSpecs(n int) []experiments.Spec {
	specs := make([]experiments.Spec, n)
	for i := range specs {
		specs[i] = experiments.Spec{
			App:   experiments.AllApps[i%len(experiments.AllApps)],
			Scale: 16, Nodes: 4, Threads: 4, Seed: uint64(100 + i),
			Tracking: gos.TrackingSampled, Rate: 4, TransferOALs: true,
		}
	}
	return specs
}

// encodeAll renders outs to their canonical wire bytes for identity
// comparison.
func encodeAll(t *testing.T, outs []*experiments.Out) [][]byte {
	t.Helper()
	enc := make([][]byte, len(outs))
	for i, o := range outs {
		if o == nil {
			t.Fatalf("out[%d] is nil", i)
		}
		b, err := EncodeOut(o)
		if err != nil {
			t.Fatalf("encoding out[%d]: %v", i, err)
		}
		enc[i] = b
	}
	return enc
}

// requireIdentical asserts the distributed batch is byte-identical to the
// sequential baseline, position by position.
func requireIdentical(t *testing.T, got, want []*experiments.Out) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d outs, want %d", len(got), len(want))
	}
	ge, we := encodeAll(t, got), encodeAll(t, want)
	for i := range we {
		if !bytes.Equal(ge[i], we[i]) {
			t.Fatalf("out[%d] differs from the sequential baseline (%d vs %d wire bytes)",
				i, len(ge[i]), len(we[i]))
		}
	}
}

func sequentialBaseline(specs []experiments.Spec) []*experiments.Out {
	outs := make([]*experiments.Out, len(specs))
	for i, s := range specs {
		outs[i] = experiments.Run(s)
	}
	return outs
}

// --- lease fencing (white-box) ----------------------------------------------

// TestLeaseFencingRejectsStaleResult is the fencing contract in isolation:
// a result arriving under a superseded lease token is rejected, the
// reassigned lease's result is applied, and a duplicate of an applied
// result is also rejected.
func TestLeaseFencingRejectsStaleResult(t *testing.T) {
	d := New(Config{})
	b := newBatch(d, testSpecs(1))

	j, lease1, ok := b.claim(context.Background())
	if !ok || lease1.Epoch != 1 {
		t.Fatalf("first claim: ok=%v lease=%+v", ok, lease1)
	}
	// The lease expires (worker declared dead / TTL ran out) and the job
	// is granted again under the next epoch.
	b.expire(j, lease1.Token)
	j2, lease2, ok := b.claim(context.Background())
	if !ok || j2 != j || lease2.Epoch != 2 || lease2.Token == lease1.Token {
		t.Fatalf("reassignment claim: ok=%v lease=%+v", ok, lease2)
	}

	stale := &experiments.Out{Spec: j.spec}
	fresh := &experiments.Out{Spec: j.spec}
	if b.complete(j, lease1.Token, stale) {
		t.Fatal("stale epoch-1 result was applied after reassignment")
	}
	if !b.complete(j, lease2.Token, fresh) {
		t.Fatal("current lease's result was rejected")
	}
	if b.complete(j, lease2.Token, stale) {
		t.Fatal("duplicate result was applied twice")
	}
	if j.out != fresh {
		t.Fatal("job holds the wrong result")
	}
	s := d.Stats()
	if s.StaleRejected != 2 {
		t.Fatalf("StaleRejected = %d, want 2", s.StaleRejected)
	}
	if s.LeasesGranted != 2 || s.Reassignments != 1 || s.LeasesExpired != 1 {
		t.Fatalf("lease stats = %+v", s)
	}
}

// TestClaimWithholdsJobAfterAttemptCap: a job whose every grant expires is
// withheld from the fleet after JobAttempts grants and drains locally.
func TestClaimWithholdsJobAfterAttemptCap(t *testing.T) {
	d := New(Config{JobAttempts: 2})
	b := newBatch(d, testSpecs(1))
	for i := 0; i < 2; i++ {
		j, lease, ok := b.claim(context.Background())
		if !ok {
			t.Fatalf("claim %d refused", i)
		}
		b.expire(j, lease.Token)
	}
	// Third claim: the job has burned its attempts; nothing remote remains.
	if _, _, ok := b.claim(context.Background()); ok {
		t.Fatal("claim handed out a lease past the attempt cap")
	}
	if !b.jobs[0].localOnly {
		t.Fatal("exhausted job was not marked local-only")
	}
	b.drainLocal()
	if b.jobs[0].out == nil {
		t.Fatal("local drain did not run the withheld job")
	}
	if got := d.Stats().Local; got != 1 {
		t.Fatalf("Local = %d, want 1", got)
	}
}

// TestClaimWaitsForInFlightLeases: a claimer must not give up while
// another worker's lease is in flight — if that lease expires, the waiter
// picks the job up.
func TestClaimWaitsForInFlightLeases(t *testing.T) {
	d := New(Config{})
	b := newBatch(d, testSpecs(1))
	j, lease1, _ := b.claim(context.Background())

	claimed := make(chan Lease, 1)
	go func() {
		_, lease, ok := b.claim(context.Background())
		if ok {
			claimed <- lease
		}
		close(claimed)
	}()
	// The second claimer must park (nothing pending, one lease in flight).
	select {
	case l, ok := <-claimed:
		t.Fatalf("claim returned early: %+v ok=%v", l, ok)
	case <-time.After(50 * time.Millisecond):
	}
	b.expire(j, lease1.Token)
	select {
	case l, ok := <-claimed:
		if !ok || l.Epoch != 2 {
			t.Fatalf("waiter got %+v ok=%v, want the epoch-2 reassignment", l, ok)
		}
	case <-time.After(time.Second):
		t.Fatal("waiter never woke after the lease expired")
	}
}

// --- loopback integration ----------------------------------------------------

// startFleet mounts n real Worker handlers on loopback HTTP servers.
func startFleet(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		srv := httptest.NewServer(NewWorker(nil).Handler())
		t.Cleanup(srv.Close)
		addrs[i] = srv.URL
	}
	return addrs
}

// TestRunSpecsLoopbackIdentity is the tentpole's gate: a batch dispatched
// across a loopback fleet is byte-identical, position by position, to the
// same batch run sequentially in-process.
func TestRunSpecsLoopbackIdentity(t *testing.T) {
	specs := testSpecs(12)
	want := sequentialBaseline(specs)

	d := New(fastConfig(startFleet(t, 3)...))
	got, err := d.RunSpecs(specs)
	if err != nil {
		t.Fatalf("RunSpecs: %v", err)
	}
	requireIdentical(t, got, want)

	s := d.Stats()
	if s.Remote != int64(len(specs)) || s.Local != 0 {
		t.Fatalf("healthy fleet: Remote=%d Local=%d, want %d/0", s.Remote, s.Local, len(specs))
	}
	if s.LeasesExpired != 0 || s.StaleRejected != 0 || s.WorkersLost != 0 {
		t.Fatalf("healthy fleet recorded failures: %+v", s)
	}
}

// TestRunSpecsDegradesToLocalWhenFleetUnreachable: with no worker
// answering, the whole batch runs on the local pool and stays identical.
func TestRunSpecsDegradesToLocalWhenFleetUnreachable(t *testing.T) {
	specs := testSpecs(4)
	want := sequentialBaseline(specs)

	// A closed server: connection refused from the first probe.
	srv := httptest.NewServer(http.NotFoundHandler())
	dead := srv.URL
	srv.Close()

	cfg := fastConfig(dead, "127.0.0.1:1")
	cfg.Fallback = runner.New(2)
	d := New(cfg)
	got, err := d.RunSpecs(specs)
	if err != nil {
		t.Fatalf("RunSpecs: %v", err)
	}
	requireIdentical(t, got, want)
	if s := d.Stats(); s.Local != int64(len(specs)) || s.Remote != 0 {
		t.Fatalf("Local=%d Remote=%d, want %d/0", s.Local, s.Remote, len(specs))
	}
}

// TestRunAllUsesDispatcher: the experiments wiring routes batches through
// an installed dispatcher and the collected tables stay identical.
func TestRunAllUsesDispatcher(t *testing.T) {
	specs := testSpecs(6)
	want := sequentialBaseline(specs)

	d := New(fastConfig(startFleet(t, 2)...))
	experiments.SetDispatcher(d)
	defer experiments.SetDispatcher(nil)

	got := experiments.RunAll(nil, specs)
	requireIdentical(t, got, want)
	if s := d.Stats(); s.Remote != int64(len(specs)) {
		t.Fatalf("dispatcher saw %d remote jobs, want %d", s.Remote, len(specs))
	}
}

// --- failure injection via stub workers --------------------------------------

// stubWorker wraps a real Worker handler with a fault-injecting middleware.
type stubWorker struct {
	inner http.Handler
	fault func(w http.ResponseWriter, r *http.Request) bool // true = handled
}

func (s *stubWorker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.fault != nil && s.fault(w, r) {
		return
	}
	s.inner.ServeHTTP(w, r)
}

// TestHungWorkerLeaseTTLReassigns: a worker that accepts jobs but never
// finishes them (alive, heartbeating, wedged) must not wedge the batch —
// its leases expire on TTL and the jobs land on the healthy worker.
func TestHungWorkerLeaseTTLReassigns(t *testing.T) {
	specs := testSpecs(6)
	want := sequentialBaseline(specs)

	// The hung worker accepts /submit but answers 204 to every /result
	// forever; /healthz stays healthy.
	hung := httptest.NewServer(&stubWorker{
		inner: NewWorker(nil).Handler(),
		fault: func(w http.ResponseWriter, r *http.Request) bool {
			if r.URL.Path == "/result" {
				w.WriteHeader(http.StatusNoContent)
				return true
			}
			return false
		},
	})
	defer hung.Close()
	healthy := startFleet(t, 1)

	cfg := fastConfig(hung.URL, healthy[0])
	cfg.LeaseTTL = 100 * time.Millisecond
	cfg.JobAttempts = 4
	d := New(cfg)
	got, err := d.RunSpecs(specs)
	if err != nil {
		t.Fatalf("RunSpecs: %v", err)
	}
	requireIdentical(t, got, want)

	s := d.Stats()
	if s.LeasesExpired == 0 || s.Reassignments == 0 {
		t.Fatalf("hung worker never triggered TTL expiry: %+v", s)
	}
	if s.WorkersLost != 0 {
		t.Fatalf("a responsive-but-hung worker was declared dead: %+v", s)
	}
	if s.Remote+s.Local != int64(len(specs)) {
		t.Fatalf("completion ledger broken: %+v", s)
	}
}

// TestRestartedWorkerIsResubmitted: a worker that loses a submitted job
// (process restart: fresh empty state) answers 404 on the result poll;
// the coordinator resubmits under the same token and the batch completes.
func TestRestartedWorkerIsResubmitted(t *testing.T) {
	specs := testSpecs(3)
	want := sequentialBaseline(specs)

	// Swallow the first submit: accept it on the wire, store nothing —
	// exactly what a restart between submit and poll looks like.
	var swallowed atomic.Bool
	inner := NewWorker(nil).Handler()
	srv := httptest.NewServer(&stubWorker{
		inner: inner,
		fault: func(w http.ResponseWriter, r *http.Request) bool {
			if r.URL.Path == "/submit" && swallowed.CompareAndSwap(false, true) {
				w.WriteHeader(http.StatusOK)
				return true
			}
			return false
		},
	})
	defer srv.Close()

	d := New(fastConfig(srv.URL))
	got, err := d.RunSpecs(specs)
	if err != nil {
		t.Fatalf("RunSpecs: %v", err)
	}
	requireIdentical(t, got, want)
	s := d.Stats()
	if s.SubmitRetries == 0 {
		t.Fatalf("amnesiac worker never triggered a resubmit: %+v", s)
	}
	if s.Remote != int64(len(specs)) {
		t.Fatalf("Remote = %d, want %d", s.Remote, len(specs))
	}
}

// TestCorruptResultIsNeverApplied: a worker answering 200 with garbage
// must burn its bounded fetch retries, get dropped, and the job must be
// reassigned — the corrupt bytes never reach the collected outs.
func TestCorruptResultIsNeverApplied(t *testing.T) {
	specs := testSpecs(4)
	want := sequentialBaseline(specs)

	corrupt := httptest.NewServer(&stubWorker{
		inner: NewWorker(nil).Handler(),
		fault: func(w http.ResponseWriter, r *http.Request) bool {
			if r.URL.Path == "/result" {
				w.WriteHeader(http.StatusOK)
				w.Write([]byte(`{"schema":"jessica2/dispatch","version":1,"kind":"out","crc":1,"body":{}}`))
				return true
			}
			return false
		},
	})
	defer corrupt.Close()
	healthy := startFleet(t, 1)

	d := New(fastConfig(corrupt.URL, healthy[0]))
	got, err := d.RunSpecs(specs)
	if err != nil {
		t.Fatalf("RunSpecs: %v", err)
	}
	requireIdentical(t, got, want)
	s := d.Stats()
	if s.FetchRetries == 0 {
		t.Fatalf("corrupt results never triggered fetch retries: %+v", s)
	}
	if s.LeasesExpired == 0 {
		t.Fatalf("the corrupt worker's lease never expired: %+v", s)
	}
	if s.Remote+s.Local != int64(len(specs)) {
		t.Fatalf("completion ledger broken: %+v", s)
	}
}

// TestFleetDeathDrainsLocally: when the entire fleet dies mid-batch the
// stranded jobs drain through the local pool and the batch stays
// byte-identical.
func TestFleetDeathDrainsLocally(t *testing.T) {
	specs := testSpecs(8)
	want := sequentialBaseline(specs)

	// The worker dies (connection-level) after completing two jobs.
	var done atomic.Int64
	inner := NewWorker(nil).Handler()
	var srv *httptest.Server
	var closeOnce sync.Once
	srv = httptest.NewServer(&stubWorker{
		inner: inner,
		fault: func(w http.ResponseWriter, r *http.Request) bool {
			if done.Load() >= 2 {
				closeOnce.Do(func() { go srv.CloseClientConnections() })
				// Hijack-and-drop: the client sees a broken connection.
				if hj, ok := w.(http.Hijacker); ok {
					if conn, _, err := hj.Hijack(); err == nil {
						conn.Close()
						return true
					}
				}
				return false
			}
			if r.URL.Path == "/ack" {
				done.Add(1)
			}
			return false
		},
	})
	defer srv.Close()

	cfg := fastConfig(srv.URL)
	cfg.Fallback = runner.New(2)
	d := New(cfg)
	got, err := d.RunSpecs(specs)
	if err != nil {
		t.Fatalf("RunSpecs: %v", err)
	}
	requireIdentical(t, got, want)
	s := d.Stats()
	if s.WorkersLost != 1 {
		t.Fatalf("WorkersLost = %d, want 1", s.WorkersLost)
	}
	if s.Local == 0 {
		t.Fatalf("no jobs drained locally after fleet death: %+v", s)
	}
	if s.Remote+s.Local != int64(len(specs)) {
		t.Fatalf("completion ledger broken: %+v", s)
	}
}
