package dispatch

import (
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"

	"jessica2/internal/experiments"
	"jessica2/internal/sim"
)

// maxJobBytes bounds a submitted job envelope; specs are a few KB, so this
// is pure defense against a confused or hostile client.
const maxJobBytes = 4 << 20

// Worker executes dispatched experiment jobs and serves the worker half of
// the dispatch protocol over HTTP. cmd/djvmworker is a thin main around
// this; the loopback tests mount the same handler on httptest servers, so
// the fleet the identity gate exercises is the shipped code path.
//
// The protocol is deliberately small:
//
//	GET  /healthz              liveness (the coordinator's heartbeat target)
//	POST /submit               a sealed job envelope; idempotent per token
//	GET  /result?token=T       204 while running, the sealed out when done,
//	                           404 for tokens this process has never seen
//	                           (a restarted worker lost its state — the
//	                           coordinator resubmits), 500 if the job died
//	POST /ack?token=T          frees a collected result's memory
//
// Results are keyed by lease token, not job index: two epochs of the same
// job are distinct entries, so a worker that receives a reassigned job it
// already ran under an older lease simply runs the new grant — fencing is
// the coordinator's job, the worker only has to never confuse grants.
//
// Every job runs inside a sim.EnterParallel region: one worker process can
// execute several leases concurrently (each simulation is single-threaded
// internally and shares nothing), so fan-out within a host costs nothing.
type Worker struct {
	mu   sync.Mutex
	jobs map[string]*workerJob

	logf func(format string, args ...any)

	// runs counts job executions started, for diagnostics and tests.
	runs atomic.Int64
}

// workerJob is one lease's execution state.
type workerJob struct {
	lease Lease
	done  chan struct{} // closed when the job finishes either way
	out   []byte        // sealed out envelope (nil if the job failed)
	err   string        // failure description (panic text, encode error)
}

// NewWorker returns an idle worker. logf receives protocol-level events
// (nil discards them).
func NewWorker(logf func(format string, args ...any)) *Worker {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Worker{jobs: make(map[string]*workerJob), logf: logf}
}

// Runs reports how many job executions this worker has started.
func (w *Worker) Runs() int64 { return w.runs.Load() }

// Handler returns the worker's HTTP surface.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", w.handleHealthz)
	mux.HandleFunc("POST /submit", w.handleSubmit)
	mux.HandleFunc("GET /result", w.handleResult)
	mux.HandleFunc("POST /ack", w.handleAck)
	return mux
}

func (w *Worker) handleHealthz(rw http.ResponseWriter, req *http.Request) {
	w.mu.Lock()
	n := len(w.jobs)
	w.mu.Unlock()
	rw.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(rw, `{"ok":true,"jobs":%d}`+"\n", n)
}

func (w *Worker) handleSubmit(rw http.ResponseWriter, req *http.Request) {
	data, err := readBody(rw, req, maxJobBytes)
	if err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	lease, spec, err := DecodeJob(data)
	if err != nil {
		// Typed decode failure: the submitter gets the reason, and a 400
		// tells the coordinator not to waste retries on this payload.
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	w.mu.Lock()
	if _, exists := w.jobs[lease.Token]; exists {
		// Idempotent resubmit: the coordinator retried a submit whose
		// response it lost. The first execution stands.
		w.mu.Unlock()
		rw.WriteHeader(http.StatusOK)
		return
	}
	j := &workerJob{lease: lease, done: make(chan struct{})}
	w.jobs[lease.Token] = j
	w.mu.Unlock()

	w.logf("job %d epoch %d (%s): accepted", lease.Job, lease.Epoch, spec.App)
	go w.run(j, spec)
	rw.WriteHeader(http.StatusOK)
}

// run executes one accepted lease to completion. A panicking simulation
// does not take the worker down: the panic is flattened into the job's
// error state and reported through /result as a 500, which the coordinator
// treats like any other worker failure (reassign elsewhere).
func (w *Worker) run(j *workerJob, spec experiments.Spec) {
	defer close(j.done)
	defer func() {
		if r := recover(); r != nil {
			j.err = fmt.Sprintf("job panicked: %v", r)
			w.logf("job %d epoch %d: %s", j.lease.Job, j.lease.Epoch, j.err)
		}
	}()
	w.runs.Add(1)
	sim.EnterParallel()
	out := experiments.Run(spec)
	sim.LeaveParallel()
	enc, err := EncodeOut(out)
	if err != nil {
		j.err = err.Error()
		return
	}
	j.out = enc
	w.logf("job %d epoch %d: done (%d wire bytes)", j.lease.Job, j.lease.Epoch, len(enc))
}

func (w *Worker) handleResult(rw http.ResponseWriter, req *http.Request) {
	token := req.URL.Query().Get("token")
	w.mu.Lock()
	j := w.jobs[token]
	w.mu.Unlock()
	if j == nil {
		// Unknown token: this process never accepted that lease — it
		// restarted, or the submit never arrived. The coordinator resubmits.
		http.Error(rw, "unknown lease token", http.StatusNotFound)
		return
	}
	select {
	case <-j.done:
	default:
		rw.WriteHeader(http.StatusNoContent)
		return
	}
	if j.err != "" {
		http.Error(rw, j.err, http.StatusInternalServerError)
		return
	}
	rw.Header().Set("Content-Type", "application/json")
	rw.Write(j.out)
}

func (w *Worker) handleAck(rw http.ResponseWriter, req *http.Request) {
	token := req.URL.Query().Get("token")
	w.mu.Lock()
	delete(w.jobs, token)
	w.mu.Unlock()
	rw.WriteHeader(http.StatusOK)
}

// readBody drains a bounded request body.
func readBody(rw http.ResponseWriter, req *http.Request, limit int64) ([]byte, error) {
	defer req.Body.Close()
	data, err := io.ReadAll(http.MaxBytesReader(rw, req.Body, limit))
	if err != nil {
		return nil, fmt.Errorf("reading request body: %w", err)
	}
	return data, nil
}
