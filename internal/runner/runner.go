// Package runner is the parallel deterministic experiment driver: it fans
// an ordered list of independent, seed-deterministic jobs out over a
// bounded worker pool and collects their results back in submission order.
//
// Every paper artifact (tables, figures, sensitivity and closed-loop
// sweeps) is dozens of fully independent simulator runs; executed strictly
// sequentially they bind regeneration wall-clock to a single core. Each
// job here is a pure function of its inputs (experiments.Run on a Spec, or
// a closure building its own session), shares no mutable state with its
// peers, and is collected positionally — so a parallel regeneration is
// byte-identical to the sequential one, only the wall-clock moves.
package runner

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"jessica2/internal/sim"
)

// Pool bounds the worker fan-out. The zero value and nil both mean
// sequential inline execution (one worker, no goroutines), which keeps the
// simulator's GOMAXPROCS pin and is the right default for benchmarks that
// measure single-run cost.
type Pool struct {
	workers int
}

// New returns a pool of the given width; workers <= 0 selects GOMAXPROCS.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Sequential is the explicit one-worker pool (same behavior as nil).
func Sequential() *Pool { return &Pool{workers: 1} }

// Workers reports the pool width; a nil or zero pool is one worker.
func (p *Pool) Workers() int {
	if p == nil || p.workers < 1 {
		return 1
	}
	return p.workers
}

// Parallel reports whether the pool actually fans out.
func (p *Pool) Parallel() bool { return p.Workers() > 1 }

// JobPanic carries a job panic out of Collect with the original panic value
// and the panicking goroutine's stack intact. Collect re-panics with a
// *JobPanic instead of a flattened string so a caller that recovers (or a
// crash report) still has the real Value — a typed error, a sentinel — and
// the stack of the job that raised it, not the stack of the collecting
// goroutine.
type JobPanic struct {
	// Job is the panicking job's submission index.
	Job int
	// Value is the original panic value, unmodified.
	Value any
	// Stack is the panicking goroutine's stack trace (debug.Stack), captured
	// at recovery inside the job's own goroutine.
	Stack []byte
}

// Error renders the historical "runner: job N panicked: v" message, so a
// recover site matching on the text keeps working.
func (p *JobPanic) Error() string {
	return fmt.Sprintf("runner: job %d panicked: %v", p.Job, p.Value)
}

func (p *JobPanic) String() string { return p.Error() }

// Unwrap exposes a panic Value that was itself an error to errors.Is/As.
func (p *JobPanic) Unwrap() error {
	if err, ok := p.Value.(error); ok {
		return err
	}
	return nil
}

// Collect executes every job and returns the results in submission order.
// Jobs must be independent (no shared mutable state) and deterministic;
// workers pull jobs in index order from a shared cursor, so with one worker
// the execution order — not just the result order — matches a plain loop.
//
// A panicking job does not tear down its worker: remaining jobs still run,
// and the first panic (by job index, deterministically) is re-raised on the
// caller as a *JobPanic preserving the original value and stack once all
// workers have parked. While jobs are in flight the simulator's
// process-global tunings are suspended (sim.EnterParallel), so concurrent
// engines neither race on them nor serialize each other.
func Collect[T any](p *Pool, jobs []func() T) []T {
	out := make([]T, len(jobs))
	workers := p.Workers()
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for i, job := range jobs {
			out[i] = job()
		}
		return out
	}

	sim.EnterParallel()
	defer sim.LeaveParallel()

	var (
		cursor atomic.Int64
		wg     sync.WaitGroup
		mu     sync.Mutex
		first  *JobPanic
	)
	run := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				stack := debug.Stack()
				mu.Lock()
				if first == nil || i < first.Job {
					first = &JobPanic{Job: i, Value: r, Stack: stack}
				}
				mu.Unlock()
			}
		}()
		out[i] = jobs[i]()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				run(i)
			}
		}()
	}
	wg.Wait()
	if first != nil {
		panic(first)
	}
	return out
}

// Go runs fn for every index in [0, n) and is Collect for side-effecting
// jobs that write their own results (e.g. into a caller-allocated slice
// slot). The same independence and determinism rules apply.
func Go(p *Pool, n int, fn func(i int)) {
	jobs := make([]func() struct{}, n)
	for i := range jobs {
		i := i
		jobs[i] = func() struct{} { fn(i); return struct{}{} }
	}
	Collect(p, jobs)
}

// Result is one fallible job's outcome in a TryCollect batch.
type Result[T any] struct {
	// Value is the last attempt's return (the zero value when Err is set).
	Value T
	// Err is the final attempt's error; nil means the job succeeded.
	Err error
	// Attempts counts executions of the job (1 = first try succeeded).
	Attempts int
}

// Backoff is a capped exponential per-attempt delay policy: the n-th retry
// of an operation waits min(Base·2ⁿ, Max) of real wall-clock time. The zero
// value means no delay at all (every retry is immediate), and Max <= 0
// leaves the doubling uncapped. The delays are plain time.Sleep real time,
// not simulated time — retries here pace host-side work (flaky external
// checks, remote workers), never the simulator's virtual clock.
type Backoff struct {
	// Base is the delay before the first retry; <= 0 disables all delays.
	Base time.Duration
	// Max caps the doubled delays; <= 0 means uncapped.
	Max time.Duration
}

// Delay returns the pause before retry number attempt (0 = first retry).
func (b Backoff) Delay(attempt int) time.Duration {
	d := b.Base
	if d <= 0 {
		return 0
	}
	if attempt < 0 {
		attempt = 0 // clamp: a confused caller gets the base delay, not a hot loop
	}
	for ; attempt > 0; attempt-- {
		if b.Max > 0 && d >= b.Max {
			return b.Max
		}
		if d > math.MaxInt64/2 {
			return time.Duration(math.MaxInt64)
		}
		d *= 2
	}
	if b.Max > 0 && d > b.Max {
		d = b.Max
	}
	return d
}

// TryCollect is Collect for fallible jobs: each job that returns an error
// is retried in place — on the same worker, immediately, up to retries
// additional attempts — and the final outcomes come back in submission
// order. Transient failures (a flaky external check, a probabilistic
// acceptance bar) therefore cost only their own re-execution; they neither
// abort the batch nor perturb its ordering. Jobs must be independent like
// Collect's; a job whose failure is deterministic simply burns its retry
// budget and reports the last error. Panics are not converted to errors —
// they propagate exactly as under Collect.
func TryCollect[T any](p *Pool, retries int, jobs []func() (T, error)) []Result[T] {
	return TryCollectCtx(context.Background(), p, retries, Backoff{}, jobs)
}

// TryCollectCtx is TryCollect with a per-attempt backoff policy and a
// cancellation path. Between a failed attempt and its retry the worker
// sleeps bo.Delay(attempt) of real time (capped exponential; the zero
// Backoff retries immediately, exactly like TryCollect). Before every
// attempt the context is consulted: once ctx is cancelled, jobs stop
// retrying — and jobs that have not started at all stop executing — and
// report ctx's error as their final Err. A job already executing is never
// interrupted mid-attempt (jobs are not context-aware), so cancellation
// latency is bounded by one attempt plus one backoff sleep. Attempts counts
// executions as in TryCollect; a job cancelled before its first attempt
// reports Attempts == 0.
func TryCollectCtx[T any](ctx context.Context, p *Pool, retries int, bo Backoff, jobs []func() (T, error)) []Result[T] {
	if ctx == nil {
		ctx = context.Background()
	}
	if retries < 0 {
		retries = 0
	}
	wrapped := make([]func() Result[T], len(jobs))
	for i := range jobs {
		job := jobs[i]
		wrapped[i] = func() Result[T] {
			var res Result[T]
			for attempt := 0; ; attempt++ {
				if err := ctx.Err(); err != nil {
					res.Err = err
					return res
				}
				res.Value, res.Err = job()
				res.Attempts = attempt + 1
				if res.Err == nil {
					return res
				}
				var zero T
				res.Value = zero
				if attempt == retries {
					return res
				}
				if d := bo.Delay(attempt); d > 0 {
					time.Sleep(d)
				}
			}
		}
	}
	return Collect(p, wrapped)
}

// FirstErr scans a TryCollect batch and returns the first failed job's
// index and error (by submission order, deterministically), or (-1, nil)
// when every job succeeded.
func FirstErr[T any](results []Result[T]) (int, error) {
	for i := range results {
		if results[i].Err != nil {
			return i, results[i].Err
		}
	}
	return -1, nil
}
