// Package runner is the parallel deterministic experiment driver: it fans
// an ordered list of independent, seed-deterministic jobs out over a
// bounded worker pool and collects their results back in submission order.
//
// Every paper artifact (tables, figures, sensitivity and closed-loop
// sweeps) is dozens of fully independent simulator runs; executed strictly
// sequentially they bind regeneration wall-clock to a single core. Each
// job here is a pure function of its inputs (experiments.Run on a Spec, or
// a closure building its own session), shares no mutable state with its
// peers, and is collected positionally — so a parallel regeneration is
// byte-identical to the sequential one, only the wall-clock moves.
package runner

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"jessica2/internal/sim"
)

// Pool bounds the worker fan-out. The zero value and nil both mean
// sequential inline execution (one worker, no goroutines), which keeps the
// simulator's GOMAXPROCS pin and is the right default for benchmarks that
// measure single-run cost.
type Pool struct {
	workers int
}

// New returns a pool of the given width; workers <= 0 selects GOMAXPROCS.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Sequential is the explicit one-worker pool (same behavior as nil).
func Sequential() *Pool { return &Pool{workers: 1} }

// Workers reports the pool width; a nil or zero pool is one worker.
func (p *Pool) Workers() int {
	if p == nil || p.workers < 1 {
		return 1
	}
	return p.workers
}

// Parallel reports whether the pool actually fans out.
func (p *Pool) Parallel() bool { return p.Workers() > 1 }

// jobPanic carries a worker panic back to the submitting goroutine.
type jobPanic struct {
	job int
	val any
}

// Collect executes every job and returns the results in submission order.
// Jobs must be independent (no shared mutable state) and deterministic;
// workers pull jobs in index order from a shared cursor, so with one worker
// the execution order — not just the result order — matches a plain loop.
//
// A panicking job does not tear down its worker: remaining jobs still run,
// and the first panic (by job index, deterministically) is re-raised on the
// caller once all workers have parked. While jobs are in flight the
// simulator's process-global tunings are suspended (sim.EnterParallel), so
// concurrent engines neither race on them nor serialize each other.
func Collect[T any](p *Pool, jobs []func() T) []T {
	out := make([]T, len(jobs))
	workers := p.Workers()
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for i, job := range jobs {
			out[i] = job()
		}
		return out
	}

	sim.EnterParallel()
	defer sim.LeaveParallel()

	var (
		cursor atomic.Int64
		wg     sync.WaitGroup
		mu     sync.Mutex
		first  *jobPanic
	)
	run := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				mu.Lock()
				if first == nil || i < first.job {
					first = &jobPanic{job: i, val: r}
				}
				mu.Unlock()
			}
		}()
		out[i] = jobs[i]()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				run(i)
			}
		}()
	}
	wg.Wait()
	if first != nil {
		panic(fmt.Sprintf("runner: job %d panicked: %v", first.job, first.val))
	}
	return out
}

// Go runs fn for every index in [0, n) and is Collect for side-effecting
// jobs that write their own results (e.g. into a caller-allocated slice
// slot). The same independence and determinism rules apply.
func Go(p *Pool, n int, fn func(i int)) {
	jobs := make([]func() struct{}, n)
	for i := range jobs {
		i := i
		jobs[i] = func() struct{} { fn(i); return struct{}{} }
	}
	Collect(p, jobs)
}

// Result is one fallible job's outcome in a TryCollect batch.
type Result[T any] struct {
	// Value is the last attempt's return (the zero value when Err is set).
	Value T
	// Err is the final attempt's error; nil means the job succeeded.
	Err error
	// Attempts counts executions of the job (1 = first try succeeded).
	Attempts int
}

// TryCollect is Collect for fallible jobs: each job that returns an error
// is retried in place — on the same worker, immediately, up to retries
// additional attempts — and the final outcomes come back in submission
// order. Transient failures (a flaky external check, a probabilistic
// acceptance bar) therefore cost only their own re-execution; they neither
// abort the batch nor perturb its ordering. Jobs must be independent like
// Collect's; a job whose failure is deterministic simply burns its retry
// budget and reports the last error. Panics are not converted to errors —
// they propagate exactly as under Collect.
func TryCollect[T any](p *Pool, retries int, jobs []func() (T, error)) []Result[T] {
	if retries < 0 {
		retries = 0
	}
	wrapped := make([]func() Result[T], len(jobs))
	for i := range jobs {
		job := jobs[i]
		wrapped[i] = func() Result[T] {
			var res Result[T]
			for attempt := 0; ; attempt++ {
				res.Value, res.Err = job()
				res.Attempts = attempt + 1
				if res.Err == nil {
					return res
				}
				var zero T
				res.Value = zero
				if attempt == retries {
					return res
				}
			}
		}
	}
	return Collect(p, wrapped)
}

// FirstErr scans a TryCollect batch and returns the first failed job's
// index and error (by submission order, deterministically), or (-1, nil)
// when every job succeeded.
func FirstErr[T any](results []Result[T]) (int, error) {
	for i := range results {
		if results[i].Err != nil {
			return i, results[i].Err
		}
	}
	return -1, nil
}
