package runner

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCollectOrderPreserved(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		p := New(workers)
		jobs := make([]func() int, 100)
		for i := range jobs {
			i := i
			jobs[i] = func() int {
				// Reverse-staggered completion: later jobs finish first, so
				// any completion-order collection would scramble results.
				time.Sleep(time.Duration(len(jobs)-i) * 10 * time.Microsecond)
				return i * i
			}
		}
		out := Collect(p, jobs)
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestCollectBoundsWorkers(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int64
	p := New(workers)
	jobs := make([]func() int, 64)
	for i := range jobs {
		jobs[i] = func() int {
			n := inFlight.Add(1)
			for {
				cur := peak.Load()
				if n <= cur || peak.CompareAndSwap(cur, n) {
					break
				}
			}
			time.Sleep(200 * time.Microsecond)
			inFlight.Add(-1)
			return 0
		}
	}
	Collect(p, jobs)
	if got := peak.Load(); got > workers {
		t.Fatalf("observed %d concurrent jobs, pool width %d", got, workers)
	}
}

func TestCollectPanicPropagatesLowestIndex(t *testing.T) {
	p := New(4)
	jobs := make([]func() int, 16)
	for i := range jobs {
		i := i
		jobs[i] = func() int {
			if i == 3 || i == 11 {
				panic(i)
			}
			return i
		}
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic did not propagate")
		}
		jp, ok := r.(*JobPanic)
		if !ok {
			t.Fatalf("panic value is %T, want *JobPanic: %v", r, r)
		}
		if jp.Job != 3 {
			t.Fatalf("surfaced job %d, want the lowest index 3", jp.Job)
		}
		if !strings.Contains(jp.Error(), "job 3 panicked: 3") {
			t.Fatalf("wrong panic text: %q", jp.Error())
		}
	}()
	Collect(p, jobs)
}

// TestCollectPanicPreservesValueAndStack: the re-panicked *JobPanic must
// carry the job's original panic value (not a formatted copy) and the
// worker goroutine's stack at panic time, so a crashing experiment stays
// debuggable through the pool fan-out.
func TestCollectPanicPreservesValueAndStack(t *testing.T) {
	type marker struct{ n int }
	cause := &marker{n: 7}
	defer func() {
		r := recover()
		jp, ok := r.(*JobPanic)
		if !ok {
			t.Fatalf("panic value is %T, want *JobPanic", r)
		}
		if jp.Value != cause {
			t.Fatalf("Value = %#v, want the original panic value %#v", jp.Value, cause)
		}
		if !strings.Contains(string(jp.Stack), "panickyHelperForStackCapture") {
			t.Fatalf("Stack does not show the panicking frame:\n%s", jp.Stack)
		}
	}()
	Collect(New(2), []func() int{
		func() int { return 0 },
		func() int { panickyHelperForStackCapture(cause); return 1 },
	})
}

//go:noinline
func panickyHelperForStackCapture(v any) { panic(v) }

// TestCollectPanicUnwrapsError: when a job panics with an error value,
// errors.Is sees through the JobPanic wrapper.
func TestCollectPanicUnwrapsError(t *testing.T) {
	boom := errors.New("boom")
	defer func() {
		jp, ok := recover().(*JobPanic)
		if !ok {
			t.Fatal("expected *JobPanic")
		}
		if !errors.Is(jp, boom) {
			t.Fatalf("errors.Is(%v, boom) = false", jp)
		}
	}()
	Collect(New(2), []func() int{
		func() int { panic(boom) },
		func() int { return 0 },
	})
}

func TestNilAndSequentialPoolsRunInline(t *testing.T) {
	// Inline execution must use the calling goroutine in submission order.
	var order []int
	var mu sync.Mutex
	jobs := make([]func() int, 8)
	for i := range jobs {
		i := i
		jobs[i] = func() int {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			return i
		}
	}
	for _, p := range []*Pool{nil, Sequential(), {}} {
		order = order[:0]
		out := Collect(p, jobs)
		for i := range jobs {
			if order[i] != i || out[i] != i {
				t.Fatalf("pool %+v: order=%v out=%v", p, order, out)
			}
		}
		if p.Parallel() {
			t.Fatalf("pool %+v claims to be parallel", p)
		}
	}
}

func TestGoCoversAllIndexes(t *testing.T) {
	hit := make([]atomic.Int32, 50)
	Go(New(8), len(hit), func(i int) { hit[i].Add(1) })
	for i := range hit {
		if hit[i].Load() != 1 {
			t.Fatalf("index %d ran %d times", i, hit[i].Load())
		}
	}
}

func TestWorkersDefaults(t *testing.T) {
	if New(0).Workers() < 1 {
		t.Fatal("New(0) must default to at least one worker")
	}
	if got := New(7).Workers(); got != 7 {
		t.Fatalf("Workers() = %d, want 7", got)
	}
	if (*Pool)(nil).Workers() != 1 {
		t.Fatal("nil pool must be one worker")
	}
}

// TestTryCollectTransientFailureRecovers: a job failing on its first
// attempt must succeed on retry without perturbing submission order —
// the regression shape for flaky experiment cells.
func TestTryCollectTransientFailureRecovers(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := New(workers)
		const n = 50
		attempts := make([]atomic.Int64, n)
		jobs := make([]func() (int, error), n)
		for i := range jobs {
			i := i
			jobs[i] = func() (int, error) {
				// Every third job fails its first two attempts.
				if a := attempts[i].Add(1); i%3 == 0 && a <= 2 {
					return -1, errors.New("transient")
				}
				// Reverse-staggered completion, as in the Collect order test.
				time.Sleep(time.Duration(n-i) * 10 * time.Microsecond)
				return i * i, nil
			}
		}
		out := TryCollect(p, 2, jobs)
		if idx, err := FirstErr(out); err != nil {
			t.Fatalf("workers=%d: job %d failed despite retry budget: %v", workers, idx, err)
		}
		for i, r := range out {
			if r.Value != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, r.Value, i*i)
			}
			wantAttempts := 1
			if i%3 == 0 {
				wantAttempts = 3
			}
			if r.Attempts != wantAttempts {
				t.Fatalf("workers=%d: job %d took %d attempts, want %d", workers, i, r.Attempts, wantAttempts)
			}
		}
	}
}

// TestTryCollectBoundedRetries: a deterministically failing job reports its
// last error after exactly 1+retries attempts, zeroes its value, and does
// not poison its neighbors.
func TestTryCollectBoundedRetries(t *testing.T) {
	var ran atomic.Int64
	boom := errors.New("permanent")
	jobs := []func() (string, error){
		func() (string, error) { return "ok-0", nil },
		func() (string, error) { ran.Add(1); return "partial", boom },
		func() (string, error) { return "ok-2", nil },
	}
	out := TryCollect(New(2), 3, jobs)
	if out[0].Err != nil || out[0].Value != "ok-0" || out[2].Err != nil || out[2].Value != "ok-2" {
		t.Fatalf("healthy neighbors perturbed: %+v", out)
	}
	if out[1].Err != boom {
		t.Fatalf("err = %v, want %v", out[1].Err, boom)
	}
	if out[1].Value != "" {
		t.Fatalf("failed job's value = %q, want zeroed", out[1].Value)
	}
	if got := ran.Load(); got != 4 {
		t.Fatalf("failing job ran %d times, want 4 (1 + 3 retries)", got)
	}
	if out[1].Attempts != 4 {
		t.Fatalf("Attempts = %d, want 4", out[1].Attempts)
	}
	if idx, err := FirstErr(out); idx != 1 || err != boom {
		t.Fatalf("FirstErr = (%d, %v), want (1, %v)", idx, err, boom)
	}
}

// TestTryCollectNegativeRetries clamps to plain single attempts.
func TestTryCollectNegativeRetries(t *testing.T) {
	var ran atomic.Int64
	out := TryCollect(nil, -5, []func() (int, error){
		func() (int, error) { ran.Add(1); return 0, errors.New("nope") },
	})
	if ran.Load() != 1 || out[0].Attempts != 1 {
		t.Fatalf("negative retries: ran %d, attempts %d, want 1/1", ran.Load(), out[0].Attempts)
	}
}

// TestBackoffDelay pins the capped-exponential schedule, its zero-value
// no-delay contract, and overflow safety at absurd attempt counts.
func TestBackoffDelay(t *testing.T) {
	cases := []struct {
		name    string
		bo      Backoff
		attempt int
		want    time.Duration
	}{
		{"zero value never delays", Backoff{}, 0, 0},
		{"zero value never delays late", Backoff{}, 9, 0},
		{"first attempt is base", Backoff{Base: 10 * time.Millisecond, Max: time.Second}, 0, 10 * time.Millisecond},
		{"doubles", Backoff{Base: 10 * time.Millisecond, Max: time.Second}, 1, 20 * time.Millisecond},
		{"doubles again", Backoff{Base: 10 * time.Millisecond, Max: time.Second}, 3, 80 * time.Millisecond},
		{"hits the cap", Backoff{Base: 10 * time.Millisecond, Max: 50 * time.Millisecond}, 4, 50 * time.Millisecond},
		{"stays at the cap", Backoff{Base: 10 * time.Millisecond, Max: 50 * time.Millisecond}, 40, 50 * time.Millisecond},
		{"negative attempt clamps to base", Backoff{Base: 10 * time.Millisecond, Max: time.Second}, -3, 10 * time.Millisecond},
		{"no cap grows freely", Backoff{Base: time.Millisecond}, 10, 1024 * time.Millisecond},
		{"huge attempt does not overflow", Backoff{Base: time.Second}, 500, Backoff{Base: time.Second}.Delay(499)},
	}
	for _, tc := range cases {
		if got := tc.bo.Delay(tc.attempt); got != tc.want {
			t.Errorf("%s: Delay(%d) = %v, want %v", tc.name, tc.attempt, got, tc.want)
		}
	}
	// Overflow guard: the uncapped schedule must saturate positive, never
	// wrap negative (a negative Sleep returns immediately — a hot loop).
	if d := (Backoff{Base: time.Hour}).Delay(200); d <= 0 {
		t.Fatalf("uncapped Delay(200) = %v, want a positive saturated delay", d)
	}
}

// TestTryCollectCtxBacksOff: failed attempts must be spaced by the backoff
// schedule (wall-clock lower bound), and the result still recovers.
func TestTryCollectCtxBacksOff(t *testing.T) {
	var ran atomic.Int64
	bo := Backoff{Base: 20 * time.Millisecond, Max: 80 * time.Millisecond}
	start := time.Now()
	out := TryCollectCtx(context.Background(), New(2), 3, bo, []func() (int, error){
		func() (int, error) {
			if ran.Add(1) <= 2 {
				return 0, errors.New("transient")
			}
			return 42, nil
		},
	})
	elapsed := time.Since(start)
	if out[0].Err != nil || out[0].Value != 42 || out[0].Attempts != 3 {
		t.Fatalf("result = %+v, want 42 after 3 attempts", out[0])
	}
	// Two failed attempts sleep Delay(0)+Delay(1) = 20ms+40ms.
	if want := 60 * time.Millisecond; elapsed < want {
		t.Fatalf("elapsed %v, want at least %v of backoff", elapsed, want)
	}
}

// TestTryCollectCtxNoBackoffMatchesTryCollect: the zero Backoff keeps the
// historical immediate-retry behavior TryCollect delegates to.
func TestTryCollectCtxNoBackoffMatchesTryCollect(t *testing.T) {
	var ran atomic.Int64
	start := time.Now()
	out := TryCollectCtx(context.Background(), nil, 4, Backoff{}, []func() (int, error){
		func() (int, error) { ran.Add(1); return 0, errors.New("always") },
	})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("zero backoff slept: %v", elapsed)
	}
	if ran.Load() != 5 || out[0].Attempts != 5 {
		t.Fatalf("ran %d / attempts %d, want 5/5", ran.Load(), out[0].Attempts)
	}
}

// TestTryCollectCtxCancelled: cancellation before the batch starts reports
// ctx.Err() for every job without running anything.
func TestTryCollectCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	out := TryCollectCtx(ctx, New(2), 3, Backoff{}, []func() (int, error){
		func() (int, error) { ran.Add(1); return 1, nil },
		func() (int, error) { ran.Add(1); return 2, nil },
	})
	if ran.Load() != 0 {
		t.Fatalf("%d jobs ran under a cancelled context", ran.Load())
	}
	for i, r := range out {
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("out[%d].Err = %v, want context.Canceled", i, r.Err)
		}
		if r.Value != 0 || r.Attempts != 0 {
			t.Fatalf("out[%d] = %+v, want zero value and zero attempts", i, r)
		}
	}
}

// TestTryCollectCtxCancelMidRetries: cancelling during a retry sequence
// stops further attempts and surfaces the context error with the attempt
// count actually executed.
func TestTryCollectCtxCancelMidRetries(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	out := TryCollectCtx(ctx, nil, 1000, Backoff{Base: time.Millisecond, Max: time.Millisecond}, []func() (int, error){
		func() (int, error) {
			if ran.Add(1) == 3 {
				cancel()
			}
			return 0, errors.New("keep trying")
		},
	})
	if !errors.Is(out[0].Err, context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", out[0].Err)
	}
	if got := ran.Load(); got != 3 {
		t.Fatalf("job ran %d times, want 3 (cancel stops the retry loop)", got)
	}
	if out[0].Attempts != 3 {
		t.Fatalf("Attempts = %d, want 3", out[0].Attempts)
	}
}
