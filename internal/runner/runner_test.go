package runner

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCollectOrderPreserved(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		p := New(workers)
		jobs := make([]func() int, 100)
		for i := range jobs {
			i := i
			jobs[i] = func() int {
				// Reverse-staggered completion: later jobs finish first, so
				// any completion-order collection would scramble results.
				time.Sleep(time.Duration(len(jobs)-i) * 10 * time.Microsecond)
				return i * i
			}
		}
		out := Collect(p, jobs)
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestCollectBoundsWorkers(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int64
	p := New(workers)
	jobs := make([]func() int, 64)
	for i := range jobs {
		jobs[i] = func() int {
			n := inFlight.Add(1)
			for {
				cur := peak.Load()
				if n <= cur || peak.CompareAndSwap(cur, n) {
					break
				}
			}
			time.Sleep(200 * time.Microsecond)
			inFlight.Add(-1)
			return 0
		}
	}
	Collect(p, jobs)
	if got := peak.Load(); got > workers {
		t.Fatalf("observed %d concurrent jobs, pool width %d", got, workers)
	}
}

func TestCollectPanicPropagatesLowestIndex(t *testing.T) {
	p := New(4)
	jobs := make([]func() int, 16)
	for i := range jobs {
		i := i
		jobs[i] = func() int {
			if i == 3 || i == 11 {
				panic(i)
			}
			return i
		}
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic did not propagate")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "job 3 panicked: 3") {
			t.Fatalf("wrong panic surfaced: %v", r)
		}
	}()
	Collect(p, jobs)
}

func TestNilAndSequentialPoolsRunInline(t *testing.T) {
	// Inline execution must use the calling goroutine in submission order.
	var order []int
	var mu sync.Mutex
	jobs := make([]func() int, 8)
	for i := range jobs {
		i := i
		jobs[i] = func() int {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			return i
		}
	}
	for _, p := range []*Pool{nil, Sequential(), {}} {
		order = order[:0]
		out := Collect(p, jobs)
		for i := range jobs {
			if order[i] != i || out[i] != i {
				t.Fatalf("pool %+v: order=%v out=%v", p, order, out)
			}
		}
		if p.Parallel() {
			t.Fatalf("pool %+v claims to be parallel", p)
		}
	}
}

func TestGoCoversAllIndexes(t *testing.T) {
	hit := make([]atomic.Int32, 50)
	Go(New(8), len(hit), func(i int) { hit[i].Add(1) })
	for i := range hit {
		if hit[i].Load() != 1 {
			t.Fatalf("index %d ran %d times", i, hit[i].Load())
		}
	}
}

func TestWorkersDefaults(t *testing.T) {
	if New(0).Workers() < 1 {
		t.Fatal("New(0) must default to at least one worker")
	}
	if got := New(7).Workers(); got != 7 {
		t.Fatalf("Workers() = %d, want 7", got)
	}
	if (*Pool)(nil).Workers() != 1 {
		t.Fatal("nil pool must be one worker")
	}
}

// TestTryCollectTransientFailureRecovers: a job failing on its first
// attempt must succeed on retry without perturbing submission order —
// the regression shape for flaky experiment cells.
func TestTryCollectTransientFailureRecovers(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := New(workers)
		const n = 50
		attempts := make([]atomic.Int64, n)
		jobs := make([]func() (int, error), n)
		for i := range jobs {
			i := i
			jobs[i] = func() (int, error) {
				// Every third job fails its first two attempts.
				if a := attempts[i].Add(1); i%3 == 0 && a <= 2 {
					return -1, errors.New("transient")
				}
				// Reverse-staggered completion, as in the Collect order test.
				time.Sleep(time.Duration(n-i) * 10 * time.Microsecond)
				return i * i, nil
			}
		}
		out := TryCollect(p, 2, jobs)
		if idx, err := FirstErr(out); err != nil {
			t.Fatalf("workers=%d: job %d failed despite retry budget: %v", workers, idx, err)
		}
		for i, r := range out {
			if r.Value != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, r.Value, i*i)
			}
			wantAttempts := 1
			if i%3 == 0 {
				wantAttempts = 3
			}
			if r.Attempts != wantAttempts {
				t.Fatalf("workers=%d: job %d took %d attempts, want %d", workers, i, r.Attempts, wantAttempts)
			}
		}
	}
}

// TestTryCollectBoundedRetries: a deterministically failing job reports its
// last error after exactly 1+retries attempts, zeroes its value, and does
// not poison its neighbors.
func TestTryCollectBoundedRetries(t *testing.T) {
	var ran atomic.Int64
	boom := errors.New("permanent")
	jobs := []func() (string, error){
		func() (string, error) { return "ok-0", nil },
		func() (string, error) { ran.Add(1); return "partial", boom },
		func() (string, error) { return "ok-2", nil },
	}
	out := TryCollect(New(2), 3, jobs)
	if out[0].Err != nil || out[0].Value != "ok-0" || out[2].Err != nil || out[2].Value != "ok-2" {
		t.Fatalf("healthy neighbors perturbed: %+v", out)
	}
	if out[1].Err != boom {
		t.Fatalf("err = %v, want %v", out[1].Err, boom)
	}
	if out[1].Value != "" {
		t.Fatalf("failed job's value = %q, want zeroed", out[1].Value)
	}
	if got := ran.Load(); got != 4 {
		t.Fatalf("failing job ran %d times, want 4 (1 + 3 retries)", got)
	}
	if out[1].Attempts != 4 {
		t.Fatalf("Attempts = %d, want 4", out[1].Attempts)
	}
	if idx, err := FirstErr(out); idx != 1 || err != boom {
		t.Fatalf("FirstErr = (%d, %v), want (1, %v)", idx, err, boom)
	}
}

// TestTryCollectNegativeRetries clamps to plain single attempts.
func TestTryCollectNegativeRetries(t *testing.T) {
	var ran atomic.Int64
	out := TryCollect(nil, -5, []func() (int, error){
		func() (int, error) { ran.Add(1); return 0, errors.New("nope") },
	})
	if ran.Load() != 1 || out[0].Attempts != 1 {
		t.Fatalf("negative retries: ran %d, attempts %d, want 1/1", ran.Load(), out[0].Attempts)
	}
}
