package runner

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCollectOrderPreserved(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		p := New(workers)
		jobs := make([]func() int, 100)
		for i := range jobs {
			i := i
			jobs[i] = func() int {
				// Reverse-staggered completion: later jobs finish first, so
				// any completion-order collection would scramble results.
				time.Sleep(time.Duration(len(jobs)-i) * 10 * time.Microsecond)
				return i * i
			}
		}
		out := Collect(p, jobs)
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestCollectBoundsWorkers(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int64
	p := New(workers)
	jobs := make([]func() int, 64)
	for i := range jobs {
		jobs[i] = func() int {
			n := inFlight.Add(1)
			for {
				cur := peak.Load()
				if n <= cur || peak.CompareAndSwap(cur, n) {
					break
				}
			}
			time.Sleep(200 * time.Microsecond)
			inFlight.Add(-1)
			return 0
		}
	}
	Collect(p, jobs)
	if got := peak.Load(); got > workers {
		t.Fatalf("observed %d concurrent jobs, pool width %d", got, workers)
	}
}

func TestCollectPanicPropagatesLowestIndex(t *testing.T) {
	p := New(4)
	jobs := make([]func() int, 16)
	for i := range jobs {
		i := i
		jobs[i] = func() int {
			if i == 3 || i == 11 {
				panic(i)
			}
			return i
		}
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic did not propagate")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "job 3 panicked: 3") {
			t.Fatalf("wrong panic surfaced: %v", r)
		}
	}()
	Collect(p, jobs)
}

func TestNilAndSequentialPoolsRunInline(t *testing.T) {
	// Inline execution must use the calling goroutine in submission order.
	var order []int
	var mu sync.Mutex
	jobs := make([]func() int, 8)
	for i := range jobs {
		i := i
		jobs[i] = func() int {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			return i
		}
	}
	for _, p := range []*Pool{nil, Sequential(), {}} {
		order = order[:0]
		out := Collect(p, jobs)
		for i := range jobs {
			if order[i] != i || out[i] != i {
				t.Fatalf("pool %+v: order=%v out=%v", p, order, out)
			}
		}
		if p.Parallel() {
			t.Fatalf("pool %+v claims to be parallel", p)
		}
	}
}

func TestGoCoversAllIndexes(t *testing.T) {
	hit := make([]atomic.Int32, 50)
	Go(New(8), len(hit), func(i int) { hit[i].Add(1) })
	for i := range hit {
		if hit[i].Load() != 1 {
			t.Fatalf("index %d ran %d times", i, hit[i].Load())
		}
	}
}

func TestWorkersDefaults(t *testing.T) {
	if New(0).Workers() < 1 {
		t.Fatal("New(0) must default to at least one worker")
	}
	if got := New(7).Workers(); got != 7 {
		t.Fatalf("Workers() = %d, want 7", got)
	}
	if (*Pool)(nil).Workers() != 1 {
		t.Fatal("nil pool must be one worker")
	}
}
