package session

import (
	"jessica2/internal/heap"
	"jessica2/internal/profile"
	"jessica2/internal/sampling"
)

// WarmStartPolicy is the profile-guided closed-loop controller: it spends
// the sampling budget only where the live run diverges from a stored
// profile. On a warm start (Config.Profile.Load accepted) the stored
// placement is already applied before epoch 0 and the TCM accumulator is
// seeded, so the policy's job is (1) to replay the stored hot-object homes
// early — the knowledge the cold run paid whole phases to learn — and
// (2) to drive the sampling rate from the snapshot's Divergence signal:
// floor rate while the live correlation structure matches the profile,
// reopening to the full rate (and delegating to the Inner optimizer) when
// a phase shift pushes divergence past the High water mark.
//
// When no profile was loaded (snapshot Divergence < 0 — a cold or
// fingerprint-mismatched run) the policy is a transparent proxy for Inner,
// so "warmstart without a profile" degrades to plain rebalancing.
type WarmStartPolicy struct {
	// Inner is the optimizer consulted while the rate gate is open (and
	// always, on cold runs).
	Inner Policy
	// Profile is the stored artifact whose hot homes are replayed.
	Profile *profile.Profile
	// Low and High are the divergence hysteresis water marks: the gate
	// closes (floor rate, Inner muted) when divergence falls below Low and
	// reopens (Max rate, Inner consulted) when it rises above High.
	Low, High float64
	// Floor is the converged sampling rate; Max the reopened rate.
	Floor, Max sampling.Rate

	open     bool
	rate     sampling.Rate
	replayed bool
}

// NewWarmStartPolicy returns the default tuning around the given stored
// profile: a RebalancePolicy inner optimizer, 0.10/0.35 hysteresis, 1X
// floor and MaxRate reopen.
func NewWarmStartPolicy(p *profile.Profile) *WarmStartPolicy {
	return &WarmStartPolicy{
		Inner:   NewRebalancePolicy(),
		Profile: p,
		Low:     0.10,
		High:    0.35,
		Floor:   1,
		Max:     sampling.MaxRate,
	}
}

// Name implements Policy.
func (p *WarmStartPolicy) Name() string { return "warmstart" }

// NeedsProfile implements Policy: the divergence signal needs the live map.
func (p *WarmStartPolicy) NeedsProfile() bool { return true }

// Observe implements Policy.
func (p *WarmStartPolicy) Observe(snap *Snapshot) []Action {
	if snap.Divergence < 0 {
		// No profile loaded: transparent cold-start proxy.
		if p.Inner != nil {
			return p.Inner.Observe(snap)
		}
		return nil
	}
	var acts []Action

	// 1. Replay the stored hot-object homes at the first boundary, in one
	// bulk pass: these are the decisions the profiled run converged to, and
	// objects that already exist (closed-loop mixes preallocate their
	// records) re-home immediately. Objects not yet allocated no-op with a
	// "no such object" note and are picked up by the divergence path later.
	if !p.replayed {
		p.replayed = true
		if p.Profile != nil {
			for _, hh := range p.Profile.HotHomes {
				acts = append(acts, RehomeObject{Object: heap.ObjectID(hh.Key), To: int(hh.Home)})
			}
		}
	}

	// 2. Divergence-gated sampling rate with hysteresis. The first boundary
	// decides from the seeded map (matching profile → below Low → floor);
	// emitted only on change so a converged run charges one resample pass.
	if snap.Divergence >= p.High {
		p.open = true
	} else if snap.Divergence <= p.Low {
		p.open = false
	}
	want := p.Floor
	if p.open {
		want = p.Max
	}
	if want != p.rate {
		p.rate = want
		acts = append(acts, SetSamplingRate{Rate: want})
	}

	// 3. While the gate is open the live run has drifted from the profile:
	// hand the snapshot to the inner optimizer so placement re-converges
	// from fresh evidence. While closed, the profile is the plan — the
	// inner optimizer stays muted, the run coasts at the floor rate, and
	// newly surfaced shared objects are steered to their stored homes
	// (open-loop workloads allocate lazily, so the epoch-1 replay cannot
	// reach objects that do not exist yet).
	if p.open {
		if p.Inner != nil {
			acts = append(acts, p.Inner.Observe(snap)...)
		}
	} else if p.Profile != nil {
		for _, h := range snap.Hot {
			if home, ok := p.Profile.HomeOf(int64(h.Object)); ok && home != h.Home {
				acts = append(acts, RehomeObject{Object: h.Object, To: home})
			}
		}
	}
	return acts
}
