package session

import (
	"testing"

	"jessica2/internal/profile"
	"jessica2/internal/sampling"
)

// recordingPolicy counts Observe calls so tests can see when the warm-start
// gate consults its inner optimizer.
type recordingPolicy struct {
	calls int
	emit  []Action
}

func (p *recordingPolicy) Name() string       { return "recording" }
func (p *recordingPolicy) NeedsProfile() bool { return true }
func (p *recordingPolicy) Observe(*Snapshot) []Action {
	p.calls++
	return p.emit
}

func rates(acts []Action) []sampling.Rate {
	var out []sampling.Rate
	for _, a := range acts {
		if r, ok := a.(SetSamplingRate); ok {
			out = append(out, r.Rate)
		}
	}
	return out
}

func rehomeCount(acts []Action) int {
	n := 0
	for _, a := range acts {
		if _, ok := a.(RehomeObject); ok {
			n++
		}
	}
	return n
}

// TestWarmStartColdProxy: with no profile loaded (Divergence < 0) the
// policy is a transparent proxy for its inner optimizer — no replay, no
// rate actions of its own.
func TestWarmStartColdProxy(t *testing.T) {
	inner := &recordingPolicy{emit: []Action{MigrateThread{Thread: 1, To: 2}}}
	p := NewWarmStartPolicy(&profile.Profile{HotHomes: []profile.HotHome{{Key: 9, Home: 1}}})
	p.Inner = inner
	acts := p.Observe(&Snapshot{Divergence: -1})
	if inner.calls != 1 {
		t.Fatalf("inner consulted %d times, want 1", inner.calls)
	}
	if len(acts) != 1 {
		t.Fatalf("cold proxy emitted %d actions, want the inner's 1", len(acts))
	}
	if rehomeCount(acts) != 0 {
		t.Fatal("cold proxy replayed stored homes")
	}
}

// TestWarmStartReplayAndFloor: the first boundary of a matching warm run
// replays every stored home once and drops the rate to the floor; the
// muted inner optimizer is not consulted while the gate is closed.
func TestWarmStartReplayAndFloor(t *testing.T) {
	inner := &recordingPolicy{}
	p := NewWarmStartPolicy(&profile.Profile{
		HotHomes: []profile.HotHome{{Key: 3, Home: 1}, {Key: 9, Home: 0}},
	})
	p.Inner = inner

	acts := p.Observe(&Snapshot{Divergence: 0})
	if got := rehomeCount(acts); got != 2 {
		t.Fatalf("first boundary replayed %d homes, want 2", got)
	}
	if got := rates(acts); len(got) != 1 || got[0] != p.Floor {
		t.Fatalf("first boundary rates = %v, want [%v]", got, p.Floor)
	}
	if inner.calls != 0 {
		t.Fatal("inner consulted while the gate is closed")
	}

	// Subsequent matching boundaries: nothing to do (replay is once, the
	// rate is already at the floor).
	acts = p.Observe(&Snapshot{Divergence: 0.02})
	if len(acts) != 0 {
		t.Fatalf("steady matching boundary emitted %v", acts)
	}
}

// TestWarmStartHysteresis drives the divergence signal across the water
// marks and checks the gate's open/close transitions, the rate actions
// they emit, and the inner consultations while open.
func TestWarmStartHysteresis(t *testing.T) {
	inner := &recordingPolicy{}
	p := NewWarmStartPolicy(&profile.Profile{})
	p.Inner = inner
	p.Observe(&Snapshot{Divergence: 0}) // converge to floor

	// Between the marks: no transition.
	if acts := p.Observe(&Snapshot{Divergence: (p.Low + p.High) / 2}); len(acts) != 0 {
		t.Fatalf("mid-band boundary emitted %v", acts)
	}
	if inner.calls != 0 {
		t.Fatal("inner consulted below the High mark")
	}

	// Phase shift: cross High — reopen to Max, consult inner.
	acts := p.Observe(&Snapshot{Divergence: p.High + 0.1})
	if got := rates(acts); len(got) != 1 || got[0] != p.Max {
		t.Fatalf("reopen rates = %v, want [%v]", got, p.Max)
	}
	if inner.calls != 1 {
		t.Fatalf("inner consulted %d times after reopen, want 1", inner.calls)
	}

	// Still open mid-band (hysteresis): no rate action, inner consulted.
	if got := rates(p.Observe(&Snapshot{Divergence: (p.Low + p.High) / 2})); len(got) != 0 {
		t.Fatalf("open mid-band emitted rate actions %v", got)
	}
	if inner.calls != 2 {
		t.Fatalf("inner consulted %d times while open, want 2", inner.calls)
	}

	// Re-converge below Low: back to the floor, inner muted again.
	acts = p.Observe(&Snapshot{Divergence: p.Low - 0.05})
	if got := rates(acts); len(got) != 1 || got[0] != p.Floor {
		t.Fatalf("re-converge rates = %v, want [%v]", got, p.Floor)
	}
	if inner.calls != 2 {
		t.Fatal("inner consulted after the gate closed")
	}
}

// TestWarmStartSteering: while the gate is closed, newly surfaced shared
// objects with a stored home are steered to it; objects already on their
// stored home or absent from the profile are left alone. While the gate is
// open the inner optimizer owns placement and no steering happens.
func TestWarmStartSteering(t *testing.T) {
	inner := &recordingPolicy{}
	p := NewWarmStartPolicy(&profile.Profile{
		HotHomes: []profile.HotHome{{Key: 3, Home: 1}, {Key: 9, Home: 2}},
	})
	p.Inner = inner
	p.Observe(&Snapshot{Divergence: 0}) // replay + converge to floor

	acts := p.Observe(&Snapshot{Divergence: 0, Hot: []HotObject{
		{Object: 3, Home: 0},  // stored home 1, differs: steer
		{Object: 9, Home: 2},  // already on its stored home: leave
		{Object: 77, Home: 0}, // not in the profile: leave
	}})
	if got := rehomeCount(acts); got != 1 {
		t.Fatalf("closed-gate steering emitted %d rehomes, want 1", got)
	}
	if r, ok := acts[0].(RehomeObject); !ok || r.Object != 3 || r.To != 1 {
		t.Fatalf("steering action = %#v, want RehomeObject{3, 1}", acts[0])
	}

	// Open the gate: steering stops, the inner optimizer takes over.
	acts = p.Observe(&Snapshot{Divergence: p.High + 0.1, Hot: []HotObject{
		{Object: 3, Home: 0},
	}})
	if got := rehomeCount(acts); got != 0 {
		t.Fatalf("open-gate boundary steered %d rehomes, want 0", got)
	}
	if inner.calls != 1 {
		t.Fatalf("inner consulted %d times after reopen, want 1", inner.calls)
	}
}

// TestWarmStartNilInner: a policy without an inner optimizer still gates
// the rate and never panics, cold or warm.
func TestWarmStartNilInner(t *testing.T) {
	p := NewWarmStartPolicy(nil)
	p.Inner = nil
	if acts := p.Observe(&Snapshot{Divergence: -1}); acts != nil {
		t.Fatalf("cold nil-inner emitted %v", acts)
	}
	acts := p.Observe(&Snapshot{Divergence: 0.9})
	if got := rates(acts); len(got) != 1 || got[0] != p.Max {
		t.Fatalf("nil-inner open rates = %v, want [%v]", got, p.Max)
	}
}
