package session

import (
	"fmt"
	"sort"

	"jessica2/internal/balancer"
	"jessica2/internal/core"
	"jessica2/internal/gos"
	"jessica2/internal/heap"
	"jessica2/internal/sampling"
	"jessica2/internal/sim"
	"jessica2/internal/sticky"
	"jessica2/internal/tcm"
	"jessica2/internal/workload"
)

// Snapshot is the profiling state visible at an epoch boundary (or any
// pause point). It is plain data: policies decide from it alone, which
// keeps them deterministic and unit-testable without a kernel.
//
// Boundary snapshots handed to Policy.Observe reuse per-session scratch
// buffers for TCM, Footprints, RateTrace and Finished — they are valid for
// the duration of the Observe call and are overwritten at the next epoch
// boundary. The views are read-only: the TCM scratch in particular is
// re-synced incrementally (only cells that changed since the last boundary
// are rewritten), so a policy that writes into snap.TCM corrupts every
// subsequent boundary snapshot, not just its own. A policy that needs to
// keep or modify a view must copy it (e.g. TCM.Clone). Snapshots from
// Session.Snapshot are freshly allocated and safe to retain or mutate.
type Snapshot struct {
	// Now is the virtual time of the pause; Epoch counts processed
	// boundaries; Done marks a completed run.
	Now   sim.Time
	Epoch int
	Done  bool
	// Nodes and Threads are the cluster and thread dimensions.
	Nodes, Threads int
	// Assignment is the current thread→node placement; Finished marks
	// threads whose bodies have returned.
	Assignment balancer.Assignment
	Finished   []bool
	// TCM is the incremental thread correlation map built from everything
	// the master has ingested so far (nil for passive policies).
	TCM *tcm.Map
	// Hot lists objects newly observed as shared since the previous epoch
	// boundary, in allocation order (nil for passive policies).
	Hot []HotObject
	// Footprints holds per-thread sticky-set footprints when footprinting
	// is attached.
	Footprints map[int]sticky.Footprint
	// RateTrace is the adaptive controller's decision log so far.
	RateTrace []core.RateChange
	// Kernel and Network are the protocol counters so far.
	Kernel  gos.KernelStats
	Network NetworkStats
	// Health is the failure detector's view of the cluster — per-node
	// liveness, last heartbeat, in-flight flush depth — plus the failure
	// counters (retries, evacuations, abandoned flushes). Nil unless the
	// kernel's failure layer is enabled (gos.Config.Failure), so
	// failure-unaware policies and golden runs are untouched. Boundary
	// snapshots alias session scratch like the other views.
	Health *gos.HealthSnapshot
	// Serve is the open-loop serving view — arrivals, completions,
	// in-flight depth, goodput, and LatencyP50/P95/P99 on the simulated
	// clock — when an open-loop workload (workload.ServeMix) is launched.
	// Nil for closed-loop workloads, so existing policies and golden runs
	// never see the field move. Boundary snapshots alias session scratch
	// like the other views.
	Serve *workload.ServeStats
	// Divergence compares the live incremental TCM against a warm-start
	// profile's stored map: the total-variation distance of the two
	// shape-normalized maps, in [0, 1] (0 = the live run shares exactly the
	// stored correlation structure, 1 = disjoint structure). An empty live
	// map reads 0 — no evidence of divergence yet — so warm runs are not
	// spooked before sampling accrues. −1 when no profile was loaded (or
	// for passive policies, which build no TCM); the zero value would read
	// as "perfect match".
	Divergence float64
}

// HotObject is one newly shared object in a snapshot.
type HotObject struct {
	Object heap.ObjectID
	// Home is the object's current home node; Bytes its payload size.
	Home  int
	Bytes int
	// Volume is the logged correlation weight (amortized size × gap).
	Volume float64
	// Threads are the accessor thread ids observed so far, ascending.
	Threads []int32
}

// Policy is a pluggable closed-loop controller: at every epoch boundary the
// session hands it a snapshot and applies the actions it returns before the
// run resumes.
type Policy interface {
	// Name identifies the policy in logs and reports.
	Name() string
	// NeedsProfile reports whether the session should trigger an
	// incremental cluster-wide OAL flush ahead of each boundary snapshot
	// and build the TCM/hot views. Passive policies return false and leave
	// the run byte-identical to an unsupervised one.
	NeedsProfile() bool
	// Observe inspects the boundary snapshot and returns actions to apply.
	// The snapshot's views alias session scratch valid only during the
	// call; copy anything that must survive to the next epoch.
	Observe(snap *Snapshot) []Action
}

// Action is one closed-loop decision the session can apply mid-run. The
// vocabulary is sealed: MigrateThread, RehomeObject and SetSamplingRate.
type Action interface {
	// apply executes the action; a non-empty note explains a no-op.
	apply(s *Session) string
	fmt.Stringer
}

// MigrateThread moves a thread to another node at its next safe point,
// optionally resolving and prefetching its sticky set with the context.
// Execution is deferred: the request is accepted immediately, the move
// happens when the thread next reaches a safe point (a later request for
// the same thread replaces a pending one; a thread that never accesses a
// shared object again never moves). Completed moves are recorded in the
// session's migration history.
type MigrateThread struct {
	Thread, To int
	// Prefetch ships the resolved sticky set with the thread (requires an
	// attached profiler; silently reduced to a bare migration otherwise).
	Prefetch bool
}

func (a MigrateThread) String() string {
	pf := ""
	if a.Prefetch {
		pf = "+prefetch"
	}
	return fmt.Sprintf("migrate T%d -> node%d%s", a.Thread, a.To, pf)
}

func (a MigrateThread) apply(s *Session) string {
	k := s.k
	if a.Thread < 0 || a.Thread >= k.NumThreads() {
		return fmt.Sprintf("no such thread %d", a.Thread)
	}
	if a.To < 0 || a.To >= k.NumNodes() {
		return fmt.Sprintf("no such node %d", a.To)
	}
	t := k.Thread(a.Thread)
	if t.Finished() {
		return "thread already finished"
	}
	if t.Node().ID() == a.To {
		return "already there"
	}
	eng := s.MigrationEngine()
	t.AtSafePoint(func(t *gos.Thread) {
		var res *sticky.Resolution
		if a.Prefetch && s.prof != nil {
			res = s.prof.Resolve(t.ID())
		}
		eng.MigrateSelf(t, a.To, res)
	})
	return ""
}

// RehomeObject migrates an object's home to another node (the paper's
// object home migration lever: accessors elsewhere keep faulting, the new
// home's threads access locally).
type RehomeObject struct {
	Object heap.ObjectID
	To     int
}

func (a RehomeObject) String() string {
	return fmt.Sprintf("rehome obj%d -> node%d", a.Object, a.To)
}

func (a RehomeObject) apply(s *Session) string {
	o := s.k.Reg.Object(a.Object)
	if o == nil {
		return fmt.Sprintf("no such object %d", a.Object)
	}
	if a.To < 0 || a.To >= s.k.NumNodes() {
		return fmt.Sprintf("no such node %d", a.To)
	}
	if o.Home == a.To {
		return "already homed there"
	}
	s.k.MigrateHome(o, a.To)
	return ""
}

// SetSamplingRate retunes the uniform object sampling rate cluster-wide,
// charging the resample change-notice pass.
type SetSamplingRate struct {
	Rate sampling.Rate
}

func (a SetSamplingRate) String() string {
	return fmt.Sprintf("set sampling rate %v", a.Rate)
}

func (a SetSamplingRate) apply(s *Session) string {
	if a.Rate < 1 {
		return fmt.Sprintf("bad rate %d", a.Rate)
	}
	plan := sampling.Uniform(s.k.Reg, a.Rate)
	s.k.ChargeResample(plan.Apply(s.k.Reg))
	return ""
}

// --- shipped policies --------------------------------------------------------

// NopPolicy is the passive baseline: it observes protocol counters only and
// never acts, so a session running it is byte-identical to a plain run.
type NopPolicy struct{}

// Name implements Policy.
func (NopPolicy) Name() string { return "nop" }

// NeedsProfile implements Policy; the nop policy is passive.
func (NopPolicy) NeedsProfile() bool { return false }

// Observe implements Policy.
func (NopPolicy) Observe(*Snapshot) []Action { return nil }

// RebalancePolicy is the shipped closed-loop optimizer: correlation-driven
// thread placement (greedy cross-volume reduction under a load-balance
// constraint, with sticky-set prefetch on each move) plus hot-object home
// rebalancing (newly shared objects are re-homed toward their accessors,
// spread so no node concentrates the hot working set's homes — the "home
// effect" turned into an online lever).
type RebalancePolicy struct {
	// Slack, MaxMoves and MinGainBytes tune the placement planner (see
	// balancer.Config).
	Slack        int
	MaxMoves     int
	MinGainBytes float64
	// Prefetch ships resolved sticky sets with migrated threads.
	Prefetch bool
	// MaxRehomes caps object home migrations per epoch (0 disables
	// re-homing); MinAccessors is the sharing threshold for a hot object.
	MaxRehomes   int
	MinAccessors int
}

// NewRebalancePolicy returns the default tuning.
func NewRebalancePolicy() *RebalancePolicy {
	return &RebalancePolicy{
		Slack:        1,
		MaxMoves:     4,
		MinGainBytes: 4096,
		Prefetch:     true,
		MaxRehomes:   1024,
		MinAccessors: 2,
	}
}

// Name implements Policy.
func (p *RebalancePolicy) Name() string { return "rebalance" }

// NeedsProfile implements Policy.
func (p *RebalancePolicy) NeedsProfile() bool { return true }

// Observe implements Policy.
func (p *RebalancePolicy) Observe(snap *Snapshot) []Action {
	var acts []Action

	// 1. Correlation-driven placement: plan against the incremental TCM.
	next := snap.Assignment
	if snap.TCM != nil && snap.TCM.N() == snap.Threads && snap.TCM.Total() > 0 {
		cfg := balancer.DefaultConfig(snap.Nodes)
		cfg.Slack = p.Slack
		cfg.MaxMoves = p.MaxMoves
		cfg.MinGain = p.MinGainBytes
		planned, moves := balancer.Plan(snap.TCM, snap.Assignment, cfg)
		for _, mv := range moves {
			if mv.Thread < len(snap.Finished) && snap.Finished[mv.Thread] {
				continue
			}
			acts = append(acts, MigrateThread{Thread: mv.Thread, To: mv.To, Prefetch: p.Prefetch})
		}
		next = planned
	}

	// 2. Hot-object home rebalancing: assign each newly shared object to
	// the node maximizing accessor affinity minus already-assigned hot
	// load, so the hot set's homes spread instead of piling onto one node
	// (whose peers would all fault on every update).
	if p.MaxRehomes > 0 && len(snap.Hot) > 0 {
		acts = append(acts, p.rehomes(snap, next)...)
	}
	return acts
}

// rehomes computes the affinity-and-load greedy home assignment for the
// snapshot's hot list under the planned thread placement.
func (p *RebalancePolicy) rehomes(snap *Snapshot, placement balancer.Assignment) []Action {
	minAcc := p.MinAccessors
	if minAcc < 2 {
		minAcc = 2
	}
	// Highest-volume objects choose their homes first.
	hot := make([]HotObject, 0, len(snap.Hot))
	for _, h := range snap.Hot {
		if len(h.Threads) >= minAcc {
			hot = append(hot, h)
		}
	}
	sort.SliceStable(hot, func(i, j int) bool { return hot[i].Volume > hot[j].Volume })

	load := make([]float64, snap.Nodes)
	aff := make([]float64, snap.Nodes)
	var acts []Action
	for _, h := range hot {
		for n := range aff {
			aff[n] = 0
		}
		per := h.Volume / float64(len(h.Threads))
		for _, th := range h.Threads {
			if int(th) < len(placement) {
				if n := placement[th]; n >= 0 && n < snap.Nodes {
					aff[n] += per
				}
			}
		}
		best := 0
		bestScore := aff[0] - load[0]
		for n := 1; n < snap.Nodes; n++ {
			if score := aff[n] - load[n]; score > bestScore {
				best, bestScore = n, score
			}
		}
		load[best] += h.Volume
		if best != h.Home && len(acts) < p.MaxRehomes {
			acts = append(acts, RehomeObject{Object: h.Object, To: best})
		}
	}
	return acts
}
