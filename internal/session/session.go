// Package session implements the closed-loop profiling session at the heart
// of the public API: an epoch-driven run of the distributed JVM that pauses
// at safe points, exposes live snapshots of the profiling state (incremental
// TCM, per-thread footprints, rate trace, kernel and network counters), and
// applies pluggable observe→decide→act policies — thread migration, object
// home migration, sampling-rate retuning — while the workload keeps running.
//
// This is the controller-in-the-loop shape the paper's runtime optimization
// story calls for: profile → plan → migrate → keep running, every epoch,
// instead of profiling a run to completion and only then planning.
package session

import (
	"errors"
	"fmt"
	"sort"

	"jessica2/internal/balancer"
	"jessica2/internal/core"
	"jessica2/internal/gos"
	"jessica2/internal/heap"
	"jessica2/internal/migration"
	"jessica2/internal/network"
	"jessica2/internal/profile"
	"jessica2/internal/scenario"
	"jessica2/internal/sim"
	"jessica2/internal/sticky"
	"jessica2/internal/tcm"
	"jessica2/internal/workload"
)

// Lifecycle errors returned by the session API (the deprecated System
// facade converts these back into panics for compatibility).
var (
	// ErrStarted rejects configuration calls after stepping has begun.
	ErrStarted = errors.New("jessica2: session already started")
	// ErrFinished rejects Run after the session has completed.
	ErrFinished = errors.New("jessica2: session already finished")
	// ErrNoWorkload rejects stepping before any Launch.
	ErrNoWorkload = errors.New("jessica2: session has no workload launched")
	// ErrNotFinished rejects Report before the run completes.
	ErrNotFinished = errors.New("jessica2: session still running")
)

// Config assembles a session.
type Config struct {
	// Kernel is the fully resolved DJVM configuration.
	Kernel gos.Config
	// Scenario, when non-nil, perturbs the run with the fault-injection
	// scenario engine.
	Scenario *scenario.Scenario
	// Epoch is the default stepping period used by Run and RunUntil when a
	// policy is installed (Step takes an explicit period instead).
	Epoch sim.Time
	// Profile configures profile persistence (see ProfileIO).
	Profile ProfileIO
}

// ProfileIO wires a session to the profile store.
type ProfileIO struct {
	// Load, when non-nil, warm-starts the run from a stored profile. The
	// profile's fingerprint must match the session's (workload, nodes,
	// threads, seed, scenario); a mismatch degrades gracefully to a cold
	// start, recorded as a warning (Session.ProfileWarning) — never as the
	// sticky Session.Err. On a match the stored placement is applied
	// before epoch 0 (zero-cost: threads spawn at their profiled nodes)
	// and the master's TCM accumulator is seeded from the stored map (a
	// no-op under `-tags tcmfull`, like TCM decay).
	Load *profile.Profile
	// Save arms end-of-run profile capture: once the run completes,
	// Session.CapturedProfile assembles the artifact. Capture only reads
	// state (uncharged peeks), so an armed session is byte-identical to an
	// unarmed one — the profile golden-identity gate asserts this.
	Save bool
}

// Session is one epoch-driven closed-loop run of the distributed JVM.
type Session struct {
	k     *gos.Kernel
	prof  *core.Profiler
	phase *workload.Phase
	mig   *migration.Engine

	cfg      Config
	scripted bool
	policy   Policy
	loads    []workload.Workload
	// openLoops are the launched open-loop workloads (schedule-driven);
	// the first one's serving stats surface in snapshots.
	openLoops []workload.OpenLoop

	started  bool
	done     bool
	execTime sim.Time
	epoch    int

	// hotSeen marks summary objects already surfaced through Snapshot.Hot,
	// so each epoch's hot list reports only newly shared objects (built-in
	// hysteresis: a policy that re-homed an object once is not asked to
	// reconsider it every epoch).
	hotSeen map[int64]bool

	// applied logs every policy action the session executed.
	applied []AppliedAction

	// Profile persistence state: fp is this run's fingerprint (built up
	// across Launches), loaded is the accepted warm-start profile with its
	// reconstructed map, loadWarning records a rejected load.
	fp          profile.Fingerprint
	loaded      *profile.Profile
	loadedTCM   *tcm.Map
	loadWarning string
	// priorTCM is the map actually seeded into the live accumulator (nil
	// under `-tags tcmfull`, where SeedMap is a no-op): the divergence
	// signal subtracts it so the stored prior cannot drown out live drift.
	priorTCM *tcm.Map

	// Scratch reused across boundary snapshots: sessions pause at every
	// epoch, and rebuilding the N×N map, rate trace and footprint views
	// from fresh allocations each time was the allocation hot spot of
	// closed-loop runs. Boundary snapshots alias these buffers (valid for
	// the duration of Policy.Observe); the public ad-hoc Snapshot still
	// allocates fresh views the caller may retain.
	scratchTCM      *tcm.Map
	scratchTrace    []core.RateChange
	scratchFoot     map[int]sticky.Footprint
	scratchFinished []bool
	scratchHealth   *gos.HealthSnapshot
	scratchServe    *workload.ServeStats

	err error // sticky configuration error, surfaced on first use
}

// AppliedAction is one executed policy decision.
type AppliedAction struct {
	Epoch  int
	At     sim.Time
	Action Action
	// Note records the outcome: "" means applied (for MigrateThread,
	// scheduled at the thread's next safe point — completed migrations
	// appear in MigrationEngine().History); otherwise why it was a no-op.
	Note string
}

// New builds a session. An invalid configuration (e.g. a scenario that does
// not validate against the cluster) is recorded as a sticky error returned
// by the first Launch/Step/Run call, keeping construction chainable.
func New(cfg Config) *Session {
	// Default only the missing pieces of the kernel config; a caller's
	// partial config (say, tracking mode without a node count) must not be
	// silently discarded wholesale.
	kcfg := cfg.Kernel
	def := gos.DefaultConfig()
	if kcfg.Nodes <= 0 {
		kcfg.Nodes = def.Nodes
	}
	if kcfg.Net == (network.Config{}) {
		kcfg.Net = def.Net
	}
	if kcfg.Costs == (gos.CostModel{}) {
		kcfg.Costs = def.Costs
	}
	s := &Session{cfg: cfg, phase: new(workload.Phase)}
	if cfg.Scenario != nil {
		if err := cfg.Scenario.Validate(kcfg.Nodes); err != nil {
			s.err = fmt.Errorf("jessica2: invalid scenario: %w", err)
			return s
		}
	}
	s.k = gos.NewKernel(kcfg)
	if cfg.Scenario != nil {
		s.scripted = true
		cfg.Scenario.Apply(s.k, s.phase)
	}
	return s
}

// Kernel exposes the underlying DJVM (advanced use).
func (s *Session) Kernel() *gos.Kernel { return s.k }

// Phase exposes the workload phase register the scenario engine drives.
func (s *Session) Phase() *workload.Phase { return s.phase }

// Err returns the sticky configuration error, if any.
func (s *Session) Err() error { return s.err }

// Workloads returns the names of the launched workloads in launch order.
func (s *Session) Workloads() []string {
	names := make([]string, len(s.loads))
	for i, w := range s.loads {
		names[i] = w.Name()
	}
	return names
}

// Launch registers a workload's classes and spawns its threads. When a
// scenario drives the session and the caller installed no phase register of
// its own, the session's register rides along so phase-aware workloads
// follow the scenario's phase shifts.
func (s *Session) Launch(w workload.Workload, p workload.Params) error {
	if s.err != nil {
		return s.err
	}
	if s.started {
		return fmt.Errorf("%w: Launch must precede the first Step/Run", ErrStarted)
	}
	if p.Phase == nil && s.scripted {
		p.Phase = s.phase
	}
	// Open-loop workloads are schedule-driven: materialize the scenario's
	// arrival spec for them unless the caller installed a schedule already.
	if ol, ok := w.(workload.OpenLoop); ok {
		if !ol.HasSchedule() && s.cfg.Scenario != nil && s.cfg.Scenario.Arrivals != nil {
			ol.SetSchedule(s.cfg.Scenario.Arrivals.Schedule(s.cfg.Scenario.Seed))
		}
		if !ol.HasSchedule() {
			return fmt.Errorf("jessica2: open-loop workload %s has no arrival schedule (set Scenario.Arrivals or SetSchedule)", w.Name())
		}
		// A workload carrying serving-robustness configuration (e.g.
		// ServeMix.Robust) gets to reject it here, turning a bad config
		// into a launch error instead of a mid-run panic.
		if v, ok := w.(interface{ ValidateServing() error }); ok {
			if err := v.ValidateServing(); err != nil {
				return err
			}
		}
		s.openLoops = append(s.openLoops, ol)
	}
	seedTCM := false
	if len(s.loads) == 0 {
		// First launch: fix the fingerprint and resolve a pending warm
		// start against it. Later launches extend the fingerprint (so a
		// capture is honest about what ran) but never re-trigger loading —
		// a stored single-workload profile cannot speak for a composite
		// session.
		s.fp = profile.Fingerprint{
			Workload: w.Name(),
			Nodes:    s.k.NumNodes(),
			Threads:  p.Threads,
			Seed:     p.Seed,
		}
		if s.cfg.Scenario != nil {
			s.fp.Scenario = s.cfg.Scenario.Name
		}
		if ld := s.cfg.Profile.Load; ld != nil {
			if ld.Fingerprint.Match(s.fp) {
				s.loaded = ld
				s.loadedTCM = ld.TCM()
				// Warm placement: spawn threads at their profiled nodes.
				// The fingerprint match guarantees the stored assignment's
				// dimension; an explicit caller placement wins.
				if p.Placement == nil && len(ld.Assignment) == p.Threads {
					p.Placement = append([]int(nil), ld.Assignment...)
				}
				seedTCM = len(ld.TCMCells) > 0
			} else {
				s.loadWarning = fmt.Sprintf(
					"profile fingerprint mismatch: stored {%s} vs run {%s}; starting cold",
					ld.Fingerprint, s.fp)
			}
		}
	} else {
		s.fp.Workload += "," + w.Name()
		s.fp.Threads += p.Threads
	}
	w.Launch(s.k, p)
	if seedTCM {
		// Seed after the spawn so the master's builder sizes to the full
		// thread count. Seeding is uncharged prior knowledge (and a no-op
		// under -tags tcmfull, like TCM decay).
		s.k.Master().SeedMap(s.loadedTCM)
		if tcm.BuilderVariant() == "incremental" {
			s.priorTCM = s.loadedTCM
		}
	}
	s.loads = append(s.loads, w)
	return nil
}

// Fingerprint returns the run's profile fingerprint (valid after the first
// Launch).
func (s *Session) Fingerprint() profile.Fingerprint { return s.fp }

// LoadedProfile returns the accepted warm-start profile (nil when none was
// configured or the fingerprint did not match).
func (s *Session) LoadedProfile() *profile.Profile { return s.loaded }

// ProfileWarning reports why a configured Profile.Load was rejected (""
// when none was, or when it was accepted). A rejected load is a graceful
// cold start, not a session error.
func (s *Session) ProfileWarning() string { return s.loadWarning }

// AttachProfiling wires the profiling subsystems. Call after Launch and
// before the first step.
func (s *Session) AttachProfiling(cfg core.Config) (*core.Profiler, error) {
	if s.err != nil {
		return nil, s.err
	}
	if s.started {
		return nil, fmt.Errorf("%w: AttachProfiling must precede the first Step/Run", ErrStarted)
	}
	s.prof = core.Attach(s.k, cfg)
	return s.prof, nil
}

// Profiler returns the attached profiler (nil when none).
func (s *Session) Profiler() *core.Profiler { return s.prof }

// SetPolicy installs the closed-loop policy consulted at every epoch
// boundary. Must be called before the first step; nil clears it.
func (s *Session) SetPolicy(p Policy) error {
	if s.err != nil {
		return s.err
	}
	if s.started {
		return fmt.Errorf("%w: SetPolicy must precede the first Step/Run", ErrStarted)
	}
	s.policy = p
	return nil
}

// Policy returns the installed policy (nil when none).
func (s *Session) Policy() Policy { return s.policy }

// Actions returns the log of executed policy decisions.
func (s *Session) Actions() []AppliedAction {
	return append([]AppliedAction(nil), s.applied...)
}

// Epochs reports how many epoch boundaries have been processed.
func (s *Session) Epochs() int { return s.epoch }

// Done reports whether the simulation has run to completion.
func (s *Session) Done() bool { return s.done }

// Now returns the current virtual time.
func (s *Session) Now() sim.Time {
	if s.k == nil {
		return 0
	}
	return s.k.Eng.Now()
}

// ExecTime is the workload execution time; valid once Done.
func (s *Session) ExecTime() sim.Time { return s.execTime }

func (s *Session) checkStep() error {
	if s.err != nil {
		return s.err
	}
	// Advanced users may spawn threads on the kernel directly instead of
	// launching a packaged workload; only a truly empty session errors.
	if len(s.loads) == 0 && s.k.NumThreads() == 0 {
		return ErrNoWorkload
	}
	return nil
}

// Step advances the run by one epoch of the given length and processes the
// epoch boundary: incremental OAL flush (for profile-hungry policies), a
// snapshot, the policy's Observe, and the returned actions. It reports
// whether the run has completed; stepping a finished session is a no-op
// returning true.
func (s *Session) Step(epoch sim.Time) (bool, error) {
	if err := s.checkStep(); err != nil {
		return s.done, err
	}
	if s.done {
		return true, nil
	}
	if epoch <= 0 {
		return false, fmt.Errorf("jessica2: non-positive epoch %v", epoch)
	}
	s.started = true
	if s.k.RunUntil(s.k.Eng.Now() + epoch) {
		s.finish()
		return true, nil
	}
	s.boundary()
	return false, nil
}

// RunUntil advances the run to absolute virtual time t. With a policy
// installed and a configured Epoch, boundaries are processed every Epoch on
// the way; otherwise the stretch runs unsupervised. Reports completion.
func (s *Session) RunUntil(t sim.Time) (bool, error) {
	if err := s.checkStep(); err != nil {
		return s.done, err
	}
	if s.done {
		return true, nil
	}
	s.started = true
	step := s.cfg.Epoch
	if s.policy == nil || step <= 0 {
		step = t - s.k.Eng.Now()
		if step <= 0 {
			return false, nil
		}
	}
	for s.k.Eng.Now() < t {
		next := s.k.Eng.Now() + step
		if next > t {
			next = t
		}
		if s.k.RunUntil(next) {
			s.finish()
			return true, nil
		}
		s.boundary()
	}
	return false, nil
}

// Run executes the session to completion and returns the workload execution
// time. With a policy installed it steps in Config.Epoch increments (an
// installed policy with no configured epoch is an error); without one it
// runs straight through. Running a finished session returns ErrFinished.
func (s *Session) Run() (sim.Time, error) {
	if err := s.checkStep(); err != nil {
		return 0, err
	}
	if s.done {
		return s.execTime, ErrFinished
	}
	s.started = true
	if s.policy != nil && s.cfg.Epoch <= 0 {
		return 0, errors.New("jessica2: policy installed but Config.Epoch is zero; use Step or set an epoch")
	}
	for !s.done {
		if s.policy == nil {
			s.k.Eng.Run()
			s.finish()
			break
		}
		if _, err := s.Step(s.cfg.Epoch); err != nil {
			return 0, err
		}
	}
	return s.execTime, nil
}

// finish records completion and drains the remaining OAL buffers, exactly
// as the classic one-shot Run path did.
func (s *Session) finish() {
	s.done = true
	s.execTime = s.k.WorkloadEndTime()
	s.k.FlushAllOAL()
}

// boundary processes one epoch boundary: flush, snapshot, observe, act.
// Passive policies (NeedsProfile false) leave the protocol completely
// untouched, which keeps the run byte-identical to an unsupervised one.
func (s *Session) boundary() {
	s.epoch++
	if s.policy == nil {
		return
	}
	wantProfile := s.policy.NeedsProfile()
	if wantProfile {
		// Incremental cluster-wide OAL flush: node 0 ingests locally and is
		// visible in this epoch's snapshot; remote shipments arrive within
		// the next epoch — the one-epoch profile lag of a real collector.
		s.k.FlushAllOAL()
	}
	snap := s.snapshot(wantProfile, true)
	for _, a := range s.policy.Observe(snap) {
		if a == nil {
			continue
		}
		note := a.apply(s)
		s.applied = append(s.applied, AppliedAction{
			Epoch: s.epoch, At: s.k.Eng.Now(), Action: a, Note: note,
		})
	}
}

// Snapshot captures the live profiling state at the current pause point.
// It never charges simulated CPU: observing a paused run does not change
// it. The hot-object list reports objects newly shared since the previous
// epoch boundary without consuming them (only boundary snapshots mark hot
// objects as surfaced).
func (s *Session) Snapshot() *Snapshot {
	if s.k == nil {
		return &Snapshot{Divergence: -1}
	}
	return s.snapshot(true, false)
}

// snapshot builds the state view at the current pause point. Boundary
// snapshots (handed transiently to Policy.Observe) reuse the session's
// scratch buffers; ad-hoc snapshots allocate fresh views the caller may
// keep.
func (s *Session) snapshot(wantProfile, boundary bool) *Snapshot {
	k := s.k
	n := k.NumThreads()
	var finished []bool
	if boundary {
		if cap(s.scratchFinished) < n {
			s.scratchFinished = make([]bool, n)
		}
		finished = s.scratchFinished[:n]
	} else {
		finished = make([]bool, n)
	}
	snap := &Snapshot{
		Now:        k.Eng.Now(),
		Epoch:      s.epoch,
		Done:       s.done,
		Nodes:      k.NumNodes(),
		Threads:    n,
		Assignment: balancer.Assignment(k.Assignment()),
		Finished:   finished,
		Kernel:     k.Stats(),
		Network:    k.Net.Stats(),
	}
	for i := 0; i < n; i++ {
		snap.Finished[i] = k.Thread(i).Finished()
	}
	// Cluster health rides along when the failure layer is on (nil
	// otherwise, so failure-unaware policies never see the field move).
	if boundary {
		if h := k.HealthInto(s.scratchHealth); h != nil {
			s.scratchHealth, snap.Health = h, h
		}
	} else {
		snap.Health = k.HealthInto(nil)
	}
	// Open-loop serving stats ride along only when an open-loop workload is
	// launched (nil otherwise, keeping closed-loop snapshots untouched).
	if len(s.openLoops) > 0 {
		if boundary {
			s.scratchServe = s.openLoops[0].ServeStatsInto(s.scratchServe, snap.Now)
			snap.Serve = s.scratchServe
		} else {
			snap.Serve = s.openLoops[0].ServeStatsInto(nil, snap.Now)
		}
	}
	if s.prof != nil {
		if boundary {
			s.scratchTrace, s.scratchFoot = s.prof.LiveViewsInto(s.scratchTrace, s.scratchFoot)
			snap.RateTrace, snap.Footprints = s.scratchTrace, s.scratchFoot
		} else {
			snap.RateTrace, snap.Footprints = s.prof.LiveViews()
		}
	}
	snap.Divergence = -1
	if !wantProfile {
		return snap
	}
	if boundary {
		snap.TCM = k.Master().PeekInto(s.scratchTCM, n)
		s.scratchTCM = snap.TCM
	} else {
		snap.TCM = k.Master().Peek(n)
	}
	if s.loaded != nil {
		snap.Divergence = profile.EvidenceDivergence(snap.TCM, s.priorTCM, s.loadedTCM)
	}
	snap.Hot = s.hotObjects(boundary)
	return snap
}

// hotObjects extracts the newly shared objects from the master's daemon:
// objects accessed by at least two threads that previous boundaries have
// not already surfaced. Boundary snapshots consume (mark) them; ad-hoc
// snapshots only peek. The incremental builder feeds this O(new) from its
// pending list — per-epoch cost scales with the objects that *became*
// shared since the last boundary, not with all M objects ever ingested
// (the legacy -tags tcmfull builder scans, and the session's hotSeen set
// keeps the surfaced list identical either way).
func (s *Session) hotObjects(consume bool) []HotObject {
	var hot []HotObject
	s.k.Master().VisitNewlyShared(consume, func(key int64, volume float64, threads []int32) bool {
		if s.hotSeen[key] {
			return true // surfaced at an earlier boundary: retire silently
		}
		o := s.k.Reg.Object(heap.ObjectID(key))
		if o == nil {
			return false // unknown to the registry (yet): keep pending
		}
		if consume {
			if s.hotSeen == nil {
				s.hotSeen = make(map[int64]bool)
			}
			s.hotSeen[key] = true
		}
		hot = append(hot, HotObject{
			Object:  o.ID,
			Home:    o.Home,
			Bytes:   o.Bytes(),
			Volume:  volume,
			Threads: append([]int32(nil), threads...),
		})
		return consume
	})
	// Visits arrive sorted by key (allocation order), which is
	// deterministic and groups co-allocated hot ranges.
	return hot
}

// Finished returns nil once the run has completed: ErrNotFinished while
// still in progress, or the sticky configuration error.
func (s *Session) Finished() error {
	if err := s.checkStep(); err != nil {
		return err
	}
	if !s.done {
		return ErrNotFinished
	}
	return nil
}

// NetworkStats aliases network.Stats for snapshot consumers.
type NetworkStats = network.Stats

// MigrationEngine returns (creating on first use) the engine that executes
// this session's thread migrations, with its outcome history.
func (s *Session) MigrationEngine() *migration.Engine {
	if s.mig == nil {
		s.mig = migration.NewEngine(s.k, migration.DefaultConfig())
	}
	return s.mig
}

// TCMNow builds the correlation map from everything the master has ingested,
// charging analyzer CPU (the classic Report.TCM path).
func (s *Session) TCMNow() *tcm.Map {
	m, _ := s.k.TCM()
	return m
}

// CapturedProfile assembles the end-of-run artifact: the final correlation
// map, thread placement, hot-object homes, sticky footprints, rate trace and
// decision log, stamped with the run's fingerprint. It requires a completed
// session with Config.Profile.Save armed. Capture only reads state —
// uncharged peeks, no simulated CPU — so a Save-armed run stays
// byte-identical to an unarmed one (the profile golden-identity gate).
func (s *Session) CapturedProfile() (*profile.Profile, error) {
	if err := s.checkStep(); err != nil {
		return nil, err
	}
	if !s.cfg.Profile.Save {
		return nil, errors.New("jessica2: profile capture not armed (set Config.Profile.Save)")
	}
	if !s.done {
		return nil, ErrNotFinished
	}
	n := s.k.NumThreads()
	p := &profile.Profile{
		Fingerprint: s.fp,
		TCMThreads:  n,
		TCMCells:    s.k.Master().Peek(n).AppendFixedCells(make([]int64, 0, n*n)),
		Assignment:  s.k.Assignment(),
	}
	// Hot-object homes: every object the daemon observed as shared by at
	// least two threads, with its final home (Summary is key-sorted, so the
	// list is too — HomeOf binary-searches it).
	for _, o := range s.k.Master().Summary().Objs {
		if len(o.Threads) < 2 {
			continue
		}
		obj := s.k.Reg.Object(heap.ObjectID(o.Key))
		if obj == nil {
			continue
		}
		p.HotHomes = append(p.HotHomes, profile.HotHome{Key: o.Key, Home: int32(obj.Home)})
	}
	if s.prof != nil {
		trace, foot := s.prof.LiveViews()
		for _, rc := range trace {
			p.RateTrace = append(p.RateTrace, profile.RateChange{
				At: rc.At, From: rc.From, To: rc.To,
				Distance: rc.Distance, Converged: rc.Converged,
				Resampled: int32(rc.Resampled),
			})
		}
		// Maps are sorted at capture time (threads, then class names) so
		// encoding a profile is a pure function of its contents.
		threads := make([]int, 0, len(foot))
		for t := range foot {
			threads = append(threads, t)
		}
		sort.Ints(threads)
		for _, t := range threads {
			tf := profile.ThreadFootprint{Thread: int32(t)}
			classes := make([]string, 0, len(foot[t]))
			for c := range foot[t] {
				classes = append(classes, c)
			}
			sort.Strings(classes)
			for _, c := range classes {
				tf.Classes = append(tf.Classes, profile.ClassBytes{Class: c, Bytes: foot[t][c]})
			}
			p.Footprints = append(p.Footprints, tf)
		}
	}
	for _, aa := range s.applied {
		if aa.Note != "" {
			continue // no-ops carry no placement knowledge
		}
		d := profile.Decision{Epoch: int32(aa.Epoch), At: aa.At}
		switch a := aa.Action.(type) {
		case MigrateThread:
			d.Kind, d.A, d.B = profile.DecisionMigrateThread, int64(a.Thread), int64(a.To)
		case RehomeObject:
			d.Kind, d.A, d.B = profile.DecisionRehomeObject, int64(a.Object), int64(a.To)
		case SetSamplingRate:
			d.Kind, d.A = profile.DecisionSetRate, int64(a.Rate)
		default:
			continue
		}
		p.Decisions = append(p.Decisions, d)
	}
	return p, nil
}
