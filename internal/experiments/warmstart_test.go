package experiments

import (
	"strings"
	"testing"
)

// TestFigWWarmStartWins is the acceptance check for the warm-start figure:
// on the closed-loop application the warm run must converge in strictly
// fewer epochs and charge strictly less profiling overhead than cold while
// execution time stays within FigWEpsilon; on the open-loop application it
// must strictly cut the charge, serve the full schedule, and keep P99
// within FigWServeEpsilon. FigWResult.Violations is the single source of
// that bar — the CLI run asserts the same thing.
func TestFigWWarmStartWins(t *testing.T) {
	res := FigW(testScale, nil)
	if vs := res.Violations(); len(vs) > 0 {
		t.Fatalf("figure W does not hold:\n  %s\n%s",
			strings.Join(vs, "\n  "), res.Table())
	}
	for _, app := range FigWApps {
		for _, mode := range FigWModes {
			if res.Row(app, mode) == nil {
				t.Fatalf("missing row %s/%s", app, mode)
			}
		}
	}
	// The mechanism, not just the outcome: the warm run's saved charge must
	// come from logging less, which shows up as strictly fewer correlation
	// logs once the divergence gate parks the rate at the floor.
	for _, app := range FigWApps {
		cold, warm := res.Row(app, "cold"), res.Row(app, "warm")
		if warm.CorrLogs >= cold.CorrLogs {
			t.Errorf("%s: warm logged %d correlations, cold %d — the charge win is not rate-driven",
				app, warm.CorrLogs, cold.CorrLogs)
		}
	}
}

// TestFigWDeterministic demands a byte-identical report across two full
// sweeps: the capture, the profile round trip, and the warm replay are all
// functions of the seed alone.
func TestFigWDeterministic(t *testing.T) {
	a := FigW(testScale, nil).Table().String()
	b := FigW(testScale, nil).Table().String()
	if a != b {
		t.Fatalf("FigW not deterministic:\n--- first\n%s\n--- second\n%s", a, b)
	}
}
