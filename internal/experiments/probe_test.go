package experiments

import "testing"

// TestProbeFig9 prints the accuracy sweep at reduced scale (development
// probe; the assertions here are loose — exact claims live in the
// dedicated experiment tests).
func TestProbeFig9(t *testing.T) {
	if testing.Short() {
		t.Skip("probe")
	}
	r := Fig9(4, nil)
	t.Logf("\n%s", r)
}

func TestProbeFig1(t *testing.T) {
	if testing.Short() {
		t.Skip("probe")
	}
	r := Fig1(4, nil)
	t.Logf("\n%s", r)
}
