package experiments

import (
	"fmt"

	"jessica2/internal/gos"
	"jessica2/internal/metrics"
	"jessica2/internal/runner"
	"jessica2/internal/scenario"
	"jessica2/internal/session"
	"jessica2/internal/sim"
	"jessica2/internal/workload"
)

// --- Figure G (serving through failures) -------------------------------------
//
// Figure R shows the *runtime* surviving node failures; Figure T shows the
// *serving path* under open-loop arrivals. Figure G is their product: burst
// arrivals over a cluster that crashes mid-run, judged on what a service
// owner is judged on — goodput within the SLO and tail latency. It sweeps
// three protection levels over each failure schedule:
//
//   - none: the raw serving path. Requests sticky-routed to a crashed
//     node's workers queue behind a CPU crawling at the crash factor, so
//     the tail collapses into hundreds of milliseconds and every one of
//     those requests still counts as "served".
//   - shed:  deadline + admission control only (workload.RobustConfig with
//     Capacity, nothing else). Requests that cannot finish are priced at
//     the deadline instead of unboundedly queueing — the tail is capped at
//     the SLO, but everything stranded on the dead node is still lost.
//   - full:  the whole stack — deadlines, shedding, bounded retries,
//     quantile-delayed hedging, and circuit breakers fed by the failure
//     detector (armed only here: breakers are the request-level consumer
//     of the declare-dead push). Stranded work is rerouted to live
//     replicas inside the deadline.
//
// The acceptance bar (Violations) requires the full stack to strictly beat
// both weaker levels on goodput-within-SLO *and* on P99, on every failure
// schedule, with no request leaking from the terminal-state ledger.

// FigGModes is the protection-level axis of the sweep, in row order.
var FigGModes = []string{"none", "shed", "full"}

// FigGSchedules is the failure-schedule axis: every schedule is combined
// with the same burst arrival process.
var FigGSchedules = []string{"crash", "flaky"}

// figGHorizon is the arrival horizon (fixed across scales, like Figure T:
// rates scale down, the period structure does not).
const figGHorizon = 2 * sim.Second

// figGDeadline is the per-request SLO all three protection levels are
// judged against.
const figGDeadline = 20 * sim.Millisecond

// figGArrivals is the burst arrival spec at the given dataset scale.
func figGArrivals(sc Scale) *scenario.Arrivals {
	r := 2500.0
	if sc > 1 {
		r /= float64(sc)
	}
	if r < 200 {
		r = 200
	}
	return &scenario.Arrivals{
		Kind:        scenario.ArriveBurst,
		Rate:        r,
		Horizon:     figGHorizon,
		BurstEvery:  figGHorizon / 4,
		BurstLen:    figGHorizon / 16,
		BurstFactor: 4,
	}
}

// figGScenario is the failure schedule × burst arrival combo. The crash
// schedule kills node 1 for good at a quarter horizon; the flaky schedule
// takes node 1 down for a quarter horizon and node 2 for an eighth.
func figGScenario(sched string, seed uint64, sc Scale) *scenario.Scenario {
	scen := &scenario.Scenario{
		Name:     "figG/" + sched,
		Seed:     seed,
		Arrivals: figGArrivals(sc),
	}
	switch sched {
	case "crash":
		scen.Crashes = []scenario.Crash{
			{Node: 1, At: figGHorizon / 4},
		}
	case "flaky":
		scen.Crashes = []scenario.Crash{
			{Node: 1, At: figGHorizon / 4, Restart: figGHorizon / 2},
			{Node: 2, At: figGHorizon * 5 / 8, Restart: figGHorizon * 3 / 4},
		}
	default:
		panic("figG: unknown schedule " + sched)
	}
	return scen
}

// figGFailureConfig is the detector timing for the full stack: leases
// expire in a fraction of the request deadline, so breakers open while
// stranded requests can still be rescued.
func figGFailureConfig() *gos.FailureConfig {
	hb := figGDeadline / 5
	return &gos.FailureConfig{
		HeartbeatInterval: hb,
		LeaseTimeout:      3 * hb,
		SweepInterval:     hb,
		FlushTimeout:      4 * hb,
		FlushBackoff:      hb,
		MaxFlushBackoff:   16 * hb,
		MaxFlushRetries:   4,
	}
}

// figGRobust builds the protection level's serving config.
func figGRobust(mode string) *workload.RobustConfig {
	switch mode {
	case "none":
		return nil
	case "shed":
		return &workload.RobustConfig{Deadline: figGDeadline, Capacity: 16}
	case "full":
		rc := workload.DefaultRobustConfig()
		rc.Deadline = figGDeadline
		rc.Capacity = 16
		return rc
	default:
		panic("figG: unknown mode " + mode)
	}
}

// FigGRow is one (schedule, protection-level) measurement.
type FigGRow struct {
	Schedule string
	Mode     string
	workload.ServeStats
	// Failure-layer work under the full stack (zero elsewhere).
	LeaseExpiries, Evacuations int64
}

// FigGResult holds the serving-through-failures sweep.
type FigGResult struct {
	Scale Scale
	Seed  uint64
	Rows  []FigGRow
}

// figGRun executes one cell: ServeMix on 4 nodes / 8 threads under the
// failure × burst scenario, with the mode's protection level installed.
// No placement policy runs — the figure isolates the request-lifecycle
// layer, not the optimizer.
func figGRun(sched, mode string, sc Scale, seed uint64) FigGRow {
	const nodes, threads = 4, 8
	kcfg := gos.DefaultConfig()
	kcfg.Nodes = nodes
	kcfg.Tracking = gos.TrackingOff
	if mode == "full" {
		kcfg.Failure = figGFailureConfig()
	}
	scen := figGScenario(sched, seed, sc)
	s := session.New(session.Config{Kernel: kcfg, Scenario: scen, Epoch: figGHorizon / 16})
	w := workload.NewServeMix()
	w.RotateEvery = figGHorizon / 4
	w.Robust = figGRobust(mode)
	if w.Robust == nil {
		// The unprotected baseline still reports against the same SLO, so
		// goodput-within-SLO is comparable across all three levels.
		w.SLO = figGDeadline
	}
	if err := s.Launch(w, workload.Params{Threads: threads, Seed: seed}); err != nil {
		panic(err)
	}
	exec, err := s.Run()
	if err != nil {
		panic(err)
	}
	row := FigGRow{Schedule: sched, Mode: mode}
	w.ServeStatsInto(&row.ServeStats, exec)
	fs := s.Kernel().FailureStats()
	row.LeaseExpiries = fs.LeaseExpiries
	row.Evacuations = fs.Evacuations
	return row
}

// FigG runs the serving-through-failures sweep at the given dataset scale,
// fanning the schedule × protection-level grid through the pool.
func FigG(sc Scale, p *runner.Pool) *FigGResult {
	const seed = 42
	jobs := make([]func() FigGRow, 0, len(FigGSchedules)*len(FigGModes))
	for _, sched := range FigGSchedules {
		for _, mode := range FigGModes {
			sched, mode := sched, mode
			jobs = append(jobs, func() FigGRow { return figGRun(sched, mode, sc, seed) })
		}
	}
	cells := runner.Collect(p, jobs)
	return &FigGResult{Scale: sc, Seed: seed, Rows: cells}
}

// Row returns the (schedule, mode) cell, or nil.
func (r *FigGResult) Row(sched, mode string) *FigGRow {
	for i := range r.Rows {
		row := &r.Rows[i]
		if row.Schedule == sched && row.Mode == mode {
			return row
		}
	}
	return nil
}

// terminal is the number of requests that reached a terminal state.
func (row *FigGRow) terminal() int {
	return row.Completed + int(row.Shed+row.DeadlineExceeded+row.FailedFast)
}

// Violations checks the figure's acceptance bar — on every failure
// schedule the full stack must strictly beat both the unprotected baseline
// and shed-only on goodput-within-SLO and on P99, every protected request
// must reach a terminal state, and the protection machinery must actually
// have fired — and returns one message per broken invariant (empty means
// the figure holds).
func (r *FigGResult) Violations() []string {
	var out []string
	for _, sched := range FigGSchedules {
		none := r.Row(sched, "none")
		shed := r.Row(sched, "shed")
		full := r.Row(sched, "full")
		if none == nil || shed == nil || full == nil {
			out = append(out, fmt.Sprintf("%s: missing rows", sched))
			continue
		}
		if none.Completed != none.Arrived || none.Completed == 0 {
			out = append(out, fmt.Sprintf("%s/none: served %d of %d requests",
				sched, none.Completed, none.Arrived))
		}
		for _, row := range []*FigGRow{shed, full} {
			if row.terminal() != row.Arrived || row.Completed == 0 {
				out = append(out, fmt.Sprintf("%s/%s: %d of %d requests reached a terminal state",
					sched, row.Mode, row.terminal(), row.Arrived))
			}
		}
		for _, weaker := range []*FigGRow{none, shed} {
			if full.SLOGoodputPerSec <= weaker.SLOGoodputPerSec {
				out = append(out, fmt.Sprintf("%s: full SLO goodput (%.0f/s) did not beat %s (%.0f/s)",
					sched, full.SLOGoodputPerSec, weaker.Mode, weaker.SLOGoodputPerSec))
			}
			if full.LatencyP99 >= weaker.LatencyP99 {
				out = append(out, fmt.Sprintf("%s: full P99 (%v) did not beat %s (%v)",
					sched, full.LatencyP99, weaker.Mode, weaker.LatencyP99))
			}
		}
		if full.Retried+full.Hedged+full.Rerouted == 0 {
			out = append(out, fmt.Sprintf("%s: full stack never retried, hedged, or rerouted", sched))
		}
		if full.BreakerOpens == 0 {
			out = append(out, fmt.Sprintf("%s: no breaker ever opened despite the failure schedule", sched))
		}
	}
	return out
}

// Table renders the sweep.
func (r *FigGResult) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("FIGURE G. SERVING THROUGH FAILURES (ServeMix, 4 nodes, 8 threads, %v SLO, seed %d)", sim.Time(figGDeadline), r.Seed),
		"Schedule", "Protect", "Done", "SLO Gput", "P50", "P99", "Max", "Shed", "Expired", "Retry", "Hedge", "Reroute", "Brk Open")
	prev := ""
	for _, row := range r.Rows {
		name := row.Schedule
		if name == prev {
			name = ""
		} else {
			prev = name
		}
		t.AddRow(name, row.Mode,
			fmt.Sprintf("%d/%d", row.Completed, row.Arrived),
			fmt.Sprintf("%.0f/s", row.SLOGoodputPerSec),
			row.LatencyP50.String(), row.LatencyP99.String(), row.LatencyMax.String(),
			fmt.Sprintf("%d", row.Shed), fmt.Sprintf("%d", row.DeadlineExceeded),
			fmt.Sprintf("%d", row.Retried), fmt.Sprintf("%d", row.Hedged),
			fmt.Sprintf("%d", row.Rerouted), fmt.Sprintf("%d", row.BreakerOpens))
	}
	return t
}

func (r *FigGResult) String() string { return r.Table().String() }
