package experiments

import (
	"fmt"

	"jessica2/internal/core"
	"jessica2/internal/gos"
	"jessica2/internal/metrics"
	"jessica2/internal/runner"
	"jessica2/internal/sampling"
	"jessica2/internal/scenario"
	"jessica2/internal/session"
	"jessica2/internal/sim"
	"jessica2/internal/workload"
)

// --- Figure R (failure resilience) -------------------------------------------
//
// The paper's profiling-and-optimization loop assumes a fail-free cluster.
// Figure R measures what the failure-tolerance layer buys when that
// assumption breaks: under seed-deterministic node-crash schedules it
// compares
//
//   - crash-free:  the unperturbed baseline (reference for slowdowns);
//   - no-recovery: the crash schedule with the classic fail-free runtime —
//     threads stranded on a crashed node crawl at the crash factor for the
//     rest of the run;
//   - one-shot:    the crash schedule with a single profile-driven placement
//     (the classic "profile once, optimize once" shape): the placement
//     cannot react to nodes that die, so stranded threads stay stranded;
//   - recovery:    the crash schedule with the failure layer armed
//     (heartbeat/lease detection, safe-point evacuation, reliable flushes)
//     and the rebalance policy acting every epoch behind a health gate
//     that vetoes placements onto dead nodes.
//
// Crash times and detector timings are calibrated from the crash-free
// baseline's execution time so every Scale steps through the same schedule
// shape, and the acceptance bar (Violations) is strict: recovery must beat
// both no-recovery and one-shot on every schedule.

// FigRModes is the mode axis of the sweep, in row order.
var FigRModes = []string{"crash-free", "no-recovery", "one-shot", "recovery"}

// FigREpochs is the policy modes' epoch count relative to the baseline.
const FigREpochs = 8

// figRSchedule is one named crash schedule, its times expressed as
// numerator/denominator fractions of the crash-free execution time.
type figRSchedule struct {
	name    string
	crashes []struct {
		node     int
		num, den sim.Time
	}
}

// figRSchedules returns the schedule axis. All crashes are permanent
// (Restart 0): a transient outage lets even the fail-free runtime limp
// through, a permanent one separates recovery from hope.
func figRSchedules() []figRSchedule {
	type c = struct {
		node     int
		num, den sim.Time
	}
	return []figRSchedule{
		{"early-crash", []c{{1, 1, 4}}},
		{"late-crash", []c{{2, 1, 2}}},
		{"double-crash", []c{{1, 1, 4}, {2, 1, 2}}},
	}
}

// scheduleScenario materializes a schedule against the measured baseline.
func (s figRSchedule) scenario(base sim.Time, seed uint64) *scenario.Scenario {
	sc := &scenario.Scenario{Name: "figR/" + s.name, Seed: seed}
	for _, c := range s.crashes {
		sc.Crashes = append(sc.Crashes, scenario.Crash{Node: c.node, At: base * c.num / c.den})
	}
	return sc
}

// figRFailureConfig scales the detector's timings to the run length: leases
// expire within a few percent of the baseline execution time, so detection
// latency does not dominate short CI-scale runs.
func figRFailureConfig(base sim.Time) *gos.FailureConfig {
	hb := base / 64
	if hb < 50*sim.Microsecond {
		hb = 50 * sim.Microsecond
	}
	return &gos.FailureConfig{
		HeartbeatInterval: hb,
		LeaseTimeout:      3 * hb,
		SweepInterval:     hb,
		FlushTimeout:      4 * hb,
		FlushBackoff:      hb,
		MaxFlushBackoff:   16 * hb,
		MaxFlushRetries:   4,
	}
}

// HealthGate wraps an inner policy and vetoes actions that target nodes the
// failure detector currently reports dead: the inner planner balances load
// blindly, so after an evacuation it would happily migrate threads (or
// re-home hot objects) right back onto the crashed node. This is the
// snapshot Health view consumed as a policy input.
type HealthGate struct {
	Inner session.Policy
	// Vetoed counts dropped actions (observability for tables and tests).
	Vetoed int
}

// Name implements Policy.
func (p *HealthGate) Name() string { return p.Inner.Name() + "+healthgate" }

// NeedsProfile implements Policy.
func (p *HealthGate) NeedsProfile() bool { return p.Inner.NeedsProfile() }

// Observe implements Policy: it filters the inner policy's actions against
// the snapshot's node-health view.
func (p *HealthGate) Observe(snap *session.Snapshot) []session.Action {
	acts := p.Inner.Observe(snap)
	if snap.Health == nil {
		return acts
	}
	dead := make(map[int]bool)
	for _, nh := range snap.Health.Nodes {
		if !nh.Alive {
			dead[nh.Node] = true
		}
	}
	if len(dead) == 0 {
		return acts
	}
	kept := acts[:0]
	for _, a := range acts {
		switch act := a.(type) {
		case session.MigrateThread:
			if dead[act.To] {
				p.Vetoed++
				continue
			}
		case session.RehomeObject:
			if dead[act.To] {
				p.Vetoed++
				continue
			}
		}
		kept = append(kept, a)
	}
	return kept
}

// FigRRow is one (schedule, mode) measurement.
type FigRRow struct {
	Schedule string
	Mode     string
	Exec     sim.Time
	// Slowdown is this mode's exec / the crash-free exec (1.0 baseline).
	Slowdown float64
	// Failure-layer work: lease expiries, evacuated threads, flush retries
	// plus abandonments (zero for the modes that run without the layer).
	Expiries    int64
	Evacuations int64
	FlushRetry  int64
	// ThreadMoves counts completed policy migrations; Vetoed counts
	// health-gated actions the policy was not allowed to take.
	ThreadMoves int
	Vetoed      int
}

// FigRResult holds the resilience sweep.
type FigRResult struct {
	Scale    Scale
	Seed     uint64
	Workload string
	Rows     []FigRRow
}

// figRRun executes one cell: KVMix on 4 nodes / 8 threads with profiling
// attached, under an optional crash scenario, failure config and policy.
func figRRun(sc Scale, seed uint64, scen *scenario.Scenario, fc *gos.FailureConfig, policy session.Policy, epoch sim.Time) (*session.Session, sim.Time) {
	const nodes, threads = 4, 8
	kcfg := gos.DefaultConfig()
	kcfg.Nodes = nodes
	kcfg.Tracking = gos.TrackingSampled
	kcfg.Failure = fc
	s := session.New(session.Config{Kernel: kcfg, Scenario: scen, Epoch: epoch})
	if err := s.Launch(figCLKVMix(sc), workload.Params{Threads: threads, Seed: seed}); err != nil {
		panic(err)
	}
	if _, err := s.AttachProfiling(core.Config{Rate: sampling.FullRate}); err != nil {
		panic(err)
	}
	if policy != nil {
		if err := s.SetPolicy(policy); err != nil {
			panic(err)
		}
	}
	exec, err := s.Run()
	if err != nil {
		panic(err)
	}
	return s, exec
}

// FigR runs the resilience sweep at the given dataset scale: one crash-free
// pilot to calibrate crash times, detector timings and epoch lengths, then
// three modes per crash schedule fanned out through the pool.
func FigR(sc Scale, p *runner.Pool) *FigRResult {
	const seed = 42
	type cellRun struct {
		exec        sim.Time
		fstats      gos.FailureStats
		threadMoves int
		vetoed      int
	}
	summarize := func(s *session.Session, exec sim.Time, vetoed int) cellRun {
		return cellRun{
			exec:        exec,
			fstats:      s.Kernel().FailureStats(),
			threadMoves: len(s.MigrationEngine().History),
			vetoed:      vetoed,
		}
	}

	// Wave 1: the crash-free pilot everything else calibrates against.
	base := runner.Collect(p, []func() cellRun{func() cellRun {
		s, exec := figRRun(sc, seed, nil, nil, nil, 0)
		return summarize(s, exec, 0)
	}})[0]
	epoch := base.exec / FigREpochs
	if epoch <= 0 {
		epoch = sim.Millisecond
	}

	// Wave 2: per schedule — no-recovery, one-shot and recovery.
	schedules := figRSchedules()
	jobs := make([]func() cellRun, 0, 3*len(schedules))
	for _, sched := range schedules {
		sched := sched
		jobs = append(jobs,
			func() cellRun {
				s, exec := figRRun(sc, seed, sched.scenario(base.exec, seed), nil, nil, 0)
				return summarize(s, exec, 0)
			},
			func() cellRun {
				once := &oncePolicy{inner: session.NewRebalancePolicy()}
				s, exec := figRRun(sc, seed, sched.scenario(base.exec, seed), nil, once, epoch)
				return summarize(s, exec, 0)
			},
			func() cellRun {
				gate := &HealthGate{Inner: session.NewRebalancePolicy()}
				s, exec := figRRun(sc, seed, sched.scenario(base.exec, seed), figRFailureConfig(base.exec), gate, epoch)
				return summarize(s, exec, gate.Vetoed)
			})
	}
	cells := runner.Collect(p, jobs)

	res := &FigRResult{Scale: sc, Seed: seed, Workload: "KVMix"}
	add := func(sched, mode string, r cellRun) {
		res.Rows = append(res.Rows, FigRRow{
			Schedule:    sched,
			Mode:        mode,
			Exec:        r.exec,
			Slowdown:    float64(r.exec) / float64(base.exec),
			Expiries:    r.fstats.LeaseExpiries,
			Evacuations: r.fstats.Evacuations,
			FlushRetry:  r.fstats.FlushRetries + r.fstats.FlushesAbandoned,
			ThreadMoves: r.threadMoves,
			Vetoed:      r.vetoed,
		})
	}
	add("-", "crash-free", base)
	for i, sched := range schedules {
		add(sched.name, "no-recovery", cells[3*i])
		add(sched.name, "one-shot", cells[3*i+1])
		add(sched.name, "recovery", cells[3*i+2])
	}
	return res
}

// Row returns the (schedule, mode) cell, or nil.
func (r *FigRResult) Row(sched, mode string) *FigRRow {
	for i := range r.Rows {
		row := &r.Rows[i]
		if row.Schedule == sched && row.Mode == mode {
			return row
		}
	}
	return nil
}

// Violations checks the sweep's acceptance bar — on every crash schedule
// the recovery mode must strictly beat both no-recovery and one-shot
// placement, and must actually have detected and evacuated something — and
// returns one message per broken invariant (empty means the figure holds).
func (r *FigRResult) Violations() []string {
	var out []string
	var evacTotal int64
	for _, sched := range figRSchedules() {
		noRec := r.Row(sched.name, "no-recovery")
		once := r.Row(sched.name, "one-shot")
		rec := r.Row(sched.name, "recovery")
		if noRec == nil || once == nil || rec == nil {
			out = append(out, fmt.Sprintf("%s: missing rows", sched.name))
			continue
		}
		if rec.Exec >= noRec.Exec {
			out = append(out, fmt.Sprintf("%s: recovery (%v) did not beat no-recovery (%v)",
				sched.name, rec.Exec, noRec.Exec))
		}
		if rec.Exec >= once.Exec {
			out = append(out, fmt.Sprintf("%s: recovery (%v) did not beat one-shot (%v)",
				sched.name, rec.Exec, once.Exec))
		}
		if rec.Expiries == 0 {
			out = append(out, fmt.Sprintf("%s: recovery never detected the crash", sched.name))
		}
		evacTotal += rec.Evacuations
	}
	// Evacuation is asserted across the sweep, not per schedule: a crash
	// landing after the closed loop already migrated the node's threads
	// away legitimately finds nothing to evacuate.
	if evacTotal == 0 {
		out = append(out, "no schedule ever evacuated a stranded thread")
	}
	return out
}

// Table renders the sweep.
func (r *FigRResult) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("FIGURE R. FAILURE RESILIENCE UNDER CRASH SCHEDULES (%s, 4 nodes, 8 threads, seed %d)", r.Workload, r.Seed),
		"Schedule", "Mode", "Exec", "Slowdown", "Expiries", "Evac", "Flush Retry", "Thr Moves", "Vetoed")
	prev := ""
	for _, row := range r.Rows {
		name := row.Schedule
		if name == prev {
			name = ""
		} else {
			prev = name
		}
		t.AddRow(name, row.Mode, row.Exec.String(), fmt.Sprintf("%.3fx", row.Slowdown),
			fmt.Sprintf("%d", row.Expiries), fmt.Sprintf("%d", row.Evacuations),
			fmt.Sprintf("%d", row.FlushRetry), fmt.Sprintf("%d", row.ThreadMoves),
			fmt.Sprintf("%d", row.Vetoed))
	}
	return t
}

func (r *FigRResult) String() string { return r.Table().String() }
