package experiments

import (
	"fmt"

	"jessica2/internal/core"
	"jessica2/internal/gos"
	"jessica2/internal/metrics"
	"jessica2/internal/runner"
	"jessica2/internal/sampling"
	"jessica2/internal/scenario"
	"jessica2/internal/session"
	"jessica2/internal/sim"
	"jessica2/internal/workload"
)

// --- Figure CL (closed-loop adaptation) --------------------------------------
//
// The paper profiles at runtime but only exploits the profile post hoc. The
// closed-loop session API closes that loop: at every epoch boundary a policy
// observes the incremental profile and migrates threads / re-homes objects
// while the run continues. Figure CL quantifies the payoff: for phase-rich
// workloads under fault-injection scenarios it compares
//
//   - none:        the passive baseline (no policy ever acts);
//   - one-shot:    the rebalance policy allowed to act at a single boundary
//     (the classic "profile once, then optimize" shape, applied online at
//     the run's midpoint);
//   - closed-loop: the rebalance policy acting at every boundary across
//     FigCLEpochs epochs, chasing the workload as it shifts.
//
// Epoch lengths are calibrated from the baseline's execution time so all
// modes step through comparable schedules.

// FigCLScenarios is the scenario axis of the sweep.
var FigCLScenarios = []string{"phased", "noisy"}

// FigCLEpochs is the closed-loop mode's epoch count.
const FigCLEpochs = 8

// FigCLRow is one (workload, scenario, mode) measurement.
type FigCLRow struct {
	Workload string
	Scenario string
	Mode     string // "none", "one-shot", "closed-loop"
	Epochs   int
	Exec     sim.Time
	// Speedup is baseline exec / this mode's exec (1.0 for the baseline).
	Speedup float64
	// ThreadMoves / HomeMoves count applied migrations; Faults is the
	// kernel's remote object fault total.
	ThreadMoves int
	HomeMoves   int64
	Faults      int64
}

// FigCLResult holds the closed-loop sweep.
type FigCLResult struct {
	Scale Scale
	Seed  uint64
	Rows  []FigCLRow
}

// figCLKVMix builds the phase-rich KVMix instance: rounds short relative to
// the phased scenario's 120 ms shifts, so each phase spans several rounds
// and an online policy has time to react inside a phase.
func figCLKVMix(sc Scale) workload.Workload {
	w := workload.NewKVMix()
	w.Keys, w.ValueSize = 2048, 128
	w.Rounds, w.TxnsPerRound, w.OpsPerTxn = 24, 24, 4
	w.HotSpan = 256
	if s := int(sc); s > 1 {
		w.TxnsPerRound /= s
		if w.TxnsPerRound < 8 {
			w.TxnsPerRound = 8
		}
	}
	return w
}

// figCLSynthetic builds the zipf-skewed synthetic: the hot objects all live
// in one thread's region (homed on one node), the canonical target for
// online home rebalancing.
func figCLSynthetic(sc Scale) workload.Workload {
	w := workload.NewSynthetic()
	w.Pattern = workload.PatternZipf
	w.Intervals = 16
	w.AccessesPerInterval = 1024
	w.WriteFraction = 0.4
	if s := int(sc); s > 1 {
		w.AccessesPerInterval /= s
		if w.AccessesPerInterval < 128 {
			w.AccessesPerInterval = 128
		}
	}
	return w
}

// oncePolicy passes through its inner policy's first acting boundary, then
// goes passive — the "one-shot" optimization mode.
type oncePolicy struct {
	inner session.Policy
	acted bool
}

func (p *oncePolicy) Name() string { return p.inner.Name() + "-once" }

func (p *oncePolicy) NeedsProfile() bool { return !p.acted && p.inner.NeedsProfile() }

func (p *oncePolicy) Observe(s *session.Snapshot) []session.Action {
	if p.acted {
		return nil
	}
	acts := p.inner.Observe(s)
	if len(acts) > 0 {
		p.acted = true
	}
	return acts
}

// figCLRun executes one cell and returns (exec, applied thread moves).
func figCLRun(w workload.Workload, scenName string, seed uint64, policy session.Policy, epoch sim.Time) (*session.Session, sim.Time) {
	const nodes, threads = 4, 8
	kcfg := gos.DefaultConfig()
	kcfg.Nodes = nodes
	kcfg.Tracking = gos.TrackingSampled
	scen, err := scenario.Preset(scenName, nodes, seed)
	if err != nil {
		panic(err)
	}
	s := session.New(session.Config{Kernel: kcfg, Scenario: scen, Epoch: epoch})
	if err := s.Launch(w, workload.Params{Threads: threads, Seed: seed}); err != nil {
		panic(err)
	}
	if _, err := s.AttachProfiling(core.Config{Rate: sampling.FullRate}); err != nil {
		panic(err)
	}
	if policy != nil {
		if err := s.SetPolicy(policy); err != nil {
			panic(err)
		}
	}
	exec, err := s.Run()
	if err != nil {
		panic(err)
	}
	return s, exec
}

// FigCL runs the closed-loop sweep at the given dataset scale. The sweep
// is two waves of independent session runs submitted through the pool: the
// policy modes calibrate their epoch lengths from the baseline's execution
// time, so the four baselines fan out first, then all eight policy runs.
func FigCL(sc Scale, p *runner.Pool) *FigCLResult {
	const seed = 42
	loads := []struct {
		name string
		make func(Scale) workload.Workload
	}{
		{"KVMix", figCLKVMix},
		{"Synthetic/zipf", figCLSynthetic},
	}
	// cellRun carries only the scalars the fold reads, so the sessions (a
	// full kernel + registry + simulated heap each) are released as soon as
	// their job returns instead of being pinned until the final fold.
	type cellRun struct {
		exec        sim.Time
		faults      int64
		homeMoves   int64
		threadMoves int
	}
	summarize := func(s *session.Session, exec sim.Time) cellRun {
		return cellRun{
			exec:        exec,
			faults:      s.Kernel().Stats().Faults,
			homeMoves:   s.Kernel().Stats().HomeMigrations,
			threadMoves: len(s.MigrationEngine().History),
		}
	}
	type cell struct {
		load string
		make func(Scale) workload.Workload
		scen string
	}
	var cells []cell
	for _, ld := range loads {
		for _, scen := range FigCLScenarios {
			cells = append(cells, cell{ld.name, ld.make, scen})
		}
	}

	// Wave 1: baselines (no policy), one per cell.
	baseJobs := make([]func() cellRun, len(cells))
	for i := range cells {
		c := cells[i]
		baseJobs[i] = func() cellRun {
			return summarize(figCLRun(c.make(sc), c.scen, seed, nil, 0))
		}
	}
	bases := runner.Collect(p, baseJobs)

	// Wave 2: per cell, the one-shot and closed-loop modes, with epoch
	// lengths derived from that cell's baseline.
	modeJobs := make([]func() cellRun, 0, 2*len(cells))
	for i := range cells {
		c, baseExec := cells[i], bases[i].exec
		modeJobs = append(modeJobs,
			func() cellRun {
				oneShot := &oncePolicy{inner: session.NewRebalancePolicy()}
				return summarize(figCLRun(c.make(sc), c.scen, seed, oneShot, baseExec/2))
			},
			func() cellRun {
				return summarize(figCLRun(c.make(sc), c.scen, seed, session.NewRebalancePolicy(), baseExec/FigCLEpochs))
			})
	}
	modes := runner.Collect(p, modeJobs)

	res := &FigCLResult{Scale: sc, Seed: seed}
	for i, c := range cells {
		baseExec := bases[i].exec
		res.Rows = append(res.Rows, FigCLRow{
			Workload: c.load, Scenario: c.scen, Mode: "none", Epochs: 1,
			Exec: baseExec, Speedup: 1,
			Faults: bases[i].faults,
		})
		add := func(mode string, epochs int, r cellRun) {
			res.Rows = append(res.Rows, FigCLRow{
				Workload: c.load, Scenario: c.scen, Mode: mode, Epochs: epochs,
				Exec:        r.exec,
				Speedup:     float64(baseExec) / float64(r.exec),
				Faults:      r.faults,
				HomeMoves:   r.homeMoves,
				ThreadMoves: r.threadMoves,
			})
		}
		add("one-shot", 2, modes[2*i])
		add("closed-loop", FigCLEpochs, modes[2*i+1])
	}
	return res
}

// ClosedLoopProbe runs one closed-loop cell to completion — KVMix or the
// zipf-skewed Synthetic under the phased scenario, rebalance policy, fixed
// 2 ms epochs (no pilot calibration, so one deterministic run) — and
// returns the finished session plus its execution time. It is the shared
// substrate of the epoch-rate benchmarks and the djvmbench epoch-snapshot
// case: a finished probe's master daemon holds a realistic ingested
// population for TCM micro-benchmarks, and the run itself exercises the
// per-boundary snapshot path once per epoch.
func ClosedLoopProbe(sc Scale, load string) (*session.Session, sim.Time) {
	var w workload.Workload
	switch load {
	case "kv", "kvmix":
		w = figCLKVMix(sc)
	default:
		w = figCLSynthetic(sc)
	}
	return figCLRun(w, "phased", 42, session.NewRebalancePolicy(), 2*sim.Millisecond)
}

// Row returns the (workload, scenario, mode) cell, or nil.
func (r *FigCLResult) Row(load, scen, mode string) *FigCLRow {
	for i := range r.Rows {
		row := &r.Rows[i]
		if row.Workload == load && row.Scenario == scen && row.Mode == mode {
			return row
		}
	}
	return nil
}

// Table renders the sweep.
func (r *FigCLResult) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("FIGURE CL. CLOSED-LOOP ADAPTATION VS ONE-SHOT VS NO MIGRATION (4 nodes, 8 threads, seed %d)", r.Seed),
		"Workload", "Scenario", "Mode", "Epochs", "Exec", "Speedup", "Thr Moves", "Home Moves", "Faults")
	prev := ""
	for _, row := range r.Rows {
		group := row.Workload + "/" + row.Scenario
		name, scen := row.Workload, row.Scenario
		if group == prev {
			name, scen = "", ""
		} else {
			prev = group
		}
		t.AddRow(name, scen, row.Mode, fmt.Sprintf("%d", row.Epochs),
			row.Exec.String(), fmt.Sprintf("%.3fx", row.Speedup),
			fmt.Sprintf("%d", row.ThreadMoves), fmt.Sprintf("%d", row.HomeMoves),
			fmt.Sprintf("%d", row.Faults))
	}
	return t
}

func (r *FigCLResult) String() string { return r.Table().String() }
