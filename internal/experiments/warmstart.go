package experiments

import (
	"fmt"

	"jessica2/internal/core"
	"jessica2/internal/gos"
	"jessica2/internal/metrics"
	"jessica2/internal/profile"
	"jessica2/internal/runner"
	"jessica2/internal/sampling"
	"jessica2/internal/scenario"
	"jessica2/internal/session"
	"jessica2/internal/sim"
	"jessica2/internal/workload"
)

// --- Figure W (profile-guided warm start) ------------------------------------
//
// Every closed-loop figure so far pays the full profiling bill on every run:
// the cold run samples at the full rate from epoch 0 and spends whole phases
// learning a placement the previous run already knew. Figure W measures the
// payoff of persisting that knowledge: the cold run saves its end-of-run
// profile (internal/profile), and a warm run reloads it — stored placement
// applied before epoch 0, TCM accumulator seeded, sampling gated down to the
// floor rate wherever the live run matches the profile (session.
// WarmStartPolicy). Per application the figure compares
//
//   - cold: the rebalance policy at the full sampling rate — the capture run
//     itself (arming Config.Profile.Save is byte-invisible, so the capture
//     run IS the cold measurement);
//   - warm: the same schedule restarted with the captured profile loaded and
//     the warm-start policy driving the divergence-gated rate.
//
// Two applications exercise the two allocation shapes: phase-shifting KVMix
// (closed-loop, records preallocated — the epoch-1 home replay lands
// immediately) and ServeMix under diurnal open-loop arrivals (objects
// allocate lazily per request — the replay no-ops and the closed-gate
// steering path re-homes hot objects as they surface).
//
// The acceptance bar (Violations) is strict on KVMix: the warm run must
// converge in strictly fewer epochs, must charge strictly less profiling
// overhead, and must finish within FigWEpsilon of the cold execution time.
// On ServeMix the bar is the charge reduction plus full request completion
// and tail latency within FigWServeEpsilon.

// FigWApps is the application axis of the sweep, in row order.
var FigWApps = []string{"KVMix/phased", "ServeMix/diurnal"}

// FigWModes is the mode axis of the sweep, in row order.
var FigWModes = []string{"cold", "warm"}

// FigWEpsilon bounds the warm run's closed-loop quality regression: warm
// execution time must stay within (1+ε) of cold.
const FigWEpsilon = 0.05

// FigWServeEpsilon bounds the warm run's open-loop quality regression: warm
// P99 latency must stay within (1+ε) of cold. The serve bar is looser than
// the batch bar because the warm run re-homes lazily allocated objects from
// floor-rate evidence as they surface instead of chasing them at the full
// rate.
const FigWServeEpsilon = 0.50

// figWEpoch is the closed-loop epoch length: fixed (no pilot calibration,
// matching ClosedLoopProbe) so the capture and warm runs step through
// identical boundary schedules and one sweep is one deterministic pass.
const figWEpoch = 2 * sim.Millisecond

// FigWRow is one (application, mode) measurement.
type FigWRow struct {
	App  string
	Mode string // "cold", "warm"
	// ConvergenceEpoch is the last epoch boundary that applied a placement
	// action (thread migration or object re-home): the epoch the run
	// stopped learning placement.
	ConvergenceEpoch int
	// ProfilingCharge is the simulated CPU spent on profiling: correlation
	// logging, object re-tagging after rate changes, and the master
	// analyzer's reorg + TCM accrual.
	ProfilingCharge sim.Time
	CorrLogs        int64
	Resampled       int64
	Exec            sim.Time
	ThreadMoves     int
	HomeMoves       int64
	// Completed/Arrived and LatencyP99 are the open-loop serving metrics
	// (zero for the closed-loop application).
	Arrived, Completed int
	LatencyP99         sim.Time
}

// FigWResult holds the warm-start sweep.
type FigWResult struct {
	Scale Scale
	Seed  uint64
	Rows  []FigWRow
}

// figWRun executes one cell of either application: KVMix under the phased
// scenario at fixed epochs, or ServeMix under diurnal open-loop arrivals at
// the Figure T epoch grid. The profile IO config carries the Save arming
// (capture cells) or the loaded profile (warm cells).
func figWRun(app string, sc Scale, seed uint64, pio session.ProfileIO, policy session.Policy) (*session.Session, sim.Time, *workload.ServeStats) {
	const nodes, threads = 4, 8
	kcfg := gos.DefaultConfig()
	kcfg.Nodes = nodes
	kcfg.Tracking = gos.TrackingSampled

	var (
		w     workload.Workload
		scen  *scenario.Scenario
		epoch sim.Time
		serve *workload.ServeMix
	)
	switch app {
	case "KVMix/phased":
		w = figCLKVMix(sc)
		var err error
		scen, err = scenario.Preset("phased", nodes, seed)
		if err != nil {
			panic(err)
		}
		epoch = figWEpoch
	case "ServeMix/diurnal":
		serve = figTServeMix()
		w = serve
		scen = &scenario.Scenario{
			Name:     "figW/diurnal",
			Seed:     seed,
			Arrivals: figTArrivals("diurnal", sc),
		}
		epoch = figTHorizon / FigTEpochs
	default:
		panic("figW: unknown app " + app)
	}

	s := session.New(session.Config{Kernel: kcfg, Scenario: scen, Epoch: epoch, Profile: pio})
	if err := s.Launch(w, workload.Params{Threads: threads, Seed: seed}); err != nil {
		panic(err)
	}
	if _, err := s.AttachProfiling(core.Config{Rate: sampling.FullRate}); err != nil {
		panic(err)
	}
	if policy != nil {
		if err := s.SetPolicy(policy); err != nil {
			panic(err)
		}
	}
	exec, err := s.Run()
	if err != nil {
		panic(err)
	}
	var stats *workload.ServeStats
	if serve != nil {
		stats = serve.ServeStatsInto(nil, exec)
	}
	return s, exec, stats
}

// lastPlacementEpoch returns the last epoch boundary whose observed policy
// applied a placement action (Note == "" on a thread migration or object
// re-home) — the epoch the run stopped learning placement.
func lastPlacementEpoch(s *session.Session) int {
	last := 0
	for _, a := range s.Actions() {
		if a.Note != "" {
			continue
		}
		switch a.Action.(type) {
		case session.MigrateThread, session.RehomeObject:
			if a.Epoch > last {
				last = a.Epoch
			}
		}
	}
	return last
}

// profilingCharge totals the simulated CPU the run spent on profiling:
// correlation logging at the kernel's calibrated per-log cost, re-tagging
// cached objects after sampling-plan changes, and the master analyzer's
// OAL reorganization plus TCM accrual.
func profilingCharge(s *session.Session) sim.Time {
	k := s.Kernel()
	st := k.Stats()
	return sim.Time(st.CorrelationLogs)*k.Cfg.Costs.LogCost +
		sim.Time(st.ResampledObjs)*k.Cfg.Costs.ResampleCostPerObject +
		k.Master().ComputeTime()
}

// FigW runs the warm-start sweep at the given dataset scale: per
// application, one capture run (the cold measurement, profile saved at the
// end) fans out through the pool, then the warm runs reload the captured
// profiles in a second wave.
func FigW(sc Scale, p *runner.Pool) *FigWResult {
	const seed = 42
	type cellRun struct {
		row      FigWRow
		captured *profile.Profile
	}
	summarize := func(app, mode string, s *session.Session, exec sim.Time, stats *workload.ServeStats) FigWRow {
		row := FigWRow{
			App:              app,
			Mode:             mode,
			ConvergenceEpoch: lastPlacementEpoch(s),
			ProfilingCharge:  profilingCharge(s),
			CorrLogs:         s.Kernel().Stats().CorrelationLogs,
			Resampled:        s.Kernel().Stats().ResampledObjs,
			Exec:             exec,
			ThreadMoves:      len(s.MigrationEngine().History),
			HomeMoves:        s.Kernel().Stats().HomeMigrations,
		}
		if stats != nil {
			row.Arrived, row.Completed = stats.Arrived, stats.Completed
			row.LatencyP99 = stats.LatencyP99
		}
		return row
	}

	// Wave 1: per application, the capture run — rebalance policy at the
	// full rate with Save armed. Arming is byte-invisible, so this run is
	// also the cold measurement.
	capJobs := make([]func() cellRun, len(FigWApps))
	for i := range FigWApps {
		app := FigWApps[i]
		capJobs[i] = func() cellRun {
			s, exec, stats := figWRun(app, sc, seed,
				session.ProfileIO{Save: true}, session.NewRebalancePolicy())
			prof, err := s.CapturedProfile()
			if err != nil {
				panic(err)
			}
			return cellRun{row: summarize(app, "cold", s, exec, stats), captured: prof}
		}
	}
	colds := runner.Collect(p, capJobs)

	// Wave 2: per application, the warm run — captured profile loaded, the
	// warm-start policy gating the sampling rate from divergence.
	warmJobs := make([]func() cellRun, len(FigWApps))
	for i := range FigWApps {
		app, prof := FigWApps[i], colds[i].captured
		warmJobs[i] = func() cellRun {
			s, exec, stats := figWRun(app, sc, seed,
				session.ProfileIO{Load: prof}, session.NewWarmStartPolicy(prof))
			if w := s.ProfileWarning(); w != "" {
				panic("figW: warm run rejected its own capture: " + w)
			}
			return cellRun{row: summarize(app, "warm", s, exec, stats)}
		}
	}
	warms := runner.Collect(p, warmJobs)

	res := &FigWResult{Scale: sc, Seed: seed}
	for i := range FigWApps {
		res.Rows = append(res.Rows, colds[i].row, warms[i].row)
	}
	return res
}

// Row returns the (application, mode) cell, or nil.
func (r *FigWResult) Row(app, mode string) *FigWRow {
	for i := range r.Rows {
		row := &r.Rows[i]
		if row.App == app && row.Mode == mode {
			return row
		}
	}
	return nil
}

// Violations checks the sweep's acceptance bar and returns one message per
// broken invariant (empty means the figure holds). On the closed-loop
// application the warm start must strictly reduce both the convergence
// epoch and the profiling charge while execution time stays within
// FigWEpsilon of cold. On the open-loop application it must strictly reduce
// the profiling charge, serve the full schedule in both modes, and keep P99
// within FigWServeEpsilon of cold.
func (r *FigWResult) Violations() []string {
	var out []string
	for _, app := range FigWApps {
		cold, warm := r.Row(app, "cold"), r.Row(app, "warm")
		if cold == nil || warm == nil {
			out = append(out, fmt.Sprintf("%s: missing rows", app))
			continue
		}
		if warm.ProfilingCharge >= cold.ProfilingCharge {
			out = append(out, fmt.Sprintf("%s: warm profiling charge (%v) did not beat cold (%v)",
				app, warm.ProfilingCharge, cold.ProfilingCharge))
		}
		switch app {
		case "KVMix/phased":
			if warm.ConvergenceEpoch >= cold.ConvergenceEpoch {
				out = append(out, fmt.Sprintf("%s: warm converged at epoch %d, cold at %d",
					app, warm.ConvergenceEpoch, cold.ConvergenceEpoch))
			}
			if max := sim.Time(float64(cold.Exec) * (1 + FigWEpsilon)); warm.Exec > max {
				out = append(out, fmt.Sprintf("%s: warm exec (%v) beyond cold (%v) + %.0f%%",
					app, warm.Exec, cold.Exec, FigWEpsilon*100))
			}
		case "ServeMix/diurnal":
			for _, row := range []*FigWRow{cold, warm} {
				if row.Completed != row.Arrived || row.Completed == 0 {
					out = append(out, fmt.Sprintf("%s/%s: served %d of %d requests",
						app, row.Mode, row.Completed, row.Arrived))
				}
			}
			if max := sim.Time(float64(cold.LatencyP99) * (1 + FigWServeEpsilon)); warm.LatencyP99 > max {
				out = append(out, fmt.Sprintf("%s: warm P99 (%v) beyond cold (%v) + %.0f%%",
					app, warm.LatencyP99, cold.LatencyP99, FigWServeEpsilon*100))
			}
		}
	}
	return out
}

// Table renders the sweep.
func (r *FigWResult) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("FIGURE W. PROFILE-GUIDED WARM START VS COLD START (4 nodes, 8 threads, seed %d)", r.Seed),
		"App", "Mode", "Conv Epoch", "Prof Charge", "Corr Logs", "Resampled",
		"Exec", "P99", "Thr Moves", "Home Moves")
	prev := ""
	for _, row := range r.Rows {
		name := row.App
		if name == prev {
			name = ""
		} else {
			prev = name
		}
		p99 := "-"
		if row.Arrived > 0 {
			p99 = row.LatencyP99.String()
		}
		t.AddRow(name, row.Mode,
			fmt.Sprintf("%d", row.ConvergenceEpoch),
			row.ProfilingCharge.String(),
			fmt.Sprintf("%d", row.CorrLogs), fmt.Sprintf("%d", row.Resampled),
			row.Exec.String(), p99,
			fmt.Sprintf("%d", row.ThreadMoves), fmt.Sprintf("%d", row.HomeMoves))
	}
	return t
}

func (r *FigWResult) String() string { return r.Table().String() }
