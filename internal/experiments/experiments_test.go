package experiments

import (
	"strings"
	"testing"

	"jessica2/internal/gos"
	"jessica2/internal/sampling"
)

// Experiment integration tests run at 1/8 dataset scale so the suite stays
// fast while preserving every experiment's structure and the paper's
// qualitative claims.
const testScale = Scale(8)

func TestNewWorkloadScaling(t *testing.T) {
	full := NewWorkload(AppBarnesHut, false, 1)
	small := NewWorkload(AppBarnesHut, false, 4)
	if full.Characteristics().DataSet == small.Characteristics().DataSet {
		t.Fatal("scaling had no effect")
	}
	// Floors hold.
	tiny := NewWorkload(AppWaterSpatial, false, 1000)
	if tiny.Characteristics().DataSet == "" {
		t.Fatal("tiny workload broken")
	}
}

func TestRateNAMirrorsPaper(t *testing.T) {
	// SOR: only full sampling is distinct (rows larger than a page).
	for _, r := range []sampling.Rate{1, 4, 16} {
		if !rateNA(AppSOR, r) {
			t.Errorf("SOR %v should be N/A", r)
		}
	}
	if rateNA(AppSOR, sampling.FullRate) {
		t.Error("SOR full must not be N/A")
	}
	// Water-Spatial saturates at 16X.
	if rateNA(AppWaterSpatial, 4) || !rateNA(AppWaterSpatial, 16) {
		t.Error("WS N/A boundary wrong")
	}
	// Barnes-Hut is fine-grained: everything applies.
	for _, r := range []sampling.Rate{1, 4, 16} {
		if rateNA(AppBarnesHut, r) {
			t.Errorf("BH %v should apply", r)
		}
	}
}

func TestTable1Renders(t *testing.T) {
	tb := Table1(testScale)
	s := tb.String()
	for _, name := range []string{"SOR", "Barnes-Hut", "Water-Spatial", "Coarse", "Fine", "Medium"} {
		if !strings.Contains(s, name) {
			t.Errorf("Table I missing %q", name)
		}
	}
	if !strings.Contains(tb.CSV(), "Benchmark,") {
		t.Error("CSV broken")
	}
}

func TestTable2OverheadsSmallAndOrdered(t *testing.T) {
	r := Table2(testScale, nil)
	for _, a := range Apps {
		base := r.BaselineMs[a]
		if base <= 0 {
			t.Fatalf("%v baseline = %v", a, base)
		}
		full := r.WithMs[a][sampling.FullRate]
		over := (full - base) / base
		// The paper's claim: collection cost is minimal (~1% worst case).
		if over > 0.05 {
			t.Errorf("%v full-sampling collection overhead %.2f%% too large", a, over*100)
		}
		if over < -0.05 {
			t.Errorf("%v negative overhead %.2f%% too large", a, over*100)
		}
	}
	if !strings.Contains(r.String(), "N/A") {
		t.Error("Table II should mirror the paper's N/A cells")
	}
}

func TestTable3VolumesAndShape(t *testing.T) {
	r := Table3(testScale, nil)
	for _, a := range Apps {
		full := r.Cells[a][sampling.FullRate]
		if full.OALKB <= 0 {
			t.Fatalf("%v has no OAL volume at full sampling", a)
		}
		if full.OALShare <= 0 || full.OALShare > 0.5 {
			t.Errorf("%v OAL share %.2f%% out of band", a, full.OALShare*100)
		}
		if full.TCMTimeMs < 0 {
			t.Errorf("%v TCM time negative", a)
		}
	}
	// Rising OAL volume with rate for the fine-grained app.
	bh := r.Cells[AppBarnesHut]
	if !(bh[1].OALKB <= bh[4].OALKB && bh[4].OALKB <= bh[sampling.FullRate].OALKB) {
		t.Errorf("BH OAL volume not monotone: 1X=%v 4X=%v full=%v",
			bh[1].OALKB, bh[4].OALKB, bh[sampling.FullRate].OALKB)
	}
	// TCM compute time largest at full sampling.
	if bh[sampling.FullRate].TCMTimeMs < bh[1].TCMTimeMs {
		t.Error("TCM compute time should grow with sampling rate")
	}
}

func TestFig9AccuracyClaims(t *testing.T) {
	r := Fig9(testScale, nil)
	for _, a := range Apps {
		pts := r.Points[a]
		if len(pts) != len(Fig9Rates) {
			t.Fatalf("%v has %d points", a, len(pts))
		}
		// The paper's headline: accuracy at the finer half of the sweep
		// stays above 95%.
		for _, p := range pts[:4] { // 512X..64X
			if p.AbsoluteABS < 0.90 {
				t.Errorf("%v at %v: absolute/ABS %.2f%% below band", a, p.Rate, p.AbsoluteABS*100)
			}
		}
		// ABS is at least as stable as EUC on average (paper: ABS
		// "consistently outperforms").
		var absSum, eucSum float64
		for _, p := range pts {
			absSum += p.AbsoluteABS
			eucSum += p.AbsoluteEUC
		}
		if absSum < eucSum-0.05*float64(len(pts)) {
			t.Errorf("%v: EUC beat ABS overall (abs %.3f vs euc %.3f)", a, absSum, eucSum)
		}
		// Relative tracks absolute: mostly within a few points.
		var relDiff float64
		for _, p := range pts {
			d := p.AbsoluteABS - p.RelativeABS
			if d < 0 {
				d = -d
			}
			relDiff += d
		}
		if relDiff/float64(len(pts)) > 0.10 {
			t.Errorf("%v: relative accuracy diverges from absolute by %.1f%% on average",
				a, relDiff/float64(len(pts))*100)
		}
	}
}

func TestFig1GalaxyContrast(t *testing.T) {
	r := Fig1(testScale, nil)
	inh := GalaxyContrast(r.Inherent)
	ind := GalaxyContrast(r.Induced)
	// The inherent map must show the two-galaxy block structure; the
	// page-based induced map must wash it out.
	if inh < 1.5 {
		t.Fatalf("inherent contrast %.2f too weak", inh)
	}
	if ind > inh/1.5 {
		t.Fatalf("induced contrast %.2f not sufficiently degraded vs %.2f", ind, inh)
	}
	if !strings.Contains(r.String(), "Inherent") {
		t.Error("rendering broken")
	}
}

func TestTable4FootprintAccuracy(t *testing.T) {
	r := Table4(testScale, nil)
	if len(r.Rows) == 0 {
		t.Fatal("no rows")
	}
	seenApps := map[App]bool{}
	for _, row := range r.Rows {
		seenApps[row.App] = true
		if row.FullBytes <= 0 {
			t.Errorf("%v/%s zero footprint", row.App, row.Class)
		}
		if row.Accuracy < 0 || row.Accuracy > 1 {
			t.Errorf("%v/%s accuracy %.2f out of range", row.App, row.Class, row.Accuracy)
		}
	}
	if len(seenApps) != 3 {
		t.Fatalf("apps covered: %v", seenApps)
	}
	// SOR's arrays exceed the page size, so 4X is effectively full
	// sampling: near-perfect accuracy (the paper's 100% row).
	for _, row := range r.Rows {
		if row.App == AppSOR && row.Class == "double[]" && row.Accuracy < 0.95 {
			t.Errorf("SOR double[] accuracy %.2f%%, want ~100%%", row.Accuracy*100)
		}
	}
}

func TestTable5OverheadShapes(t *testing.T) {
	r := Table5(testScale, nil)
	for _, a := range Apps {
		base := r.BaselineMs[a]
		if base <= 0 {
			t.Fatal("no baseline")
		}
		// Stack sampling overhead bounded (paper: worst 1.44%).
		for _, cfgKey := range []string{"imm4", "imm16", "lazy4", "lazy16"} {
			over := (r.StackMs[a][cfgKey] - base) / base
			if over < -0.02 || over > 0.08 {
				t.Errorf("%v stack %s overhead %.2f%% out of band", a, cfgKey, over*100)
			}
		}
		// 16ms sampling cheaper than 4ms for the same mode.
		if r.StackMs[a]["imm16"] > r.StackMs[a]["imm4"]+base*0.002 {
			t.Errorf("%v: 16ms immediate costlier than 4ms", a)
		}
		// Footprinting: timer mode no costlier than nonstop.
		if r.FootMs[a]["timer4X"] > r.FootMs[a]["non4X"]+base*0.005 {
			t.Errorf("%v: timer footprinting costlier than nonstop", a)
		}
		// Resolution adds bounded overhead on its base config.
		over := (r.ResolveMs[a] - r.ResolveBaseMs[a]) / r.ResolveBaseMs[a]
		if over < -0.01 || over > 0.10 {
			t.Errorf("%v resolution overhead %.2f%% out of band", a, over*100)
		}
	}
	// SOR: sampling rate has no effect on footprinting cost (rows always
	// sampled) — the paper's explicit observation.
	diff := r.FootMs[AppSOR]["non4X"] - r.FootMs[AppSOR]["nonFull"]
	if diff < 0 {
		diff = -diff
	}
	if diff > r.BaselineMs[AppSOR]*0.01 {
		t.Errorf("SOR footprinting differs between 4X and full by %.0fms", diff)
	}
	// Barnes-Hut: 4X sampling cuts footprinting cost vs full (fine-grained
	// apps benefit).
	if r.FootMs[AppBarnesHut]["non4X"] >= r.FootMs[AppBarnesHut]["nonFull"] {
		t.Error("BH: 4X footprinting not cheaper than full")
	}
}

func TestRunDeterministic(t *testing.T) {
	spec := Spec{App: AppWaterSpatial, Scale: testScale, Nodes: 4, Threads: 4,
		Tracking: gos.TrackingSampled, Rate: sampling.FullRate, TransferOALs: true}
	a := Run(spec)
	b := Run(spec)
	if a.Exec != b.Exec {
		t.Fatalf("exec times differ: %v vs %v", a.Exec, b.Exec)
	}
	if a.Stats != b.Stats {
		t.Fatalf("stats differ")
	}
	if d := a.TCM.Total() - b.TCM.Total(); d != 0 {
		t.Fatalf("TCM totals differ by %v", d)
	}
}
