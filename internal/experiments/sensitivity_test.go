package experiments

import (
	"testing"

	"jessica2/internal/sampling"
)

// TestFigSAdaptiveVsFixedUnderPerturbation is the acceptance check for the
// scenario engine: under at least one perturbation schedule, adaptive
// sampling must behave measurably differently from fixed-rate sampling
// (the whole point of validating the adaptive profilers on non-uniform
// clusters).
func TestFigSAdaptiveVsFixedUnderPerturbation(t *testing.T) {
	res := FigS(8, nil)
	wantRows := len(FigSScenarios) * 3
	if len(res.Rows) != wantRows {
		t.Fatalf("rows = %d, want %d", len(res.Rows), wantRows)
	}

	differs := false
	for _, name := range FigSScenarios {
		if name == "none" {
			continue
		}
		if res.AdaptiveDiffers(name, 0.001) {
			differs = true
		}
	}
	if !differs {
		t.Errorf("adaptive sampling indistinguishable from fixed-rate under every scenario:\n%s", res)
	}

	// The adaptive controller must actually adapt — walk the rate ladder —
	// under the phase-shifting scenario.
	ad := res.Row("phased", "adaptive")
	if ad == nil {
		t.Fatal("no adaptive row for the phased scenario")
	}
	if ad.RateRaises == 0 {
		t.Errorf("adaptive controller never raised the rate under the phased scenario:\n%s", res)
	}
	if ad.FinalRate < 1 && ad.FinalRate != sampling.FullRate {
		t.Errorf("adaptive final rate %v out of range", ad.FinalRate)
	}

	// Perturbations must actually perturb: the storm scenario's full-rate
	// run cannot match the unperturbed full-rate execution time.
	if a, b := res.Row("none", "full"), res.Row("storm", "full"); a.Exec == b.Exec {
		t.Errorf("storm scenario did not change the execution time (%v)", a.Exec)
	}

	// Sanity on the reference rows.
	for _, name := range FigSScenarios {
		if full := res.Row(name, "full"); full == nil || full.AccuracyABS != 1 {
			t.Errorf("bad full-rate reference row for %q: %+v", name, full)
		}
	}
}
