package experiments

import "testing"

// TestFigCLClosedLoopWins is the acceptance check for the closed-loop
// session API: under fault-injection scenarios, the rebalance policy acting
// every epoch must strictly beat the passive baseline, and acting at every
// epoch must not lose to acting once.
func TestFigCLClosedLoopWins(t *testing.T) {
	res := FigCL(testScale, nil)
	wantRows := 2 * len(FigCLScenarios) * 3
	if len(res.Rows) != wantRows {
		t.Fatalf("rows: got %d want %d", len(res.Rows), wantRows)
	}
	for _, load := range []string{"KVMix", "Synthetic/zipf"} {
		for _, scen := range FigCLScenarios {
			base := res.Row(load, scen, "none")
			once := res.Row(load, scen, "one-shot")
			loop := res.Row(load, scen, "closed-loop")
			if base == nil || once == nil || loop == nil {
				t.Fatalf("%s/%s: missing rows", load, scen)
			}
			if loop.Exec >= base.Exec {
				t.Errorf("%s/%s: closed-loop did not beat baseline: %v >= %v",
					load, scen, loop.Exec, base.Exec)
			}
			if loop.ThreadMoves+int(loop.HomeMoves) == 0 {
				t.Errorf("%s/%s: closed-loop never acted", load, scen)
			}
			if loop.Epochs < 2 {
				t.Errorf("%s/%s: closed-loop ran %d epochs", load, scen, loop.Epochs)
			}
		}
	}
}
