package experiments

import (
	"strings"
	"testing"
)

// TestFigTClosedLoopWins is the acceptance check for the open-loop traffic
// figure: on every arrival schedule the closed-loop placement must strictly
// beat both the passive baseline and the one-shot placement on P99 latency,
// with every request served. FigTResult.Violations is the single source of
// that bar — the CLI smoke run asserts the same thing.
func TestFigTClosedLoopWins(t *testing.T) {
	res := FigT(testScale, nil)
	if vs := res.Violations(); len(vs) > 0 {
		t.Fatalf("figure T does not hold:\n  %s\n%s",
			strings.Join(vs, "\n  "), res.Table())
	}
	// The mechanism, not just the outcome: the closed loop must be chasing
	// the rotating hot window, which shows up as strictly fewer faults than
	// the baseline that never moves a home.
	for _, sched := range FigTSchedules {
		nop, closed := res.Row(sched, "nop"), res.Row(sched, "closed-loop")
		if closed.Faults >= nop.Faults {
			t.Errorf("%s: closed-loop faulted %d times, nop only %d — the P99 win is not placement-driven",
				sched, closed.Faults, nop.Faults)
		}
	}
}

// TestFigTDeterministic demands a byte-identical report across two full
// sweeps: the arrival schedules, the serving order and the policy decisions
// are all functions of the seed alone.
func TestFigTDeterministic(t *testing.T) {
	a := FigT(testScale, nil).Table().String()
	b := FigT(testScale, nil).Table().String()
	if a != b {
		t.Fatalf("FigT not deterministic:\n--- first\n%s\n--- second\n%s", a, b)
	}
}
