package experiments

import (
	"testing"

	"jessica2/internal/core"
	"jessica2/internal/gos"
	"jessica2/internal/sim"
	"jessica2/internal/sticky"
)

// TestProbeResolution inspects invariant mining and sticky-set resolution
// on a Barnes-Hut run (development probe).
func TestProbeResolution(t *testing.T) {
	if testing.Short() {
		t.Skip("probe")
	}
	fp := footprintConfig(false)
	fp.EagerResolve = true
	fp.Resolver = sticky.DefaultResolverConfig()
	out := Run(Spec{App: AppBarnesHut, Scale: 4, Nodes: 1, Threads: 1,
		Tracking: gos.TrackingOff, Rate: 4,
		Stack:     &core.StackConfig{Gap: 16 * sim.Millisecond, Lazy: true, MinSurvived: 1, Costs: core.DefaultStackCosts()},
		Footprint: fp})
	t.Logf("eager: resolutions=%d resolveCPU=%v stackCPU=%v activations=%d",
		out.Profiler.Resolutions, out.Profiler.ResolveCPU,
		out.Profiler.StackCPU, out.Profiler.StackActivations)
	inv := out.Profiler.Invariants(0)
	t.Logf("invariants: %d", len(inv))
	for i, r := range inv {
		if i > 8 {
			break
		}
		t.Logf("  depth=%d slot=%d survived=%d class=%s", r.Depth, r.Slot, r.Survived, r.Obj.Class.Name)
	}
	foot := out.Profiler.Footprint(0)
	t.Logf("footprint: %v (total %d bytes)", foot, foot.Total())
	res := sticky.Resolve(inv, foot, sticky.DefaultResolverConfig())
	t.Logf("resolution: objs=%d bytes=%d visited=%d landmarks=%d cost=%v",
		len(res.Objects), res.Bytes, res.Visited, res.LandmarksMet, res.Cost)
	for _, c := range res.PerClass.Classes() {
		t.Logf("  class %-8s %8d bytes", c, res.PerClass[c])
	}
}
