package experiments

import (
	"fmt"

	"jessica2/internal/core"
	"jessica2/internal/gos"
	"jessica2/internal/metrics"
	"jessica2/internal/sampling"
	"jessica2/internal/sim"
	"jessica2/internal/sticky"
	"jessica2/internal/workload"
)

// table2Rates are the sampling-rate columns of Tables II and III.
var table2Rates = []sampling.Rate{1, 4, 16, sampling.FullRate}

// naRates mirrors the paper's N/A cells: rates at which a benchmark's
// object geometry makes sampling degenerate (every object of the dominant
// class is sampled anyway, so the configuration "does not apply"). SOR's
// 16 KB rows exceed the page size at every rate; Water-Spatial's 512-byte
// molecules saturate at 16X (8 objects fill a page).
func rateNA(a App, r sampling.Rate) bool {
	if r == sampling.FullRate {
		return false
	}
	switch a {
	case AppSOR:
		return true // rows are larger than a page: only full is distinct
	case AppWaterSpatial:
		return r >= 16
	}
	return false
}

// --- Table I ----------------------------------------------------------------

// Table1 renders the application benchmark characteristics.
func Table1(scale Scale) *metrics.Table {
	t := metrics.NewTable("TABLE I. APPLICATION BENCHMARK CHARACTERISTICS",
		"Benchmark", "Data set", "Rounds", "Granularity", "Object size")
	for _, a := range Apps {
		c := NewWorkload(a, false, scale).Characteristics()
		t.AddRow(c.Name, c.DataSet, fmt.Sprint(c.Rounds), c.Granularity, c.ObjectSize)
	}
	return t
}

// --- Table II ----------------------------------------------------------------

// Table2Result holds the OAL-collection CPU overhead measurements.
type Table2Result struct {
	Scale Scale
	// BaselineMs[app] is execution time without correlation tracking.
	BaselineMs map[App]float64
	// WithMs[app][rate] is execution time with collection (no transfer).
	WithMs map[App]map[sampling.Rate]float64
}

// Table2 measures the pure CPU cost of OAL collection: a single thread per
// application on one node, OAL transfer disabled (the paper's O1
// methodology).
func Table2(scale Scale) *Table2Result {
	res := &Table2Result{
		Scale:      scale,
		BaselineMs: make(map[App]float64),
		WithMs:     make(map[App]map[sampling.Rate]float64),
	}
	for _, a := range Apps {
		base := Run(Spec{App: a, Scale: scale, Nodes: 1, Threads: 1,
			Tracking: gos.TrackingOff})
		res.BaselineMs[a] = base.ExecMs()
		res.WithMs[a] = make(map[sampling.Rate]float64)
		for _, r := range table2Rates {
			if rateNA(a, r) {
				continue
			}
			out := Run(Spec{App: a, Scale: scale, Nodes: 1, Threads: 1,
				Tracking: gos.TrackingSampled, Rate: r, TransferOALs: false})
			res.WithMs[a][r] = out.ExecMs()
		}
	}
	return res
}

// Table renders the result in paper layout.
func (r *Table2Result) Table() *metrics.Table {
	t := metrics.NewTable("TABLE II. OVERHEAD OF OAL COLLECTION (ms, single thread, no OAL transfer)",
		"Benchmark", "No Tracking", "1X", "4X", "16X", "Full")
	for _, a := range Apps {
		row := []string{a.String(), fmt.Sprintf("%.0f", r.BaselineMs[a])}
		for _, rate := range table2Rates {
			if rateNA(a, rate) {
				row = append(row, "N/A")
				continue
			}
			row = append(row, metrics.MsCell(r.WithMs[a][rate], r.BaselineMs[a]))
		}
		t.AddRow(row...)
	}
	return t
}

func (r *Table2Result) String() string { return r.Table().String() }

// --- Table III ---------------------------------------------------------------

// Table3Cell is one (app, rate) measurement.
type Table3Cell struct {
	ExecMs    float64
	OALKB     float64
	OALShare  float64 // OAL / GOS volume
	TCMTimeMs float64
}

// Table3Result holds the full correlation-tracking overhead measurements:
// execution time with collect+send, message volumes, TCM computing time.
type Table3Result struct {
	Scale      Scale
	BaselineMs map[App]float64
	GOSKB      map[App]float64
	Cells      map[App]map[sampling.Rate]Table3Cell
}

// Table3 runs the 8-node (one thread each) correlation tracking overhead
// experiment.
func Table3(scale Scale) *Table3Result {
	res := &Table3Result{
		Scale:      scale,
		BaselineMs: make(map[App]float64),
		GOSKB:      make(map[App]float64),
		Cells:      make(map[App]map[sampling.Rate]Table3Cell),
	}
	for _, a := range Apps {
		base := Run(Spec{App: a, Scale: scale, Nodes: 8, Threads: 8,
			Tracking: gos.TrackingOff})
		res.BaselineMs[a] = base.ExecMs()
		res.Cells[a] = make(map[sampling.Rate]Table3Cell)
		for _, rate := range table2Rates {
			if rateNA(a, rate) {
				continue
			}
			out := Run(Spec{App: a, Scale: scale, Nodes: 8, Threads: 8,
				Tracking: gos.TrackingSampled, Rate: rate, TransferOALs: true})
			cell := Table3Cell{
				ExecMs:    out.ExecMs(),
				OALKB:     out.OALKB(),
				TCMTimeMs: out.TCMTime.Milliseconds(),
			}
			gos := out.GOSKB()
			if res.GOSKB[a] == 0 {
				res.GOSKB[a] = gos
			}
			if gos > 0 {
				cell.OALShare = cell.OALKB / gos
			}
			res.Cells[a][rate] = cell
		}
	}
	return res
}

// Table renders the result in paper layout (three stacked sections).
func (r *Table3Result) Table() *metrics.Table {
	t := metrics.NewTable("TABLE III. CORRELATION TRACKING OVERHEADS (8 nodes x 1 thread)",
		"Benchmark", "Metric", "No Tracking", "1X", "4X", "16X", "Full")
	for _, a := range Apps {
		execRow := []string{a.String(), "Exec time (ms)", fmt.Sprintf("%.0f", r.BaselineMs[a])}
		volRow := []string{"", "OAL vol KB (% of GOS)", fmt.Sprintf("GOS=%.0fKB", r.GOSKB[a])}
		tcmRow := []string{"", "TCM compute (ms)", "-"}
		for _, rate := range table2Rates {
			if rateNA(a, rate) {
				execRow = append(execRow, "N/A")
				volRow = append(volRow, "N/A")
				tcmRow = append(tcmRow, "N/A")
				continue
			}
			c := r.Cells[a][rate]
			execRow = append(execRow, metrics.MsCell(c.ExecMs, r.BaselineMs[a]))
			volRow = append(volRow, fmt.Sprintf("%.0f (%.2f%%)", c.OALKB, c.OALShare*100))
			tcmRow = append(tcmRow, fmt.Sprintf("%.0f", c.TCMTimeMs))
		}
		t.AddRow(execRow...)
		t.AddRow(volRow...)
		t.AddRow(tcmRow...)
	}
	return t
}

func (r *Table3Result) String() string { return r.Table().String() }

// --- Table IV ----------------------------------------------------------------

// Table4Row is one per-class sticky-set footprint accuracy measurement.
type Table4Row struct {
	App       App
	Class     string
	FullBytes float64 // average SS footprint at full sampling
	DiffBytes float64 // average |4X − full| difference
	Accuracy  float64
}

// Table4Result holds the sticky-set footprint accuracy study.
type Table4Result struct {
	Scale Scale
	Rows  []Table4Row
}

// Table4 profiles sticky-set footprints at full sampling and at 4X with 8
// threads per application and compares the per-class estimates.
func Table4(scale Scale) *Table4Result {
	res := &Table4Result{Scale: scale}
	for _, a := range Apps {
		full := runFootprint(a, scale, sampling.FullRate)
		fourX := runFootprint(a, scale, 4)
		// Average per class across threads.
		classes := map[string]struct{}{}
		for _, fp := range full.Footprints {
			for c := range fp {
				classes[c] = struct{}{}
			}
		}
		names := make([]string, 0, len(classes))
		for c := range classes {
			names = append(names, c)
		}
		sortStrings(names)
		n := float64(len(full.Footprints))
		for _, cname := range names {
			var fullSum, diffSum float64
			for tid, fp := range full.Footprints {
				fv := float64(fp[cname])
				var xv float64
				if x, ok := fourX.Footprints[tid]; ok {
					xv = float64(x[cname])
				}
				fullSum += fv
				diffSum += abs(fv - xv)
			}
			if fullSum == 0 {
				continue
			}
			row := Table4Row{
				App:       a,
				Class:     cname,
				FullBytes: fullSum / n,
				DiffBytes: diffSum / n,
			}
			row.Accuracy = 1 - row.DiffBytes/row.FullBytes
			if row.Accuracy < 0 {
				row.Accuracy = 0
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res
}

func runFootprint(a App, scale Scale, rate sampling.Rate) *Out {
	fp := core.FootprintConfig{FootprinterConfig: sticky.FootprinterConfig{
		MinAccesses: 2,
		Nonstop:     true,
		RearmPeriod: 1 * sim.Millisecond,
		MinGap:      1,
		ArmCost:     80 * sim.Nanosecond,
		TrapBase:    150 * sim.Nanosecond,
		TrapPerKB:   1536 * sim.Nanosecond,
		EWMA:        0.5,
	}}
	return Run(Spec{App: a, Scale: scale, Nodes: 8, Threads: 8,
		Tracking: gos.TrackingOff, Rate: rate, Footprint: &fp})
}

// Table renders Table IV in paper layout.
func (r *Table4Result) Table() *metrics.Table {
	t := metrics.NewTable("TABLE IV. ACCURACY OF STICKY-SET FOOTPRINT (8 threads; 4X vs full sampling)",
		"Benchmark", "Class", "Avg SS footprint at full (bytes)", "Avg diff at 4X (bytes)", "Accuracy")
	last := App(-1)
	for _, row := range r.Rows {
		name := ""
		if row.App != last {
			name = row.App.String()
			last = row.App
		}
		t.AddRow(name, row.Class,
			fmt.Sprintf("%.0f", row.FullBytes),
			fmt.Sprintf("%.0f", row.DiffBytes),
			fmt.Sprintf("%.2f%%", row.Accuracy*100))
	}
	return t
}

func (r *Table4Result) String() string { return r.Table().String() }

// --- Table V -----------------------------------------------------------------

// Table5Result holds the sticky-set profiling overhead measurements.
type Table5Result struct {
	Scale      Scale
	BaselineMs map[App]float64
	// StackMs[app][cfg] with cfg keys "imm4", "imm16", "lazy4", "lazy16".
	StackMs map[App]map[string]float64
	// FootMs[app][cfg] with cfg keys "non4X", "nonFull", "timer4X",
	// "timerFull".
	FootMs map[App]map[string]float64
	// ResolveMs[app] is timer-4X footprinting + 16ms lazy stack sampling
	// + eager per-interval resolution; ResolveBaseMs is the same config
	// without resolution.
	ResolveMs, ResolveBaseMs map[App]float64
}

var stackCfgs = []struct {
	Key  string
	Lazy bool
	Gap  sim.Time
}{
	{"imm4", false, 4 * sim.Millisecond},
	{"imm16", false, 16 * sim.Millisecond},
	{"lazy4", true, 4 * sim.Millisecond},
	{"lazy16", true, 16 * sim.Millisecond},
}

var footCfgs = []struct {
	Key     string
	Nonstop bool
	Rate    sampling.Rate
}{
	{"non4X", true, 4},
	{"nonFull", true, sampling.FullRate},
	{"timer4X", false, 4},
	{"timerFull", false, sampling.FullRate},
}

func footprintConfig(nonstop bool) *core.FootprintConfig {
	return &core.FootprintConfig{FootprinterConfig: sticky.FootprinterConfig{
		MinAccesses: 2,
		Nonstop:     nonstop,
		RearmPeriod: 1 * sim.Millisecond,
		OnPhase:     100 * sim.Millisecond,
		OffPhase:    100 * sim.Millisecond,
		MinGap:      1,
		ArmCost:     80 * sim.Nanosecond,
		TrapBase:    150 * sim.Nanosecond,
		TrapPerKB:   1536 * sim.Nanosecond,
		EWMA:        0.5,
	}}
}

// Table5 measures stack sampling, footprinting and resolution overheads on
// single-thread runs (SOR at the 1K×1K dataset, per the paper).
func Table5(scale Scale) *Table5Result {
	res := &Table5Result{
		Scale:         scale,
		BaselineMs:    make(map[App]float64),
		StackMs:       make(map[App]map[string]float64),
		FootMs:        make(map[App]map[string]float64),
		ResolveMs:     make(map[App]float64),
		ResolveBaseMs: make(map[App]float64),
	}
	for _, a := range Apps {
		small := a == AppSOR
		base := Run(Spec{App: a, Small: small, Scale: scale, Nodes: 1, Threads: 1,
			Tracking: gos.TrackingOff})
		res.BaselineMs[a] = base.ExecMs()

		res.StackMs[a] = make(map[string]float64)
		for _, sc := range stackCfgs {
			out := Run(Spec{App: a, Small: small, Scale: scale, Nodes: 1, Threads: 1,
				Tracking: gos.TrackingOff,
				Stack:    &core.StackConfig{Gap: sc.Gap, Lazy: sc.Lazy, MinSurvived: 1, Costs: core.DefaultStackCosts()}})
			res.StackMs[a][sc.Key] = out.ExecMs()
		}

		res.FootMs[a] = make(map[string]float64)
		for _, fc := range footCfgs {
			out := Run(Spec{App: a, Small: small, Scale: scale, Nodes: 1, Threads: 1,
				Tracking: gos.TrackingOff, Rate: fc.Rate,
				Footprint: footprintConfig(fc.Nonstop)})
			res.FootMs[a][fc.Key] = out.ExecMs()
		}

		// Resolution overhead: timer-based 4X footprinting + lazy 16 ms
		// stack sampling, with and without eager per-interval resolution.
		stackCfg := &core.StackConfig{Gap: 16 * sim.Millisecond, Lazy: true, MinSurvived: 1, Costs: core.DefaultStackCosts()}
		withBase := Run(Spec{App: a, Small: small, Scale: scale, Nodes: 1, Threads: 1,
			Tracking: gos.TrackingOff, Rate: 4,
			Stack: stackCfg, Footprint: footprintConfig(false)})
		res.ResolveBaseMs[a] = withBase.ExecMs()
		fpr := footprintConfig(false)
		fpr.EagerResolve = true
		fpr.Resolver = sticky.DefaultResolverConfig()
		withRes := Run(Spec{App: a, Small: small, Scale: scale, Nodes: 1, Threads: 1,
			Tracking: gos.TrackingOff, Rate: 4,
			Stack: stackCfg, Footprint: fpr})
		res.ResolveMs[a] = withRes.ExecMs()
	}
	return res
}

// Table renders Table V in paper layout.
func (r *Table5Result) Table() *metrics.Table {
	t := metrics.NewTable("TABLE V. OVERHEAD OF STICKY-SET FOOTPRINT PROFILING (ms, single thread)",
		"Benchmark", "Data set", "Baseline",
		"Stack imm 4ms", "Stack imm 16ms", "Stack lazy 4ms", "Stack lazy 16ms",
		"Footprint nonstop 4X", "Footprint nonstop full",
		"Footprint timer 4X", "Footprint timer full",
		"+Resolution")
	for _, a := range Apps {
		base := r.BaselineMs[a]
		row := []string{a.String(), DataSetLabel(a, a == AppSOR, r.Scale), fmt.Sprintf("%.0f", base)}
		for _, sc := range stackCfgs {
			row = append(row, metrics.MsCell(r.StackMs[a][sc.Key], base))
		}
		for _, fc := range footCfgs {
			row = append(row, metrics.MsCell(r.FootMs[a][fc.Key], base))
		}
		row = append(row, metrics.MsCell(r.ResolveMs[a], r.ResolveBaseMs[a]))
		t.AddRow(row...)
	}
	return t
}

func (r *Table5Result) String() string { return r.Table().String() }

// --- helpers -----------------------------------------------------------------

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Characteristics re-exports the workload descriptor for Table I users.
func Characteristics(a App, scale Scale) workload.Characteristics {
	return NewWorkload(a, false, scale).Characteristics()
}
