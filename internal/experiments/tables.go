package experiments

import (
	"fmt"

	"jessica2/internal/core"
	"jessica2/internal/gos"
	"jessica2/internal/metrics"
	"jessica2/internal/runner"
	"jessica2/internal/sampling"
	"jessica2/internal/sim"
	"jessica2/internal/sticky"
	"jessica2/internal/workload"
)

// table2Rates are the sampling-rate columns of Tables II and III.
var table2Rates = []sampling.Rate{1, 4, 16, sampling.FullRate}

// naRates mirrors the paper's N/A cells: rates at which a benchmark's
// object geometry makes sampling degenerate (every object of the dominant
// class is sampled anyway, so the configuration "does not apply"). SOR's
// 16 KB rows exceed the page size at every rate; Water-Spatial's 512-byte
// molecules saturate at 16X (8 objects fill a page).
func rateNA(a App, r sampling.Rate) bool {
	if r == sampling.FullRate {
		return false
	}
	switch a {
	case AppSOR:
		return true // rows are larger than a page: only full is distinct
	case AppWaterSpatial:
		return r >= 16
	}
	return false
}

// --- Table I ----------------------------------------------------------------

// Table1 renders the application benchmark characteristics.
func Table1(scale Scale) *metrics.Table {
	t := metrics.NewTable("TABLE I. APPLICATION BENCHMARK CHARACTERISTICS",
		"Benchmark", "Data set", "Rounds", "Granularity", "Object size")
	for _, a := range Apps {
		c := NewWorkload(a, false, scale).Characteristics()
		t.AddRow(c.Name, c.DataSet, fmt.Sprint(c.Rounds), c.Granularity, c.ObjectSize)
	}
	return t
}

// --- Table II ----------------------------------------------------------------

// Table2Result holds the OAL-collection CPU overhead measurements.
type Table2Result struct {
	Scale Scale
	// BaselineMs[app] is execution time without correlation tracking.
	BaselineMs map[App]float64
	// WithMs[app][rate] is execution time with collection (no transfer).
	WithMs map[App]map[sampling.Rate]float64
}

// Table2 measures the pure CPU cost of OAL collection: a single thread per
// application on one node, OAL transfer disabled (the paper's O1
// methodology). The independent runs are submitted through the pool; the
// fold is positional, so the result is identical at any parallelism.
func Table2(scale Scale, p *runner.Pool) *Table2Result {
	// rate 0 marks the no-tracking baseline cell (rates sweep from 1 up).
	type cell struct {
		app  App
		rate sampling.Rate
	}
	var cells []cell
	var specs []Spec
	for _, a := range Apps {
		cells = append(cells, cell{a, 0})
		specs = append(specs, Spec{App: a, Scale: scale, Nodes: 1, Threads: 1,
			Tracking: gos.TrackingOff})
		for _, r := range table2Rates {
			if rateNA(a, r) {
				continue
			}
			cells = append(cells, cell{a, r})
			specs = append(specs, Spec{App: a, Scale: scale, Nodes: 1, Threads: 1,
				Tracking: gos.TrackingSampled, Rate: r, TransferOALs: false})
		}
	}
	outs := RunAll(p, specs)

	res := &Table2Result{
		Scale:      scale,
		BaselineMs: make(map[App]float64),
		WithMs:     make(map[App]map[sampling.Rate]float64),
	}
	for i, c := range cells {
		ms := outs[i].ExecMs()
		if c.rate == 0 {
			res.BaselineMs[c.app] = ms
			res.WithMs[c.app] = make(map[sampling.Rate]float64)
			continue
		}
		res.WithMs[c.app][c.rate] = ms
	}
	return res
}

// Table renders the result in paper layout.
func (r *Table2Result) Table() *metrics.Table {
	t := metrics.NewTable("TABLE II. OVERHEAD OF OAL COLLECTION (ms, single thread, no OAL transfer)",
		"Benchmark", "No Tracking", "1X", "4X", "16X", "Full")
	for _, a := range Apps {
		row := []string{a.String(), fmt.Sprintf("%.0f", r.BaselineMs[a])}
		for _, rate := range table2Rates {
			if rateNA(a, rate) {
				row = append(row, "N/A")
				continue
			}
			row = append(row, metrics.MsCell(r.WithMs[a][rate], r.BaselineMs[a]))
		}
		t.AddRow(row...)
	}
	return t
}

func (r *Table2Result) String() string { return r.Table().String() }

// --- Table III ---------------------------------------------------------------

// Table3Cell is one (app, rate) measurement.
type Table3Cell struct {
	ExecMs    float64
	OALKB     float64
	OALShare  float64 // OAL / GOS volume
	TCMTimeMs float64
}

// Table3Result holds the full correlation-tracking overhead measurements:
// execution time with collect+send, message volumes, TCM computing time.
type Table3Result struct {
	Scale      Scale
	BaselineMs map[App]float64
	GOSKB      map[App]float64
	Cells      map[App]map[sampling.Rate]Table3Cell
}

// Table3 runs the 8-node (one thread each) correlation tracking overhead
// experiment, fanning the independent cells out over the pool.
func Table3(scale Scale, p *runner.Pool) *Table3Result {
	type cell struct {
		app  App
		rate sampling.Rate // 0 = no-tracking baseline
	}
	var cells []cell
	var specs []Spec
	for _, a := range Apps {
		cells = append(cells, cell{a, 0})
		specs = append(specs, Spec{App: a, Scale: scale, Nodes: 8, Threads: 8,
			Tracking: gos.TrackingOff})
		for _, rate := range table2Rates {
			if rateNA(a, rate) {
				continue
			}
			cells = append(cells, cell{a, rate})
			specs = append(specs, Spec{App: a, Scale: scale, Nodes: 8, Threads: 8,
				Tracking: gos.TrackingSampled, Rate: rate, TransferOALs: true})
		}
	}
	outs := RunAll(p, specs)

	res := &Table3Result{
		Scale:      scale,
		BaselineMs: make(map[App]float64),
		GOSKB:      make(map[App]float64),
		Cells:      make(map[App]map[sampling.Rate]Table3Cell),
	}
	for i, c := range cells {
		out := outs[i]
		if c.rate == 0 {
			res.BaselineMs[c.app] = out.ExecMs()
			res.Cells[c.app] = make(map[sampling.Rate]Table3Cell)
			continue
		}
		cl := Table3Cell{
			ExecMs:    out.ExecMs(),
			OALKB:     out.OALKB(),
			TCMTimeMs: out.TCMTime.Milliseconds(),
		}
		gosKB := out.GOSKB()
		if res.GOSKB[c.app] == 0 {
			res.GOSKB[c.app] = gosKB
		}
		if gosKB > 0 {
			cl.OALShare = cl.OALKB / gosKB
		}
		res.Cells[c.app][c.rate] = cl
	}
	return res
}

// Table renders the result in paper layout (three stacked sections).
func (r *Table3Result) Table() *metrics.Table {
	t := metrics.NewTable("TABLE III. CORRELATION TRACKING OVERHEADS (8 nodes x 1 thread)",
		"Benchmark", "Metric", "No Tracking", "1X", "4X", "16X", "Full")
	for _, a := range Apps {
		execRow := []string{a.String(), "Exec time (ms)", fmt.Sprintf("%.0f", r.BaselineMs[a])}
		volRow := []string{"", "OAL vol KB (% of GOS)", fmt.Sprintf("GOS=%.0fKB", r.GOSKB[a])}
		tcmRow := []string{"", "TCM compute (ms)", "-"}
		for _, rate := range table2Rates {
			if rateNA(a, rate) {
				execRow = append(execRow, "N/A")
				volRow = append(volRow, "N/A")
				tcmRow = append(tcmRow, "N/A")
				continue
			}
			c := r.Cells[a][rate]
			execRow = append(execRow, metrics.MsCell(c.ExecMs, r.BaselineMs[a]))
			volRow = append(volRow, fmt.Sprintf("%.0f (%.2f%%)", c.OALKB, c.OALShare*100))
			tcmRow = append(tcmRow, fmt.Sprintf("%.0f", c.TCMTimeMs))
		}
		t.AddRow(execRow...)
		t.AddRow(volRow...)
		t.AddRow(tcmRow...)
	}
	return t
}

func (r *Table3Result) String() string { return r.Table().String() }

// --- Table IV ----------------------------------------------------------------

// Table4Row is one per-class sticky-set footprint accuracy measurement.
type Table4Row struct {
	App       App
	Class     string
	FullBytes float64 // average SS footprint at full sampling
	DiffBytes float64 // average |4X − full| difference
	Accuracy  float64
}

// Table4Result holds the sticky-set footprint accuracy study.
type Table4Result struct {
	Scale Scale
	Rows  []Table4Row
}

// Table4 profiles sticky-set footprints at full sampling and at 4X with 8
// threads per application and compares the per-class estimates. The
// full/4X pairs of all applications run through the pool.
func Table4(scale Scale, p *runner.Pool) *Table4Result {
	specs := make([]Spec, 0, 2*len(Apps))
	for _, a := range Apps {
		specs = append(specs,
			footprintSpec(a, scale, sampling.FullRate),
			footprintSpec(a, scale, 4))
	}
	outs := RunAll(p, specs)

	res := &Table4Result{Scale: scale}
	for ai, a := range Apps {
		full, fourX := outs[2*ai], outs[2*ai+1]
		// Average per class across threads.
		classes := map[string]struct{}{}
		for _, fp := range full.Footprints {
			for c := range fp {
				classes[c] = struct{}{}
			}
		}
		names := make([]string, 0, len(classes))
		for c := range classes {
			names = append(names, c)
		}
		sortStrings(names)
		n := float64(len(full.Footprints))
		for _, cname := range names {
			var fullSum, diffSum float64
			for tid, fp := range full.Footprints {
				fv := float64(fp[cname])
				var xv float64
				if x, ok := fourX.Footprints[tid]; ok {
					xv = float64(x[cname])
				}
				fullSum += fv
				diffSum += abs(fv - xv)
			}
			if fullSum == 0 {
				continue
			}
			row := Table4Row{
				App:       a,
				Class:     cname,
				FullBytes: fullSum / n,
				DiffBytes: diffSum / n,
			}
			row.Accuracy = 1 - row.DiffBytes/row.FullBytes
			if row.Accuracy < 0 {
				row.Accuracy = 0
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res
}

// footprintSpec builds one Table IV cell's spec. Each spec gets its own
// FootprintConfig: specs run concurrently under the pool and must not share
// pointered configuration.
func footprintSpec(a App, scale Scale, rate sampling.Rate) Spec {
	fp := &core.FootprintConfig{FootprinterConfig: sticky.FootprinterConfig{
		MinAccesses: 2,
		Nonstop:     true,
		RearmPeriod: 1 * sim.Millisecond,
		MinGap:      1,
		ArmCost:     80 * sim.Nanosecond,
		TrapBase:    150 * sim.Nanosecond,
		TrapPerKB:   1536 * sim.Nanosecond,
		EWMA:        0.5,
	}}
	return Spec{App: a, Scale: scale, Nodes: 8, Threads: 8,
		Tracking: gos.TrackingOff, Rate: rate, Footprint: fp}
}

// Table renders Table IV in paper layout.
func (r *Table4Result) Table() *metrics.Table {
	t := metrics.NewTable("TABLE IV. ACCURACY OF STICKY-SET FOOTPRINT (8 threads; 4X vs full sampling)",
		"Benchmark", "Class", "Avg SS footprint at full (bytes)", "Avg diff at 4X (bytes)", "Accuracy")
	last := App(-1)
	for _, row := range r.Rows {
		name := ""
		if row.App != last {
			name = row.App.String()
			last = row.App
		}
		t.AddRow(name, row.Class,
			fmt.Sprintf("%.0f", row.FullBytes),
			fmt.Sprintf("%.0f", row.DiffBytes),
			fmt.Sprintf("%.2f%%", row.Accuracy*100))
	}
	return t
}

func (r *Table4Result) String() string { return r.Table().String() }

// --- Table V -----------------------------------------------------------------

// Table5Result holds the sticky-set profiling overhead measurements.
type Table5Result struct {
	Scale      Scale
	BaselineMs map[App]float64
	// StackMs[app][cfg] with cfg keys "imm4", "imm16", "lazy4", "lazy16".
	StackMs map[App]map[string]float64
	// FootMs[app][cfg] with cfg keys "non4X", "nonFull", "timer4X",
	// "timerFull".
	FootMs map[App]map[string]float64
	// ResolveMs[app] is timer-4X footprinting + 16ms lazy stack sampling
	// + eager per-interval resolution; ResolveBaseMs is the same config
	// without resolution.
	ResolveMs, ResolveBaseMs map[App]float64
}

var stackCfgs = []struct {
	Key  string
	Lazy bool
	Gap  sim.Time
}{
	{"imm4", false, 4 * sim.Millisecond},
	{"imm16", false, 16 * sim.Millisecond},
	{"lazy4", true, 4 * sim.Millisecond},
	{"lazy16", true, 16 * sim.Millisecond},
}

var footCfgs = []struct {
	Key     string
	Nonstop bool
	Rate    sampling.Rate
}{
	{"non4X", true, 4},
	{"nonFull", true, sampling.FullRate},
	{"timer4X", false, 4},
	{"timerFull", false, sampling.FullRate},
}

func footprintConfig(nonstop bool) *core.FootprintConfig {
	return &core.FootprintConfig{FootprinterConfig: sticky.FootprinterConfig{
		MinAccesses: 2,
		Nonstop:     nonstop,
		RearmPeriod: 1 * sim.Millisecond,
		OnPhase:     100 * sim.Millisecond,
		OffPhase:    100 * sim.Millisecond,
		MinGap:      1,
		ArmCost:     80 * sim.Nanosecond,
		TrapBase:    150 * sim.Nanosecond,
		TrapPerKB:   1536 * sim.Nanosecond,
		EWMA:        0.5,
	}}
}

// table5Cell identifies one Table V measurement within an app's group.
type table5Cell struct {
	kind string // "base", "stack", "foot", "resolve-base", "resolve"
	key  string // stackCfgs/footCfgs key for stack/foot kinds
}

// table5Specs builds one app's 11 single-thread runs in table order. Each
// spec carries freshly allocated Stack/Footprint configs: the pool runs
// specs concurrently and pointered configuration must not be shared.
func table5Specs(a App, scale Scale) ([]Spec, []table5Cell) {
	small := a == AppSOR
	base := func() Spec {
		return Spec{App: a, Small: small, Scale: scale, Nodes: 1, Threads: 1,
			Tracking: gos.TrackingOff}
	}
	lazyStack := func() *core.StackConfig {
		return &core.StackConfig{Gap: 16 * sim.Millisecond, Lazy: true, MinSurvived: 1, Costs: core.DefaultStackCosts()}
	}
	var specs []Spec
	var cells []table5Cell

	specs = append(specs, base())
	cells = append(cells, table5Cell{kind: "base"})

	for _, sc := range stackCfgs {
		s := base()
		s.Stack = &core.StackConfig{Gap: sc.Gap, Lazy: sc.Lazy, MinSurvived: 1, Costs: core.DefaultStackCosts()}
		specs = append(specs, s)
		cells = append(cells, table5Cell{kind: "stack", key: sc.Key})
	}

	for _, fc := range footCfgs {
		s := base()
		s.Rate = fc.Rate
		s.Footprint = footprintConfig(fc.Nonstop)
		specs = append(specs, s)
		cells = append(cells, table5Cell{kind: "foot", key: fc.Key})
	}

	// Resolution overhead: timer-based 4X footprinting + lazy 16 ms stack
	// sampling, with and without eager per-interval resolution.
	s := base()
	s.Rate, s.Stack, s.Footprint = 4, lazyStack(), footprintConfig(false)
	specs = append(specs, s)
	cells = append(cells, table5Cell{kind: "resolve-base"})

	s = base()
	fpr := footprintConfig(false)
	fpr.EagerResolve = true
	fpr.Resolver = sticky.DefaultResolverConfig()
	s.Rate, s.Stack, s.Footprint = 4, lazyStack(), fpr
	specs = append(specs, s)
	cells = append(cells, table5Cell{kind: "resolve"})

	return specs, cells
}

// Table5 measures stack sampling, footprinting and resolution overheads on
// single-thread runs (SOR at the 1K×1K dataset, per the paper), submitting
// every configuration through the pool.
func Table5(scale Scale, p *runner.Pool) *Table5Result {
	type group struct {
		app   App
		cells []table5Cell
	}
	var specs []Spec
	var groups []group
	for _, a := range Apps {
		s, cells := table5Specs(a, scale)
		specs = append(specs, s...)
		groups = append(groups, group{a, cells})
	}
	outs := RunAll(p, specs)

	res := &Table5Result{
		Scale:         scale,
		BaselineMs:    make(map[App]float64),
		StackMs:       make(map[App]map[string]float64),
		FootMs:        make(map[App]map[string]float64),
		ResolveMs:     make(map[App]float64),
		ResolveBaseMs: make(map[App]float64),
	}
	i := 0
	for _, g := range groups {
		res.StackMs[g.app] = make(map[string]float64)
		res.FootMs[g.app] = make(map[string]float64)
		for _, c := range g.cells {
			ms := outs[i].ExecMs()
			i++
			switch c.kind {
			case "base":
				res.BaselineMs[g.app] = ms
			case "stack":
				res.StackMs[g.app][c.key] = ms
			case "foot":
				res.FootMs[g.app][c.key] = ms
			case "resolve-base":
				res.ResolveBaseMs[g.app] = ms
			case "resolve":
				res.ResolveMs[g.app] = ms
			}
		}
	}
	return res
}

// Table renders Table V in paper layout.
func (r *Table5Result) Table() *metrics.Table {
	t := metrics.NewTable("TABLE V. OVERHEAD OF STICKY-SET FOOTPRINT PROFILING (ms, single thread)",
		"Benchmark", "Data set", "Baseline",
		"Stack imm 4ms", "Stack imm 16ms", "Stack lazy 4ms", "Stack lazy 16ms",
		"Footprint nonstop 4X", "Footprint nonstop full",
		"Footprint timer 4X", "Footprint timer full",
		"+Resolution")
	for _, a := range Apps {
		base := r.BaselineMs[a]
		row := []string{a.String(), DataSetLabel(a, a == AppSOR, r.Scale), fmt.Sprintf("%.0f", base)}
		for _, sc := range stackCfgs {
			row = append(row, metrics.MsCell(r.StackMs[a][sc.Key], base))
		}
		for _, fc := range footCfgs {
			row = append(row, metrics.MsCell(r.FootMs[a][fc.Key], base))
		}
		row = append(row, metrics.MsCell(r.ResolveMs[a], r.ResolveBaseMs[a]))
		t.AddRow(row...)
	}
	return t
}

func (r *Table5Result) String() string { return r.Table().String() }

// --- helpers -----------------------------------------------------------------

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Characteristics re-exports the workload descriptor for Table I users.
func Characteristics(a App, scale Scale) workload.Characteristics {
	return NewWorkload(a, false, scale).Characteristics()
}
