// Package experiments regenerates every table and figure of the paper's
// evaluation (§IV) on the simulated distributed JVM. Each experiment has a
// Run function returning a structured result whose String method renders
// the paper-style table; cmd/djvmbench and the root bench suite call these.
package experiments

import (
	"fmt"

	"jessica2/internal/core"
	"jessica2/internal/gos"
	"jessica2/internal/network"
	"jessica2/internal/pagesim"
	"jessica2/internal/runner"
	"jessica2/internal/sampling"
	"jessica2/internal/scenario"
	"jessica2/internal/sim"
	"jessica2/internal/sticky"
	"jessica2/internal/tcm"
	"jessica2/internal/workload"
)

// App identifies one of the benchmarks.
type App int

// The paper's three applications plus the scenario-era additions.
const (
	AppSOR App = iota
	AppBarnesHut
	AppWaterSpatial
	AppLU
	AppKVMix
)

func (a App) String() string {
	switch a {
	case AppSOR:
		return "SOR"
	case AppBarnesHut:
		return "Barnes-Hut"
	case AppWaterSpatial:
		return "Water-Spatial"
	case AppLU:
		return "LU"
	case AppKVMix:
		return "KVMix"
	default:
		return fmt.Sprintf("app(%d)", int(a))
	}
}

// Apps lists the paper's benchmarks in paper order (the tables iterate
// these; the scenario-era additions live in AllApps).
var Apps = []App{AppSOR, AppBarnesHut, AppWaterSpatial}

// AllApps includes the post-paper workloads.
var AllApps = []App{AppSOR, AppBarnesHut, AppWaterSpatial, AppLU, AppKVMix}

// Scale shrinks the problem sizes for quick test runs; 1 = paper scale.
// Values > 1 divide dataset dimensions (rows, bodies, molecules, rounds
// are kept) so CI-speed runs preserve the experiment structure.
type Scale int

// NewWorkload instantiates an app. small selects the Table V dataset for
// SOR (1K×1K); scale > 1 shrinks datasets for fast tests.
func NewWorkload(a App, small bool, scale Scale) workload.Workload {
	if scale < 1 {
		scale = 1
	}
	s := int(scale)
	switch a {
	case AppSOR:
		w := workload.NewSOR()
		if small {
			w = workload.NewSORSmall()
		}
		w.RowsN /= s
		w.Cols /= s
		if w.RowsN < 32 {
			w.RowsN = 32
		}
		if w.Cols < 32 {
			w.Cols = 32
		}
		return w
	case AppBarnesHut:
		w := workload.NewBarnesHut()
		w.NBodies /= s
		if w.NBodies < 128 {
			w.NBodies = 128
		}
		return w
	case AppWaterSpatial:
		w := workload.NewWaterSpatial()
		w.NMol /= s
		if w.NMol < 64 {
			w.NMol = 64
		}
		return w
	case AppLU:
		w := workload.NewLU()
		w.N /= s
		if w.N < 4*w.Block {
			w.N = 4 * w.Block
		}
		return w
	case AppKVMix:
		w := workload.NewKVMix()
		w.Keys /= s
		if w.Keys < 256 {
			w.Keys = 256
		}
		w.TxnsPerRound /= s
		if w.TxnsPerRound < 16 {
			w.TxnsPerRound = 16
		}
		w.HotSpan = w.Keys / 8
		return w
	}
	panic("experiments: unknown app")
}

// DataSetLabel is the Table IV/V "Data Set Size" column.
func DataSetLabel(a App, small bool, scale Scale) string {
	w := NewWorkload(a, small, scale)
	return w.Characteristics().DataSet
}

// Spec configures one simulated run.
type Spec struct {
	App      App
	Small    bool // Table V datasets (SOR 1K×1K)
	Scale    Scale
	Nodes    int
	Threads  int
	Seed     uint64
	Tracking gos.TrackingMode
	// Rate is the uniform sampling rate (0 = leave full-sampling gaps).
	Rate sampling.Rate
	// TransferOALs ships OALs to the master (Table II disables).
	TransferOALs bool
	// DistributedTCM enables worker-side OAL reduction (§VI extension).
	DistributedTCM bool
	// Stack / Footprint / Adaptive attach the respective profilers.
	Stack     *core.StackConfig
	Footprint *core.FootprintConfig
	Adaptive  *core.AdaptiveConfig
	// PageTracker attaches the page-based baseline (Fig. 1b).
	PageTracker bool
	// Scenario, when non-nil, perturbs the run with the fault-injection
	// scenario engine (Figure S sensitivity sweeps).
	Scenario *scenario.Scenario
}

// Out is the outcome of one run.
type Out struct {
	Spec     Spec
	Exec     sim.Time
	Stats    gos.KernelStats
	Net      network.Stats
	TCM      *tcm.Map
	TCMCost  tcm.BuildCost
	TCMTime  sim.Time // master analyzer CPU (dedicated machine)
	PageTCM  *tcm.Map
	Profiler *core.Profiler
	// Footprints is the final per-thread sticky-set footprint (if
	// footprinting was enabled).
	Footprints map[int]sticky.Footprint
}

// ExecMs returns execution time in milliseconds.
func (o *Out) ExecMs() float64 { return o.Exec.Milliseconds() }

// OALKB is the profiling traffic in KB.
func (o *Out) OALKB() float64 { return float64(o.Net.CatBytes(network.CatOAL)) / 1024 }

// GOSKB is the protocol traffic (data + control + headers) in KB.
func (o *Out) GOSKB() float64 {
	return float64(o.Net.CatBytes(network.CatGOSData)+o.Net.CatBytes(network.CatControl)+o.Net.HeaderBytesTotal) / 1024
}

// Run executes one spec deterministically.
func Run(spec Spec) *Out {
	if spec.Nodes <= 0 {
		spec.Nodes = 8
	}
	if spec.Threads <= 0 {
		spec.Threads = spec.Nodes
	}
	if spec.Seed == 0 {
		spec.Seed = 42
	}
	kcfg := gos.DefaultConfig()
	kcfg.Nodes = spec.Nodes
	kcfg.Tracking = spec.Tracking
	kcfg.TransferOALs = spec.TransferOALs
	kcfg.DistributedTCM = spec.DistributedTCM
	k := gos.NewKernel(kcfg)

	params := workload.Params{Threads: spec.Threads, Seed: spec.Seed}
	if spec.Scenario != nil {
		params.Phase = new(workload.Phase)
		spec.Scenario.Apply(k, params.Phase)
	}

	w := NewWorkload(spec.App, spec.Small, spec.Scale)
	w.Launch(k, params)

	var tracker *pagesim.Tracker
	if spec.PageTracker {
		tracker = pagesim.NewTracker(spec.Threads)
		k.AddObserver(tracker)
	}

	pcfg := core.Config{
		Rate:      spec.Rate,
		Stack:     spec.Stack,
		Footprint: spec.Footprint,
		Adaptive:  spec.Adaptive,
	}
	prof := core.Attach(k, pcfg)

	out := &Out{Spec: spec, Profiler: prof}
	out.Exec = k.Run()
	k.FlushAllOAL()
	out.Stats = k.Stats()
	out.Net = k.Net.Stats()
	if spec.Tracking != gos.TrackingOff {
		out.TCM, out.TCMCost = k.TCM()
		out.TCMTime = k.Master().ComputeTime()
	}
	if tracker != nil {
		out.PageTCM = tracker.Build()
	}
	if spec.Footprint != nil {
		out.Footprints = make(map[int]sticky.Footprint)
		for tid, fp := range prof.Footprinters {
			out.Footprints[tid] = fp.Footprint()
		}
	}
	return out
}

// Dispatcher runs a batch of specs somewhere other than the local worker
// pool — typically internal/dispatch's multi-host fleet. RunSpecs must
// return the outcomes in submission order (the positional contract every
// table and figure fold relies on); because each spec is a pure,
// seed-deterministic function, a dispatched batch is byte-identical to a
// local one. A returned error means the batch could not be completed at
// all; RunAll then degrades to the local pool, so installing a dispatcher
// can slow a regeneration down but never fail or corrupt it.
type Dispatcher interface {
	RunSpecs(specs []Spec) ([]*Out, error)
}

// activeDispatcher, when non-nil, fields every RunAll batch. It is a plain
// package variable set once at process startup (djvmbench/djvmrun -workers)
// before any experiment runs; it is not synchronized for mid-run swaps.
var activeDispatcher Dispatcher

// SetDispatcher installs (or, with nil, removes) the process-wide
// dispatcher RunAll routes batches through. Call before regenerating
// anything; the local pool argument of RunAll remains the fallback.
func SetDispatcher(d Dispatcher) { activeDispatcher = d }

// RunAll executes the specs through the pool's worker fan-out and returns
// the outcomes in submission order. Every spec is an independent,
// seed-deterministic simulation (Run builds a private kernel, engine and
// workload per call), so the collected results — and any table or figure
// folded from them positionally — are byte-identical at any parallelism.
// A nil pool runs the specs inline, exactly like the historical loops.
//
// When a Dispatcher is installed (SetDispatcher) the batch is offered to it
// first; a dispatcher error falls back to the local pool rather than
// failing the regeneration.
func RunAll(p *runner.Pool, specs []Spec) []*Out {
	if d := activeDispatcher; d != nil {
		if outs, err := d.RunSpecs(specs); err == nil {
			return outs
		}
	}
	jobs := make([]func() *Out, len(specs))
	for i := range specs {
		spec := specs[i]
		jobs[i] = func() *Out { return Run(spec) }
	}
	return runner.Collect(p, jobs)
}

// The tracker implements gos.AccessObserver directly.
var _ gos.AccessObserver = (*pagesim.Tracker)(nil)
