package experiments

import (
	"fmt"

	"jessica2/internal/core"
	"jessica2/internal/gos"
	"jessica2/internal/metrics"
	"jessica2/internal/runner"
	"jessica2/internal/sampling"
	"jessica2/internal/scenario"
	"jessica2/internal/sim"
	"jessica2/internal/tcm"
)

// --- Figure S (scenario sensitivity) -----------------------------------------
//
// The paper evaluates adaptive sampling on a uniform, fault-free cluster.
// Figure S is our extension: the same profiling configurations run under
// the fault-injection scenario engine's perturbation schedules, measuring
// how fixed-rate and adaptive sampling respond to heterogeneous CPUs,
// noisy neighbors and phase-shifting workloads. The sweep runs the KVMix
// workload (skewed, lock-heavy, phase-aware) per scenario in three modes:
// full-rate reference, fixed nX rate, and the adaptive controller.

// FigSScenarios is the sweep's scenario axis ("none" = unperturbed baseline).
var FigSScenarios = []string{"none", "hetero", "noisy", "phased", "storm"}

// FigSFixedRate is the fixed-mode sampling rate the adaptive mode competes
// against.
const FigSFixedRate = sampling.Rate(4)

// FigSRow is one (scenario, mode) measurement.
type FigSRow struct {
	Scenario  string
	Mode      string // "full", "fixed-4X", "adaptive"
	Exec      sim.Time
	FinalRate sampling.Rate
	// RateRaises counts adaptive controller rate changes (0 for the
	// non-adaptive modes).
	RateRaises int
	// AccuracyABS is 1 − E_ABS against the full-rate map of the same
	// scenario (1.0 for the reference itself).
	AccuracyABS float64
	OALKB       float64
}

// FigSResult holds the sensitivity sweep.
type FigSResult struct {
	Scale Scale
	Seed  uint64
	Rows  []FigSRow
}

// figSSpec builds the common run spec for one scenario/mode cell. Each cell
// gets a freshly built scenario so seeded streams never leak across runs.
func figSSpec(sc Scale, seed uint64, scenarioName string) Spec {
	spec := Spec{
		App: AppKVMix, Scale: sc, Nodes: 4, Threads: 8, Seed: seed,
		Tracking: gos.TrackingSampled, TransferOALs: true,
	}
	if scenarioName != "none" {
		s, err := scenario.Preset(scenarioName, spec.Nodes, seed)
		if err != nil {
			panic(err)
		}
		spec.Scenario = s
	}
	return spec
}

// FigS runs the sensitivity sweep at the given dataset scale. Every
// (scenario, mode) cell is an independent run — each gets a freshly built
// scenario and its own adaptive-controller config — so all fifteen fan out
// through the pool; the accuracy comparisons against each scenario's
// full-rate reference happen in the positional fold.
func FigS(sc Scale, p *runner.Pool) *FigSResult {
	const seed = 42
	adStart := sampling.Rate(1)
	specs := make([]Spec, 0, 3*len(FigSScenarios))
	for _, name := range FigSScenarios {
		// Full-rate reference for this scenario.
		fullSpec := figSSpec(sc, seed, name)
		fullSpec.Rate = sampling.FullRate

		// Fixed-rate mode.
		fixedSpec := figSSpec(sc, seed, name)
		fixedSpec.Rate = FigSFixedRate

		// Adaptive mode: start coarse, let the controller walk the ladder.
		adSpec := figSSpec(sc, seed, name)
		ad := core.DefaultAdaptiveConfig()
		ad.Window = 2 * sim.Millisecond // KVMix runs are short; decide often
		ad.Start = adStart
		adSpec.Adaptive = &ad

		specs = append(specs, fullSpec, fixedSpec, adSpec)
	}
	outs := RunAll(p, specs)

	res := &FigSResult{Scale: sc, Seed: seed}
	for si, name := range FigSScenarios {
		full, fixed, adaptive := outs[3*si], outs[3*si+1], outs[3*si+2]
		res.Rows = append(res.Rows, FigSRow{
			Scenario: name, Mode: "full", Exec: full.Exec,
			FinalRate: sampling.FullRate, AccuracyABS: 1,
			OALKB: full.OALKB(),
		})
		res.Rows = append(res.Rows, FigSRow{
			Scenario: name, Mode: fmt.Sprintf("fixed-%v", FigSFixedRate), Exec: fixed.Exec,
			FinalRate:   FigSFixedRate,
			AccuracyABS: tcm.Accuracy(tcm.DistanceABS(fixed.TCM, full.TCM)),
			OALKB:       fixed.OALKB(),
		})
		raises := 0
		finalRate := adStart
		for _, rc := range adaptive.Profiler.RateTrace {
			if rc.To != rc.From {
				raises++
			}
			finalRate = rc.To
		}
		res.Rows = append(res.Rows, FigSRow{
			Scenario: name, Mode: "adaptive", Exec: adaptive.Exec,
			FinalRate: finalRate, RateRaises: raises,
			AccuracyABS: tcm.Accuracy(tcm.DistanceABS(adaptive.TCM, full.TCM)),
			OALKB:       adaptive.OALKB(),
		})
	}
	return res
}

// Row returns the (scenario, mode) cell, or nil.
func (r *FigSResult) Row(scenarioName, mode string) *FigSRow {
	for i := range r.Rows {
		if r.Rows[i].Scenario == scenarioName && r.Rows[i].Mode == mode {
			return &r.Rows[i]
		}
	}
	return nil
}

// AdaptiveDiffers reports whether, under the named scenario, adaptive
// sampling behaved measurably differently from the fixed rate: a different
// final effective rate, or an accuracy gap beyond eps.
func (r *FigSResult) AdaptiveDiffers(scenarioName string, eps float64) bool {
	ad := r.Row(scenarioName, "adaptive")
	fx := r.Row(scenarioName, fmt.Sprintf("fixed-%v", FigSFixedRate))
	if ad == nil || fx == nil {
		return false
	}
	if ad.FinalRate != fx.FinalRate {
		return true
	}
	diff := ad.AccuracyABS - fx.AccuracyABS
	return diff > eps || diff < -eps
}

// Table renders the sweep.
func (r *FigSResult) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("FIGURE S. SAMPLING SENSITIVITY UNDER FAULT-INJECTION SCENARIOS (KVMix, 8 threads, seed %d)", r.Seed),
		"Scenario", "Mode", "Exec", "Final Rate", "Raises", "Accuracy/ABS", "OAL KB")
	prev := ""
	for _, row := range r.Rows {
		name := row.Scenario
		if name == prev {
			name = ""
		} else {
			prev = row.Scenario
		}
		t.AddRow(name, row.Mode, row.Exec.String(), row.FinalRate.String(),
			fmt.Sprintf("%d", row.RateRaises),
			fmt.Sprintf("%.2f%%", row.AccuracyABS*100),
			fmt.Sprintf("%.1f", row.OALKB))
	}
	return t
}

func (r *FigSResult) String() string { return r.Table().String() }
