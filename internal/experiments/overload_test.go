package experiments

import (
	"strings"
	"testing"

	"jessica2/internal/runner"
)

// TestFigGFullStackWins is the acceptance check for the
// serving-through-failures figure: on every failure schedule the full
// protection stack must strictly beat both the unprotected baseline and
// shed-only on goodput-within-SLO and on P99, every protected request must
// reach a terminal state, and the protection machinery (retries, hedges,
// reroutes, breakers) must actually have fired. FigGResult.Violations is
// the single source of that bar — the CLI smoke run asserts the same thing.
func TestFigGFullStackWins(t *testing.T) {
	res := FigG(testScale, nil)
	if vs := res.Violations(); len(vs) > 0 {
		t.Fatalf("figure G does not hold:\n  %s\n%s",
			strings.Join(vs, "\n  "), res.Table())
	}
	// The failure layer must actually be in the loop for the full stack:
	// the breaker-on-declared-dead path is fed by lease expiries.
	for _, sched := range FigGSchedules {
		full := res.Row(sched, "full")
		if full.LeaseExpiries == 0 {
			t.Errorf("%s: full stack saw no lease expiries — the crash schedule never hit the detector", sched)
		}
	}
}

// TestFigGDeterministic demands a byte-identical report across two full
// sweeps, the second through a parallel pool: arrivals, crashes, retries,
// hedges and breaker trips are all functions of the seed alone, and the
// pool only changes wall-clock, never results.
func TestFigGDeterministic(t *testing.T) {
	a := FigG(testScale, nil).Table().String()
	b := FigG(testScale, runner.New(3)).Table().String()
	if a != b {
		t.Fatalf("FigG not deterministic:\n--- serial\n%s\n--- parallel\n%s", a, b)
	}
}
