package experiments

import "testing"

// TestFigRRecoveryWins is the acceptance check for the failure-tolerance
// layer: under every crash schedule, the recovery mode (failure detection +
// evacuation + health-gated closed loop) must strictly beat both the
// fail-free runtime and one-shot placement, and the detector must actually
// have fired. FigRResult.Violations is the single source of that bar — the
// CLI's -figR path asserts the same thing.
func TestFigRRecoveryWins(t *testing.T) {
	res := FigR(testScale, nil)
	wantRows := 1 + 3*len(figRSchedules())
	if len(res.Rows) != wantRows {
		t.Fatalf("rows: got %d want %d", len(res.Rows), wantRows)
	}
	for _, v := range res.Violations() {
		t.Error(v)
	}
	rec := res.Row("early-crash", "recovery")
	if rec == nil {
		t.Fatal("missing early-crash/recovery row")
	}
	// The health gate exists because the blind planner tries to refill a
	// dead node; at least one schedule should exercise it.
	vetoed := 0
	for _, row := range res.Rows {
		vetoed += row.Vetoed
	}
	if vetoed == 0 {
		t.Log("health gate never vetoed an action (planner stayed off dead nodes)")
	}
}

// TestFigRDeterministic re-runs one crash cell and demands byte-identical
// tables: failure schedules, detection and evacuation are part of the
// deterministic simulation, not a source of noise.
func TestFigRDeterministic(t *testing.T) {
	a := FigR(testScale, nil).Table().String()
	b := FigR(testScale, nil).Table().String()
	if a != b {
		t.Fatalf("FigR not deterministic:\n--- first\n%s\n--- second\n%s", a, b)
	}
}
