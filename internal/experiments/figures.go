package experiments

import (
	"fmt"
	"strings"

	"jessica2/internal/gos"
	"jessica2/internal/metrics"
	"jessica2/internal/runner"
	"jessica2/internal/sampling"
	"jessica2/internal/tcm"
)

// --- Figure 9 ----------------------------------------------------------------

// Fig9Point is one sampling rate's accuracy measurements for one app.
type Fig9Point struct {
	Rate        sampling.Rate
	AbsoluteABS float64 // 1 − E_ABS(A_rate, A_full)
	RelativeABS float64 // 1 − E_ABS(A_rate, A_prevFinerRate)
	AbsoluteEUC float64
	RelativeEUC float64
}

// Fig9Result holds the correlation-tracking accuracy curves.
type Fig9Result struct {
	Scale  Scale
	Points map[App][]Fig9Point
}

// Fig9Rates is the sweep of the paper's Fig. 9 x-axis.
var Fig9Rates = sampling.SweepRates(512)

// Fig9 sweeps sampling rates 512X → 1X with 16 threads per application and
// measures absolute accuracy (vs the full-sampling map) and relative
// accuracy (vs the previous, finer rate's map) under both distance metrics.
// Only the runs are independent — the relative-accuracy chain is a fold
// over their maps — so the specs fan out through the pool and the point
// series is computed from the ordered results.
func Fig9(scale Scale, p *runner.Pool) *Fig9Result {
	spec := func(a App, rate sampling.Rate) Spec {
		return Spec{App: a, Scale: scale, Nodes: 8, Threads: 16,
			Tracking: gos.TrackingSampled, Rate: rate, TransferOALs: true}
	}
	perApp := 1 + len(Fig9Rates)
	specs := make([]Spec, 0, perApp*len(Apps))
	for _, a := range Apps {
		specs = append(specs, spec(a, sampling.FullRate))
		for _, rate := range Fig9Rates {
			specs = append(specs, spec(a, rate))
		}
	}
	outs := RunAll(p, specs)

	res := &Fig9Result{Scale: scale, Points: make(map[App][]Fig9Point)}
	for ai, a := range Apps {
		full := outs[ai*perApp]
		prev := full.TCM
		for ri, rate := range Fig9Rates {
			out := outs[ai*perApp+1+ri]
			pt := Fig9Point{
				Rate:        rate,
				AbsoluteABS: tcm.Accuracy(tcm.DistanceABS(out.TCM, full.TCM)),
				RelativeABS: tcm.Accuracy(tcm.DistanceABS(out.TCM, prev)),
				AbsoluteEUC: tcm.Accuracy(tcm.DistanceEUC(out.TCM, full.TCM)),
				RelativeEUC: tcm.Accuracy(tcm.DistanceEUC(out.TCM, prev)),
			}
			res.Points[a] = append(res.Points[a], pt)
			prev = out.TCM
		}
	}
	return res
}

// Table renders the accuracy sweep as one table per app stacked.
func (r *Fig9Result) Table() *metrics.Table {
	t := metrics.NewTable("FIGURE 9. ACCURACY OF CORRELATION TRACKING WITH ADAPTIVE OBJECT SAMPLING (16 threads)",
		"Benchmark", "Rate", "Absolute/ABS", "Relative/ABS", "Absolute/EUC", "Relative/EUC")
	for _, a := range Apps {
		name := a.String()
		for _, p := range r.Points[a] {
			t.AddRow(name, p.Rate.String(),
				fmt.Sprintf("%.2f%%", p.AbsoluteABS*100),
				fmt.Sprintf("%.2f%%", p.RelativeABS*100),
				fmt.Sprintf("%.2f%%", p.AbsoluteEUC*100),
				fmt.Sprintf("%.2f%%", p.RelativeEUC*100))
			name = ""
		}
	}
	return t
}

func (r *Fig9Result) String() string { return r.Table().String() }

// MinAccuracyABS returns the lowest absolute/ABS accuracy across all rates
// of one app (the paper's ">95% at almost all rates" claim).
func (r *Fig9Result) MinAccuracyABS(a App) float64 {
	min := 1.0
	for _, p := range r.Points[a] {
		if p.AbsoluteABS < min {
			min = p.AbsoluteABS
		}
	}
	return min
}

// --- Figure 1 ----------------------------------------------------------------

// Fig1Result holds the inherent vs induced correlation maps of Barnes-Hut.
type Fig1Result struct {
	Scale    Scale
	Threads  int
	Inherent *tcm.Map // fine-grained exact tracking (Fig. 1a)
	Induced  *tcm.Map // page-based tracking baseline (Fig. 1b)
}

// Fig1 reproduces the false-sharing illustration: Barnes-Hut with 32
// threads and 4K bodies, tracked once at object grain (exact) and once at
// page grain. A single run, submitted through the pool for uniformity with
// the other generators (one job executes inline).
func Fig1(scale Scale, p *runner.Pool) *Fig1Result {
	threads := 32
	out := RunAll(p, []Spec{{App: AppBarnesHut, Scale: scale, Nodes: 8, Threads: threads,
		Tracking: gos.TrackingExact, TransferOALs: true, PageTracker: true}})[0]
	return &Fig1Result{Scale: scale, Threads: threads, Inherent: out.TCM, Induced: out.PageTCM}
}

// GalaxyContrast quantifies the block structure of a map: the mean
// intra-galaxy pair volume divided by the mean inter-galaxy pair volume
// (threads 0..N/2-1 simulate galaxy one). The inherent map should show a
// much higher contrast than the induced one.
func GalaxyContrast(m *tcm.Map) float64 {
	n := m.N()
	half := n / 2
	var intra, inter float64
	var intraN, interN int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			same := (i < half) == (j < half)
			if same {
				intra += m.At(i, j)
				intraN++
			} else {
				inter += m.At(i, j)
				interN++
			}
		}
	}
	if interN == 0 || intraN == 0 || inter == 0 {
		return 0
	}
	return (intra / float64(intraN)) / (inter / float64(interN))
}

// String renders both maps as ASCII heat maps plus the contrast measures.
func (r *Fig1Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "FIGURE 1. FALSE SHARING EFFECT ON CORRELATION TRACKING (Barnes-Hut, %d threads)\n\n", r.Threads)
	fmt.Fprintf(&sb, "(a) Inherent pattern (fine-grained tracking), galaxy contrast %.2fx\n%s\n",
		GalaxyContrast(r.Inherent), r.Inherent.String())
	fmt.Fprintf(&sb, "(b) Induced pattern (page-based tracking), galaxy contrast %.2fx\n%s",
		GalaxyContrast(r.Induced), r.Induced.String())
	return sb.String()
}
