// Package sticky implements sticky-set profiling: estimating the set of
// objects that will predictably cause remote object faults after a thread
// migrates. It combines two samplers exactly as the paper's §III does:
//
//  1. Footprinting — repeated adaptive object sampling within an HLRC
//     interval captures access-frequency statistics on sampled objects,
//     yielding the sticky-set *footprint*: per-class byte totals of the
//     objects hot enough to be re-fetched after migration.
//  2. Stack-invariant mining — the stack sampler (package stack) finds
//     references that persist on the thread's stack; these are the entry
//     points of the sticky set.
//  3. Resolution — invoked lazily at migration time, walks the object
//     graph from the invariants, guided by sampled "landmark" objects and
//     per-class footprint budgets, to choose the actual prefetch set.
package sticky

import (
	"sort"

	"jessica2/internal/gos"
	"jessica2/internal/heap"
	"jessica2/internal/sim"
	"jessica2/internal/stack"
)

// Footprint is the per-class estimated sticky-set composition in bytes
// ("how many bytes of shared objects in each class would be sticky to the
// thread being profiled").
type Footprint map[string]int64

// Total sums all classes.
func (f Footprint) Total() int64 {
	var n int64
	for _, v := range f {
		n += v
	}
	return n
}

// Classes returns class names sorted for deterministic iteration.
func (f Footprint) Classes() []string {
	names := make([]string, 0, len(f))
	for n := range f {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Diff returns the per-class absolute difference |f - g| summed over the
// union of classes (Table IV's "average diff" column).
func (f Footprint) Diff(g Footprint) int64 {
	var d int64
	seen := make(map[string]struct{})
	for c, v := range f {
		seen[c] = struct{}{}
		w := g[c]
		if v > w {
			d += v - w
		} else {
			d += w - v
		}
	}
	for c, w := range g {
		if _, ok := seen[c]; !ok {
			d += w
		}
	}
	return d
}

// FootprinterConfig tunes sticky-set footprinting. The cost structure
// mirrors the paper's mechanism: footprinting repeatedly re-arms the
// false-invalid trap on the sampled objects the thread has touched, so each
// re-arm sweep pays per sampled object, and each re-trapped access pays a
// service-routine visit. "Nonstop" re-arms on a short period for the whole
// run; the timer-based mode gates sweeps into on/off phases.
type FootprinterConfig struct {
	// MinAccesses is the number of distinct re-arm periods in which a
	// sampled object must be trapped to be considered sticky (objects
	// "constantly accessed throughout the whole interval"; a single touch
	// like object B in Fig. 4 does not qualify).
	MinAccesses int
	// Nonstop, when true, sweeps on RearmPeriod for the whole execution;
	// otherwise sweeps happen only during OnPhase of every
	// OnPhase+OffPhase cycle (the paper's 100 ms timer).
	Nonstop bool
	// RearmPeriod is the interval between re-arm sweeps while tracking.
	RearmPeriod sim.Time
	// OnPhase / OffPhase are the timer-based duty cycle.
	OnPhase, OffPhase sim.Time
	// MinGap is the lower bound on the object sampling gap during
	// footprinting (repeated tracking is costlier than once-per-interval
	// correlation logging, so the paper bounds the rate).
	MinGap int64
	// ArmCost is charged per object re-armed in a sweep.
	ArmCost sim.Time
	// TrapBase is the fixed cost of one trapped (armed) access: the fault
	// into the GOS service routine.
	TrapBase sim.Time
	// TrapPerKB scales the trap with the object size: cancelling the
	// fake-invalid state revisits the object's consistency metadata, so
	// large arrays pay proportionally (this is why the paper finds that
	// lowering the rate to 4X "has no effect on SOR").
	TrapPerKB sim.Time
	// EWMA is the smoothing factor for per-class footprints across
	// intervals (0 < EWMA <= 1; 1 = last interval only).
	EWMA float64
}

// DefaultFootprinterConfig mirrors the paper's timer setting: 100 ms on /
// 100 ms off phases with 1 ms re-arm sweeps while on.
func DefaultFootprinterConfig() FootprinterConfig {
	return FootprinterConfig{
		MinAccesses: 2,
		Nonstop:     false,
		RearmPeriod: 1 * sim.Millisecond,
		OnPhase:     100 * sim.Millisecond,
		OffPhase:    100 * sim.Millisecond,
		MinGap:      1,
		ArmCost:     80 * sim.Nanosecond,
		TrapBase:    150 * sim.Nanosecond,
		TrapPerKB:   1536 * sim.Nanosecond, // 1.5 ns per byte
		EWMA:        0.5,
	}
}

// Footprinter observes one thread's accesses and maintains its sticky-set
// footprint estimate. It implements gos.AccessObserver.
type Footprinter struct {
	cfg    FootprinterConfig
	thread *gos.Thread

	// counts tracks, per sampled object touched this interval, how many
	// re-arm periods trapped it (the access-frequency statistic). The map
	// and its objCount entries are recycled across intervals.
	counts  map[heap.ObjectID]*objCount
	ocFree  []*objCount
	idOrder []int64 // interval-close iteration scratch

	nextSweep sim.Time

	footprint Footprint
	// Raw (unsmoothed) footprint of the last closed interval.
	lastInterval Footprint

	// TrackedAccesses counts trapped (charged) accesses.
	TrackedAccesses int64
	// Sweeps counts re-arm sweeps performed.
	Sweeps    int64
	intervals int64
}

type objCount struct {
	obj    *heap.Object
	count  int
	writes int
	armed  bool
}

// NewFootprinter attaches a footprinter for t; register it with
// k.AddObserver to activate.
func NewFootprinter(t *gos.Thread, cfg FootprinterConfig) *Footprinter {
	if cfg.MinAccesses <= 0 {
		cfg.MinAccesses = 1
	}
	if cfg.EWMA <= 0 || cfg.EWMA > 1 {
		cfg.EWMA = 0.5
	}
	if cfg.RearmPeriod <= 0 {
		cfg.RearmPeriod = sim.Millisecond
	}
	return &Footprinter{
		cfg:       cfg,
		thread:    t,
		counts:    make(map[heap.ObjectID]*objCount),
		footprint: make(Footprint),
	}
}

// Thread returns the profiled thread.
func (fp *Footprinter) Thread() *gos.Thread { return fp.thread }

// trackingOn evaluates the on/off duty cycle at the current virtual time.
func (fp *Footprinter) trackingOn() bool {
	if fp.cfg.Nonstop {
		return true
	}
	period := fp.cfg.OnPhase + fp.cfg.OffPhase
	if period <= 0 {
		return true
	}
	phase := sim.Time(int64(fp.thread.Kernel().Eng.Now()) % int64(period))
	return phase < fp.cfg.OnPhase
}

// effectiveGap applies the MinGap lower bound to a class gap.
func (fp *Footprinter) effectiveGap(o *heap.Object) int64 {
	gap := o.Class.Gap()
	if gap < fp.cfg.MinGap {
		gap = fp.cfg.MinGap
	}
	return gap
}

// OnAccess implements gos.AccessObserver: repeated object sampling within
// the interval. The first touch of a sampled object traps; afterwards it
// traps once per re-arm sweep. Sweeps run inline on the profiled thread
// (the sweep iterates the thread's tracked set, paying ArmCost each).
func (fp *Footprinter) OnAccess(t *gos.Thread, o *heap.Object, write, first bool) {
	if t != fp.thread {
		return
	}
	if !fp.trackingOn() {
		return
	}
	now := t.Kernel().Eng.Now()
	if now >= fp.nextSweep {
		fp.sweep(t, now)
	}
	if !o.SampledAtGap(fp.effectiveGap(o)) {
		return
	}
	oc := fp.counts[o.ID]
	if oc == nil {
		if n := len(fp.ocFree); n > 0 {
			oc = fp.ocFree[n-1]
			fp.ocFree = fp.ocFree[:n-1]
			*oc = objCount{obj: o, armed: true}
		} else {
			oc = &objCount{obj: o, armed: true} // first touch traps
		}
		fp.counts[o.ID] = oc
	}
	if !oc.armed {
		return
	}
	oc.armed = false
	oc.count++
	if write {
		oc.writes++
	}
	fp.TrackedAccesses++
	t.Charge(fp.cfg.TrapBase + sim.Time(o.Bytes())*fp.cfg.TrapPerKB/1024)
}

// sweep re-arms the false-invalid trap on every tracked object, charging
// the per-object iteration cost.
func (fp *Footprinter) sweep(t *gos.Thread, now sim.Time) {
	fp.Sweeps++
	n := 0
	for _, oc := range fp.counts {
		if !oc.armed {
			oc.armed = true
			n++
		}
	}
	if n > 0 {
		t.Charge(sim.Time(n) * fp.cfg.ArmCost)
	}
	fp.nextSweep = now + fp.cfg.RearmPeriod
}

// OnIntervalClose folds the interval's counts into the footprint estimate:
// objects accessed at least MinAccesses times contribute their amortized
// sample size scaled up by the sampling gap.
func (fp *Footprinter) OnIntervalClose(t *gos.Thread) {
	if t != fp.thread {
		return
	}
	fp.intervals++
	raw := make(Footprint)
	ids := fp.idOrder[:0]
	for id := range fp.counts {
		ids = append(ids, int64(id))
	}
	fp.idOrder = ids
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		oc := fp.counts[heap.ObjectID(id)]
		if oc.count < fp.cfg.MinAccesses {
			continue
		}
		gap := oc.obj.Class.Gap()
		if gap < fp.cfg.MinGap {
			gap = fp.cfg.MinGap
		}
		raw[oc.obj.Class.Name] += int64(oc.obj.AmortizedBytesAtGap(gap)) * gap
	}
	fp.lastInterval = raw
	// EWMA-smooth into the running estimate over the union of classes.
	a := fp.cfg.EWMA
	for _, c := range raw.Classes() {
		fp.footprint[c] = int64(a*float64(raw[c]) + (1-a)*float64(fp.footprint[c]))
	}
	for _, c := range fp.footprint.Classes() {
		if _, ok := raw[c]; !ok {
			fp.footprint[c] = int64((1 - a) * float64(fp.footprint[c]))
		}
	}
	// Recycle the interval's counts instead of reallocating them.
	for _, oc := range fp.counts {
		fp.ocFree = append(fp.ocFree, oc)
	}
	clear(fp.counts)
}

// Footprint returns a copy of the current smoothed estimate.
func (fp *Footprinter) Footprint() Footprint {
	return fp.FootprintInto(nil)
}

// FootprintInto writes the current smoothed estimate into dst — cleared
// and reused when non-nil, freshly allocated otherwise — and returns it.
// Epoch-boundary snapshots call this every epoch; recycling the map keeps
// live views off the allocator's hot path.
func (fp *Footprinter) FootprintInto(dst Footprint) Footprint {
	if dst == nil {
		dst = make(Footprint, len(fp.footprint))
	} else {
		clear(dst)
	}
	for c, v := range fp.footprint {
		if v > 0 {
			dst[c] = v
		}
	}
	return dst
}

// LastInterval returns the unsmoothed footprint of the last interval.
func (fp *Footprinter) LastInterval() Footprint {
	out := make(Footprint, len(fp.lastInterval))
	for c, v := range fp.lastInterval {
		out[c] = v
	}
	return out
}

// HotObjects returns the sampled objects currently exceeding MinAccesses in
// the open interval (diagnostics and tests).
func (fp *Footprinter) HotObjects() []*heap.Object {
	var out []*heap.Object
	for _, oc := range fp.counts {
		if oc.count >= fp.cfg.MinAccesses {
			out = append(out, oc.obj)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// --- resolution --------------------------------------------------------------

// ResolverConfig tunes sticky-set resolution.
type ResolverConfig struct {
	// Tolerance is the paper's t parameter (> 1): a traversal path is
	// abandoned after t×gap objects of a class without meeting a sampled
	// landmark.
	Tolerance float64
	// VisitCost is charged per object considered during resolution.
	VisitCost sim.Time
	// MaxObjects caps the traversal as a safety valve.
	MaxObjects int
}

// DefaultResolverConfig returns the paper-ish defaults. VisitCost covers
// the per-object work of resolution in the real runtime: reachability
// tracing through the GC interface, landmark checks and prefetch-set
// packing.
func DefaultResolverConfig() ResolverConfig {
	return ResolverConfig{Tolerance: 2, VisitCost: 3 * sim.Microsecond, MaxObjects: 1 << 20}
}

// Resolution is the outcome of one sticky-set resolution.
type Resolution struct {
	// Objects is the selected prefetch set in traversal order.
	Objects []*heap.Object
	// Bytes is the total payload of the set.
	Bytes int64
	// PerClass is the selected bytes per class.
	PerClass Footprint
	// Visited counts all objects considered (selected or not).
	Visited int
	// LandmarksMet counts sampled objects encountered.
	LandmarksMet int
	// Cost is the CPU time the resolution should be charged.
	Cost sim.Time
}

// Resolve runs sticky-set resolution: starting from the stack invariants
// (topmost first), it walks the object reference graph selecting objects of
// classes with remaining footprint budget, stopping a path when landmarks
// run dry (the t×gap rule) and stopping a class when the amount of
// *sampled* bytes reached hits the class's estimated footprint.
func Resolve(invariants []stack.InvariantRef, footprint Footprint, cfg ResolverConfig) *Resolution {
	if cfg.Tolerance <= 1 {
		cfg.Tolerance = 2
	}
	if cfg.MaxObjects <= 0 {
		cfg.MaxObjects = 1 << 20
	}
	res := &Resolution{PerClass: make(Footprint)}
	// Per-class budget in scaled sampled bytes: resolution selects objects
	// until the reachable sampled objects account for the footprint
	// ("prefetch each type of sticky objects until the per-class
	// estimated footprint is hit").
	budget := make(map[string]int64, len(footprint))
	for c, v := range footprint {
		budget[c] = v
	}
	sampledSeen := make(map[string]int64)
	visited := make(map[heap.ObjectID]struct{})
	// sinceLandmark counts per-class objects walked without a landmark on
	// the current path.
	classDone := func(name string) bool {
		b, ok := budget[name]
		return !ok || sampledSeen[name] >= b
	}

	var walk func(o *heap.Object, sinceLandmark map[string]int)
	walk = func(o *heap.Object, sinceLandmark map[string]int) {
		if o == nil || res.Visited >= cfg.MaxObjects {
			return
		}
		if _, dup := visited[o.ID]; dup {
			return
		}
		visited[o.ID] = struct{}{}
		res.Visited++

		name := o.Class.Name
		gap := o.Class.Gap()
		if o.Sampled() {
			res.LandmarksMet++
			sinceLandmark[name] = 0
			// Scaled landmark accounting toward the footprint budget.
			sampledSeen[name] += int64(o.AmortizedBytes()) * max64(gap, 1)
		} else {
			sinceLandmark[name]++
			// Landmark guidance: "we will stop current prefetching if we
			// have not seen any landmark for t×gap objects of that class".
			if gap > 1 && float64(sinceLandmark[name]) > cfg.Tolerance*float64(gap) {
				return
			}
		}

		if !classDoneBefore(name, sampledSeen, budget, o, gap) {
			res.Objects = append(res.Objects, o)
			res.Bytes += int64(o.Bytes())
			res.PerClass[name] += int64(o.Bytes())
		}

		// Follow reference fields in slot order.
		for _, ref := range o.Refs {
			if ref == nil {
				continue
			}
			if classDone(ref.Class.Name) && allDone(budget, sampledSeen) {
				return
			}
			walk(ref, sinceLandmark)
		}
	}

	for _, inv := range invariants {
		if allDone(budget, sampledSeen) {
			break
		}
		// Each stack-invariant starts a fresh path with its own landmark
		// drought counter ("if we cannot find enough objects by following
		// a stack-invariant reference, we can switch to the others").
		walk(inv.Obj, make(map[string]int))
	}
	res.Cost = sim.Time(res.Visited) * cfg.VisitCost
	return res
}

// classDoneBefore checks the class budget state *before* accounting o, so
// the object that crosses the budget line is still included.
func classDoneBefore(name string, sampledSeen map[string]int64, budget map[string]int64, o *heap.Object, gap int64) bool {
	b, ok := budget[name]
	if !ok {
		return true // class not in footprint: not sticky, skip selection
	}
	prior := sampledSeen[name]
	if o.Sampled() {
		prior -= int64(o.AmortizedBytes()) * max64(gap, 1)
	}
	return prior >= b
}

func allDone(budget map[string]int64, seen map[string]int64) bool {
	for c, b := range budget {
		if seen[c] < b {
			return false
		}
	}
	return true
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
