package sticky

import (
	"testing"

	"jessica2/internal/gos"
	"jessica2/internal/heap"
	"jessica2/internal/sim"
	"jessica2/internal/stack"
)

func TestFootprintBasics(t *testing.T) {
	f := Footprint{"A": 100, "B": 50}
	if f.Total() != 150 {
		t.Fatalf("total = %d", f.Total())
	}
	names := f.Classes()
	if len(names) != 2 || names[0] != "A" || names[1] != "B" {
		t.Fatalf("classes = %v", names)
	}
}

func TestFootprintDiff(t *testing.T) {
	a := Footprint{"A": 100, "B": 50}
	b := Footprint{"A": 80, "C": 10}
	// |100-80| + |50-0| + |0-10| = 80
	if d := a.Diff(b); d != 80 {
		t.Fatalf("diff = %d, want 80", d)
	}
	if d := b.Diff(a); d != 80 {
		t.Fatalf("diff not symmetric: %d", d)
	}
	if a.Diff(a) != 0 {
		t.Fatal("self diff nonzero")
	}
}

// footKernel runs a single-thread workload touching objects with known
// frequencies and returns the resulting footprinter.
func footKernel(t *testing.T, cfg FootprinterConfig, body func(th *gos.Thread, cls *heap.Class)) *Footprinter {
	t.Helper()
	kcfg := gos.DefaultConfig()
	kcfg.Nodes = 1
	k := gos.NewKernel(kcfg)
	cls := k.Reg.DefineClass("Rec", 128, 1)
	var fp *Footprinter
	th := k.SpawnThread(0, "t", func(th *gos.Thread) {
		body(th, cls)
	})
	fp = NewFootprinter(th, cfg)
	k.AddObserver(fp)
	k.Run()
	return fp
}

func TestFootprinterHotObjectsQualify(t *testing.T) {
	cfg := DefaultFootprinterConfig()
	cfg.Nonstop = true
	cfg.MinAccesses = 2
	cfg.RearmPeriod = sim.Millisecond
	fp := footKernel(t, cfg, func(th *gos.Thread, cls *heap.Class) {
		hot := th.Alloc(cls)
		cold := th.Alloc(cls)
		th.Write(hot)
		th.Write(cold)
		// Like Fig. 4: object A accessed frequently across the interval,
		// object B touched once.
		for i := 0; i < 20; i++ {
			th.Read(hot)
			th.Compute(2 * sim.Millisecond) // let re-arm sweeps fire
		}
		th.Release(1) // close the interval
	})
	foot := fp.LastInterval()
	// Only the hot object qualifies: 128 bytes at gap 1.
	if foot["Rec"] != 128 {
		t.Fatalf("footprint = %v, want Rec:128 (hot only)", foot)
	}
	if fp.TrackedAccesses < 2 {
		t.Fatalf("tracked = %d", fp.TrackedAccesses)
	}
	if fp.Sweeps == 0 {
		t.Fatal("no re-arm sweeps happened")
	}
}

func TestFootprinterSingleTouchExcluded(t *testing.T) {
	cfg := DefaultFootprinterConfig()
	cfg.Nonstop = true
	cfg.MinAccesses = 2
	fp := footKernel(t, cfg, func(th *gos.Thread, cls *heap.Class) {
		o := th.Alloc(cls)
		th.Write(o)
		th.Release(1)
		th.Read(o) // one touch in the second interval
		th.Release(2)
	})
	if got := fp.LastInterval()["Rec"]; got != 0 {
		t.Fatalf("single-touch object in footprint: %d bytes", got)
	}
}

func TestFootprinterGapScaleUp(t *testing.T) {
	cfg := DefaultFootprinterConfig()
	cfg.Nonstop = true
	cfg.MinAccesses = 1
	kcfg := gos.DefaultConfig()
	kcfg.Nodes = 1
	k := gos.NewKernel(kcfg)
	cls := k.Reg.DefineClass("Rec", 100, 0)
	cls.SetGap(8, 7) // 1/7 sampled
	var fp *Footprinter
	th := k.SpawnThread(0, "t", func(th *gos.Thread) {
		var objs []*heap.Object
		for i := 0; i < 70; i++ {
			o := th.Alloc(cls)
			th.Write(o)
			objs = append(objs, o)
		}
		for pass := 0; pass < 3; pass++ {
			for _, o := range objs {
				th.Read(o)
			}
			th.Compute(3 * sim.Millisecond)
		}
		th.Release(1)
	})
	fp = NewFootprinter(th, cfg)
	k.AddObserver(fp)
	k.Run()
	got := float64(fp.LastInterval()["Rec"])
	truth := 70.0 * 100
	if got < truth*0.6 || got > truth*1.4 {
		t.Fatalf("scaled footprint %v, truth %v", got, truth)
	}
}

func TestFootprinterTimerDutyCycle(t *testing.T) {
	runWith := func(nonstop bool) int64 {
		cfg := DefaultFootprinterConfig()
		cfg.Nonstop = nonstop
		cfg.OnPhase = 50 * sim.Millisecond
		cfg.OffPhase = 50 * sim.Millisecond
		cfg.MinAccesses = 1
		fp := footKernel(t, cfg, func(th *gos.Thread, cls *heap.Class) {
			o := th.Alloc(cls)
			th.Write(o)
			for i := 0; i < 100; i++ {
				th.Read(o)
				th.Compute(2 * sim.Millisecond)
			}
			th.Release(1)
		})
		return fp.TrackedAccesses
	}
	ns := runWith(true)
	timer := runWith(false)
	if timer >= ns {
		t.Fatalf("timer-gated tracking (%d) should trap less than nonstop (%d)", timer, ns)
	}
	if timer == 0 {
		t.Fatal("timer mode tracked nothing")
	}
}

func TestFootprinterEWMASmoothing(t *testing.T) {
	cfg := DefaultFootprinterConfig()
	cfg.Nonstop = true
	cfg.MinAccesses = 1
	cfg.EWMA = 0.5
	fp := footKernel(t, cfg, func(th *gos.Thread, cls *heap.Class) {
		o := th.Alloc(cls)
		th.Write(o)
		th.Read(o)
		th.Release(1) // interval 1: Rec appears
		th.Compute(time1)
		th.Release(2) // interval 2: empty -> decays
	})
	got := fp.Footprint()["Rec"]
	if got == 0 || got >= 128 {
		t.Fatalf("EWMA footprint = %d, want decayed in (0,128)", got)
	}
}

const time1 = 5 * sim.Millisecond

// --- resolution tests --------------------------------------------------------

// buildGraph creates a chain graph head -> o1 -> o2 ... with a branch.
func buildGraph(n int, gap int64) (invs []stack.InvariantRef, reg *heap.Registry, all []*heap.Object) {
	reg = heap.NewRegistry()
	c := reg.DefineClass("Rec", 100, 1)
	c.SetGap(gap, gap)
	var prev *heap.Object
	for i := 0; i < n; i++ {
		o := reg.Alloc(c, 0)
		if prev != nil {
			prev.Refs[0] = o
		}
		all = append(all, o)
		prev = o
	}
	invs = []stack.InvariantRef{{Obj: all[0], Depth: 0, Slot: 0, Survived: 2}}
	return invs, reg, all
}

func TestResolveSelectsWithinBudget(t *testing.T) {
	invs, _, _ := buildGraph(50, 1) // full sampling: every object a landmark
	foot := Footprint{"Rec": 2000}  // budget: 20 objects of 100 bytes
	res := Resolve(invs, foot, DefaultResolverConfig())
	if len(res.Objects) < 18 || len(res.Objects) > 22 {
		t.Fatalf("selected %d objects, want ~20 (budget 2000B)", len(res.Objects))
	}
	if res.Bytes != int64(len(res.Objects))*100 {
		t.Fatal("byte accounting wrong")
	}
	if res.Visited < len(res.Objects) {
		t.Fatal("visited < selected")
	}
	if res.Cost <= 0 {
		t.Fatal("no cost charged")
	}
}

func TestResolveEmptyFootprintSelectsNothing(t *testing.T) {
	invs, _, _ := buildGraph(10, 1)
	res := Resolve(invs, Footprint{}, DefaultResolverConfig())
	if len(res.Objects) != 0 {
		t.Fatalf("selected %d objects with empty footprint", len(res.Objects))
	}
}

func TestResolveNoInvariants(t *testing.T) {
	res := Resolve(nil, Footprint{"Rec": 1000}, DefaultResolverConfig())
	if res.Visited != 0 || len(res.Objects) != 0 {
		t.Fatal("resolution without entry points must do nothing")
	}
}

// TestResolveLandmarkDrought: with a sampling gap and no landmarks along a
// path, traversal stops after tolerance × gap objects of the class.
func TestResolveLandmarkDrought(t *testing.T) {
	// Gap 11: only seq 0, 11, 22... sampled. Build a chain where the
	// sampled objects stop early by re-tagging: easiest is a chain of 100
	// with gap 11 — landmarks appear every 11 nodes, so traversal should
	// proceed. Then a chain starting at seq 1 of length 9 (no landmark):
	// traversal stops after tolerance*gap.
	reg := heap.NewRegistry()
	c := reg.DefineClass("Rec", 100, 1)
	c.SetGap(11, 11)
	// Allocate 1 sampled head then 60 unsampled-only chain: seqs 0..60;
	// every 11th is sampled, so landmarks exist. Use tolerance 1.5.
	var prev *heap.Object
	var head *heap.Object
	for i := 0; i < 61; i++ {
		o := reg.Alloc(c, 0)
		if prev != nil {
			prev.Refs[0] = o
		} else {
			head = o
		}
		prev = o
	}
	invs := []stack.InvariantRef{{Obj: head}}
	cfg := DefaultResolverConfig()
	cfg.Tolerance = 1.5
	// Huge budget: traversal limited only by the graph and landmarks.
	res := Resolve(invs, Footprint{"Rec": 1 << 30}, cfg)
	if res.Visited != 61 {
		t.Fatalf("visited %d, want full chain (landmarks every 11)", res.Visited)
	}
	// Now sever landmarks: new chain where only the head is sampled.
	reg2 := heap.NewRegistry()
	c2 := reg2.DefineClass("Rec", 100, 1)
	c2.SetGap(11, 11)
	var objs []*heap.Object
	for i := 0; i < 40; i++ {
		objs = append(objs, reg2.Alloc(c2, 0))
	}
	// Chain starting at seq 1 (unsampled onwards up to seq 10, 12..21...).
	// Link only unsampled ones: 1,2,...,10, 12,13...
	var chain []*heap.Object
	for _, o := range objs {
		if o.Seq%11 != 0 {
			chain = append(chain, o)
		}
	}
	for i := 0; i+1 < len(chain); i++ {
		chain[i].Refs[0] = chain[i+1]
	}
	res2 := Resolve([]stack.InvariantRef{{Obj: chain[0]}}, Footprint{"Rec": 1 << 30}, cfg)
	maxVisited := int(cfg.Tolerance*11) + 2
	if res2.Visited > maxVisited {
		t.Fatalf("visited %d without landmarks, want <= %d (t×gap stop)", res2.Visited, maxVisited)
	}
}

// TestResolveMultipleRoots: when one invariant's path is exhausted, the
// resolver switches to the next.
func TestResolveMultipleRoots(t *testing.T) {
	reg := heap.NewRegistry()
	c := reg.DefineClass("Rec", 100, 1)
	c.SetGap(1, 1)
	a := reg.Alloc(c, 0)
	b := reg.Alloc(c, 0)
	a2 := reg.Alloc(c, 0)
	b2 := reg.Alloc(c, 0)
	a.Refs[0] = a2
	b.Refs[0] = b2
	invs := []stack.InvariantRef{{Obj: a}, {Obj: b}}
	res := Resolve(invs, Footprint{"Rec": 400}, DefaultResolverConfig())
	if len(res.Objects) != 4 {
		t.Fatalf("selected %d, want all 4 across two roots", len(res.Objects))
	}
}

// TestResolvePerClassBudgets: classes resolve independently.
func TestResolvePerClassBudgets(t *testing.T) {
	reg := heap.NewRegistry()
	recC := reg.DefineClass("Rec", 100, 2)
	valC := reg.DefineClass("Val", 10, 0)
	recC.SetGap(1, 1)
	valC.SetGap(1, 1)
	root := reg.Alloc(recC, 0)
	child := reg.Alloc(recC, 0)
	v1 := reg.Alloc(valC, 0)
	v2 := reg.Alloc(valC, 0)
	root.Refs[0] = v1
	root.Refs[1] = child
	child.Refs[0] = v2
	res := Resolve([]stack.InvariantRef{{Obj: root}},
		Footprint{"Rec": 200, "Val": 10}, DefaultResolverConfig())
	if res.PerClass["Rec"] != 200 {
		t.Fatalf("Rec selected %d, want 200", res.PerClass["Rec"])
	}
	if res.PerClass["Val"] != 10 {
		t.Fatalf("Val selected %d, want 10 (budget hit)", res.PerClass["Val"])
	}
}

func TestResolveDedupAndCycles(t *testing.T) {
	reg := heap.NewRegistry()
	c := reg.DefineClass("Rec", 100, 1)
	c.SetGap(1, 1)
	a := reg.Alloc(c, 0)
	b := reg.Alloc(c, 0)
	a.Refs[0] = b
	b.Refs[0] = a // cycle
	res := Resolve([]stack.InvariantRef{{Obj: a}, {Obj: a}},
		Footprint{"Rec": 10000}, DefaultResolverConfig())
	if res.Visited != 2 {
		t.Fatalf("cycle visited %d, want 2", res.Visited)
	}
}

func TestResolveMaxObjectsCap(t *testing.T) {
	invs, _, _ := buildGraph(100, 1)
	cfg := DefaultResolverConfig()
	cfg.MaxObjects = 10
	res := Resolve(invs, Footprint{"Rec": 1 << 30}, cfg)
	if res.Visited > 10 {
		t.Fatalf("visited %d beyond cap", res.Visited)
	}
}

func TestFootprintIntoReusesMap(t *testing.T) {
	fp := NewFootprinter(nil, FootprinterConfig{MinAccesses: 1, EWMA: 1, MinGap: 1})
	fp.footprint = map[string]int64{"Rec": 128, "Cold": 0}
	dst := Footprint{"Stale": 999}
	got := fp.FootprintInto(dst)
	if got["Stale"] != 0 || got["Cold"] != 0 || got["Rec"] != 128 {
		t.Fatalf("scratch not rebuilt: %v", got)
	}
	got["Probe"] = 1
	if dst["Probe"] != 1 {
		t.Fatal("FootprintInto must reuse the passed map")
	}
	if fresh := fp.FootprintInto(nil); fresh["Rec"] != 128 {
		t.Fatalf("nil dst must allocate the footprint, got %v", fresh)
	}
}
