package scenario

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"

	"jessica2/internal/sim"
)

// decodeCrashes turns fuzz bytes into a crash schedule: each 10-byte chunk
// is (node, at, restart, factor), with at/restart read as signed 32-bit
// values so the fuzzer can reach negative times and restart-before-crash
// orderings.
func decodeCrashes(data []byte) []Crash {
	var out []Crash
	for len(data) >= 10 {
		chunk := data[:10]
		data = data[10:]
		at := int32(binary.LittleEndian.Uint32(chunk[1:5]))
		restart := int32(binary.LittleEndian.Uint32(chunk[5:9]))
		out = append(out, Crash{
			Node:    int(chunk[0] % 8),
			At:      sim.Time(at) * sim.Microsecond,
			Restart: sim.Time(restart) * sim.Microsecond,
			Factor:  (float64(int8(chunk[9]))) / 32, // reaches < 0 and > 1
		})
	}
	return out
}

// chunk builds one 10-byte fuzz chunk.
func chunk(node byte, at, restart int32, factor int8) []byte {
	b := make([]byte, 10)
	b[0] = node
	binary.LittleEndian.PutUint32(b[1:5], uint32(at))
	binary.LittleEndian.PutUint32(b[5:9], uint32(restart))
	b[9] = byte(factor)
	return b
}

// FuzzNormalizeCrashes asserts the crash-schedule canonicalizer never
// panics and always yields a deterministic, idempotent, sorted,
// per-node-non-overlapping schedule of valid windows — the properties
// Apply and the failure interceptor rely on.
func FuzzNormalizeCrashes(f *testing.F) {
	// Seed corpus: the interesting degeneracies by hand.
	f.Add(bytes.Join([][]byte{ // overlapping windows on one node
		chunk(1, 100, 500, 2),
		chunk(1, 300, 800, 64),
		chunk(1, 800, 900, 16),
	}, nil))
	f.Add(chunk(2, 0, 0, 0))                                                     // crash at t0, never restarts
	f.Add(chunk(3, 700, 200, 32))                                                // restart before crash
	f.Add(bytes.Join([][]byte{chunk(1, -50, 10, -4), chunk(0, 5, 0, 127)}, nil)) // negative time, wild factors
	f.Add([]byte{})                                                              // empty schedule

	f.Fuzz(func(t *testing.T, data []byte) {
		in := decodeCrashes(data)
		inCopy := append([]Crash(nil), in...)

		got := NormalizeCrashes(in)
		again := NormalizeCrashes(inCopy)
		if !reflect.DeepEqual(got, again) {
			t.Fatalf("non-deterministic: %v vs %v", got, again)
		}
		idem := NormalizeCrashes(append([]Crash(nil), got...))
		if !reflect.DeepEqual(got, idem) {
			t.Fatalf("not idempotent: %v -> %v", got, idem)
		}
		for i, c := range got {
			if c.At < 0 {
				t.Fatalf("entry %d: negative At %v", i, c.At)
			}
			if c.Restart != 0 && c.Restart <= c.At {
				t.Fatalf("entry %d: restart %v not after crash %v", i, c.Restart, c.At)
			}
			if c.Factor < 0 || c.Factor > 1 {
				t.Fatalf("entry %d: factor %g outside [0, 1]", i, c.Factor)
			}
			if i == 0 {
				continue
			}
			prev := got[i-1]
			if prev.Node > c.Node || (prev.Node == c.Node && prev.At > c.At) {
				t.Fatalf("unsorted at %d: %v after %v", i, c, prev)
			}
			if prev.Node == c.Node {
				if prev.Restart == 0 || c.At <= prev.Restart {
					t.Fatalf("overlap on node %d: %v then %v", c.Node, prev, c)
				}
			}
		}
	})
}
