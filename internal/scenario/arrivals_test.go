package scenario

import (
	"math"
	"reflect"
	"sort"
	"testing"

	"jessica2/internal/sim"
)

func arrivalSpecs() map[string]*Arrivals {
	return map[string]*Arrivals{
		"poisson": {Kind: ArrivePoisson, Rate: 5000, Horizon: 4 * sim.Second},
		"diurnal": {Kind: ArriveDiurnal, Rate: 8000, Horizon: 4 * sim.Second,
			Period: sim.Second, Trough: 0.25},
		"burst": {Kind: ArriveBurst, Rate: 3000, Horizon: 4 * sim.Second,
			BurstEvery: 500 * sim.Millisecond, BurstLen: 100 * sim.Millisecond, BurstFactor: 5},
	}
}

// Property: same (spec, seed) => byte-identical schedule; a different seed
// or a different salt => an independent stream.
func TestArrivalsSeedDeterministic(t *testing.T) {
	for name, a := range arrivalSpecs() {
		s1 := a.Schedule(42)
		s2 := a.Schedule(42)
		if !reflect.DeepEqual(s1, s2) {
			t.Fatalf("%s: same seed produced different schedules", name)
		}
		if reflect.DeepEqual(s1, a.Schedule(43)) {
			t.Fatalf("%s: different seeds produced identical schedules", name)
		}
		salted := *a
		salted.Salt = 7
		s3 := salted.Schedule(42)
		if reflect.DeepEqual(s1, s3) {
			t.Fatalf("%s: different salts produced identical schedules", name)
		}
		// Independence, not just inequality: the prefix should diverge
		// immediately, not after some shared stem.
		if len(s3) > 0 && len(s1) > 0 && s1[0] == s3[0] {
			t.Fatalf("%s: salted stream shares its first arrival %v", name, s1[0])
		}
	}
}

// Property: schedules are sorted ascending and bounded by the horizon.
func TestArrivalsSortedWithinHorizon(t *testing.T) {
	for name, a := range arrivalSpecs() {
		s := a.Schedule(1)
		if len(s) == 0 {
			t.Fatalf("%s: empty schedule", name)
		}
		if !sort.SliceIsSorted(s, func(i, j int) bool { return s[i] < s[j] }) {
			t.Fatalf("%s: schedule not sorted", name)
		}
		if s[0] < 0 || s[len(s)-1] >= a.Horizon {
			t.Fatalf("%s: arrivals outside [0, %v): first %v last %v", name, a.Horizon, s[0], s[len(s)-1])
		}
	}
}

// expectedCount integrates the spec's rate function over the horizon.
func expectedCount(a *Arrivals) float64 {
	const step = 10 * sim.Microsecond
	var sum float64
	for t := sim.Time(0); t < a.Horizon; t += step {
		sum += a.rateAt(t) * float64(step) / float64(sim.Second)
	}
	return sum
}

// Property: the empirical arrival count (equivalently the mean interarrival
// gap) matches the integral of the spec's rate function within sampling
// tolerance, for all three kinds.
func TestArrivalsRateCorrect(t *testing.T) {
	for name, a := range arrivalSpecs() {
		s := a.Schedule(99)
		want := expectedCount(a)
		got := float64(len(s))
		// 5 sigma of a Poisson count, floored at 5% relative.
		tol := 5 * math.Sqrt(want)
		if rel := 0.05 * want; tol < rel {
			tol = rel
		}
		if math.Abs(got-want) > tol {
			t.Fatalf("%s: %v arrivals, want %.0f +/- %.0f", name, len(s), want, tol)
		}
		// Mean interarrival over the whole horizon.
		meanGap := float64(a.Horizon) / got
		wantGap := float64(a.Horizon) / want
		if math.Abs(meanGap-wantGap) > 0.05*wantGap {
			t.Fatalf("%s: mean interarrival %.0fns, want %.0fns", name, meanGap, wantGap)
		}
	}
}

// Burst windows must actually be busier than the calm baseline.
func TestArrivalsBurstShape(t *testing.T) {
	a := arrivalSpecs()["burst"]
	s := a.Schedule(7)
	var inBurst, calm int
	for _, at := range s {
		if at >= a.BurstEvery && at%a.BurstEvery < a.BurstLen {
			inBurst++
		} else {
			calm++
		}
	}
	// Burst windows cover 1/5 of the post-warmup run at 5x the rate, so
	// they should hold roughly half the arrivals — assert well above the
	// 1/5 a flat process would put there.
	frac := float64(inBurst) / float64(len(s))
	if frac < 0.35 {
		t.Fatalf("burst windows hold %.0f%% of arrivals, want >35%%", 100*frac)
	}
}

func TestArrivalsMaxRequests(t *testing.T) {
	a := &Arrivals{Kind: ArrivePoisson, Rate: 5000, Horizon: 4 * sim.Second, MaxRequests: 100}
	if s := a.Schedule(1); len(s) != 100 {
		t.Fatalf("cap ignored: %d arrivals", len(s))
	}
}

func TestArrivalsValidate(t *testing.T) {
	cases := []struct {
		name string
		a    *Arrivals
		ok   bool
	}{
		{"nil", nil, true},
		{"poisson", &Arrivals{Kind: ArrivePoisson, Rate: 100, Horizon: sim.Second}, true},
		{"zero-rate", &Arrivals{Kind: ArrivePoisson, Rate: 0, Horizon: sim.Second}, false},
		{"nan-rate", &Arrivals{Kind: ArrivePoisson, Rate: math.NaN(), Horizon: sim.Second}, false},
		{"inf-rate", &Arrivals{Kind: ArrivePoisson, Rate: math.Inf(1), Horizon: sim.Second}, false},
		{"zero-horizon", &Arrivals{Kind: ArrivePoisson, Rate: 100}, false},
		{"negative-cap", &Arrivals{Kind: ArrivePoisson, Rate: 100, Horizon: sim.Second, MaxRequests: -1}, false},
		{"diurnal", &Arrivals{Kind: ArriveDiurnal, Rate: 100, Horizon: sim.Second, Trough: 0.5}, true},
		{"diurnal-zero-trough", &Arrivals{Kind: ArriveDiurnal, Rate: 100, Horizon: sim.Second, Trough: 0}, false},
		{"diurnal-big-trough", &Arrivals{Kind: ArriveDiurnal, Rate: 100, Horizon: sim.Second, Trough: 1.5}, false},
		{"diurnal-nan-trough", &Arrivals{Kind: ArriveDiurnal, Rate: 100, Horizon: sim.Second, Trough: math.NaN()}, false},
		{"burst", &Arrivals{Kind: ArriveBurst, Rate: 100, Horizon: sim.Second,
			BurstEvery: 100 * sim.Millisecond, BurstLen: 10 * sim.Millisecond, BurstFactor: 3}, true},
		{"burst-no-window", &Arrivals{Kind: ArriveBurst, Rate: 100, Horizon: sim.Second, BurstFactor: 3}, false},
		{"burst-len-exceeds-spacing", &Arrivals{Kind: ArriveBurst, Rate: 100, Horizon: sim.Second,
			BurstEvery: 10 * sim.Millisecond, BurstLen: 20 * sim.Millisecond, BurstFactor: 3}, false},
		{"burst-nan-factor", &Arrivals{Kind: ArriveBurst, Rate: 100, Horizon: sim.Second,
			BurstEvery: 100 * sim.Millisecond, BurstLen: 10 * sim.Millisecond, BurstFactor: math.NaN()}, false},
		{"unknown-kind", &Arrivals{Kind: ArrivalKind(99), Rate: 100, Horizon: sim.Second}, false},
	}
	for _, c := range cases {
		err := c.a.Validate()
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: invalid spec accepted", c.name)
		}
	}
	// An invalid spec embedded in a scenario is rejected by Scenario.Validate.
	sc := &Scenario{Arrivals: &Arrivals{Kind: ArrivePoisson, Rate: -1, Horizon: sim.Second}}
	if err := sc.Validate(4); err == nil {
		t.Fatal("Scenario.Validate accepted an invalid arrival spec")
	}
}
