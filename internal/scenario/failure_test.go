package scenario

import (
	"math"
	"testing"

	"jessica2/internal/sim"
)

// TestValidateFailureSpecs: every documented failure-spec constraint is
// enforced, not just documented — FlushLoss probability mass, crash
// windows, partition durations and groups.
func TestValidateFailureSpecs(t *testing.T) {
	const nodes = 4
	ms := sim.Millisecond
	cases := []struct {
		name string
		sc   *Scenario
		ok   bool
	}{
		{"empty", &Scenario{}, true},
		{"crash-finite", &Scenario{Crashes: []Crash{{Node: 1, At: 100 * ms, Restart: 200 * ms}}}, true},
		{"crash-forever", &Scenario{Crashes: []Crash{{Node: 1, At: 100 * ms}}}, true},
		{"crash-at-zero-with-restart", &Scenario{Crashes: []Crash{{Node: 1, At: 0, Restart: 50 * ms}}}, true},
		{"crash-at-zero-forever", &Scenario{Crashes: []Crash{{Node: 1, At: 0}}}, true},
		{"crash-master", &Scenario{Crashes: []Crash{{Node: 0, At: 100 * ms}}}, false},
		{"crash-out-of-range", &Scenario{Crashes: []Crash{{Node: nodes, At: 100 * ms}}}, false},
		{"crash-negative-at", &Scenario{Crashes: []Crash{{Node: 1, At: -ms}}}, false},
		{"crash-restart-before-crash", &Scenario{Crashes: []Crash{{Node: 1, At: 200 * ms, Restart: 100 * ms}}}, false},
		{"crash-restart-equals-crash", &Scenario{Crashes: []Crash{{Node: 1, At: 200 * ms, Restart: 200 * ms}}}, false},
		{"crash-factor-above-one", &Scenario{Crashes: []Crash{{Node: 1, At: ms, Factor: 1.5}}}, false},
		{"crash-factor-nan", &Scenario{Crashes: []Crash{{Node: 1, At: ms, Factor: math.NaN()}}}, false},
		{"partition", &Scenario{Partitions: []Partition{{At: ms, Duration: ms, Nodes: []int{2, 3}}}}, true},
		{"partition-zero-duration", &Scenario{Partitions: []Partition{{At: ms, Duration: 0, Nodes: []int{2}}}}, false},
		{"partition-negative-duration", &Scenario{Partitions: []Partition{{At: ms, Duration: -ms, Nodes: []int{2}}}}, false},
		{"partition-empty-group", &Scenario{Partitions: []Partition{{At: ms, Duration: ms}}}, false},
		{"partition-whole-cluster", &Scenario{Partitions: []Partition{{At: ms, Duration: ms, Nodes: []int{0, 1, 2, 3}}}}, false},
		{"partition-member-out-of-range", &Scenario{Partitions: []Partition{{At: ms, Duration: ms, Nodes: []int{nodes}}}}, false},
		{"flushloss", &Scenario{FlushLoss: &FlushLoss{DropProb: 0.5, DupProb: 0.5}}, true},
		{"flushloss-mass-exceeds-one", &Scenario{FlushLoss: &FlushLoss{DropProb: 0.7, DupProb: 0.4}}, false},
		{"flushloss-negative", &Scenario{FlushLoss: &FlushLoss{DropProb: -0.1}}, false},
		{"flushloss-nan", &Scenario{FlushLoss: &FlushLoss{DropProb: math.NaN()}}, false},
	}
	for _, c := range cases {
		err := c.sc.Validate(nodes)
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: invalid spec accepted", c.name)
		}
	}
}

// TestCrashForeverEncoding pins down the window encoding: Restart == 0 is
// "forever" on any crash (even one scheduled at At == 0), while a
// zero-valued At with a real Restart is an ordinary finite window starting
// at time zero. No finite window can have Restart == 0, so the encoding is
// unambiguous.
func TestCrashForeverEncoding(t *testing.T) {
	ms := sim.Millisecond
	permanent := Crash{Node: 1, At: 0}
	if !permanent.Forever() {
		t.Fatal("Restart == 0 should be permanent")
	}
	if !permanent.Down(0) || !permanent.Down(3600*sim.Second) {
		t.Fatal("permanent crash at At == 0 should cover all of time")
	}
	if _, _, forever := permanent.window(); !forever {
		t.Fatal("window() should report forever")
	}

	finiteAtZero := Crash{Node: 1, At: 0, Restart: 50 * ms}
	if finiteAtZero.Forever() {
		t.Fatal("a real Restart is not permanent, even with At == 0")
	}
	if !finiteAtZero.Down(0) || !finiteAtZero.Down(49*ms) {
		t.Fatal("finite window should cover [0, restart)")
	}
	if finiteAtZero.Down(50 * ms) {
		t.Fatal("restart instant is up, not down (half-open window)")
	}
	start, end, forever := finiteAtZero.window()
	if start != 0 || end != 50*ms || forever {
		t.Fatalf("window() = %v, %v, %v", start, end, forever)
	}

	later := Crash{Node: 1, At: 100 * ms, Restart: 200 * ms}
	if later.Down(99*ms) || !later.Down(100*ms) || later.Down(200*ms) {
		t.Fatal("finite window bounds wrong")
	}

	// Normalization preserves the encoding: a permanent window absorbs
	// finite ones after it and stays permanent.
	merged := NormalizeCrashes([]Crash{
		{Node: 1, At: 100 * ms, Restart: 0},
		{Node: 1, At: 150 * ms, Restart: 300 * ms},
	})
	if len(merged) != 1 || !merged[0].Forever() || merged[0].At != 100*ms {
		t.Fatalf("merged = %+v", merged)
	}
	// And the interceptor sees a permanent crash as down forever.
	fi := newFailureInterceptor(&Scenario{Crashes: []Crash{{Node: 1, At: 100 * ms}}})
	if restart, down := fi.downUntil(1, 3600*sim.Second); !down || restart != 0 {
		t.Fatalf("downUntil = %v, %v; want 0, true", restart, down)
	}
	if _, down := fi.downUntil(1, 99*ms); down {
		t.Fatal("node down before its crash")
	}
}
