// Package scenario is the fault-injection scenario engine: it composes a
// base workload run with a schedule of deterministic, seed-driven
// perturbations, so the adaptive profilers can be validated under the
// changing runtime conditions they exist to react to. A Scenario bundles
// four perturbation vocabularies:
//
//   - CPU heterogeneity: per-node speed factors (slow nodes take
//     proportionally longer per unit of nominal work), via the per-node
//     clock-scaling hook sim.Resource.SetSpeed;
//   - link ramps: latency and bandwidth factors varying linearly over a
//     virtual-time window, via the network.Shaper hook;
//   - jitter: seeded per-message latency noise, also via the Shaper;
//   - transient slowdowns ("noisy neighbor"): a node drops to a fraction
//     of its speed for a bounded episode, then recovers;
//   - phase shifts: scheduled advances of the workload.Phase register that
//     phase-aware workloads consult at round boundaries;
//   - failure events (see failure.go): node crash/restart schedules,
//     transient partitions, and seeded per-message loss/duplication of
//     dedicated profile flushes, via the network.Interceptor hook;
//   - open-loop arrivals (see arrivals.go): seed-deterministic Poisson,
//     diurnal, and burst request schedules for request-serving workloads.
//
// Everything is a pure function of the scenario spec and its seed: messages
// post in deterministic order, events fire in deterministic order, and the
// jitter and flush-loss streams are seeded SplitMix64 sequences — so a
// perturbed run is exactly as reproducible as an unperturbed one (the
// golden-trace tests assert byte-identical reports across repeats).
package scenario

import (
	"fmt"
	"sort"
	"strings"

	"jessica2/internal/gos"
	"jessica2/internal/network"
	"jessica2/internal/sim"
	"jessica2/internal/workload"
	"jessica2/internal/xrand"
)

// RampParam selects which link parameter a Ramp modulates.
type RampParam int

const (
	// RampLatency scales the one-way message latency.
	RampLatency RampParam = iota
	// RampBandwidth scales the link throughput (factors < 1 slow transfers).
	RampBandwidth
)

func (p RampParam) String() string {
	switch p {
	case RampLatency:
		return "latency"
	case RampBandwidth:
		return "bandwidth"
	default:
		return fmt.Sprintf("rampparam(%d)", int(p))
	}
}

// Ramp varies one link parameter linearly from From× to To× of its
// configured value over the virtual-time window [Start, End]; before Start
// the factor is From, after End it stays at To. A degenerate window
// (Start == End) is an instantaneous step change at Start.
type Ramp struct {
	Param      RampParam
	Start, End sim.Time
	From, To   float64
}

// factorAt evaluates the ramp at virtual time now.
func (r Ramp) factorAt(now sim.Time) float64 {
	switch {
	case now < r.Start:
		return r.From
	case now >= r.End:
		return r.To
	}
	frac := float64(now-r.Start) / float64(r.End-r.Start)
	return r.From + (r.To-r.From)*frac
}

// Jitter adds seeded per-message latency noise uniform in [0, Amplitude).
type Jitter struct {
	Amplitude sim.Time
	// Salt offsets the jitter stream from the scenario seed so distinct
	// jitter specs under one seed draw independent streams.
	Salt uint64
}

// Slowdown is a transient noisy-neighbor episode: the node's CPU drops to
// Factor of its (possibly heterogeneous) base speed at At and recovers
// Duration later. Episodes on the same node should not overlap — recovery
// restores the base speed, not the pre-episode speed.
type Slowdown struct {
	Node         int
	At, Duration sim.Time
	Factor       float64
}

// PhaseShift advances the workload phase register at a virtual time.
type PhaseShift struct {
	At    sim.Time
	Phase int
}

// Scenario is one composed perturbation schedule.
type Scenario struct {
	Name string
	// Seed drives all scenario randomness (currently the jitter stream).
	Seed uint64

	// CPUFactors is the per-node relative speed (1.0 = nominal); missing
	// trailing nodes default to 1.0. This is the heterogeneous-cluster
	// perturbation.
	CPUFactors  []float64
	Ramps       []Ramp
	Jitter      *Jitter
	Slowdowns   []Slowdown
	PhaseShifts []PhaseShift

	// Failure events (failure.go). Unlike the perturbations above these make
	// the runtime lose things; the gos failure detector (gos.FailureConfig)
	// is what lets a session survive them.
	Crashes    []Crash
	Partitions []Partition
	FlushLoss  *FlushLoss

	// Arrivals is the open-loop traffic schedule (arrivals.go). It does not
	// perturb the kernel; the session layer materializes it into an arrival
	// schedule for open-loop workloads (workload.ServeMix) at launch.
	Arrivals *Arrivals
}

// Kinds lists the perturbation kinds the scenario carries, sorted.
func (sc *Scenario) Kinds() []string {
	var out []string
	if len(sc.CPUFactors) > 0 {
		out = append(out, "cpu-heterogeneity")
	}
	for _, r := range sc.Ramps {
		out = append(out, r.Param.String()+"-ramp")
	}
	if sc.Jitter != nil {
		out = append(out, "jitter")
	}
	if len(sc.Slowdowns) > 0 {
		out = append(out, "transient-slowdown")
	}
	if len(sc.PhaseShifts) > 0 {
		out = append(out, "phase-shift")
	}
	if len(sc.Crashes) > 0 {
		out = append(out, "crash")
	}
	if len(sc.Partitions) > 0 {
		out = append(out, "partition")
	}
	if sc.FlushLoss != nil {
		out = append(out, "flush-loss")
	}
	if sc.Arrivals != nil {
		out = append(out, "arrivals-"+sc.Arrivals.Kind.String())
	}
	sort.Strings(out)
	uniq := out[:0]
	for i, k := range out {
		if i == 0 || out[i-1] != k {
			uniq = append(uniq, k)
		}
	}
	return uniq
}

// String renders a one-line description.
func (sc *Scenario) String() string {
	if sc == nil {
		return "none"
	}
	name := sc.Name
	if name == "" {
		name = "scenario"
	}
	return fmt.Sprintf("%s{%s}", name, strings.Join(sc.Kinds(), ","))
}

// Validate checks the scenario against a cluster size.
func (sc *Scenario) Validate(nodes int) error {
	for i, f := range sc.CPUFactors {
		if !finite(f) || f <= 0 {
			return fmt.Errorf("scenario: CPU factor %g for node %d must be positive and finite", f, i)
		}
	}
	if len(sc.CPUFactors) > nodes {
		return fmt.Errorf("scenario: %d CPU factors for %d nodes", len(sc.CPUFactors), nodes)
	}
	for _, r := range sc.Ramps {
		if !finite(r.From) || !finite(r.To) || r.From <= 0 || r.To <= 0 {
			return fmt.Errorf("scenario: ramp factors must be positive and finite (got %g -> %g)", r.From, r.To)
		}
		if r.Start < 0 || r.End < r.Start {
			return fmt.Errorf("scenario: ramp window [%v, %v] invalid", r.Start, r.End)
		}
	}
	if sc.Jitter != nil && sc.Jitter.Amplitude < 0 {
		return fmt.Errorf("scenario: negative jitter amplitude %v", sc.Jitter.Amplitude)
	}
	for _, s := range sc.Slowdowns {
		if s.Node < 0 || s.Node >= nodes {
			return fmt.Errorf("scenario: slowdown on node %d of %d", s.Node, nodes)
		}
		if !finite(s.Factor) || s.Factor <= 0 {
			return fmt.Errorf("scenario: slowdown factor %g must be positive and finite", s.Factor)
		}
		if s.At < 0 || s.Duration <= 0 {
			return fmt.Errorf("scenario: slowdown window at=%v dur=%v invalid", s.At, s.Duration)
		}
	}
	for _, p := range sc.PhaseShifts {
		if p.At < 0 {
			return fmt.Errorf("scenario: phase shift at negative time %v", p.At)
		}
	}
	if err := sc.Arrivals.Validate(); err != nil {
		return err
	}
	return sc.validateFailures(nodes)
}

// baseFactor is a node's heterogeneous base speed.
func (sc *Scenario) baseFactor(node int) float64 {
	if node < len(sc.CPUFactors) {
		return sc.CPUFactors[node]
	}
	return 1
}

// Apply installs the scenario into a freshly built kernel: CPU factors and
// slowdown episodes onto node CPU resources, the link shaper onto the
// network, and phase shifts onto the phase register (which may be nil when
// no workload consults it). Call before k.Run(), normally at virtual time
// zero; it panics if the scenario does not validate against the cluster.
func (sc *Scenario) Apply(k *gos.Kernel, ph *workload.Phase) {
	if sc == nil {
		return
	}
	if err := sc.Validate(k.NumNodes()); err != nil {
		panic(err)
	}
	for i, f := range sc.CPUFactors {
		k.Node(i).CPU().SetSpeed(f)
	}
	for _, s := range sc.Slowdowns {
		s := s
		cpu := k.Node(s.Node).CPU()
		base := sc.baseFactor(s.Node)
		k.Eng.Schedule(s.At, func() { cpu.SetSpeed(base * s.Factor) })
		k.Eng.Schedule(s.At+s.Duration, func() { cpu.SetSpeed(base) })
	}
	if len(sc.Ramps) > 0 || sc.Jitter != nil {
		sh := &shaper{ramps: sc.Ramps}
		if sc.Jitter != nil && sc.Jitter.Amplitude > 0 {
			sh.jitterAmp = sc.Jitter.Amplitude
			sh.rng = xrand.New(sc.Seed).Derive(sc.Jitter.Salt + 0x9e77)
		}
		k.Net.SetShaper(sh)
	}
	if ph != nil {
		for _, p := range sc.PhaseShifts {
			p := p
			k.Eng.Schedule(p.At, func() { ph.Set(p.Phase) })
		}
	}
	sc.applyFailures(k)
}

// shaper implements network.Shaper from the scenario's ramps and jitter.
type shaper struct {
	ramps     []Ramp
	jitterAmp sim.Time
	rng       *xrand.Rand
}

var _ network.Shaper = (*shaper)(nil)

// TransferTime recomputes latency + serialization under the factors active
// at now, then adds one jitter draw. Factors of stacked ramps on the same
// parameter multiply.
func (s *shaper) TransferTime(now sim.Time, from, to network.NodeID, totalBytes int, cfg network.Config) sim.Time {
	latF, bwF := 1.0, 1.0
	for _, r := range s.ramps {
		switch r.Param {
		case RampLatency:
			latF *= r.factorAt(now)
		case RampBandwidth:
			bwF *= r.factorAt(now)
		}
	}
	// Clamp degenerate products: stacked ramps can underflow the bandwidth
	// factor toward zero (infinite serialization time) and a pathological
	// latency factor could go negative. The network layer additionally
	// clamps the final delay to >= 0.
	if bwF < 1e-9 {
		bwF = 1e-9
	}
	if latF < 0 {
		latF = 0
	}
	lat := sim.Time(float64(cfg.Latency)*latF + 0.5)
	ser := sim.Time(float64(totalBytes) * float64(sim.Second) / (float64(cfg.BandwidthBytesPerSec) * bwF))
	d := lat + ser
	if s.rng != nil {
		d += sim.Time(s.rng.Uint64() % uint64(s.jitterAmp))
	}
	return d
}

// Merge composes several scenarios into one named schedule. The first
// non-nil jitter wins; CPU factor tables multiply elementwise (padding with
// 1.0); everything else concatenates.
func Merge(name string, seed uint64, parts ...*Scenario) *Scenario {
	out := &Scenario{Name: name, Seed: seed}
	for _, p := range parts {
		if p == nil {
			continue
		}
		if len(p.CPUFactors) > len(out.CPUFactors) {
			grown := make([]float64, len(p.CPUFactors))
			for i := range grown {
				grown[i] = 1
			}
			copy(grown, out.CPUFactors)
			out.CPUFactors = grown
		}
		for i, f := range p.CPUFactors {
			out.CPUFactors[i] *= f
		}
		out.Ramps = append(out.Ramps, p.Ramps...)
		if out.Jitter == nil && p.Jitter != nil {
			j := *p.Jitter
			out.Jitter = &j
		}
		out.Slowdowns = append(out.Slowdowns, p.Slowdowns...)
		out.PhaseShifts = append(out.PhaseShifts, p.PhaseShifts...)
		out.Crashes = append(out.Crashes, p.Crashes...)
		out.Partitions = append(out.Partitions, p.Partitions...)
		if out.FlushLoss == nil && p.FlushLoss != nil {
			l := *p.FlushLoss
			out.FlushLoss = &l
		}
		if out.Arrivals == nil && p.Arrivals != nil {
			a := *p.Arrivals
			out.Arrivals = &a
		}
	}
	return out
}

// PresetNames lists the built-in scenario vocabulary.
var PresetNames = []string{"hetero", "ramp", "jitter", "noisy", "phased", "storm", "crash", "flaky", "partition", "poisson", "diurnal", "burst"}

// Preset builds one of the named scenarios for a cluster of the given size.
// Presets are seed-driven where randomness is involved (heterogeneous
// factors, jitter stream), so the same (name, nodes, seed) triple always
// yields the same schedule.
func Preset(name string, nodes int, seed uint64) (*Scenario, error) {
	if nodes <= 0 {
		return nil, fmt.Errorf("scenario: preset needs a positive node count")
	}
	switch strings.ToLower(name) {
	case "hetero":
		// Heterogeneous cluster: node 0 (the master JVM) stays nominal,
		// workers get seeded speeds in [0.55, 0.95).
		rng := xrand.New(seed).Derive(101)
		f := make([]float64, nodes)
		f[0] = 1
		for i := 1; i < nodes; i++ {
			f[i] = 0.55 + 0.4*rng.Float64()
		}
		return &Scenario{Name: "hetero", Seed: seed, CPUFactors: f}, nil
	case "ramp":
		// Congestion building up: latency quadruples and bandwidth halves
		// over the first 1.5 s of the run.
		return &Scenario{Name: "ramp", Seed: seed, Ramps: []Ramp{
			{Param: RampLatency, Start: 100 * sim.Millisecond, End: 1500 * sim.Millisecond, From: 1, To: 4},
			{Param: RampBandwidth, Start: 100 * sim.Millisecond, End: 1500 * sim.Millisecond, From: 1, To: 0.5},
		}}, nil
	case "jitter":
		// Per-message latency noise up to 2x the Fast Ethernet base latency.
		return &Scenario{Name: "jitter", Seed: seed,
			Jitter: &Jitter{Amplitude: 240 * sim.Microsecond}}, nil
	case "noisy":
		// Noisy neighbors: two staggered transient slowdowns plus a relapse.
		n1, n2 := 1%nodes, 2%nodes
		return &Scenario{Name: "noisy", Seed: seed, Slowdowns: []Slowdown{
			{Node: n1, At: 150 * sim.Millisecond, Duration: 400 * sim.Millisecond, Factor: 0.30},
			{Node: n2, At: 700 * sim.Millisecond, Duration: 400 * sim.Millisecond, Factor: 0.25},
			{Node: n1, At: 1400 * sim.Millisecond, Duration: 300 * sim.Millisecond, Factor: 0.35},
		}}, nil
	case "phased":
		// Workload phase shifts every 120 ms for phase-aware workloads.
		var shifts []PhaseShift
		for i := 1; i <= 8; i++ {
			shifts = append(shifts, PhaseShift{At: sim.Time(i) * 120 * sim.Millisecond, Phase: i})
		}
		return &Scenario{Name: "phased", Seed: seed, PhaseShifts: shifts}, nil
	case "storm":
		// Everything at once.
		var parts []*Scenario
		for _, n := range []string{"hetero", "ramp", "jitter", "noisy", "phased"} {
			p, err := Preset(n, nodes, seed)
			if err != nil {
				return nil, err
			}
			parts = append(parts, p)
		}
		return Merge("storm", seed, parts...), nil
	case "crash":
		// Worker crashes: node 1 goes down for half a second and comes back;
		// on clusters of three or more, node 2 later dies for good. Clusters
		// without workers have nothing to crash.
		sc := &Scenario{Name: "crash", Seed: seed}
		if nodes > 1 {
			sc.Crashes = append(sc.Crashes, Crash{Node: 1, At: 200 * sim.Millisecond, Restart: 700 * sim.Millisecond})
		}
		if nodes > 2 {
			sc.Crashes = append(sc.Crashes, Crash{Node: 2, At: 900 * sim.Millisecond, Restart: 0})
		}
		return sc, nil
	case "flaky":
		// Lossy profiling path: 15% of dedicated OAL flushes dropped, 10%
		// duplicated. Exercises flush retry/backoff and master-side dedup.
		return &Scenario{Name: "flaky", Seed: seed,
			FlushLoss: &FlushLoss{DropProb: 0.15, DupProb: 0.10, Salt: 0xf1a}}, nil
	case "partition":
		// The upper half of the cluster is cut off from the master twice,
		// briefly. Crossing protocol traffic is held until the heal;
		// crossing flushes are dropped.
		if nodes < 2 {
			return &Scenario{Name: "partition", Seed: seed}, nil
		}
		var group []int
		for i := (nodes + 1) / 2; i < nodes; i++ {
			group = append(group, i)
		}
		return &Scenario{Name: "partition", Seed: seed, Partitions: []Partition{
			{At: 300 * sim.Millisecond, Duration: 250 * sim.Millisecond, Nodes: group},
			{At: 1100 * sim.Millisecond, Duration: 200 * sim.Millisecond, Nodes: group},
		}}, nil
	case "poisson":
		// Steady open-loop traffic: flat Poisson arrivals for 2 s.
		return &Scenario{Name: "poisson", Seed: seed, Arrivals: &Arrivals{
			Kind: ArrivePoisson, Rate: 4000, Horizon: 2 * sim.Second}}, nil
	case "diurnal":
		// Day/night traffic: two full cycles between 20% and 100% of peak.
		return &Scenario{Name: "diurnal", Seed: seed, Arrivals: &Arrivals{
			Kind: ArriveDiurnal, Rate: 6000, Horizon: 2 * sim.Second,
			Period: sim.Second, Trough: 0.2}}, nil
	case "burst":
		// Flash crowds: calm baseline with 4x bursts every half second.
		return &Scenario{Name: "burst", Seed: seed, Arrivals: &Arrivals{
			Kind: ArriveBurst, Rate: 2500, Horizon: 2 * sim.Second,
			BurstEvery: 500 * sim.Millisecond, BurstLen: 120 * sim.Millisecond,
			BurstFactor: 4}}, nil
	default:
		return nil, fmt.Errorf("scenario: unknown preset %q (have %s)", name, strings.Join(PresetNames, ", "))
	}
}

// Parse builds a scenario from a list of preset names merged in order,
// separated by "," or "+" ("crash+burst" and "crash,burst" are the same
// combo — "+" reads naturally for failure×arrival pairings on a command
// line). "", "none" and "off" yield nil.
func Parse(spec string, nodes int, seed uint64) (*Scenario, error) {
	spec = strings.TrimSpace(spec)
	switch strings.ToLower(spec) {
	case "", "none", "off":
		return nil, nil
	}
	names := strings.Split(strings.ReplaceAll(spec, "+", ","), ",")
	if len(names) == 1 {
		return Preset(names[0], nodes, seed)
	}
	parts := make([]*Scenario, 0, len(names))
	for _, n := range names {
		p, err := Preset(strings.TrimSpace(n), nodes, seed)
		if err != nil {
			return nil, err
		}
		parts = append(parts, p)
	}
	return Merge(spec, seed, parts...), nil
}
