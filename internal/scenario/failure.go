package scenario

import (
	"fmt"
	"sort"

	"jessica2/internal/gos"
	"jessica2/internal/network"
	"jessica2/internal/sim"
	"jessica2/internal/xrand"
)

// Failure vocabulary. Unlike the performance perturbations (speed factors,
// ramps, jitter), failure events make the simulated distributed runtime
// actually lose things: nodes crash, links partition, and dedicated profile
// flushes drop or duplicate. All of it stays a pure function of the scenario
// spec and seed — crash windows are fixed virtual-time intervals, and the
// flush-loss stream is a seeded per-message draw — so a run under failures
// is exactly as reproducible as a clean one.
//
// Two invariants keep fault injection live (the sim must still terminate):
//
//   - Only messages whose primary category is CatOAL are ever dropped or
//     duplicated. OAL flushes have an application-level retry path
//     (sequence-numbered, acked, retransmitted); protocol traffic a blocked
//     proc waits on is delayed, never lost.
//   - CatMigration traffic is exempt from interception entirely: it is the
//     evacuation channel the failure detector uses to move threads off dead
//     nodes, and delaying it against a permanent crash would wedge recovery.

// DefaultCrashFactor is the CPU crawl factor applied to a crashed node when
// a Crash does not specify one. A crash is modeled as a near-freeze rather
// than a total stop: threads still (glacially) reach safe points so the
// failure detector can evacuate them, and the node stops emitting
// heartbeats (the gos heartbeat loop suppresses beats below its
// SuspendBelowSpeed threshold), which is what actually declares it dead.
const DefaultCrashFactor = 0.05

// downPenalty is the extra per-message delivery delay for protocol traffic
// to or from a permanently crashed node (Restart == 0). It is finite on
// purpose: an unreachable-forever endpoint would deadlock any proc blocked
// on a fetch roundtrip, so a dead node is merely very slow to talk to.
const downPenalty = 5 * sim.Millisecond

// Crash takes a node down at At and (optionally) back up at Restart.
// Restart == 0 means the node never comes back (see Forever). While down,
// the node's CPU runs at Factor of its base speed (DefaultCrashFactor when
// Factor == 0), its heartbeats stop, dedicated OAL flushes to/from it are
// dropped, and other traffic involving it is deferred to the restart (or
// penalized, for a permanent crash).
type Crash struct {
	Node        int
	At, Restart sim.Time
	Factor      float64
}

// Forever reports whether the crash is permanent. Restart == 0 is the
// explicit "never restarts" encoding, and it is unambiguous even for a
// crash scheduled at At == 0: a finite restart must satisfy
// Restart > At >= 0 (validation rejects anything else and normalization
// drops it), so no finite window can ever have Restart == 0.
func (c Crash) Forever() bool { return c.Restart == 0 }

// window returns the down interval [start, end) and whether it extends
// forever. end is meaningful only when forever is false; every consumer of
// the schedule goes through this (or Down) rather than re-deriving the
// Restart == 0 convention.
func (c Crash) window() (start, end sim.Time, forever bool) {
	return c.At, c.Restart, c.Forever()
}

// Down reports whether the crash covers virtual time now.
func (c Crash) Down(now sim.Time) bool {
	start, end, forever := c.window()
	return now >= start && (forever || now < end)
}

// Partition isolates the Nodes group from the rest of the cluster during
// [At, At+Duration). Dedicated OAL flushes crossing the cut are dropped;
// all other crossing traffic is held and delivered when the partition
// heals.
type Partition struct {
	At, Duration sim.Time
	Nodes        []int
}

// heals returns the virtual time the partition ends.
func (p Partition) heals() sim.Time { return p.At + p.Duration }

// FlushLoss drops or duplicates dedicated profile-flush messages (primary
// category CatOAL) with the given per-message probabilities, drawn from a
// stream seeded by the scenario seed and Salt. DropProb + DupProb must not
// exceed 1.
type FlushLoss struct {
	DropProb, DupProb float64
	// Salt offsets the loss stream from the scenario seed so distinct loss
	// specs under one seed draw independent streams.
	Salt uint64
}

// NormalizeCrashes canonicalizes a crash schedule: it clamps negative times
// to zero, discards entries whose restart does not come after the crash
// (restart-before-crash is meaningless, not an error), clamps Factor into
// [0, 1] (non-positive means "use DefaultCrashFactor"), sorts by
// (Node, At, Restart), and merges overlapping or touching windows on the
// same node — a Restart of 0 (never) absorbs everything after it. The
// result is sorted, per-node non-overlapping, and the function is
// idempotent; Apply and the failure interceptor only ever see normalized
// schedules.
func NormalizeCrashes(crashes []Crash) []Crash {
	out := make([]Crash, 0, len(crashes))
	for _, c := range crashes {
		if c.At < 0 {
			c.At = 0
		}
		if c.Restart < 0 {
			c.Restart = 0
		}
		if !c.Forever() && c.Restart <= c.At {
			continue // restart-before-crash: drop, never panic
		}
		if c.Factor < 0 {
			c.Factor = 0
		}
		if c.Factor > 1 {
			c.Factor = 1
		}
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		if a.At != b.At {
			return a.At < b.At
		}
		// Permanent windows sort after finite ones at the same At.
		if a.Forever() {
			return false
		}
		if b.Forever() {
			return true
		}
		return a.Restart < b.Restart
	})
	merged := out[:0]
	for _, c := range out {
		if len(merged) > 0 {
			last := &merged[len(merged)-1]
			if last.Node == c.Node && (last.Forever() || c.At <= last.Restart) {
				// Overlapping or touching: extend the earlier window. The
				// earlier window's crawl factor wins.
				if !last.Forever() && (c.Forever() || c.Restart > last.Restart) {
					last.Restart = c.Restart
				}
				continue
			}
		}
		merged = append(merged, c)
	}
	return merged
}

// validateFailures checks the failure vocabulary against a cluster size.
func (sc *Scenario) validateFailures(nodes int) error {
	for _, c := range sc.Crashes {
		if c.Node <= 0 || c.Node >= nodes {
			if c.Node == 0 {
				return fmt.Errorf("scenario: cannot crash node 0 (the master JVM hosts the failure detector)")
			}
			return fmt.Errorf("scenario: crash on node %d of %d", c.Node, nodes)
		}
		if c.At < 0 {
			return fmt.Errorf("scenario: crash at negative time %v", c.At)
		}
		if !c.Forever() && c.Restart <= c.At {
			return fmt.Errorf("scenario: crash restart %v not after crash %v", c.Restart, c.At)
		}
		if !finite(c.Factor) || c.Factor < 0 || c.Factor > 1 {
			return fmt.Errorf("scenario: crash factor %g outside [0, 1]", c.Factor)
		}
	}
	for _, p := range sc.Partitions {
		if p.At < 0 || p.Duration <= 0 {
			return fmt.Errorf("scenario: partition window at=%v dur=%v invalid", p.At, p.Duration)
		}
		if len(p.Nodes) == 0 || len(p.Nodes) >= nodes {
			return fmt.Errorf("scenario: partition group of %d nodes in a %d-node cluster cuts nothing", len(p.Nodes), nodes)
		}
		for _, n := range p.Nodes {
			if n < 0 || n >= nodes {
				return fmt.Errorf("scenario: partition includes node %d of %d", n, nodes)
			}
		}
	}
	if fl := sc.FlushLoss; fl != nil {
		if !finite(fl.DropProb) || !finite(fl.DupProb) ||
			fl.DropProb < 0 || fl.DupProb < 0 || fl.DropProb+fl.DupProb > 1 {
			return fmt.Errorf("scenario: flush loss probabilities drop=%g dup=%g invalid", fl.DropProb, fl.DupProb)
		}
	}
	return nil
}

// hasFailures reports whether any failure events are configured.
func (sc *Scenario) hasFailures() bool {
	return len(sc.Crashes) > 0 || len(sc.Partitions) > 0 || sc.FlushLoss != nil
}

// failureInterceptor implements network.Interceptor from the scenario's
// normalized failure schedule.
type failureInterceptor struct {
	crashes    []Crash // normalized
	partitions []Partition
	inGroup    []map[int]bool // per-partition membership
	loss       *FlushLoss
	rng        *xrand.Rand
}

var _ network.Interceptor = (*failureInterceptor)(nil)

func newFailureInterceptor(sc *Scenario) *failureInterceptor {
	fi := &failureInterceptor{
		crashes:    NormalizeCrashes(sc.Crashes),
		partitions: sc.Partitions,
	}
	for _, p := range fi.partitions {
		g := make(map[int]bool, len(p.Nodes))
		for _, n := range p.Nodes {
			g[n] = true
		}
		fi.inGroup = append(fi.inGroup, g)
	}
	if sc.FlushLoss != nil && (sc.FlushLoss.DropProb > 0 || sc.FlushLoss.DupProb > 0) {
		l := *sc.FlushLoss
		fi.loss = &l
		fi.rng = xrand.New(sc.Seed).Derive(l.Salt + 0x51a7)
	}
	return fi
}

// downUntil reports whether node is crashed at now, and when it restarts
// (0 = never).
func (fi *failureInterceptor) downUntil(node int, now sim.Time) (restart sim.Time, down bool) {
	for _, c := range fi.crashes {
		if c.Node != node {
			continue
		}
		if c.Down(now) {
			return c.Restart, true
		}
	}
	return 0, false
}

// downVerdict is the fate of traffic touching a crashed endpoint.
func downVerdict(primary network.Category, restart, now sim.Time) network.Verdict {
	if primary == network.CatOAL {
		return network.Verdict{Drop: true} // flush machinery retries
	}
	if restart > now {
		return network.Verdict{Delay: restart - now} // deferred to restart
	}
	return network.Verdict{Delay: downPenalty} // permanent crash: very slow, never dead air
}

// Intercept decides one remote message's fate. Draw order on the loss
// stream is deterministic because messages post in deterministic order and
// every earlier gate is a pure function of (now, from, to, primary).
func (fi *failureInterceptor) Intercept(now sim.Time, from, to network.NodeID, primary network.Category, totalBytes int) network.Verdict {
	if primary == network.CatMigration {
		return network.Verdict{} // evacuation channel: never perturbed
	}
	if restart, down := fi.downUntil(int(from), now); down {
		return downVerdict(primary, restart, now)
	}
	if restart, down := fi.downUntil(int(to), now); down {
		return downVerdict(primary, restart, now)
	}
	for i, p := range fi.partitions {
		if now < p.At || now >= p.heals() {
			continue
		}
		if fi.inGroup[i][int(from)] != fi.inGroup[i][int(to)] {
			if primary == network.CatOAL {
				return network.Verdict{Drop: true}
			}
			return network.Verdict{Delay: p.heals() - now} // held until heal
		}
	}
	if fi.loss != nil && primary == network.CatOAL {
		u := fi.rng.Float64()
		switch {
		case u < fi.loss.DropProb:
			return network.Verdict{Drop: true}
		case u < fi.loss.DropProb+fi.loss.DupProb:
			return network.Verdict{Duplicate: true}
		}
	}
	return network.Verdict{}
}

// applyFailures schedules crash crawl/restore speed events and installs the
// failure interceptor. Called from Apply after validation.
func (sc *Scenario) applyFailures(k *gos.Kernel) {
	if !sc.hasFailures() {
		return
	}
	for _, c := range NormalizeCrashes(sc.Crashes) {
		cpu := k.Node(c.Node).CPU()
		base := sc.baseFactor(c.Node)
		factor := c.Factor
		if factor <= 0 {
			factor = DefaultCrashFactor
		}
		crawl := base * factor
		k.Eng.Schedule(c.At, func() { cpu.SetSpeed(crawl) })
		if !c.Forever() {
			k.Eng.Schedule(c.Restart, func() { cpu.SetSpeed(base) })
		}
	}
	k.Net.SetInterceptor(newFailureInterceptor(sc))
}
