package scenario

import (
	"testing"

	"jessica2/internal/gos"
	"jessica2/internal/network"
	"jessica2/internal/sim"
	"jessica2/internal/workload"
)

func TestRampFactorAt(t *testing.T) {
	r := Ramp{Param: RampLatency, Start: 100, End: 300, From: 1, To: 5}
	cases := []struct {
		at   sim.Time
		want float64
	}{
		{0, 1}, {100, 1}, {200, 3}, {300, 5}, {1000, 5},
	}
	for _, c := range cases {
		if got := r.factorAt(c.at); got != c.want {
			t.Errorf("factorAt(%d) = %g, want %g", c.at, got, c.want)
		}
	}
	// Degenerate window: an instantaneous step change at Start.
	d := Ramp{Start: 50, End: 50, From: 2, To: 9}
	if got := d.factorAt(40); got != 2 {
		t.Errorf("degenerate ramp before step = %g, want From 2", got)
	}
	if got := d.factorAt(60); got != 9 {
		t.Errorf("degenerate ramp after step = %g, want To 9", got)
	}
}

func TestShaperRampAndJitterBounds(t *testing.T) {
	cfg := network.DefaultConfig()
	sc := &Scenario{
		Seed: 7,
		Ramps: []Ramp{
			{Param: RampLatency, Start: 0, End: 1000, From: 1, To: 2},
			{Param: RampBandwidth, Start: 0, End: 1000, From: 1, To: 0.5},
		},
		Jitter: &Jitter{Amplitude: 100 * sim.Microsecond},
	}
	k := gos.NewKernel(gos.Config{Nodes: 2, Net: cfg, Costs: gos.DefaultCosts()})
	sc.Apply(k, nil)

	// At end-of-ramp, latency doubled and bandwidth halved: base transfer
	// time for 1000 bytes should at least double, jitter adds < amplitude.
	base := k.Net.TransferTime(1000)
	sh := &shaper{ramps: sc.Ramps}
	noJit := sh.TransferTime(1000, 0, 1, 1000, cfg)
	if noJit < 2*cfg.Latency {
		t.Errorf("ramped latency %v < doubled base latency %v", noJit, 2*cfg.Latency)
	}
	if noJit <= base {
		t.Errorf("ramped transfer %v not slower than base %v", noJit, base)
	}
}

func TestMergeMultipliesCPUFactors(t *testing.T) {
	a := &Scenario{CPUFactors: []float64{1, 0.5}}
	b := &Scenario{CPUFactors: []float64{0.5, 1, 0.25}}
	m := Merge("m", 1, a, b)
	want := []float64{0.5, 0.5, 0.25}
	if len(m.CPUFactors) != len(want) {
		t.Fatalf("merged factors %v, want %v", m.CPUFactors, want)
	}
	for i := range want {
		if m.CPUFactors[i] != want[i] {
			t.Errorf("factor[%d] = %g, want %g", i, m.CPUFactors[i], want[i])
		}
	}
}

func TestPresetsValidateAndCoverAllKinds(t *testing.T) {
	kinds := make(map[string]bool)
	for _, name := range PresetNames {
		sc, err := Preset(name, 8, 42)
		if err != nil {
			t.Fatalf("Preset(%q): %v", name, err)
		}
		if err := sc.Validate(8); err != nil {
			t.Fatalf("Preset(%q) does not validate: %v", name, err)
		}
		for _, k := range sc.Kinds() {
			kinds[k] = true
		}
	}
	for _, want := range []string{"cpu-heterogeneity", "latency-ramp", "bandwidth-ramp", "jitter", "transient-slowdown", "phase-shift"} {
		if !kinds[want] {
			t.Errorf("no preset exercises perturbation kind %q", want)
		}
	}
	// Determinism: same (name, nodes, seed) -> same factors.
	a, _ := Preset("hetero", 8, 11)
	b, _ := Preset("hetero", 8, 11)
	for i := range a.CPUFactors {
		if a.CPUFactors[i] != b.CPUFactors[i] {
			t.Fatalf("hetero preset not deterministic at node %d", i)
		}
	}
	if _, err := Preset("bogus", 8, 1); err == nil {
		t.Error("Preset(bogus) should fail")
	}
}

func TestParseSpecs(t *testing.T) {
	if sc, err := Parse("none", 8, 1); err != nil || sc != nil {
		t.Errorf("Parse(none) = %v, %v; want nil, nil", sc, err)
	}
	sc, err := Parse("hetero, jitter", 8, 1)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	ks := sc.Kinds()
	if len(ks) != 2 {
		t.Errorf("merged spec kinds = %v, want cpu-heterogeneity + jitter", ks)
	}
	if _, err := Parse("hetero,bogus", 8, 1); err == nil {
		t.Error("Parse with unknown preset should fail")
	}
	// "+" is an alias separator for failure×arrival combos; the merged
	// scenario must match the comma spelling (modulo the display name).
	plus, err := Parse("crash+burst", 4, 7)
	if err != nil {
		t.Fatalf("Parse(crash+burst): %v", err)
	}
	comma, err := Parse("crash,burst", 4, 7)
	if err != nil {
		t.Fatalf("Parse(crash,burst): %v", err)
	}
	if plus.Arrivals == nil || comma.Arrivals == nil {
		t.Fatal("combo lost the burst arrival spec")
	}
	if len(plus.Crashes) != len(comma.Crashes) || len(plus.Crashes) == 0 {
		t.Errorf("combo crashes: + form %d, comma form %d", len(plus.Crashes), len(comma.Crashes))
	}
	if plus.Name != "crash+burst" {
		t.Errorf("combo name = %q, want original spec", plus.Name)
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	bad := []*Scenario{
		{CPUFactors: []float64{0}},
		{CPUFactors: []float64{1, 1, 1}},                       // 3 factors, 2 nodes
		{Ramps: []Ramp{{From: 0, To: 1}}},                      // zero factor
		{Ramps: []Ramp{{From: 1, To: 1, Start: 100, End: 50}}}, // inverted window
		{Slowdowns: []Slowdown{{Node: 5, At: 0, Duration: 1, Factor: 0.5}}},
		{Slowdowns: []Slowdown{{Node: 0, At: 0, Duration: 0, Factor: 0.5}}},
		{PhaseShifts: []PhaseShift{{At: -1}}},
	}
	for i, sc := range bad {
		if err := sc.Validate(2); err == nil {
			t.Errorf("bad scenario %d validated", i)
		}
	}
}

// TestSlowdownScalesNodeCPU drives a tiny two-node run and checks that the
// scheduled slowdown events actually change the resource speed.
func TestSlowdownScalesNodeCPU(t *testing.T) {
	k := gos.NewKernel(gos.Config{Nodes: 2, Net: network.DefaultConfig(), Costs: gos.DefaultCosts()})
	sc := &Scenario{
		Name:       "t",
		CPUFactors: []float64{1, 0.5},
		Slowdowns:  []Slowdown{{Node: 1, At: 10 * sim.Millisecond, Duration: 10 * sim.Millisecond, Factor: 0.5}},
	}
	var ph workload.Phase
	sc.Apply(k, &ph)
	cpu := k.Node(1).CPU()
	if got := cpu.Speed(); got != 0.5 {
		t.Fatalf("initial heterogeneous speed = %g, want 0.5", got)
	}
	var during, after float64
	k.Eng.Schedule(15*sim.Millisecond, func() { during = cpu.Speed() })
	k.Eng.Schedule(25*sim.Millisecond, func() { after = cpu.Speed() })
	k.Eng.Run()
	if during != 0.25 {
		t.Errorf("speed during slowdown = %g, want 0.25 (base 0.5 x factor 0.5)", during)
	}
	if after != 0.5 {
		t.Errorf("speed after recovery = %g, want base 0.5", after)
	}
}
