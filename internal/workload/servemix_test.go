package workload

import (
	"testing"

	"jessica2/internal/sim"
)

func TestServePercentileNearestRank(t *testing.T) {
	lat := make([]sim.Time, 100)
	for i := range lat {
		lat[i] = sim.Time(i+1) * sim.Microsecond
	}
	cases := []struct {
		q    float64
		want sim.Time
	}{
		{0.50, 50 * sim.Microsecond},
		{0.95, 95 * sim.Microsecond},
		{0.99, 99 * sim.Microsecond},
		{1.00, 100 * sim.Microsecond},
	}
	for _, c := range cases {
		if got := percentile(lat, c.q); got != c.want {
			t.Errorf("percentile(1..100us, %v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("percentile(empty) = %v, want 0", got)
	}
	one := []sim.Time{7 * sim.Microsecond}
	if got := percentile(one, 0.99); got != one[0] {
		t.Errorf("percentile(single, 0.99) = %v, want %v", got, one[0])
	}
}

// TestServeStatsIntoMidRun checks the mid-run view: arrivals counted by
// schedule position, completions by recorded latencies, in-flight the
// difference — the numbers the epoch snapshot surfaces while requests are
// still queued.
func TestServeStatsIntoMidRun(t *testing.T) {
	w := NewServeMix()
	w.SetSchedule([]sim.Time{
		1 * sim.Millisecond, 2 * sim.Millisecond,
		3 * sim.Millisecond, 10 * sim.Millisecond,
	})
	w.state.reset(4)
	w.state.record(100 * sim.Microsecond)
	w.state.record(300 * sim.Microsecond)

	st := w.ServeStatsInto(nil, 5*sim.Millisecond)
	if st.Arrived != 3 || st.Completed != 2 || st.InFlight != 1 {
		t.Fatalf("mid-run stats = arrived %d done %d inflight %d, want 3/2/1",
			st.Arrived, st.Completed, st.InFlight)
	}
	if st.LatencyP50 != 100*sim.Microsecond || st.LatencyMax != 300*sim.Microsecond {
		t.Fatalf("mid-run latency p50 %v max %v", st.LatencyP50, st.LatencyMax)
	}
	if st.GoodputPerSec != 400 { // 2 completions in 5 simulated ms
		t.Fatalf("goodput = %v, want 400/s", st.GoodputPerSec)
	}

	// Scratch reuse: a second fill into the same dst must not allocate a
	// fresh view or disturb the numbers.
	again := w.ServeStatsInto(st, 5*sim.Millisecond)
	if again != st || again.Completed != 2 {
		t.Fatal("ServeStatsInto did not reuse dst")
	}
}
