package workload

import (
	"fmt"
	"math"

	"jessica2/internal/gos"
	"jessica2/internal/heap"
	"jessica2/internal/sim"
	"jessica2/internal/stack"
	"jessica2/internal/xrand"
)

// BarnesHut is the hierarchical N-body simulation: an irregular sharing
// pattern with locality (invisible to page-based trackers), fine-grained
// object sharing (each body under 100 bytes) and moderate
// compute-intensiveness. Bodies form two galaxies separated by GalaxyDist;
// each thread owns a contiguous chunk of the body array, so threads of the
// same galaxy correlate strongly — the Fig. 1 block structure.
type BarnesHut struct {
	// NBodies and Rounds set the problem (paper: 4K bodies, 5 rounds).
	NBodies, Rounds int
	// Theta is the opening angle of the multipole acceptance test.
	Theta float64
	// GalaxyDist separates the two galaxy centers (paper: 7.0).
	GalaxyDist float64
	// LeafCap is the max bodies per octree leaf.
	LeafCap int
	// VisitCost is the virtual CPU charge per tree-node visit or body
	// interaction during force computation (calibrated to land a
	// single-thread 4K×5 run near the paper's ≈94 s Kaffe baseline).
	VisitCost sim.Time
	// InsertCost is the per-level charge during tree insertion.
	InsertCost sim.Time

	bodies []*bhBody
	roots  []*bhCell // one tree per round, built cooperatively
	// VisitsPerRound records thread 0's traversal visits (calibration).
	VisitsPerRound []int64
}

// NewBarnesHut returns the paper-scale configuration.
func NewBarnesHut() *BarnesHut {
	return &BarnesHut{
		NBodies: 4096, Rounds: 5, Theta: 0.6, GalaxyDist: 7.0, LeafCap: 8,
		VisitCost:  5200 * sim.Nanosecond,
		InsertCost: 2 * sim.Microsecond,
	}
}

// bhBody mirrors one Body object with its numeric state.
type bhBody struct {
	obj           *heap.Object // Body
	pos, vel, acc *heap.Object // Vect3 children
	x, y, z       float64
	vx, vy, vz    float64
	ax, ay, az    float64
	mass          float64
}

// bhCell is one octree node (internal Cell or Leaf).
type bhCell struct {
	obj              *heap.Object // Cell or Leaf object
	leaf             bool
	parent           *bhCell
	octIdx           int
	children         [8]*bhCell
	bodies           []*bhBody
	arr              *heap.Object // Leaf's Body[] element array
	cx, cy, cz, half float64
	mx, my, mz, mass float64
}

// Name implements Workload.
func (b *BarnesHut) Name() string { return "Barnes-Hut" }

// Characteristics implements Workload (Table I row).
func (b *BarnesHut) Characteristics() Characteristics {
	return Characteristics{
		Name:        "Barnes-Hut",
		DataSet:     fmt.Sprintf("%dK bodies", b.NBodies/1024),
		Rounds:      b.Rounds,
		Granularity: "Fine",
		ObjectSize:  "each body less than 100 bytes",
	}
}

// bhClasses bundles the registered classes (the Table IV roster).
type bhClasses struct {
	body, vect3, leaf, cell, bodyArr *heap.Class
}

func (b *BarnesHut) classes(k *gos.Kernel) bhClasses {
	reg := k.Reg
	cls := func(name string, def func() *heap.Class) *heap.Class {
		if c := reg.Class(name); c != nil {
			return c
		}
		return def()
	}
	return bhClasses{
		body:    cls("Body", func() *heap.Class { return reg.DefineClass("Body", 56, 3) }),
		vect3:   cls("Vect3", func() *heap.Class { return reg.DefineClass("Vect3", 32, 0) }),
		leaf:    cls("Leaf", func() *heap.Class { return reg.DefineClass("Leaf", 64, 1) }),
		cell:    cls("Cell", func() *heap.Class { return reg.DefineClass("Cell", 88, 8) }),
		bodyArr: cls("Body[]", func() *heap.Class { return reg.DefineArrayClass("Body[]", 4) }),
	}
}

const bhTreeLock = 1

// Launch implements Workload.
func (b *BarnesHut) Launch(k *gos.Kernel, p Params) {
	if b.LeafCap <= 0 {
		b.LeafCap = 8
	}
	cs := b.classes(k)
	placement := p.placement(k.NumNodes())
	parties := barrierParties(p)
	b.bodies = make([]*bhBody, b.NBodies)
	b.roots = make([]*bhCell, b.Rounds)
	b.VisitsPerRound = nil

	var globalArr *heap.Object

	mMain := &stack.Method{Name: "BarnesHut.run"}
	mBuild := &stack.Method{Name: "BarnesHut.buildTree"}
	mForces := &stack.Method{Name: "BarnesHut.computeForces"}
	mWalk := &stack.Method{Name: "BarnesHut.walk"}
	mUpdate := &stack.Method{Name: "BarnesHut.advance"}

	for tid := 0; tid < p.Threads; tid++ {
		tid := tid
		lo, hi := blockRange(b.NBodies, p.Threads, tid)
		rng := xrand.New(p.Seed).Derive(uint64(tid) + 101)
		k.SpawnThread(placement[tid], fmt.Sprintf("bh-%d", tid), func(t *gos.Thread) {
			main := t.Stack.Push(mMain, 4)
			if tid == 0 {
				globalArr = t.AllocArray(cs.bodyArr, b.NBodies)
				globalArr.Refs = make([]*heap.Object, b.NBodies)
				t.WriteElems(globalArr, b.NBodies)
			}
			// Init: each thread creates its chunk of bodies, so homes
			// distribute per the first-creator rule. Galaxy membership is
			// by array half.
			for i := lo; i < hi; i++ {
				bd := &bhBody{
					obj:  t.Alloc(cs.body),
					pos:  t.Alloc(cs.vect3),
					vel:  t.Alloc(cs.vect3),
					acc:  t.Alloc(cs.vect3),
					mass: 1.0 / float64(b.NBodies),
				}
				bd.obj.Refs[0], bd.obj.Refs[1], bd.obj.Refs[2] = bd.pos, bd.vel, bd.acc
				gx := -b.GalaxyDist / 2
				if i >= b.NBodies/2 {
					gx = b.GalaxyDist / 2
				}
				for {
					x, y, z := rng.Float64()*2-1, rng.Float64()*2-1, rng.Float64()*2-1
					if x*x+y*y+z*z <= 1 {
						bd.x, bd.y, bd.z = gx+x, y, z
						break
					}
				}
				bd.vx = (rng.Float64() - 0.5) * 0.05
				bd.vy = (rng.Float64() - 0.5) * 0.05
				bd.vz = (rng.Float64() - 0.5) * 0.05
				t.Write(bd.obj)
				t.Write(bd.pos)
				t.Write(bd.vel)
				b.bodies[i] = bd
			}
			main.SetRef(1, b.bodies[lo].obj)
			t.Barrier(0, parties)
			if tid == 0 {
				for i, bd := range b.bodies {
					globalArr.Refs[i] = bd.obj
				}
			}
			main.SetRef(0, globalArr)

			dt := 0.025
			for round := 0; round < b.Rounds; round++ {
				// --- tree build: each thread inserts its chunk under the
				// global tree lock (coarse-grained parallel build).
				bf := t.Stack.Push(mBuild, 2)
				t.Acquire(bhTreeLock)
				if b.roots[round] == nil {
					root := &bhCell{obj: t.Alloc(cs.cell), half: b.GalaxyDist/2 + 4}
					t.Write(root.obj)
					b.roots[round] = root
				}
				root := b.roots[round]
				bf.SetRef(0, root.obj)
				for i := lo; i < hi; i++ {
					bd := b.bodies[i]
					t.Read(bd.obj)
					t.Read(bd.pos)
					b.insert(t, root, bd, cs)
				}
				t.Release(bhTreeLock)
				t.Barrier(0, parties)
				t.Stack.Pop()
				root = b.roots[round]

				// --- centers of mass: thread 0 summarizes the tree.
				if tid == 0 {
					b.summarize(t, root)
				}
				t.Barrier(0, parties)

				// --- force computation over the owned chunk.
				ff := t.Stack.Push(mForces, 3)
				ff.SetRef(0, root.obj)
				ff.SetRef(1, globalArr)
				t.Read(globalArr)
				var visits int64
				for i := lo; i < hi; i++ {
					bd := b.bodies[i]
					t.Read(bd.obj)
					t.Read(bd.pos)
					bd.ax, bd.ay, bd.az = 0, 0, 0
					visits += b.walkForce(t, root, bd, mWalk)
					t.Write(bd.acc)
				}
				if tid == 0 {
					b.VisitsPerRound = append(b.VisitsPerRound, visits)
				}
				// Barrier inside the phase method: the forces frame (tree
				// root + body array refs) is live at the interval close.
				t.Barrier(0, parties)
				t.Stack.Pop()

				// --- advance positions (leapfrog).
				uf := t.Stack.Push(mUpdate, 1)
				uf.SetRef(0, b.bodies[lo].obj)
				for i := lo; i < hi; i++ {
					bd := b.bodies[i]
					bd.vx += bd.ax * dt
					bd.vy += bd.ay * dt
					bd.vz += bd.az * dt
					bd.x += bd.vx * dt
					bd.y += bd.vy * dt
					bd.z += bd.vz * dt
					t.Write(bd.pos)
					t.Write(bd.vel)
					t.Compute(200 * sim.Nanosecond)
				}
				t.Barrier(0, parties)
				t.Stack.Pop()
			}
			t.Stack.Pop()
		})
	}
}

// insert adds a body to the octree (called with the tree lock held).
func (b *BarnesHut) insert(t *gos.Thread, root *bhCell, bd *bhBody, cs bhClasses) {
	c := root
	depth := 0
	t.Read(c.obj)
	for {
		t.Charge(b.InsertCost)
		if c.leaf {
			c.bodies = append(c.bodies, bd)
			t.WriteElems(c.arr, 1)
			if len(c.bodies) > b.LeafCap && depth < 40 {
				b.split(t, c, cs, depth)
			}
			return
		}
		oct := octant(c, bd)
		child := c.children[oct]
		if child == nil {
			child = b.newLeaf(t, c, oct, cs)
		}
		t.Read(child.obj)
		c = child
		depth++
	}
}

// newLeaf creates a leaf child in the given octant of internal cell c.
func (b *BarnesHut) newLeaf(t *gos.Thread, c *bhCell, oct int, cs bhClasses) *bhCell {
	h := c.half / 2
	child := &bhCell{
		obj:    t.Alloc(cs.leaf),
		leaf:   true,
		parent: c,
		octIdx: oct,
		half:   h,
		cx:     c.cx + h*octSign(oct, 0),
		cy:     c.cy + h*octSign(oct, 1),
		cz:     c.cz + h*octSign(oct, 2),
	}
	child.arr = t.AllocArray(cs.bodyArr, b.LeafCap)
	child.obj.Refs[0] = child.arr
	c.children[oct] = child
	c.obj.Refs[oct] = child.obj
	t.Write(c.obj)
	t.Write(child.obj)
	return child
}

// split promotes an over-full leaf into an internal cell and redistributes
// its bodies one level down.
func (b *BarnesHut) split(t *gos.Thread, c *bhCell, cs bhClasses, depth int) {
	bodies := c.bodies
	c.bodies = nil
	c.leaf = false
	c.arr = nil
	old := c.obj
	c.obj = t.Alloc(cs.cell)
	if c.parent != nil {
		c.parent.obj.Refs[c.octIdx] = c.obj
		t.Write(c.parent.obj)
	}
	t.Read(old)
	t.Write(c.obj)
	for _, bd := range bodies {
		oct := octant(c, bd)
		child := c.children[oct]
		if child == nil {
			child = b.newLeaf(t, c, oct, cs)
		}
		child.bodies = append(child.bodies, bd)
		t.WriteElems(child.arr, 1)
		t.Charge(b.InsertCost)
		if len(child.bodies) > b.LeafCap && depth < 40 {
			b.split(t, child, cs, depth+1)
		}
	}
}

// octant picks the child octant for a body's position.
func octant(c *bhCell, bd *bhBody) int {
	oct := 0
	if bd.x >= c.cx {
		oct |= 1
	}
	if bd.y >= c.cy {
		oct |= 2
	}
	if bd.z >= c.cz {
		oct |= 4
	}
	return oct
}

func octSign(oct, axis int) float64 {
	if oct&(1<<axis) != 0 {
		return 1
	}
	return -1
}

// summarize computes centers of mass bottom-up.
func (b *BarnesHut) summarize(t *gos.Thread, c *bhCell) (mass, mx, my, mz float64) {
	t.Read(c.obj)
	t.Charge(400 * sim.Nanosecond)
	if c.leaf {
		for _, bd := range c.bodies {
			t.Read(bd.obj)
			t.Read(bd.pos)
			mass += bd.mass
			mx += bd.mass * bd.x
			my += bd.mass * bd.y
			mz += bd.mass * bd.z
		}
	} else {
		for _, ch := range c.children {
			if ch == nil {
				continue
			}
			m, x, y, z := b.summarize(t, ch)
			mass += m
			mx += x
			my += y
			mz += z
		}
	}
	c.mass = mass
	if mass > 0 {
		c.mx, c.my, c.mz = mx/mass, my/mass, mz/mass
	}
	t.Write(c.obj)
	return mass, mx, my, mz
}

// walkForce traverses the tree accumulating the body's acceleration,
// returning the number of node visits. Recursion pushes a transient shadow
// frame per level — the stack shape the paper's sampler contends with.
func (b *BarnesHut) walkForce(t *gos.Thread, c *bhCell, bd *bhBody, m *stack.Method) int64 {
	if c == nil || c.mass == 0 {
		return 0
	}
	var visits int64 = 1
	f := t.Stack.Push(m, 2)
	f.SetRef(0, c.obj)
	t.Read(c.obj)
	t.Charge(b.VisitCost)

	if c.leaf {
		if len(c.bodies) > 0 {
			t.Read(c.arr)
		}
		for _, ob := range c.bodies {
			if ob == bd {
				continue
			}
			t.Read(ob.obj)
			t.Read(ob.pos)
			t.Charge(b.VisitCost)
			visits++
			bd.applyGravity(ob.x, ob.y, ob.z, ob.mass)
		}
		t.Stack.Pop()
		return visits
	}
	dx, dy, dz := c.mx-bd.x, c.my-bd.y, c.mz-bd.z
	dist2 := dx*dx + dy*dy + dz*dz
	size := c.half * 2
	if dist2 > 0 && size*size/dist2 < b.Theta*b.Theta {
		// Far enough: use the aggregate center of mass.
		bd.applyGravity(c.mx, c.my, c.mz, c.mass)
		t.Stack.Pop()
		return visits
	}
	for _, ch := range c.children {
		if ch != nil {
			visits += b.walkForce(t, ch, bd, m)
		}
	}
	t.Stack.Pop()
	return visits
}

// applyGravity accumulates a softened gravitational pull on the body.
func (bd *bhBody) applyGravity(x, y, z, mass float64) {
	const eps2 = 0.0025
	dx, dy, dz := x-bd.x, y-bd.y, z-bd.z
	d2 := dx*dx + dy*dy + dz*dz + eps2
	inv := 1 / (d2 * math.Sqrt(d2))
	bd.ax += mass * dx * inv
	bd.ay += mass * dy * inv
	bd.az += mass * dz * inv
}
