package workload

import (
	"fmt"
	"sort"

	"jessica2/internal/gos"
	"jessica2/internal/heap"
	"jessica2/internal/sim"
	"jessica2/internal/stack"
	"jessica2/internal/xrand"
)

// ServeMix is the open-loop RPC/microservice request-serving workload:
// where every other workload in the package is closed-loop (a fixed thread
// pool iterating to completion, judged on wall-clock), ServeMix serves a
// request schedule that arrives whether or not the cluster keeps up — so
// queueing delay, goodput and tail latency become first-class outputs.
//
// The serving model is a 3-level fan-out call graph over shared heap
// objects: a frontend handler (level 1) updates the tenant's session
// object under a session lock stripe, then issues FanOut backend RPCs
// (level 2), each reading/writing entries of the tenant's cache partition
// through a store accessor (level 3) and occasionally the globally shared
// config object. Tenants are drawn zipf-skewed per request, and the hot
// window rotates every RotateEvery of virtual time, so the correlation
// churn the TCM sees is continuous — exactly the regime where one-shot
// placement goes stale.
//
// Requests are routed sticky per tenant to a primary/replica worker pair
// (primary by tenant hash, replica half the pool away), so every hot
// session and cache object has at least two accessor threads — giving the
// correlation tracker real cross-thread, and under blocked placement
// cross-node, affinity to discover. All shared objects are allocated by
// worker 0 during bootstrap (the usual "loader initializes the cache"
// shape), so initial homes are centralized on node 0 and placement quality
// is entirely up to the policy.
//
// The arrival schedule is injected (SetSchedule) rather than generated
// here: scenario.Arrivals owns schedule generation, the session layer (or
// the caller) hands the materialized times over, and the workload stays
// deterministic — same seed and schedule, byte-identical run.
type ServeMix struct {
	// Tenants is the number of distinct tenants; each owns one session
	// object and CachePerTenant cache entries of ValueSize bytes.
	Tenants, CachePerTenant, ValueSize int
	// FanOut is the number of backend RPCs per request (call-graph width).
	FanOut int
	// ZipfS is the tenant skew exponent (>1; near 1 = heavy skew).
	ZipfS float64
	// WriteFraction in [0,1] is the share of cache operations that write.
	WriteFraction float64
	// FrontCost and BackendCost are the per-stage compute charges.
	FrontCost, BackendCost sim.Time
	// RotateEvery shifts the hot tenant window by HotSpan tenants each
	// period (0 freezes the hot set).
	RotateEvery sim.Time
	HotSpan     int
	// Locks is the session lock stripe count.
	Locks int

	// Robust, when non-nil, routes serving through the request-lifecycle
	// robustness layer (deadlines, shedding, retries, hedging, circuit
	// breakers — see RobustConfig in robust.go) instead of the static
	// precomputed schedule. Nil keeps the classic path byte-identical.
	Robust *RobustConfig
	// SLO, when > 0 with Robust nil, enables within-SLO accounting
	// (ServeStats.CompletedInSLO / SLOGoodputPerSec) without changing any
	// serving behavior — reporting only, for comparing an unprotected run
	// against protected ones at the same target. Ignored when Robust is
	// set (Robust.Deadline is the SLO then).
	SLO sim.Time

	schedule []sim.Time // injected arrival schedule, sorted ascending
	tenant   []int32    // per-request tenant draw, precomputed at Launch

	sessions []*heap.Object
	caches   []*heap.Object
	config   *heap.Object

	state serveState
}

// NewServeMix returns the default request-serving instance (tenants sized
// for an 8-worker pool; pair it with a scenario arrival preset).
func NewServeMix() *ServeMix {
	return &ServeMix{
		Tenants: 256, CachePerTenant: 4, ValueSize: 256,
		FanOut:        3,
		ZipfS:         1.2,
		WriteFraction: 0.3,
		FrontCost:     2 * sim.Microsecond,
		BackendCost:   4 * sim.Microsecond,
		RotateEvery:   250 * sim.Millisecond,
		HotSpan:       64,
		Locks:         64,
	}
}

// Name implements Workload.
func (w *ServeMix) Name() string { return "ServeMix" }

// Characteristics implements Workload.
func (w *ServeMix) Characteristics() Characteristics {
	return Characteristics{
		Name:        "ServeMix",
		DataSet:     fmt.Sprintf("%d tenants x %d entries x %dB", w.Tenants, w.CachePerTenant+1, w.ValueSize),
		Rounds:      1,
		Granularity: "Fine",
		ObjectSize:  fmt.Sprintf("%d bytes", w.ValueSize),
	}
}

// SetSchedule installs the open-loop arrival schedule (sorted virtual
// times, normally from scenario.Arrivals.Schedule). Must precede Launch.
func (w *ServeMix) SetSchedule(s []sim.Time) { w.schedule = s }

// HasSchedule reports whether an arrival schedule was installed.
func (w *ServeMix) HasSchedule() bool { return w.schedule != nil }

// serveLockBase keeps ServeMix lock ids clear of other workloads' ranges.
const serveLockBase = 11000

// hotBase is the rotating offset added to zipf tenant draws at arrival
// time at: the hot set advances HotSpan tenants every RotateEvery.
func (w *ServeMix) hotBase(at sim.Time) int {
	if w.RotateEvery <= 0 {
		return 0
	}
	return int(at/w.RotateEvery) * w.HotSpan
}

// Launch implements Workload. It panics without a schedule: an open-loop
// workload with no arrivals is a spec error, caught at launch rather than
// hanging the run.
func (w *ServeMix) Launch(k *gos.Kernel, p Params) {
	if w.schedule == nil {
		panic("workload: ServeMix launched without an arrival schedule (SetSchedule or Scenario.Arrivals)")
	}
	if w.Locks <= 0 {
		w.Locks = 1
	}
	if w.CachePerTenant <= 0 {
		w.CachePerTenant = 1
	}
	reg := k.Reg
	setup := &serveSetup{
		mHandle: &stack.Method{Name: "ServeMix.handle"},
		mRPC:    &stack.Method{Name: "ServeMix.rpc"},
		mStore:  &stack.Method{Name: "ServeMix.store"},
	}
	setup.sessClass = reg.Class("ServeSession")
	if setup.sessClass == nil {
		// Ref 0 chains sessions for the sticky-set resolver; ref 1 points
		// at the tenant's first cache entry.
		setup.sessClass = reg.DefineClass("ServeSession", w.ValueSize, 2)
	}
	setup.cacheClass = reg.Class("ServeCache")
	if setup.cacheClass == nil {
		setup.cacheClass = reg.DefineClass("ServeCache", w.ValueSize, 1)
	}
	setup.confClass = reg.Class("ServeConfig")
	if setup.confClass == nil {
		setup.confClass = reg.DefineClass("ServeConfig", 64, 0)
	}
	w.sessions = make([]*heap.Object, w.Tenants)
	w.caches = make([]*heap.Object, w.Tenants*w.CachePerTenant)
	w.state.reset(len(w.schedule))
	if w.Robust != nil {
		w.state.slo = w.Robust.Deadline
	} else {
		w.state.slo = w.SLO
	}

	// Per-request tenant draws: zipf rank over the rotating hot window,
	// a pure function of (seed, schedule).
	zipf := xrand.NewZipf(xrand.New(p.Seed).Derive(771), w.ZipfS, w.Tenants)
	w.tenant = make([]int32, len(w.schedule))
	for i, at := range w.schedule {
		w.tenant[i] = int32((w.hotBase(at) + zipf.Rank()) % w.Tenants)
	}

	setup.placement = p.placement(k.NumNodes())
	setup.parties = barrierParties(p)

	if w.Robust != nil {
		w.launchRobust(k, p, setup)
		return
	}

	// Sticky tenant routing: primary worker by tenant hash, replica half
	// the pool away (cross-node under blocked placement), alternating by
	// request parity — every tenant's objects get two accessor threads.
	half := p.Threads / 2
	if half == 0 {
		half = 1
	}
	byWorker := make([][]int, p.Threads)
	for i := range w.schedule {
		worker := int(w.tenant[i]) % p.Threads
		if i&1 == 1 {
			worker = (worker + half) % p.Threads
		}
		byWorker[worker] = append(byWorker[worker], i)
	}

	for tid := 0; tid < p.Threads; tid++ {
		tid := tid
		reqs := byWorker[tid]
		rng := xrand.New(p.Seed).Derive(uint64(tid) + 6211)
		k.SpawnThread(setup.placement[tid], fmt.Sprintf("serve-%d", tid), func(t *gos.Thread) {
			if tid == 0 {
				w.bootstrap(t, setup)
			}
			t.Barrier(0, setup.parties)

			for _, i := range reqs {
				at := w.schedule[i]
				t.SleepUntil(at)
				w.serveOne(t, rng, int(w.tenant[i]), setup)
				w.state.record(t.Now() - at)
			}
		})
	}
}

// serveSetup carries the launch-time wiring shared by the static and
// robust serving paths: object classes, call-graph methods, thread
// placement and the bootstrap barrier width.
type serveSetup struct {
	sessClass, cacheClass, confClass *heap.Class
	mHandle, mRPC, mStore            *stack.Method
	placement                        []int
	parties                          int
}

// bootstrap is worker 0's loader phase: every session and cache entry is
// allocated here, so all homes start on its node — the centralized
// placement the policy exists to fix.
func (w *ServeMix) bootstrap(t *gos.Thread, s *serveSetup) {
	var prev *heap.Object
	for i := 0; i < w.Tenants; i++ {
		o := t.Alloc(s.sessClass)
		if prev != nil {
			prev.Refs[0] = o
		}
		prev = o
		w.sessions[i] = o
		t.Write(o)
		for c := 0; c < w.CachePerTenant; c++ {
			e := t.Alloc(s.cacheClass)
			if c == 0 {
				o.Refs[1] = e
			}
			w.caches[i*w.CachePerTenant+c] = e
			t.Write(e)
		}
	}
	w.config = t.Alloc(s.confClass)
	t.Write(w.config)
}

// serveOne executes one request's 3-level call graph on the calling worker
// thread: frontend handler under the tenant's session lock, FanOut backend
// RPCs against the tenant's cache partition, session write-back. Both
// serving paths run requests through this body, so the robust layer serves
// exactly the work the static path does.
func (w *ServeMix) serveOne(t *gos.Thread, rng *xrand.Rand, tenant int, s *serveSetup) {
	sess := w.sessions[tenant]

	f := t.Stack.Push(s.mHandle, 1)
	f.SetRef(0, sess)
	t.Acquire(serveLockBase + tenant%w.Locks)
	t.Read(sess)
	t.Compute(w.FrontCost)
	for b := 0; b < w.FanOut; b++ {
		fr := t.Stack.Push(s.mRPC, 1)
		idx := tenant*w.CachePerTenant + rng.Intn(w.CachePerTenant)
		entry := w.caches[idx]
		fr.SetRef(0, entry)
		st := t.Stack.Push(s.mStore, 1)
		st.SetRef(0, entry)
		if rng.Float64() < w.WriteFraction {
			t.Write(entry)
		} else {
			t.Read(entry)
		}
		if rng.Float64() < 0.05 {
			t.Read(w.config) // shared config refresh
		}
		t.Stack.Pop()
		t.Compute(w.BackendCost)
		t.Stack.Pop()
	}
	t.Write(sess) // session state update
	t.Release(serveLockBase + tenant%w.Locks)
	t.Stack.Pop()
}

// ValidateServing lets the session layer reject a bad robustness config at
// Launch time instead of panicking mid-run.
func (w *ServeMix) ValidateServing() error {
	if w.Robust == nil {
		return nil
	}
	return w.Robust.Validate()
}

// --- open-loop serving statistics -------------------------------------------

// ServeStats is the open-loop serving view surfaced in epoch snapshots:
// request progress, in-flight depth, goodput, and tail latency measured on
// the simulated clock (arrival to completion, so queueing delay counts).
//
// Percentile semantics under the robustness layer: requests that never
// complete — shed at admission, failed fast with no live replica, or
// censored by their deadline — enter the latency distribution at the
// deadline value (right-censoring at the SLO). P50/P95/P99 and LatencyMax
// therefore rank over Completed + Shed + FailedFast + DeadlineExceeded
// samples, with every non-completion counting as a deadline-priced miss;
// a protected run cannot make its tail look better by dropping requests.
// With the layer off nothing is censored and the percentiles rank over
// completions only, exactly as before.
type ServeStats struct {
	// Arrived counts requests whose scheduled arrival is <= now; Completed
	// counts requests served; InFlight is the backlog (queued + in
	// service) at now, excluding requests already shed/failed/expired.
	Arrived, Completed, InFlight int
	// GoodputPerSec is completed requests per simulated second so far.
	GoodputPerSec float64
	// Latency percentiles (nearest-rank) and maximum, on the simulated
	// clock, over completions plus censored non-completions (see above).
	LatencyP50, LatencyP95, LatencyP99, LatencyMax sim.Time

	// Robust reports whether the robustness layer was on; the fields below
	// are only populated (and only printed) when it is, except the SLO
	// pair which also fills under reporting-only ServeMix.SLO.
	Robust bool
	// CompletedInSLO counts completions within the deadline/SLO;
	// SLOGoodputPerSec is that count per simulated second (goodput that
	// actually met the target — the headline robustness metric).
	CompletedInSLO   int
	SLOGoodputPerSec float64
	// Shed requests were rejected at admission (capacity exceeded);
	// DeadlineExceeded were censored by their deadline; FailedFast had no
	// admissible worker (all breakers open) and no retries left.
	Shed, DeadlineExceeded, FailedFast int64
	// Retried and Hedged count extra dispatches; HedgeWins are requests
	// whose hedge finished first. Rerouted counts dispatches steered off
	// the sticky pair by an open breaker (including crash-time
	// re-dispatches of stranded queued work); BreakerOpens counts
	// closed/half-open -> open transitions. Wasted counts attempt
	// completions that arrived after their request was already decided.
	Retried, Hedged, HedgeWins, Rerouted, BreakerOpens, Wasted int64
}

func (s *ServeStats) String() string {
	if !s.Robust {
		return fmt.Sprintf("arrived %d done %d inflight %d goodput %.0f/s p50 %v p95 %v p99 %v max %v",
			s.Arrived, s.Completed, s.InFlight, s.GoodputPerSec,
			s.LatencyP50, s.LatencyP95, s.LatencyP99, s.LatencyMax)
	}
	return fmt.Sprintf("arrived %d done %d inflight %d goodput %.0f/s p50 %v p95 %v p99 %v max %v | slo-goodput %.0f/s in-slo %d shed %d expired %d failed %d retried %d hedged %d hedge-wins %d rerouted %d breaker-opens %d wasted %d",
		s.Arrived, s.Completed, s.InFlight, s.GoodputPerSec,
		s.LatencyP50, s.LatencyP95, s.LatencyP99, s.LatencyMax,
		s.SLOGoodputPerSec, s.CompletedInSLO,
		s.Shed, s.DeadlineExceeded, s.FailedFast,
		s.Retried, s.Hedged, s.HedgeWins, s.Rerouted, s.BreakerOpens, s.Wasted)
}

// serveState accumulates completions; recording appends in completion
// order, percentile queries sort a reusable scratch copy. The robust
// counters and the censor ledger stay zero on the static path, keeping
// the off-layer stats byte-identical.
type serveState struct {
	latencies []sim.Time
	scratch   []sim.Time
	maxLat    sim.Time

	slo       sim.Time // within-SLO accounting bound; 0 disables
	inSLO     int
	censored  int      // non-completions priced into the distribution
	censorLat sim.Time // the value they enter at (the deadline)

	shed, expired, failedFast                          int64
	retried, hedged, hedgeWins, rerouted, breakerOpens int64
	wasted                                             int64
}

func (st *serveState) reset(capacity int) {
	*st = serveState{latencies: make([]sim.Time, 0, capacity)}
}

func (st *serveState) record(lat sim.Time) {
	if lat < 0 {
		lat = 0
	}
	st.latencies = append(st.latencies, lat)
	if lat > st.maxLat {
		st.maxLat = lat
	}
	if st.slo > 0 && lat <= st.slo {
		st.inSLO++
	}
}

// censor prices a non-completion (shed, expired, failed-fast) into the
// latency distribution at the deadline.
func (st *serveState) censor(at sim.Time) {
	st.censored++
	st.censorLat = at
}

// percentile returns the nearest-rank q-th percentile of sorted.
func percentile(sorted []sim.Time, q float64) sim.Time {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.9999999) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// censoredPercentile is percentile over the conceptual distribution of
// len(sorted) completion samples plus `censored` samples pinned at
// censorLat. Censored samples sit at the top of the ranking: the robust
// layer's deadline event wins same-timestamp ties against serving
// completions (it is scheduled at arrival, so its sequence number is
// lower), which guarantees every recorded completion is strictly below
// the deadline. With censored == 0 this is exactly percentile().
func censoredPercentile(sorted []sim.Time, censored int, censorLat sim.Time, q float64) sim.Time {
	n := len(sorted) + censored
	if n == 0 {
		return 0
	}
	idx := int(q*float64(n)+0.9999999) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	if idx >= len(sorted) {
		return censorLat
	}
	return sorted[idx]
}

// ServeStatsInto fills dst (allocating when nil) with the serving view as
// of virtual time now. The sort scratch is reused across calls, so the
// boundary snapshot path allocates only on growth.
func (w *ServeMix) ServeStatsInto(dst *ServeStats, now sim.Time) *ServeStats {
	if dst == nil {
		dst = &ServeStats{}
	}
	st := &w.state
	arrived := sort.Search(len(w.schedule), func(i int) bool { return w.schedule[i] > now })
	done := len(st.latencies)
	*dst = ServeStats{
		Arrived:    arrived,
		Completed:  done,
		InFlight:   arrived - done - st.censored,
		LatencyMax: st.maxLat,
		Robust:     w.Robust != nil,
	}
	if dst.Robust {
		dst.Shed = st.shed
		dst.DeadlineExceeded = st.expired
		dst.FailedFast = st.failedFast
		dst.Retried = st.retried
		dst.Hedged = st.hedged
		dst.HedgeWins = st.hedgeWins
		dst.Rerouted = st.rerouted
		dst.BreakerOpens = st.breakerOpens
		dst.Wasted = st.wasted
	}
	if st.slo > 0 {
		dst.CompletedInSLO = st.inSLO
		if now > 0 {
			dst.SLOGoodputPerSec = float64(st.inSLO) / now.Seconds()
		}
	}
	if st.censored > 0 && st.censorLat > dst.LatencyMax {
		dst.LatencyMax = st.censorLat
	}
	if done+st.censored == 0 {
		return dst
	}
	if now > 0 && done > 0 {
		dst.GoodputPerSec = float64(done) / now.Seconds()
	}
	if cap(st.scratch) < done {
		st.scratch = make([]sim.Time, done)
	}
	s := st.scratch[:done]
	copy(s, st.latencies)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	dst.LatencyP50 = censoredPercentile(s, st.censored, st.censorLat, 0.50)
	dst.LatencyP95 = censoredPercentile(s, st.censored, st.censorLat, 0.95)
	dst.LatencyP99 = censoredPercentile(s, st.censored, st.censorLat, 0.99)
	return dst
}

// OpenLoop is implemented by workloads driven by an external arrival
// schedule instead of a closed iteration loop. The session layer uses it
// to install scenario-generated schedules at launch and to surface serving
// statistics in epoch snapshots.
type OpenLoop interface {
	Workload
	SetSchedule([]sim.Time)
	HasSchedule() bool
	ServeStatsInto(dst *ServeStats, now sim.Time) *ServeStats
}

var _ OpenLoop = (*ServeMix)(nil)
