package workload

import (
	"fmt"
	"sort"

	"jessica2/internal/gos"
	"jessica2/internal/heap"
	"jessica2/internal/sim"
	"jessica2/internal/stack"
	"jessica2/internal/xrand"
)

// ServeMix is the open-loop RPC/microservice request-serving workload:
// where every other workload in the package is closed-loop (a fixed thread
// pool iterating to completion, judged on wall-clock), ServeMix serves a
// request schedule that arrives whether or not the cluster keeps up — so
// queueing delay, goodput and tail latency become first-class outputs.
//
// The serving model is a 3-level fan-out call graph over shared heap
// objects: a frontend handler (level 1) updates the tenant's session
// object under a session lock stripe, then issues FanOut backend RPCs
// (level 2), each reading/writing entries of the tenant's cache partition
// through a store accessor (level 3) and occasionally the globally shared
// config object. Tenants are drawn zipf-skewed per request, and the hot
// window rotates every RotateEvery of virtual time, so the correlation
// churn the TCM sees is continuous — exactly the regime where one-shot
// placement goes stale.
//
// Requests are routed sticky per tenant to a primary/replica worker pair
// (primary by tenant hash, replica half the pool away), so every hot
// session and cache object has at least two accessor threads — giving the
// correlation tracker real cross-thread, and under blocked placement
// cross-node, affinity to discover. All shared objects are allocated by
// worker 0 during bootstrap (the usual "loader initializes the cache"
// shape), so initial homes are centralized on node 0 and placement quality
// is entirely up to the policy.
//
// The arrival schedule is injected (SetSchedule) rather than generated
// here: scenario.Arrivals owns schedule generation, the session layer (or
// the caller) hands the materialized times over, and the workload stays
// deterministic — same seed and schedule, byte-identical run.
type ServeMix struct {
	// Tenants is the number of distinct tenants; each owns one session
	// object and CachePerTenant cache entries of ValueSize bytes.
	Tenants, CachePerTenant, ValueSize int
	// FanOut is the number of backend RPCs per request (call-graph width).
	FanOut int
	// ZipfS is the tenant skew exponent (>1; near 1 = heavy skew).
	ZipfS float64
	// WriteFraction in [0,1] is the share of cache operations that write.
	WriteFraction float64
	// FrontCost and BackendCost are the per-stage compute charges.
	FrontCost, BackendCost sim.Time
	// RotateEvery shifts the hot tenant window by HotSpan tenants each
	// period (0 freezes the hot set).
	RotateEvery sim.Time
	HotSpan     int
	// Locks is the session lock stripe count.
	Locks int

	schedule []sim.Time // injected arrival schedule, sorted ascending
	tenant   []int32    // per-request tenant draw, precomputed at Launch

	sessions []*heap.Object
	caches   []*heap.Object
	config   *heap.Object

	state serveState
}

// NewServeMix returns the default request-serving instance (tenants sized
// for an 8-worker pool; pair it with a scenario arrival preset).
func NewServeMix() *ServeMix {
	return &ServeMix{
		Tenants: 256, CachePerTenant: 4, ValueSize: 256,
		FanOut:        3,
		ZipfS:         1.2,
		WriteFraction: 0.3,
		FrontCost:     2 * sim.Microsecond,
		BackendCost:   4 * sim.Microsecond,
		RotateEvery:   250 * sim.Millisecond,
		HotSpan:       64,
		Locks:         64,
	}
}

// Name implements Workload.
func (w *ServeMix) Name() string { return "ServeMix" }

// Characteristics implements Workload.
func (w *ServeMix) Characteristics() Characteristics {
	return Characteristics{
		Name:        "ServeMix",
		DataSet:     fmt.Sprintf("%d tenants x %d entries x %dB", w.Tenants, w.CachePerTenant+1, w.ValueSize),
		Rounds:      1,
		Granularity: "Fine",
		ObjectSize:  fmt.Sprintf("%d bytes", w.ValueSize),
	}
}

// SetSchedule installs the open-loop arrival schedule (sorted virtual
// times, normally from scenario.Arrivals.Schedule). Must precede Launch.
func (w *ServeMix) SetSchedule(s []sim.Time) { w.schedule = s }

// HasSchedule reports whether an arrival schedule was installed.
func (w *ServeMix) HasSchedule() bool { return w.schedule != nil }

// serveLockBase keeps ServeMix lock ids clear of other workloads' ranges.
const serveLockBase = 11000

// hotBase is the rotating offset added to zipf tenant draws at arrival
// time at: the hot set advances HotSpan tenants every RotateEvery.
func (w *ServeMix) hotBase(at sim.Time) int {
	if w.RotateEvery <= 0 {
		return 0
	}
	return int(at/w.RotateEvery) * w.HotSpan
}

// Launch implements Workload. It panics without a schedule: an open-loop
// workload with no arrivals is a spec error, caught at launch rather than
// hanging the run.
func (w *ServeMix) Launch(k *gos.Kernel, p Params) {
	if w.schedule == nil {
		panic("workload: ServeMix launched without an arrival schedule (SetSchedule or Scenario.Arrivals)")
	}
	if w.Locks <= 0 {
		w.Locks = 1
	}
	if w.CachePerTenant <= 0 {
		w.CachePerTenant = 1
	}
	reg := k.Reg
	sessClass := reg.Class("ServeSession")
	if sessClass == nil {
		// Ref 0 chains sessions for the sticky-set resolver; ref 1 points
		// at the tenant's first cache entry.
		sessClass = reg.DefineClass("ServeSession", w.ValueSize, 2)
	}
	cacheClass := reg.Class("ServeCache")
	if cacheClass == nil {
		cacheClass = reg.DefineClass("ServeCache", w.ValueSize, 1)
	}
	confClass := reg.Class("ServeConfig")
	if confClass == nil {
		confClass = reg.DefineClass("ServeConfig", 64, 0)
	}
	w.sessions = make([]*heap.Object, w.Tenants)
	w.caches = make([]*heap.Object, w.Tenants*w.CachePerTenant)
	w.state.reset(len(w.schedule))

	// Per-request tenant draws: zipf rank over the rotating hot window,
	// a pure function of (seed, schedule).
	zipf := xrand.NewZipf(xrand.New(p.Seed).Derive(771), w.ZipfS, w.Tenants)
	w.tenant = make([]int32, len(w.schedule))
	for i, at := range w.schedule {
		w.tenant[i] = int32((w.hotBase(at) + zipf.Rank()) % w.Tenants)
	}

	// Sticky tenant routing: primary worker by tenant hash, replica half
	// the pool away (cross-node under blocked placement), alternating by
	// request parity — every tenant's objects get two accessor threads.
	half := p.Threads / 2
	if half == 0 {
		half = 1
	}
	byWorker := make([][]int, p.Threads)
	for i := range w.schedule {
		worker := int(w.tenant[i]) % p.Threads
		if i&1 == 1 {
			worker = (worker + half) % p.Threads
		}
		byWorker[worker] = append(byWorker[worker], i)
	}

	placement := p.placement(k.NumNodes())
	parties := barrierParties(p)

	mHandle := &stack.Method{Name: "ServeMix.handle"}
	mRPC := &stack.Method{Name: "ServeMix.rpc"}
	mStore := &stack.Method{Name: "ServeMix.store"}

	for tid := 0; tid < p.Threads; tid++ {
		tid := tid
		reqs := byWorker[tid]
		rng := xrand.New(p.Seed).Derive(uint64(tid) + 6211)
		k.SpawnThread(placement[tid], fmt.Sprintf("serve-%d", tid), func(t *gos.Thread) {
			// Bootstrap: worker 0 loads every session and cache entry, so
			// all homes start on its node — the centralized placement the
			// closed-loop policy exists to fix.
			if tid == 0 {
				var prev *heap.Object
				for i := 0; i < w.Tenants; i++ {
					o := t.Alloc(sessClass)
					if prev != nil {
						prev.Refs[0] = o
					}
					prev = o
					w.sessions[i] = o
					t.Write(o)
					for c := 0; c < w.CachePerTenant; c++ {
						e := t.Alloc(cacheClass)
						if c == 0 {
							o.Refs[1] = e
						}
						w.caches[i*w.CachePerTenant+c] = e
						t.Write(e)
					}
				}
				w.config = t.Alloc(confClass)
				t.Write(w.config)
			}
			t.Barrier(0, parties)

			for _, i := range reqs {
				at := w.schedule[i]
				t.SleepUntil(at)
				tenant := int(w.tenant[i])
				sess := w.sessions[tenant]

				f := t.Stack.Push(mHandle, 1)
				f.SetRef(0, sess)
				t.Acquire(serveLockBase + tenant%w.Locks)
				t.Read(sess)
				t.Compute(w.FrontCost)
				for b := 0; b < w.FanOut; b++ {
					fr := t.Stack.Push(mRPC, 1)
					idx := tenant*w.CachePerTenant + rng.Intn(w.CachePerTenant)
					entry := w.caches[idx]
					fr.SetRef(0, entry)
					st := t.Stack.Push(mStore, 1)
					st.SetRef(0, entry)
					if rng.Float64() < w.WriteFraction {
						t.Write(entry)
					} else {
						t.Read(entry)
					}
					if rng.Float64() < 0.05 {
						t.Read(w.config) // shared config refresh
					}
					t.Stack.Pop()
					t.Compute(w.BackendCost)
					t.Stack.Pop()
				}
				t.Write(sess) // session state update
				t.Release(serveLockBase + tenant%w.Locks)
				t.Stack.Pop()

				w.state.record(t.Now() - at)
			}
		})
	}
}

// --- open-loop serving statistics -------------------------------------------

// ServeStats is the open-loop serving view surfaced in epoch snapshots:
// request progress, in-flight depth, goodput, and tail latency measured on
// the simulated clock (arrival to completion, so queueing delay counts).
type ServeStats struct {
	// Arrived counts requests whose scheduled arrival is <= now; Completed
	// counts requests served; InFlight is the backlog (queued + in
	// service) at now.
	Arrived, Completed, InFlight int
	// GoodputPerSec is completed requests per simulated second so far.
	GoodputPerSec float64
	// Latency percentiles (nearest-rank) and maximum over all completed
	// requests, on the simulated clock.
	LatencyP50, LatencyP95, LatencyP99, LatencyMax sim.Time
}

func (s *ServeStats) String() string {
	return fmt.Sprintf("arrived %d done %d inflight %d goodput %.0f/s p50 %v p95 %v p99 %v max %v",
		s.Arrived, s.Completed, s.InFlight, s.GoodputPerSec,
		s.LatencyP50, s.LatencyP95, s.LatencyP99, s.LatencyMax)
}

// serveState accumulates completions; recording appends in completion
// order, percentile queries sort a reusable scratch copy.
type serveState struct {
	latencies []sim.Time
	scratch   []sim.Time
	maxLat    sim.Time
}

func (st *serveState) reset(capacity int) {
	st.latencies = make([]sim.Time, 0, capacity)
	st.scratch = nil
	st.maxLat = 0
}

func (st *serveState) record(lat sim.Time) {
	if lat < 0 {
		lat = 0
	}
	st.latencies = append(st.latencies, lat)
	if lat > st.maxLat {
		st.maxLat = lat
	}
}

// percentile returns the nearest-rank q-th percentile of sorted.
func percentile(sorted []sim.Time, q float64) sim.Time {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.9999999) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// ServeStatsInto fills dst (allocating when nil) with the serving view as
// of virtual time now. The sort scratch is reused across calls, so the
// boundary snapshot path allocates only on growth.
func (w *ServeMix) ServeStatsInto(dst *ServeStats, now sim.Time) *ServeStats {
	if dst == nil {
		dst = &ServeStats{}
	}
	arrived := sort.Search(len(w.schedule), func(i int) bool { return w.schedule[i] > now })
	done := len(w.state.latencies)
	*dst = ServeStats{
		Arrived:    arrived,
		Completed:  done,
		InFlight:   arrived - done,
		LatencyMax: w.state.maxLat,
	}
	if done == 0 {
		return dst
	}
	if now > 0 {
		dst.GoodputPerSec = float64(done) / now.Seconds()
	}
	if cap(w.state.scratch) < done {
		w.state.scratch = make([]sim.Time, done)
	}
	s := w.state.scratch[:done]
	copy(s, w.state.latencies)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	dst.LatencyP50 = percentile(s, 0.50)
	dst.LatencyP95 = percentile(s, 0.95)
	dst.LatencyP99 = percentile(s, 0.99)
	return dst
}

// OpenLoop is implemented by workloads driven by an external arrival
// schedule instead of a closed iteration loop. The session layer uses it
// to install scenario-generated schedules at launch and to surface serving
// statistics in epoch snapshots.
type OpenLoop interface {
	Workload
	SetSchedule([]sim.Time)
	HasSchedule() bool
	ServeStatsInto(dst *ServeStats, now sim.Time) *ServeStats
}

var _ OpenLoop = (*ServeMix)(nil)
