package workload

import (
	"fmt"

	"jessica2/internal/gos"
	"jessica2/internal/heap"
	"jessica2/internal/sim"
	"jessica2/internal/stack"
)

// LU is the SPLASH-2 blocked dense LU factorization kernel: the matrix is
// split into B×B blocks scattered over a 2D thread grid, and every
// elimination step runs three barrier-separated phases (diagonal
// factorization, perimeter update, interior update). The pattern is
// regular and strongly barrier-heavy — 3 barriers per step, nb steps — with
// coarse object granularity (one double[] per block), which makes it the
// scenario engine's best probe for CPU heterogeneity and transient
// slowdowns: one slow node stalls every barrier.
type LU struct {
	// N is the matrix dimension and Block the block size (paper-era
	// SPLASH-2 default: 512×512 with 16×16 blocks).
	N, Block int
	// ElemCost is the virtual CPU charge per element update (one
	// multiply-subtract of the inner daxpy).
	ElemCost sim.Time

	blocks [][]*heap.Object // nb × nb shared blocks
}

// NewLU returns the SPLASH-2 default configuration.
func NewLU() *LU {
	return &LU{N: 512, Block: 16, ElemCost: 90 * sim.Nanosecond}
}

// NewLUSmall returns a quick-run configuration for tests and examples.
func NewLUSmall() *LU {
	return &LU{N: 128, Block: 16, ElemCost: 90 * sim.Nanosecond}
}

// Name implements Workload.
func (l *LU) Name() string { return "LU" }

// Characteristics implements Workload.
func (l *LU) Characteristics() Characteristics {
	return Characteristics{
		Name:        "LU",
		DataSet:     fmt.Sprintf("%dx%d, %dx%d blocks", l.N, l.N, l.Block, l.Block),
		Rounds:      l.nb(),
		Granularity: "Coarse",
		ObjectSize:  fmt.Sprintf("%d-byte blocks", l.Block*l.Block*8),
	}
}

// nb is the block count per dimension.
func (l *LU) nb() int {
	nb := l.N / l.Block
	if nb < 1 {
		nb = 1
	}
	return nb
}

// Blocks exposes the allocated block matrix after Launch (for tests).
func (l *LU) Blocks() [][]*heap.Object { return l.blocks }

// threadGrid factors the thread count into the most square pr×pc grid with
// pr*pc == threads (SPLASH-2's 2D scatter decomposition).
func threadGrid(threads int) (pr, pc int) {
	pr = 1
	for d := 1; d*d <= threads; d++ {
		if threads%d == 0 {
			pr = d
		}
	}
	return pr, threads / pr
}

// Launch implements Workload.
func (l *LU) Launch(k *gos.Kernel, p Params) {
	if l.Block <= 0 {
		l.Block = 16
	}
	if l.ElemCost <= 0 {
		l.ElemCost = 90 * sim.Nanosecond
	}
	reg := k.Reg
	blockClass := reg.Class("double[]")
	if blockClass == nil {
		blockClass = reg.DefineArrayClass("double[]", 8)
	}
	nb := l.nb()
	elems := l.Block * l.Block
	l.blocks = make([][]*heap.Object, nb)
	for i := range l.blocks {
		l.blocks[i] = make([]*heap.Object, nb)
	}
	placement := p.placement(k.NumNodes())
	parties := barrierParties(p)
	pr, pc := threadGrid(p.Threads)
	owner := func(i, j int) int { return (i%pr)*pc + j%pc }

	mMain := &stack.Method{Name: "LU.run"}
	mStep := &stack.Method{Name: "LU.step"}
	mUpdate := &stack.Method{Name: "LU.updateBlock"}

	// Per-phase per-block element-op counts (the classic flop shares:
	// diagonal ~B³/3, perimeter ~B³/2, interior B³ daxpy+copy).
	diagOps := sim.Time(elems*l.Block) / 3
	perimOps := sim.Time(elems * l.Block / 2)
	innerOps := sim.Time(elems * l.Block)

	for tid := 0; tid < p.Threads; tid++ {
		tid := tid
		k.SpawnThread(placement[tid], fmt.Sprintf("lu-%d", tid), func(t *gos.Thread) {
			main := t.Stack.Push(mMain, 2)
			// Init: allocate owned blocks so homes follow the 2D scatter
			// (the first-creator rule places each block on its owner).
			for i := 0; i < nb; i++ {
				for j := 0; j < nb; j++ {
					if owner(i, j) != tid {
						continue
					}
					b := t.AllocArray(blockClass, elems)
					l.blocks[i][j] = b
					t.WriteElems(b, elems)
					t.Compute(sim.Time(elems) * 12 * sim.Nanosecond) // init fill
					if main.Ref(0) == nil {
						main.SetRef(0, b)
					}
				}
			}
			t.Barrier(0, parties)

			for s := 0; s < nb; s++ {
				sf := t.Stack.Push(mStep, 1)
				diag := l.blocks[s][s]
				sf.SetRef(0, diag)

				// Phase 1: the diagonal owner factorizes block (s,s).
				if owner(s, s) == tid {
					t.ReadElems(diag, elems)
					t.WriteElems(diag, elems)
					t.Compute(diagOps * l.ElemCost)
				}
				t.Barrier(0, parties)

				// Phase 2: perimeter row and column blocks divide by the
				// fresh diagonal.
				for q := s + 1; q < nb; q++ {
					if owner(s, q) == tid {
						l.update(t, mUpdate, perimOps, diag, nil, l.blocks[s][q])
					}
					if owner(q, s) == tid {
						l.update(t, mUpdate, perimOps, diag, nil, l.blocks[q][s])
					}
				}
				t.Barrier(0, parties)

				// Phase 3: interior blocks take the rank-B update from
				// their perimeter row/column blocks.
				for i := s + 1; i < nb; i++ {
					for j := s + 1; j < nb; j++ {
						if owner(i, j) != tid {
							continue
						}
						l.update(t, mUpdate, innerOps, l.blocks[i][s], l.blocks[s][j], l.blocks[i][j])
					}
				}
				t.Barrier(0, parties)
				t.Stack.Pop()
			}
			t.Stack.Pop()
		})
	}
}

// update applies one block update: read the operand blocks, rewrite the
// destination, charge ops element operations. The transient frame keeps the
// destination reference visible to the stack profiler.
func (l *LU) update(t *gos.Thread, m *stack.Method, ops sim.Time, a, b, dst *heap.Object) {
	f := t.Stack.Push(m, 2)
	f.SetRef(0, dst)
	if a != nil {
		t.ReadElems(a, a.Len)
		f.SetRef(1, a)
	}
	if b != nil {
		t.ReadElems(b, b.Len)
	}
	t.ReadElems(dst, dst.Len)
	t.WriteElems(dst, dst.Len)
	t.Compute(ops * l.ElemCost)
	t.Stack.Pop()
}
