package workload

import (
	"fmt"

	"jessica2/internal/gos"
	"jessica2/internal/heap"
	"jessica2/internal/sim"
	"jessica2/internal/stack"
)

// SOR is the red-black successive over-relaxation kernel: a near-neighbour
// regular sharing pattern with large object granularity (each matrix row is
// one double[] of at least several KB) and modestly intensive computation.
// Threads own contiguous row blocks; only block-boundary rows are shared,
// with the neighbouring thread.
type SOR struct {
	// RowsN and Cols set the matrix dimensions (paper: 2K × 2K).
	RowsN, Cols int
	// Iters is the number of red-black rounds (paper: 10).
	Iters int
	// PointCost is the virtual CPU charge per relaxed matrix point,
	// calibrated so a single-thread 2K×2K×10 run lands near the paper's
	// 24 s baseline on the 2 GHz P4 (≈ 1.1 µs per point under Kaffe).
	PointCost sim.Time

	rows []*heap.Object // shared matrix rows, filled during init
}

// NewSOR returns the paper-scale configuration.
func NewSOR() *SOR {
	return &SOR{RowsN: 2048, Cols: 2048, Iters: 10, PointCost: 1100 * sim.Nanosecond}
}

// NewSORSmall returns the Table V configuration (1K × 1K).
func NewSORSmall() *SOR {
	s := NewSOR()
	s.RowsN, s.Cols = 1024, 1024
	return s
}

// Name implements Workload.
func (s *SOR) Name() string { return "SOR" }

// Characteristics implements Workload (Table I row).
func (s *SOR) Characteristics() Characteristics {
	return Characteristics{
		Name:        "SOR",
		DataSet:     fmt.Sprintf("%dK x %dK", s.RowsN/1024, s.Cols/1024),
		Rounds:      s.Iters,
		Granularity: "Coarse",
		ObjectSize:  "each row at least several KB",
	}
}

// Launch implements Workload.
func (s *SOR) Launch(k *gos.Kernel, p Params) {
	if s.PointCost <= 0 {
		s.PointCost = 1100 * sim.Nanosecond
	}
	reg := k.Reg
	rowClass := reg.Class("double[]")
	if rowClass == nil {
		rowClass = reg.DefineArrayClass("double[]", 8)
	}
	s.rows = make([]*heap.Object, s.RowsN)
	placement := p.placement(k.NumNodes())
	parties := barrierParties(p)

	mMain := &stack.Method{Name: "SOR.run"}
	mPhase := &stack.Method{Name: "SOR.relaxPhase"}
	mRow := &stack.Method{Name: "SOR.relaxRow"}

	for tid := 0; tid < p.Threads; tid++ {
		tid := tid
		lo, hi := blockRange(s.RowsN, p.Threads, tid)
		k.SpawnThread(placement[tid], fmt.Sprintf("sor-%d", tid), func(t *gos.Thread) {
			// Init phase: allocate the owned rows so their homes land on
			// this thread's node (the first-creator rule).
			main := t.Stack.Push(mMain, 4)
			for r := lo; r < hi; r++ {
				row := t.AllocArray(rowClass, s.Cols)
				s.rows[r] = row
				t.WriteElems(row, s.Cols)
				t.Compute(sim.Time(s.Cols) * 40 * sim.Nanosecond) // init fill
			}
			if lo < hi {
				main.SetRef(0, s.rows[lo]) // first owned row: a stable ref
				main.SetRef(1, s.rows[hi-1])
			}
			t.Barrier(0, parties)

			for iter := 0; iter < s.Iters; iter++ {
				for phase := 0; phase < 2; phase++ {
					pf := t.Stack.Push(mPhase, 2)
					if lo < hi {
						pf.SetRef(0, s.rows[lo])
						pf.SetRef(1, s.rows[hi-1])
					}
					for r := lo; r < hi; r++ {
						if r%2 != phase {
							continue
						}
						rf := t.Stack.Push(mRow, 3)
						rf.SetRef(0, s.rows[r])
						if r > 0 {
							t.Read(s.rows[r-1])
							rf.SetRef(1, s.rows[r-1])
						}
						t.Read(s.rows[r])
						if r < s.RowsN-1 {
							t.Read(s.rows[r+1])
							rf.SetRef(2, s.rows[r+1])
						}
						// Red-black: half the row's points relax per phase.
						t.WriteElems(s.rows[r], s.Cols/2)
						t.Compute(sim.Time(s.Cols/2) * s.PointCost)
						t.Stack.Pop()
					}
					// The barrier is called from inside the phase method
					// (SPLASH-2 style), so the phase frame — holding the
					// block-boundary row references — stays live across
					// the interval close where sticky sets are resolved.
					t.Barrier(0, parties)
					t.Stack.Pop()
				}
			}
			t.Stack.Pop()
		})
	}
}

// blockRange splits n items over p parts, returning part i's [lo, hi).
func blockRange(n, parts, i int) (lo, hi int) {
	per := n / parts
	rem := n % parts
	lo = i*per + min(i, rem)
	hi = lo + per
	if i < rem {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
