package workload

import (
	"fmt"

	"jessica2/internal/gos"
	"jessica2/internal/heap"
	"jessica2/internal/sim"
	"jessica2/internal/stack"
	"jessica2/internal/xrand"
)

// KVMix is a synthetic key-value transaction workload: threads execute
// short lock-protected transactions over a shared record table, drawing
// keys from a Zipf-skewed distribution whose hot window moves with the
// workload phase. It is the adversarial complement of the SPLASH-2 ports:
// fine-grained, lock-heavy (one distributed lock acquire per transaction),
// irregular, and phase-shifting — under the scenario engine's PhaseShift
// schedule the hot set jumps mid-run, which is exactly the "changing
// runtime conditions" an adaptive profiler must chase.
type KVMix struct {
	// Keys is the shared record count; ValueSize the record payload bytes.
	Keys, ValueSize int
	// Rounds is the number of barrier-delimited rounds; each thread runs
	// TxnsPerRound transactions of OpsPerTxn key operations per round.
	Rounds, TxnsPerRound, OpsPerTxn int
	// WriteFraction in [0,1] makes that share of key operations writes.
	WriteFraction float64
	// Locks is the lock-stripe count guarding the table.
	Locks int
	// ZipfS is the skew exponent (>1; near 1 = heavy skew).
	ZipfS float64
	// HotSpan is how far the hot window moves per phase, in keys.
	HotSpan int
	// RoundsPerPhase drives intrinsic phase shifting when no external
	// Phase register is installed (0 disables intrinsic shifting).
	RoundsPerPhase int
	// OpCost is the per-operation compute charge.
	OpCost sim.Time

	records []*heap.Object
	// PhaseTrace records the phase each thread observed per round
	// (thread-major), for tests asserting phase-shift behavior.
	PhaseTrace [][]int
}

// NewKVMix returns a small default instance.
func NewKVMix() *KVMix {
	return &KVMix{
		Keys: 4096, ValueSize: 128,
		Rounds: 12, TxnsPerRound: 96, OpsPerTxn: 4,
		WriteFraction:  0.4,
		Locks:          64,
		ZipfS:          1.1,
		HotSpan:        512,
		RoundsPerPhase: 4,
		OpCost:         300 * sim.Nanosecond,
	}
}

// Name implements Workload.
func (w *KVMix) Name() string { return "KVMix" }

// Characteristics implements Workload.
func (w *KVMix) Characteristics() Characteristics {
	return Characteristics{
		Name:        "KVMix",
		DataSet:     fmt.Sprintf("%d keys x %dB", w.Keys, w.ValueSize),
		Rounds:      w.Rounds,
		Granularity: "Fine",
		ObjectSize:  fmt.Sprintf("%d bytes", w.ValueSize),
	}
}

// Records exposes the allocated record table after Launch (for tests).
func (w *KVMix) Records() []*heap.Object { return w.records }

// kvLockBase keeps KVMix lock ids clear of other workloads' ranges.
const kvLockBase = 9000

// Launch implements Workload.
func (w *KVMix) Launch(k *gos.Kernel, p Params) {
	if w.Locks <= 0 {
		w.Locks = 1
	}
	if w.HotSpan <= 0 {
		w.HotSpan = w.Keys / 8
	}
	reg := k.Reg
	recClass := reg.Class("KVRecord")
	if recClass == nil {
		recClass = reg.DefineClass("KVRecord", w.ValueSize, 1)
	}
	w.records = make([]*heap.Object, w.Keys)
	w.PhaseTrace = make([][]int, p.Threads)
	placement := p.placement(k.NumNodes())
	parties := barrierParties(p)

	mMain := &stack.Method{Name: "KVMix.run"}
	mTxn := &stack.Method{Name: "KVMix.txn"}

	for tid := 0; tid < p.Threads; tid++ {
		tid := tid
		rng := xrand.New(p.Seed).Derive(uint64(tid) + 40427)
		k.SpawnThread(placement[tid], fmt.Sprintf("kv-%d", tid), func(t *gos.Thread) {
			main := t.Stack.Push(mMain, 1)
			// Partitioned table load: each thread creates its key range so
			// homes spread by the first-creator rule.
			lo, hi := blockRange(w.Keys, p.Threads, tid)
			var prev *heap.Object
			for i := lo; i < hi; i++ {
				o := t.Alloc(recClass)
				if prev != nil {
					prev.Refs[0] = o // chain for the sticky-set resolver
				}
				prev = o
				w.records[i] = o
				t.Write(o)
			}
			if lo < hi {
				main.SetRef(0, w.records[lo])
			}
			t.Barrier(0, parties)

			zipf := xrand.NewZipf(rng.Derive(13), w.ZipfS, w.Keys)
			for round := 0; round < w.Rounds; round++ {
				// Phase: externally driven when the scenario engine
				// installed a register, intrinsic round-derived otherwise.
				phase := 0
				if p.Phase != nil {
					phase = p.Phase.Current()
				} else if w.RoundsPerPhase > 0 {
					phase = round / w.RoundsPerPhase
				}
				w.PhaseTrace[tid] = append(w.PhaseTrace[tid], phase)
				offset := phase * w.HotSpan

				for txn := 0; txn < w.TxnsPerRound; txn++ {
					f := t.Stack.Push(mTxn, 1)
					first := (offset + zipf.Rank()) % w.Keys
					f.SetRef(0, w.records[first])
					t.Acquire(kvLockBase + first%w.Locks)
					for op := 0; op < w.OpsPerTxn; op++ {
						idx := first
						if op > 0 {
							// Secondary keys: mostly near the first key
							// (co-accessed record cluster), sometimes a
							// fresh skewed draw.
							if rng.Float64() < 0.75 {
								idx = (first + 1 + rng.Intn(8)) % w.Keys
							} else {
								idx = (offset + zipf.Rank()) % w.Keys
							}
						}
						o := w.records[idx]
						if rng.Float64() < w.WriteFraction {
							t.Write(o)
						} else {
							t.Read(o)
						}
						t.Compute(w.OpCost)
					}
					t.Release(kvLockBase + first%w.Locks)
					t.Stack.Pop()
				}
				t.Barrier(0, parties)
			}
			t.Stack.Pop()
		})
	}
}
