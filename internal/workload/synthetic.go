package workload

import (
	"fmt"

	"jessica2/internal/gos"
	"jessica2/internal/heap"
	"jessica2/internal/sim"
	"jessica2/internal/stack"
	"jessica2/internal/xrand"
)

// SharingPattern selects the synthetic workload's inter-thread structure.
type SharingPattern int

const (
	// PatternUniform makes every thread touch every region equally.
	PatternUniform SharingPattern = iota
	// PatternNeighbor makes thread i share mostly with threads i±1.
	PatternNeighbor
	// PatternBlocks makes two thread groups that never share across the
	// group boundary (a two-galaxy-like block TCM).
	PatternBlocks
	// PatternZipf concentrates accesses on a few hot objects.
	PatternZipf
)

func (sp SharingPattern) String() string {
	switch sp {
	case PatternUniform:
		return "uniform"
	case PatternNeighbor:
		return "neighbor"
	case PatternBlocks:
		return "blocks"
	case PatternZipf:
		return "zipf"
	default:
		return fmt.Sprintf("pattern(%d)", int(sp))
	}
}

// Synthetic is a configurable microbenchmark used by tests, examples and
// ablations: threads repeatedly access objects from per-thread regions
// drawn according to a sharing pattern, with barrier-delimited intervals.
type Synthetic struct {
	// ObjectsPerThread sizes each thread's region.
	ObjectsPerThread int
	// ObjectSize is the instance size of the shared class.
	ObjectSize int
	// Intervals is the number of barrier-delimited rounds.
	Intervals int
	// AccessesPerInterval is the per-thread access count per round.
	AccessesPerInterval int
	// Pattern selects the sharing structure.
	Pattern SharingPattern
	// WriteFraction in [0,1] makes that share of accesses writes.
	WriteFraction float64
	// AccessCost is the per-access compute charge.
	AccessCost sim.Time
	// UseLocks, when true, wraps each round's tail in a lock-protected
	// critical section (exercising the lock-piggyback OAL path).
	UseLocks bool

	regions [][]*heap.Object
}

// NewSynthetic returns a small default instance.
func NewSynthetic() *Synthetic {
	return &Synthetic{
		ObjectsPerThread:    256,
		ObjectSize:          64,
		Intervals:           8,
		AccessesPerInterval: 2048,
		Pattern:             PatternNeighbor,
		WriteFraction:       0.25,
		AccessCost:          200 * sim.Nanosecond,
	}
}

// Name implements Workload.
func (s *Synthetic) Name() string { return "Synthetic/" + s.Pattern.String() }

// Characteristics implements Workload.
func (s *Synthetic) Characteristics() Characteristics {
	return Characteristics{
		Name:        s.Name(),
		DataSet:     fmt.Sprintf("%d objs/thread x %dB", s.ObjectsPerThread, s.ObjectSize),
		Rounds:      s.Intervals,
		Granularity: "Fine",
		ObjectSize:  fmt.Sprintf("%d bytes", s.ObjectSize),
	}
}

// Regions exposes the allocated objects after Launch (for tests).
func (s *Synthetic) Regions() [][]*heap.Object { return s.regions }

// Launch implements Workload.
func (s *Synthetic) Launch(k *gos.Kernel, p Params) {
	reg := k.Reg
	name := fmt.Sprintf("Synth%d", s.ObjectSize)
	class := reg.Class(name)
	if class == nil {
		class = reg.DefineClass(name, s.ObjectSize, 1)
	}
	placement := p.placement(k.NumNodes())
	parties := barrierParties(p)
	s.regions = make([][]*heap.Object, p.Threads)

	mMain := &stack.Method{Name: "Synthetic.run"}
	mRound := &stack.Method{Name: "Synthetic.round"}

	for tid := 0; tid < p.Threads; tid++ {
		tid := tid
		rng := xrand.New(p.Seed).Derive(uint64(tid) + 31337)
		k.SpawnThread(placement[tid], fmt.Sprintf("syn-%d", tid), func(t *gos.Thread) {
			main := t.Stack.Push(mMain, 2)
			region := make([]*heap.Object, s.ObjectsPerThread)
			var prev *heap.Object
			for i := range region {
				o := t.Alloc(class)
				// Chain objects so the sticky-set resolver has a graph.
				if prev != nil {
					prev.Refs[0] = o
				}
				prev = o
				region[i] = o
				t.Write(o)
			}
			s.regions[tid] = region
			main.SetRef(0, region[0])
			t.Barrier(0, parties)

			var zipf *xrand.Zipf
			if s.Pattern == PatternZipf {
				zipf = xrand.NewZipf(rng.Derive(7), 1.2, s.ObjectsPerThread*p.Threads)
			}
			for round := 0; round < s.Intervals; round++ {
				rf := t.Stack.Push(mRound, 1)
				rf.SetRef(0, region[0])
				for a := 0; a < s.AccessesPerInterval; a++ {
					var target int // global object index
					switch s.Pattern {
					case PatternUniform:
						target = rng.Intn(s.ObjectsPerThread * p.Threads)
					case PatternNeighbor:
						// 60% own region, 35% neighbours, 5% anywhere.
						r := rng.Float64()
						switch {
						case r < 0.60:
							target = tid*s.ObjectsPerThread + rng.Intn(s.ObjectsPerThread)
						case r < 0.95:
							nb := tid + 1 - 2*rng.Intn(2)
							nb = (nb + p.Threads) % p.Threads
							target = nb*s.ObjectsPerThread + rng.Intn(s.ObjectsPerThread)
						default:
							target = rng.Intn(s.ObjectsPerThread * p.Threads)
						}
					case PatternBlocks:
						half := p.Threads / 2
						grp := 0
						if tid >= half {
							grp = 1
						}
						lo := grp * half * s.ObjectsPerThread
						span := half * s.ObjectsPerThread
						if span <= 0 {
							span = s.ObjectsPerThread
						}
						target = lo + rng.Intn(span)
					case PatternZipf:
						target = zipf.Rank()
					}
					owner := target / s.ObjectsPerThread
					if owner >= p.Threads {
						owner = p.Threads - 1
					}
					obj := s.regions[owner][target%s.ObjectsPerThread]
					if rng.Float64() < s.WriteFraction {
						t.Write(obj)
					} else {
						t.Read(obj)
					}
					t.Compute(s.AccessCost)
				}
				if s.UseLocks {
					t.Acquire(5000 + round%4)
					t.Write(region[0])
					t.Release(5000 + round%4)
				}
				t.Stack.Pop()
				t.Barrier(0, parties)
			}
			t.Stack.Pop()
		})
	}
}
