// Package workload ports the paper's benchmark programs — SOR, Barnes-Hut
// and Water-Spatial from SPLASH-2 — onto the simulated distributed JVM, and
// adds synthetic generators used by tests and examples. Each workload
// allocates its shared data through the GOS (so homes distribute as the
// paper's first-creator rule dictates), drives every shared access through
// the inlined check path, synchronizes with the DJVM barriers/locks, and
// maintains realistic shadow stacks so the stack profiler sees transient
// frames above stable frames holding invariant references.
//
// The open-loop serving workload (ServeMix) additionally carries an
// optional request-lifecycle robustness layer (RobustConfig in robust.go):
// per-request deadlines with censored-at-deadline percentile accounting,
// admission control, bounded retries, quantile-delayed hedging, and
// per-node circuit breakers fed by the kernel's failure detector. The
// layer is off unless ServeMix.Robust is set, and off-path runs are
// byte-identical to builds without it.
package workload

import (
	"fmt"

	"jessica2/internal/gos"
)

// Phase is a shared phase register: the scenario engine advances it at
// scheduled virtual times and phase-aware workloads read it at round
// boundaries to shift their behavior (hot sets, mix ratios). Reads and
// writes happen under the simulation scheduler, so no locking is needed
// and same-seed runs observe identical phase sequences.
type Phase struct {
	v int
}

// Set installs the current phase number.
func (p *Phase) Set(v int) { p.v = v }

// Current returns the phase number; a nil register reads as phase 0.
func (p *Phase) Current() int {
	if p == nil {
		return 0
	}
	return p.v
}

// Params configures one workload launch.
type Params struct {
	// Threads is the worker thread count.
	Threads int
	// Placement maps thread id to node id; nil means blocked placement
	// (contiguous thread ranges per node, the DJVM spawn-order default).
	Placement []int
	// Seed drives all workload randomness.
	Seed uint64
	// Phase, when non-nil, is the externally driven phase register
	// (normally installed by the scenario engine). Phase-aware workloads
	// consult it at round boundaries; others ignore it.
	Phase *Phase
}

// placement resolves the effective thread→node map.
func (p Params) placement(nodes int) []int {
	if p.Placement != nil {
		if len(p.Placement) != p.Threads {
			panic(fmt.Sprintf("workload: placement size %d != threads %d", len(p.Placement), p.Threads))
		}
		return p.Placement
	}
	a := make([]int, p.Threads)
	per := (p.Threads + nodes - 1) / nodes
	for i := range a {
		a[i] = i / per
		if a[i] >= nodes {
			a[i] = nodes - 1
		}
	}
	return a
}

// Characteristics describes a benchmark for Table I.
type Characteristics struct {
	Name        string
	DataSet     string
	Rounds      int
	Granularity string
	ObjectSize  string
}

// Workload is a benchmark that can be launched on a kernel. Launch spawns
// the worker threads; the caller then drives k.Run() to completion.
type Workload interface {
	Name() string
	Characteristics() Characteristics
	Launch(k *gos.Kernel, p Params)
}

// barrierParties is the convention that every workload barrier includes all
// worker threads.
func barrierParties(p Params) int { return p.Threads }
