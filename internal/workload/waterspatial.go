package workload

import (
	"fmt"
	"math"

	"jessica2/internal/gos"
	"jessica2/internal/heap"
	"jessica2/internal/sim"
	"jessica2/internal/stack"
	"jessica2/internal/xrand"
)

// WaterSpatial is the molecular dynamics application: groups of water
// molecules interacting within a cutoff radius over a 3-D spatial box
// decomposition. Sharing is near-neighbour in 3-D with medium granularity
// (each molecule's state array is about 512 bytes), computation is
// intensive, and the load distribution evolves as molecules drift between
// boxes — which is what makes its sticky sets move.
type WaterSpatial struct {
	// NMol and Rounds set the problem (paper: 512 molecules, 5 rounds).
	NMol, Rounds int
	// BoxesPerSide sets the 3-D box grid (4 → 64 boxes).
	BoxesPerSide int
	// BoxCap bounds molecules per box list.
	BoxCap int
	// PairCost is the virtual CPU charge per molecule pair interaction
	// (the full O–O, O–H, H–H site-site force loop under Kaffe;
	// calibrated to land a single-thread 512×5 run near the paper's
	// ≈59 s baseline).
	PairCost sim.Time

	mols  []*wsMol
	boxes []*wsBox
}

// NewWaterSpatial returns the paper-scale configuration.
func NewWaterSpatial() *WaterSpatial {
	return &WaterSpatial{
		NMol: 512, Rounds: 5, BoxesPerSide: 4, BoxCap: 64,
		PairCost: 190 * sim.Microsecond,
	}
}

// wsMol mirrors one molecule: a 64-double state array (~512 bytes).
type wsMol struct {
	id         int
	arr        *heap.Object // double[] state
	x, y, z    float64
	fx, fy, fz float64
	box        int
	owner      int
}

// wsBox is one spatial cell with its membership list object.
type wsBox struct {
	idx   int
	list  *heap.Object // Mol[] membership array
	obj   *heap.Object // Box descriptor
	mols  []*wsMol
	owner int
}

// Name implements Workload.
func (w *WaterSpatial) Name() string { return "Water-Spatial" }

// Characteristics implements Workload (Table I row).
func (w *WaterSpatial) Characteristics() Characteristics {
	return Characteristics{
		Name:        "Water-Spatial",
		DataSet:     fmt.Sprintf("%d molecules", w.NMol),
		Rounds:      w.Rounds,
		Granularity: "Medium",
		ObjectSize:  "each molecule about 512 bytes",
	}
}

// wsLockBase offsets box lock ids away from other workload locks.
const wsLockBase = 1000

// Launch implements Workload.
func (w *WaterSpatial) Launch(k *gos.Kernel, p Params) {
	reg := k.Reg
	cls := func(name string, def func() *heap.Class) *heap.Class {
		if c := reg.Class(name); c != nil {
			return c
		}
		return def()
	}
	molC := cls("double[]", func() *heap.Class { return reg.DefineArrayClass("double[]", 8) })
	boxC := cls("Box", func() *heap.Class { return reg.DefineClass("Box", 48, 1) })
	listC := cls("Mol[]", func() *heap.Class { return reg.DefineArrayClass("Mol[]", 4) })

	nb := w.BoxesPerSide
	nBoxes := nb * nb * nb
	w.boxes = make([]*wsBox, nBoxes)
	w.mols = make([]*wsMol, w.NMol)
	placement := p.placement(k.NumNodes())
	parties := barrierParties(p)
	side := 1.0 // box edge length; domain is [0, nb)^3 box units

	boxIndex := func(x, y, z float64) int {
		bx := clampInt(int(x/side), 0, nb-1)
		by := clampInt(int(y/side), 0, nb-1)
		bz := clampInt(int(z/side), 0, nb-1)
		return (bx*nb+by)*nb + bz
	}

	mMain := &stack.Method{Name: "Water.run"}
	mForces := &stack.Method{Name: "Water.interBoxForces"}
	mBoxPair := &stack.Method{Name: "Water.boxPair"}
	mUpdate := &stack.Method{Name: "Water.advance"}

	for tid := 0; tid < p.Threads; tid++ {
		tid := tid
		boxLo, boxHi := blockRange(nBoxes, p.Threads, tid)
		molLo, molHi := blockRange(w.NMol, p.Threads, tid)
		rng := xrand.New(p.Seed).Derive(uint64(tid) + 977)
		k.SpawnThread(placement[tid], fmt.Sprintf("ws-%d", tid), func(t *gos.Thread) {
			main := t.Stack.Push(mMain, 4)
			// Init: allocate owned boxes and molecules; molecules start
			// uniformly placed inside the thread's own box range so homes
			// and box lists line up initially.
			for bi := boxLo; bi < boxHi; bi++ {
				bx := &wsBox{idx: bi, owner: tid,
					obj:  t.Alloc(boxC),
					list: t.AllocArray(listC, w.BoxCap),
				}
				bx.obj.Refs[0] = bx.list
				bx.list.Refs = make([]*heap.Object, 0, w.BoxCap)
				t.Write(bx.obj)
				w.boxes[bi] = bx
			}
			t.Barrier(0, parties)

			for i := molLo; i < molHi; i++ {
				// Place into a random owned box.
				bi := boxLo + rng.Intn(boxHi-boxLo)
				bx3 := bi / (nb * nb)
				by3 := (bi / nb) % nb
				bz3 := bi % nb
				m := &wsMol{
					id:    i,
					arr:   t.AllocArray(molC, 64), // 512 bytes
					owner: tid,
					x:     (float64(bx3) + rng.Float64()) * side,
					y:     (float64(by3) + rng.Float64()) * side,
					z:     (float64(bz3) + rng.Float64()) * side,
				}
				m.box = bi
				t.WriteElems(m.arr, 64)
				w.mols[i] = m
				bx := w.boxes[bi]
				bx.mols = append(bx.mols, m)
				bx.list.Refs = append(bx.list.Refs, m.arr)
				t.WriteElems(bx.list, 1)
			}
			if molLo < molHi {
				main.SetRef(0, w.mols[molLo].arr)
			}
			if boxLo < boxHi {
				main.SetRef(1, w.boxes[boxLo].obj)
				main.SetRef(2, w.boxes[boxLo].list)
			}
			t.Barrier(0, parties)

			for round := 0; round < w.Rounds; round++ {
				// --- force computation: owned boxes against their 27-box
				// neighbourhoods.
				ff := t.Stack.Push(mForces, 2)
				if boxLo < boxHi {
					ff.SetRef(0, w.boxes[boxLo].list)
				}
				for bi := boxLo; bi < boxHi; bi++ {
					home := w.boxes[bi]
					t.Read(home.obj)
					t.Read(home.list)
					for _, nbIdx := range neighbors27(bi, nb) {
						other := w.boxes[nbIdx]
						pf := t.Stack.Push(mBoxPair, 2)
						pf.SetRef(0, home.list)
						pf.SetRef(1, other.list)
						t.Read(other.obj)
						t.Read(other.list)
						for _, m := range home.mols {
							t.Read(m.arr)
							for _, o := range other.mols {
								if o.id <= m.id {
									continue // each pair once
								}
								t.Read(o.arr)
								w.interact(m, o)
								t.Charge(w.PairCost)
							}
							// Accumulated forces land in the force section
							// of the molecule state array.
							t.WriteElems(m.arr, 16)
						}
						t.Stack.Pop()
					}
				}
				// Barrier inside the phase method (box-list refs live).
				t.Barrier(0, parties)
				t.Stack.Pop()

				// --- advance: integrate positions; molecules crossing box
				// boundaries move between membership lists under the box
				// locks (the evolving-distribution behaviour).
				uf := t.Stack.Push(mUpdate, 2)
				if molLo < molHi {
					uf.SetRef(0, w.mols[molLo].arr)
				}
				for i := molLo; i < molHi; i++ {
					m := w.mols[i]
					dtv := 0.08
					m.x = wrap(m.x+(rng.Float64()-0.5+m.fx*0.01)*dtv, float64(nb)*side)
					m.y = wrap(m.y+(rng.Float64()-0.5+m.fy*0.01)*dtv, float64(nb)*side)
					m.z = wrap(m.z+(rng.Float64()-0.5+m.fz*0.01)*dtv, float64(nb)*side)
					m.fx, m.fy, m.fz = 0, 0, 0
					t.WriteElems(m.arr, 24)
					t.Compute(2 * sim.Microsecond)
					newBox := boxIndex(m.x, m.y, m.z)
					if newBox != m.box {
						w.moveMol(t, m, newBox)
					}
				}
				t.Barrier(0, parties)
				t.Stack.Pop()
			}
			t.Stack.Pop()
		})
	}
}

// moveMol migrates a molecule between box lists under the box locks.
func (w *WaterSpatial) moveMol(t *gos.Thread, m *wsMol, newBox int) {
	old := w.boxes[m.box]
	t.Acquire(wsLockBase + old.idx)
	for j, mm := range old.mols {
		if mm == m {
			old.mols = append(old.mols[:j], old.mols[j+1:]...)
			break
		}
	}
	rebuildListRefs(old)
	t.WriteElems(old.list, 1)
	t.Release(wsLockBase + old.idx)

	nw := w.boxes[newBox]
	t.Acquire(wsLockBase + nw.idx)
	nw.mols = append(nw.mols, m)
	rebuildListRefs(nw)
	t.WriteElems(nw.list, 1)
	t.Release(wsLockBase + nw.idx)
	m.box = newBox
}

func rebuildListRefs(b *wsBox) {
	b.list.Refs = b.list.Refs[:0]
	for _, mm := range b.mols {
		b.list.Refs = append(b.list.Refs, mm.arr)
	}
}

// interact applies a truncated Lennard-Jones-ish pair force.
func (w *WaterSpatial) interact(a, b *wsMol) {
	dx, dy, dz := b.x-a.x, b.y-a.y, b.z-a.z
	d2 := dx*dx + dy*dy + dz*dz
	if d2 > 2.25 || d2 == 0 { // cutoff 1.5 box units
		return
	}
	inv2 := 1 / d2
	inv6 := inv2 * inv2 * inv2
	f := (12*inv6*inv6 - 6*inv6) * inv2 * 1e-3
	if math.IsNaN(f) {
		return
	}
	// Clamp the close-contact singularity so integration stays stable.
	if f > 4 {
		f = 4
	} else if f < -4 {
		f = -4
	}
	a.fx -= f * dx
	a.fy -= f * dy
	a.fz -= f * dz
	b.fx += f * dx
	b.fy += f * dy
	b.fz += f * dz
}

// neighbors27 returns the indices of the 3×3×3 neighbourhood of box bi
// (clipped at the domain walls), including bi itself, in ascending order.
func neighbors27(bi, nb int) []int {
	bx := bi / (nb * nb)
	by := (bi / nb) % nb
	bz := bi % nb
	var out []int
	for dx := -1; dx <= 1; dx++ {
		for dy := -1; dy <= 1; dy++ {
			for dz := -1; dz <= 1; dz++ {
				x, y, z := bx+dx, by+dy, bz+dz
				if x < 0 || x >= nb || y < 0 || y >= nb || z < 0 || z >= nb {
					continue
				}
				out = append(out, (x*nb+y)*nb+z)
			}
		}
	}
	return out
}

func wrap(v, max float64) float64 {
	if math.IsNaN(v) {
		return 0
	}
	v = math.Mod(v, max)
	if v < 0 {
		v += max
	}
	return v
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
