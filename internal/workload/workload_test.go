package workload

import (
	"testing"

	"jessica2/internal/gos"
	"jessica2/internal/sampling"
	"jessica2/internal/sim"
	"jessica2/internal/tcm"
)

// runTCM launches a workload with exact tracking and returns its TCM.
func runTCM(t *testing.T, w Workload, threads, nodes int, seed uint64) (*tcm.Map, *gos.Kernel) {
	t.Helper()
	cfg := gos.DefaultConfig()
	cfg.Nodes = nodes
	cfg.Tracking = gos.TrackingExact
	k := gos.NewKernel(cfg)
	w.Launch(k, Params{Threads: threads, Seed: seed})
	k.Run()
	k.FlushAllOAL()
	m, _ := k.TCM()
	return m, k
}

func TestBlockRange(t *testing.T) {
	lo, hi := blockRange(10, 3, 0)
	if lo != 0 || hi != 4 {
		t.Fatalf("part 0 = [%d,%d)", lo, hi)
	}
	total := 0
	for i := 0; i < 3; i++ {
		lo, hi := blockRange(10, 3, i)
		total += hi - lo
	}
	if total != 10 {
		t.Fatal("block ranges do not cover")
	}
}

func TestPlacementDefaults(t *testing.T) {
	p := Params{Threads: 8}
	a := p.placement(4)
	want := []int{0, 0, 1, 1, 2, 2, 3, 3}
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("placement = %v", a)
		}
	}
}

func TestPlacementMismatchPanics(t *testing.T) {
	p := Params{Threads: 4, Placement: []int{0, 1}}
	defer func() {
		if recover() == nil {
			t.Error("bad placement did not panic")
		}
	}()
	p.placement(2)
}

// TestSORNearNeighborBand: SOR's TCM must be a near-neighbour band —
// adjacent threads share boundary rows, distant threads share nothing.
func TestSORNearNeighborBand(t *testing.T) {
	s := NewSOR()
	s.RowsN, s.Cols, s.Iters = 128, 128, 2
	s.PointCost = 100 * sim.Nanosecond
	m, _ := runTCM(t, s, 8, 4, 1)
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			v := m.At(i, j)
			if j == i+1 && v == 0 {
				t.Fatalf("adjacent threads %d,%d share nothing", i, j)
			}
			if j > i+1 && v != 0 {
				t.Fatalf("distant threads %d,%d share %v", i, j, v)
			}
		}
	}
}

// TestBarnesHutGalaxyBlocks: intra-galaxy correlation must dominate
// inter-galaxy correlation (the Fig. 1 structure).
func TestBarnesHutGalaxyBlocks(t *testing.T) {
	b := NewBarnesHut()
	b.NBodies, b.Rounds = 512, 2
	m, _ := runTCM(t, b, 8, 4, 2)
	half := 4
	var intra, inter float64
	var intraN, interN int
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			if (i < half) == (j < half) {
				intra += m.At(i, j)
				intraN++
			} else {
				inter += m.At(i, j)
				interN++
			}
		}
	}
	if intra/float64(intraN) <= inter/float64(interN) {
		t.Fatalf("no galaxy structure: intra %v vs inter %v", intra/float64(intraN), inter/float64(interN))
	}
}

// TestBarnesHutEnergySanity: the N-body integration must stay finite.
func TestBarnesHutPhysicsFinite(t *testing.T) {
	b := NewBarnesHut()
	b.NBodies, b.Rounds = 256, 3
	cfg := gos.DefaultConfig()
	cfg.Nodes = 2
	k := gos.NewKernel(cfg)
	b.Launch(k, Params{Threads: 2, Seed: 3})
	k.Run()
	for _, bd := range b.bodies {
		if bd == nil {
			t.Fatal("body not initialized")
		}
		if !finite(bd.x) || !finite(bd.vx) || !finite(bd.ax) {
			t.Fatalf("non-finite body state: %+v", bd)
		}
	}
	if len(b.VisitsPerRound) != b.Rounds {
		t.Fatalf("visit telemetry rounds = %d", len(b.VisitsPerRound))
	}
	for _, v := range b.VisitsPerRound {
		if v <= 0 {
			t.Fatal("no traversal visits recorded")
		}
	}
}

func finite(v float64) bool { return v == v && v < 1e30 && v > -1e30 }

// TestWaterNeighborhoodSharing: threads owning adjacent box regions share;
// the TCM must be non-trivial but sparser than all-to-all.
func TestWaterNeighborhoodSharing(t *testing.T) {
	w := NewWaterSpatial()
	w.NMol, w.Rounds = 256, 2
	w.PairCost = 1 * sim.Microsecond
	m, k := runTCM(t, w, 8, 4, 4)
	if m.Total() == 0 {
		t.Fatal("no sharing at all")
	}
	if k.Stats().LockAcquires == 0 {
		t.Fatal("no box-move lock traffic (evolving distribution missing)")
	}
	// Adjacent-region threads share more than the most distant pair.
	if m.At(0, 1) == 0 {
		t.Fatal("adjacent box regions share nothing")
	}
}

// TestWaterMoleculeConservation: box lists always hold exactly NMol
// molecules in total.
func TestWaterMoleculeConservation(t *testing.T) {
	w := NewWaterSpatial()
	w.NMol, w.Rounds = 128, 3
	w.PairCost = 1 * sim.Microsecond
	cfg := gos.DefaultConfig()
	cfg.Nodes = 4
	k := gos.NewKernel(cfg)
	w.Launch(k, Params{Threads: 4, Seed: 5})
	k.Run()
	total := 0
	for _, bx := range w.boxes {
		total += len(bx.mols)
		if len(bx.list.Refs) != len(bx.mols) {
			t.Fatal("box list refs out of sync with membership")
		}
	}
	if total != 128 {
		t.Fatalf("molecules = %d, want 128", total)
	}
}

func TestNeighbors27(t *testing.T) {
	// Interior box in a 4³ grid has 27 neighbours; corner has 8.
	interior := neighbors27((1*4+1)*4+1, 4)
	if len(interior) != 27 {
		t.Fatalf("interior neighbours = %d", len(interior))
	}
	corner := neighbors27(0, 4)
	if len(corner) != 8 {
		t.Fatalf("corner neighbours = %d", len(corner))
	}
	// Self always included.
	found := false
	for _, n := range corner {
		if n == 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("self missing from neighbourhood")
	}
}

func TestSyntheticPatterns(t *testing.T) {
	for _, pat := range []SharingPattern{PatternUniform, PatternNeighbor, PatternBlocks, PatternZipf} {
		pat := pat
		t.Run(pat.String(), func(t *testing.T) {
			s := NewSynthetic()
			s.Pattern = pat
			s.Intervals = 3
			s.AccessesPerInterval = 512
			m, _ := runTCM(t, s, 4, 2, 6)
			if m.Total() == 0 {
				t.Fatal("no sharing generated")
			}
		})
	}
}

func TestSyntheticBlocksIsolation(t *testing.T) {
	s := NewSynthetic()
	s.Pattern = PatternBlocks
	s.Intervals = 4
	s.AccessesPerInterval = 1024
	m, _ := runTCM(t, s, 8, 4, 7)
	// No cross-group sharing.
	for i := 0; i < 4; i++ {
		for j := 4; j < 8; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("groups leak: TCM[%d][%d] = %v", i, j, m.At(i, j))
			}
		}
	}
	if m.At(0, 1) == 0 {
		t.Fatal("intra-group sharing missing")
	}
}

func TestSyntheticLocksExerciseOALPiggyback(t *testing.T) {
	s := NewSynthetic()
	s.UseLocks = true
	s.Intervals = 4
	s.AccessesPerInterval = 128
	cfg := gos.DefaultConfig()
	cfg.Nodes = 2
	cfg.Tracking = gos.TrackingSampled
	k := gos.NewKernel(cfg)
	s.Launch(k, Params{Threads: 4, Seed: 8})
	sampling.Uniform(k.Reg, sampling.FullRate).Apply(k.Reg)
	k.Run()
	if k.Stats().LockAcquires != 16 {
		t.Fatalf("lock acquires = %d, want 16", k.Stats().LockAcquires)
	}
}

// TestWorkloadDeterminism: identical seeds give identical runs; different
// seeds differ.
func TestWorkloadDeterminism(t *testing.T) {
	run := func(seed uint64) sim.Time {
		b := NewBarnesHut()
		b.NBodies, b.Rounds = 256, 2
		cfg := gos.DefaultConfig()
		cfg.Nodes = 4
		cfg.Tracking = gos.TrackingSampled
		k := gos.NewKernel(cfg)
		b.Launch(k, Params{Threads: 4, Seed: seed})
		return k.Run()
	}
	if run(42) != run(42) {
		t.Fatal("same seed diverged")
	}
	if run(42) == run(43) {
		t.Fatal("different seeds identical (suspicious)")
	}
}

func TestCharacteristicsTableI(t *testing.T) {
	cases := []struct {
		w    Workload
		gran string
	}{
		{NewSOR(), "Coarse"},
		{NewBarnesHut(), "Fine"},
		{NewWaterSpatial(), "Medium"},
	}
	for _, c := range cases {
		ch := c.w.Characteristics()
		if ch.Granularity != c.gran {
			t.Errorf("%s granularity = %s, want %s", ch.Name, ch.Granularity, c.gran)
		}
		if ch.Rounds <= 0 || ch.DataSet == "" || ch.ObjectSize == "" {
			t.Errorf("incomplete characteristics: %+v", ch)
		}
	}
}

// TestSORGOSVolumeIsBoundaryOnly: SOR's data traffic is only the
// block-boundary rows (writes are home-local, so no diffs).
func TestSORGOSVolume(t *testing.T) {
	s := NewSOR()
	s.RowsN, s.Cols, s.Iters = 64, 256, 2
	s.PointCost = 100 * sim.Nanosecond
	cfg := gos.DefaultConfig()
	cfg.Nodes = 4
	k := gos.NewKernel(cfg)
	s.Launch(k, Params{Threads: 4, Seed: 1})
	k.Run()
	if k.Stats().DiffMessages != 0 {
		t.Fatalf("SOR produced %d diffs; writes are home-local", k.Stats().DiffMessages)
	}
	if k.Stats().Faults == 0 {
		t.Fatal("no boundary-row faults")
	}
}
