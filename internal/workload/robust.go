package workload

import (
	"fmt"
	"sort"
	"time"

	"jessica2/internal/gos"
	"jessica2/internal/runner"
	"jessica2/internal/sim"
	"jessica2/internal/xrand"
)

// This file is ServeMix's request-lifecycle robustness layer: per-request
// deadlines, admission control (load shedding), bounded retries with capped
// exponential backoff, quantile-delayed hedging, and per-node circuit
// breakers fed by the kernel's failure detector. The whole layer is gated
// on ServeMix.Robust: when nil, ServeMix runs its classic static path and
// is byte-identical to a build without this file (the robust-off golden
// gate in the root overload test pins this).
//
// With the layer on, request execution moves from precomputed per-worker
// schedules to a dynamic dispatcher: each arrival is an engine event that
// admits (or sheds) the request and enqueues an attempt into a worker
// mailbox; workers loop popping attempts and serving them. Retries, hedges
// and breaker reroutes are simply additional attempts for the same request
// — the first completion wins, every later one is counted as wasted work.
// All transitions run inside engine events or cooperative procs, so a
// protected run is exactly as deterministic as an unprotected one.
//
// Every admitted request reaches a terminal state by its deadline: it
// completes (latency recorded as measured), or its deadline event censors
// it (DeadlineExceeded), or it is shed/failed fast. Censored terminals
// enter the latency ledger at the deadline value — see ServeStats for the
// percentile semantics.

// RobustConfig enables and tunes ServeMix's request-lifecycle robustness
// layer. Deadline is mandatory; each sub-mechanism is armed by its own
// field (zero disables it), so shed-only or retry-only stacks are
// expressible. Zero-valued secondary knobs default relative to Deadline —
// see resolved().
type RobustConfig struct {
	// Deadline is the per-request SLO on the simulated clock (arrival to
	// completion). A request not completed by arrival+Deadline is censored
	// as deadline-exceeded; shed and failed requests are censored at the
	// same value. Required (> 0).
	Deadline sim.Time
	// Capacity arms admission control: a request arriving while Capacity
	// admitted requests are still in flight is shed immediately (no work is
	// queued for it). 0 disables shedding.
	Capacity int
	// MaxRetries arms bounded retry: after an attempt times out
	// (AttemptTimeout), up to MaxRetries replacement attempts are
	// dispatched, paced by RetryBackoff. 0 disables retries.
	MaxRetries int
	// AttemptTimeout is the per-attempt timeout that triggers retries and
	// feeds the circuit breakers. 0 defaults to Deadline/4.
	AttemptTimeout sim.Time
	// RetryBackoff paces retry dispatches with capped exponential delays
	// (runner.Backoff, interpreted on the simulated clock: both are
	// nanosecond counts). A zero Base defaults to Deadline/16 capped at
	// Deadline/4.
	RetryBackoff runner.Backoff
	// HedgeQuantile in (0, 1) arms hedging: when a request's primary
	// attempt is still unfinished after the observed completion-latency
	// quantile (re-estimated every 32 completions; Deadline/2 until 16
	// samples), a hedge attempt is dispatched to a different worker. 0
	// disables hedging.
	HedgeQuantile float64
	// HedgeMin floors the hedge delay. 0 defaults to Deadline/8.
	HedgeMin sim.Time
	// MaxHedges bounds hedge attempts per request. 0 defaults to 1 when
	// hedging is armed.
	MaxHedges int
	// BreakerThreshold arms per-node circuit breakers: a node is opened
	// after BreakerThreshold consecutive attempt timeouts, or immediately
	// when the failure detector declares it dead (the push form of
	// gos.HealthSnapshot). Open nodes are skipped by routing and their
	// queued attempts re-dispatched to live replicas; a revival beat (or
	// BreakerCooldown) half-opens the breaker for a single probe request.
	// 0 disables breakers.
	BreakerThreshold int
	// BreakerCooldown is the open→half-open wait for timeout-tripped
	// breakers. 0 defaults to 4×AttemptTimeout.
	BreakerCooldown sim.Time
}

// DefaultRobustConfig returns the full protection stack at serving-scale
// defaults: 20 ms deadline, 256-deep admission, 2 retries, P95 hedging and
// 3-strike breakers.
func DefaultRobustConfig() *RobustConfig {
	return &RobustConfig{
		Deadline:         20 * sim.Millisecond,
		Capacity:         256,
		MaxRetries:       2,
		HedgeQuantile:    0.95,
		MaxHedges:        1,
		BreakerThreshold: 3,
	}
}

// Validate rejects a nonsensical configuration (session.Launch calls this
// before the workload launches, so a bad config is an error, not a hang).
func (rc *RobustConfig) Validate() error {
	if rc.Deadline <= 0 {
		return fmt.Errorf("workload: robust serving needs a positive Deadline, got %v", rc.Deadline)
	}
	if rc.Capacity < 0 {
		return fmt.Errorf("workload: negative robust Capacity %d", rc.Capacity)
	}
	if rc.MaxRetries < 0 {
		return fmt.Errorf("workload: negative robust MaxRetries %d", rc.MaxRetries)
	}
	if rc.HedgeQuantile < 0 || rc.HedgeQuantile >= 1 {
		return fmt.Errorf("workload: robust HedgeQuantile %g outside [0, 1)", rc.HedgeQuantile)
	}
	if rc.AttemptTimeout < 0 || rc.HedgeMin < 0 || rc.BreakerCooldown < 0 {
		return fmt.Errorf("workload: negative robust timeout knob")
	}
	if rc.MaxHedges < 0 {
		return fmt.Errorf("workload: negative robust MaxHedges %d", rc.MaxHedges)
	}
	if rc.BreakerThreshold < 0 {
		return fmt.Errorf("workload: negative robust BreakerThreshold %d", rc.BreakerThreshold)
	}
	return nil
}

// resolved fills the Deadline-relative defaults.
func (rc RobustConfig) resolved() RobustConfig {
	if rc.AttemptTimeout <= 0 {
		rc.AttemptTimeout = rc.Deadline / 4
	}
	if rc.RetryBackoff.Base <= 0 {
		rc.RetryBackoff = runner.Backoff{
			Base: time.Duration(rc.Deadline / 16),
			Max:  time.Duration(rc.Deadline / 4),
		}
	}
	if rc.HedgeMin <= 0 {
		rc.HedgeMin = rc.Deadline / 8
	}
	if rc.HedgeQuantile > 0 && rc.MaxHedges <= 0 {
		rc.MaxHedges = 1
	}
	if rc.BreakerCooldown <= 0 {
		rc.BreakerCooldown = 4 * rc.AttemptTimeout
	}
	return rc
}

// Attempt kinds, for accounting.
const (
	attemptPrimary = iota
	attemptRetry
	attemptHedge
	attemptReroute
)

// Request terminal states.
type reqStatus int8

const (
	reqPending reqStatus = iota
	reqDone
	reqShed
	reqExpired
	reqFailed
)

// serveReq is one request's lifecycle state.
type serveReq struct {
	status     reqStatus
	retries    int // retry dispatches used
	hedges     int // hedge dispatches used
	live       int // attempts queued or executing, not cancelled/finished
	lastWorker int // worker of the most recent dispatch (hedges avoid it)
}

// serveAttempt is one dispatch of a request to a worker.
type serveAttempt struct {
	req       int
	worker    int // worker it was enqueued to
	node      int // node that worker sat on at dispatch (breaker accounting)
	kind      int8
	cancelled bool
	started   bool
	done      bool
	// probe marks the attempt holding its node's half-open probe slot.
	// Every resolution path must release the slot (releaseProbe or a
	// breaker transition), or the node wedges half-open forever.
	probe bool
}

// Circuit breaker states.
type breakerState int8

const (
	brkClosed breakerState = iota
	brkOpen
	brkHalfOpen
)

type breaker struct {
	state    breakerState
	timeouts int  // consecutive attempt timeouts while closed
	probing  bool // half-open: one probe outstanding
}

// robustBox is one worker's mailbox: a FIFO of attempts plus the parked
// worker proc (at most one — each box has a single consumer).
type robustBox struct {
	q      []*serveAttempt
	parked *sim.Proc
}

// serveDispatcher owns the robust serving run: arrival admission, routing,
// timeouts, hedges, breakers and termination. All methods run in engine
// event context or inside a worker proc — the simulation is cooperative,
// so no locking, and every transition is deterministic.
type serveDispatcher struct {
	w   *ServeMix
	k   *gos.Kernel
	cfg RobustConfig // resolved

	threads []*gos.Thread
	boxes   []robustBox
	reqs    []serveReq
	brk     []breaker
	half    int // replica offset in the sticky pair

	inFlight int // admitted, not yet terminal
	terminal int
	closed   bool

	hedgeDelay  sim.Time
	sinceHedged int // completions since the last quantile re-estimate

	// pickedProbe is set by admit when the pick consumed a half-open probe
	// slot, and transferred onto the attempt by the following dispatch.
	pickedProbe bool

	// Stripe fencing. Requests sharing a session lock stripe serialize on
	// that lock inside the workers, so a second in-flight attempt for a
	// busy stripe cannot make progress — it can only wedge another worker
	// behind the same lock. That matters enormously under failures: a
	// request stalled mid-service on a crashed node holds its stripe lock
	// until the node restarts, and without fencing every retry, hedge, and
	// fresh arrival for that stripe consumes (and blocks) a healthy worker
	// until the whole pool is stuck. The dispatcher therefore keeps the
	// stripe's overflow in its own pen: stripeBusy counts started
	// unfinished attempts per stripe, and while it is non-zero new
	// dispatches for the stripe park in stripePen, where a doomed request
	// expires at its deadline without costing a worker. When the busy
	// attempt finishes, the pen drains FIFO.
	stripeBusy []int
	stripePen  [][]int
}

func newServeDispatcher(w *ServeMix, k *gos.Kernel, threads int) *serveDispatcher {
	cfg := w.Robust.resolved()
	half := threads / 2
	if half == 0 {
		half = 1
	}
	d := &serveDispatcher{
		w: w, k: k, cfg: cfg,
		threads:    make([]*gos.Thread, threads),
		boxes:      make([]robustBox, threads),
		reqs:       make([]serveReq, len(w.schedule)),
		brk:        make([]breaker, k.NumNodes()),
		half:       half,
		hedgeDelay: cfg.Deadline / 2,
		stripeBusy: make([]int, w.Locks),
		stripePen:  make([][]int, w.Locks),
	}
	if cfg.BreakerThreshold > 0 && k.FailureEnabled() {
		// The push form of the health snapshot: breakers open the instant
		// the detector declares death, and the dead node's queued attempts
		// are re-dispatched to live replicas right there — no poll lag.
		k.AddHealthListener(func(node int, alive bool) {
			if alive {
				d.onRevive(node)
			} else {
				d.onDeath(node)
			}
		})
	}
	return d
}

// start chains the arrival events. Each arrival schedules the next, so the
// event queue holds one pending arrival at a time regardless of schedule
// length.
func (d *serveDispatcher) start() {
	d.scheduleArrival(0)
}

func (d *serveDispatcher) scheduleArrival(i int) {
	if i >= len(d.w.schedule) {
		return
	}
	d.k.Eng.Schedule(d.w.schedule[i], func() {
		d.scheduleArrival(i + 1)
		d.arrive(i)
	})
}

// arrive admits or sheds request i at its scheduled arrival time.
func (d *serveDispatcher) arrive(i int) {
	if d.cfg.Capacity > 0 && d.inFlight >= d.cfg.Capacity {
		d.w.state.shed++
		d.finishReq(i, reqShed)
		return
	}
	d.inFlight++
	d.k.Eng.Schedule(d.w.schedule[i]+d.cfg.Deadline, func() { d.expire(i) })
	d.dispatch(i, attemptPrimary)
}

// stripeOf is request i's session lock stripe.
func (d *serveDispatcher) stripeOf(i int) int {
	return int(d.w.tenant[i]) % d.w.Locks
}

// dispatch routes one attempt for request i; a request no live breaker
// admits fails fast. A request whose lock stripe already has a started
// attempt in flight parks in the stripe pen instead (see stripe fencing
// above) — it re-dispatches when the stripe frees, or expires in place.
func (d *serveDispatcher) dispatch(i int, kind int8) {
	r := &d.reqs[i]
	if r.status != reqPending {
		return
	}
	if s := d.stripeOf(i); d.stripeWedged(s) {
		d.stripePen[s] = append(d.stripePen[s], i)
		return
	}
	avoid := -1
	if kind == attemptHedge || kind == attemptRetry {
		avoid = r.lastWorker
	}
	worker := d.pickWorker(i, avoid)
	if worker < 0 {
		d.failFast(i)
		return
	}
	node := d.threads[worker].Node().ID()
	a := &serveAttempt{req: i, worker: worker, node: node, kind: kind, probe: d.pickedProbe}
	d.pickedProbe = false
	r.live++
	r.lastWorker = worker
	d.enqueue(worker, a)
	if d.cfg.MaxRetries > 0 || d.cfg.BreakerThreshold > 0 {
		d.k.Eng.After(d.cfg.AttemptTimeout, func() { d.timeout(a) })
	}
	if kind == attemptPrimary && d.cfg.HedgeQuantile > 0 {
		d.k.Eng.After(d.currentHedgeDelay(), func() { d.hedge(i) })
	}
}

// pickWorker returns the first admissible worker for request i: the sticky
// primary/replica pair first (order alternating by request parity, exactly
// the static path's routing), then a deterministic scan of the rest of the
// pool. Picking a half-open node consumes its probe slot. -1 means no
// admissible worker.
func (d *serveDispatcher) pickWorker(i, avoid int) int {
	d.pickedProbe = false
	threads := len(d.boxes)
	primary := int(d.w.tenant[i]) % threads
	replica := (primary + d.half) % threads
	if i&1 == 1 {
		primary, replica = replica, primary
	}
	try := func(w int) bool {
		if w == avoid && threads > 1 {
			return false
		}
		return d.admit(d.threads[w].Node().ID())
	}
	if try(primary) {
		return primary
	}
	if replica != primary && try(replica) {
		return replica
	}
	for off := 1; off < threads; off++ {
		w := (primary + off) % threads
		if w == replica {
			continue
		}
		if try(w) {
			d.w.state.rerouted++
			return w
		}
	}
	// Last resort: accept the avoided worker rather than failing a request
	// that still has an admissible home.
	if avoid >= 0 && d.admit(d.threads[avoid].Node().ID()) {
		return avoid
	}
	return -1
}

// admit consults (and for half-open nodes, consumes) the node's breaker.
func (d *serveDispatcher) admit(node int) bool {
	if d.cfg.BreakerThreshold <= 0 {
		return true
	}
	b := &d.brk[node]
	switch b.state {
	case brkOpen:
		return false
	case brkHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		d.pickedProbe = true
	}
	return true
}

// releaseProbe frees an attempt's half-open probe slot without judging the
// node, so a later pick can probe again. Called on every resolution path
// that is not a success (noteSuccess) or a timeout with the request still
// pending (noteTimeout): cancelled attempts, drains, and attempts whose
// request was decided before they ran.
func (d *serveDispatcher) releaseProbe(a *serveAttempt) {
	if !a.probe {
		return
	}
	a.probe = false
	b := &d.brk[a.node]
	if b.state == brkHalfOpen {
		b.probing = false
	}
}

// enqueue appends an attempt to a worker's mailbox and wakes it if parked.
func (d *serveDispatcher) enqueue(worker int, a *serveAttempt) {
	box := &d.boxes[worker]
	box.q = append(box.q, a)
	if p := box.parked; p != nil {
		box.parked = nil
		p.Wake()
	}
}

// next pops the worker's oldest attempt, parking until one arrives; nil
// means the run is over and the box drained.
func (d *serveDispatcher) next(tid int, t *gos.Thread) *serveAttempt {
	box := &d.boxes[tid]
	for {
		if len(box.q) > 0 {
			a := box.q[0]
			box.q[0] = nil
			box.q = box.q[1:]
			return a
		}
		if d.closed {
			return nil
		}
		box.parked = t.Proc()
		t.Proc().Block("serve-mailbox")
	}
}

// timeout handles an attempt's timer: breaker accounting, then a retry (or
// a fast failure when the request has nothing left running and no retries
// remaining).
func (d *serveDispatcher) timeout(a *serveAttempt) {
	r := &d.reqs[a.req]
	if a.done || a.cancelled || r.status != reqPending {
		// Attempt already resolved, or its request was decided without it
		// — don't judge the node, but do free a held probe slot.
		d.releaseProbe(a)
		return
	}
	if a.started {
		// The worker has been executing this attempt past the timeout —
		// that is evidence against its node, so charge the breaker. An
		// unstarted attempt only proves its worker's queue is long (often
		// because a *different* node stalled a shared stripe); charging it
		// would open breakers on healthy nodes and cascade into a fail-fast
		// storm, so queueing timeouts just retry elsewhere.
		d.noteTimeout(a.node)
		a.probe = false // a timed-out probe was resolved by noteTimeout (reopen)
	} else {
		d.releaseProbe(a)
		a.cancelled = true
		r.live--
	}
	if d.cfg.MaxRetries > 0 && r.retries < d.cfg.MaxRetries {
		r.retries++
		d.w.state.retried++
		attempt := r.retries - 1
		delay := sim.Time(d.cfg.RetryBackoff.Delay(attempt))
		d.k.Eng.After(delay, func() {
			if d.reqs[a.req].status == reqPending {
				d.dispatch(a.req, attemptRetry)
			}
		})
		return
	}
	if r.live == 0 {
		// No attempt running, none coming: fail now instead of idling to
		// the deadline.
		d.failFast(a.req)
	}
}

// hedge dispatches a backup attempt when the primary is still unfinished
// after the hedge delay.
func (d *serveDispatcher) hedge(i int) {
	r := &d.reqs[i]
	if r.status != reqPending || r.hedges >= d.cfg.MaxHedges || r.live == 0 {
		return
	}
	if d.stripeWedged(d.stripeOf(i)) {
		// An attempt for this stripe holds the lock — the hedge would only
		// serialize behind the same critical section. Hedging here is
		// queue-jumping, not duplicate-service.
		return
	}
	r.hedges++
	d.w.state.hedged++
	d.dispatch(i, attemptHedge)
}

// expire censors a request still pending at its deadline.
func (d *serveDispatcher) expire(i int) {
	if d.reqs[i].status != reqPending {
		return
	}
	d.w.state.expired++
	d.inFlight--
	d.finishReq(i, reqExpired)
}

// failFast censors a request with no admissible or surviving attempt path.
func (d *serveDispatcher) failFast(i int) {
	if d.reqs[i].status != reqPending {
		return
	}
	d.w.state.failedFast++
	d.inFlight--
	d.finishReq(i, reqFailed)
}

// complete records a finished attempt from its worker proc. The first
// completion wins the request; anything later (a slower hedge or retry, or
// work past the deadline) is wasted work.
func (d *serveDispatcher) complete(a *serveAttempt, now sim.Time) {
	a.done = true
	r := &d.reqs[a.req]
	r.live--
	// Free the probe slot first (the worker may have been evacuated off
	// the probed node mid-service), then credit the success to wherever
	// the worker lives now — closing that node's breaker if half-open.
	d.releaseProbe(a)
	d.noteSuccess(d.threads[a.worker].Node().ID())
	d.finishStripe(a)
	if r.status != reqPending {
		d.w.state.wasted++
		return
	}
	d.w.state.record(now - d.w.schedule[a.req])
	if a.kind == attemptHedge {
		d.w.state.hedgeWins++
	}
	d.inFlight--
	d.finishReq(a.req, reqDone)
	d.reestimateHedge()
}

// stripeWedged reports that the stripe has a started attempt in flight AND
// its distributed lock is taken — dispatching another attempt would only
// queue behind the same critical section. A busy stripe whose lock is free
// means the in-flight attempt is stuck before its grant (say, its worker
// sat on a node that just crashed, so its lock request is adrift); a fresh
// attempt elsewhere can still win the lock and serve the request.
func (d *serveDispatcher) stripeWedged(s int) bool {
	return d.stripeBusy[s] > 0 && !d.k.LockAvailable(serveLockBase+s)
}

// finishStripe releases a started attempt's stripe slot and, when the
// stripe frees up, re-dispatches the oldest still-pending penned request.
func (d *serveDispatcher) finishStripe(a *serveAttempt) {
	s := d.stripeOf(a.req)
	d.stripeBusy[s]--
	if d.stripeBusy[s] > 0 {
		return
	}
	pen := d.stripePen[s]
	for len(pen) > 0 {
		i := pen[0]
		pen = pen[1:]
		if d.reqs[i].status == reqPending {
			d.stripePen[s] = pen
			d.dispatch(i, attemptReroute)
			return
		}
	}
	d.stripePen[s] = pen[:0]
}

// finishReq marks a terminal state; the last terminal closes the shop.
func (d *serveDispatcher) finishReq(i int, st reqStatus) {
	if st != reqDone {
		// Non-completions enter the latency ledger censored at the
		// deadline; see ServeStats.
		d.w.state.censor(d.cfg.Deadline)
	}
	d.reqs[i].status = st
	d.terminal++
	if d.terminal == len(d.reqs) {
		d.closed = true
		for i := range d.boxes {
			if p := d.boxes[i].parked; p != nil {
				d.boxes[i].parked = nil
				p.Wake()
			}
		}
	}
}

// currentHedgeDelay is the quantile-derived hedge delay, clamped into
// [HedgeMin, Deadline/2].
func (d *serveDispatcher) currentHedgeDelay() sim.Time {
	h := d.hedgeDelay
	if h < d.cfg.HedgeMin {
		h = d.cfg.HedgeMin
	}
	if max := d.cfg.Deadline / 2; h > max {
		h = max
	}
	return h
}

// reestimateHedge refreshes the hedge delay from the completion-latency
// quantile every 32 completions (the sort reuses the stats scratch).
func (d *serveDispatcher) reestimateHedge() {
	if d.cfg.HedgeQuantile <= 0 {
		return
	}
	d.sinceHedged++
	if d.sinceHedged < 32 || len(d.w.state.latencies) < 16 {
		return
	}
	d.sinceHedged = 0
	st := &d.w.state
	n := len(st.latencies)
	if cap(st.scratch) < n {
		st.scratch = make([]sim.Time, n)
	}
	s := st.scratch[:n]
	copy(s, st.latencies)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	d.hedgeDelay = percentile(s, d.cfg.HedgeQuantile)
}

// --- breaker transitions -----------------------------------------------------

// onDeath opens a node's breaker on the failure detector's declare-dead
// signal and re-dispatches every attempt queued on that node's workers to
// live replicas — the stranded work does not wait out its timeout.
func (d *serveDispatcher) onDeath(node int) {
	b := &d.brk[node]
	if b.state != brkOpen {
		b.state = brkOpen
		b.probing = false
		b.timeouts = 0
		d.w.state.breakerOpens++
	}
	for w := range d.boxes {
		if d.threads[w].Node().ID() != node {
			continue
		}
		box := &d.boxes[w]
		if len(box.q) == 0 {
			continue
		}
		drain := box.q
		box.q = nil
		for _, a := range drain {
			if a == nil || a.cancelled || a.done {
				continue
			}
			a.cancelled = true
			d.releaseProbe(a)
			r := &d.reqs[a.req]
			r.live--
			if r.status == reqPending {
				d.w.state.rerouted++
				d.dispatch(a.req, attemptReroute)
			}
		}
	}
}

// onRevive half-opens a dead node's breaker: the next request routed to it
// is the probe; its completion closes the breaker, its timeout reopens it.
func (d *serveDispatcher) onRevive(node int) {
	b := &d.brk[node]
	if b.state == brkOpen {
		b.state = brkHalfOpen
		b.probing = false
		b.timeouts = 0
	}
}

// noteTimeout charges an attempt timeout to the node's breaker.
func (d *serveDispatcher) noteTimeout(node int) {
	if d.cfg.BreakerThreshold <= 0 {
		return
	}
	b := &d.brk[node]
	switch b.state {
	case brkHalfOpen:
		// The probe failed: reopen and try again after the cooldown.
		b.state = brkOpen
		b.probing = false
		d.w.state.breakerOpens++
		d.scheduleCooldown(node)
	case brkClosed:
		b.timeouts++
		if b.timeouts >= d.cfg.BreakerThreshold {
			b.state = brkOpen
			b.timeouts = 0
			d.w.state.breakerOpens++
			d.scheduleCooldown(node)
		}
	}
}

// noteSuccess resets the breaker on a completed attempt; a successful
// half-open probe closes it.
func (d *serveDispatcher) noteSuccess(node int) {
	if d.cfg.BreakerThreshold <= 0 {
		return
	}
	b := &d.brk[node]
	b.timeouts = 0
	if b.state == brkHalfOpen {
		b.state = brkClosed
		b.probing = false
	}
}

// scheduleCooldown half-opens a timeout-tripped breaker after the cooldown
// (declared-dead nodes are instead half-opened by their revival beat, but
// the cooldown probe also covers a node that silently recovered).
func (d *serveDispatcher) scheduleCooldown(node int) {
	d.k.Eng.After(d.cfg.BreakerCooldown, func() {
		b := &d.brk[node]
		if b.state == brkOpen {
			b.state = brkHalfOpen
			b.probing = false
		}
	})
}

// launchRobust is ServeMix.Launch's dynamic-dispatch path: same bootstrap,
// same serving body, but workers consume dispatcher mailboxes instead of a
// precomputed schedule.
func (w *ServeMix) launchRobust(k *gos.Kernel, p Params, setup *serveSetup) {
	if err := w.Robust.Validate(); err != nil {
		panic(err)
	}
	d := newServeDispatcher(w, k, p.Threads)
	for tid := 0; tid < p.Threads; tid++ {
		tid := tid
		rng := xrand.New(p.Seed).Derive(uint64(tid) + 6211)
		d.threads[tid] = k.SpawnThread(setup.placement[tid], fmt.Sprintf("serve-%d", tid), func(t *gos.Thread) {
			if tid == 0 {
				w.bootstrap(t, setup)
			}
			t.Barrier(0, setup.parties)
			for {
				a := d.next(tid, t)
				if a == nil {
					return
				}
				r := &d.reqs[a.req]
				if a.cancelled || r.status != reqPending {
					if !a.cancelled && !a.done {
						a.cancelled = true
						r.live--
					}
					d.releaseProbe(a)
					continue
				}
				a.started = true
				d.stripeBusy[d.stripeOf(a.req)]++
				w.serveOne(t, rng, int(w.tenant[a.req]), setup)
				d.complete(a, t.Now())
			}
		})
	}
	d.start()
}
