package workload

import (
	"strings"
	"testing"

	"jessica2/internal/gos"
	"jessica2/internal/sim"
)

// robustSchedule builds a uniform arrival schedule: n requests spaced gap
// apart starting at start.
func robustSchedule(n int, start, gap sim.Time) []sim.Time {
	s := make([]sim.Time, n)
	for i := range s {
		s[i] = start + sim.Time(i)*gap
	}
	return s
}

// runRobustServe launches a ServeMix with the given robustness config on a
// fresh kernel and returns its final stats line.
func runRobustServe(t *testing.T, rc *RobustConfig, fc *gos.FailureConfig, crash func(*gos.Kernel), sched []sim.Time) (*ServeStats, *ServeMix) {
	t.Helper()
	cfg := gos.DefaultConfig()
	cfg.Nodes = 4
	cfg.Tracking = gos.TrackingOff
	cfg.Failure = fc
	k := gos.NewKernel(cfg)
	w := NewServeMix()
	w.Robust = rc
	w.SetSchedule(sched)
	if crash != nil {
		crash(k)
	}
	w.Launch(k, Params{Threads: 8, Seed: 42})
	end := k.Run()
	return w.ServeStatsInto(nil, end), w
}

// TestCensoredPercentile pins how non-completions enter the percentile
// ranking: they sit above every completion at the deadline value, so P50/
// P95/P99 over done+censored flip to the deadline exactly when the rank
// crosses into the censored tail.
func TestCensoredPercentile(t *testing.T) {
	// 90 completions 1..90us, 10 censored at 1ms: ranks 91..100.
	lat := make([]sim.Time, 90)
	for i := range lat {
		lat[i] = sim.Time(i+1) * sim.Microsecond
	}
	const dl = sim.Millisecond
	cases := []struct {
		q    float64
		want sim.Time
	}{
		{0.50, 50 * sim.Microsecond}, // rank 50: still a completion
		{0.90, 90 * sim.Microsecond}, // rank 90: the last completion
		{0.95, dl},                   // rank 95: censored
		{0.99, dl},                   // rank 99: censored
	}
	for _, c := range cases {
		if got := censoredPercentile(lat, 10, dl, c.q); got != c.want {
			t.Errorf("censoredPercentile(q=%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// No censoring == plain percentile, for every rank.
	for _, q := range []float64{0.5, 0.95, 0.99, 1.0} {
		if censoredPercentile(lat, 0, 0, q) != percentile(lat, q) {
			t.Fatalf("censoredPercentile(censored=0, q=%v) diverges from percentile", q)
		}
	}
	// All censored: every rank is the deadline.
	if got := censoredPercentile(nil, 5, dl, 0.5); got != dl {
		t.Errorf("all-censored P50 = %v, want %v", got, dl)
	}
	if got := censoredPercentile(nil, 0, dl, 0.5); got != 0 {
		t.Errorf("empty censoredPercentile = %v, want 0", got)
	}
}

// TestServeStatsCensoredView checks the snapshot math when requests were
// shed or expired: in-flight excludes them, percentiles and max price them
// at the deadline, and the SLO pair counts only true completions within
// the bound.
func TestServeStatsCensoredView(t *testing.T) {
	w := NewServeMix()
	w.Robust = &RobustConfig{Deadline: sim.Millisecond}
	w.SetSchedule(robustSchedule(10, 0, sim.Microsecond))
	w.state.reset(10)
	w.state.slo = sim.Millisecond
	for i := 0; i < 6; i++ {
		w.state.record(sim.Time(i+1) * 100 * sim.Microsecond)
	}
	w.state.shed = 1
	w.state.censor(sim.Millisecond) // the shed one
	w.state.expired = 2
	w.state.censor(sim.Millisecond)
	w.state.censor(sim.Millisecond)

	st := w.ServeStatsInto(nil, 10*sim.Millisecond)
	if st.Arrived != 10 || st.Completed != 6 {
		t.Fatalf("arrived %d done %d, want 10/6", st.Arrived, st.Completed)
	}
	if st.InFlight != 1 { // 10 arrived - 6 done - 3 censored
		t.Fatalf("inflight %d, want 1", st.InFlight)
	}
	if st.Shed != 1 || st.DeadlineExceeded != 2 {
		t.Fatalf("shed %d expired %d, want 1/2", st.Shed, st.DeadlineExceeded)
	}
	// 9 samples: 6 completions (100..600us) + 3 censored at 1ms.
	// P50 = rank 5 = 500us; P95 and P99 = rank 9 = censored.
	if st.LatencyP50 != 500*sim.Microsecond {
		t.Errorf("P50 = %v, want 500us", st.LatencyP50)
	}
	if st.LatencyP95 != sim.Millisecond || st.LatencyP99 != sim.Millisecond {
		t.Errorf("P95/P99 = %v/%v, want 1ms censored", st.LatencyP95, st.LatencyP99)
	}
	if st.LatencyMax != sim.Millisecond {
		t.Errorf("max = %v, want censored 1ms", st.LatencyMax)
	}
	if st.CompletedInSLO != 6 || st.SLOGoodputPerSec != 600 {
		t.Errorf("in-slo %d slo-goodput %v, want 6 @ 600/s", st.CompletedInSLO, st.SLOGoodputPerSec)
	}
	if !strings.Contains(st.String(), "slo-goodput") {
		t.Error("robust stats line missing robustness tail")
	}
}

// TestServeStatsOffPathUnchanged pins byte-invisibility of the layer when
// disabled: no robust tail in the stats line, zero counters, and the
// legacy in-flight arithmetic.
func TestServeStatsOffPathUnchanged(t *testing.T) {
	w := NewServeMix()
	w.SetSchedule(robustSchedule(4, 0, sim.Millisecond))
	w.state.reset(4)
	w.state.record(100 * sim.Microsecond)
	st := w.ServeStatsInto(nil, 10*sim.Millisecond)
	if st.Robust {
		t.Fatal("Robust flag set with layer off")
	}
	if st.InFlight != 3 {
		t.Fatalf("off-path inflight %d, want 3", st.InFlight)
	}
	line := st.String()
	if strings.Contains(line, "slo") || strings.Contains(line, "shed") {
		t.Fatalf("off-path stats line grew a robust tail: %q", line)
	}
	if st.Shed != 0 || st.DeadlineExceeded != 0 || st.Retried != 0 || st.Hedged != 0 {
		t.Fatal("off-path robust counters non-zero")
	}
}

// TestRobustConfigValidate rejects the nonsense configs session.Launch
// screens for.
func TestRobustConfigValidate(t *testing.T) {
	bad := []*RobustConfig{
		{},                            // no deadline
		{Deadline: -sim.Millisecond},  // negative deadline
		{Deadline: 1, Capacity: -1},   // negative capacity
		{Deadline: 1, MaxRetries: -1}, // negative retries
		{Deadline: 1, HedgeQuantile: 1.5},
		{Deadline: 1, AttemptTimeout: -1},
	}
	for i, rc := range bad {
		if rc.Validate() == nil {
			t.Errorf("bad config %d validated", i)
		}
	}
	if err := DefaultRobustConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if err := (&RobustConfig{Deadline: sim.Millisecond, Capacity: 4}).Validate(); err != nil {
		t.Fatalf("shed-only config invalid: %v", err)
	}
}

// TestRobustServeHealthy runs the full stack on a healthy cluster: every
// request must reach a terminal state, and with no faults and a generous
// deadline they should all complete within it.
func TestRobustServeHealthy(t *testing.T) {
	rc := DefaultRobustConfig()
	// Arrivals start at 10ms (past worker 0's bootstrap) and well under the
	// pool's service rate, so nothing should time out, shed, or fail.
	st, _ := runRobustServe(t, rc, nil, nil, robustSchedule(400, 10*sim.Millisecond, 200*sim.Microsecond))
	if st.Completed+int(st.Shed+st.DeadlineExceeded+st.FailedFast) != 400 {
		t.Fatalf("requests leaked: %s", st)
	}
	if st.Completed != 400 {
		t.Fatalf("healthy cluster dropped requests: %s", st)
	}
	if st.CompletedInSLO != st.Completed {
		t.Fatalf("completion past deadline recorded: in-slo %d done %d", st.CompletedInSLO, st.Completed)
	}
	if st.InFlight != 0 {
		t.Fatalf("inflight %d after run end", st.InFlight)
	}
}

// TestRobustShedsAtCapacity drives simultaneous arrivals through a
// capacity-1 admission gate: all but the admissible few must be shed, and
// shed requests must surface in the percentiles as deadline-priced misses.
func TestRobustShedsAtCapacity(t *testing.T) {
	rc := &RobustConfig{Deadline: 5 * sim.Millisecond, Capacity: 1}
	sched := make([]sim.Time, 64)
	for i := range sched {
		sched[i] = sim.Millisecond // one instant burst
	}
	st, _ := runRobustServe(t, rc, nil, nil, sched)
	if st.Shed == 0 {
		t.Fatalf("no shedding at capacity 1: %s", st)
	}
	if st.Completed+int(st.Shed+st.DeadlineExceeded+st.FailedFast) != 64 {
		t.Fatalf("requests leaked: %s", st)
	}
	if st.LatencyP99 != rc.Deadline {
		t.Fatalf("P99 = %v, want deadline %v (shed tail censored)", st.LatencyP99, rc.Deadline)
	}
}

// TestRobustDeterminism pins byte-identity of two identical robust runs,
// including one with the failure layer and a mid-run crash.
func TestRobustDeterminism(t *testing.T) {
	fc := &gos.FailureConfig{
		HeartbeatInterval: 1 * sim.Millisecond,
		LeaseTimeout:      3 * sim.Millisecond,
		SweepInterval:     1 * sim.Millisecond,
		FlushTimeout:      2 * sim.Millisecond,
		FlushBackoff:      1 * sim.Millisecond,
		MaxFlushBackoff:   8 * sim.Millisecond,
		MaxFlushRetries:   4,
	}
	crash := func(k *gos.Kernel) {
		cpu := k.Node(1).CPU()
		k.Eng.Schedule(4*sim.Millisecond, func() { cpu.SetSpeed(0.05) })
		k.Eng.Schedule(14*sim.Millisecond, func() { cpu.SetSpeed(1) })
	}
	run := func() string {
		st, _ := runRobustServe(t, DefaultRobustConfig(), fc, crash,
			robustSchedule(300, sim.Millisecond, 60*sim.Microsecond))
		return st.String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("robust run not deterministic:\n%s\n%s", a, b)
	}
}

// TestRobustBreakerOnCrash crashes a node mid-run with breakers armed: the
// declare-dead push must open the node's breaker, stranded work must be
// rerouted or censored, and every request must still be terminal by its
// deadline — none may simply vanish from the ledger.
func TestRobustBreakerOnCrash(t *testing.T) {
	fc := &gos.FailureConfig{
		HeartbeatInterval: 1 * sim.Millisecond,
		LeaseTimeout:      3 * sim.Millisecond,
		SweepInterval:     1 * sim.Millisecond,
		FlushTimeout:      2 * sim.Millisecond,
		FlushBackoff:      1 * sim.Millisecond,
		MaxFlushBackoff:   8 * sim.Millisecond,
		MaxFlushRetries:   4,
	}
	crash := func(k *gos.Kernel) {
		cpu := k.Node(1).CPU()
		k.Eng.Schedule(4*sim.Millisecond, func() { cpu.SetSpeed(0.05) })
	}
	st, _ := runRobustServe(t, DefaultRobustConfig(), fc, crash,
		robustSchedule(300, sim.Millisecond, 60*sim.Microsecond))
	if st.BreakerOpens == 0 {
		t.Fatalf("crashed node never opened a breaker: %s", st)
	}
	total := st.Completed + int(st.Shed+st.DeadlineExceeded+st.FailedFast)
	if total != 300 {
		t.Fatalf("requests leaked (%d terminal of 300): %s", total, st)
	}
	if st.Completed == 0 {
		t.Fatalf("no requests served through the crash: %s", st)
	}
}
