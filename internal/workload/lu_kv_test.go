package workload

import (
	"testing"

	"jessica2/internal/gos"
	"jessica2/internal/sim"
)

func TestThreadGrid(t *testing.T) {
	cases := []struct{ threads, pr, pc int }{
		{1, 1, 1}, {2, 1, 2}, {4, 2, 2}, {6, 2, 3}, {8, 2, 4}, {16, 4, 4}, {7, 1, 7},
	}
	for _, c := range cases {
		pr, pc := threadGrid(c.threads)
		if pr != c.pr || pc != c.pc {
			t.Errorf("threadGrid(%d) = %dx%d, want %dx%d", c.threads, pr, pc, c.pr, c.pc)
		}
	}
}

// TestLUStructure: the factorization allocates the full block matrix, is
// barrier-heavy (3 barriers per elimination step + init), and the scatter
// decomposition makes perimeter blocks shared across threads.
func TestLUStructure(t *testing.T) {
	l := NewLUSmall()
	m, k := runTCM(t, l, 4, 2, 1)
	nb := l.nb()
	for i := 0; i < nb; i++ {
		for j := 0; j < nb; j++ {
			if l.blocks[i][j] == nil {
				t.Fatalf("block (%d,%d) not allocated", i, j)
			}
		}
	}
	wantBarriers := int64(1 + 3*nb)
	if got := k.Stats().Barriers; got != wantBarriers {
		t.Errorf("barrier episodes = %d, want %d (barrier-heavy structure)", got, wantBarriers)
	}
	if m.Total() == 0 {
		t.Fatal("LU produced no inter-thread sharing")
	}
	// Scatter structure: threads sharing a grid row or column co-access
	// diagonal and perimeter blocks; grid-diagonal pairs (0,3) and (1,2)
	// only ever read each other's perimeter output, which may be zero for
	// (0,3) — so assert the guaranteed pairs only.
	for _, pair := range [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}} {
		if m.At(pair[0], pair[1]) == 0 {
			t.Errorf("grid-row/col threads %d,%d share nothing under 2D scatter", pair[0], pair[1])
		}
	}
}

// TestKVMixStructure: lock-heavy, skewed, and phase-shifting.
func TestKVMixStructure(t *testing.T) {
	w := NewKVMix()
	w.Keys, w.Rounds, w.TxnsPerRound = 512, 6, 24
	w.RoundsPerPhase = 2
	m, k := runTCM(t, w, 4, 2, 2)
	if m.Total() == 0 {
		t.Fatal("no sharing generated")
	}
	wantLocks := int64(4 * 6 * 24)
	if got := k.Stats().LockAcquires; got != wantLocks {
		t.Errorf("lock acquires = %d, want %d (one per transaction)", got, wantLocks)
	}
	// Intrinsic phase shifting: rounds 0-1 phase 0, 2-3 phase 1, 4-5 phase 2.
	for tid, trace := range w.PhaseTrace {
		want := []int{0, 0, 1, 1, 2, 2}
		if len(trace) != len(want) {
			t.Fatalf("thread %d phase trace %v", tid, trace)
		}
		for r, ph := range want {
			if trace[r] != ph {
				t.Errorf("thread %d round %d phase = %d, want %d", tid, r, trace[r], ph)
			}
		}
	}
}

// TestKVMixExternalPhaseRegister: an installed Phase register overrides the
// intrinsic schedule, and scheduled mid-run shifts are observed.
func TestKVMixExternalPhaseRegister(t *testing.T) {
	w := NewKVMix()
	w.Keys, w.Rounds, w.TxnsPerRound = 256, 8, 16
	cfg := gos.DefaultConfig()
	cfg.Nodes = 2
	k := gos.NewKernel(cfg)
	var ph Phase
	// Shift to phase 3 early in the run.
	k.Eng.Schedule(2*sim.Millisecond, func() { ph.Set(3) })
	w.Launch(k, Params{Threads: 2, Seed: 3, Phase: &ph})
	k.Run()
	trace := w.PhaseTrace[0]
	if trace[0] != 0 {
		t.Errorf("first round phase = %d, want 0", trace[0])
	}
	last := trace[len(trace)-1]
	if last != 3 {
		t.Errorf("final round phase = %d, want 3 (external shift not observed)", last)
	}
}

// TestKVMixSkew: the Zipf draw concentrates traffic — the hottest record
// must be touched far more than the median.
func TestKVMixSkew(t *testing.T) {
	w := NewKVMix()
	w.Keys, w.Rounds, w.TxnsPerRound = 256, 4, 64
	w.RoundsPerPhase = 0 // fixed hot set
	_, k := runTCM(t, w, 4, 2, 4)
	if k.Stats().Checks == 0 {
		t.Fatal("no accesses")
	}
	// The table partitions across threads; with a fixed hot window the
	// first keys are hottest, so thread 0's region takes remote faults
	// from everyone.
	if k.Stats().Faults == 0 {
		t.Fatal("skewed mix produced no remote faults")
	}
}
