package network

import (
	"testing"

	"jessica2/internal/sim"
)

func TestTransferTimeMath(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, Config{Latency: 100 * sim.Microsecond, BandwidthBytesPerSec: 1_000_000, HeaderBytes: 0})
	// 1 MB/s: 1000 bytes take 1 ms, plus 100 us latency.
	got := n.TransferTime(1000)
	want := 100*sim.Microsecond + 1*sim.Millisecond
	if got != want {
		t.Fatalf("transfer time = %v, want %v", got, want)
	}
}

func TestZeroBandwidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero bandwidth did not panic")
		}
	}()
	New(sim.NewEngine(), Config{})
}

func TestDeliveryAndAccounting(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, DefaultConfig())
	var got *Message
	n.Bind(1, func(m *Message) { got = m })
	n.Bind(0, func(m *Message) {})
	n.Send(0, 1, CatGOSData, 500, "payload")
	if n.InFlight() != 1 {
		t.Fatal("message not in flight")
	}
	eng.Run()
	if got == nil || got.Payload.(string) != "payload" {
		t.Fatal("message not delivered")
	}
	if got.DeliveredAt <= got.SentAt {
		t.Fatal("no latency applied")
	}
	st := n.Stats()
	if st.CatBytes(CatGOSData) != 500 {
		t.Fatalf("gos bytes = %d", st.CatBytes(CatGOSData))
	}
	if st.HeaderBytesTotal != int64(DefaultConfig().HeaderBytes) {
		t.Fatal("header not accounted")
	}
	if n.InFlight() != 0 {
		t.Fatal("in-flight count not decremented")
	}
}

func TestPiggybackParts(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, DefaultConfig())
	n.Bind(0, func(m *Message) {})
	var parts int
	n.Bind(1, func(m *Message) { parts = len(m.Parts) })
	n.SendParts(0, 1, []Part{
		{Cat: CatControl, Bytes: 16},
		{Cat: CatOAL, Bytes: 4000},
	}, nil)
	eng.Run()
	if parts != 2 {
		t.Fatalf("parts = %d", parts)
	}
	st := n.Stats()
	if st.CatBytes(CatControl) != 16 || st.CatBytes(CatOAL) != 4000 {
		t.Fatalf("split accounting wrong: %v", st)
	}
	// One message, one header.
	if st.HeaderBytesTotal != int64(DefaultConfig().HeaderBytes) {
		t.Fatal("piggyback must pay one header")
	}
}

func TestLocalDeliveryFreeAndUncounted(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, DefaultConfig())
	delivered := false
	n.Bind(0, func(m *Message) { delivered = true })
	n.Send(0, 0, CatOAL, 9999, nil)
	eng.Run()
	if !delivered {
		t.Fatal("local message lost")
	}
	if n.Stats().TotalBytes() != 0 {
		t.Fatal("local messages must not count as traffic")
	}
	if eng.Now() != 0 {
		t.Fatal("local delivery must be instantaneous")
	}
}

func TestPerNodeStats(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, DefaultConfig())
	for i := NodeID(0); i < 3; i++ {
		n.Bind(i, func(m *Message) {})
	}
	n.Send(1, 2, CatGOSData, 100, nil)
	n.Send(2, 1, CatGOSData, 300, nil)
	eng.Run()
	if n.NodeStats(1).CatBytes(CatGOSData) != 100 {
		t.Fatal("node 1 stats wrong")
	}
	if n.NodeStats(2).CatBytes(CatGOSData) != 300 {
		t.Fatal("node 2 stats wrong")
	}
	if n.NodeStats(7).TotalBytes() != 0 {
		t.Fatal("unknown node should be zero")
	}
}

func TestUnboundHandlerPanics(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, DefaultConfig())
	n.Bind(0, func(m *Message) {})
	n.Send(0, 5, CatControl, 10, nil)
	defer func() {
		if recover() == nil {
			t.Error("unbound destination did not panic")
		}
	}()
	eng.Run()
}

func TestFIFOPerOrderedSends(t *testing.T) {
	// Equal-size messages sent back-to-back arrive in order.
	eng := sim.NewEngine()
	n := New(eng, DefaultConfig())
	n.Bind(0, func(m *Message) {})
	var order []int
	n.Bind(1, func(m *Message) { order = append(order, m.Payload.(int)) })
	for i := 0; i < 5; i++ {
		n.Send(0, 1, CatControl, 64, i)
	}
	eng.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestCategoryString(t *testing.T) {
	if CatOAL.String() != "oal" || CatGOSData.String() != "gos-data" {
		t.Fatal("category names wrong")
	}
	if Category(99).String() == "" {
		t.Fatal("unknown category must render")
	}
	if len(Stats{}.String()) == 0 {
		t.Fatal("stats string empty")
	}
}

func TestMessageTotalBytes(t *testing.T) {
	m := &Message{Parts: []Part{{CatControl, 10}, {CatOAL, 20}}}
	if m.TotalBytes(64) != 94 {
		t.Fatalf("total = %d", m.TotalBytes(64))
	}
}
