// Package network models the cluster interconnect of the distributed JVM:
// a switched full-duplex network (Fast Ethernet in the paper's testbed) with
// per-message latency, bandwidth-proportional transfer time, and per-category
// traffic accounting. OAL (profiling) traffic can piggyback on protocol
// messages, which is how the paper keeps profiling bandwidth bursty but
// cheap.
package network

import (
	"fmt"
	"sort"

	"jessica2/internal/sim"
)

// NodeID identifies a cluster node. Node 0 is conventionally the master JVM.
type NodeID int

// Category classifies traffic for the accounting the paper reports
// (Table III separates GOS message volume from OAL message volume).
type Category int

// Traffic categories.
const (
	CatControl   Category = iota // protocol control: lock grants, barrier msgs
	CatGOSData                   // object fetches, diffs, write notices
	CatOAL                       // object access list (profiling) payloads
	CatMigration                 // thread contexts and prefetched sticky sets
	numCategories
)

func (c Category) String() string {
	switch c {
	case CatControl:
		return "control"
	case CatGOSData:
		return "gos-data"
	case CatOAL:
		return "oal"
	case CatMigration:
		return "migration"
	default:
		return fmt.Sprintf("category(%d)", int(c))
	}
}

// Part is one category's share of a (possibly piggybacked) message.
type Part struct {
	Cat   Category
	Bytes int
}

// Message is what a handler receives.
type Message struct {
	From, To NodeID
	Parts    []Part
	Payload  any
	// SentAt / DeliveredAt are virtual times for latency diagnostics.
	SentAt, DeliveredAt sim.Time

	// partsBuf inline-stores the parts: every protocol message carries one
	// or two categories, so Send/SendParts fill this buffer instead of
	// allocating a separate Parts array (and the caller's parts slice no
	// longer escapes).
	partsBuf [2]Part
}

// TotalBytes sums all parts plus the fixed per-message header.
func (m *Message) TotalBytes(headerBytes int) int {
	n := headerBytes
	for _, p := range m.Parts {
		n += p.Bytes
	}
	return n
}

// Config sets the physical characteristics of the interconnect.
type Config struct {
	// Latency is the one-way propagation + protocol stack delay.
	Latency sim.Time
	// BandwidthBytesPerSec is the per-link throughput.
	BandwidthBytesPerSec int64
	// HeaderBytes is the fixed per-message overhead (Ethernet + IP + UDP +
	// DJVM protocol header).
	HeaderBytes int
}

// DefaultConfig approximates the paper's Fast Ethernet testbed.
func DefaultConfig() Config {
	return Config{
		Latency:              120 * sim.Microsecond,
		BandwidthBytesPerSec: 100_000_000 / 8, // 100 Mbps
		HeaderBytes:          64,
	}
}

// Handler consumes a delivered message. Handlers run in scheduler context
// and must not block; they may wake procs and schedule events.
type Handler func(*Message)

// Shaper is a time-varying link model: when installed, it replaces the
// static latency + serialization formula for every remote message. The
// scenario engine uses it to model latency/bandwidth ramps, jitter and
// degraded links. Implementations must be deterministic functions of their
// arguments and their own internal state — messages are posted in a
// deterministic order, so a seeded stream drawn per message is fine.
type Shaper interface {
	// TransferTime returns the total delivery delay for a message of
	// totalBytes (payload + header) posted at now from -> to. cfg is the
	// network's static physical configuration. Negative results are
	// clamped to zero by the caller.
	TransferTime(now sim.Time, from, to NodeID, totalBytes int, cfg Config) sim.Time
}

// Verdict is an Interceptor's decision for one remote message.
type Verdict struct {
	// Drop loses the message: it is accounted as sent (the bytes hit the
	// wire) but never delivered. Dropping protocol traffic a blocked proc
	// waits on deadlocks the simulation, so interceptors should only drop
	// traffic with an application-level retry path (e.g. dedicated OAL
	// flushes).
	Drop bool
	// Duplicate delivers the message twice (the duplicate arrives one extra
	// base latency after the original) — the at-least-once failure mode
	// idempotent receivers must tolerate.
	Duplicate bool
	// Delay adds extra delivery latency on top of the link model (negative
	// values are ignored). Deferral — e.g. holding traffic across a
	// partition until it heals — is a large finite Delay.
	Delay sim.Time
}

// Interceptor injects per-message failures: it sees every remote message
// after the link model computed its delay and decides its fate. Like
// Shaper, implementations must be deterministic functions of their
// arguments and internal state — messages post in deterministic order, so
// a seeded per-message stream is fine. primary is the message's first
// part's category (the protocol category for piggybacked messages), which
// lets an interceptor target dedicated profiling flushes without seeing
// payloads. Local sends (from == to) bypass interception.
type Interceptor interface {
	Intercept(now sim.Time, from, to NodeID, primary Category, totalBytes int) Verdict
}

// Stats aggregates per-category traffic.
type Stats struct {
	Bytes    [numCategories]int64
	Messages [numCategories]int64
	// HeaderBytesTotal counts fixed header overhead across all messages.
	HeaderBytesTotal int64
	// Dropped and Duplicated count interceptor verdicts (always zero when
	// no interceptor is installed). They are deliberately excluded from
	// String(): failure-free reports must render byte-identically to
	// builds that predate fault injection.
	Dropped    int64
	Duplicated int64
}

// CatBytes returns the byte count for one category.
func (s Stats) CatBytes(c Category) int64 { return s.Bytes[c] }

// TotalBytes sums payload bytes over all categories plus headers.
func (s Stats) TotalBytes() int64 {
	var n int64 = s.HeaderBytesTotal
	for _, b := range s.Bytes {
		n += b
	}
	return n
}

// String renders the stats sorted by category for stable output.
func (s Stats) String() string {
	type row struct {
		cat   Category
		bytes int64
		msgs  int64
	}
	var rows []row
	for c := Category(0); c < numCategories; c++ {
		rows = append(rows, row{c, s.Bytes[c], s.Messages[c]})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].cat < rows[j].cat })
	out := ""
	for _, r := range rows {
		out += fmt.Sprintf("%s: %d bytes / %d msgs\n", r.cat, r.bytes, r.msgs)
	}
	return out
}

// Network connects a fixed set of nodes.
type Network struct {
	eng      *sim.Engine
	cfg      Config
	handlers map[NodeID]Handler
	stats    Stats
	perNode  map[NodeID]*Stats
	inFlight int
	shaper   Shaper
	icept    Interceptor
}

// New creates a network over the engine with the given physical config.
func New(eng *sim.Engine, cfg Config) *Network {
	if cfg.BandwidthBytesPerSec <= 0 {
		panic("network: non-positive bandwidth")
	}
	return &Network{
		eng:      eng,
		cfg:      cfg,
		handlers: make(map[NodeID]Handler),
		perNode:  make(map[NodeID]*Stats),
	}
}

// Bind installs the message handler for a node. Rebinding replaces the
// previous handler.
func (n *Network) Bind(id NodeID, h Handler) { n.handlers[id] = h }

// Config returns the physical configuration.
func (n *Network) Config() Config { return n.cfg }

// Stats returns a snapshot of global traffic stats.
func (n *Network) Stats() Stats { return n.stats }

// NodeStats returns traffic originated by the given node.
func (n *Network) NodeStats(id NodeID) Stats {
	if s := n.perNode[id]; s != nil {
		return *s
	}
	return Stats{}
}

// InFlight reports messages sent but not yet delivered.
func (n *Network) InFlight() int { return n.inFlight }

// SetShaper installs (or, with nil, removes) a time-varying link model.
func (n *Network) SetShaper(s Shaper) { n.shaper = s }

// SetInterceptor installs (or, with nil, removes) the per-message failure
// injector. It composes with an installed Shaper: the shaper computes the
// delay, the interceptor then decides the message's fate.
func (n *Network) SetInterceptor(i Interceptor) { n.icept = i }

// TransferTime computes latency + serialization delay for a payload size.
func (n *Network) TransferTime(totalBytes int) sim.Time {
	ser := sim.Time(int64(totalBytes) * int64(sim.Second) / n.cfg.BandwidthBytesPerSec)
	return n.cfg.Latency + ser
}

// Send transmits a single-category message. See SendParts.
func (n *Network) Send(from, to NodeID, cat Category, bytes int, payload any) {
	msg := &Message{From: from, To: to, Payload: payload, SentAt: n.eng.Now()}
	msg.partsBuf[0] = Part{Cat: cat, Bytes: bytes}
	msg.Parts = msg.partsBuf[:1]
	n.post(msg)
}

// SendParts transmits a message whose payload is split across categories
// (piggybacking): transfer time is charged on the total size while the
// accounting splits per category. Local sends (from == to) are delivered
// with zero delay and no traffic accounting.
func (n *Network) SendParts(from, to NodeID, parts []Part, payload any) {
	msg := &Message{From: from, To: to, Payload: payload, SentAt: n.eng.Now()}
	msg.Parts = append(msg.partsBuf[:0], parts...)
	n.post(msg)
}

// post schedules the message's delivery.
func (n *Network) post(msg *Message) {
	from, to, parts := msg.From, msg.To, msg.Parts
	if from == to {
		n.eng.After(0, func() {
			msg.DeliveredAt = n.eng.Now()
			n.deliver(msg)
		})
		return
	}
	total := msg.TotalBytes(n.cfg.HeaderBytes)
	n.account(from, parts)
	delay := n.TransferTime(total)
	if n.shaper != nil {
		// Clamp shaper pathologies: extreme jitter or degenerate bandwidth
		// factors must not yield negative (or NaN — which fails every
		// comparison, so the clamp catches it too) delivery delays.
		if d := n.shaper.TransferTime(n.eng.Now(), from, to, total, n.cfg); d >= 0 {
			delay = d
		} else {
			delay = 0
		}
	}
	if n.icept != nil {
		primary := CatControl
		if len(parts) > 0 {
			primary = parts[0].Cat
		}
		v := n.icept.Intercept(n.eng.Now(), from, to, primary, total)
		if v.Drop {
			n.stats.Dropped++
			return // accounted on the wire, never delivered
		}
		if v.Delay > 0 {
			delay += v.Delay
		}
		if v.Duplicate {
			n.stats.Duplicated++
			n.inFlight++
			n.eng.After(delay+n.cfg.Latency, func() {
				n.inFlight--
				n.deliver(msg)
			})
		}
	}
	n.inFlight++
	n.eng.After(delay, func() {
		n.inFlight--
		msg.DeliveredAt = n.eng.Now()
		n.deliver(msg)
	})
}

func (n *Network) account(from NodeID, parts []Part) {
	ns := n.perNode[from]
	if ns == nil {
		ns = &Stats{}
		n.perNode[from] = ns
	}
	n.stats.HeaderBytesTotal += int64(n.cfg.HeaderBytes)
	ns.HeaderBytesTotal += int64(n.cfg.HeaderBytes)
	for _, p := range parts {
		n.stats.Bytes[p.Cat] += int64(p.Bytes)
		n.stats.Messages[p.Cat]++
		ns.Bytes[p.Cat] += int64(p.Bytes)
		ns.Messages[p.Cat]++
	}
}

func (n *Network) deliver(msg *Message) {
	h := n.handlers[msg.To]
	if h == nil {
		panic(fmt.Sprintf("network: no handler bound for node %d", msg.To))
	}
	h(msg)
}
