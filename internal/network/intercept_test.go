package network

import (
	"testing"

	"jessica2/internal/sim"
)

// fixedShaper returns a constant delay regardless of message or time.
type fixedShaper struct{ d sim.Time }

func (s fixedShaper) TransferTime(sim.Time, NodeID, NodeID, int, Config) sim.Time { return s.d }

// TestShaperDelayClamping: pathological shaper outputs must never produce
// negative delivery delays — the message arrives at or after its send time,
// and the run keeps terminating.
func TestShaperDelayClamping(t *testing.T) {
	cases := []struct {
		name   string
		shaper Shaper
		// wantMin/wantMax bound the accepted delivery delay.
		wantMin, wantMax sim.Time
	}{
		{"negative-latency-from-jitter", fixedShaper{-5 * sim.Millisecond}, 0, 0},
		{"zero-delay", fixedShaper{0}, 0, 0},
		{"normal", fixedShaper{3 * sim.Microsecond}, 3 * sim.Microsecond, 3 * sim.Microsecond},
		{"huge-but-finite", fixedShaper{sim.Second}, sim.Second, sim.Second},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			eng := sim.NewEngine()
			n := New(eng, DefaultConfig())
			n.SetShaper(tc.shaper)
			var deliveredAt sim.Time
			delivered := false
			n.Bind(1, func(m *Message) { deliveredAt, delivered = eng.Now(), true })
			n.Send(0, 1, CatGOSData, 100, nil)
			eng.Run()
			if !delivered {
				t.Fatal("message never delivered")
			}
			if deliveredAt < tc.wantMin || deliveredAt > tc.wantMax {
				t.Fatalf("delivered at %v, want within [%v, %v]", deliveredAt, tc.wantMin, tc.wantMax)
			}
		})
	}
}

// scriptIcept replays a fixed verdict sequence in call order.
type scriptIcept struct {
	verdicts []Verdict
	calls    int
	primary  []Category
}

func (s *scriptIcept) Intercept(_ sim.Time, _, _ NodeID, primary Category, _ int) Verdict {
	s.primary = append(s.primary, primary)
	v := Verdict{}
	if s.calls < len(s.verdicts) {
		v = s.verdicts[s.calls]
	}
	s.calls++
	return v
}

// TestInterceptorVerdicts: drop loses the message (but keeps the wire
// accounting), duplicate delivers twice with the original first, and delay
// pushes delivery out; negative delay is ignored.
func TestInterceptorVerdicts(t *testing.T) {
	cases := []struct {
		name         string
		verdict      Verdict
		deliveries   int
		wantDrop     int64
		wantDup      int64
		minDelay     sim.Time
		extraAtLeast sim.Time
	}{
		{"pass", Verdict{}, 1, 0, 0, 0, 0},
		{"drop", Verdict{Drop: true}, 0, 1, 0, 0, 0},
		{"duplicate", Verdict{Duplicate: true}, 2, 0, 1, 0, 0},
		{"delay", Verdict{Delay: 2 * sim.Millisecond}, 1, 0, 0, 2 * sim.Millisecond, 2 * sim.Millisecond},
		{"negative-delay-ignored", Verdict{Delay: -sim.Second}, 1, 0, 0, 0, 0},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			eng := sim.NewEngine()
			n := New(eng, DefaultConfig())
			ic := &scriptIcept{verdicts: []Verdict{tc.verdict}}
			n.SetInterceptor(ic)
			var times []sim.Time
			n.Bind(1, func(m *Message) { times = append(times, eng.Now()) })
			n.Send(0, 1, CatOAL, 256, nil)
			base := n.TransferTime(256 + n.Config().HeaderBytes)
			eng.Run()
			if len(times) != tc.deliveries {
				t.Fatalf("deliveries = %d, want %d", len(times), tc.deliveries)
			}
			st := n.Stats()
			if st.Dropped != tc.wantDrop || st.Duplicated != tc.wantDup {
				t.Fatalf("dropped/duplicated = %d/%d, want %d/%d", st.Dropped, st.Duplicated, tc.wantDrop, tc.wantDup)
			}
			if st.CatBytes(CatOAL) != 256 {
				t.Fatalf("wire accounting changed: %d bytes", st.CatBytes(CatOAL))
			}
			for i, at := range times {
				if at < base+tc.minDelay {
					t.Fatalf("delivery %d at %v, want >= %v", i, at, base+tc.minDelay)
				}
			}
			if tc.deliveries == 2 && times[1] <= times[0] {
				t.Fatalf("duplicate at %v not after original at %v", times[1], times[0])
			}
			if ic.calls != 1 {
				t.Fatalf("interceptor consulted %d times for one send", ic.calls)
			}
			if n.InFlight() != 0 {
				t.Fatalf("in-flight = %d after drain", n.InFlight())
			}
		})
	}
}

// TestInterceptorPrimaryCategoryAndLocalBypass: the interceptor sees the
// first part's category (the protocol category of piggybacked messages) and
// is never consulted for local sends.
func TestInterceptorPrimaryCategoryAndLocalBypass(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, DefaultConfig())
	ic := &scriptIcept{}
	n.SetInterceptor(ic)
	n.Bind(0, func(m *Message) {})
	n.Bind(1, func(m *Message) {})
	n.SendParts(0, 1, []Part{{Cat: CatControl, Bytes: 24}, {Cat: CatOAL, Bytes: 512}}, nil)
	n.Send(0, 1, CatOAL, 64, nil)
	n.Send(1, 1, CatOAL, 64, nil) // local: must bypass
	eng.Run()
	if ic.calls != 2 {
		t.Fatalf("interceptor consulted %d times, want 2 (local send bypasses)", ic.calls)
	}
	if ic.primary[0] != CatControl || ic.primary[1] != CatOAL {
		t.Fatalf("primary categories = %v, want [control oal]", ic.primary)
	}
}

// TestShaperComposesWithInterceptor: a shaper's delay and an interceptor's
// extra delay stack.
func TestShaperComposesWithInterceptor(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, DefaultConfig())
	n.SetShaper(fixedShaper{1 * sim.Millisecond})
	n.SetInterceptor(&scriptIcept{verdicts: []Verdict{{Delay: 3 * sim.Millisecond}}})
	var at sim.Time
	n.Bind(1, func(m *Message) { at = eng.Now() })
	n.Send(0, 1, CatGOSData, 10, nil)
	eng.Run()
	if want := 4 * sim.Millisecond; at != want {
		t.Fatalf("delivered at %v, want %v", at, want)
	}
}
