// Package profile is the versioned, deterministic profile store: it
// serializes a session's end-of-run profiling artifacts — the thread
// correlation map (fixed-point cells), per-thread sticky footprints, the
// adaptive sampling-rate trace, the per-epoch placement decisions, and a
// workload/scenario fingerprint — to a self-describing binary format, and
// loads them back for profile-guided warm starts (session.Config.Profile,
// session.WarmStartPolicy).
//
// The format is magic + version + fingerprint header + length-prefixed
// sections + CRC32 trailer, all little-endian. Encoding is a pure function
// of the Profile value (every map is sorted before it is written), so the
// same profile always produces the same bytes, and Encode→Decode is exact:
// TCM cells travel as the incremental builder's scaled fixed-point int64
// units and float64 fields travel as IEEE-754 bit patterns. Decoding
// rejects foreign files (ErrBadMagic), files from a newer format revision
// (ErrVersion), and anything truncated or bit-flipped (ErrCorrupt, via the
// CRC and per-field bounds checks) — it never panics on hostile input,
// which FuzzProfileDecode enforces.
package profile

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"

	"jessica2/internal/sampling"
	"jessica2/internal/sim"
	"jessica2/internal/tcm"
)

// Version is the current format revision. Decoders accept this revision
// only: the format is forward-incompatible by design (a stored profile is
// a cache, not an archive — regenerating one costs a single run).
const Version = 1

// magic identifies a jessica2 profile file.
var magic = [4]byte{'J', '2', 'P', 'F'}

// Typed decode/load errors. Decode wraps them with positional detail;
// match with errors.Is.
var (
	// ErrBadMagic rejects files that are not jessica2 profiles at all.
	ErrBadMagic = errors.New("profile: bad magic (not a jessica2 profile)")
	// ErrVersion rejects profiles written by a different format revision.
	ErrVersion = errors.New("profile: unsupported format version")
	// ErrCorrupt rejects truncated or bit-flipped payloads (CRC or
	// structural bounds-check failure).
	ErrCorrupt = errors.New("profile: corrupt payload")
	// ErrFingerprintMismatch reports a profile recorded under a different
	// workload/cluster/scenario configuration than the session loading it.
	// The session layer degrades to a cold start (with a warning) instead
	// of failing the run.
	ErrFingerprintMismatch = errors.New("profile: fingerprint mismatch")
)

// Fingerprint identifies the run configuration a profile was recorded
// under. Warm starts require an exact match: applying a placement recorded
// for different threads, nodes, seed or scenario would be worse than
// starting cold.
type Fingerprint struct {
	// Workload is the launched workload name ("," joined in launch order
	// for multi-workload sessions).
	Workload string
	// Scenario is the perturbation scenario name ("" when unperturbed).
	Scenario string
	// Nodes and Threads are the cluster and thread dimensions.
	Nodes, Threads int
	// Seed is the workload seed.
	Seed uint64
}

// Match reports whether two fingerprints identify the same configuration.
func (f Fingerprint) Match(other Fingerprint) bool { return f == other }

func (f Fingerprint) String() string {
	scen := f.Scenario
	if scen == "" {
		scen = "none"
	}
	return fmt.Sprintf("%s nodes=%d threads=%d seed=%d scenario=%s",
		f.Workload, f.Nodes, f.Threads, f.Seed, scen)
}

// HotHome is one stored hot-object home: the object's dense key and the
// node its home had converged to by the end of the recorded run. Object
// keys are stable across same-fingerprint runs (allocation order is
// deterministic), which is what makes replaying homes meaningful.
type HotHome struct {
	Key  int64
	Home int32
}

// ClassBytes is one class's byte share of a sticky footprint.
type ClassBytes struct {
	Class string
	Bytes int64
}

// ThreadFootprint is one thread's sticky-set footprint, classes ascending.
type ThreadFootprint struct {
	Thread  int32
	Classes []ClassBytes
}

// RateChange mirrors core.RateChange with the distance stored as IEEE-754
// bits so the trace round-trips byte-exactly.
type RateChange struct {
	At        sim.Time
	From, To  sampling.Rate
	Distance  float64
	Converged bool
	Resampled int32
}

// Decision kinds.
const (
	DecisionMigrateThread = uint8(iota)
	DecisionRehomeObject
	DecisionSetRate
)

// Decision is one applied per-epoch policy action from the recorded run:
// (Epoch, At, Kind, A, B) where A/B are (thread, node), (object, node) or
// (rate, 0) by kind.
type Decision struct {
	Epoch int32
	At    sim.Time
	Kind  uint8
	A, B  int64
}

// Profile is the end-of-run artifact a session persists and a warm start
// consumes.
type Profile struct {
	Fingerprint Fingerprint
	// TCMThreads is the correlation map dimension; TCMCells holds the N×N
	// cells row-major in the incremental builder's scaled fixed-point
	// units (both symmetric mirrors, exactly as accumulated).
	TCMThreads int
	TCMCells   []int64
	// Assignment is the end-of-run thread→node placement.
	Assignment []int
	// HotHomes are the shared objects' converged homes, key ascending.
	HotHomes []HotHome
	// Footprints are the per-thread sticky footprints, thread ascending.
	Footprints []ThreadFootprint
	// RateTrace is the adaptive controller's decision log.
	RateTrace []RateChange
	// Decisions are the applied per-epoch policy actions.
	Decisions []Decision
}

// TCM reconstructs the stored correlation map.
func (p *Profile) TCM() *tcm.Map {
	return tcm.NewMapFromFixed(p.TCMThreads, p.TCMCells)
}

// HomeOf returns the stored home for an object key (binary search over the
// ascending HotHomes list) and whether one is stored.
func (p *Profile) HomeOf(key int64) (int, bool) {
	lo, hi := 0, len(p.HotHomes)
	for lo < hi {
		mid := (lo + hi) / 2
		if p.HotHomes[mid].Key < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(p.HotHomes) && p.HotHomes[lo].Key == key {
		return int(p.HotHomes[lo].Home), true
	}
	return 0, false
}

// --- encoding ----------------------------------------------------------------

// writer accumulates the little-endian payload.
type writer struct{ buf []byte }

func (w *writer) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *writer) u32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *writer) u64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *writer) i64(v int64)  { w.u64(uint64(v)) }
func (w *writer) f64(v float64) {
	w.u64(math.Float64bits(v))
}
func (w *writer) str(s string) {
	w.u32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

// Encode serializes the profile. The output is a pure function of p.
func Encode(p *Profile) []byte {
	var w writer
	w.buf = append(w.buf, magic[:]...)
	w.u32(Version)

	// Fingerprint header.
	w.str(p.Fingerprint.Workload)
	w.str(p.Fingerprint.Scenario)
	w.u32(uint32(p.Fingerprint.Nodes))
	w.u32(uint32(p.Fingerprint.Threads))
	w.u64(p.Fingerprint.Seed)

	// TCM cells (fixed point).
	w.u32(uint32(p.TCMThreads))
	w.u32(uint32(len(p.TCMCells)))
	for _, c := range p.TCMCells {
		w.i64(c)
	}

	// Placement.
	w.u32(uint32(len(p.Assignment)))
	for _, n := range p.Assignment {
		w.u32(uint32(n))
	}

	// Hot-object homes.
	w.u32(uint32(len(p.HotHomes)))
	for _, h := range p.HotHomes {
		w.i64(h.Key)
		w.u32(uint32(h.Home))
	}

	// Footprints.
	w.u32(uint32(len(p.Footprints)))
	for _, fp := range p.Footprints {
		w.u32(uint32(fp.Thread))
		w.u32(uint32(len(fp.Classes)))
		for _, c := range fp.Classes {
			w.str(c.Class)
			w.i64(c.Bytes)
		}
	}

	// Rate trace.
	w.u32(uint32(len(p.RateTrace)))
	for _, rc := range p.RateTrace {
		w.i64(int64(rc.At))
		w.i64(int64(rc.From))
		w.i64(int64(rc.To))
		w.f64(rc.Distance)
		if rc.Converged {
			w.u8(1)
		} else {
			w.u8(0)
		}
		w.u32(uint32(rc.Resampled))
	}

	// Decisions.
	w.u32(uint32(len(p.Decisions)))
	for _, d := range p.Decisions {
		w.u32(uint32(d.Epoch))
		w.i64(int64(d.At))
		w.u8(d.Kind)
		w.i64(d.A)
		w.i64(d.B)
	}

	// CRC32 trailer over everything above (magic and version included, so
	// a bit flip anywhere in the file is caught).
	w.u32(crc32.ChecksumIEEE(w.buf))
	return w.buf
}

// --- decoding ----------------------------------------------------------------

// reader walks the payload with bounds checks; the first overrun latches
// err and every subsequent read returns zero.
type reader struct {
	data []byte
	pos  int
	err  error
}

func (r *reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: truncated %s at offset %d", ErrCorrupt, what, r.pos)
	}
}

func (r *reader) take(n int, what string) []byte {
	if r.err != nil || n < 0 || r.pos+n > len(r.data) {
		r.fail(what)
		return nil
	}
	b := r.data[r.pos : r.pos+n]
	r.pos += n
	return b
}

func (r *reader) u8(what string) uint8 {
	b := r.take(1, what)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u32(what string) uint32 {
	b := r.take(4, what)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) u64(what string) uint64 {
	b := r.take(8, what)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *reader) i64(what string) int64   { return int64(r.u64(what)) }
func (r *reader) f64(what string) float64 { return math.Float64frombits(r.u64(what)) }

func (r *reader) str(what string) string {
	n := r.u32(what)
	b := r.take(int(n), what)
	if b == nil {
		return ""
	}
	return string(b)
}

// count reads a length prefix and rejects counts that could not possibly
// fit in the remaining payload (minSize bytes per element), so a corrupt
// length cannot trigger a huge allocation.
func (r *reader) count(minSize int, what string) int {
	n := int(r.u32(what))
	if r.err != nil {
		return 0
	}
	if n < 0 || n*minSize > len(r.data)-r.pos {
		r.fail(what + " count")
		return 0
	}
	return n
}

// Decode parses an encoded profile, verifying magic, version and CRC.
// Hostile input returns a typed error (ErrBadMagic, ErrVersion or
// ErrCorrupt); it never panics. Empty sections decode to nil slices — the
// canonical in-memory form — so Decode∘Encode is exact for profiles a
// session captures and Encode∘Decode is exact for every accepted input.
func Decode(data []byte) (*Profile, error) {
	if len(data) < len(magic)+4+4 { // magic + version + CRC minimum
		return nil, fmt.Errorf("%w: %d bytes", ErrCorrupt, len(data))
	}
	if string(data[:4]) != string(magic[:]) {
		return nil, ErrBadMagic
	}
	// CRC trailer covers everything before it.
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(trailer) {
		return nil, fmt.Errorf("%w: CRC mismatch", ErrCorrupt)
	}
	r := &reader{data: body, pos: 4}
	if v := r.u32("version"); v != Version {
		return nil, fmt.Errorf("%w: file version %d, this build reads %d", ErrVersion, v, Version)
	}

	p := &Profile{}
	p.Fingerprint.Workload = r.str("fingerprint workload")
	p.Fingerprint.Scenario = r.str("fingerprint scenario")
	p.Fingerprint.Nodes = int(r.u32("fingerprint nodes"))
	p.Fingerprint.Threads = int(r.u32("fingerprint threads"))
	p.Fingerprint.Seed = r.u64("fingerprint seed")

	p.TCMThreads = int(r.u32("tcm dimension"))
	if n := r.count(8, "tcm cells"); r.err == nil {
		if n != p.TCMThreads*p.TCMThreads {
			r.fail("tcm cell")
		} else if n > 0 {
			p.TCMCells = make([]int64, n)
			for i := range p.TCMCells {
				p.TCMCells[i] = r.i64("tcm cell")
			}
		}
	}

	if n := r.count(4, "assignment"); r.err == nil && n > 0 {
		p.Assignment = make([]int, n)
		for i := range p.Assignment {
			p.Assignment[i] = int(r.u32("assignment entry"))
		}
	}

	if n := r.count(12, "hot homes"); r.err == nil && n > 0 {
		p.HotHomes = make([]HotHome, n)
		for i := range p.HotHomes {
			p.HotHomes[i].Key = r.i64("hot home key")
			p.HotHomes[i].Home = int32(r.u32("hot home node"))
		}
	}

	if n := r.count(8, "footprints"); r.err == nil && n > 0 {
		p.Footprints = make([]ThreadFootprint, n)
		for i := range p.Footprints {
			p.Footprints[i].Thread = int32(r.u32("footprint thread"))
			cn := r.count(12, "footprint classes")
			if r.err != nil {
				break
			}
			if cn == 0 {
				continue
			}
			p.Footprints[i].Classes = make([]ClassBytes, cn)
			for j := range p.Footprints[i].Classes {
				p.Footprints[i].Classes[j].Class = r.str("footprint class")
				p.Footprints[i].Classes[j].Bytes = r.i64("footprint bytes")
			}
		}
	}

	if n := r.count(37, "rate trace"); r.err == nil && n > 0 {
		p.RateTrace = make([]RateChange, n)
		for i := range p.RateTrace {
			rc := &p.RateTrace[i]
			rc.At = sim.Time(r.i64("rate change at"))
			rc.From = sampling.Rate(r.i64("rate change from"))
			rc.To = sampling.Rate(r.i64("rate change to"))
			rc.Distance = r.f64("rate change distance")
			rc.Converged = r.u8("rate change converged") != 0
			rc.Resampled = int32(r.u32("rate change resampled"))
		}
	}

	if n := r.count(29, "decisions"); r.err == nil && n > 0 {
		p.Decisions = make([]Decision, n)
		for i := range p.Decisions {
			d := &p.Decisions[i]
			d.Epoch = int32(r.u32("decision epoch"))
			d.At = sim.Time(r.i64("decision at"))
			d.Kind = r.u8("decision kind")
			d.A = r.i64("decision a")
			d.B = r.i64("decision b")
		}
	}

	if r.err != nil {
		return nil, r.err
	}
	if r.pos != len(body) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(body)-r.pos)
	}
	return p, nil
}

// Save writes the encoded profile to path.
func Save(path string, p *Profile) error {
	return os.WriteFile(path, Encode(p), 0o644)
}

// Load reads and decodes a profile file.
func Load(path string) (*Profile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}

// Divergence is the warm-start control signal: the total-variation distance
// between the live and stored correlation maps after normalizing each by
// its own total volume — 0.5·Σ|aᵢ/ΣA − bᵢ/ΣB| ∈ [0, 1]. Normalizing both
// sides makes the signal scale-free (a 1X-sampled live map is compared by
// *shape*, not amplitude, against a full-rate stored map), so it reads 0
// when the live run shares the profile's correlation structure and climbs
// toward 1 as the structure departs. An empty live map carries no evidence
// of divergence and reads 0; an empty stored map against a live one reads
// 1; mismatched dimensions read 1 (nothing comparable).
func Divergence(live, stored *tcm.Map) float64 {
	return EvidenceDivergence(live, nil, stored)
}

// EvidenceDivergence is Divergence with a warm-start prior subtracted. When
// the live accumulator was seeded from the stored map, the live map is
// prior + this-run evidence, and comparing raw live against stored would
// let the full-rate, full-run prior drown out any live drift — the gate
// would never reopen. Subtracting the prior cell-wise (clamped at zero, so
// decay cannot produce negative evidence) recovers the run's own
// observations, which are what the divergence gate must judge. A nil prior
// degrades to plain Divergence.
func EvidenceDivergence(live, prior, stored *tcm.Map) float64 {
	if live == nil || stored == nil || live.N() != stored.N() {
		return 1
	}
	if prior != nil && prior.N() != live.N() {
		return 1
	}
	n := live.N()
	ev := func(i, j int) float64 {
		v := live.At(i, j)
		if prior != nil {
			v -= prior.At(i, j)
		}
		if v < 0 {
			return 0
		}
		return v
	}
	var la float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			la += ev(i, j)
		}
	}
	sa := stored.Total()
	if la == 0 {
		return 0
	}
	if sa == 0 {
		return 1
	}
	var sum float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			sum += math.Abs(ev(i, j)/la - stored.At(i, j)/sa)
		}
	}
	return sum / 2
}
