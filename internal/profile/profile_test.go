package profile

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"path/filepath"
	"reflect"
	"testing"

	"jessica2/internal/sampling"
	"jessica2/internal/tcm"
)

// richProfile populates every section, including edge values (negative
// fixed-point cells, empty strings, special floats) the codec must carry.
func richProfile() *Profile {
	return &Profile{
		Fingerprint: Fingerprint{
			Workload: "kvmix,servemix",
			Scenario: "phased",
			Nodes:    4,
			Threads:  8,
			Seed:     42,
		},
		// Cells are the accumulator's non-negative fixed-point units (an
		// odd raw value checks sub-integer-byte resolution round-trips).
		TCMThreads: 2,
		TCMCells:   []int64{0, 1 << 12, 1 << 12, 7},
		Assignment: []int{0, 1, 1, 0, 3, 2, 2, 3},
		HotHomes:   []HotHome{{Key: 3, Home: 1}, {Key: 17, Home: 0}, {Key: 901, Home: 3}},
		Footprints: []ThreadFootprint{
			{Thread: 0, Classes: []ClassBytes{{Class: "", Bytes: 12}, {Class: "kv.Record", Bytes: 4096}}},
			{Thread: 5, Classes: nil},
		},
		RateTrace: []RateChange{
			{At: 1_000_000, From: sampling.FullRate, To: 64, Distance: 0.04321, Converged: true, Resampled: 1024},
			{At: 2_000_000, From: 64, To: sampling.MaxRate, Distance: math.Inf(1), Converged: false, Resampled: 0},
		},
		Decisions: []Decision{
			{Epoch: 1, At: 1_000_000, Kind: DecisionMigrateThread, A: 3, B: 2},
			{Epoch: 1, At: 1_000_000, Kind: DecisionRehomeObject, A: 901, B: 3},
			{Epoch: 4, At: 8_000_000, Kind: DecisionSetRate, A: 1, B: 0},
		},
	}
}

func TestRoundTripExact(t *testing.T) {
	p := richProfile()
	enc := Encode(p)
	got, err := Decode(enc)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, p)
	}
	// Encoding is a pure function: the decoded value re-encodes to the
	// same bytes, and encoding twice is byte-identical.
	if re := Encode(got); !bytes.Equal(re, enc) {
		t.Fatalf("re-encode differs: %d vs %d bytes", len(re), len(enc))
	}
	if again := Encode(p); !bytes.Equal(again, enc) {
		t.Fatal("Encode is not deterministic")
	}
}

func TestRoundTripEmpty(t *testing.T) {
	p := &Profile{}
	got, err := Decode(Encode(p))
	if err != nil {
		t.Fatalf("Decode empty: %v", err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Fatalf("empty round trip mismatch: %+v", got)
	}
}

// reseal recomputes the CRC trailer after a deliberate body mutation, so
// tests reach the structural checks behind the checksum.
func reseal(enc []byte) []byte {
	body := enc[:len(enc)-4]
	return binary.LittleEndian.AppendUint32(append([]byte(nil), body...), crc32.ChecksumIEEE(body))
}

func TestDecodeErrors(t *testing.T) {
	valid := Encode(richProfile())

	futureVersion := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(futureVersion[4:8], Version+1)
	futureVersion = reseal(futureVersion)

	bitFlip := append([]byte(nil), valid...)
	bitFlip[len(bitFlip)/2] ^= 0x40

	// A count field claiming more elements than the payload could hold
	// must be rejected by the bounds check, not attempted as a huge
	// allocation. The TCM cell count sits right after the fingerprint.
	hugeCount := append([]byte(nil), valid...)
	fpEnd := 8 + 4 + len("kvmix,servemix") + 4 + len("phased") + 4 + 4 + 8
	binary.LittleEndian.PutUint32(hugeCount[fpEnd+4:fpEnd+8], 1<<30)
	hugeCount = reseal(hugeCount)

	tbody := append(append([]byte(nil), valid[:len(valid)-4]...), 0xAA, 0xBB, 0xCC, 0xDD)
	trailing := binary.LittleEndian.AppendUint32(tbody, crc32.ChecksumIEEE(tbody))

	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrCorrupt},
		{"too short", []byte("J2"), ErrCorrupt},
		{"bad magic", append([]byte("NOPE"), valid[4:]...), ErrBadMagic},
		{"future version", futureVersion, ErrVersion},
		{"bit flip", bitFlip, ErrCorrupt},
		{"truncated", valid[:len(valid)-9], ErrCorrupt},
		{"huge count", hugeCount, ErrCorrupt},
		{"trailing bytes", trailing, ErrCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := Decode(tc.data)
			if p != nil {
				t.Fatalf("Decode returned a profile for %s input", tc.name)
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("Decode error = %v, want %v", err, tc.want)
			}
		})
	}
}

// TestDecodeEveryTruncation feeds every strict prefix of a valid encoding:
// all must error (typed), none may panic.
func TestDecodeEveryTruncation(t *testing.T) {
	valid := Encode(richProfile())
	for n := 0; n < len(valid); n++ {
		if _, err := Decode(valid[:n]); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", n, len(valid))
		}
	}
}

func TestSaveLoad(t *testing.T) {
	p := richProfile()
	path := filepath.Join(t.TempDir(), "run.j2pf")
	if err := Save(path, p); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Fatal("Save/Load round trip mismatch")
	}
	if _, err := Load(filepath.Join(t.TempDir(), "absent.j2pf")); err == nil {
		t.Fatal("Load of a missing file succeeded")
	}
}

func TestHomeOf(t *testing.T) {
	p := &Profile{HotHomes: []HotHome{{Key: 3, Home: 1}, {Key: 17, Home: 0}, {Key: 901, Home: 3}}}
	for _, tc := range []struct {
		key  int64
		home int
		ok   bool
	}{{3, 1, true}, {17, 0, true}, {901, 3, true}, {0, 0, false}, {18, 0, false}, {1000, 0, false}} {
		home, ok := p.HomeOf(tc.key)
		if home != tc.home || ok != tc.ok {
			t.Fatalf("HomeOf(%d) = (%d, %v), want (%d, %v)", tc.key, home, ok, tc.home, tc.ok)
		}
	}
	if _, ok := (&Profile{}).HomeOf(3); ok {
		t.Fatal("HomeOf on empty list reported a home")
	}
}

func TestFingerprint(t *testing.T) {
	a := Fingerprint{Workload: "kvmix", Nodes: 4, Threads: 8, Seed: 42}
	if !a.Match(a) {
		t.Fatal("fingerprint does not match itself")
	}
	for _, b := range []Fingerprint{
		{Workload: "sor", Nodes: 4, Threads: 8, Seed: 42},
		{Workload: "kvmix", Scenario: "phased", Nodes: 4, Threads: 8, Seed: 42},
		{Workload: "kvmix", Nodes: 8, Threads: 8, Seed: 42},
		{Workload: "kvmix", Nodes: 4, Threads: 16, Seed: 42},
		{Workload: "kvmix", Nodes: 4, Threads: 8, Seed: 43},
	} {
		if a.Match(b) {
			t.Fatalf("fingerprint %v matched %v", a, b)
		}
	}
	if s := a.String(); s != "kvmix nodes=4 threads=8 seed=42 scenario=none" {
		t.Fatalf("String() = %q", s)
	}
}

func TestDivergence(t *testing.T) {
	mk := func(n int, cells ...float64) *tcm.Map {
		m := tcm.NewMap(n)
		idx := 0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				m.Set(i, j, cells[idx])
				idx++
			}
		}
		return m
	}
	a := mk(3, 10, 0, 0)  // all volume on pair (0,1)
	b := mk(3, 0, 0, 10)  // all volume on pair (1,2)
	ha := mk(3, 50, 0, 0) // a, scaled 5×

	if d := Divergence(a, a.Clone()); d != 0 {
		t.Fatalf("self divergence = %v", d)
	}
	if d := Divergence(a, ha); d != 0 {
		t.Fatalf("scale-free divergence = %v, want 0", d)
	}
	if d := Divergence(a, b); math.Abs(d-1) > 1e-12 {
		t.Fatalf("disjoint divergence = %v, want 1", d)
	}
	if d := Divergence(tcm.NewMap(3), a); d != 0 {
		t.Fatalf("empty live divergence = %v, want 0 (no evidence)", d)
	}
	if d := Divergence(a, tcm.NewMap(3)); d != 1 {
		t.Fatalf("empty stored divergence = %v, want 1", d)
	}
	if d := Divergence(a, tcm.NewMap(4)); d != 1 {
		t.Fatalf("dimension mismatch divergence = %v, want 1", d)
	}
	if d := Divergence(nil, a); d != 1 {
		t.Fatalf("nil live divergence = %v, want 1", d)
	}
	// Partial overlap lands strictly between the extremes and is symmetric
	// in normalized shape.
	c := mk(3, 10, 0, 10)
	if d := Divergence(a, c); d <= 0 || d >= 1 {
		t.Fatalf("partial divergence = %v, want in (0, 1)", d)
	}
}

func TestEvidenceDivergence(t *testing.T) {
	stored := tcm.NewMap(3)
	stored.Set(0, 1, 100)
	// Live = seeded prior + evidence on a *different* pair: raw Divergence
	// would read the prior-dominated map as a near-match, the
	// evidence-based signal must read full divergence.
	live := stored.Clone()
	live.Add(1, 2, 5)
	if d := Divergence(live, stored); d >= 0.5 {
		t.Fatalf("raw divergence = %v, expected the prior to dominate (< 0.5)", d)
	}
	if d := EvidenceDivergence(live, stored, stored); math.Abs(d-1) > 1e-12 {
		t.Fatalf("evidence divergence = %v, want 1 (all evidence off-profile)", d)
	}
	// Evidence on the stored pair: perfect match.
	match := stored.Clone()
	match.Add(0, 1, 5)
	if d := EvidenceDivergence(match, stored, stored); d != 0 {
		t.Fatalf("matching evidence divergence = %v, want 0", d)
	}
	// No evidence beyond the prior (or decayed below it): no verdict.
	if d := EvidenceDivergence(stored.Clone(), stored, stored); d != 0 {
		t.Fatalf("prior-only divergence = %v, want 0", d)
	}
	decayed := stored.Clone().Scale(0.5)
	if d := EvidenceDivergence(decayed, stored, stored); d != 0 {
		t.Fatalf("decayed-below-prior divergence = %v, want 0 (clamped)", d)
	}
	// Mismatched prior dimension: nothing comparable.
	if d := EvidenceDivergence(live, tcm.NewMap(4), stored); d != 1 {
		t.Fatalf("mismatched prior divergence = %v, want 1", d)
	}
}

// TestTCMFixedRoundTrip: cells captured from the incremental accumulator
// (always toFloat-of-int64 values) reconstruct bit-identically.
func TestTCMFixedRoundTrip(t *testing.T) {
	p := richProfile()
	m := p.TCM()
	if m.N() != p.TCMThreads {
		t.Fatalf("TCM dimension %d, want %d", m.N(), p.TCMThreads)
	}
	back := m.AppendFixedCells(nil)
	if !reflect.DeepEqual(back, p.TCMCells) {
		t.Fatalf("fixed-cell round trip: %v vs %v", back, p.TCMCells)
	}
}

// FuzzProfileDecode hammers the decoder with hostile input: it must never
// panic, and anything it accepts must re-encode to the exact input bytes
// (the format has no redundant encodings).
func FuzzProfileDecode(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte("J2PF"))
	f.Add(Encode(&Profile{}))
	f.Add(Encode(richProfile()))
	trunc := Encode(richProfile())
	f.Add(trunc[:len(trunc)-5])
	flip := append([]byte(nil), trunc...)
	flip[10] ^= 0x01
	f.Add(flip)
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Decode(data)
		if err != nil {
			if p != nil {
				t.Fatal("Decode returned both a profile and an error")
			}
			return
		}
		re := Encode(p)
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted %d bytes but re-encoded to %d different bytes", len(data), len(re))
		}
	})
}
