// Package sampling implements the paper's adaptive object sampling scheme:
// class-level sampling gaps derived from page-relative "nX" rates, real gaps
// snapped to prime numbers to defeat cyclic allocation patterns, and the
// adaptive controller that walks the rate up until successive correlation
// maps converge.
package sampling

import (
	"fmt"
	"sort"

	"jessica2/internal/heap"
)

// Rate is the paper's nX notation: "sampling n objects per memory page".
// Rate(0) means sampling disabled; FullRate means every object sampled.
type Rate int

// FullRate is the sentinel for full (exhaustive) sampling.
const FullRate Rate = -1

func (r Rate) String() string {
	switch {
	case r == FullRate:
		return "full"
	case r <= 0:
		return "off"
	default:
		return fmt.Sprintf("%dX", int(r))
	}
}

// MaxRate is the largest meaningful rate: one sample per word, i.e. full
// sampling even for the smallest possible object (the paper's 1024X for a
// 4 KB page and 4-byte words).
const MaxRate = Rate(heap.PageSize / heap.WordSize)

// SweepRates returns the power-of-two rate ladder from `from` down to 1X,
// as used in the Fig. 9 accuracy sweep (512X, 256X, ..., 1X).
//
// The ladder is defined on powers of two only, so a non-power-of-two
// starting rate is normalized down to the largest power of two not
// exceeding it (100X → 64X, 33X → 32X) rather than silently producing odd
// half-rates like 50X/25X/12X. FullRate starts the ladder at MaxRate;
// rates below 1X yield an empty ladder.
func SweepRates(from Rate) []Rate {
	if from == FullRate {
		from = MaxRate
	}
	if from < 1 {
		return nil
	}
	start := Rate(1)
	for start*2 <= from {
		start *= 2
	}
	out := make([]Rate, 0, 16)
	for r := start; r >= 1; r /= 2 {
		out = append(out, r)
	}
	return out
}

// IsPrime reports primality by trial division (gaps are small).
func IsPrime(n int64) bool {
	if n < 2 {
		return false
	}
	if n%2 == 0 {
		return n == 2
	}
	for d := int64(3); d*d <= n; d += 2 {
		if n%d == 0 {
			return false
		}
	}
	return true
}

// NearestPrime returns the prime closest to n, breaking ties upward. This
// reproduces the paper's examples: 32→31, 64→67, 128→127.
func NearestPrime(n int64) int64 {
	if n <= 2 {
		return 2
	}
	for d := int64(0); ; d++ {
		if IsPrime(n + d) { // tie broken upward: check above first
			return n + d
		}
		if n-d >= 2 && IsPrime(n-d) {
			return n - d
		}
	}
}

// GapsForRate converts a rate into (nominal, real) gaps for a class whose
// sampled unit has the given size in bytes (instance size for scalar
// classes, element size for arrays). The nominal gap is SP/(s×n) per the
// paper; when it collapses to 1 the class is effectively fully sampled.
func GapsForRate(unitBytes int, r Rate) (nominal, real int64) {
	if unitBytes <= 0 {
		panic("sampling: non-positive unit size")
	}
	switch {
	case r == FullRate:
		return 1, 1
	case r <= 0:
		return 0, 0
	}
	nominal = int64(heap.PageSize) / (int64(unitBytes) * int64(r))
	if nominal <= 1 {
		return 1, 1
	}
	return nominal, NearestPrime(nominal)
}

// unitBytes returns the sampling unit for a class.
func unitBytes(c *heap.Class) int {
	if c.IsArray {
		return c.ElemSize
	}
	return c.Size
}

// ApplyRate sets the class's gap pair for the given rate and returns the
// real gap installed.
func ApplyRate(c *heap.Class, r Rate) int64 {
	nom, real := GapsForRate(unitBytes(c), r)
	c.SetGap(nom, real)
	return real
}

// EffectiveRate reports the nX rate a class actually achieves under its
// current gap (it saturates at full sampling for large-object classes — the
// paper's "some configurations like 16X might not apply to medium-to-coarse
// grained applications").
func EffectiveRate(c *heap.Class) Rate {
	g := c.Gap()
	if g <= 0 {
		return 0
	}
	u := int64(unitBytes(c))
	if g == 1 {
		r := Rate(int64(heap.PageSize) / u)
		if r < 1 {
			r = 1
		}
		return r
	}
	r := Rate(int64(heap.PageSize) / (u * g))
	if r < 1 {
		r = 1
	}
	return r
}

// Plan maps class names to rates; it is what the master broadcasts when the
// controller changes rates ("change notice for a specific class").
type Plan map[string]Rate

// Uniform builds a plan applying one rate to every class in the registry.
func Uniform(reg *heap.Registry, r Rate) Plan {
	p := make(Plan)
	for _, name := range reg.ClassNames() {
		p[name] = r
	}
	return p
}

// Apply installs the plan into the registry's classes and returns the
// number of live objects whose sampled tag had to be re-evaluated
// (the paper's resampling pass; its CPU cost is charged by the caller).
func (p Plan) Apply(reg *heap.Registry) int {
	resampled := 0
	// Deterministic order.
	names := make([]string, 0, len(p))
	for n := range p {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		c := reg.Class(name)
		if c == nil {
			continue
		}
		old := c.Gap()
		ApplyRate(c, p[name])
		if c.Gap() != old {
			resampled += reg.NumObjectsOfClass(c)
		}
	}
	return resampled
}

// Controller implements the paper's adaptive rate search: "begin with a
// rough sampling rate, increase it stepwise (by shortening the sampling
// gap) and compare the distance between the successive correlation
// matrices. If their distance is small enough ... we stop at the underlying
// sampling gap." Distances are computed by the caller (package tcm) and fed
// into Observe.
type Controller struct {
	// Threshold is the convergence bound on the relative distance between
	// successive correlation maps (e.g. 0.05 for 95% relative accuracy).
	Threshold float64
	// Start and Max bound the rate ladder.
	Start, Max Rate

	rate      Rate
	converged bool
	// compared records whether a comparison baseline exists: either a
	// previous Observe produced a map to diff against, or the caller
	// declared one via Prime. Until then a small distance is meaningless
	// (there were never two maps) and must not stop the ladder.
	compared bool
	history  []Step
}

// Step records one controller decision for diagnostics.
type Step struct {
	Rate     Rate
	Distance float64 // relative distance vs the previous rate's map
	Action   string  // "raise", "converged", "saturated"
}

// NewController returns a controller starting at start and capped at max.
func NewController(threshold float64, start, max Rate) *Controller {
	if start < 1 {
		start = 1
	}
	if max == 0 {
		max = MaxRate
	}
	return &Controller{Threshold: threshold, Start: start, Max: max, rate: start}
}

// Rate returns the currently active rate.
func (a *Controller) Rate() Rate { return a.rate }

// Converged reports whether the search has stopped.
func (a *Controller) Converged() bool { return a.converged }

// History returns the decision log.
func (a *Controller) History() []Step { return append([]Step(nil), a.history...) }

// Prime records that a comparison baseline already exists — a correlation
// map carried over from a previous run or window — so the very next Observe
// is a genuine two-map comparison and may declare convergence immediately.
func (a *Controller) Prime() { a.compared = true }

// Observe feeds the relative distance between the map at the current rate
// and the map at the previous (coarser) rate. It returns the next rate to
// run at and whether the controller has converged. The first observation
// for a fresh controller always raises (there is nothing to compare yet,
// so the distance argument is ignored for convergence purposes) unless the
// ladder has a single rung, in which case it saturates; call Prime first if
// a prior map really exists. Callers typically pass distance = 1 for the
// bootstrap observation.
func (a *Controller) Observe(distance float64) (next Rate, converged bool) {
	if a.converged {
		return a.rate, true
	}
	st := Step{Rate: a.rate, Distance: distance}
	switch {
	case a.compared && distance <= a.Threshold:
		st.Action = "converged"
		a.converged = true
	case a.rate >= a.Max || a.rate == FullRate:
		st.Action = "saturated"
		a.converged = true
	default:
		st.Action = "raise"
		a.rate *= 2
		if a.rate > a.Max {
			a.rate = a.Max
		}
	}
	// After any observation a map exists for the next one to diff against.
	a.compared = true
	a.history = append(a.history, st)
	return a.rate, a.converged
}
