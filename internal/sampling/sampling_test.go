package sampling

import (
	"testing"
	"testing/quick"

	"jessica2/internal/heap"
)

func TestIsPrime(t *testing.T) {
	primes := []int64{2, 3, 5, 7, 11, 13, 31, 67, 127, 509, 1021}
	for _, p := range primes {
		if !IsPrime(p) {
			t.Errorf("%d should be prime", p)
		}
	}
	composites := []int64{-7, 0, 1, 4, 6, 9, 32, 64, 128, 1024}
	for _, c := range composites {
		if IsPrime(c) {
			t.Errorf("%d should not be prime", c)
		}
	}
}

// TestNearestPrimePaperExamples checks the paper's exact examples:
// "31, 67 and 127 would be chosen as the real sampling gaps for nominal
// sampling gaps of 32, 64 and 128".
func TestNearestPrimePaperExamples(t *testing.T) {
	cases := map[int64]int64{32: 31, 64: 67, 128: 127}
	for nominal, want := range cases {
		if got := NearestPrime(nominal); got != want {
			t.Errorf("NearestPrime(%d) = %d, want %d", nominal, got, want)
		}
	}
}

// Property: NearestPrime returns a prime no farther than any other prime.
func TestQuickNearestPrime(t *testing.T) {
	f := func(n uint16) bool {
		v := int64(n%5000) + 2
		p := NearestPrime(v)
		if !IsPrime(p) {
			return false
		}
		d := p - v
		if d < 0 {
			d = -d
		}
		// No prime strictly closer.
		for q := v - d + 1; q < v+d; q++ {
			if q >= 2 && IsPrime(q) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestGapsForRate(t *testing.T) {
	// 8-byte elements at 1X: nominal 512, real = nearest prime.
	nom, real := GapsForRate(8, 1)
	if nom != 512 {
		t.Fatalf("nominal = %d, want 512", nom)
	}
	if !IsPrime(real) {
		t.Fatalf("real gap %d not prime", real)
	}
	// 512-byte objects at 16X: 512*16 = 8192 > page: full sampling.
	nom, real = GapsForRate(512, 16)
	if nom != 1 || real != 1 {
		t.Fatalf("saturated rate should give gap 1, got %d/%d", nom, real)
	}
	// FullRate always 1.
	if _, r := GapsForRate(8, FullRate); r != 1 {
		t.Fatal("FullRate must give gap 1")
	}
	// Off gives 0.
	if _, r := GapsForRate(8, 0); r != 0 {
		t.Fatal("rate 0 must disable")
	}
}

func TestGapsForRateBadUnit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-positive unit did not panic")
		}
	}()
	GapsForRate(0, 1)
}

func TestApplyRateAndEffectiveRate(t *testing.T) {
	reg := heap.NewRegistry()
	body := reg.DefineClass("Body", 56, 0)
	mol := reg.DefineClass("Mol", 512, 0)
	ApplyRate(body, 4)
	ApplyRate(mol, 4)
	// Body at 4X: nominal 4096/(56*4) = 18 -> prime near 18.
	if body.Gap() < 2 {
		t.Fatalf("body gap = %d, want > 1", body.Gap())
	}
	if !IsPrime(body.Gap()) {
		t.Fatalf("body gap %d not prime", body.Gap())
	}
	// Mol at 4X: 4096/2048 = 2 -> prime 2.
	if mol.Gap() != 2 {
		t.Fatalf("mol gap = %d, want 2", mol.Gap())
	}
	if r := EffectiveRate(mol); r != 4 {
		t.Fatalf("effective rate = %v, want 4X", r)
	}
	// Saturation: Mol at 16X is full sampling; effective rate reports the
	// page-size-bound maximum (8 objects of 512B per 4KB page).
	ApplyRate(mol, 16)
	if mol.Gap() != 1 {
		t.Fatalf("mol at 16X should be full, gap = %d", mol.Gap())
	}
	if r := EffectiveRate(mol); r != 8 {
		t.Fatalf("saturated effective rate = %v, want 8X", r)
	}
}

func TestSweepRates(t *testing.T) {
	rates := SweepRates(512)
	want := []Rate{512, 256, 128, 64, 32, 16, 8, 4, 2, 1}
	if len(rates) != len(want) {
		t.Fatalf("rates = %v", rates)
	}
	for i := range want {
		if rates[i] != want[i] {
			t.Fatalf("rates = %v, want %v", rates, want)
		}
	}
}

func TestRateString(t *testing.T) {
	if FullRate.String() != "full" || Rate(0).String() != "off" || Rate(4).String() != "4X" {
		t.Fatal("rate formatting wrong")
	}
}

func TestPlanApplyCountsResampled(t *testing.T) {
	reg := heap.NewRegistry()
	a := reg.DefineClass("A", 64, 0)
	for i := 0; i < 10; i++ {
		reg.Alloc(a, 0)
	}
	p := Uniform(reg, 4)
	n := p.Apply(reg)
	if n != 10 {
		t.Fatalf("resampled %d, want 10 (gap changed)", n)
	}
	// Applying the same plan again changes nothing.
	if n := p.Apply(reg); n != 0 {
		t.Fatalf("idempotent apply resampled %d", n)
	}
	// Unknown classes are ignored.
	p2 := Plan{"nope": 2}
	if n := p2.Apply(reg); n != 0 {
		t.Fatal("unknown class should be skipped")
	}
}

func TestControllerRaisesUntilConverged(t *testing.T) {
	c := NewController(0.05, 1, 64)
	if c.Rate() != 1 || c.Converged() {
		t.Fatal("bad initial state")
	}
	// Large distances keep raising.
	r, conv := c.Observe(1.0)
	if r != 2 || conv {
		t.Fatalf("step 1: rate %v conv %v", r, conv)
	}
	r, _ = c.Observe(0.5)
	if r != 4 {
		t.Fatalf("step 2: rate %v", r)
	}
	// Converges under threshold.
	r, conv = c.Observe(0.01)
	if !conv || r != 4 {
		t.Fatalf("should converge at rate 4, got %v conv=%v", r, conv)
	}
	// Further observations are no-ops.
	r, conv = c.Observe(1.0)
	if !conv || r != 4 {
		t.Fatal("converged controller must not move")
	}
	steps := c.History()
	if len(steps) != 3 {
		t.Fatalf("history has %d steps", len(steps))
	}
	if steps[2].Action != "converged" {
		t.Fatalf("last action = %q", steps[2].Action)
	}
}

func TestControllerSaturates(t *testing.T) {
	c := NewController(0.001, 1, 4)
	c.Observe(1)
	c.Observe(1)
	_, conv := c.Observe(1) // at max rate 4
	if !conv {
		t.Fatal("controller should saturate at max rate")
	}
	h := c.History()
	if h[len(h)-1].Action != "saturated" {
		t.Fatalf("action = %q", h[len(h)-1].Action)
	}
}

// TestControllerFirstObservation: a fresh controller has never compared two
// correlation maps, so the very first Observe must not declare convergence —
// not for a generous Threshold >= 1 with the documented distance = 1
// bootstrap call, and not for an arbitrarily small first distance. It raises
// instead (regression: the pre-fix controller stopped the ladder at Start).
func TestControllerFirstObservation(t *testing.T) {
	// Threshold >= 1 swallows the documented distance = 1 bootstrap call.
	c := NewController(1.0, 1, 64)
	r, conv := c.Observe(1.0)
	if conv {
		t.Fatal("fresh controller converged on its bootstrap observation")
	}
	if r != 2 {
		t.Fatalf("first observation should raise 1X -> 2X, got %v", r)
	}
	if h := c.History(); h[0].Action != "raise" {
		t.Fatalf("first action = %q, want raise", h[0].Action)
	}
	// A tiny first distance is equally meaningless: nothing was compared.
	c = NewController(0.05, 1, 64)
	if _, conv := c.Observe(0.0); conv {
		t.Fatal("fresh controller converged on a zero first distance")
	}
	// The second observation is a real comparison and may converge.
	if _, conv := c.Observe(0.01); !conv {
		t.Fatal("second observation under threshold should converge")
	}
	if c.Rate() != 2 {
		t.Fatalf("converged rate = %v, want 2", c.Rate())
	}
}

// TestControllerPrime: an explicit prior-map declaration lets the first
// Observe be a genuine comparison.
func TestControllerPrime(t *testing.T) {
	c := NewController(0.05, 4, 64)
	c.Prime()
	r, conv := c.Observe(0.01)
	if !conv || r != 4 {
		t.Fatalf("primed controller should converge at Start: rate %v conv %v", r, conv)
	}
	if h := c.History(); h[0].Action != "converged" {
		t.Fatalf("action = %q", h[0].Action)
	}
}

// TestControllerFirstObservationSaturates: a single-rung ladder
// (Start == Max) cannot raise, so the bootstrap observation legitimately
// saturates rather than spinning forever.
func TestControllerFirstObservationSaturates(t *testing.T) {
	c := NewController(0.001, 8, 8)
	_, conv := c.Observe(1)
	if !conv {
		t.Fatal("single-rung ladder should saturate immediately")
	}
	if h := c.History(); h[0].Action != "saturated" {
		t.Fatalf("action = %q", h[0].Action)
	}
}

func TestControllerDefaults(t *testing.T) {
	c := NewController(0.05, 0, 0)
	if c.Rate() != 1 {
		t.Fatal("start clamps to 1")
	}
	if c.Max != MaxRate {
		t.Fatal("max defaults to MaxRate")
	}
}

// Property: the controller's rate ladder is monotone non-decreasing and
// bounded by Max.
func TestQuickControllerMonotone(t *testing.T) {
	f := func(dists []float64) bool {
		c := NewController(0.05, 1, 256)
		last := c.Rate()
		for _, d := range dists {
			if d < 0 {
				d = -d
			}
			r, _ := c.Observe(d)
			if r < last || r > 256 {
				return false
			}
			last = r
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestSweepRatesNormalization: non-power-of-two starts normalize down to a
// power of two instead of producing odd half-rates, FullRate starts the
// ladder at MaxRate, and sub-1X starts yield an empty ladder.
func TestSweepRatesNormalization(t *testing.T) {
	cases := []struct {
		from Rate
		want []Rate
	}{
		{100, []Rate{64, 32, 16, 8, 4, 2, 1}},
		{33, []Rate{32, 16, 8, 4, 2, 1}},
		{3, []Rate{2, 1}},
		{1, []Rate{1}},
		{0, nil},
		{FullRate, SweepRates(MaxRate)},
	}
	for _, c := range cases {
		got := SweepRates(c.from)
		if len(got) != len(c.want) {
			t.Fatalf("SweepRates(%d) = %v, want %v", c.from, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("SweepRates(%d) = %v, want %v", c.from, got, c.want)
			}
		}
	}
}

// TestPlanApplyResampleCount: Apply reports exactly the live-object count of
// every class whose real gap changed — the seed semantics the slice-backed
// per-class counters must preserve.
func TestPlanApplyResampleCount(t *testing.T) {
	reg := heap.NewRegistry()
	small := reg.DefineClass("small", 8, 0)
	big := reg.DefineClass("big", 4096, 0)
	arr := reg.DefineArrayClass("arr", 8)
	for i := 0; i < 30; i++ {
		reg.Alloc(small, i%3)
	}
	for i := 0; i < 20; i++ {
		reg.Alloc(big, i%3)
	}
	for i := 0; i < 10; i++ {
		reg.AllocArray(arr, 4, i%3)
	}

	// From the default gap 1: "small" at 4X gets a real gap > 1 (128 B
	// nominal unit → gap 127), "big" saturates at gap 1 (no change), "arr"
	// at 4X gets a prime gap from its 8 B elements.
	p := Plan{"small": 4, "big": 4, "arr": 4}
	got := p.Apply(reg)
	want := 0
	if g := small.Gap(); g != 1 {
		want += 30
	}
	if g := big.Gap(); g != 1 {
		want += 20
	}
	if g := arr.Gap(); g != 1 {
		want += 10
	}
	if got != want {
		t.Fatalf("resampled = %d, want %d (small gap %d, big gap %d, arr gap %d)",
			got, want, small.Gap(), big.Gap(), arr.Gap())
	}
	if want == 0 {
		t.Fatal("test vacuous: no class changed gap")
	}

	// Re-applying the identical plan changes no gap: zero resamples.
	if again := p.Apply(reg); again != 0 {
		t.Fatalf("idempotent re-apply resampled %d objects", again)
	}
}
