package sampling

import (
	"testing"

	"jessica2/internal/xrand"
)

// isPow2 reports whether r is a positive power of two.
func isPow2(r Rate) bool { return r > 0 && r&(r-1) == 0 }

// TestSweepRatesProperties checks the ladder over every possible starting
// rate, including all the non-power-of-two ones: strictly halving, all
// powers of two, bottoming out at 1X, and the normalized start being the
// largest power of two not exceeding the request.
func TestSweepRatesProperties(t *testing.T) {
	for from := Rate(1); from <= MaxRate; from++ {
		rates := SweepRates(from)
		if len(rates) == 0 {
			t.Fatalf("SweepRates(%v) empty", from)
		}
		if first := rates[0]; !isPow2(first) || first > from || 2*first <= from {
			t.Fatalf("SweepRates(%v) starts at %v, want largest power of two <= start", from, first)
		}
		if rates[len(rates)-1] != 1 {
			t.Fatalf("SweepRates(%v) does not end at 1X: %v", from, rates)
		}
		for i, r := range rates {
			if !isPow2(r) {
				t.Fatalf("SweepRates(%v)[%d] = %v not a power of two", from, i, r)
			}
			if i > 0 && rates[i-1] != 2*r {
				t.Fatalf("SweepRates(%v) not strictly halving at %d: %v", from, i, rates)
			}
		}
	}
	// Sentinels.
	if got := SweepRates(FullRate); got[0] != MaxRate {
		t.Errorf("SweepRates(FullRate) starts at %v, want MaxRate", got[0])
	}
	if got := SweepRates(0); got != nil {
		t.Errorf("SweepRates(0) = %v, want nil", got)
	}
}

// TestControllerNeverLeavesBounds drives controllers with random bounds
// through random distance sequences and asserts the rate always stays in
// [Start, Max] and freezes once converged.
func TestControllerNeverLeavesBounds(t *testing.T) {
	rng := xrand.New(99)
	for trial := 0; trial < 500; trial++ {
		start := Rate(1 + rng.Intn(int(MaxRate)))
		max := start + Rate(rng.Intn(int(MaxRate-start)+1))
		threshold := 0.01 + rng.Float64()*0.4
		c := NewController(threshold, start, max)
		var frozen Rate
		for step := 0; step < 40; step++ {
			d := rng.Float64() * 2 // distances in [0, 2)
			wasConverged := c.Converged()
			next, converged := c.Observe(d)
			if next < start || next > max {
				t.Fatalf("trial %d: rate %v left [%v, %v]", trial, next, start, max)
			}
			if wasConverged {
				if next != frozen || !converged {
					t.Fatalf("trial %d: converged controller moved %v -> %v", trial, frozen, next)
				}
			}
			if converged && frozen == 0 {
				frozen = next
			}
		}
		// The ladder doubles: a controller fed only distances above the
		// threshold must saturate at Max within log2(Max/Start)+1 steps.
		c2 := NewController(0.001, start, max)
		steps := 0
		for !c2.Converged() {
			c2.Observe(1)
			steps++
			if steps > 14 {
				t.Fatalf("trial %d: controller failed to terminate (start %v max %v)", trial, start, max)
			}
		}
		if c2.Rate() != max {
			t.Fatalf("trial %d: saturated at %v, want max %v", trial, c2.Rate(), max)
		}
	}
}

// densityModel is a synthetic profile: the relative distance between the
// maps at successive rates falls off inversely with rate x event density
// (finer sampling of a denser stream stabilizes the map faster), floored
// at a structural residue.
func densityModel(r Rate, density, residue float64) float64 {
	d := 4/(float64(r)*density) + residue
	if d > 2 {
		d = 2
	}
	return d
}

// TestControllerConvergesUnderStepChange simulates the adaptive loop on the
// synthetic density model with a step change in event density mid-search
// (the scenario engine's phase shift, abstracted): the controller must
// still converge, at a rate bounded by the post-step density, with its
// final observed distance under the threshold unless it saturated.
func TestControllerConvergesUnderStepChange(t *testing.T) {
	rng := xrand.New(7)
	for trial := 0; trial < 200; trial++ {
		threshold := 0.05 + rng.Float64()*0.15
		residue := rng.Float64() * threshold * 0.5
		density := 0.5 + rng.Float64()*4
		stepAt := 1 + rng.Intn(6)
		// The step change: density drops (phase shift to a sparser hot
		// set) or rises, by up to 8x either way.
		factor := 0.125 + rng.Float64()*8
		c := NewController(threshold, 1, MaxRate)

		steps := 0
		for !c.Converged() {
			if steps == stepAt {
				density *= factor
			}
			d := densityModel(c.Rate(), density, residue)
			c.Observe(d)
			steps++
			if steps > 30 {
				t.Fatalf("trial %d: no convergence after %d observations", trial, steps)
			}
		}
		final := c.Rate()
		if final < 1 || final > MaxRate {
			t.Fatalf("trial %d: final rate %v out of bounds", trial, final)
		}
		hist := c.History()
		if len(hist) == 0 {
			t.Fatalf("trial %d: empty history", trial)
		}
		last := hist[len(hist)-1]
		if last.Action == "converged" && last.Distance > threshold {
			t.Fatalf("trial %d: claimed convergence at distance %g > threshold %g", trial, last.Distance, threshold)
		}
		if last.Action == "saturated" && final != MaxRate {
			t.Fatalf("trial %d: saturated below MaxRate at %v", trial, final)
		}
		// Convergence must be genuine under the post-step model: the
		// distance at the final rate is under threshold, or the ladder is
		// exhausted.
		if final != MaxRate && densityModel(final, density, residue) > threshold+1e-9 {
			t.Fatalf("trial %d: converged at %v where model distance %g > threshold %g",
				trial, final, densityModel(final, density, residue), threshold)
		}
	}
}

// TestGapsForRateBounds: gaps are positive, real gaps prime, and the
// gap shrinks (sampling densifies) monotonically as the rate rises.
func TestGapsForRateBounds(t *testing.T) {
	for unit := 1; unit <= 512; unit *= 2 {
		prevNom := int64(1 << 62)
		for r := Rate(1); r <= MaxRate; r *= 2 {
			nom, real := GapsForRate(unit, r)
			if nom <= 0 || real <= 0 {
				t.Fatalf("unit %d rate %v: non-positive gap (%d, %d)", unit, r, nom, real)
			}
			if real != 1 && !IsPrime(real) {
				t.Fatalf("unit %d rate %v: real gap %d not prime", unit, r, real)
			}
			if nom > prevNom {
				t.Fatalf("unit %d rate %v: nominal gap grew %d -> %d", unit, r, prevNom, nom)
			}
			prevNom = nom
		}
	}
}
