package metrics

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("TITLE", "Name", "Value")
	tb.AddRow("a", "1")
	tb.AddRow("longer-name", "22")
	s := tb.String()
	if !strings.HasPrefix(s, "TITLE\n") {
		t.Fatal("missing title")
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	// title + header + rule + 2 rows
	if len(lines) != 5 {
		t.Fatalf("lines = %d: %q", len(lines), s)
	}
	if len(lines[1]) != len(lines[3]) || len(lines[3]) != len(lines[4]) {
		t.Fatalf("columns not aligned:\n%s", s)
	}
}

func TestTableShortRowsPadded(t *testing.T) {
	tb := NewTable("", "A", "B", "C")
	tb.AddRow("x")
	if got := tb.Rows[0]; len(got) != 3 || got[1] != "" {
		t.Fatalf("row = %v", got)
	}
}

func TestCSVEscaping(t *testing.T) {
	tb := NewTable("", "A", "B")
	tb.AddRow(`has,comma`, `has"quote`)
	csv := tb.CSV()
	if !strings.Contains(csv, `"has,comma"`) {
		t.Fatalf("comma not quoted: %s", csv)
	}
	if !strings.Contains(csv, `"has""quote"`) {
		t.Fatalf("quote not doubled: %s", csv)
	}
	if !strings.HasPrefix(csv, "A,B\n") {
		t.Fatal("missing header row")
	}
}

func TestPct(t *testing.T) {
	if Pct(110, 100) != "10.00%" {
		t.Fatalf("pct = %s", Pct(110, 100))
	}
	if Pct(95, 100) != "-5.00%" {
		t.Fatalf("pct = %s", Pct(95, 100))
	}
	if Pct(5, 0) != "n/a" {
		t.Fatal("zero base must be n/a")
	}
}

func TestMsCell(t *testing.T) {
	if got := MsCell(53844, 53250); got != "53844 (1.12%)" {
		t.Fatalf("cell = %q", got)
	}
}
