// Package metrics provides counters and plain-text table rendering for the
// experiment harness (the paper's tables are regenerated as aligned text
// and CSV).
package metrics

import (
	"fmt"
	"strings"
)

// Table is a simple aligned text table with an optional title.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total-2))
	sb.WriteByte('\n')
	for _, r := range t.Rows {
		line(r)
	}
	return sb.String()
}

// CSV renders the table as comma-separated values (quotes on demand).
func (t *Table) CSV() string {
	var sb strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	cells := make([]string, 0, len(t.Headers))
	for _, h := range t.Headers {
		cells = append(cells, esc(h))
	}
	sb.WriteString(strings.Join(cells, ","))
	sb.WriteByte('\n')
	for _, r := range t.Rows {
		cells = cells[:0]
		for _, c := range r {
			cells = append(cells, esc(c))
		}
		sb.WriteString(strings.Join(cells, ","))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Pct formats a relative change (a vs base) as the paper does: "(1.12%)".
func Pct(value, base float64) string {
	if base == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2f%%", (value-base)/base*100)
}

// MsCell formats milliseconds with an overhead percentage, Table II style:
// "53844 (1.12%)".
func MsCell(ms, baseMs float64) string {
	return fmt.Sprintf("%.0f (%s)", ms, Pct(ms, baseMs))
}
