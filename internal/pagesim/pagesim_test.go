package pagesim

import (
	"testing"

	"jessica2/internal/gos"
	"jessica2/internal/heap"
)

// run executes a two-thread scenario on one node pair and returns the
// tracker's induced map.
func runScenario(t *testing.T, body func(k *gos.Kernel, cls *heap.Class, done chan<- struct{})) *Tracker {
	t.Helper()
	cfg := gos.DefaultConfig()
	cfg.Nodes = 2
	k := gos.NewKernel(cfg)
	tr := NewTracker(2)
	k.AddObserver(tr)
	cls := k.Reg.DefineClass("small", 64, 0)
	body(k, cls, nil)
	k.Run()
	return tr
}

// TestFalseSharingInduced: two threads touching *different* objects that
// share a page are falsely correlated by the page tracker.
func TestFalseSharingInduced(t *testing.T) {
	tr := runScenario(t, func(k *gos.Kernel, cls *heap.Class, _ chan<- struct{}) {
		var a, b *heap.Object
		k.SpawnThread(0, "t0", func(th *gos.Thread) {
			// Two 64-byte objects, adjacent on the same page of node 0.
			a = th.Alloc(cls)
			b = th.Alloc(cls)
			th.Write(a)
			th.Barrier(1, 2)
			th.Read(a) // t0 touches only a
			th.Barrier(2, 2)
		})
		k.SpawnThread(1, "t1", func(th *gos.Thread) {
			th.Barrier(1, 2)
			th.Read(b) // t1 touches only b
			th.Barrier(2, 2)
		})
	})
	m := tr.Build()
	if m.At(0, 1) == 0 {
		t.Fatal("page tracker missed the false sharing")
	}
	if m.At(0, 1) != heap.PageSize {
		t.Fatalf("induced volume = %v, want one page", m.At(0, 1))
	}
}

// TestNoAliasAcrossPages: objects on different pages do not alias.
func TestNoAliasAcrossPages(t *testing.T) {
	cfg := gos.DefaultConfig()
	cfg.Nodes = 2
	k := gos.NewKernel(cfg)
	tr := NewTracker(2)
	k.AddObserver(tr)
	arr := k.Reg.DefineArrayClass("big", 8)
	var a, b *heap.Object
	k.SpawnThread(0, "t0", func(th *gos.Thread) {
		a = th.AllocArray(arr, 1024) // 8 KB: 2+ pages
		b = th.AllocArray(arr, 1024)
		th.WriteElems(a, 1)
		th.Barrier(1, 2)
		th.Read(a)
		th.Barrier(2, 2)
	})
	k.SpawnThread(1, "t1", func(th *gos.Thread) {
		th.Barrier(1, 2)
		th.Read(b)
		th.Barrier(2, 2)
	})
	k.Run()
	m := tr.Build()
	if m.At(0, 1) != 0 {
		t.Fatalf("distinct multi-page arrays aliased: %v", m.At(0, 1))
	}
}

// TestWriteSpansAllPages: whole-object writes touch the full page span.
func TestWriteSpansAllPages(t *testing.T) {
	cfg := gos.DefaultConfig()
	cfg.Nodes = 1
	k := gos.NewKernel(cfg)
	tr := NewTracker(1)
	k.AddObserver(tr)
	arr := k.Reg.DefineArrayClass("big", 8)
	k.SpawnThread(0, "t0", func(th *gos.Thread) {
		a := th.AllocArray(arr, 2048) // 16 KB = 4 pages
		th.WriteElems(a, 2048)
	})
	k.Run()
	if tr.NumPages() < 4 {
		t.Fatalf("write touched %d pages, want >= 4", tr.NumPages())
	}
}

// TestReadTouchesFirstPageOnly approximates partial traversal of large
// arrays.
func TestReadTouchesFirstPageOnly(t *testing.T) {
	cfg := gos.DefaultConfig()
	cfg.Nodes = 2
	k := gos.NewKernel(cfg)
	tr := NewTracker(2)
	k.AddObserver(tr)
	arr := k.Reg.DefineArrayClass("big", 8)
	var a *heap.Object
	k.SpawnThread(0, "t0", func(th *gos.Thread) {
		a = th.AllocArray(arr, 2048)
		th.WriteElems(a, 1) // minimal dirty
		th.Barrier(1, 2)
		th.Barrier(2, 2)
	})
	k.SpawnThread(1, "t1", func(th *gos.Thread) {
		th.Barrier(1, 2)
		th.Read(a)
		th.Barrier(2, 2)
	})
	k.Run()
	// t0's write dirtied 1 page; t1's read touches the first page: they
	// alias on exactly one page.
	m := tr.Build()
	if m.At(0, 1) != heap.PageSize {
		t.Fatalf("induced = %v, want one page", m.At(0, 1))
	}
}

func TestRepeatAccessCountedOncePerInterval(t *testing.T) {
	cfg := gos.DefaultConfig()
	cfg.Nodes = 1
	k := gos.NewKernel(cfg)
	tr := NewTracker(1)
	k.AddObserver(tr)
	cls := k.Reg.DefineClass("small", 64, 0)
	k.SpawnThread(0, "t0", func(th *gos.Thread) {
		o := th.Alloc(cls)
		for i := 0; i < 50; i++ {
			th.Read(o)
		}
	})
	k.Run()
	if tr.NumPages() != 1 {
		t.Fatalf("pages = %d, want 1", tr.NumPages())
	}
}
