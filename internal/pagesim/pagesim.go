// Package pagesim is the comparison baseline: page-based active correlation
// tracking in the style of D-CVM (Thitikamol & Keleher), which the paper
// argues "can only reveal the induced sharing pattern rather than the
// application's inherent pattern after the effect of false-sharing". It
// observes the same access stream as the fine-grained profiler but logs at
// page granularity over the allocation layout, producing the Fig. 1(b)
// induced correlation map.
package pagesim

import (
	"jessica2/internal/gos"
	"jessica2/internal/heap"
	"jessica2/internal/tcm"
)

// Tracker accrues page-grain sharing. It implements gos.AccessObserver.
type Tracker struct {
	threads int
	// pages maps page number -> set of accessing threads.
	pages map[int64]map[int]struct{}
	// PagesTouched counts distinct pages seen.
	accesses int64
}

// NewTracker returns a tracker for a system with the given thread count.
func NewTracker(threads int) *Tracker {
	return &Tracker{threads: threads, pages: make(map[int64]map[int]struct{})}
}

// OnAccess records the page(s) the object occupies as touched by t. Small
// objects co-located on a page alias into the same page entry — exactly the
// false sharing that destroys the inherent pattern.
func (tr *Tracker) OnAccess(t *gos.Thread, o *heap.Object, write, first bool) {
	if !first {
		return
	}
	tr.accesses++
	firstPage, lastPage := o.PageSpan()
	// Large objects (multi-page arrays) touch only their first page here
	// unless the whole object is logged; the paper's page-DSM logs the
	// faulted pages. We log the full span for writes (whole-object diffs)
	// and the first page for reads of multi-page objects, approximating
	// partial traversal.
	if !write && lastPage > firstPage {
		lastPage = firstPage
	}
	for p := firstPage; p <= lastPage; p++ {
		set := tr.pages[p]
		if set == nil {
			set = make(map[int]struct{}, 2)
			tr.pages[p] = set
		}
		set[t.ID()] = struct{}{}
	}
}

// OnIntervalClose is a no-op; page tracking has no interval bookkeeping in
// this baseline.
func (tr *Tracker) OnIntervalClose(t *gos.Thread) {}

// NumPages reports distinct pages touched.
func (tr *Tracker) NumPages() int { return len(tr.pages) }

// Build produces the induced correlation map: every shared page contributes
// a full page size to every pair of threads that touched it.
func (tr *Tracker) Build() *tcm.Map {
	b := tcm.NewBuilder(tr.threads)
	for page, set := range tr.pages {
		for t := range set {
			b.AddAccess(t, page, float64(heap.PageSize))
		}
	}
	m, _ := b.Build()
	return m
}
