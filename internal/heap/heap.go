// Package heap models the logical object space of the distributed JVM: the
// class registry, object instances with their headers, and the object
// reference graph. Sampling metadata lives here exactly where the paper puts
// it — sequence numbers in object headers (a half-word per object, unique
// within a class) and the sampling gap stored per class, "as close to
// subclasses as possible".
//
// Per-copy cache state (valid / invalid / false-invalid) is not part of this
// package; it belongs to the consistency protocol (package gos) because each
// node's replica carries its own state bits.
package heap

import (
	"fmt"
	"sort"
)

// Objects are stored in fixed-size chunks so that their addresses stay
// stable for the lifetime of the registry (consumers cache *Object freely)
// while allocation remains one bulk chunk per objChunkLen objects instead of
// one heap allocation per object.
const (
	objChunkShift = 10
	objChunkLen   = 1 << objChunkShift
	objChunkMask  = objChunkLen - 1
)

type objChunk [objChunkLen]Object

// PageSize is the virtual memory page size the paper's nX sampling-rate
// notation is defined against ("sampling eight objects per memory page").
const PageSize = 4096

// WordSize is the machine word (the paper's testbed is 32-bit x86).
const WordSize = 4

// ClassID indexes into the registry's class table.
type ClassID int32

// ObjectID is a globally unique object identifier.
type ObjectID int64

// InvalidObject is the zero ObjectID; real IDs start at 1.
const InvalidObject ObjectID = 0

// Class describes a Java class (or array class) shared across the cluster.
// Sampling-specific metadata — the current gap — is stored at class level.
type Class struct {
	ID   ClassID
	Name string

	// Size is the instance size in bytes for scalar classes. For array
	// classes it is 0 and ElemSize is used instead.
	Size int

	// IsArray marks array classes; instances carry per-element sequence
	// numbers so that sampling is amortized over elements.
	IsArray  bool
	ElemSize int

	// NumRefFields is how many object-reference fields instances carry;
	// used when generating object graphs and when the sticky-set resolver
	// walks the heap.
	NumRefFields int

	// nextSeq allocates header sequence numbers. For scalar classes it
	// advances by 1 per instance; for array classes by the element count,
	// so every element owns a number ("these numbers are continuous").
	nextSeq int64

	// gap is the current real sampling gap (a prime), and nominalGap the
	// power-of-two it was derived from. gap == 1 means full sampling;
	// gap <= 0 means sampling disabled for the class.
	gap        int64
	nominalGap int64
}

// Gap returns the class's current real (prime) sampling gap.
func (c *Class) Gap() int64 { return c.gap }

// NominalGap returns the power-of-two gap the real gap was derived from.
func (c *Class) NominalGap() int64 { return c.nominalGap }

// SetGap installs a new sampling gap pair (nominal, real). The caller is
// responsible for triggering resampling of live objects.
func (c *Class) SetGap(nominal, real int64) {
	c.nominalGap = nominal
	c.gap = real
}

// InstanceBytes returns the memory footprint of an instance with n elements
// (n is ignored for scalar classes).
func (c *Class) InstanceBytes(n int) int {
	if c.IsArray {
		return c.ElemSize * n
	}
	return c.Size
}

// Object is a logical shared object. Fields are immutable after allocation
// except Refs (mutable object graph) and profiling bookkeeping owned by
// other packages.
type Object struct {
	ID    ObjectID
	Class *Class

	// Seq is the header sequence number: the instance's own number for
	// scalar classes, or the first element's number for arrays.
	Seq int64

	// Len is the element count for arrays, 0 otherwise.
	Len int

	// Home is the node holding the home copy (the first allocator).
	Home int

	// Addr is the simulated allocation address on the home node's heap;
	// Page(addr) gives the page used by the page-based tracking baseline.
	Addr int64

	// Refs are outgoing reference fields (the object graph). For arrays of
	// references, Refs holds the element pointers.
	Refs []*Object
}

// Bytes returns the object's data size in bytes.
func (o *Object) Bytes() int { return o.Class.InstanceBytes(o.Len) }

// Page returns the page number containing the object's first byte.
func (o *Object) Page() int64 { return o.Addr / PageSize }

// PageSpan returns the inclusive range of pages the object covers.
func (o *Object) PageSpan() (first, last int64) {
	return o.Addr / PageSize, (o.Addr + int64(o.Bytes()) - 1) / PageSize
}

// Sampled reports whether the object is selected under the class's current
// gap. A scalar object is sampled iff its sequence number is divisible by
// the gap. An array is sampled iff at least one element's number is
// divisible ("an array is sampled only if at least one of its elements is
// logically sampled").
func (o *Object) Sampled() bool {
	return o.SampledAtGap(o.Class.gap)
}

// SampledAtGap evaluates the sampling predicate at an explicit gap.
func (o *Object) SampledAtGap(gap int64) bool {
	if gap <= 0 {
		return false
	}
	if gap == 1 {
		return true
	}
	if !o.Class.IsArray {
		return o.Seq%gap == 0
	}
	return SampledElems(o.Seq, o.Len, gap) > 0
}

// SampledElems counts the sequence numbers divisible by gap within
// [start, start+n). This implements the paper's amortization: the logged
// sample size for an array access is sampledElems × elemSize.
func SampledElems(start int64, n int, gap int64) int {
	if gap <= 0 || n <= 0 {
		return 0
	}
	if gap == 1 {
		return n
	}
	end := start + int64(n) - 1 // inclusive
	return int(floorDiv(end, gap) - floorDiv(start-1, gap))
}

// floorDiv is integer division rounding toward negative infinity (Go's /
// truncates toward zero, which miscounts when the dividend is negative —
// e.g. for arrays whose first element has sequence number 0).
func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

// AmortizedBytes returns the sample size to log for an access to the object:
// full size for scalar objects, sampledElems × elemSize for arrays.
func (o *Object) AmortizedBytes() int { return o.AmortizedBytesAtGap(o.Class.gap) }

// AmortizedBytesAtGap is AmortizedBytes at an explicit gap.
func (o *Object) AmortizedBytesAtGap(gap int64) int {
	if !o.Class.IsArray {
		return o.Class.Size
	}
	return SampledElems(o.Seq, o.Len, gap) * o.Class.ElemSize
}

// Registry owns all classes and objects of one DJVM instance.
//
// Objects live in a dense chunked arena: ObjectID n is the (n-1)-th slot of
// the arena, so lookup is two array indexes, allocation is in-place (no
// per-object heap allocation), and iteration order is ID order by
// construction. Per-class indexes are maintained incrementally at Alloc /
// AllocArray time, making ObjectsOfClass and ObjectsSorted O(1) slice
// returns instead of full scans.
type Registry struct {
	classes      []*Class
	classByName  map[string]*Class
	chunks       []*objChunk
	all          []*Object   // every object, ID order
	byClass      [][]*Object // indexed by ClassID, each ID order
	nextObjectID ObjectID

	// refSlab bulk-allocates Refs arrays: reference-field slices are cut
	// from a shared backing array (full-slice expressions keep neighbours
	// isolated) so ref-bearing classes don't pay one allocation per object.
	refSlab []*Object
	refPos  int

	// bump allocators per node for address/page assignment
	nodeBrk map[int]int64
}

// refSlabLen is the Refs backing-array chunk size in slots.
const refSlabLen = 4096

// allocRefs cuts a zeroed k-slot reference array from the slab.
func (r *Registry) allocRefs(k int) []*Object {
	if k > refSlabLen {
		return make([]*Object, k)
	}
	if r.refPos+k > len(r.refSlab) {
		r.refSlab = make([]*Object, refSlabLen)
		r.refPos = 0
	}
	s := r.refSlab[r.refPos : r.refPos+k : r.refPos+k]
	r.refPos += k
	return s
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		classByName: make(map[string]*Class),
		nodeBrk:     make(map[int]int64),
	}
}

// DefineClass registers a scalar class with the given instance size and
// reference-field count. Defining the same name twice panics.
func (r *Registry) DefineClass(name string, size, numRefFields int) *Class {
	if size <= 0 {
		panic("heap: class size must be positive: " + name)
	}
	return r.define(&Class{Name: name, Size: size, NumRefFields: numRefFields})
}

// DefineArrayClass registers an array class with the given element size.
func (r *Registry) DefineArrayClass(name string, elemSize int) *Class {
	if elemSize <= 0 {
		panic("heap: element size must be positive: " + name)
	}
	return r.define(&Class{Name: name, IsArray: true, ElemSize: elemSize})
}

func (r *Registry) define(c *Class) *Class {
	if _, dup := r.classByName[c.Name]; dup {
		panic("heap: duplicate class " + c.Name)
	}
	c.ID = ClassID(len(r.classes))
	c.gap = 1 // default: full sampling until a gap is configured
	c.nominalGap = 1
	r.classes = append(r.classes, c)
	r.byClass = append(r.byClass, nil)
	r.classByName[c.Name] = c
	return c
}

// Class returns a class by name, or nil.
func (r *Registry) Class(name string) *Class { return r.classByName[name] }

// Classes returns all classes sorted by ID.
func (r *Registry) Classes() []*Class {
	out := make([]*Class, len(r.classes))
	copy(out, r.classes)
	return out
}

// ClassNames returns all class names sorted alphabetically.
func (r *Registry) ClassNames() []string {
	names := make([]string, 0, len(r.classes))
	for _, c := range r.classes {
		names = append(names, c.Name)
	}
	sort.Strings(names)
	return names
}

// Alloc creates a scalar instance of c homed at node.
func (r *Registry) Alloc(c *Class, node int) *Object {
	if c.IsArray {
		panic("heap: Alloc on array class " + c.Name)
	}
	o := r.newObject(c, node, 0)
	o.Seq = c.nextSeq
	c.nextSeq++
	if c.NumRefFields > 0 {
		o.Refs = r.allocRefs(c.NumRefFields)
	}
	return o
}

// AllocArray creates an array instance of c with n elements homed at node.
// The array consumes n consecutive sequence numbers starting at o.Seq.
func (r *Registry) AllocArray(c *Class, n, node int) *Object {
	if !c.IsArray {
		panic("heap: AllocArray on scalar class " + c.Name)
	}
	if n <= 0 {
		panic("heap: array length must be positive")
	}
	o := r.newObject(c, node, n)
	o.Seq = c.nextSeq
	c.nextSeq += int64(n)
	return o
}

func (r *Registry) newObject(c *Class, node, n int) *Object {
	r.nextObjectID++
	idx := int(r.nextObjectID) - 1
	if idx>>objChunkShift == len(r.chunks) {
		r.chunks = append(r.chunks, new(objChunk))
	}
	o := &r.chunks[idx>>objChunkShift][idx&objChunkMask]
	*o = Object{ID: r.nextObjectID, Class: c, Len: n, Home: node}
	size := int64(c.InstanceBytes(n))
	// Bump-allocate with word alignment on the home node's heap.
	brk := r.nodeBrk[node]
	align := int64(WordSize)
	brk = (brk + align - 1) / align * align
	o.Addr = brk
	r.nodeBrk[node] = brk + size
	r.all = append(r.all, o)
	r.byClass[c.ID] = append(r.byClass[c.ID], o)
	return o
}

// Object looks up an object by ID, or nil. Lookup indexes the chunk arena
// directly (not the iteration slices), so it stays correct even if a caller
// violates the read-only contract on ObjectsSorted/ObjectsOfClass.
func (r *Registry) Object(id ObjectID) *Object {
	idx := int64(id) - 1
	if idx < 0 || idx >= int64(len(r.all)) {
		return nil
	}
	return &r.chunks[idx>>objChunkShift][idx&objChunkMask]
}

// MustObject looks up an object by ID and panics if missing.
func (r *Registry) MustObject(id ObjectID) *Object {
	o := r.Object(id)
	if o == nil {
		panic(fmt.Sprintf("heap: unknown object %d", id))
	}
	return o
}

// NumObjects reports how many objects have been allocated.
func (r *Registry) NumObjects() int { return len(r.all) }

// ObjectsSorted returns every object sorted by ID (stable iteration order
// for deterministic daemons). The returned slice is the registry's live
// index — callers must treat it as read-only and must not append to it.
func (r *Registry) ObjectsSorted() []*Object { return r.all }

// ObjectsOfClass returns the class's live objects sorted by ID. The slice
// is maintained incrementally at allocation time, so this is O(1); callers
// must treat it as read-only and must not append to it.
func (r *Registry) ObjectsOfClass(c *Class) []*Object { return r.byClass[c.ID] }

// NumObjectsOfClass reports how many instances of c are live, without
// materializing the object slice.
func (r *Registry) NumObjectsOfClass(c *Class) int { return len(r.byClass[c.ID]) }

// HeapBytes reports the bump-allocated heap size of one node.
func (r *Registry) HeapBytes(node int) int64 { return r.nodeBrk[node] }
