package heap

import (
	"testing"
	"testing/quick"
)

func newReg() *Registry { return NewRegistry() }

func TestDefineClassBasics(t *testing.T) {
	r := newReg()
	c := r.DefineClass("Body", 56, 3)
	if c.ID != 0 || c.Name != "Body" || c.Size != 56 || c.NumRefFields != 3 {
		t.Fatalf("bad class: %+v", c)
	}
	if c.IsArray {
		t.Fatal("scalar class marked array")
	}
	if r.Class("Body") != c {
		t.Fatal("lookup failed")
	}
	if r.Class("nope") != nil {
		t.Fatal("phantom class")
	}
}

func TestDefineDuplicatePanics(t *testing.T) {
	r := newReg()
	r.DefineClass("X", 8, 0)
	defer func() {
		if recover() == nil {
			t.Error("duplicate class did not panic")
		}
	}()
	r.DefineClass("X", 16, 0)
}

func TestDefineBadSizesPanic(t *testing.T) {
	r := newReg()
	for _, f := range []func(){
		func() { r.DefineClass("a", 0, 0) },
		func() { r.DefineArrayClass("b", 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad size did not panic")
				}
			}()
			f()
		}()
	}
}

func TestSequenceNumbersScalar(t *testing.T) {
	r := newReg()
	c := r.DefineClass("X", 8, 0)
	for i := int64(0); i < 5; i++ {
		o := r.Alloc(c, 0)
		if o.Seq != i {
			t.Fatalf("seq = %d, want %d", o.Seq, i)
		}
	}
}

func TestSequenceNumbersArrayContinuous(t *testing.T) {
	r := newReg()
	c := r.DefineArrayClass("A", 4)
	a := r.AllocArray(c, 4, 0)
	b := r.AllocArray(c, 5, 0)
	d := r.AllocArray(c, 3, 0)
	if a.Seq != 0 || b.Seq != 4 || d.Seq != 9 {
		t.Fatalf("starts = %d,%d,%d, want 0,4,9 (paper Fig. 3b)", a.Seq, b.Seq, d.Seq)
	}
}

func TestAllocWrongKindPanics(t *testing.T) {
	r := newReg()
	s := r.DefineClass("S", 8, 0)
	a := r.DefineArrayClass("A", 4)
	for _, f := range []func(){
		func() { r.Alloc(a, 0) },
		func() { r.AllocArray(s, 3, 0) },
		func() { r.AllocArray(a, 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("mismatched alloc did not panic")
				}
			}()
			f()
		}()
	}
}

func TestBytesAndPages(t *testing.T) {
	r := newReg()
	c := r.DefineArrayClass("double[]", 8)
	row := r.AllocArray(c, 2048, 0) // 16 KB
	if row.Bytes() != 16384 {
		t.Fatalf("bytes = %d", row.Bytes())
	}
	first, last := row.PageSpan()
	if last-first < 3 {
		t.Fatalf("16KB object spans %d pages, want >= 4", last-first+1)
	}
	s := r.DefineClass("small", 32, 0)
	a := r.Alloc(s, 1)
	b := r.Alloc(s, 1)
	if a.Page() != b.Page() {
		t.Fatalf("two 32B objects on different pages: %d vs %d", a.Page(), b.Page())
	}
}

func TestAddressAlignment(t *testing.T) {
	r := newReg()
	c := r.DefineClass("odd", 13, 0)
	for i := 0; i < 10; i++ {
		o := r.Alloc(c, 0)
		if o.Addr%WordSize != 0 {
			t.Fatalf("unaligned addr %d", o.Addr)
		}
	}
}

func TestHomeAssignment(t *testing.T) {
	r := newReg()
	c := r.DefineClass("X", 8, 0)
	o1 := r.Alloc(c, 3)
	o2 := r.Alloc(c, 5)
	if o1.Home != 3 || o2.Home != 5 {
		t.Fatal("home not the creating node")
	}
	if r.HeapBytes(3) == 0 || r.HeapBytes(5) == 0 || r.HeapBytes(7) != 0 {
		t.Fatal("per-node heap accounting wrong")
	}
}

func bruteSampledElems(start int64, n int, gap int64) int {
	count := 0
	for i := int64(0); i < int64(n); i++ {
		if (start+i)%gap == 0 {
			count++
		}
	}
	return count
}

func TestSampledElemsKnown(t *testing.T) {
	// Fig. 3(b): arrays of len 4, 5, 3 starting at seq 1, 5, 10.
	cases := []struct {
		start int64
		n     int
		gap   int64
		want  int
	}{
		{1, 4, 3, 1},
		{5, 5, 3, 2},
		{10, 3, 3, 1},
		{1, 4, 5, 0},
		{5, 5, 5, 1},
		{10, 3, 5, 1},
		{1, 4, 7, 0},
		{5, 5, 7, 1},
		{10, 3, 7, 0},
		{0, 10, 1, 10},
		{0, 0, 3, 0},
	}
	for _, c := range cases {
		if got := SampledElems(c.start, c.n, c.gap); got != c.want {
			t.Errorf("SampledElems(%d,%d,%d) = %d, want %d", c.start, c.n, c.gap, got, c.want)
		}
	}
}

// Property: SampledElems matches brute-force counting.
func TestQuickSampledElems(t *testing.T) {
	f := func(start uint16, n uint8, gap uint8) bool {
		g := int64(gap%64) + 1
		s := int64(start)
		nn := int(n % 100)
		return SampledElems(s, nn, g) == bruteSampledElems(s, nn, g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSampledPredicate(t *testing.T) {
	r := newReg()
	c := r.DefineClass("X", 8, 0)
	c.SetGap(4, 5)
	var sampled int
	for i := 0; i < 100; i++ {
		o := r.Alloc(c, 0)
		if o.Sampled() {
			sampled++
			if o.Seq%5 != 0 {
				t.Fatalf("object seq %d sampled at gap 5", o.Seq)
			}
		}
	}
	if sampled != 20 {
		t.Fatalf("sampled %d of 100 at gap 5, want 20", sampled)
	}
}

func TestArraySampledIfAnyElement(t *testing.T) {
	r := newReg()
	c := r.DefineArrayClass("A", 4)
	c.SetGap(8, 7)
	// len 10 > gap 7: always sampled.
	big := r.AllocArray(c, 10, 0)
	if !big.Sampled() {
		t.Fatal("array longer than gap not sampled")
	}
	// Tiny arrays: sampled iff one of their seqs divides.
	anySampled, anyUnsampled := false, false
	for i := 0; i < 30; i++ {
		a := r.AllocArray(c, 2, 0)
		if a.Sampled() {
			anySampled = true
		} else {
			anyUnsampled = true
		}
	}
	if !anySampled || !anyUnsampled {
		t.Fatal("short arrays should be mixed at gap 7")
	}
}

func TestAmortizedBytes(t *testing.T) {
	r := newReg()
	a := r.DefineArrayClass("A", 8)
	a.SetGap(4, 5)
	arr := r.AllocArray(a, 20, 0) // seqs 0..19, gap 5 -> 4 sampled elems
	if got := arr.AmortizedBytes(); got != 4*8 {
		t.Fatalf("amortized = %d, want 32", got)
	}
	s := r.DefineClass("S", 56, 0)
	s.SetGap(8, 7)
	o := r.Alloc(s, 0)
	if o.AmortizedBytes() != 56 {
		t.Fatal("scalar amortized should be full size")
	}
}

// Property: scaled amortized bytes estimate the full array size to within
// one element-gap of error — the unbiasedness that defeats the large-array
// correlation bias.
func TestQuickAmortizedEstimator(t *testing.T) {
	f := func(start uint16, n uint16, gap uint16) bool {
		g := int64(gap%512) + 1
		nn := int(n%4096) + 1
		elems := SampledElems(int64(start), nn, g)
		estimate := int64(elems) * 8 * g // scaled logged bytes
		truth := int64(nn) * 8
		diff := estimate - truth
		if diff < 0 {
			diff = -diff
		}
		return diff <= 8*g // at most one gap-stride of error
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestObjectsSortedAndOfClass(t *testing.T) {
	r := newReg()
	a := r.DefineClass("A", 8, 0)
	b := r.DefineClass("B", 8, 0)
	for i := 0; i < 10; i++ {
		r.Alloc(a, 0)
		r.Alloc(b, 0)
	}
	all := r.ObjectsSorted()
	if len(all) != 20 || r.NumObjects() != 20 {
		t.Fatalf("have %d objects", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].ID <= all[i-1].ID {
			t.Fatal("not sorted by id")
		}
	}
	as := r.ObjectsOfClass(a)
	if len(as) != 10 {
		t.Fatalf("class A has %d objects", len(as))
	}
	for _, o := range as {
		if o.Class != a {
			t.Fatal("wrong class")
		}
	}
}

func TestMustObjectPanics(t *testing.T) {
	r := newReg()
	defer func() {
		if recover() == nil {
			t.Error("MustObject on unknown id did not panic")
		}
	}()
	r.MustObject(999)
}

func TestClassNamesSorted(t *testing.T) {
	r := newReg()
	r.DefineClass("zeta", 8, 0)
	r.DefineClass("alpha", 8, 0)
	names := r.ClassNames()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "zeta" {
		t.Fatalf("names = %v", names)
	}
	if len(r.Classes()) != 2 {
		t.Fatal("Classes() wrong length")
	}
}

func TestRefsAllocation(t *testing.T) {
	r := newReg()
	c := r.DefineClass("linked", 16, 2)
	o := r.Alloc(c, 0)
	if len(o.Refs) != 2 {
		t.Fatalf("refs len = %d, want 2", len(o.Refs))
	}
}

func TestSampledGapEdgeCases(t *testing.T) {
	r := newReg()
	c := r.DefineClass("X", 8, 0)
	o := r.Alloc(c, 0)
	if !o.SampledAtGap(1) {
		t.Fatal("gap 1 must sample everything")
	}
	if o.SampledAtGap(0) || o.SampledAtGap(-3) {
		t.Fatal("non-positive gap must sample nothing")
	}
}

// --- slice-arena registry invariants -----------------------------------------

// TestPerClassIndexSortedInterleaved: the per-class index stays ID-sorted
// across interleaved scalar and array allocations on multiple nodes.
func TestPerClassIndexSortedInterleaved(t *testing.T) {
	r := newReg()
	s := r.DefineClass("S", 24, 1)
	a := r.DefineArrayClass("A", 8)
	b := r.DefineClass("B", 64, 0)
	for i := 0; i < 500; i++ {
		node := i % 4
		switch i % 3 {
		case 0:
			r.Alloc(s, node)
		case 1:
			r.AllocArray(a, 1+i%17, node)
		case 2:
			r.Alloc(b, node)
		}
	}
	for _, c := range r.Classes() {
		objs := r.ObjectsOfClass(c)
		if len(objs) != r.NumObjectsOfClass(c) {
			t.Fatalf("class %s: len %d != count %d", c.Name, len(objs), r.NumObjectsOfClass(c))
		}
		for i, o := range objs {
			if o.Class != c {
				t.Fatalf("class %s index holds foreign object %d", c.Name, o.ID)
			}
			if i > 0 && objs[i].ID <= objs[i-1].ID {
				t.Fatalf("class %s index not ID-sorted at %d", c.Name, i)
			}
		}
	}
}

// TestObjectsOfClassAgreesWithBruteForce: the incremental index matches a
// brute-force scan over every object.
func TestObjectsOfClassAgreesWithBruteForce(t *testing.T) {
	r := newReg()
	classes := []*Class{
		r.DefineClass("x", 8, 0),
		r.DefineArrayClass("y", 4),
		r.DefineClass("z", 128, 2),
	}
	for i := 0; i < 300; i++ {
		c := classes[i%len(classes)]
		if c.IsArray {
			r.AllocArray(c, 1+i%9, i%3)
		} else {
			r.Alloc(c, i%3)
		}
	}
	for _, c := range classes {
		var brute []*Object
		for _, o := range r.ObjectsSorted() {
			if o.Class == c {
				brute = append(brute, o)
			}
		}
		got := r.ObjectsOfClass(c)
		if len(got) != len(brute) {
			t.Fatalf("class %s: index %d objects, brute force %d", c.Name, len(got), len(brute))
		}
		for i := range got {
			if got[i] != brute[i] {
				t.Fatalf("class %s: index[%d] = %d, brute[%d] = %d",
					c.Name, i, got[i].ID, i, brute[i].ID)
			}
		}
	}
}

// TestObjectPointerStability: *Object handles taken early must stay valid
// (same address, same data) after the arena grows by many chunks.
func TestObjectPointerStability(t *testing.T) {
	r := newReg()
	c := r.DefineClass("pin", 16, 0)
	early := r.Alloc(c, 2)
	earlySeq, earlyAddr := early.Seq, early.Addr
	for i := 0; i < 5*objChunkLen; i++ {
		r.Alloc(c, 0)
	}
	if r.Object(early.ID) != early {
		t.Fatal("lookup returns a different pointer after arena growth")
	}
	if early.Seq != earlySeq || early.Addr != earlyAddr || early.Home != 2 {
		t.Fatal("early object corrupted by arena growth")
	}
}

// TestObjectLookupBounds: dense lookup handles the zero ID and IDs past the
// end without panicking.
func TestObjectLookupBounds(t *testing.T) {
	r := newReg()
	c := r.DefineClass("X", 8, 0)
	o := r.Alloc(c, 0)
	if r.Object(o.ID) != o {
		t.Fatal("roundtrip failed")
	}
	if r.Object(InvalidObject) != nil || r.Object(-5) != nil || r.Object(o.ID+1) != nil {
		t.Fatal("out-of-range lookup must return nil")
	}
}

// BenchmarkObjectsOfClass pins the O(1) no-scan guarantee: returning the
// class index must not allocate regardless of population size.
func BenchmarkObjectsOfClass(b *testing.B) {
	r := newReg()
	c := r.DefineClass("hot", 32, 0)
	d := r.DefineClass("cold", 32, 0)
	for i := 0; i < 100000; i++ {
		r.Alloc(c, 0)
		r.Alloc(d, 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(r.ObjectsOfClass(c)) != 100000 {
			b.Fatal("bad index")
		}
	}
}

// BenchmarkObjectsSorted pins the O(1) return of the full ID-ordered index.
func BenchmarkObjectsSorted(b *testing.B) {
	r := newReg()
	c := r.DefineClass("hot", 32, 0)
	for i := 0; i < 100000; i++ {
		r.Alloc(c, 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(r.ObjectsSorted()) != 100000 {
			b.Fatal("bad index")
		}
	}
}

// BenchmarkAlloc measures the arena allocation path itself.
func BenchmarkAlloc(b *testing.B) {
	r := newReg()
	c := r.DefineClass("obj", 48, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Alloc(c, i%8)
	}
}
