package gos

import (
	"testing"

	"jessica2/internal/heap"
	"jessica2/internal/network"
	"jessica2/internal/sim"
)

// fastFailureConfig returns aggressive timings so tests converge in a few
// virtual milliseconds.
func fastFailureConfig() *FailureConfig {
	return &FailureConfig{
		HeartbeatInterval: 1 * sim.Millisecond,
		LeaseTimeout:      3 * sim.Millisecond,
		SweepInterval:     1 * sim.Millisecond,
		FlushTimeout:      2 * sim.Millisecond,
		FlushBackoff:      1 * sim.Millisecond,
		MaxFlushBackoff:   8 * sim.Millisecond,
		MaxFlushRetries:   4,
	}
}

// failureKernel builds a kernel with the failure layer enabled.
func failureKernel(nodes int, mode TrackingMode, fc *FailureConfig) *Kernel {
	cfg := DefaultConfig()
	cfg.Nodes = nodes
	cfg.Tracking = mode
	cfg.Failure = fc
	return NewKernel(cfg)
}

// spinBody runs iters × (compute slice + one local read): a thread with
// a safe point at every iteration.
func spinBody(iters int, slice sim.Time, cls *heap.Class) func(*Thread) {
	return func(th *Thread) {
		o := th.Alloc(cls)
		for i := 0; i < iters; i++ {
			th.Compute(slice)
			th.Read(o)
		}
	}
}

func TestLeaseExpiryEvacuatesThreads(t *testing.T) {
	k := failureKernel(3, TrackingOff, fastFailureConfig())
	cls := k.Reg.DefineClass("X", 64, 0)
	victim := k.SpawnThread(1, "victim", spinBody(100, 200*sim.Microsecond, cls))
	k.SpawnThread(2, "bystander", spinBody(100, 200*sim.Microsecond, cls))
	// Crash node 1: CPU crawls below the heartbeat suspension threshold.
	cpu := k.Node(1).CPU()
	k.Eng.Schedule(5*sim.Millisecond, func() { cpu.SetSpeed(0.05) })
	k.Run()

	fs := k.FailureStats()
	if fs.LeaseExpiries == 0 {
		t.Fatal("no lease expiry despite silenced node")
	}
	if fs.HeartbeatsSkipped == 0 {
		t.Error("crawling node kept emitting heartbeats")
	}
	if fs.Evacuations != 1 {
		t.Fatalf("evacuations = %d, want 1", fs.Evacuations)
	}
	if got := victim.Node().ID(); got == 1 {
		t.Fatalf("victim still on dead node %d", got)
	}
	if !victim.Finished() {
		t.Fatal("victim never finished")
	}
	h := k.HealthInto(nil)
	if h == nil {
		t.Fatal("HealthInto returned nil with failure layer on")
	}
	if h.LiveNodes != 2 {
		t.Errorf("live nodes = %d, want 2", h.LiveNodes)
	}
	if h.Nodes[1].Alive {
		t.Error("node 1 reported alive after permanent crash")
	}
}

func TestHeartbeatResumptionRevivesNode(t *testing.T) {
	k := failureKernel(3, TrackingOff, fastFailureConfig())
	cls := k.Reg.DefineClass("X", 64, 0)
	k.SpawnThread(1, "victim", spinBody(200, 200*sim.Microsecond, cls))
	k.SpawnThread(2, "bystander", spinBody(200, 200*sim.Microsecond, cls))
	cpu := k.Node(1).CPU()
	k.Eng.Schedule(5*sim.Millisecond, func() { cpu.SetSpeed(0.05) })
	k.Eng.Schedule(15*sim.Millisecond, func() { cpu.SetSpeed(1) })
	k.Run()

	fs := k.FailureStats()
	if fs.LeaseExpiries == 0 {
		t.Fatal("no lease expiry during the outage")
	}
	if fs.NodeRecoveries == 0 {
		t.Fatal("restarted node never revived")
	}
	if h := k.HealthInto(nil); h.LiveNodes != 3 {
		t.Errorf("live nodes = %d after recovery, want 3", h.LiveNodes)
	}
}

// dropFirstN drops the first N messages whose primary category is CatOAL.
type dropFirstN struct{ n int }

func (d *dropFirstN) Intercept(_ sim.Time, _, _ network.NodeID, primary network.Category, _ int) network.Verdict {
	if primary == network.CatOAL && d.n > 0 {
		d.n--
		return network.Verdict{Drop: true}
	}
	return network.Verdict{}
}

// dupAll duplicates every dedicated OAL flush.
type dupAll struct{}

func (dupAll) Intercept(_ sim.Time, _, _ network.NodeID, primary network.Category, _ int) network.Verdict {
	return network.Verdict{Duplicate: primary == network.CatOAL}
}

// dropAllOAL loses every dedicated OAL flush.
type dropAllOAL struct{}

func (dropAllOAL) Intercept(_ sim.Time, _, _ network.NodeID, primary network.Category, _ int) network.Verdict {
	return network.Verdict{Drop: primary == network.CatOAL}
}

// flushKernel builds a 2-node kernel where every interval close emits a
// dedicated one-entry OAL flush from node 1.
func flushKernel(t *testing.T, fc *FailureConfig, icept network.Interceptor, rounds int) *Kernel {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Nodes = 2
	cfg.Tracking = TrackingExact
	cfg.OALFlushEntries = 1
	cfg.Failure = fc
	k := NewKernel(cfg)
	k.Net.SetInterceptor(icept)
	cls := k.Reg.DefineClass("X", 64, 0)
	k.SpawnThread(1, "worker", func(th *Thread) {
		o := th.Alloc(cls)
		for i := 0; i < rounds; i++ {
			th.Acquire(0)
			th.Read(o)
			th.Release(0) // closes the interval → dedicated flush
		}
	})
	return k
}

func TestFlushRetryRecoversDroppedFlushes(t *testing.T) {
	k := flushKernel(t, fastFailureConfig(), &dropFirstN{n: 2}, 10)
	k.Run()
	fs := k.FailureStats()
	if fs.FlushesSent != 10 {
		t.Fatalf("flushes sent = %d, want 10", fs.FlushesSent)
	}
	if fs.FlushRetries < 2 {
		t.Fatalf("flush retries = %d, want >= 2 (two drops)", fs.FlushRetries)
	}
	if fs.FlushesAcked != 10 {
		t.Fatalf("flushes acked = %d, want 10", fs.FlushesAcked)
	}
	if fs.FlushesAbandoned != 0 {
		t.Fatalf("flushes abandoned = %d, want 0", fs.FlushesAbandoned)
	}
	if got, want := k.Master().IngestedEntries(), k.Stats().OALEntries; got != want {
		t.Fatalf("ingested %d entries, node buffered %d — retry lost or double-counted data", got, want)
	}
	if h := k.HealthInto(nil); h.Nodes[1].LastAckAt == 0 {
		t.Error("LastAckAt never advanced on the flushing node")
	}
}

func TestFlushDedupDiscardsDuplicates(t *testing.T) {
	k := flushKernel(t, fastFailureConfig(), dupAll{}, 10)
	k.Run()
	fs := k.FailureStats()
	if fs.DuplicateFlushes == 0 {
		t.Fatal("duplicated deliveries were never deduplicated")
	}
	if fs.FlushesAcked != fs.FlushesSent {
		t.Fatalf("acked %d of %d flushes", fs.FlushesAcked, fs.FlushesSent)
	}
	if got, want := k.Master().IngestedEntries(), k.Stats().OALEntries; got != want {
		t.Fatalf("ingested %d entries, node buffered %d — a duplicate was double-ingested", got, want)
	}
}

// TestFlushAbandonmentIsBounded: with every dedicated flush lost, the
// retry machinery gives up after MaxFlushRetries instead of spinning
// forever — profiling is advisory, liveness wins.
func TestFlushAbandonmentIsBounded(t *testing.T) {
	k := flushKernel(t, fastFailureConfig(), dropAllOAL{}, 5)
	k.Run()
	fs := k.FailureStats()
	if fs.FlushesAbandoned != fs.FlushesSent {
		t.Fatalf("abandoned %d of %d flushes, want all", fs.FlushesAbandoned, fs.FlushesSent)
	}
	if fs.FlushRetries != fs.FlushesSent*int64(k.fcfg.MaxFlushRetries) {
		t.Fatalf("retries = %d, want %d (bounded)", fs.FlushRetries, fs.FlushesSent*int64(k.fcfg.MaxFlushRetries))
	}
	if got := k.Master().IngestedEntries(); got != 0 {
		t.Fatalf("ingested %d entries with all flushes lost", got)
	}
}

// TestFailureLayerOffIsInert: without Config.Failure the kernel sends no
// heartbeats, numbers no flushes, and reports no health.
func TestFailureLayerOffIsInert(t *testing.T) {
	k := flushKernel(t, nil, nil, 5)
	k.Run()
	if fs := k.FailureStats(); fs != (FailureStats{}) {
		t.Fatalf("failure counters moved with the layer off: %+v", fs)
	}
	if h := k.HealthInto(nil); h != nil {
		t.Fatalf("HealthInto = %+v with the layer off, want nil", h)
	}
	if got, want := k.Master().IngestedEntries(), k.Stats().OALEntries; got != want {
		t.Fatalf("ingested %d entries, want %d", got, want)
	}
}

// deferDown mimics the scenario layer's transient-crash semantics: every
// non-migration message touching the node inside [at, restart) is deferred
// until the restart, as if queued at a dead NIC.
type deferDown struct {
	node        network.NodeID
	at, restart sim.Time
	eng         *sim.Engine
}

func (d *deferDown) Intercept(now sim.Time, from, to network.NodeID, primary network.Category, _ int) network.Verdict {
	if primary == network.CatMigration {
		return network.Verdict{}
	}
	if now >= d.at && now < d.restart && (from == d.node || to == d.node) {
		return network.Verdict{Delay: d.restart - now}
	}
	return network.Verdict{}
}

// TestLockManagerFailover pins the lock-failover path: a lock managed by a
// node that goes dark is re-homed onto the master, adrift requests are
// resent under a fenced generation, and a holder whose release is lost
// toward the outage has its lock reclaimed — so contenders on live nodes
// keep making progress inside the outage window instead of stalling until
// the restart delivers the deferred traffic.
func TestLockManagerFailover(t *testing.T) {
	const (
		crashAt = 5 * sim.Millisecond
		restart = 80 * sim.Millisecond
		lockID  = 7 // 7 % 3 == 1: managed by the node that dies
	)
	k := failureKernel(3, TrackingOff, fastFailureConfig())
	k.Net.SetInterceptor(&deferDown{node: 1, at: crashAt, restart: restart, eng: k.Eng})
	cpu := k.Node(1).CPU()
	k.Eng.Schedule(crashAt, func() { cpu.SetSpeed(0.05) })
	k.Eng.Schedule(restart, func() { cpu.SetSpeed(1) })

	// A lingering thread keeps the cluster beating past the restart so the
	// revival (and the manager moving home) is observable.
	k.SpawnThread(0, "linger", func(th *Thread) {
		for th.Now() < restart+10*sim.Millisecond {
			th.Compute(200 * sim.Microsecond)
		}
	})
	var done [2]sim.Time
	for i, node := range []int{0, 2} {
		i, node := i, node
		k.SpawnThread(node, "contender", func(th *Thread) {
			for j := 0; j < 40; j++ {
				th.Acquire(lockID)
				th.Compute(100 * sim.Microsecond)
				th.Release(lockID)
			}
			done[i] = th.Now()
		})
	}
	k.Run()

	fs := k.FailureStats()
	if fs.LeaseExpiries == 0 {
		t.Fatal("node 1 was never declared dead")
	}
	if fs.LockFailovers == 0 {
		t.Fatal("no lock failed over despite its manager dying")
	}
	for i, at := range done {
		if at == 0 {
			t.Fatalf("contender %d never finished", i)
		}
		if at >= restart {
			t.Errorf("contender %d finished at %v — only after the restart drained deferred traffic", i, at)
		}
	}
	// The manager moved back once the node revived.
	if home := k.lock(lockID).home; home != 1 {
		t.Errorf("lock home after revival = %d, want 1", home)
	}
}

// TestLockReclaimFreesDeadHoldersLock pins the sweep-side reclaim: a
// holder on the dying node releases into the outage (the release message
// is adrift until restart), and the detector sweep hands the lock to the
// live waiter anyway, generation-fencing the stale release.
func TestLockReclaimFreesDeadHoldersLock(t *testing.T) {
	const (
		crashAt = 5 * sim.Millisecond
		restart = 80 * sim.Millisecond
		lockID  = 8 // 8 % 3 == 2: managed by a node that stays healthy
	)
	k := failureKernel(3, TrackingOff, fastFailureConfig())
	k.Net.SetInterceptor(&deferDown{node: 1, at: crashAt, restart: restart, eng: k.Eng})
	cpu := k.Node(1).CPU()
	k.Eng.Schedule(crashAt, func() { cpu.SetSpeed(0.05) })
	k.Eng.Schedule(restart, func() { cpu.SetSpeed(1) })

	// The doomed holder grabs the lock before the crash and releases into
	// the outage (its CPU crawls, so the short compute spans the crash);
	// the release toward the healthy manager is adrift from the dead node,
	// so only the sweep-side reclaim can free the lock.
	k.SpawnThread(1, "doomed", func(th *Thread) {
		th.Acquire(lockID)
		th.Compute(6 * sim.Millisecond)
		th.Release(lockID)
	})
	var waiterDone sim.Time
	k.SpawnThread(2, "waiter", func(th *Thread) {
		th.Compute(2 * sim.Millisecond) // let the doomed holder win the lock
		th.Acquire(lockID)
		th.Compute(100 * sim.Microsecond)
		th.Release(lockID)
		waiterDone = th.Now()
	})
	k.Run()

	fs := k.FailureStats()
	if fs.LockReclaims == 0 {
		t.Fatal("the wedged lock was never reclaimed")
	}
	if waiterDone == 0 {
		t.Fatal("waiter never finished")
	}
	if waiterDone >= restart {
		t.Errorf("waiter finished at %v — it waited out the outage instead of being granted the reclaimed lock", waiterDone)
	}
}
