// Package gos implements the global object space (GOS) of the distributed
// JVM: a home-based lazy release consistency (HLRC) protocol over the
// simulated cluster, with object faulting, twin/diff update propagation,
// write notices (modelled as home version numbers checked at sync epochs),
// distributed locks, barriers — and the access profiler of the paper:
// false-invalid state resets at interval open, at-most-once access logging
// into per-interval object access lists (OALs), and OAL shipping to the
// master's correlation collector with piggybacking on synchronization
// messages.
package gos

import (
	"fmt"

	"jessica2/internal/heap"
	"jessica2/internal/network"
	"jessica2/internal/oal"
	"jessica2/internal/sim"
	"jessica2/internal/tcm"
)

// TrackingMode selects how object accesses are logged for correlation.
type TrackingMode int

const (
	// TrackingOff disables correlation tracking entirely.
	TrackingOff TrackingMode = iota
	// TrackingSampled is the paper's mechanism: logging rides on the
	// false-invalid correlation faults of sampled objects.
	TrackingSampled
	// TrackingExact is the oracle used for the "inherent pattern": a log
	// is inserted at every first access per thread-interval regardless of
	// object state or sampling (the paper's Fig. 1(a) simulation mode).
	TrackingExact
)

func (m TrackingMode) String() string {
	switch m {
	case TrackingOff:
		return "off"
	case TrackingSampled:
		return "sampled"
	case TrackingExact:
		return "exact"
	default:
		return fmt.Sprintf("tracking(%d)", int(m))
	}
}

// CostModel charges virtual CPU time for protocol and profiling actions.
// The defaults approximate the paper's 2 GHz Pentium 4 nodes; the absolute
// values matter less than their ratios, which shape the overhead tables.
type CostModel struct {
	// CheckCost is one JIT-inlined object state check (fast path).
	CheckCost sim.Time
	// LogCost is one OAL log operation inside the access-fault service
	// routine (append entry, cancel false-invalid, bookkeeping).
	LogCost sim.Time
	// ResetCost is marking one object false-invalid at interval open.
	ResetCost sim.Time
	// FaultCPUCost is the faulting node's software handler per object
	// fault (request construction, copy-in), excluding network time.
	FaultCPUCost sim.Time
	// HomeServiceCost is the home node's handler per fetch/diff request.
	HomeServiceCost sim.Time
	// TwinCostPerByte is the copy-on-first-write twin creation.
	TwinCostPerByte sim.Time
	// DiffCostPerByte is diff computation + encoding at interval close.
	DiffCostPerByte sim.Time
	// ResampleCostPerObject is re-tagging one cached object after a
	// sampling-gap change notice.
	ResampleCostPerObject sim.Time
	// OALPackCostPerEntry is packing one OAL entry into a jumbo message.
	OALPackCostPerEntry sim.Time
	// TCMReorgCostPerEntry is the daemon's per-entry OAL reorganization
	// (per-thread lists to per-object lists).
	TCMReorgCostPerEntry sim.Time
	// TCMPairCost is one accrual into the correlation map.
	TCMPairCost sim.Time
	// LockServiceCost / BarrierServiceCost are manager-side handler costs.
	LockServiceCost    sim.Time
	BarrierServiceCost sim.Time
}

// DefaultCosts returns the calibrated cost model.
func DefaultCosts() CostModel {
	return CostModel{
		CheckCost:             3 * sim.Nanosecond,
		LogCost:               2 * sim.Microsecond, // correlation-fault trap + OAL append
		ResetCost:             200 * sim.Nanosecond,
		FaultCPUCost:          4 * sim.Microsecond,
		HomeServiceCost:       3 * sim.Microsecond,
		TwinCostPerByte:       sim.Nanosecond / 1, // 1 ns/B ≈ 1 GB/s copy
		DiffCostPerByte:       1 * sim.Nanosecond,
		ResampleCostPerObject: 25 * sim.Nanosecond,
		OALPackCostPerEntry:   30 * sim.Nanosecond,
		TCMReorgCostPerEntry:  90 * sim.Nanosecond,
		TCMPairCost:           14 * sim.Nanosecond,
		LockServiceCost:       2 * sim.Microsecond,
		BarrierServiceCost:    2 * sim.Microsecond,
	}
}

// Config assembles a kernel.
type Config struct {
	// Nodes is the cluster size; node 0 doubles as the master JVM.
	Nodes int
	// Net is the interconnect model.
	Net network.Config
	// Sched tunes the simulation engine's calendar-scheduler geometry;
	// the zero value keeps the defaults (4096 ns × 256 buckets).
	Sched sim.Config
	// Costs is the CPU cost model.
	Costs CostModel
	// Tracking selects the correlation tracking mode.
	Tracking TrackingMode
	// TransferOALs, when false, collects OALs but never ships them
	// (Table II isolates collection CPU cost this way).
	TransferOALs bool
	// DistributedTCM enables the paper's §VI scalability extension: each
	// worker reorganizes its own OALs into per-object summaries locally
	// and ships those instead of raw records, parallelizing the daemon's
	// O(M·N) reorganization and deduplicating repeat entries.
	DistributedTCM bool
	// OALFlushEntries triggers a jumbo message when a node's buffered
	// OAL entries exceed this count; OALs also piggyback on barrier
	// arrivals (whose manager lives on the master).
	OALFlushEntries int
	// CPUSliceFlush is the microbatching threshold for charging accrued
	// fast-path CPU time to the node CPU resource.
	CPUSliceFlush sim.Time
	// Failure, when non-nil, enables the failure-tolerance layer (see
	// failure.go): heartbeat/lease failure detection, safe-point
	// evacuation of dead nodes' threads, and sequence-numbered ack/retry
	// OAL flushes. Nil keeps the kernel byte-identical to a build without
	// the layer.
	Failure *FailureConfig
}

// DefaultConfig returns an 8-node cluster mirroring the paper's testbed.
func DefaultConfig() Config {
	return Config{
		Nodes:           8,
		Net:             network.DefaultConfig(),
		Costs:           DefaultCosts(),
		Tracking:        TrackingOff,
		TransferOALs:    true,
		OALFlushEntries: 4096,
		CPUSliceFlush:   250 * sim.Microsecond,
	}
}

// AccessObserver receives profiling callbacks; the sticky-set footprinter
// registers one. Callbacks run on the accessing thread's proc (cheaply; any
// CPU cost the observer wants to model must be charged via t.Charge).
type AccessObserver interface {
	// OnAccess fires for every Access call. first marks the thread's
	// first touch of the object in the current interval.
	OnAccess(t *Thread, o *heap.Object, write, first bool)
	// OnIntervalClose fires when a thread closes an interval.
	OnIntervalClose(t *Thread)
}

// Kernel is one distributed JVM instance over a simulated cluster.
type Kernel struct {
	Eng *sim.Engine
	Reg *heap.Registry
	Net *network.Network
	Cfg Config

	nodes    []*Node
	threads  []*Thread
	master   *Master
	locks    map[int]*lockState
	barriers map[int]*barrierState

	// versions is the home-side version number per object (write notices
	// are modelled as version advances checked at sync epochs), indexed by
	// ObjectID-1 — ObjectIDs are dense arena indexes, so the hot-path
	// version check is an array load instead of a map probe.
	versions []int64

	observers []AccessObserver

	// recPool recycles OAL records between intervals: a record created at
	// interval open travels through the node buffer and the master's
	// ingestion, after which it (and its Entries capacity) returns here
	// instead of becoming garbage. The simulation is single-threaded under
	// the scheduler, so no locking is needed.
	recPool []*oal.Record

	stats KernelStats

	// Failure-tolerance layer (failure.go); fd is nil until the first
	// SpawnThread with Cfg.Failure set, fcfg is Cfg.Failure resolved with
	// defaults.
	fd     *failureDetector
	fcfg   FailureConfig
	fstats FailureStats
	// healthLs are the registered push-form health listeners (the event
	// feed behind HealthSnapshot); see AddHealthListener.
	healthLs []func(node int, alive bool)
}

// newRecord returns a zeroed OAL record, reusing a recycled one if possible.
func (k *Kernel) newRecord() *oal.Record {
	if n := len(k.recPool); n > 0 {
		r := k.recPool[n-1]
		k.recPool = k.recPool[:n-1]
		return r
	}
	return &oal.Record{}
}

// recycleRecord returns a fully consumed record to the pool. The caller must
// not touch r afterwards.
func (k *Kernel) recycleRecord(r *oal.Record) {
	if r == nil {
		return
	}
	r.Reset()
	k.recPool = append(k.recPool, r)
}

// KernelStats aggregates protocol and profiling counters across the run.
type KernelStats struct {
	Faults          int64 // remote object faults (genuine)
	FaultBytes      int64
	CorrelationLogs int64 // OAL entries written
	FalseInvalidHit int64 // correlation faults taken
	Resets          int64 // false-invalid resets at interval open
	DiffBytes       int64
	DiffMessages    int64
	Intervals       int64
	LockAcquires    int64
	Barriers        int64
	OALRecords      int64
	OALEntries      int64
	OALWireBytes    int64
	ResampledObjs   int64
	Checks          int64 // access fast-path checks
	HomeMigrations  int64
}

// NewKernel builds a kernel: engine, network, nodes and master collector.
func NewKernel(cfg Config) *Kernel {
	if cfg.Nodes <= 0 {
		panic("gos: need at least one node")
	}
	if cfg.CPUSliceFlush <= 0 {
		cfg.CPUSliceFlush = 20 * sim.Microsecond
	}
	if cfg.OALFlushEntries <= 0 {
		cfg.OALFlushEntries = 4096
	}
	eng := sim.NewEngineWith(cfg.Sched)
	k := &Kernel{
		Eng:      eng,
		Reg:      heap.NewRegistry(),
		Net:      network.New(eng, cfg.Net),
		Cfg:      cfg,
		locks:    make(map[int]*lockState),
		barriers: make(map[int]*barrierState),
	}
	if cfg.Failure != nil {
		k.fcfg = cfg.Failure.withDefaults()
	}
	for i := 0; i < cfg.Nodes; i++ {
		n := newNode(k, i)
		k.nodes = append(k.nodes, n)
		k.Net.Bind(network.NodeID(i), n.handleMessage)
	}
	k.master = newMaster(k)
	return k
}

// Node returns the i-th node.
func (k *Kernel) Node(i int) *Node { return k.nodes[i] }

// NumNodes returns the cluster size.
func (k *Kernel) NumNodes() int { return len(k.nodes) }

// Threads returns all spawned threads in id order.
func (k *Kernel) Threads() []*Thread { return append([]*Thread(nil), k.threads...) }

// Master returns the correlation collector / analyzer on node 0.
func (k *Kernel) Master() *Master { return k.master }

// Stats returns a snapshot of kernel counters.
func (k *Kernel) Stats() KernelStats { return k.stats }

// AddObserver registers a profiling observer.
func (k *Kernel) AddObserver(obs AccessObserver) {
	k.observers = append(k.observers, obs)
}

// Version returns the home version of an object.
func (k *Kernel) Version(id heap.ObjectID) int64 { return k.version(id) }

// version reads the home version without growing the table (objects never
// written stay at version 0).
func (k *Kernel) version(id heap.ObjectID) int64 {
	idx := int64(id) - 1
	if idx < 0 || idx >= int64(len(k.versions)) {
		return 0
	}
	return k.versions[idx]
}

// bumpVersion applies one committed update at the home.
func (k *Kernel) bumpVersion(id heap.ObjectID) {
	idx := int64(id) - 1
	if idx < 0 {
		panic("gos: bumpVersion on invalid object id")
	}
	k.versions = growTo(k.versions, int(idx))
	k.versions[idx]++
}

// growTo returns s extended (geometrically) so that index idx is valid.
func growTo[T any](s []T, idx int) []T {
	if idx < len(s) {
		return s
	}
	newLen := 2 * len(s)
	if newLen <= idx {
		newLen = idx + 1
	}
	grown := make([]T, newLen)
	copy(grown, s)
	return grown
}

// Run executes the simulation to completion and returns the workload
// execution time (daemon wind-down after the last thread finishes is
// excluded — it is what the paper's tables report).
func (k *Kernel) Run() sim.Time {
	k.Eng.Run()
	return k.WorkloadEndTime()
}

// RunUntil advances the simulation to virtual time limit and pauses at a
// global safe point (no proc mid-step). It returns true when the run has
// completed. While paused, callers may take snapshots, flush OALs, re-home
// objects, request thread migrations and retune sampling before resuming —
// the epoch-stepping substrate of the closed-loop session API.
func (k *Kernel) RunUntil(limit sim.Time) bool {
	return k.Eng.RunUntil(limit)
}

// NumThreads returns the spawned thread count.
func (k *Kernel) NumThreads() int { return len(k.threads) }

// Thread returns the i-th spawned thread.
func (k *Kernel) Thread(i int) *Thread { return k.threads[i] }

// Assignment returns the current thread→node placement.
func (k *Kernel) Assignment() []int {
	a := make([]int, len(k.threads))
	for i, t := range k.threads {
		a[i] = t.node.id
	}
	return a
}

// AllThreadsFinished reports whether every spawned thread body returned.
func (k *Kernel) AllThreadsFinished() bool {
	for _, t := range k.threads {
		if !t.finished {
			return false
		}
	}
	return len(k.threads) > 0
}

// WorkloadEndTime is the latest thread finish time (the application
// execution time, independent of profiling daemons still winding down).
func (k *Kernel) WorkloadEndTime() sim.Time {
	var end sim.Time
	for _, t := range k.threads {
		if t.finishedAt > end {
			end = t.finishedAt
		}
	}
	return end
}

// TCM builds the current correlation map from everything the master has
// ingested, charging the master's analyzer CPU.
func (k *Kernel) TCM() (*tcm.Map, tcm.BuildCost) {
	return k.master.Build(len(k.threads))
}

// BroadcastPlanCost models the master broadcasting a sampling-rate change
// notice: each node iterates its cached objects of the affected classes and
// re-tags them. It returns the summed virtual CPU cost charged to nodes.
// (The resample pass is what the paper bounds at "no more than 0.1% of
// total CPU time".)
func (k *Kernel) ChargeResample(objects int) {
	k.stats.ResampledObjs += int64(objects)
}
