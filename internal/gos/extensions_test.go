package gos

import (
	"math"
	"testing"

	"jessica2/internal/heap"
	"jessica2/internal/network"
	"jessica2/internal/tcm"
)

// sharedRunKernel builds a 4-node kernel where every thread touches a
// common object population, for TCM-path comparisons.
func sharedRun(t *testing.T, distributed bool) (*Kernel, *tcm.Map) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Nodes = 4
	cfg.Tracking = TrackingSampled
	cfg.DistributedTCM = distributed
	k := NewKernel(cfg)
	cls := k.Reg.DefineClass("X", 96, 0)
	shared := make([]*heap.Object, 0, 64)
	for i := 0; i < 4; i++ {
		i := i
		k.SpawnThread(i, "t", func(th *Thread) {
			for j := 0; j < 16; j++ {
				o := th.Alloc(cls)
				th.Write(o)
				shared = append(shared, o)
			}
			th.Barrier(1, 4)
			// Each thread reads a sliding window of the population so
			// pairs overlap partially.
			for j := 0; j < 40; j++ {
				th.Read(shared[(i*16+j)%64])
			}
			th.Barrier(2, 4)
			for j := 0; j < 40; j++ {
				th.Read(shared[(i*16+j)%64])
			}
			th.Barrier(3, 4)
		})
	}
	k.Run()
	k.FlushAllOAL()
	m, _ := k.TCM()
	return k, m
}

// TestDistributedTCMEquivalence: the distributed reduction must produce
// exactly the same correlation map as the central daemon.
func TestDistributedTCMEquivalence(t *testing.T) {
	_, central := sharedRun(t, false)
	_, dist := sharedRun(t, true)
	if d := tcm.DistanceABS(dist, central); d != 0 {
		t.Fatalf("distributed TCM differs from central: distance %v", d)
	}
}

// TestDistributedTCMWireVolume: summaries deduplicate repeated per-interval
// entries, so when several intervals elapse between shipments (lock-based
// intervals; the flush happens at the final barrier) the distributed mode's
// OAL wire volume drops below the central mode's.
func TestDistributedTCMWireVolume(t *testing.T) {
	run := func(distributed bool) int64 {
		cfg := DefaultConfig()
		cfg.Nodes = 4
		cfg.Tracking = TrackingSampled
		cfg.DistributedTCM = distributed
		k := NewKernel(cfg)
		cls := k.Reg.DefineClass("X", 96, 0)
		shared := make([]*heap.Object, 0, 64)
		for i := 0; i < 4; i++ {
			i := i
			k.SpawnThread(i, "t", func(th *Thread) {
				for j := 0; j < 16; j++ {
					o := th.Alloc(cls)
					th.Write(o)
					shared = append(shared, o)
				}
				th.Barrier(1, 4)
				// Six interval closes via a lock homed off-master (no
				// piggyback): entries accumulate, so each object appears
				// once per interval in the raw buffer but once total in
				// the summary.
				for round := 0; round < 6; round++ {
					for j := 0; j < 40; j++ {
						th.Read(shared[(i*16+j)%64])
					}
					th.Acquire(1 + i) // homes at nodes 1..4 % 4 (not 0 for i<3)
					th.Release(1 + i)
				}
				th.Barrier(2, 4)
			})
		}
		k.Run()
		k.FlushAllOAL()
		return k.Net.Stats().CatBytes(network.CatOAL)
	}
	central := run(false)
	dist := run(true)
	if central == 0 || dist == 0 {
		t.Fatalf("missing OAL traffic: central=%d dist=%d", central, dist)
	}
	if dist >= central {
		t.Fatalf("distributed wire %d not below central %d despite dedup window", dist, central)
	}
}

// TestDistributedTCMOffloadsMaster: the master's reorg CPU must drop when
// workers pre-reduce.
func TestDistributedTCMOffloadsMaster(t *testing.T) {
	kc, _ := sharedRun(t, false)
	kd, _ := sharedRun(t, true)
	if kd.Master().ReorgTime() >= kc.Master().ReorgTime() {
		t.Fatalf("master reorg not reduced: central=%v distributed=%v",
			kc.Master().ReorgTime(), kd.Master().ReorgTime())
	}
}

func TestHomeMigrationBasics(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 2
	k := NewKernel(cfg)
	cls := k.Reg.DefineClass("X", 256, 0)
	k.SpawnThread(0, "owner", func(th *Thread) {
		o := th.Alloc(cls)
		th.Write(o)
		th.Release(1)
		mv := k.MigrateHome(o, 1)
		if mv.From != 0 || mv.To != 1 || mv.Bytes != 256 {
			t.Errorf("move = %+v", mv)
		}
		if o.Home != 1 {
			t.Error("home not updated")
		}
		// Re-homing to the same node is a no-op.
		if again := k.MigrateHome(o, 1); again.Bytes != 0 {
			t.Error("same-home migration should be a no-op")
		}
		// The old home's copy remains usable as a cache: reads are local
		// until the object changes.
		before := th.Stats().Faults
		th.Read(o)
		if th.Stats().Faults != before {
			t.Error("old home's cache copy lost validity")
		}
	})
	k.Run()
	if k.Stats().HomeMigrations != 1 {
		t.Fatalf("home migrations = %d", k.Stats().HomeMigrations)
	}
}

// TestHomeMigrationMovesFaultTarget: after re-homing, a third node's fault
// is served by the new home.
func TestHomeMigrationMovesFaultTarget(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 3
	k := NewKernel(cfg)
	cls := k.Reg.DefineClass("X", 128, 0)
	var obj *heap.Object
	k.SpawnThread(0, "owner", func(th *Thread) {
		obj = th.Alloc(cls)
		th.Write(obj)
		th.Barrier(1, 2)
		k.MigrateHome(obj, 1)
		th.Barrier(2, 2)
	})
	var faults int64
	k.SpawnThread(2, "reader", func(th *Thread) {
		th.Barrier(1, 2)
		th.Barrier(2, 2)
		th.Read(obj)
		faults = th.Stats().Faults
	})
	k.Run()
	if faults != 1 {
		t.Fatalf("reader faults = %d, want 1", faults)
	}
	// The fetch was served by node 1 (new home): node 1 originated
	// GOS-data traffic.
	if k.Net.NodeStats(1).CatBytes(network.CatGOSData) == 0 {
		t.Fatal("new home served no data")
	}
}

// TestAdviseHomes: objects accessed by threads of a single node, homed
// elsewhere, are recommended for re-homing.
func TestAdviseHomes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 2
	cfg.Tracking = TrackingSampled
	k := NewKernel(cfg)
	cls := k.Reg.DefineClass("X", 128, 0)
	var objs []*heap.Object
	k.SpawnThread(0, "owner", func(th *Thread) {
		for i := 0; i < 8; i++ {
			o := th.Alloc(cls)
			th.Write(o)
			objs = append(objs, o)
		}
		th.Barrier(1, 2)
		th.Barrier(2, 2)
	})
	k.SpawnThread(1, "consumer", func(th *Thread) {
		th.Barrier(1, 2)
		for _, o := range objs {
			th.Read(o)
		}
		th.Barrier(2, 2)
		// Second interval: access again so the summary sees persistence.
		for _, o := range objs {
			th.Read(o)
		}
	})
	k.Run()
	k.FlushAllOAL()
	// Build the advisory summary from the master's state: use a fresh
	// builder fed by a local summarization of all OALs. The master's
	// builder already holds the per-object thread lists.
	sum := k.Master().Summary()
	moves := k.AdviseHomes(sum, []int{0, 1}, 1)
	// Objects accessed ONLY by the consumer (thread 1, node 1) but homed
	// at node 0 should be advised to move. The owner also wrote them, so
	// with both threads in the sets no unanimous advice appears — run the
	// check on the consumer-only window instead.
	_ = moves
	// Direct advisory check with a synthetic summary:
	synth := &tcm.Summary{}
	for _, o := range objs {
		synth.Objs = append(synth.Objs, tcm.ObjSummary{Key: int64(o.ID), Bytes: 128, Threads: []int32{1}})
	}
	moves = k.AdviseHomes(synth, []int{0, 1}, 1)
	if len(moves) != 8 {
		t.Fatalf("advised %d moves, want 8", len(moves))
	}
	for _, mv := range moves {
		if mv.To != 1 || mv.From != 0 {
			t.Fatalf("bad advice: %+v", mv)
		}
	}
	bytes := k.ApplyHomeMoves(moves)
	if bytes != 8*128 {
		t.Fatalf("moved %d bytes", bytes)
	}
	for _, o := range objs {
		if o.Home != 1 {
			t.Fatal("advice not applied")
		}
	}
}

// TestHomeAffinityMatrix: the master's thread×node matrix reflects where
// accessed objects are homed.
func TestHomeAffinityMatrix(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 2
	cfg.Tracking = TrackingSampled
	k := NewKernel(cfg)
	cls := k.Reg.DefineClass("X", 100, 0)
	var objs []*heap.Object
	k.SpawnThread(0, "owner", func(th *Thread) {
		for i := 0; i < 10; i++ {
			o := th.Alloc(cls)
			th.Write(o)
			objs = append(objs, o)
		}
		th.Barrier(1, 2)
		th.Barrier(2, 2)
	})
	k.SpawnThread(1, "reader", func(th *Thread) {
		th.Barrier(1, 2)
		for _, o := range objs {
			th.Read(o)
		}
		th.Barrier(2, 2)
	})
	k.Run()
	k.FlushAllOAL()
	aff := k.Master().HomeAffinity(2, 2)
	// Thread 1 read 10 objects of 100 bytes homed at node 0.
	if math.Abs(aff[1][0]-1000) > 1 {
		t.Fatalf("aff[1][0] = %v, want 1000", aff[1][0])
	}
	if aff[1][1] != 0 {
		t.Fatalf("aff[1][1] = %v, want 0", aff[1][1])
	}
}
